(* Tests for replication paths deeper than the paper's examples: a 3-level
   reference chain EMP -> DEPT -> ORG -> REGION.  The engine's inverted
   paths, link sharing and propagation must generalise to any depth
   (paper §3.3.2 "two or more levels"). *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Registry = Fieldrep_replication.Registry
module Splitmix = Fieldrep_util.Splitmix

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let value_testable = Alcotest.testable Value.pp Value.equal
let checkv = Alcotest.check value_testable
let vstr s = Value.VString s
let vint i = Value.VInt i

type fixture = {
  db : Db.t;
  regions : Oid.t array;
  orgs : Oid.t array;
  depts : Oid.t array;
  emps : Oid.t array;
}

(* regions <- orgs (2 per region) <- depts (2 per org) <- emps (2 per dept) *)
let deep_db ?(nregions = 2) () =
  let db = Db.create ~page_size:1024 ~frames:256 () in
  Db.define_type db
    (Ty.make ~name:"REGION"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "code"; ftype = Ty.Scalar Ty.SInt };
       ]);
  Db.define_type db
    (Ty.make ~name:"ORG"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "region"; ftype = Ty.Ref "REGION" };
       ]);
  Db.define_type db
    (Ty.make ~name:"DEPT"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "org"; ftype = Ty.Ref "ORG" };
       ]);
  Db.define_type db
    (Ty.make ~name:"EMP"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "dept"; ftype = Ty.Ref "DEPT" };
       ]);
  Db.create_set db ~name:"Region" ~elem_type:"REGION" ();
  Db.create_set db ~name:"Org" ~elem_type:"ORG" ();
  Db.create_set db ~name:"Dept" ~elem_type:"DEPT" ();
  Db.create_set db ~name:"Emp1" ~elem_type:"EMP" ();
  let regions =
    Array.init nregions (fun i ->
        Db.insert db ~set:"Region" [ vstr (Printf.sprintf "region-%d" i); vint i ])
  in
  let orgs =
    Array.init (2 * nregions) (fun i ->
        Db.insert db ~set:"Org"
          [ vstr (Printf.sprintf "org-%d" i); Value.VRef regions.(i mod nregions) ])
  in
  let depts =
    Array.init (2 * Array.length orgs) (fun i ->
        Db.insert db ~set:"Dept"
          [ vstr (Printf.sprintf "dept-%d" i); Value.VRef orgs.(i mod Array.length orgs) ])
  in
  let emps =
    Array.init (2 * Array.length depts) (fun i ->
        Db.insert db ~set:"Emp1"
          [ vstr (Printf.sprintf "emp-%d" i); Value.VRef depts.(i mod Array.length depts) ])
  in
  { db; regions; orgs; depts; emps }

let path = Path.parse "Emp1.dept.org.region.name"
let deref fx e = Db.deref fx.db ~set:"Emp1" e "dept.org.region.name"

let manual fx e =
  let get set oid = Db.get fx.db ~set oid in
  match Db.field_value fx.db ~set:"Emp1" (get "Emp1" e) "dept" with
  | Value.VRef d -> (
      match Db.field_value fx.db ~set:"Dept" (get "Dept" d) "org" with
      | Value.VRef o -> (
          match Db.field_value fx.db ~set:"Org" (get "Org" o) "region" with
          | Value.VRef r -> Db.field_value fx.db ~set:"Region" (get "Region" r) "name"
          | _ -> Value.VNull)
      | _ -> Value.VNull)
  | _ -> Value.VNull

let check_all_emps fx =
  Db.check_integrity fx.db;
  Array.iter (fun e -> checkv "deref = manual walk" (manual fx e) (deref fx e)) fx.emps

(* ------------------------------------------------------------------ *)

let test_three_level_inplace () =
  let fx = deep_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace path;
  checki "three joins eliminated" 0
    (Db.deref_would_join fx.db ~set:"Emp1" "dept.org.region.name");
  checkv "initial" (vstr "region-0") (deref fx fx.emps.(0));
  check_all_emps fx

let test_three_level_separate () =
  let fx = deep_db () in
  Db.replicate fx.db ~strategy:Schema.Separate path;
  checki "one hop" 1 (Db.deref_would_join fx.db ~set:"Emp1" "dept.org.region.name");
  check_all_emps fx

let test_three_level_field_propagation () =
  List.iter
    (fun strategy ->
      let fx = deep_db () in
      Db.replicate fx.db ~strategy path;
      Db.update_field fx.db ~set:"Region" fx.regions.(0) ~field:"name" (vstr "pangaea");
      checkv "propagates three levels" (vstr "pangaea") (deref fx fx.emps.(0));
      check_all_emps fx)
    [ Schema.Inplace; Schema.Separate ]

let test_ref_update_each_level () =
  List.iter
    (fun strategy ->
      let fx = deep_db () in
      Db.replicate fx.db ~strategy path;
      (* Level 3: org moves region. *)
      Db.update_field fx.db ~set:"Org" fx.orgs.(0) ~field:"region"
        (Value.VRef fx.regions.(1));
      check_all_emps fx;
      (* Level 2: dept moves org. *)
      Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"org" (Value.VRef fx.orgs.(1));
      check_all_emps fx;
      (* Level 1: employee moves dept. *)
      Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"dept" (Value.VRef fx.depts.(3));
      check_all_emps fx;
      (* Null out in the middle, then restore. *)
      Db.update_field fx.db ~set:"Dept" fx.depts.(1) ~field:"org" Value.VNull;
      check_all_emps fx;
      Db.update_field fx.db ~set:"Dept" fx.depts.(1) ~field:"org" (Value.VRef fx.orgs.(2));
      check_all_emps fx)
    [ Schema.Inplace; Schema.Separate ]

let test_link_sequence_depth () =
  let fx = deep_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace path;
  let eng = Db.engine fx.db in
  let rep = Option.get (Schema.find_replication (Db.schema fx.db) path) in
  let chain = Registry.chain eng.Fieldrep_replication.Engine.registry rep in
  checki "three links" 3 (List.length chain);
  checkb "all levels inverted" true
    (List.for_all (fun (n : Registry.node) -> n.Registry.link_id <> None) chain)

let test_separate_inverts_two_levels_only () =
  let fx = deep_db () in
  Db.replicate fx.db ~strategy:Schema.Separate path;
  let eng = Db.engine fx.db in
  let rep = Option.get (Schema.find_replication (Db.schema fx.db) path) in
  let chain = Registry.chain eng.Fieldrep_replication.Engine.registry rep in
  let with_links =
    List.filter (fun (n : Registry.node) -> n.Registry.link_id <> None) chain
  in
  (* n-level separate path needs an (n-1)-level inverted path (paper §5). *)
  checki "two of three levels inverted" 2 (List.length with_links)

let test_mixed_depth_sharing () =
  (* Shorter paths share the prefix links of the deep path. *)
  let fx = deep_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
  Db.replicate fx.db ~strategy:Schema.Inplace path;
  let eng = Db.engine fx.db in
  let reg = eng.Fieldrep_replication.Engine.registry in
  let chain_of p =
    Registry.chain reg (Option.get (Schema.find_replication (Db.schema fx.db) (Path.parse p)))
  in
  let deep = chain_of "Emp1.dept.org.region.name" in
  let mid = chain_of "Emp1.dept.org.name" in
  let short = chain_of "Emp1.dept.name" in
  checkb "level-1 link shared by all three" true
    ((List.hd deep).Registry.link_id = (List.hd short).Registry.link_id
    && (List.hd deep).Registry.link_id = (List.hd mid).Registry.link_id);
  checkb "level-2 link shared by deep and mid" true
    ((List.nth deep 1).Registry.link_id = (List.nth mid 1).Registry.link_id);
  (* All three stay consistent under updates at every level. *)
  Db.update_field fx.db ~set:"Region" fx.regions.(1) ~field:"name" (vstr "laurasia");
  Db.update_field fx.db ~set:"Org" fx.orgs.(1) ~field:"name" (vstr "borg");
  Db.update_field fx.db ~set:"Dept" fx.depts.(1) ~field:"name" (vstr "bdept");
  Db.check_integrity fx.db;
  checkv "deep" (manual fx fx.emps.(1)) (deref fx fx.emps.(1));
  checkv "mid" (vstr "borg") (Db.deref fx.db ~set:"Emp1" fx.emps.(1) "dept.org.name");
  checkv "short" (vstr "bdept") (Db.deref fx.db ~set:"Emp1" fx.emps.(1) "dept.name")

let test_insert_delete_on_deep_path () =
  let fx = deep_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace path;
  let e = Db.insert fx.db ~set:"Emp1" [ vstr "newbie"; Value.VRef fx.depts.(2) ] in
  checkv "hidden filled through 3 levels" (manual fx e) (deref fx e);
  Db.check_integrity fx.db;
  (* Delete every employee of org 0's departments: their memberships must
     unwind through all three levels. *)
  Array.iteri
    (fun i e -> if i mod Array.length fx.depts mod 4 = 0 then Db.delete fx.db ~set:"Emp1" e)
    fx.emps;
  Db.check_integrity fx.db

let test_deep_random_soak () =
  let fx = deep_db ~nregions:3 () in
  Db.replicate fx.db ~strategy:Schema.Inplace path;
  Db.replicate fx.db ~strategy:Schema.Separate (Path.parse "Emp1.dept.org.name");
  let rng = Splitmix.create 77 in
  for i = 1 to 150 do
    let pick arr = arr.(Splitmix.int rng (Array.length arr)) in
    (match Splitmix.int rng 6 with
    | 0 ->
        Db.update_field fx.db ~set:"Region" (pick fx.regions) ~field:"name"
          (vstr (Printf.sprintf "r%d" i))
    | 1 ->
        Db.update_field fx.db ~set:"Org" (pick fx.orgs) ~field:"region"
          (if Splitmix.int rng 5 = 0 then Value.VNull else Value.VRef (pick fx.regions))
    | 2 ->
        Db.update_field fx.db ~set:"Dept" (pick fx.depts) ~field:"org"
          (if Splitmix.int rng 5 = 0 then Value.VNull else Value.VRef (pick fx.orgs))
    | 3 ->
        Db.update_field fx.db ~set:"Emp1" (pick fx.emps) ~field:"dept"
          (Value.VRef (pick fx.depts))
    | 4 ->
        Db.update_field fx.db ~set:"Org" (pick fx.orgs) ~field:"name"
          (vstr (Printf.sprintf "o%d" i))
    | _ -> ());
    if i mod 25 = 0 then check_all_emps fx
  done;
  check_all_emps fx

(* ------------------------------------------------------------------ *)
(* §4.3.2: co-clustered link objects                                   *)

let cluster_options =
  { Schema.default_options with Schema.cluster_links = true }

let test_clustered_links_correctness () =
  let fx = deep_db () in
  Db.replicate fx.db ~options:cluster_options ~strategy:Schema.Inplace path;
  check_all_emps fx;
  (* All three levels share one link file. *)
  let eng = Db.engine fx.db in
  let rep = Option.get (Schema.find_replication (Db.schema fx.db) path) in
  let chain = Registry.chain eng.Fieldrep_replication.Engine.registry rep in
  let files =
    List.filter_map
      (fun (n : Registry.node) ->
        Option.map
          (fun id ->
            Fieldrep_storage.Heap_file.file_id
              (Fieldrep_replication.Store.link_file eng.Fieldrep_replication.Engine.store id))
          n.Registry.link_id)
      chain
  in
  checki "three links" 3 (List.length files);
  checkb "one shared file" true
    (match files with f :: rest -> List.for_all (Int.equal f) rest | [] -> false);
  (* Propagation and restructuring still fully correct. *)
  Db.update_field fx.db ~set:"Region" fx.regions.(0) ~field:"name" (vstr "clustered!");
  checkv "propagates" (vstr "clustered!") (deref fx fx.emps.(0));
  Db.update_field fx.db ~set:"Org" fx.orgs.(0) ~field:"region" (Value.VRef fx.regions.(1));
  check_all_emps fx;
  Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"dept" (Value.VRef fx.depts.(5));
  check_all_emps fx

let test_clustered_links_validation () =
  let fx = deep_db () in
  (try
     Db.replicate fx.db ~options:cluster_options ~strategy:Schema.Inplace
       (Path.parse "Emp1.dept.name");
     Alcotest.fail "1-level cluster_links accepted"
   with Invalid_argument _ -> ());
  try
    Db.replicate fx.db
      ~options:{ cluster_options with Schema.collapse = true }
      ~strategy:Schema.Inplace path;
    Alcotest.fail "collapse+cluster accepted"
  with Invalid_argument _ -> ()

let test_clustered_links_shared_prefix_best_effort () =
  (* The level-1 link already exists from an earlier plain path; clustering
     the longer path is best effort but must stay correct. *)
  let fx = deep_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  Db.replicate fx.db ~options:cluster_options ~strategy:Schema.Inplace path;
  check_all_emps fx;
  Db.update_field fx.db ~set:"Region" fx.regions.(1) ~field:"name" (vstr "be");
  check_all_emps fx

let () =
  Alcotest.run "fieldrep_deep_paths"
    [
      ( "three-level",
        [
          Alcotest.test_case "in-place" `Quick test_three_level_inplace;
          Alcotest.test_case "separate" `Quick test_three_level_separate;
          Alcotest.test_case "field propagation" `Quick test_three_level_field_propagation;
          Alcotest.test_case "ref update at each level" `Quick test_ref_update_each_level;
          Alcotest.test_case "link sequence depth" `Quick test_link_sequence_depth;
          Alcotest.test_case "separate inverts n-1 levels" `Quick
            test_separate_inverts_two_levels_only;
          Alcotest.test_case "mixed depth sharing" `Quick test_mixed_depth_sharing;
          Alcotest.test_case "insert/delete" `Quick test_insert_delete_on_deep_path;
          Alcotest.test_case "random soak" `Quick test_deep_random_soak;
        ] );
      ( "clustered links (4.3.2)",
        [
          Alcotest.test_case "correctness" `Quick test_clustered_links_correctness;
          Alcotest.test_case "validation" `Quick test_clustered_links_validation;
          Alcotest.test_case "shared prefix best effort" `Quick
            test_clustered_links_shared_prefix_best_effort;
        ] );
    ]
