(* Capstone model-based test: the full engine (storage, indexes,
   replication in every flavour, query execution) is driven with random
   operation streams and compared, operation by operation, against a naive
   in-memory reference implementation that stores plain association lists
   and evaluates every query by brute force.

   If field replication, index maintenance or the planner ever return
   anything different from the naive semantics, this suite fails. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Ast = Fieldrep_query.Ast
module Exec = Fieldrep_query.Exec
module Splitmix = Fieldrep_util.Splitmix

(* ------------------------------------------------------------------ *)
(* The naive reference: departments and employees as hashtables        *)

type ref_dept = { mutable dname : string; mutable dbudget : int }

type ref_emp = {
  mutable ename : string;
  mutable esalary : int;
  mutable edept : int option;  (* index into depts *)
}

type reference = {
  depts : (int, ref_dept) Hashtbl.t;
  emps : (int, ref_emp) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* The system under test, with OID maps to mirror the reference ids    *)

type sut = {
  db : Db.t;
  dept_oids : (int, Oid.t) Hashtbl.t;
  emp_oids : (int, Oid.t) Hashtbl.t;
}

let make_sut options strategy =
  let db = Db.create ~page_size:1024 ~frames:256 () in
  Db.define_type db
    (Ty.make ~name:"DEPT"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "budget"; ftype = Ty.Scalar Ty.SInt };
       ]);
  Db.define_type db
    (Ty.make ~name:"EMP"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "salary"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "dept"; ftype = Ty.Ref "DEPT" };
       ]);
  Db.create_set db ~name:"Dept" ~elem_type:"DEPT" ();
  Db.create_set db ~name:"Emp1" ~elem_type:"EMP" ();
  Db.build_index db ~name:"by_salary" ~set:"Emp1" ~field:"salary" ~clustered:false;
  (match strategy with
  | Some s -> Db.replicate db ~options ~strategy:s (Path.parse "Emp1.dept.name")
  | None -> ());
  { db; dept_oids = Hashtbl.create 16; emp_oids = Hashtbl.create 64 }

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

type op =
  | Add_dept of int * string * int
  | Add_emp of int * string * int * int option  (* id, name, salary, dept id *)
  | Del_emp of int
  | Rename_dept of int * string
  | Rebudget_dept of int * int
  | Set_salary of int * int
  | Move_emp of int * int option
  | Query_salary_range of int * int
  | Query_by_dept_name of string

let apply_ref r = function
  | Add_dept (id, name, budget) ->
      Hashtbl.replace r.depts id { dname = name; dbudget = budget }
  | Add_emp (id, name, salary, dept) ->
      Hashtbl.replace r.emps id { ename = name; esalary = salary; edept = dept }
  | Del_emp id -> Hashtbl.remove r.emps id
  | Rename_dept (id, name) -> (Hashtbl.find r.depts id).dname <- name
  | Rebudget_dept (id, budget) -> (Hashtbl.find r.depts id).dbudget <- budget
  | Set_salary (id, salary) -> (Hashtbl.find r.emps id).esalary <- salary
  | Move_emp (id, dept) -> (Hashtbl.find r.emps id).edept <- dept
  | Query_salary_range _ | Query_by_dept_name _ -> ()

let ref_rows r = function
  | Query_salary_range (lo, hi) ->
      Hashtbl.fold
        (fun _ e acc ->
          if e.esalary >= lo && e.esalary <= hi then
            let dept =
              match e.edept with
              | Some d -> Value.VString (Hashtbl.find r.depts d).dname
              | None -> Value.VNull
            in
            [ Value.VString e.ename; Value.VInt e.esalary; dept ] :: acc
          else acc)
        r.emps []
      |> List.sort compare
  | Query_by_dept_name name ->
      Hashtbl.fold
        (fun _ e acc ->
          match e.edept with
          | Some d when (Hashtbl.find r.depts d).dname = name ->
              [ Value.VString e.ename ] :: acc
          | Some _ | None -> acc)
        r.emps []
      |> List.sort compare
  | _ -> []

let apply_sut s = function
  | Add_dept (id, name, budget) ->
      Hashtbl.replace s.dept_oids id
        (Db.insert s.db ~set:"Dept" [ Value.VString name; Value.VInt budget ])
  | Add_emp (id, name, salary, dept) ->
      let dv =
        match dept with
        | Some d -> Value.VRef (Hashtbl.find s.dept_oids d)
        | None -> Value.VNull
      in
      Hashtbl.replace s.emp_oids id
        (Db.insert s.db ~set:"Emp1" [ Value.VString name; Value.VInt salary; dv ])
  | Del_emp id ->
      Db.delete s.db ~set:"Emp1" (Hashtbl.find s.emp_oids id);
      Hashtbl.remove s.emp_oids id
  | Rename_dept (id, name) ->
      Db.update_field s.db ~set:"Dept" (Hashtbl.find s.dept_oids id) ~field:"name"
        (Value.VString name)
  | Rebudget_dept (id, budget) ->
      Db.update_field s.db ~set:"Dept" (Hashtbl.find s.dept_oids id) ~field:"budget"
        (Value.VInt budget)
  | Set_salary (id, salary) ->
      Db.update_field s.db ~set:"Emp1" (Hashtbl.find s.emp_oids id) ~field:"salary"
        (Value.VInt salary)
  | Move_emp (id, dept) ->
      let dv =
        match dept with
        | Some d -> Value.VRef (Hashtbl.find s.dept_oids d)
        | None -> Value.VNull
      in
      Db.update_field s.db ~set:"Emp1" (Hashtbl.find s.emp_oids id) ~field:"dept" dv
  | Query_salary_range _ | Query_by_dept_name _ -> ()

let sut_rows s = function
  | Query_salary_range (lo, hi) ->
      Exec.retrieve_values s.db
        {
          Ast.from_set = "Emp1";
          projections = [ "name"; "salary"; "dept.name" ];
          where = Some (Ast.between "salary" (Value.VInt lo) (Value.VInt hi));
        }
      |> List.sort compare
  | Query_by_dept_name name ->
      Exec.retrieve_values s.db
        {
          Ast.from_set = "Emp1";
          projections = [ "name" ];
          where = Some (Ast.eq "dept.name" (Value.VString name));
        }
      |> List.sort compare
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Random op streams                                                   *)

let gen_ops seed n =
  let rng = Splitmix.create seed in
  let next_dept = ref 0 and next_emp = ref 0 in
  let live_emps = ref [] in
  let ops = ref [] in
  let push o = ops := o :: !ops in
  (* Seed data. *)
  for _ = 1 to 3 do
    let id = !next_dept in
    incr next_dept;
    push (Add_dept (id, Printf.sprintf "d%d" id, 100 * id))
  done;
  for _ = 1 to n do
    let dept_arg () =
      if Splitmix.int rng 6 = 0 then None else Some (Splitmix.int rng !next_dept)
    in
    match Splitmix.int rng 10 with
    | 0 when !next_dept < 8 ->
        let id = !next_dept in
        incr next_dept;
        push (Add_dept (id, Printf.sprintf "d%d" id, 100 * id))
    | 0 | 1 ->
        let id = !next_emp in
        incr next_emp;
        live_emps := id :: !live_emps;
        push (Add_emp (id, Printf.sprintf "e%d" id, 1000 + Splitmix.int rng 200, dept_arg ()))
    | 2 -> (
        match !live_emps with
        | [] -> ()
        | id :: rest ->
            live_emps := rest;
            push (Del_emp id))
    | 3 -> push (Rename_dept (Splitmix.int rng !next_dept, Printf.sprintf "r%d" (Splitmix.int rng 100)))
    | 4 -> push (Rebudget_dept (Splitmix.int rng !next_dept, Splitmix.int rng 10_000))
    | 5 -> (
        match !live_emps with
        | [] -> ()
        | id :: _ -> push (Set_salary (id, 1000 + Splitmix.int rng 200)))
    | 6 -> (
        match !live_emps with
        | [] -> ()
        | id :: _ -> push (Move_emp (id, dept_arg ())))
    | 7 ->
        let lo = 1000 + Splitmix.int rng 150 in
        push (Query_salary_range (lo, lo + Splitmix.int rng 80))
    | _ -> push (Query_by_dept_name (Printf.sprintf "r%d" (Splitmix.int rng 100)))
  done;
  List.rev !ops

let run_conformance ~options ~strategy seed =
  let r = { depts = Hashtbl.create 16; emps = Hashtbl.create 64 } in
  let s = make_sut options strategy in
  let ok = ref true in
  List.iter
    (fun op ->
      apply_ref r op;
      apply_sut s op;
      match op with
      | Query_salary_range _ | Query_by_dept_name _ ->
          if ref_rows r op <> sut_rows s op then ok := false
      | _ -> ())
    (gen_ops seed 120);
  Db.check_integrity s.db;
  (* Final full comparison. *)
  let final = Query_salary_range (0, max_int) in
  !ok && ref_rows r final = sut_rows s final

let qcheck_tests =
  let open QCheck in
  let mk name options strategy =
    Test.make ~name ~count:20 (int_bound 1_000_000) (fun seed ->
        run_conformance ~options ~strategy seed)
  in
  [
    mk "conforms: no replication" Schema.default_options None;
    mk "conforms: in-place" Schema.default_options (Some Schema.Inplace);
    mk "conforms: separate" Schema.default_options (Some Schema.Separate);
    mk "conforms: in-place, no link elimination"
      { Schema.default_options with Schema.small_link_threshold = 0 }
      (Some Schema.Inplace);
    mk "conforms: in-place, lazy propagation"
      { Schema.default_options with Schema.lazy_propagation = true }
      (Some Schema.Inplace);
  ]

let () =
  Alcotest.run "fieldrep_model_based"
    [ ("conformance", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests) ]
