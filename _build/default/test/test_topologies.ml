(* Replication over tricky reference topologies:
   - self-referential types (EMP.manager : ref EMP),
   - two reference attributes of one type pointing at the same target type,
   - diamonds (two paths reaching the same final set),
   - multiple source sets over shared intermediate objects.
   These stress the trie-based discovery in the engine (nodes are matched by
   target *type*, so unrelated attributes of the same type must not
   cross-contaminate). *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path

let checki = Alcotest.(check int)
let value_testable = Alcotest.testable Value.pp Value.equal
let checkv = Alcotest.check value_testable
let vstr s = Value.VString s
let vint i = Value.VInt i

(* ------------------------------------------------------------------ *)
(* Self-reference: employees with managers                             *)

let manager_db () =
  let db = Db.create ~page_size:1024 ~frames:128 () in
  Db.define_type db
    (Ty.make ~name:"EMP"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "salary"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "manager"; ftype = Ty.Ref "EMP" };
       ]);
  Db.create_set db ~name:"Emp1" ~elem_type:"EMP" ();
  let boss = Db.insert db ~set:"Emp1" [ vstr "boss"; vint 200; Value.VNull ] in
  let mid = Db.insert db ~set:"Emp1" [ vstr "mid"; vint 150; Value.VRef boss ] in
  let workers =
    Array.init 6 (fun i ->
        Db.insert db ~set:"Emp1" [ vstr (Printf.sprintf "w%d" i); vint 100; Value.VRef mid ])
  in
  (db, boss, mid, workers)

let test_self_ref_one_level () =
  let db, boss, mid, workers = manager_db () in
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "Emp1.manager.name");
  checkv "worker's manager" (vstr "mid") (Db.deref db ~set:"Emp1" workers.(0) "manager.name");
  checkv "mid's manager" (vstr "boss") (Db.deref db ~set:"Emp1" mid "manager.name");
  checkv "boss has none" Value.VNull (Db.deref db ~set:"Emp1" boss "manager.name");
  Db.check_integrity db;
  (* Renaming mid must reach the workers but not mid itself (whose hidden
     copy tracks boss). *)
  Db.update_field db ~set:"Emp1" mid ~field:"name" (vstr "middle");
  checkv "propagated to workers" (vstr "middle")
    (Db.deref db ~set:"Emp1" workers.(3) "manager.name");
  checkv "mid still tracks boss" (vstr "boss") (Db.deref db ~set:"Emp1" mid "manager.name");
  Db.check_integrity db

let test_self_ref_two_levels () =
  let db, _, mid, workers = manager_db () in
  (* manager.manager.name: the grand-manager, through the same type twice. *)
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "Emp1.manager.manager.name");
  checkv "worker's grand-manager" (vstr "boss")
    (Db.deref db ~set:"Emp1" workers.(0) "manager.manager.name");
  checkv "mid has none" Value.VNull (Db.deref db ~set:"Emp1" mid "manager.manager.name");
  Db.check_integrity db;
  (* Reorganisation: worker 0 now reports to the boss directly. *)
  let boss = Value.as_ref (Db.field_value db ~set:"Emp1" (Db.get db ~set:"Emp1" mid) "manager") in
  ignore boss;
  Db.update_field db ~set:"Emp1" workers.(0) ~field:"manager"
    (Db.field_value db ~set:"Emp1" (Db.get db ~set:"Emp1" mid) "manager");
  checkv "no grand-manager anymore" Value.VNull
    (Db.deref db ~set:"Emp1" workers.(0) "manager.manager.name");
  Db.check_integrity db

let test_self_ref_update_objects_own_field () =
  let db, _, _, workers = manager_db () in
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "Emp1.manager.salary");
  (* Updating a worker's own salary must not disturb its hidden copy of the
     manager's salary (same type, different object). *)
  Db.update_field db ~set:"Emp1" workers.(0) ~field:"salary" (vint 999);
  checkv "own salary" (vint 999)
    (Db.field_value db ~set:"Emp1" (Db.get db ~set:"Emp1" workers.(0)) "salary");
  checkv "manager's salary copy intact" (vint 150)
    (Db.deref db ~set:"Emp1" workers.(0) "manager.salary");
  Db.check_integrity db

(* ------------------------------------------------------------------ *)
(* Two attributes of the same target type                              *)

let two_attr_db () =
  let db = Db.create ~page_size:1024 ~frames:128 () in
  Db.define_type db
    (Ty.make ~name:"CITY" [ { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString } ]);
  Db.define_type db
    (Ty.make ~name:"ROUTE"
       [
         { Ty.fname = "code"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "origin"; ftype = Ty.Ref "CITY" };
         { Ty.fname = "destination"; ftype = Ty.Ref "CITY" };
       ]);
  Db.create_set db ~name:"City" ~elem_type:"CITY" ();
  Db.create_set db ~name:"Route" ~elem_type:"ROUTE" ();
  let cities =
    Array.init 4 (fun i -> Db.insert db ~set:"City" [ vstr (Printf.sprintf "city-%d" i) ])
  in
  let routes =
    Array.init 6 (fun i ->
        Db.insert db ~set:"Route"
          [ vint i; Value.VRef cities.(i mod 4); Value.VRef cities.((i + 1) mod 4) ])
  in
  (db, cities, routes)

let test_two_attrs_are_distinct_paths () =
  let db, cities, routes = two_attr_db () in
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "Route.origin.name");
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "Route.destination.name");
  checkv "origin" (vstr "city-0") (Db.deref db ~set:"Route" routes.(0) "origin.name");
  checkv "destination" (vstr "city-1")
    (Db.deref db ~set:"Route" routes.(0) "destination.name");
  Db.check_integrity db;
  (* Renaming a city must update both hidden groups, each exactly where it
     applies. *)
  Db.update_field db ~set:"City" cities.(1) ~field:"name" (vstr "metropolis");
  checkv "as destination of route 0" (vstr "metropolis")
    (Db.deref db ~set:"Route" routes.(0) "destination.name");
  checkv "as origin of route 1" (vstr "metropolis")
    (Db.deref db ~set:"Route" routes.(1) "origin.name");
  checkv "route 0 origin untouched" (vstr "city-0")
    (Db.deref db ~set:"Route" routes.(0) "origin.name");
  Db.check_integrity db;
  (* Repointing one attribute must not affect the other. *)
  Db.update_field db ~set:"Route" routes.(0) ~field:"origin" (Value.VRef cities.(3));
  checkv "origin followed" (vstr "city-3") (Db.deref db ~set:"Route" routes.(0) "origin.name");
  checkv "destination unchanged" (vstr "metropolis")
    (Db.deref db ~set:"Route" routes.(0) "destination.name");
  Db.check_integrity db

let test_two_attrs_get_separate_links () =
  let db, cities, _ = two_attr_db () in
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "Route.origin.name");
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "Route.destination.name");
  (* A city is referenced through both attributes: it carries one link pair
     per attribute (no sharing across different steps). *)
  let record = Db.get db ~set:"City" cities.(1) in
  checki "two link pairs" 2 (List.length record.Fieldrep_model.Record.links)

(* ------------------------------------------------------------------ *)
(* Diamond: two 2-level paths converging on the same final set         *)

let test_diamond_paths () =
  let db = Db.create ~page_size:1024 ~frames:128 () in
  Db.define_type db
    (Ty.make ~name:"CO" [ { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString } ]);
  Db.define_type db
    (Ty.make ~name:"TEAM"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "co"; ftype = Ty.Ref "CO" };
       ]);
  Db.define_type db
    (Ty.make ~name:"PERSON"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "team"; ftype = Ty.Ref "TEAM" };
         { Ty.fname = "client"; ftype = Ty.Ref "CO" };
       ]);
  Db.create_set db ~name:"Co" ~elem_type:"CO" ();
  Db.create_set db ~name:"Team" ~elem_type:"TEAM" ();
  Db.create_set db ~name:"People" ~elem_type:"PERSON" ();
  let co_a = Db.insert db ~set:"Co" [ vstr "alpha" ] in
  let co_b = Db.insert db ~set:"Co" [ vstr "beta" ] in
  let team = Db.insert db ~set:"Team" [ vstr "core"; Value.VRef co_a ] in
  let p = Db.insert db ~set:"People" [ vstr "pat"; Value.VRef team; Value.VRef co_b ] in
  (* Two paths to CO: People.team.co.name (2-level) and People.client.name
     (1-level).  Same final type, different routes. *)
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "People.team.co.name");
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "People.client.name");
  checkv "employer" (vstr "alpha") (Db.deref db ~set:"People" p "team.co.name");
  checkv "client" (vstr "beta") (Db.deref db ~set:"People" p "client.name");
  Db.check_integrity db;
  (* Each rename must travel only its own path. *)
  Db.update_field db ~set:"Co" co_a ~field:"name" (vstr "alpha2");
  checkv "employer renamed" (vstr "alpha2") (Db.deref db ~set:"People" p "team.co.name");
  checkv "client untouched" (vstr "beta") (Db.deref db ~set:"People" p "client.name");
  Db.check_integrity db;
  (* Point both at the same company: updates now reach both hidden slots. *)
  Db.update_field db ~set:"People" p ~field:"client" (Value.VRef co_a);
  Db.update_field db ~set:"Co" co_a ~field:"name" (vstr "alpha3");
  checkv "both via team" (vstr "alpha3") (Db.deref db ~set:"People" p "team.co.name");
  checkv "both via client" (vstr "alpha3") (Db.deref db ~set:"People" p "client.name");
  Db.check_integrity db

(* ------------------------------------------------------------------ *)
(* Two source sets over the same intermediates, mixed strategies       *)

let test_two_source_sets_mixed_strategies () =
  let db = Db.create ~page_size:1024 ~frames:128 () in
  Db.define_type db
    (Ty.make ~name:"DEPT" [ { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString } ]);
  Db.define_type db
    (Ty.make ~name:"EMP"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "dept"; ftype = Ty.Ref "DEPT" };
       ]);
  Db.create_set db ~name:"Dept" ~elem_type:"DEPT" ();
  Db.create_set db ~name:"Emp1" ~elem_type:"EMP" ();
  Db.create_set db ~name:"Emp2" ~elem_type:"EMP" ();
  let d = Db.insert db ~set:"Dept" [ vstr "shared" ] in
  let e1 = Db.insert db ~set:"Emp1" [ vstr "a"; Value.VRef d ] in
  let e2 = Db.insert db ~set:"Emp2" [ vstr "b"; Value.VRef d ] in
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  Db.replicate db ~strategy:Schema.Separate (Path.parse "Emp2.dept.name");
  Db.update_field db ~set:"Dept" d ~field:"name" (vstr "renamed");
  checkv "emp1 via in-place" (vstr "renamed") (Db.deref db ~set:"Emp1" e1 "dept.name");
  checkv "emp2 via separate" (vstr "renamed") (Db.deref db ~set:"Emp2" e2 "dept.name");
  Db.check_integrity db;
  (* The shared dept carries one path-link pair (Emp1) and one sref pair
     (Emp2) — separate link-ID spaces per source set. *)
  let record = Db.get db ~set:"Dept" d in
  checki "two pairs on the shared dept" 2
    (List.length record.Fieldrep_model.Record.links);
  (* Deleting one side's source releases only that side. *)
  Db.delete db ~set:"Emp2" e2;
  let record = Db.get db ~set:"Dept" d in
  checki "sref pair released" 1 (List.length record.Fieldrep_model.Record.links);
  Db.check_integrity db

let () =
  Alcotest.run "fieldrep_topologies"
    [
      ( "self-reference",
        [
          Alcotest.test_case "one level" `Quick test_self_ref_one_level;
          Alcotest.test_case "two levels" `Quick test_self_ref_two_levels;
          Alcotest.test_case "own field vs copy" `Quick test_self_ref_update_objects_own_field;
        ] );
      ( "parallel attributes",
        [
          Alcotest.test_case "distinct paths" `Quick test_two_attrs_are_distinct_paths;
          Alcotest.test_case "separate links" `Quick test_two_attrs_get_separate_links;
        ] );
      ("diamond", [ Alcotest.test_case "two routes to one set" `Quick test_diamond_paths ]);
      ( "multi-source",
        [ Alcotest.test_case "mixed strategies" `Quick test_two_source_sets_mixed_strategies ] );
    ]
