(* Tests for the query layer: planning (index selection, replication-aware
   projection), execution (retrieve/replace, output files), and the
   EXTRA-style surface language. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Ast = Fieldrep_query.Ast
module Exec = Fieldrep_query.Exec
module Lang = Fieldrep_query.Lang
module Wgen = Fieldrep_workload.Gen

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let value_testable = Alcotest.testable Value.pp Value.equal
let checkv = Alcotest.check value_testable

(* The paper's §3.1 example database, via the surface language. *)
let paper_db () =
  let db = Db.create ~page_size:2048 ~frames:128 () in
  List.iter
    (fun stmt -> ignore (Lang.exec db stmt))
    [
      "define type ORG (name: char[], budget: int)";
      "define type DEPT (name: char[], budget: int, org: ref ORG)";
      "define type EMP (name: char[], age: int, salary: int, dept: ref DEPT)";
      "create Org: {own ref ORG}";
      "create Dept: {own ref DEPT}";
      "create Emp1: {own ref EMP}";
    ];
  let org =
    Db.insert db ~set:"Org" [ Value.VString "acme"; Value.VInt 1_000_000 ]
  in
  let depts =
    Array.init 3 (fun i ->
        Db.insert db ~set:"Dept"
          [
            Value.VString (Printf.sprintf "dept-%d" i);
            Value.VInt (100 * (i + 1));
            Value.VRef org;
          ])
  in
  let emps =
    Array.init 12 (fun i ->
        Db.insert db ~set:"Emp1"
          [
            Value.VString (Printf.sprintf "emp-%d" i);
            Value.VInt (25 + i);
            Value.VInt (50_000 + (10_000 * i));
            Value.VRef depts.(i mod 3);
          ])
  in
  (db, org, depts, emps)

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)

let test_planner_picks_index () =
  let db, _, _, _ = paper_db () in
  let q =
    {
      Ast.from_set = "Emp1";
      projections = [ "name" ];
      where = Some (Ast.between "salary" (Value.VInt 0) (Value.VInt 60_000));
    }
  in
  (match (Exec.explain_retrieve db q).Exec.access with
  | Exec.File_scan -> ()
  | Exec.Index_scan _ -> Alcotest.fail "no index yet");
  ignore (Lang.exec db "build btree on Emp1.salary");
  match (Exec.explain_retrieve db q).Exec.access with
  | Exec.Index_scan name -> Alcotest.(check string) "index" "btree_Emp1_salary" name
  | Exec.File_scan -> Alcotest.fail "index not chosen"

let test_planner_join_counts_follow_replication () =
  let db, _, _, _ = paper_db () in
  let q =
    { Ast.from_set = "Emp1"; projections = [ "name"; "dept.name" ]; where = None }
  in
  let joins () = List.assoc "dept.name" (Exec.explain_retrieve db q).Exec.join_counts in
  checki "join before replication" 1 (joins ());
  ignore (Lang.exec db "replicate Emp1.dept.name");
  checki "no join after replication" 0 (joins ())

(* ------------------------------------------------------------------ *)
(* Retrieve                                                            *)

let test_retrieve_with_predicate () =
  let db, _, _, _ = paper_db () in
  ignore (Lang.exec db "build btree on Emp1.salary");
  let rows =
    Exec.retrieve_values db
      {
        Ast.from_set = "Emp1";
        projections = [ "name"; "salary"; "dept.name" ];
        where = Some { Ast.pfield = "salary"; lo = Some (Value.VInt 100_000); hi = None };
      }
  in
  checki "rows" 7 (List.length rows);
  List.iter
    (fun row ->
      match row with
      | [ _; Value.VInt salary; Value.VString dept ] ->
          checkb "salary filter" true (salary >= 100_000);
          checkb "dept projected" true (String.length dept > 0)
      | _ -> Alcotest.fail "bad row shape")
    rows

let test_retrieve_full_scan () =
  let db, _, _, _ = paper_db () in
  let rows =
    Exec.retrieve_values db
      { Ast.from_set = "Emp1"; projections = [ "name" ]; where = None }
  in
  checki "all rows" 12 (List.length rows)

let test_retrieve_empty_result () =
  let db, _, _, _ = paper_db () in
  let rows =
    Exec.retrieve_values db
      {
        Ast.from_set = "Emp1";
        projections = [ "name" ];
        where = Some (Ast.eq "salary" (Value.VInt 1));
      }
  in
  checki "no rows" 0 (List.length rows)

let test_retrieve_output_file_counted () =
  let db, _, _, _ = paper_db () in
  let res =
    Exec.retrieve db { Ast.from_set = "Emp1"; projections = [ "name" ]; where = None }
  in
  checkb "output pages" true (res.Exec.output_pages >= 1);
  checki "rows" 12 res.Exec.rows;
  Exec.drop_output db res.Exec.output_file

let test_retrieve_same_result_with_and_without_replication () =
  let db, _, _, _ = paper_db () in
  let q =
    {
      Ast.from_set = "Emp1";
      projections = [ "name"; "dept.name"; "dept.org.name" ];
      where = None;
    }
  in
  let before = Exec.retrieve_values db q in
  ignore (Lang.exec db "replicate Emp1.dept.name");
  ignore (Lang.exec db "replicate Emp1.dept.org.name using separate");
  let after = Exec.retrieve_values db q in
  checkb "identical results" true
    (List.equal (List.equal Value.equal) before after)

(* ------------------------------------------------------------------ *)
(* Replace                                                             *)

let test_replace_updates_and_propagates () =
  let db, _, depts, emps = paper_db () in
  ignore depts;
  ignore (Lang.exec db "replicate Emp1.dept.budget");
  let n =
    Exec.replace db
      {
        Ast.target_set = "Dept";
        assignments = [ ("budget", Ast.Const (Value.VInt 777)) ];
        rwhere = Some (Ast.eq "name" (Value.VString "dept-0"));
      }
  in
  checki "one dept updated" 1 n;
  checkv "propagated to employees" (Value.VInt 777)
    (Db.deref db ~set:"Emp1" emps.(0) "dept.budget");
  Db.check_integrity db

let test_replace_computed_rhs () =
  let db, _, _, _ = paper_db () in
  let n =
    Exec.replace db
      {
        Ast.target_set = "Emp1";
        assignments =
          [ ("salary", Ast.Computed (fun oid -> Value.VInt (1000 + oid.Oid.slot))) ];
        rwhere = None;
      }
  in
  checki "all employees" 12 n;
  Db.check_integrity db

(* ------------------------------------------------------------------ *)
(* Surface language                                                    *)

let test_lang_retrieve_paper_example () =
  let db, _, _, _ = paper_db () in
  ignore (Lang.exec db "replicate Emp1.dept.name");
  match
    Lang.exec db
      "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) where Emp1.salary > 100000"
  with
  | Lang.Rows rows ->
      (* salaries 50k + 10k*i for i in 0..11: strictly above 100k are i = 6..11 *)
      checki "rows" 6 (List.length rows);
      List.iter
        (fun row -> checki "three columns" 3 (List.length row))
        rows
  | _ -> Alcotest.fail "expected rows"

let test_lang_replace () =
  let db, _, _, _ = paper_db () in
  (match Lang.exec db {|replace (Dept.budget = 5) where Dept.name = "dept-1"|} with
  | Lang.Updated 1 -> ()
  | _ -> Alcotest.fail "expected Updated 1");
  match Lang.exec db {|retrieve (Dept.budget) where Dept.name = "dept-1"|} with
  | Lang.Rows [ [ Value.VInt 5 ] ] -> ()
  | _ -> Alcotest.fail "update not visible"

let test_lang_between_and_comparisons () =
  let db, _, _, _ = paper_db () in
  let count stmt =
    match Lang.exec db stmt with
    | Lang.Rows rows -> List.length rows
    | _ -> Alcotest.fail "expected rows"
  in
  checki "between" 3 (count "retrieve (Emp1.name) where Emp1.age between 25 and 27");
  checki "lt" 2 (count "retrieve (Emp1.name) where Emp1.age < 27");
  checki "ge" 11 (count "retrieve (Emp1.name) where Emp1.age >= 26");
  checki "eq" 1 (count "retrieve (Emp1.name) where Emp1.age = 30")

let test_lang_replication_modifiers () =
  let db, _, _, emps = paper_db () in
  ignore (Lang.exec db "replicate Emp1.dept.budget using separate");
  ignore (Lang.exec db "replicate Emp1.dept.org.name collapsed");
  ignore (Lang.exec db "replicate Emp1.dept.name threshold 0");
  checki "separate hop" 1 (Db.deref_would_join db ~set:"Emp1" "dept.budget");
  checki "collapsed covered" 0 (Db.deref_would_join db ~set:"Emp1" "dept.org.name");
  checkv "value intact" (Value.VString "dept-0") (Db.deref db ~set:"Emp1" emps.(0) "dept.name");
  Db.check_integrity db

let test_lang_script () =
  let db = Db.create () in
  let outcomes =
    Lang.exec_script db
      {|
      -- the paper's schema
      define type DEPT (name: char[], budget: int);
      define type EMP (name: char[], salary: int, dept: ref DEPT);
      create Dept: {own ref DEPT};
      create Emp1: {own ref EMP}
      |}
  in
  checki "four statements" 4 (List.length outcomes)

let test_lang_errors () =
  let db, _, _, _ = paper_db () in
  List.iter
    (fun stmt ->
      try
        ignore (Lang.exec db stmt);
        Alcotest.failf "accepted %S" stmt
      with Lang.Parse_error _ -> ())
    [
      "frobnicate Emp1";
      "retrieve ()";
      "retrieve (Emp1.name) where Emp1.name ~ 3";
      "define type X (a: blob)";
      {|retrieve (Emp1.name) where Emp1.name < "x"|};
      "retrieve (Emp1.name, Dept.name)";
    ]


(* ------------------------------------------------------------------ *)
(* Predicates on path expressions (§3.3.4 associative lookups)         *)

let test_path_predicate_file_scan () =
  let db, _, _, _ = paper_db () in
  (* No index, no replication: evaluated by scan + functional joins. *)
  let rows =
    Exec.retrieve_values db
      {
        Ast.from_set = "Emp1";
        projections = [ "name" ];
        where = Some (Ast.eq "dept.name" (Value.VString "dept-1"));
      }
  in
  checki "matching employees" 4 (List.length rows)

let test_path_predicate_uses_path_index () =
  let db, _, _, _ = paper_db () in
  ignore (Lang.exec db "replicate Emp1.dept.org.name");
  ignore (Lang.exec db "build btree on Emp1.dept.org.name");
  let q =
    {
      Ast.from_set = "Emp1";
      projections = [ "name" ];
      where = Some (Ast.eq "dept.org.name" (Value.VString "acme"));
    }
  in
  (match (Exec.explain_retrieve db q).Exec.access with
  | Exec.Index_scan name ->
      Alcotest.(check string) "path index chosen" "btree_Emp1_dept_org_name" name
  | Exec.File_scan -> Alcotest.fail "path index not chosen");
  checki "all employees of acme" 12 (List.length (Exec.retrieve_values db q));
  (* Same answer without the index. *)
  let db2, _, _, _ = paper_db () in
  checki "scan agrees" 12 (List.length (Exec.retrieve_values db2 q))

let test_lang_path_predicate () =
  let db, _, _, _ = paper_db () in
  match Lang.exec db {|retrieve (Emp1.name) where Emp1.dept.name = "dept-0"|} with
  | Lang.Rows rows -> checki "rows" 4 (List.length rows)
  | _ -> Alcotest.fail "expected rows"

(* ------------------------------------------------------------------ *)
(* Aggregates, ordering, limits                                        *)

let test_aggregates () =
  let db, _, _, _ = paper_db () in
  let vals =
    Exec.aggregate db ~set:"Emp1" ~where:None
      [
        (Exec.Count, "name");
        (Exec.Sum, "salary");
        (Exec.Avg, "salary");
        (Exec.Min, "salary");
        (Exec.Max, "salary");
      ]
  in
  (* salaries are 50k + 10k*i, i = 0..11 *)
  Alcotest.(check (list string))
    "aggregate values"
    [ "12"; string_of_int (12 * 50_000 + 10_000 * 66); "105000"; "50000"; "160000" ]
    (List.map Value.to_string vals)

let test_aggregate_with_predicate_and_path () =
  let db, _, _, _ = paper_db () in
  ignore (Lang.exec db "replicate Emp1.dept.name");
  let vals =
    Exec.aggregate db ~set:"Emp1"
      ~where:(Some { Ast.pfield = "salary"; lo = Some (Value.VInt 100_000); hi = None })
      [ (Exec.Count, "dept.name"); (Exec.Max, "dept.name") ]
  in
  checki "count over path" 7 (Value.as_int (List.nth vals 0));
  checkb "max over strings" true (match List.nth vals 1 with Value.VString _ -> true | _ -> false)

let test_aggregate_empty_selection () =
  let db, _, _, _ = paper_db () in
  let vals =
    Exec.aggregate db ~set:"Emp1"
      ~where:(Some (Ast.eq "salary" (Value.VInt 1)))
      [ (Exec.Count, "name"); (Exec.Sum, "salary"); (Exec.Min, "salary") ]
  in
  Alcotest.(check (list string)) "empty aggregates" [ "0"; "null"; "null" ]
    (List.map Value.to_string vals)

let test_retrieve_sorted_and_limit () =
  let db, _, _, _ = paper_db () in
  let rows =
    Exec.retrieve_sorted db
      { Ast.from_set = "Emp1"; projections = [ "name" ]; where = None }
      ~order_by:"salary" ~descending:true ~limit:3 ()
  in
  Alcotest.(check (list (list string)))
    "top three earners"
    [ [ {|"emp-11"|} ]; [ {|"emp-10"|} ]; [ {|"emp-9"|} ] ]
    (List.map (List.map Value.to_string) rows)

let test_lang_aggregates () =
  let db, _, _, _ = paper_db () in
  (match Lang.exec db "retrieve (count(Emp1.name), avg(Emp1.salary)) where Emp1.salary >= 100000" with
  | Lang.Rows [ [ Value.VInt 7; Value.VInt 130000 ] ] -> ()
  | Lang.Rows rows ->
      Alcotest.failf "unexpected rows: %s"
        (String.concat ";"
           (List.map (fun r -> String.concat "," (List.map Value.to_string r)) rows))
  | _ -> Alcotest.fail "expected rows");
  match Lang.exec db "retrieve (Emp1.name) order by Emp1.salary desc limit 2" with
  | Lang.Rows [ [ Value.VString "emp-11" ]; [ Value.VString "emp-10" ] ] -> ()
  | _ -> Alcotest.fail "order by desc limit failed"

let test_lang_aggregate_mix_rejected () =
  let db, _, _, _ = paper_db () in
  try
    ignore (Lang.exec db "retrieve (Emp1.name, count(Emp1.name))");
    Alcotest.fail "mixed projections accepted"
  with Lang.Parse_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Group-by, insert/delete statements                                  *)

let test_group_by_api () =
  let db, _, _, _ = paper_db () in
  let groups =
    Exec.group_by db ~set:"Emp1" ~where:None ~key:"dept.name"
      [ (Exec.Count, "name"); (Exec.Max, "salary") ]
  in
  (* 12 employees round-robin over three departments. *)
  checki "three groups" 3 (List.length groups);
  List.iter
    (fun (_, vals) -> checki "four per group" 4 (Value.as_int (List.nth vals 0)))
    groups;
  (* Keys ascend. *)
  let keys = List.map fst groups in
  checkb "sorted keys" true (keys = List.sort Value.compare keys)

let test_group_by_replicated_path_no_joins () =
  let db, _, _, _ = paper_db () in
  ignore (Lang.exec db "replicate Emp1.dept.org.name");
  checki "grouping key fully covered" 0
    (Db.deref_would_join db ~set:"Emp1" "dept.org.name");
  match Lang.exec db "retrieve (count(Emp1.name)) group by Emp1.dept.org.name" with
  | Lang.Rows [ [ Value.VString "acme"; Value.VInt 12 ] ] -> ()
  | Lang.Rows rows ->
      Alcotest.failf "unexpected: %s"
        (String.concat ";"
           (List.map (fun r -> String.concat "," (List.map Value.to_string r)) rows))
  | _ -> Alcotest.fail "expected rows"

let test_lang_group_by_validation () =
  let db, _, _, _ = paper_db () in
  List.iter
    (fun stmt ->
      try
        ignore (Lang.exec db stmt);
        Alcotest.failf "accepted %S" stmt
      with Lang.Parse_error _ -> ())
    [
      "retrieve (Emp1.name) group by Emp1.dept.name";  (* no aggregate *)
      "retrieve (Emp1.age, count(Emp1.name)) group by Emp1.dept.name";  (* col <> key *)
      "retrieve (count(Emp1.name)) group by Emp1.dept.name limit 2";
    ]

let test_lang_insert_with_ref_lookup () =
  let db, _, _, _ = paper_db () in
  (match
     Lang.exec db {|insert into Emp1 values ("zoe", 28, 70000, ref(Dept.name = "dept-2"))|}
   with
  | Lang.Inserted _ -> ()
  | _ -> Alcotest.fail "expected Inserted");
  checki "13 employees now" 13 (Db.set_size db "Emp1");
  (match Lang.exec db {|retrieve (Emp1.dept.name) where Emp1.name = "zoe"|} with
  | Lang.Rows [ [ Value.VString "dept-2" ] ] -> ()
  | _ -> Alcotest.fail "reference not resolved");
  (* Ambiguous and empty lookups rejected. *)
  List.iter
    (fun stmt ->
      try
        ignore (Lang.exec db stmt);
        Alcotest.failf "accepted %S" stmt
      with Lang.Parse_error _ -> ())
    [
      {|insert into Emp1 values ("x", 1, 1, ref(Dept.name = "nope"))|};
      {|insert into Emp1 values ("x", 1, 1, ref(Dept.budget >= 0))|};
    ]

let test_lang_delete_from () =
  let db, _, _, _ = paper_db () in
  (match Lang.exec db "delete from Emp1 where Emp1.salary >= 120000" with
  | Lang.Deleted 5 -> ()
  | Lang.Deleted n -> Alcotest.failf "deleted %d" n
  | _ -> Alcotest.fail "expected Deleted");
  checki "7 left" 7 (Db.set_size db "Emp1");
  Db.check_integrity db;
  (match Lang.exec db "delete from Emp1" with
  | Lang.Deleted 7 -> ()
  | _ -> Alcotest.fail "unfiltered delete");
  checki "empty" 0 (Db.set_size db "Emp1")

let test_delete_from_respects_replication_protection () =
  let db, _, _, _ = paper_db () in
  ignore (Lang.exec db "replicate Emp1.dept.name");
  try
    ignore (Lang.exec db "delete from Dept");
    Alcotest.fail "deleted referenced departments"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"index scan equals file scan" ~count:20
      (pair (int_range 0 2000) (int_range 0 2000))
      (fun (a, b) ->
        let lo = min a b and hi = max a b in
        let built =
          Wgen.build { Wgen.default_spec with Wgen.s_count = 150; sharing = 2; seed = a + (b * 7) }
        in
        let db = built.Wgen.db in
        let q where =
          Exec.retrieve_values db
            {
              Ast.from_set = "R";
              projections = [ "field_r"; "sref.repfield" ];
              where;
            }
          |> List.sort compare
        in
        let with_index =
          q (Some (Ast.between "field_r" (Value.VInt lo) (Value.VInt hi)))
        in
        (* Force a file scan by filtering manually. *)
        let all = q None in
        let filtered =
          List.filter
            (fun row ->
              match row with
              | Value.VInt k :: _ -> k >= lo && k <= hi
              | _ -> false)
            all
        in
        with_index = filtered);
  ]

let () =
  Alcotest.run "fieldrep_query"
    [
      ( "planner",
        [
          Alcotest.test_case "picks index" `Quick test_planner_picks_index;
          Alcotest.test_case "join counts follow replication" `Quick
            test_planner_join_counts_follow_replication;
        ] );
      ( "retrieve",
        [
          Alcotest.test_case "with predicate" `Quick test_retrieve_with_predicate;
          Alcotest.test_case "full scan" `Quick test_retrieve_full_scan;
          Alcotest.test_case "empty result" `Quick test_retrieve_empty_result;
          Alcotest.test_case "output file" `Quick test_retrieve_output_file_counted;
          Alcotest.test_case "replication transparent" `Quick
            test_retrieve_same_result_with_and_without_replication;
        ] );
      ( "replace",
        [
          Alcotest.test_case "updates and propagates" `Quick test_replace_updates_and_propagates;
          Alcotest.test_case "computed rhs" `Quick test_replace_computed_rhs;
        ] );
      ( "path predicates",
        [
          Alcotest.test_case "file scan" `Quick test_path_predicate_file_scan;
          Alcotest.test_case "uses path index" `Quick test_path_predicate_uses_path_index;
          Alcotest.test_case "language" `Quick test_lang_path_predicate;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "basic aggregates" `Quick test_aggregates;
          Alcotest.test_case "predicate + path" `Quick test_aggregate_with_predicate_and_path;
          Alcotest.test_case "empty selection" `Quick test_aggregate_empty_selection;
          Alcotest.test_case "sorted + limit" `Quick test_retrieve_sorted_and_limit;
          Alcotest.test_case "language aggregates" `Quick test_lang_aggregates;
          Alcotest.test_case "mixed projections rejected" `Quick
            test_lang_aggregate_mix_rejected;
        ] );
      ( "group-by and dml statements",
        [
          Alcotest.test_case "group_by api" `Quick test_group_by_api;
          Alcotest.test_case "group by replicated path" `Quick
            test_group_by_replicated_path_no_joins;
          Alcotest.test_case "group-by validation" `Quick test_lang_group_by_validation;
          Alcotest.test_case "insert with ref lookup" `Quick test_lang_insert_with_ref_lookup;
          Alcotest.test_case "delete from" `Quick test_lang_delete_from;
          Alcotest.test_case "delete respects protection" `Quick
            test_delete_from_respects_replication_protection;
        ] );
      ( "language",
        [
          Alcotest.test_case "paper retrieve" `Quick test_lang_retrieve_paper_example;
          Alcotest.test_case "replace" `Quick test_lang_replace;
          Alcotest.test_case "comparisons" `Quick test_lang_between_and_comparisons;
          Alcotest.test_case "replication modifiers" `Quick test_lang_replication_modifiers;
          Alcotest.test_case "script" `Quick test_lang_script;
          Alcotest.test_case "errors" `Quick test_lang_errors;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
