(* Tests for the analytical cost model (paper §6).

   The headline tests pin every cell of the paper's Figure 12 (unclustered)
   and Figure 14 (clustered) tables — our equations reproduce all 24 numbers
   exactly — plus the qualitative claims the paper makes about Figures 11
   and 13 (who wins where, and the crossover regions). *)

module Params = Fieldrep_costmodel.Params
module Cost = Fieldrep_costmodel.Cost
module Sweep = Fieldrep_costmodel.Sweep

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let cell p strategy clustering =
  let p = { p with Params.read_sel = 0.002 } in
  ( int_of_float (Float.ceil (Cost.sum (Cost.read p strategy clustering))),
    int_of_float (Float.ceil (Cost.sum (Cost.update p strategy clustering))) )

(* ------------------------------------------------------------------ *)
(* Figure 12: selected values, unclustered access                      *)

let test_figure12 () =
  let check_cell ~f strategy expected_read expected_update =
    let p = { Params.default with Params.sharing = f } in
    let r, u = cell p strategy Params.Unclustered in
    checki (Printf.sprintf "f=%d %s read" f (Sweep.strategy_name strategy)) expected_read r;
    checki (Printf.sprintf "f=%d %s update" f (Sweep.strategy_name strategy)) expected_update u
  in
  check_cell ~f:1 Params.No_replication 43 22;
  check_cell ~f:1 Params.Inplace 23 42;
  check_cell ~f:1 Params.Separate 41 42;
  check_cell ~f:20 Params.No_replication 691 22;
  check_cell ~f:20 Params.Inplace 407 427;
  check_cell ~f:20 Params.Separate 509 42

(* ------------------------------------------------------------------ *)
(* Figure 14: selected values, clustered access                        *)

let test_figure14 () =
  let check_cell ~f strategy expected_read expected_update =
    let p = { Params.default with Params.sharing = f } in
    let r, u = cell p strategy Params.Clustered in
    checki (Printf.sprintf "f=%d %s read" f (Sweep.strategy_name strategy)) expected_read r;
    checki (Printf.sprintf "f=%d %s update" f (Sweep.strategy_name strategy)) expected_update u
  in
  check_cell ~f:1 Params.No_replication 24 4;
  check_cell ~f:1 Params.Inplace 4 24;
  check_cell ~f:1 Params.Separate 23 6;
  check_cell ~f:20 Params.No_replication 316 4;
  check_cell ~f:20 Params.Inplace 32 400;
  check_cell ~f:20 Params.Separate 133 6

(* The f=1 in-place update value (42) depends on the §4.3.1 small-link
   elimination; without it the equations give ≈51. *)
let test_figure12_requires_small_link_elimination () =
  let p = { Params.default with Params.small_link_elim = false } in
  let _, u = cell p Params.Inplace Params.Unclustered in
  checkb "without elimination in-place update is ~51" true (u >= 50 && u <= 52)

(* ------------------------------------------------------------------ *)
(* Derived parameters (Figure 10 sanity)                               *)

let test_derived_defaults () =
  let d = Params.derive Params.default Params.No_replication in
  checki "|R| = f|S|" 10_000 d.Params.r_count;
  checki "O_r = B/(h+r)" 33 d.Params.o_r;
  checki "O_s" 18 d.Params.o_s;
  checki "P_r" 304 d.Params.p_r;
  checki "P_s" 556 d.Params.p_s;
  checki "read objects" 10 d.Params.read_objects;
  checki "update objects" 10 d.Params.update_objects

let test_derived_adjustments () =
  let p = Params.default in
  let no = Params.derive p Params.No_replication in
  let ip = Params.derive p Params.Inplace in
  let sep = Params.derive p Params.Separate in
  checki "in-place grows R by k" (p.Params.r_bytes + p.Params.rep_field_bytes) ip.Params.r_size;
  checki "separate grows R by an OID" (p.Params.r_bytes + p.Params.oid_bytes) sep.Params.r_size;
  checkb "replication makes R pages grow" true
    (ip.Params.p_r > no.Params.p_r && sep.Params.p_r > no.Params.p_r);
  checki "S' object size" (p.Params.rep_field_bytes + p.Params.type_tag_bytes)
    sep.Params.sprime_size;
  checki "link object size" (1 + 2 + (p.Params.sharing * 8)) ip.Params.link_size

let test_sharing_scales_r () =
  let p = { Params.default with Params.sharing = 50 } in
  let d = Params.derive p Params.No_replication in
  checki "|R| at f=50" 500_000 d.Params.r_count

(* ------------------------------------------------------------------ *)
(* Qualitative claims about Figures 11 and 13                          *)

let pct p strategy clustering ~update_prob =
  Cost.percent_vs_no_replication p strategy clustering ~update_prob

let test_inplace_wins_at_low_update_prob () =
  (* "in-place replication reduces I/O costs by approximately 15 to 45
     percent" for p_update < 0.15 (unclustered). *)
  List.iter
    (fun f ->
      let p = { Params.default with Params.sharing = f; Params.read_sel = 0.002 } in
      let d = pct p Params.Inplace Params.Unclustered ~update_prob:0.05 in
      checkb (Printf.sprintf "in-place wins at f=%d (%.1f%%)" f d) true
        (d < -10.0 && d > -50.0))
    [ 1; 10; 20; 50 ]

let test_inplace_beats_separate_at_low_update_prob () =
  (* The paper quotes "roughly 0.15"; the exact boundary shrinks with f
     (0.97 at f=1 down to ~0.095 at f=50), so test below the smallest. *)
  List.iter
    (fun f ->
      let p = { Params.default with Params.sharing = f; Params.read_sel = 0.002 } in
      List.iter
        (fun prob ->
          let ip = Cost.total p Params.Inplace Params.Unclustered ~update_prob:prob in
          let sep = Cost.total p Params.Separate Params.Unclustered ~update_prob:prob in
          checkb (Printf.sprintf "f=%d p=%.2f in-place <= separate" f prob) true (ip <= sep))
        [ 0.0; 0.025; 0.05 ])
    [ 1; 10; 20; 50 ]

let test_separate_beats_inplace_above_035 () =
  (* Excluding f = 1, separate wins for update probability > 0.35. *)
  List.iter
    (fun f ->
      let p = { Params.default with Params.sharing = f; Params.read_sel = 0.002 } in
      List.iter
        (fun prob ->
          let ip = Cost.total p Params.Inplace Params.Unclustered ~update_prob:prob in
          let sep = Cost.total p Params.Separate Params.Unclustered ~update_prob:prob in
          checkb (Printf.sprintf "f=%d p=%.2f separate <= in-place" f prob) true (sep <= ip))
        [ 0.4; 0.6; 0.8; 1.0 ])
    [ 10; 20; 50 ]

let test_separate_useless_at_f1 () =
  (* "for f = 1, separate replication provides almost no benefit". *)
  let p = { Params.default with Params.sharing = 1; Params.read_sel = 0.002 } in
  let d = pct p Params.Separate Params.Unclustered ~update_prob:0.0 in
  checkb (Printf.sprintf "separate near no-replication at f=1 (%.1f%%)" d) true
    (d > -10.0)

let test_inplace_degrades_with_f () =
  (* In-place propagation cost grows with f, so its curve rises faster. *)
  let at f =
    let p = { Params.default with Params.sharing = f; Params.read_sel = 0.002 } in
    Cost.sum (Cost.update p Params.Inplace Params.Unclustered)
  in
  checkb "update cost grows with f" true (at 1 < at 10 && at 10 < at 20 && at 20 < at 50)

let test_separate_update_cost_independent_of_f () =
  let at f =
    let p = { Params.default with Params.sharing = f; Params.read_sel = 0.002 } in
    Cost.sum (Cost.update p Params.Separate Params.Unclustered)
  in
  checkb "separate update flat in f" true (Float.abs (at 1 -. at 50) < 2.0)

let test_clustered_savings_larger () =
  (* "when both indexes are clustered ... the savings in I/O due to
     replication will be larger on a percentage basis." *)
  List.iter
    (fun f ->
      let p = { Params.default with Params.sharing = f; Params.read_sel = 0.002 } in
      let u = pct p Params.Inplace Params.Unclustered ~update_prob:0.05 in
      let c = pct p Params.Inplace Params.Clustered ~update_prob:0.05 in
      checkb (Printf.sprintf "clustered savings larger at f=%d" f) true (c < u))
    [ 1; 10; 20 ]

let test_flip_of_read_selectivity_lines () =
  (* §6.6: at f=10 separate does best at f_r = .005; by f=50 the lines flip
     and f_r = .001 is best. *)
  let pct_at ~f ~fr =
    let p = { Params.default with Params.sharing = f; Params.read_sel = fr } in
    pct p Params.Separate Params.Unclustered ~update_prob:0.1
  in
  checkb "f=10: higher selectivity better" true
    (pct_at ~f:10 ~fr:0.005 < pct_at ~f:10 ~fr:0.001);
  checkb "f=50: lines flipped" true (pct_at ~f:50 ~fr:0.001 < pct_at ~f:50 ~fr:0.005)

let test_crossover_region () =
  (* In-place stops beating separate early, and earlier as f grows:
     computed 0.322 / 0.209 / 0.095 at f = 10 / 20 / 50. *)
  let at f =
    let p = { Params.default with Params.sharing = f; Params.read_sel = 0.002 } in
    match Sweep.crossover p Params.Unclustered Params.Inplace Params.Separate with
    | Some x -> x
    | None -> Alcotest.failf "no crossover at f=%d" f
  in
  let x10 = at 10 and x20 = at 20 and x50 = at 50 in
  checkb "f=10 crossover in (0.25,0.4)" true (x10 > 0.25 && x10 < 0.4);
  checkb "f=20 crossover in (0.15,0.3)" true (x20 > 0.15 && x20 < 0.3);
  checkb "f=50 crossover in (0.05,0.15)" true (x50 > 0.05 && x50 < 0.15);
  checkb "crossover shrinks with f" true (x10 > x20 && x20 > x50)

(* ------------------------------------------------------------------ *)
(* Space overhead (§4.2)                                               *)

let test_space_overhead () =
  let p = Params.default in
  let none = Cost.space p Params.No_replication in
  let ip = Cost.space p Params.Inplace in
  let sep = Cost.space p Params.Separate in
  checkb "in-place grows R" true (ip.Cost.r_pages > none.Cost.r_pages);
  checkb "separate grows R less" true
    (sep.Cost.r_pages > none.Cost.r_pages && sep.Cost.r_pages < ip.Cost.r_pages);
  checki "no aux without replication" 0 none.Cost.aux_pages;
  checki "f=1 in-place links eliminated" 0 ip.Cost.aux_pages;
  checkb "separate has S'" true (sep.Cost.aux_pages > 0);
  (* At f=20, in-place keeps link files. *)
  let ip20 = Cost.space { p with Params.sharing = 20 } Params.Inplace in
  checkb "links materialised at f=20" true (ip20.Cost.aux_pages > 0);
  (* Exact P_r / P_s at the defaults (O_r = 33, O_s = 18). *)
  checki "P_r" 304 none.Cost.r_pages;
  checki "P_s" 556 none.Cost.s_pages

(* ------------------------------------------------------------------ *)
(* Sweep plumbing                                                      *)

let test_figure_shape () =
  let fig = Sweep.figure Params.default Params.Unclustered in
  checki "four sharing levels" 4 (List.length fig);
  let _, series = List.hd fig in
  checki "2 strategies x 3 selectivities" 6 (List.length series);
  List.iter
    (fun s -> checki "21 points" 21 (List.length s.Sweep.points))
    series

let test_table_shape () =
  let tbl = Sweep.table Params.default Params.Unclustered in
  checki "2 sharings x 3 strategies" 6 (List.length tbl)

let test_no_replication_pct_is_zero () =
  let p = Params.default in
  List.iter
    (fun prob ->
      let d = pct p Params.No_replication Params.Unclustered ~update_prob:prob in
      Alcotest.(check (float 1e-9)) "zero" 0.0 d)
    [ 0.0; 0.5; 1.0 ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let qcheck_tests =
  let open QCheck in
  let params_gen =
    Gen.(
      let* f = oneofl [ 1; 2; 5; 10; 20; 50 ] in
      let* fr = oneofl [ 0.001; 0.002; 0.005; 0.01 ] in
      let* fs = oneofl [ 0.0005; 0.001; 0.002 ] in
      let* sc = oneofl [ 1000; 5000; 10_000 ] in
      return { Params.default with Params.sharing = f; read_sel = fr; update_sel = fs; s_count = sc })
  in
  let arb = make params_gen in
  [
    Test.make ~name:"costs are positive and finite" ~count:200 arb (fun p ->
        List.for_all
          (fun strategy ->
            List.for_all
              (fun clustering ->
                let r = Cost.sum (Cost.read p strategy clustering) in
                let u = Cost.sum (Cost.update p strategy clustering) in
                r > 0.0 && u > 0.0 && Float.is_finite r && Float.is_finite u)
              [ Params.Unclustered; Params.Clustered ])
          [ Params.No_replication; Params.Inplace; Params.Separate ]);
    Test.make ~name:"replication never loses on pure reads (unclustered)" ~count:100 arb
      (fun p ->
        let base = Cost.sum (Cost.read p Params.No_replication Params.Unclustered) in
        Cost.sum (Cost.read p Params.Inplace Params.Unclustered) <= base +. 1e-9
        && Cost.sum (Cost.read p Params.Separate Params.Unclustered) <= base +. 2.0);
    Test.make ~name:"no-replication update never loses" ~count:100 arb (fun p ->
        let base = Cost.sum (Cost.update p Params.No_replication Params.Unclustered) in
        Cost.sum (Cost.update p Params.Inplace Params.Unclustered) >= base -. 1e-9
        && Cost.sum (Cost.update p Params.Separate Params.Unclustered) >= base -. 1e-9);
    Test.make ~name:"total is monotone between endpoints" ~count:100
      (pair arb (float_range 0.0 1.0))
      (fun (p, prob) ->
        let t = Cost.total p Params.Inplace Params.Unclustered ~update_prob:prob in
        let r = Cost.sum (Cost.read p Params.Inplace Params.Unclustered) in
        let u = Cost.sum (Cost.update p Params.Inplace Params.Unclustered) in
        t >= Float.min r u -. 1e-6 && t <= Float.max r u +. 1e-6);
  ]

let () =
  Alcotest.run "fieldrep_costmodel"
    [
      ( "paper tables",
        [
          Alcotest.test_case "figure 12 exact" `Quick test_figure12;
          Alcotest.test_case "figure 14 exact" `Quick test_figure14;
          Alcotest.test_case "figure 12 needs small-link elimination" `Quick
            test_figure12_requires_small_link_elimination;
        ] );
      ( "derived parameters",
        [
          Alcotest.test_case "defaults" `Quick test_derived_defaults;
          Alcotest.test_case "per-strategy adjustments" `Quick test_derived_adjustments;
          Alcotest.test_case "sharing scales |R|" `Quick test_sharing_scales_r;
        ] );
      ( "paper claims",
        [
          Alcotest.test_case "in-place wins at low update prob" `Quick
            test_inplace_wins_at_low_update_prob;
          Alcotest.test_case "in-place beats separate at low update prob" `Quick
            test_inplace_beats_separate_at_low_update_prob;
          Alcotest.test_case "separate beats in-place above 0.35" `Quick
            test_separate_beats_inplace_above_035;
          Alcotest.test_case "separate useless at f=1" `Quick test_separate_useless_at_f1;
          Alcotest.test_case "in-place degrades with f" `Quick test_inplace_degrades_with_f;
          Alcotest.test_case "separate update flat in f" `Quick
            test_separate_update_cost_independent_of_f;
          Alcotest.test_case "clustered savings larger" `Quick test_clustered_savings_larger;
          Alcotest.test_case "selectivity lines flip" `Quick test_flip_of_read_selectivity_lines;
          Alcotest.test_case "crossover region" `Quick test_crossover_region;
        ] );
      ( "space",
        [ Alcotest.test_case "overhead per strategy" `Quick test_space_overhead ] );
      ( "sweep",
        [
          Alcotest.test_case "figure shape" `Quick test_figure_shape;
          Alcotest.test_case "table shape" `Quick test_table_shape;
          Alcotest.test_case "baseline pct is zero" `Quick test_no_replication_pct_is_zero;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
