(* Tests for the page-based B+-tree: ordering, duplicates, splits, deletes
   with rebalancing, range scans, bulk load, and model-based properties. *)

module Oid = Fieldrep_storage.Oid
module Pager = Fieldrep_storage.Pager
module Btree = Fieldrep_btree.Btree
module Key = Fieldrep_btree.Key
module Splitmix = Fieldrep_util.Splitmix

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let oid i = { Oid.file = 1; page = i / 100; slot = i mod 100 }
let mk_pager ?(page_size = 512) () = Pager.create ~page_size ~frames:64 ()

let mk_tree ?page_size ?max_leaf_entries ?max_internal_entries () =
  Btree.create ?max_leaf_entries ?max_internal_entries (mk_pager ?page_size ())

(* ------------------------------------------------------------------ *)
(* Key                                                                 *)

let test_key_roundtrip () =
  List.iter
    (fun k ->
      let buf = Bytes.create (Key.encoded_size k) in
      ignore (Key.encode buf 0 k);
      let k', off = Key.decode buf 0 in
      checkb "equal" true (Key.equal k k');
      checki "size" (Key.encoded_size k) off)
    [ Key.Int 0; Key.Int (-5); Key.Int max_int; Key.String ""; Key.String "salary" ]

let test_key_order () =
  checkb "int order" true (Key.compare (Key.Int 1) (Key.Int 2) < 0);
  checkb "string order" true (Key.compare (Key.String "a") (Key.String "b") < 0);
  checkb "same variant check" true (Key.same_variant (Key.Int 1) (Key.Int 9));
  checkb "cross variant check" false (Key.same_variant (Key.Int 1) (Key.String "x"))

(* ------------------------------------------------------------------ *)
(* Basic operations                                                    *)

let test_insert_find () =
  let t = mk_tree () in
  for i = 0 to 99 do
    Btree.insert t (Key.Int i) (oid i)
  done;
  checki "count" 100 (Btree.entry_count t);
  for i = 0 to 99 do
    match Btree.find_first t (Key.Int i) with
    | Some o -> checkb "found right oid" true (Oid.equal o (oid i))
    | None -> Alcotest.failf "missing key %d" i
  done;
  checkb "absent key" true (Btree.find_first t (Key.Int 1000) = None);
  Btree.check_invariants t

let test_duplicate_keys () =
  let t = mk_tree () in
  for i = 0 to 9 do
    Btree.insert t (Key.Int 5) (oid i)
  done;
  let oids = Btree.find t (Key.Int 5) in
  checki "all duplicates found" 10 (List.length oids);
  (* Returned in OID order. *)
  let sorted = List.sort Oid.compare oids in
  checkb "oid order" true (List.equal Oid.equal oids sorted);
  Btree.check_invariants t

let test_duplicate_entry_rejected () =
  let t = mk_tree () in
  Btree.insert t (Key.Int 1) (oid 1);
  try
    Btree.insert t (Key.Int 1) (oid 1);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_mixed_variants_rejected () =
  let t = mk_tree () in
  Btree.insert t (Key.Int 1) (oid 1);
  try
    Btree.insert t (Key.String "x") (oid 2);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_string_keys () =
  let t = mk_tree () in
  let words = [ "zeta"; "alpha"; "mu"; "beta"; "omega"; "gamma" ] in
  List.iteri (fun i w -> Btree.insert t (Key.String w) (oid i)) words;
  let collected = ref [] in
  Btree.iter_all t (fun k _ -> collected := k :: !collected);
  let got = List.rev_map (function Key.String s -> s | Key.Int _ -> "?") !collected in
  Alcotest.(check (list string)) "sorted" (List.sort String.compare words) got;
  Btree.check_invariants t

(* ------------------------------------------------------------------ *)
(* Splits / height growth                                              *)

let test_split_growth () =
  let t = mk_tree ~page_size:256 () in
  checki "initial height" 1 (Btree.height t);
  for i = 0 to 499 do
    Btree.insert t (Key.Int i) (oid i)
  done;
  checkb "grew" true (Btree.height t >= 3);
  Btree.check_invariants t;
  for i = 0 to 499 do
    checkb "all present" true (Btree.find_first t (Key.Int i) <> None)
  done

let test_capped_fanout () =
  let t = mk_tree ~max_leaf_entries:4 ~max_internal_entries:4 () in
  for i = 0 to 63 do
    Btree.insert t (Key.Int i) (oid i)
  done;
  Btree.check_invariants t;
  (* With fanout <= 5 and 64 entries, height must be at least 3. *)
  checkb "height reflects cap" true (Btree.height t >= 3)

let test_reverse_and_random_insert_orders () =
  List.iter
    (fun order ->
      let t = mk_tree ~page_size:256 () in
      Array.iter (fun i -> Btree.insert t (Key.Int i) (oid i)) order;
      Btree.check_invariants t;
      let prev = ref min_int in
      Btree.iter_all t (fun k _ ->
          match k with
          | Key.Int v ->
              checkb "ascending" true (v > !prev);
              prev := v
          | Key.String _ -> Alcotest.fail "unexpected"))
    [
      Array.init 300 (fun i -> 299 - i);
      Splitmix.permutation (Splitmix.create 5) 300;
    ]

(* ------------------------------------------------------------------ *)
(* Range scans                                                         *)

let test_range_scan () =
  let t = mk_tree ~page_size:256 () in
  for i = 0 to 199 do
    Btree.insert t (Key.Int (2 * i)) (oid i)
  done;
  let seen =
    Btree.fold_range t ~lo:(Key.Int 100) ~hi:(Key.Int 120) ~init:[] ~f:(fun acc k _ ->
        k :: acc)
  in
  let expected = List.init 11 (fun i -> Key.Int (100 + (2 * i))) in
  Alcotest.(check (list string))
    "inclusive range"
    (List.map Key.to_string expected)
    (List.rev_map Key.to_string seen)

let test_range_scan_empty_and_degenerate () =
  let t = mk_tree () in
  Btree.iter_range t ~lo:(Key.Int 0) ~hi:(Key.Int 100) (fun _ _ ->
      Alcotest.fail "empty tree yields nothing");
  Btree.insert t (Key.Int 5) (oid 1);
  Btree.iter_range t ~lo:(Key.Int 10) ~hi:(Key.Int 0) (fun _ _ ->
      Alcotest.fail "inverted range yields nothing");
  let hits = ref 0 in
  Btree.iter_range t ~lo:(Key.Int 5) ~hi:(Key.Int 5) (fun _ _ -> incr hits);
  checki "point range" 1 !hits

let test_range_scan_spans_leaves () =
  let t = mk_tree ~max_leaf_entries:4 () in
  for i = 0 to 99 do
    Btree.insert t (Key.Int i) (oid i)
  done;
  let count = ref 0 in
  Btree.iter_range t ~lo:(Key.Int 10) ~hi:(Key.Int 89) (fun _ _ -> incr count);
  checki "spans many leaves" 80 !count

(* ------------------------------------------------------------------ *)
(* Deletes                                                             *)

let test_delete_basic () =
  let t = mk_tree () in
  for i = 0 to 49 do
    Btree.insert t (Key.Int i) (oid i)
  done;
  checkb "delete present" true (Btree.delete t (Key.Int 25) (oid 25));
  checkb "delete absent" false (Btree.delete t (Key.Int 25) (oid 25));
  checkb "gone" true (Btree.find_first t (Key.Int 25) = None);
  checki "count" 49 (Btree.entry_count t);
  Btree.check_invariants t

let test_delete_one_duplicate () =
  let t = mk_tree () in
  for i = 0 to 5 do
    Btree.insert t (Key.Int 7) (oid i)
  done;
  checkb "deleted" true (Btree.delete t (Key.Int 7) (oid 3));
  let remaining = Btree.find t (Key.Int 7) in
  checki "five left" 5 (List.length remaining);
  checkb "right one removed" false (List.exists (Oid.equal (oid 3)) remaining)

let test_delete_everything () =
  let t = mk_tree ~page_size:256 () in
  let n = 400 in
  for i = 0 to n - 1 do
    Btree.insert t (Key.Int i) (oid i)
  done;
  let order = Splitmix.permutation (Splitmix.create 9) n in
  Array.iter (fun i -> checkb "deleted" true (Btree.delete t (Key.Int i) (oid i))) order;
  checki "empty" 0 (Btree.entry_count t);
  checki "height collapsed" 1 (Btree.height t);
  Btree.check_invariants t;
  (* Tree is reusable after being emptied. *)
  Btree.insert t (Key.Int 1) (oid 1);
  checkb "reusable" true (Btree.find_first t (Key.Int 1) <> None)

let test_delete_interleaved_with_insert () =
  let t = mk_tree ~page_size:256 () in
  let rng = Splitmix.create 21 in
  let model = Hashtbl.create 64 in
  for round = 0 to 1500 do
    let k = Splitmix.int rng 200 in
    if Splitmix.bool rng then begin
      if not (Hashtbl.mem model k) then begin
        Btree.insert t (Key.Int k) (oid k);
        Hashtbl.add model k ()
      end
    end
    else begin
      let present = Hashtbl.mem model k in
      let deleted = Btree.delete t (Key.Int k) (oid k) in
      checkb "delete agrees with model" present deleted;
      if present then Hashtbl.remove model k
    end;
    if round mod 300 = 0 then Btree.check_invariants t
  done;
  Btree.check_invariants t;
  checki "final count" (Hashtbl.length model) (Btree.entry_count t)

(* ------------------------------------------------------------------ *)
(* Bulk load                                                           *)

let test_bulk_load_matches_inserts () =
  let entries = Array.init 1000 (fun i -> (Key.Int (i * 3), oid i)) in
  let t = mk_tree ~page_size:256 () in
  (* Bulk load from a shuffled copy; internal sort must fix the order. *)
  let shuffled = Array.copy entries in
  Splitmix.shuffle (Splitmix.create 31) shuffled;
  Btree.bulk_load t shuffled;
  checki "count" 1000 (Btree.entry_count t);
  Btree.check_invariants t;
  Array.iter
    (fun (k, o) ->
      match Btree.find_first t k with
      | Some found -> checkb "present" true (Oid.equal found o)
      | None -> Alcotest.failf "missing %s" (Key.to_string k))
    entries

let test_bulk_load_empty_and_single () =
  let t = mk_tree () in
  Btree.bulk_load t [||];
  checki "empty" 0 (Btree.entry_count t);
  let t2 = mk_tree () in
  Btree.bulk_load t2 [| (Key.Int 9, oid 9) |];
  checki "single" 1 (Btree.entry_count t2);
  Btree.check_invariants t2

let test_bulk_load_rejects_nonempty () =
  let t = mk_tree () in
  Btree.insert t (Key.Int 1) (oid 1);
  try
    Btree.bulk_load t [| (Key.Int 2, oid 2) |];
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_bulk_load_then_mutate () =
  let t = mk_tree ~page_size:256 () in
  Btree.bulk_load t (Array.init 500 (fun i -> (Key.Int i, oid i)));
  for i = 500 to 599 do
    Btree.insert t (Key.Int i) (oid i)
  done;
  for i = 0 to 99 do
    checkb "deleted" true (Btree.delete t (Key.Int i) (oid i))
  done;
  Btree.check_invariants t;
  checki "count" 500 (Btree.entry_count t)

(* ------------------------------------------------------------------ *)
(* I/O behaviour                                                       *)

let test_lookup_io_is_height_bound () =
  let pager = Pager.create ~page_size:512 ~frames:128 () in
  let t = Btree.create pager in
  for i = 0 to 4999 do
    Btree.insert t (Key.Int i) (oid i)
  done;
  let h = Btree.height t in
  Pager.run_cold pager (fun () -> ignore (Btree.find_first t (Key.Int 2500)));
  let reads = (Pager.stats pager).Fieldrep_storage.Stats.page_reads in
  checkb "descent reads <= height + 1" true (reads <= h + 1)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"btree matches sorted-assoc model" ~count:40
      (list_of_size Gen.(1 -- 300) (pair (int_range 0 100) bool))
      (fun ops ->
        let t = mk_tree ~page_size:256 () in
        let model = Hashtbl.create 64 in
        List.iter
          (fun (k, ins) ->
            if ins then begin
              if not (Hashtbl.mem model k) then begin
                Btree.insert t (Key.Int k) (oid k);
                Hashtbl.add model k ()
              end
            end
            else begin
              ignore (Btree.delete t (Key.Int k) (oid k));
              Hashtbl.remove model k
            end)
          ops;
        Btree.check_invariants t;
        let expected = Hashtbl.fold (fun k () acc -> k :: acc) model [] in
        let expected = List.sort Int.compare expected in
        let got = ref [] in
        Btree.iter_all t (fun k _ ->
            match k with Key.Int v -> got := v :: !got | Key.String _ -> ());
        List.rev !got = expected);
    Test.make ~name:"range scan agrees with filter" ~count:40
      (triple (list_of_size Gen.(0 -- 150) (int_range 0 500)) (int_range 0 500) (int_range 0 500))
      (fun (keys, a, b) ->
        let lo = min a b and hi = max a b in
        let keys = List.sort_uniq Int.compare keys in
        let t = mk_tree ~page_size:256 () in
        List.iter (fun k -> Btree.insert t (Key.Int k) (oid k)) keys;
        let expected = List.filter (fun k -> k >= lo && k <= hi) keys in
        let got =
          Btree.fold_range t ~lo:(Key.Int lo) ~hi:(Key.Int hi) ~init:[] ~f:(fun acc k _ ->
              match k with Key.Int v -> v :: acc | Key.String _ -> acc)
        in
        List.rev got = expected);
    Test.make ~name:"bulk load equals incremental build" ~count:25
      (list_of_size Gen.(0 -- 400) (int_range 0 1000))
      (fun keys ->
        let keys = List.sort_uniq Int.compare keys in
        let incremental = mk_tree ~page_size:256 () in
        List.iter (fun k -> Btree.insert incremental (Key.Int k) (oid k)) keys;
        let bulk = mk_tree ~page_size:256 () in
        Btree.bulk_load bulk (Array.of_list (List.map (fun k -> (Key.Int k, oid k)) keys));
        Btree.check_invariants bulk;
        let dump t =
          let acc = ref [] in
          Btree.iter_all t (fun k o -> acc := (Key.to_string k, Oid.to_string o) :: !acc);
          List.rev !acc
        in
        dump incremental = dump bulk);
  ]

let () =
  Alcotest.run "fieldrep_btree"
    [
      ( "key",
        [
          Alcotest.test_case "roundtrip" `Quick test_key_roundtrip;
          Alcotest.test_case "order" `Quick test_key_order;
        ] );
      ( "basic",
        [
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "duplicate keys" `Quick test_duplicate_keys;
          Alcotest.test_case "duplicate entries rejected" `Quick test_duplicate_entry_rejected;
          Alcotest.test_case "mixed variants rejected" `Quick test_mixed_variants_rejected;
          Alcotest.test_case "string keys" `Quick test_string_keys;
        ] );
      ( "splits",
        [
          Alcotest.test_case "height growth" `Quick test_split_growth;
          Alcotest.test_case "capped fanout" `Quick test_capped_fanout;
          Alcotest.test_case "insert orders" `Quick test_reverse_and_random_insert_orders;
        ] );
      ( "range",
        [
          Alcotest.test_case "inclusive scan" `Quick test_range_scan;
          Alcotest.test_case "empty/degenerate" `Quick test_range_scan_empty_and_degenerate;
          Alcotest.test_case "spans leaves" `Quick test_range_scan_spans_leaves;
        ] );
      ( "delete",
        [
          Alcotest.test_case "basic" `Quick test_delete_basic;
          Alcotest.test_case "one duplicate" `Quick test_delete_one_duplicate;
          Alcotest.test_case "delete everything" `Quick test_delete_everything;
          Alcotest.test_case "interleaved" `Quick test_delete_interleaved_with_insert;
        ] );
      ( "bulk_load",
        [
          Alcotest.test_case "matches inserts" `Quick test_bulk_load_matches_inserts;
          Alcotest.test_case "empty and single" `Quick test_bulk_load_empty_and_single;
          Alcotest.test_case "rejects non-empty" `Quick test_bulk_load_rejects_nonempty;
          Alcotest.test_case "mutate after load" `Quick test_bulk_load_then_mutate;
        ] );
      ("io", [ Alcotest.test_case "lookup bounded by height" `Quick test_lookup_io_is_height_bound ]);
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
