(* End-to-end tests of the field-replication engine through the Db facade,
   built around the paper's employee database (ORG / DEPT / EMP, §2).

   Covers: in-place and separate strategies at 1 and 2 levels, full-object
   replication, link sharing across paths with common prefixes (§4.1.4),
   insert/delete maintenance (§4.1.1), scalar- and reference-update
   propagation (§4.1.2-3, §5.2), small-link elimination (§4.3.1), collapsed
   inverted paths (§4.3.3), indexes on replicated data (§3.3.4), and the
   from-scratch invariant checker. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Heap_file = Fieldrep_storage.Heap_file
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Key = Fieldrep_btree.Key
module Registry = Fieldrep_replication.Registry
module Store = Fieldrep_replication.Store
module Engine = Fieldrep_replication.Engine
module Invariants = Fieldrep_replication.Invariants
module Splitmix = Fieldrep_util.Splitmix

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let value_testable = Alcotest.testable Value.pp Value.equal
let checkv = Alcotest.check value_testable

(* ------------------------------------------------------------------ *)
(* Fixture: the employee database                                      *)

type fixture = {
  db : Db.t;
  orgs : Oid.t array;
  depts : Oid.t array;
  emps : Oid.t array;
}

let org_ty =
  Ty.make ~name:"ORG"
    [
      { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
      { Ty.fname = "budget"; ftype = Ty.Scalar Ty.SInt };
    ]

let dept_ty =
  Ty.make ~name:"DEPT"
    [
      { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
      { Ty.fname = "budget"; ftype = Ty.Scalar Ty.SInt };
      { Ty.fname = "org"; ftype = Ty.Ref "ORG" };
    ]

let emp_ty =
  Ty.make ~name:"EMP"
    [
      { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
      { Ty.fname = "age"; ftype = Ty.Scalar Ty.SInt };
      { Ty.fname = "salary"; ftype = Ty.Scalar Ty.SInt };
      { Ty.fname = "dept"; ftype = Ty.Ref "DEPT" };
    ]

let employee_db ?(norgs = 2) ?(ndepts = 4) ?(nemps = 16) ?(two_sets = false) () =
  let db = Db.create ~page_size:1024 ~frames:128 () in
  Db.define_type db org_ty;
  Db.define_type db dept_ty;
  Db.define_type db emp_ty;
  Db.create_set db ~name:"Org" ~elem_type:"ORG" ();
  Db.create_set db ~name:"Dept" ~elem_type:"DEPT" ();
  Db.create_set db ~name:"Emp1" ~elem_type:"EMP" ();
  if two_sets then Db.create_set db ~name:"Emp2" ~elem_type:"EMP" ();
  let orgs =
    Array.init norgs (fun i ->
        Db.insert db ~set:"Org"
          [ Value.VString (Printf.sprintf "org-%d" i); Value.VInt (1000 * (i + 1)) ])
  in
  let depts =
    Array.init ndepts (fun i ->
        Db.insert db ~set:"Dept"
          [
            Value.VString (Printf.sprintf "dept-%d" i);
            Value.VInt (100 * (i + 1));
            Value.VRef orgs.(i mod norgs);
          ])
  in
  let emps =
    Array.init nemps (fun i ->
        Db.insert db ~set:"Emp1"
          [
            Value.VString (Printf.sprintf "emp-%d" i);
            Value.VInt (20 + (i mod 40));
            Value.VInt (30_000 + (1000 * i));
            Value.VRef depts.(i mod ndepts);
          ])
  in
  { db; orgs; depts; emps }

let check_all fx = Db.check_integrity fx.db

let vstr s = Value.VString s
let vint i = Value.VInt i

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry_link_sharing () =
  (* The paper's §4.1.4 example: three paths from Emp1 share link 1; a path
     from Emp2 gets its own. *)
  let fx = employee_db ~two_sets:true () in
  let s = Db.schema fx.db in
  List.iter
    (fun p -> ignore (Schema.add_replication s ~strategy:Schema.Inplace (Path.parse p)))
    [ "Emp1.dept.budget"; "Emp1.dept.name"; "Emp1.dept.org.name"; "Emp2.dept.org.name" ];
  let reg = Registry.compile s in
  let link_ids_of p =
    let rep = Option.get (Schema.find_replication s (Path.parse p)) in
    List.map (fun (n : Registry.node) -> n.Registry.link_id) (Registry.chain reg rep)
  in
  let budget = link_ids_of "Emp1.dept.budget" in
  let name = link_ids_of "Emp1.dept.name" in
  let orgname = link_ids_of "Emp1.dept.org.name" in
  let other = link_ids_of "Emp2.dept.org.name" in
  checkb "shared level-1 link" true (List.hd budget = List.hd name);
  checkb "longer path shares level-1 link" true (List.hd budget = List.hd orgname);
  checkb "different source set gets a new link" true (List.hd other <> List.hd budget);
  checki "link sequence lengths" 2 (List.length orgname);
  checkb "all links materialised" true
    (List.for_all Option.is_some (budget @ name @ orgname @ other))

let test_registry_stable_ids () =
  let fx = employee_db () in
  let s = Db.schema fx.db in
  ignore (Schema.add_replication s ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name"));
  let reg1 = Registry.compile s in
  let id1 = (List.hd (Registry.roots reg1 "Emp1")).Registry.link_id in
  ignore
    (Schema.add_replication s ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name"));
  let reg2 = Registry.compile s in
  let id2 = (List.hd (Registry.roots reg2 "Emp1")).Registry.link_id in
  checkb "level-1 link id stable across recompiles" true (id1 = id2)

let test_registry_collapse_validation () =
  let fx = employee_db () in
  let s = Db.schema fx.db in
  let options = { Schema.default_options with Schema.collapse = true } in
  ignore
    (Schema.add_replication s ~options ~strategy:Schema.Inplace
       (Path.parse "Emp1.dept.name"));
  try
    ignore (Registry.compile s);
    Alcotest.fail "expected Invalid_argument for 1-level collapse"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* In-place replication, 1 level                                       *)

let test_inplace_deref_no_join () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  checki "no functional join" 0 (Db.deref_would_join fx.db ~set:"Emp1" "dept.name");
  checkv "replicated value" (vstr "dept-1") (Db.deref fx.db ~set:"Emp1" fx.emps.(1) "dept.name");
  (* An uncovered path still walks. *)
  checki "uncovered path joins" 1 (Db.deref_would_join fx.db ~set:"Emp1" "dept.budget");
  check_all fx

let test_inplace_scalar_propagation () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  Db.update_field fx.db ~set:"Dept" fx.depts.(2) ~field:"name" (vstr "renamed");
  (* Every employee of dept 2 sees the new value without a join. *)
  Array.iteri
    (fun i e ->
      if i mod 4 = 2 then
        checkv "propagated" (vstr "renamed") (Db.deref fx.db ~set:"Emp1" e "dept.name"))
    fx.emps;
  (* Unrelated departments untouched. *)
  checkv "other dept" (vstr "dept-1") (Db.deref fx.db ~set:"Emp1" fx.emps.(1) "dept.name");
  check_all fx

let test_inplace_update_to_unreferenced_dept_is_free () =
  let fx = employee_db ~ndepts:5 ~nemps:4 () in
  (* Dept 4 has no employees (emps cover depts 0-3). *)
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  let d4 = Db.get fx.db ~set:"Dept" fx.depts.(4) in
  checki "unreferenced dept has no link pairs" 0 (List.length d4.Record.links);
  Db.update_field fx.db ~set:"Dept" fx.depts.(4) ~field:"name" (vstr "quiet");
  check_all fx

let test_inplace_insert_maintenance () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  let e =
    Db.insert fx.db ~set:"Emp1"
      [ vstr "newhire"; vint 30; vint 55_000; Value.VRef fx.depts.(0) ]
  in
  checkv "hidden filled at insert" (vstr "dept-0") (Db.deref fx.db ~set:"Emp1" e "dept.name");
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name" (vstr "d0x");
  checkv "new member receives updates" (vstr "d0x") (Db.deref fx.db ~set:"Emp1" e "dept.name");
  check_all fx

let test_inplace_delete_maintenance () =
  let fx = employee_db ~ndepts:2 ~nemps:4 () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  (* Employees 1 and 3 belong to dept 1; delete both. *)
  Db.delete fx.db ~set:"Emp1" fx.emps.(1);
  check_all fx;
  Db.delete fx.db ~set:"Emp1" fx.emps.(3);
  check_all fx;
  (* Dept 1 is now off-path: no link pairs left. *)
  let d1 = Db.get fx.db ~set:"Dept" fx.depts.(1) in
  checki "dept off path" 0 (List.length d1.Record.links);
  (* Its updates no longer propagate anywhere (nothing to check beyond
     invariants, but the call must not fail). *)
  Db.update_field fx.db ~set:"Dept" fx.depts.(1) ~field:"name" (vstr "empty");
  check_all fx

let test_inplace_ref_update_source () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"dept" (Value.VRef fx.depts.(3));
  checkv "hidden refreshed" (vstr "dept-3") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  check_all fx;
  (* And updates now follow the new department. *)
  Db.update_field fx.db ~set:"Dept" fx.depts.(3) ~field:"name" (vstr "d3x");
  checkv "tracks new dept" (vstr "d3x") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name" (vstr "d0x");
  checkv "old dept no longer tracked" (vstr "d3x")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  check_all fx

let test_inplace_ref_update_to_null_and_back () =
  let fx = employee_db ~nemps:4 () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"dept" Value.VNull;
  checkv "null path yields null" Value.VNull
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  check_all fx;
  Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"dept" (Value.VRef fx.depts.(1));
  checkv "reattached" (vstr "dept-1") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  check_all fx

(* ------------------------------------------------------------------ *)
(* In-place replication, 2 levels                                      *)

let test_two_level_propagation () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
  checki "two joins eliminated" 0 (Db.deref_would_join fx.db ~set:"Emp1" "dept.org.name");
  checkv "initial" (vstr "org-0") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  Db.update_field fx.db ~set:"Org" fx.orgs.(0) ~field:"name" (vstr "megacorp");
  (* Emps in depts 0 and 2 (org 0) see it; others do not. *)
  checkv "propagates through two links" (vstr "megacorp")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  checkv "org-1 employees untouched" (vstr "org-1")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(1) "dept.org.name");
  check_all fx

let test_two_level_intermediate_ref_update () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
  (* Move dept 0 from org 0 to org 1: all its employees' hidden values must
     flip, and future org-1 updates must reach them. *)
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"org" (Value.VRef fx.orgs.(1));
  checkv "refreshed after move" (vstr "org-1")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  check_all fx;
  Db.update_field fx.db ~set:"Org" fx.orgs.(1) ~field:"name" (vstr "newcorp");
  checkv "tracked via new org" (vstr "newcorp")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  Db.update_field fx.db ~set:"Org" fx.orgs.(0) ~field:"name" (vstr "oldcorp");
  checkv "old org detached" (vstr "newcorp")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  check_all fx

let test_two_level_source_ref_update () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
  (* Employee 0 moves from dept 0 (org 0) to dept 1 (org 1). *)
  Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"dept" (Value.VRef fx.depts.(1));
  checkv "hidden follows both levels" (vstr "org-1")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  check_all fx

let test_shared_prefix_paths () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.budget");
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
  check_all fx;
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"budget" (vint 777);
  checkv "budget propagated" (vint 777) (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.budget");
  Db.update_field fx.db ~set:"Org" fx.orgs.(0) ~field:"name" (vstr "shared");
  checkv "org name propagated" (vstr "shared")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  checkv "dept name untouched" (vstr "dept-0")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  (* Moving an employee updates all three hidden groups. *)
  Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"dept" (Value.VRef fx.depts.(1));
  checkv "name follows" (vstr "dept-1") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  checkv "budget follows" (vint 200) (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.budget");
  checkv "org follows" (vstr "org-1") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  check_all fx

let test_full_object_replication () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.all");
  checkv "name covered" (vstr "dept-0") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  checki "name: no join" 0 (Db.deref_would_join fx.db ~set:"Emp1" "dept.name");
  checkv "budget covered" (vint 100) (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.budget");
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"budget" (vint 42);
  checkv "all fields propagate" (vint 42) (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.budget");
  check_all fx

(* ------------------------------------------------------------------ *)
(* Separate replication                                                *)

let test_separate_basic () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Separate (Path.parse "Emp1.dept.name");
  checki "separate costs one hop" 1 (Db.deref_would_join fx.db ~set:"Emp1" "dept.name");
  checkv "value via S'" (vstr "dept-2") (Db.deref fx.db ~set:"Emp1" fx.emps.(2) "dept.name");
  check_all fx

let test_separate_update_is_shared () =
  let fx = employee_db ~ndepts:2 ~nemps:10 () in
  Db.replicate fx.db ~strategy:Schema.Separate (Path.parse "Emp1.dept.name");
  (* One update, one S' object rewritten, all five employees see it. *)
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name" (vstr "sep0");
  Array.iteri
    (fun i e ->
      if i mod 2 = 0 then
        checkv "shared copy" (vstr "sep0") (Db.deref fx.db ~set:"Emp1" e "dept.name"))
    fx.emps;
  check_all fx

let test_separate_sprime_sharing_and_refcounts () =
  let fx = employee_db ~ndepts:2 ~nemps:6 () in
  Db.replicate fx.db ~strategy:Schema.Separate (Path.parse "Emp1.dept.name");
  let eng = Db.engine fx.db in
  let rep = Option.get (Schema.find_replication (Db.schema fx.db) (Path.parse "Emp1.dept.name")) in
  let sp_file = Option.get (Store.sprime_file_opt eng.Engine.store rep.Schema.rep_id) in
  checki "one S' object per referenced dept" 2 (Heap_file.object_count sp_file);
  (* Deleting all employees of dept 1 reclaims its S' object. *)
  Array.iteri (fun i e -> if i mod 2 = 1 then Db.delete fx.db ~set:"Emp1" e) fx.emps;
  checki "S' reclaimed" 1 (Heap_file.object_count sp_file);
  check_all fx

let test_separate_two_level () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Separate (Path.parse "Emp1.dept.org.name");
  checkv "initial" (vstr "org-0") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  Db.update_field fx.db ~set:"Org" fx.orgs.(0) ~field:"name" (vstr "sep-org");
  checkv "S' updated in place" (vstr "sep-org")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  check_all fx;
  (* The paper's Figure 8 scenario: D.org changes, sources must repoint
     their S' references. *)
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"org" (Value.VRef fx.orgs.(1));
  checkv "sref repointed" (vstr "org-1")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  check_all fx

let test_separate_and_inplace_coexist () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  Db.replicate fx.db ~strategy:Schema.Separate (Path.parse "Emp1.dept.budget");
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name" (vstr "both-n");
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"budget" (vint 9);
  checkv "inplace side" (vstr "both-n") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  checkv "separate side" (vint 9) (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.budget");
  check_all fx

(* ------------------------------------------------------------------ *)
(* Optimizations                                                       *)

let test_small_link_elimination () =
  (* f = 1: every link object would hold exactly one OID, so none should be
     materialised (paper §4.3.1). *)
  let fx = employee_db ~ndepts:4 ~nemps:4 () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  let eng = Db.engine fx.db in
  let reg = eng.Engine.registry in
  let link_id = Option.get (List.hd (Registry.roots reg "Emp1")).Registry.link_id in
  let lf = Fieldrep_replication.Store.link_file eng.Engine.store link_id in
  checki "no link objects at f=1" 0 (Heap_file.object_count lf);
  check_all fx;
  (* A second member forces materialisation... *)
  let e =
    Db.insert fx.db ~set:"Emp1" [ vstr "x"; vint 30; vint 1; Value.VRef fx.depts.(0) ]
  in
  checki "link object materialised" 1 (Heap_file.object_count lf);
  check_all fx;
  (* ...and deleting back to one member eliminates it again. *)
  Db.delete fx.db ~set:"Emp1" e;
  checki "re-eliminated" 0 (Heap_file.object_count lf);
  check_all fx

let test_elimination_disabled () =
  let fx = employee_db ~ndepts:4 ~nemps:4 () in
  let options = { Schema.default_options with Schema.small_link_threshold = 0 } in
  Db.replicate fx.db ~options ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  let eng = Db.engine fx.db in
  let link_id =
    Option.get (List.hd (Registry.roots eng.Engine.registry "Emp1")).Registry.link_id
  in
  let lf = Fieldrep_replication.Store.link_file eng.Engine.store link_id in
  checki "link objects even at f=1" 4 (Heap_file.object_count lf);
  check_all fx

let test_collapsed_path () =
  let fx = employee_db () in
  let options = { Schema.default_options with Schema.collapse = true } in
  Db.replicate fx.db ~options ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
  checki "collapsed still no join" 0 (Db.deref_would_join fx.db ~set:"Emp1" "dept.org.name");
  checkv "initial" (vstr "org-0") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  check_all fx;
  (* Field update propagates straight from org to employees. *)
  Db.update_field fx.db ~set:"Org" fx.orgs.(0) ~field:"name" (vstr "collapsed");
  checkv "one-hop propagation" (vstr "collapsed")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  check_all fx;
  (* The paper's tagged-move scenario: D.org flips, entries tagged D move. *)
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"org" (Value.VRef fx.orgs.(1));
  checkv "tagged entries moved" (vstr "org-1")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  check_all fx;
  (* Source-side move under a collapsed path. *)
  Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"dept" (Value.VRef fx.depts.(1));
  checkv "source move" (vstr "org-1") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  check_all fx

(* ------------------------------------------------------------------ *)
(* Deletion protection                                                 *)

let test_delete_referenced_dept_rejected () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  try
    Db.delete fx.db ~set:"Dept" fx.depts.(0);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> check_all fx

let test_delete_unreferenced_dept_ok () =
  let fx = employee_db ~ndepts:5 ~nemps:4 () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  (* Dept 4 has no employees. *)
  Db.delete fx.db ~set:"Dept" fx.depts.(4);
  checki "gone" 4 (Db.set_size fx.db "Dept");
  check_all fx

(* ------------------------------------------------------------------ *)
(* Indexes on replicated data (§3.3.4)                                 *)

let test_path_index () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
  Db.build_index fx.db ~name:"emp_by_orgname" ~set:"Emp1" ~field:"Emp1.dept.org.name"
    ~clustered:false;
  let hits = Db.index_lookup fx.db ~index:"emp_by_orgname" (Key.String "org-0") in
  checki "index maps org names to employees" 8 (List.length hits);
  check_all fx;
  (* Propagated updates keep the index current. *)
  Db.update_field fx.db ~set:"Org" fx.orgs.(0) ~field:"name" (vstr "indexed-org");
  checki "old key empty" 0
    (List.length (Db.index_lookup fx.db ~index:"emp_by_orgname" (Key.String "org-0")));
  checki "new key found" 8
    (List.length (Db.index_lookup fx.db ~index:"emp_by_orgname" (Key.String "indexed-org")));
  check_all fx;
  (* Employee moves also maintain the index. *)
  Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"dept" (Value.VRef fx.depts.(1));
  checki "after move: old key" 7
    (List.length (Db.index_lookup fx.db ~index:"emp_by_orgname" (Key.String "indexed-org")));
  checki "after move: new key" 9
    (List.length (Db.index_lookup fx.db ~index:"emp_by_orgname" (Key.String "org-1")));
  check_all fx

let test_user_field_index_maintained () =
  let fx = employee_db () in
  Db.build_index fx.db ~name:"emp_by_salary" ~set:"Emp1" ~field:"salary" ~clustered:false;
  Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"salary" (vint 99_999);
  checki "new salary indexed" 1
    (List.length (Db.index_lookup fx.db ~index:"emp_by_salary" (Key.Int 99_999)));
  checki "old salary gone" 0
    (List.length (Db.index_lookup fx.db ~index:"emp_by_salary" (Key.Int 30_000)));
  Db.delete fx.db ~set:"Emp1" fx.emps.(1);
  checki "deleted employee unindexed" 0
    (List.length (Db.index_lookup fx.db ~index:"emp_by_salary" (Key.Int 31_000)));
  check_all fx

(* ------------------------------------------------------------------ *)
(* Inverse references (paper §8: inverted paths as inverse functions)  *)

let test_referencers_via_links () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  let members, how = Db.referencers fx.db ~source_set:"Emp1" ~attr:"dept" fx.depts.(0) in
  checkb "answered from link objects" true (how = Db.Via_links);
  checki "four employees" 4 (List.length members);
  (* Physical order, as stored in the link object. *)
  let sorted = List.sort Oid.compare members in
  checkb "physical order" true (List.equal Oid.equal members sorted);
  (* Follows reference updates. *)
  Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"dept" (Value.VRef fx.depts.(1));
  let members', _ = Db.referencers fx.db ~source_set:"Emp1" ~attr:"dept" fx.depts.(0) in
  checki "one fewer" 3 (List.length members')

let test_referencers_via_scan () =
  let fx = employee_db () in
  (* No replication: falls back to a scan but gives the same answer. *)
  let members, how = Db.referencers fx.db ~source_set:"Emp1" ~attr:"dept" fx.depts.(2) in
  checkb "scan fallback" true (how = Db.Via_scan);
  checki "four employees" 4 (List.length members);
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  let members', how' = Db.referencers fx.db ~source_set:"Emp1" ~attr:"dept" fx.depts.(2) in
  checkb "now via links" true (how' = Db.Via_links);
  checkb "same answer" true (List.equal Oid.equal members members')

let test_referencers_validates_attr () =
  let fx = employee_db () in
  try
    ignore (Db.referencers fx.db ~source_set:"Emp1" ~attr:"salary" fx.depts.(0));
    Alcotest.fail "scalar attr accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* The invariant checker detects corruption                            *)

let test_invariants_detect_corruption () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  let eng = Db.engine fx.db in
  checki "clean before corruption" 0 (List.length (Invariants.errors eng));
  (* Corrupt one hidden copy behind the engine's back. *)
  let hf = eng.Engine.file_of_set "Emp1" in
  let record = Record.decode (Heap_file.read hf fx.emps.(0)) in
  let idx =
    Schema.hidden_index (Db.schema fx.db) "Emp1"
      ~rep_id:
        (Option.get (Schema.find_replication (Db.schema fx.db) (Path.parse "Emp1.dept.name")))
          .Schema.rep_id
      ~field:(Some "name")
  in
  Heap_file.update hf fx.emps.(0)
    (Record.encode (Record.set_field record idx (vstr "corrupted")));
  checkb "corruption detected" true (List.length (Invariants.errors eng) > 0)

(* ------------------------------------------------------------------ *)
(* Randomised soak: arbitrary mutation sequences keep every invariant  *)

let qcheck_tests =
  let open QCheck in
  let ops_gen = list_of_size Gen.(5 -- 60) (pair (int_range 0 5) (pair small_nat small_nat)) in
  [
    Test.make ~name:"mutation soup preserves invariants" ~count:25 ops_gen (fun ops ->
        let fx = employee_db ~norgs:3 ~ndepts:5 ~nemps:12 () in
        Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
        Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
        Db.replicate fx.db ~strategy:Schema.Separate (Path.parse "Emp1.dept.budget");
        let live = ref (Array.to_list fx.emps) in
        let counter = ref 0 in
        List.iter
          (fun (op, (a, b)) ->
            incr counter;
            let pick arr = arr.(a mod Array.length arr) in
            match op with
            | 0 ->
                let e =
                  Db.insert fx.db ~set:"Emp1"
                    [
                      vstr (Printf.sprintf "rnd-%d" !counter);
                      vint (20 + (b mod 40));
                      vint (10_000 + b);
                      (if b mod 5 = 0 then Value.VNull else Value.VRef (pick fx.depts));
                    ]
                in
                live := e :: !live
            | 1 -> (
                match !live with
                | e :: rest ->
                    Db.delete fx.db ~set:"Emp1" e;
                    live := rest
                | [] -> ())
            | 2 -> (
                match !live with
                | e :: _ ->
                    Db.update_field fx.db ~set:"Emp1" e ~field:"dept"
                      (if b mod 4 = 0 then Value.VNull else Value.VRef (pick fx.depts))
                | [] -> ())
            | 3 ->
                Db.update_field fx.db ~set:"Dept" (pick fx.depts) ~field:"name"
                  (vstr (Printf.sprintf "dept-r%d" !counter))
            | 4 ->
                Db.update_field fx.db ~set:"Dept" (pick fx.depts) ~field:"org"
                  (if b mod 4 = 0 then Value.VNull else Value.VRef (pick fx.orgs))
            | _ ->
                Db.update_field fx.db ~set:"Org" (pick fx.orgs) ~field:"name"
                  (vstr (Printf.sprintf "org-r%d" !counter)))
          ops;
        Db.check_integrity fx.db;
        true);
    Test.make ~name:"deref always equals actual walk" ~count:20
      (list_of_size Gen.(5 -- 30) (pair (int_range 0 2) small_nat))
      (fun ops ->
        let fx = employee_db ~norgs:2 ~ndepts:4 ~nemps:10 () in
        Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name");
        Db.replicate fx.db ~strategy:Schema.Separate (Path.parse "Emp1.dept.name");
        List.iter
          (fun (op, b) ->
            match op with
            | 0 ->
                Db.update_field fx.db ~set:"Org" fx.orgs.(b mod 2) ~field:"name"
                  (vstr (Printf.sprintf "o%d" b))
            | 1 ->
                Db.update_field fx.db ~set:"Dept" fx.depts.(b mod 4) ~field:"org"
                  (Value.VRef fx.orgs.(b mod 2))
            | _ ->
                Db.update_field fx.db ~set:"Emp1"
                  fx.emps.(b mod Array.length fx.emps)
                  ~field:"dept" (Value.VRef fx.depts.(b mod 4)))
          ops;
        (* The replicated answer must equal the manual functional join. *)
        Array.for_all
          (fun e ->
            let manual path =
              let r = Db.get fx.db ~set:"Emp1" e in
              match Db.field_value fx.db ~set:"Emp1" r "dept" with
              | Value.VRef d -> (
                  let dr = Db.get fx.db ~set:"Dept" d in
                  match path with
                  | `Dept_name -> Db.field_value fx.db ~set:"Dept" dr "name"
                  | `Org_name -> (
                      match Db.field_value fx.db ~set:"Dept" dr "org" with
                      | Value.VRef o ->
                          Db.field_value fx.db ~set:"Org" (Db.get fx.db ~set:"Org" o) "name"
                      | _ -> Value.VNull))
              | _ -> Value.VNull
            in
            Value.equal (Db.deref fx.db ~set:"Emp1" e "dept.name") (manual `Dept_name)
            && Value.equal (Db.deref fx.db ~set:"Emp1" e "dept.org.name") (manual `Org_name))
          fx.emps);
  ]

let () =
  Alcotest.run "fieldrep_replication"
    [
      ( "registry",
        [
          Alcotest.test_case "link sharing" `Quick test_registry_link_sharing;
          Alcotest.test_case "stable link ids" `Quick test_registry_stable_ids;
          Alcotest.test_case "collapse validation" `Quick test_registry_collapse_validation;
        ] );
      ( "inplace-1level",
        [
          Alcotest.test_case "deref without join" `Quick test_inplace_deref_no_join;
          Alcotest.test_case "scalar propagation" `Quick test_inplace_scalar_propagation;
          Alcotest.test_case "unreferenced dept update free" `Quick
            test_inplace_update_to_unreferenced_dept_is_free;
          Alcotest.test_case "insert maintenance" `Quick test_inplace_insert_maintenance;
          Alcotest.test_case "delete maintenance" `Quick test_inplace_delete_maintenance;
          Alcotest.test_case "source ref update" `Quick test_inplace_ref_update_source;
          Alcotest.test_case "null and back" `Quick test_inplace_ref_update_to_null_and_back;
        ] );
      ( "inplace-2level",
        [
          Alcotest.test_case "propagation" `Quick test_two_level_propagation;
          Alcotest.test_case "intermediate ref update" `Quick
            test_two_level_intermediate_ref_update;
          Alcotest.test_case "source ref update" `Quick test_two_level_source_ref_update;
          Alcotest.test_case "shared prefixes" `Quick test_shared_prefix_paths;
          Alcotest.test_case "full object replication" `Quick test_full_object_replication;
        ] );
      ( "separate",
        [
          Alcotest.test_case "basic" `Quick test_separate_basic;
          Alcotest.test_case "shared update" `Quick test_separate_update_is_shared;
          Alcotest.test_case "S' sharing and refcounts" `Quick
            test_separate_sprime_sharing_and_refcounts;
          Alcotest.test_case "two level" `Quick test_separate_two_level;
          Alcotest.test_case "coexists with inplace" `Quick test_separate_and_inplace_coexist;
        ] );
      ( "optimizations",
        [
          Alcotest.test_case "small-link elimination" `Quick test_small_link_elimination;
          Alcotest.test_case "elimination disabled" `Quick test_elimination_disabled;
          Alcotest.test_case "collapsed path" `Quick test_collapsed_path;
        ] );
      ( "deletion",
        [
          Alcotest.test_case "referenced dept rejected" `Quick
            test_delete_referenced_dept_rejected;
          Alcotest.test_case "unreferenced dept ok" `Quick test_delete_unreferenced_dept_ok;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "path index" `Quick test_path_index;
          Alcotest.test_case "user field index" `Quick test_user_field_index_maintained;
        ] );
      ( "inverse",
        [
          Alcotest.test_case "via links" `Quick test_referencers_via_links;
          Alcotest.test_case "via scan" `Quick test_referencers_via_scan;
          Alcotest.test_case "validates attribute" `Quick test_referencers_validates_attr;
        ] );
      ( "invariants",
        [ Alcotest.test_case "detects corruption" `Quick test_invariants_detect_corruption ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
