(* Tests for the data-model layer: type definitions, values, stored-record
   serialization, path expressions, and the catalog (including hidden-field
   layout and link-related validation). *)

module Oid = Fieldrep_storage.Oid
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let value_testable = Alcotest.testable Value.pp Value.equal
let checkv = Alcotest.check value_testable

let oid i = { Oid.file = 1; page = i; slot = i mod 7 }

(* ------------------------------------------------------------------ *)
(* Ty                                                                  *)

let emp_ty =
  Ty.make ~name:"EMP"
    [
      { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
      { Ty.fname = "salary"; ftype = Ty.Scalar Ty.SInt };
      { Ty.fname = "dept"; ftype = Ty.Ref "DEPT" };
    ]

let test_ty_basics () =
  checki "arity" 3 (Ty.arity emp_ty);
  checki "field index" 1 (Ty.field_index emp_ty "salary");
  checkb "is_ref" true (Ty.is_ref (Ty.field emp_ty "dept"));
  checkb "scalar not ref" false (Ty.is_ref (Ty.field emp_ty "name"));
  Alcotest.(check (list (pair string string)))
    "ref fields" [ ("dept", "DEPT") ] (Ty.ref_fields emp_ty);
  checki "scalar fields" 2 (List.length (Ty.scalar_fields emp_ty))

let test_ty_validation () =
  (try
     ignore (Ty.make ~name:"" [ ]);
     Alcotest.fail "empty name accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Ty.make ~name:"X"
         [
           { Ty.fname = "a"; ftype = Ty.Scalar Ty.SInt };
           { Ty.fname = "a"; ftype = Ty.Scalar Ty.SInt };
         ]);
    Alcotest.fail "duplicate field accepted"
  with Invalid_argument _ -> ()

let test_ty_missing_field () =
  (try
     ignore (Ty.field emp_ty "nope");
     Alcotest.fail "expected Not_found"
   with Not_found -> ());
  checkb "field_opt" true (Ty.field_opt emp_ty "nope" = None)

(* ------------------------------------------------------------------ *)
(* Value                                                               *)

let test_value_roundtrip () =
  let buf = Bytes.create 128 in
  List.iter
    (fun v ->
      let off = Value.encode buf 0 v in
      checki "size matches" (Value.encoded_size v) off;
      let v', off' = Value.decode buf 0 in
      checkv "roundtrip" v v';
      checki "read size" off off')
    [
      Value.VNull;
      Value.VInt 0;
      Value.VInt (-12345);
      Value.VInt max_int;
      Value.VString "";
      Value.VString "hello";
      Value.VRef (oid 9);
      Value.VRef Oid.nil;
    ]

let test_value_typing () =
  checkb "int matches" true (Value.matches (Ty.Scalar Ty.SInt) (Value.VInt 1));
  checkb "string mismatch" false (Value.matches (Ty.Scalar Ty.SInt) (Value.VString "x"));
  checkb "null ref ok" true (Value.matches (Ty.Ref "D") Value.VNull);
  checkb "null scalar not ok" false (Value.matches (Ty.Scalar Ty.SString) Value.VNull);
  checkb "ref matches" true (Value.matches (Ty.Ref "D") (Value.VRef (oid 1)))

let test_value_accessors () =
  checki "as_int" 5 (Value.as_int (Value.VInt 5));
  checks "as_string" "x" (Value.as_string (Value.VString "x"));
  (try
     ignore (Value.as_int (Value.VString "x"));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_value_order_total () =
  let values =
    [ Value.VNull; Value.VInt 1; Value.VInt 2; Value.VString "a"; Value.VRef (oid 1) ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          checkb "antisymmetric" true ((c1 = 0 && c2 = 0) || c1 * c2 < 0))
        values)
    values

(* ------------------------------------------------------------------ *)
(* Record                                                              *)

let sample_record () =
  Record.make ~type_tag:7
    [| Value.VString "alice"; Value.VInt 99; Value.VRef (oid 3) |]

let test_record_roundtrip () =
  let r = sample_record () in
  let r = Record.add_link r { Record.link_oid = oid 11; link_id = 2 } in
  let r = Record.add_link r { Record.link_oid = oid 12; link_id = 1 } in
  let bytes = Record.encode r in
  let r' = Record.decode bytes in
  checki "tag" 7 r'.Record.type_tag;
  checki "links" 2 (List.length r'.Record.links);
  checkv "field 0" (Value.VString "alice") (Record.field r' 0);
  checkv "field 2" (Value.VRef (oid 3)) (Record.field r' 2);
  checki "encoded size" (Record.encoded_size r) (Bytes.length bytes);
  checki "peek tag" 7 (Record.type_tag_of_bytes bytes)

let test_record_links_sorted_and_unique () =
  let r = sample_record () in
  let r = Record.add_link r { Record.link_oid = oid 5; link_id = 9 } in
  let r = Record.add_link r { Record.link_oid = oid 6; link_id = 3 } in
  let r = Record.add_link r { Record.link_oid = oid 7; link_id = 9 } in
  checki "replacing same id" 2 (List.length r.Record.links);
  (match r.Record.links with
  | [ a; b ] ->
      checki "sorted" 3 a.Record.link_id;
      checki "second" 9 b.Record.link_id;
      checkb "id 9 replaced" true (Oid.equal b.Record.link_oid (oid 7))
  | _ -> Alcotest.fail "wrong link count");
  let r = Record.remove_link r 3 in
  checki "removed" 1 (List.length r.Record.links);
  checkb "find_link" true (Record.find_link r 9 <> None);
  checkb "find_link absent" true (Record.find_link r 3 = None)

let test_record_set_field () =
  let r = sample_record () in
  let r2 = Record.set_field r 1 (Value.VInt 100) in
  checkv "updated" (Value.VInt 100) (Record.field r2 1);
  checkv "original intact" (Value.VInt 99) (Record.field r 1);
  try
    ignore (Record.set_field r 5 Value.VNull);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Path                                                                *)

let test_path_parse () =
  let p = Path.parse "Emp1.dept.org.name" in
  checks "set" "Emp1" p.Path.source_set;
  Alcotest.(check (list string)) "steps" [ "dept"; "org" ] p.Path.steps;
  checkb "terminal" true (p.Path.terminal = Path.Field "name");
  checki "level" 2 (Path.level p);
  checks "to_string" "Emp1.dept.org.name" (Path.to_string p)

let test_path_parse_all () =
  let p = Path.parse "Emp1.dept.all" in
  checkb "all terminal" true (p.Path.terminal = Path.All);
  checki "level" 1 (Path.level p);
  let p2 = Path.parse "Emp1.dept.ALL" in
  checkb "case-insensitive all" true (p2.Path.terminal = Path.All)

let test_path_parse_errors () =
  List.iter
    (fun s ->
      try
        ignore (Path.parse s);
        Alcotest.failf "accepted %S" s
      with Invalid_argument _ -> ())
    [ ""; "Emp1"; "Emp1.name"; "Emp1..name" ]

let test_path_prefix () =
  let a = Path.parse "Emp1.dept.org.name" in
  let b = Path.parse "Emp1.dept.budget" in
  let c = Path.parse "Emp2.dept.name" in
  checki "shared prefix" 1 (Path.prefix_length a b);
  checki "different sets" 0 (Path.prefix_length a c);
  checki "self" 2 (Path.prefix_length a a)

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

let mk_schema () =
  let s = Schema.create () in
  Schema.define_type s
    (Ty.make ~name:"ORG"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "budget"; ftype = Ty.Scalar Ty.SInt };
       ]);
  Schema.define_type s
    (Ty.make ~name:"DEPT"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "budget"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "org"; ftype = Ty.Ref "ORG" };
       ]);
  Schema.define_type s
    (Ty.make ~name:"EMP"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "salary"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "dept"; ftype = Ty.Ref "DEPT" };
       ]);
  Schema.create_set s ~name:"Org" ~elem_type:"ORG";
  Schema.create_set s ~name:"Dept" ~elem_type:"DEPT";
  Schema.create_set s ~name:"Emp1" ~elem_type:"EMP";
  s

let test_schema_types_and_tags () =
  let s = mk_schema () in
  checki "three types" 3 (List.length (Schema.types s));
  let tag = Schema.type_tag s "DEPT" in
  checks "tag roundtrip" "DEPT" (Schema.type_of_tag s tag).Ty.tname;
  (try
     Schema.define_type s (Ty.make ~name:"DEPT" []);
     Alcotest.fail "redefinition accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Schema.type_tag s "NOPE");
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

let test_schema_sets () =
  let s = mk_schema () in
  checki "three sets" 3 (List.length (Schema.sets s));
  checks "set type" "EMP" (Schema.set_type s "Emp1").Ty.tname;
  (try
     Schema.create_set s ~name:"Emp1" ~elem_type:"EMP";
     Alcotest.fail "duplicate set accepted"
   with Invalid_argument _ -> ());
  try
    Schema.create_set s ~name:"Bad" ~elem_type:"NOPE";
    Alcotest.fail "unknown type accepted"
  with Not_found -> ()

let test_schema_set_with_dangling_ref_type () =
  let s = Schema.create () in
  Schema.define_type s
    (Ty.make ~name:"A" [ { Ty.fname = "b"; ftype = Ty.Ref "MISSING" } ]);
  try
    Schema.create_set s ~name:"As" ~elem_type:"A";
    Alcotest.fail "dangling ref accepted"
  with Invalid_argument _ -> ()

let test_schema_resolve_path () =
  let s = mk_schema () in
  let r = Schema.resolve_path s (Path.parse "Emp1.dept.org.name") in
  Alcotest.(check (list string)) "type chain" [ "EMP"; "DEPT"; "ORG" ] r.Schema.type_chain;
  checki "one terminal field" 1 (List.length r.Schema.terminal_fields);
  let r_all = Schema.resolve_path s (Path.parse "Emp1.dept.all") in
  checki "all scalar fields" 2 (List.length r_all.Schema.terminal_fields)

let test_schema_resolve_path_errors () =
  let s = mk_schema () in
  List.iter
    (fun p ->
      try
        ignore (Schema.resolve_path s (Path.parse p));
        Alcotest.failf "accepted %s" p
      with Invalid_argument _ -> ())
    [
      "Nope.dept.name";  (* unknown set *)
      "Emp1.salary.name";  (* step through a scalar *)
      "Emp1.nope.name";  (* unknown step *)
      "Emp1.dept.nope";  (* unknown terminal *)
      "Emp1.dept.org";  (* ref-valued terminal *)
    ]

let test_schema_replication_and_hidden_layout () =
  let s = mk_schema () in
  let r1 = Schema.add_replication s ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name") in
  let r2 = Schema.add_replication s ~strategy:Schema.Separate (Path.parse "Emp1.dept.budget") in
  let r3 = Schema.add_replication s ~strategy:Schema.Inplace (Path.parse "Emp1.dept.all") in
  checkb "distinct ids" true
    (r1.Schema.rep_id <> r2.Schema.rep_id && r2.Schema.rep_id <> r3.Schema.rep_id);
  (* Layout: user arity 3, then [copy name; sref; copy name; copy budget]. *)
  checki "user arity" 3 (Schema.user_arity s "Emp1");
  checki "record width" 7 (Schema.record_width s "Emp1");
  checki "r1 hidden" 3
    (Schema.hidden_index s "Emp1" ~rep_id:r1.Schema.rep_id ~field:(Some "name"));
  checki "r2 sref" 4 (Schema.hidden_index s "Emp1" ~rep_id:r2.Schema.rep_id ~field:None);
  checki "r3 name copy" 5
    (Schema.hidden_index s "Emp1" ~rep_id:r3.Schema.rep_id ~field:(Some "name"));
  checki "r3 budget copy" 6
    (Schema.hidden_index s "Emp1" ~rep_id:r3.Schema.rep_id ~field:(Some "budget"));
  (try
     ignore (Schema.hidden_index s "Emp1" ~rep_id:r1.Schema.rep_id ~field:(Some "budget"));
     Alcotest.fail "expected Not_found"
   with Not_found -> ());
  (* Duplicate path rejected. *)
  try
    ignore (Schema.add_replication s ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name"));
    Alcotest.fail "duplicate replication accepted"
  with Invalid_argument _ -> ()

let test_schema_rep_options_validation () =
  let s = mk_schema () in
  (try
     ignore
       (Schema.add_replication s
          ~options:{ Schema.default_options with Schema.small_link_threshold = -1 }
          ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name"));
     Alcotest.fail "negative threshold accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Schema.add_replication s
         ~options:{ Schema.default_options with Schema.collapse = true }
         ~strategy:Schema.Separate (Path.parse "Emp1.dept.name"));
    Alcotest.fail "separate+collapse accepted"
  with Invalid_argument _ -> ()

let test_schema_indexes () =
  let s = mk_schema () in
  Schema.add_index s { Schema.iname = "i1"; iset = "Emp1"; ifield = "salary"; clustered = true };
  checki "one index" 1 (List.length (Schema.indexes_on s "Emp1"));
  (try
     Schema.add_index s
       { Schema.iname = "i2"; iset = "Emp1"; ifield = "name"; clustered = true };
     Alcotest.fail "second clustered index accepted"
   with Invalid_argument _ -> ());
  (try
     Schema.add_index s
       { Schema.iname = "i3"; iset = "Emp1"; ifield = "dept"; clustered = false };
     Alcotest.fail "ref index accepted"
   with Invalid_argument _ -> ());
  (* A replicated path can be indexed once declared. *)
  (try
     Schema.add_index s
       { Schema.iname = "i4"; iset = "Emp1"; ifield = "Emp1.dept.name"; clustered = false };
     Alcotest.fail "unreplicated path index accepted"
   with Invalid_argument _ -> ());
  ignore (Schema.add_replication s ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name"));
  Schema.add_index s
    { Schema.iname = "i4"; iset = "Emp1"; ifield = "Emp1.dept.name"; clustered = false };
  checki "path index added" 2 (List.length (Schema.indexes_on s "Emp1"))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let qcheck_tests =
  let open QCheck in
  let value_gen =
    Gen.(
      oneof
        [
          return Value.VNull;
          map (fun i -> Value.VInt i) int;
          map (fun s -> Value.VString s) (string_size (0 -- 50));
          map (fun (a, b) -> Value.VRef { Oid.file = a mod 100; page = b mod 1000; slot = (a + b) mod 50 })
            (pair nat nat);
        ])
  in
  [
    Test.make ~name:"value roundtrip" ~count:300 (make value_gen) (fun v ->
        let buf = Bytes.create (Value.encoded_size v) in
        ignore (Value.encode buf 0 v);
        Value.equal v (fst (Value.decode buf 0)));
    Test.make ~name:"record roundtrip" ~count:200
      (make Gen.(pair (int_bound 1000) (list_size (0 -- 12) value_gen)))
      (fun (tag, values) ->
        let r = Record.make ~type_tag:tag (Array.of_list values) in
        let r' = Record.decode (Record.encode r) in
        r'.Record.type_tag = tag
        && Array.for_all2 Value.equal r.Record.values r'.Record.values);
    Test.make ~name:"path parse/print roundtrip" ~count:100
      (make
         Gen.(
           let ident = map (fun n -> Printf.sprintf "id%d" (abs n mod 50)) int in
           let* set = ident in
           let* steps = list_size (1 -- 4) ident in
           let* field = ident in
           return (set, steps, field)))
      (fun (set, steps, field) ->
        let p = Path.make ~source_set:set ~steps ~terminal:(Path.Field field) in
        Path.equal p (Path.parse (Path.to_string p)));
  ]

let () =
  Alcotest.run "fieldrep_model"
    [
      ( "ty",
        [
          Alcotest.test_case "basics" `Quick test_ty_basics;
          Alcotest.test_case "validation" `Quick test_ty_validation;
          Alcotest.test_case "missing field" `Quick test_ty_missing_field;
        ] );
      ( "value",
        [
          Alcotest.test_case "roundtrip" `Quick test_value_roundtrip;
          Alcotest.test_case "typing" `Quick test_value_typing;
          Alcotest.test_case "accessors" `Quick test_value_accessors;
          Alcotest.test_case "total order" `Quick test_value_order_total;
        ] );
      ( "record",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "link section" `Quick test_record_links_sorted_and_unique;
          Alcotest.test_case "set_field" `Quick test_record_set_field;
        ] );
      ( "path",
        [
          Alcotest.test_case "parse" `Quick test_path_parse;
          Alcotest.test_case "parse all" `Quick test_path_parse_all;
          Alcotest.test_case "parse errors" `Quick test_path_parse_errors;
          Alcotest.test_case "prefix length" `Quick test_path_prefix;
        ] );
      ( "schema",
        [
          Alcotest.test_case "types and tags" `Quick test_schema_types_and_tags;
          Alcotest.test_case "sets" `Quick test_schema_sets;
          Alcotest.test_case "dangling ref type" `Quick test_schema_set_with_dangling_ref_type;
          Alcotest.test_case "resolve path" `Quick test_schema_resolve_path;
          Alcotest.test_case "resolve errors" `Quick test_schema_resolve_path_errors;
          Alcotest.test_case "replication + hidden layout" `Quick
            test_schema_replication_and_hidden_layout;
          Alcotest.test_case "replication options" `Quick test_schema_rep_options_validation;
          Alcotest.test_case "indexes" `Quick test_schema_indexes;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
