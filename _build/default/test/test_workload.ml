(* Tests for the workload layer: the R/S database generator (layout
   properties the cost model assumes) and the measurement harness,
   culminating in model-vs-measured validation within tight tolerances —
   the experiment that closes the loop between the paper's analysis (§6)
   and this implementation. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Heap_file = Fieldrep_storage.Heap_file
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Params = Fieldrep_costmodel.Params
module Cost = Fieldrep_costmodel.Cost
module Gen = Fieldrep_workload.Gen
module Mix = Fieldrep_workload.Mix

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let small_spec =
  { Gen.default_spec with Gen.s_count = 400; sharing = 2; seed = 5 }

(* ------------------------------------------------------------------ *)
(* Generator layout properties                                         *)

let test_gen_counts () =
  let b = Gen.build small_spec in
  checki "|S|" 400 (Db.set_size b.Gen.db "S");
  checki "|R| = f|S|" 800 (Db.set_size b.Gen.db "R")

let test_gen_sharing_exact () =
  let b = Gen.build { small_spec with Gen.sharing = 3 } in
  (* Every S object must be referenced exactly f times. *)
  let counts = Oid.Table.create 512 in
  Db.scan b.Gen.db ~set:"R" (fun _ record ->
      match Db.field_value b.Gen.db ~set:"R" record "sref" with
      | Value.VRef s ->
          Oid.Table.replace counts s (1 + Option.value ~default:0 (Oid.Table.find_opt counts s))
      | _ -> Alcotest.fail "null sref");
  checki "all S referenced" 400 (Oid.Table.length counts);
  Oid.Table.iter (fun _ c -> checki "exactly f" 3 c) counts

let test_gen_keys_cover_range () =
  let b = Gen.build small_spec in
  let seen = Hashtbl.create 1024 in
  Db.scan b.Gen.db ~set:"R" (fun _ record ->
      match Db.field_value b.Gen.db ~set:"R" record "field_r" with
      | Value.VInt k ->
          checkb "in range" true (k >= 0 && k < 800);
          checkb "unique" false (Hashtbl.mem seen k);
          Hashtbl.add seen k ()
      | _ -> Alcotest.fail "bad key");
  checki "all keys" 800 (Hashtbl.length seen)

let test_gen_clustered_physical_order () =
  let b = Gen.build { small_spec with Gen.clustering = Params.Clustered } in
  let prev = ref (-1) in
  Db.scan b.Gen.db ~set:"R" (fun _ record ->
      match Db.field_value b.Gen.db ~set:"R" record "field_r" with
      | Value.VInt k ->
          checkb "ascending" true (k > !prev);
          prev := k
      | _ -> Alcotest.fail "bad key")

let test_gen_deterministic () =
  let b1 = Gen.build small_spec in
  let b2 = Gen.build small_spec in
  Alcotest.(check (array int)) "same keys" b1.Gen.r_keys b2.Gen.r_keys;
  checki "same pages" (Db.set_pages b1.Gen.db "R") (Db.set_pages b2.Gen.db "R")

let test_gen_no_fragmentation_after_replication () =
  (* The PCTFREE reserve must absorb the hidden-field growth: no object may
     spill into continuation segments when replication is built. *)
  List.iter
    (fun strategy ->
      let b = Gen.build { small_spec with Gen.strategy = strategy } in
      let eng = Db.engine b.Gen.db in
      let r_file = eng.Fieldrep_replication.Engine.file_of_set "R" in
      let s_file = eng.Fieldrep_replication.Engine.file_of_set "S" in
      checki "R unfragmented" 0 (Heap_file.chained_count r_file);
      checki "S unfragmented" 0 (Heap_file.chained_count s_file);
      Db.check_integrity b.Gen.db)
    [ Params.Inplace; Params.Separate ]

let test_gen_replication_consistent () =
  List.iter
    (fun strategy ->
      let b = Gen.build { small_spec with Gen.strategy = strategy; Gen.sharing = 4 } in
      Db.check_integrity b.Gen.db;
      (* Spot-check a few replicated values against the actual join. *)
      let n = ref 0 in
      Db.scan b.Gen.db ~set:"R" (fun _ record ->
          incr n;
          if !n <= 25 then begin
            let replicated = Db.deref_record b.Gen.db ~set:"R" record "sref.repfield" in
            let manual =
              match Db.field_value b.Gen.db ~set:"R" record "sref" with
              | Value.VRef s ->
                  Db.field_value b.Gen.db ~set:"S" (Db.get b.Gen.db ~set:"S" s) "repfield"
              | _ -> Value.VNull
            in
            checkb "replicated equals joined" true (Value.equal replicated manual)
          end))
    [ Params.Inplace; Params.Separate ]

let test_employee_db () =
  let db = Gen.employee_db ~norgs:3 ~ndepts:10 ~nemps:100 () in
  checki "orgs" 3 (Db.set_size db "Org");
  checki "depts" 10 (Db.set_size db "Dept");
  checki "emps" 100 (Db.set_size db "Emp1");
  Db.check_integrity db

(* ------------------------------------------------------------------ *)
(* Measurement harness                                                 *)

let test_measure_deterministic () =
  (* Two identically-built databases measure identically.  (Measuring the
     same database twice would not: the second run's updates would write
     the values already present and decay into no-ops.) *)
  let m1 = Mix.measure (Gen.build small_spec) ~read_sel:0.005 ~update_sel:0.0025 ~queries:5 () in
  let m2 = Mix.measure (Gen.build small_spec) ~read_sel:0.005 ~update_sel:0.0025 ~queries:5 () in
  Alcotest.(check (float 1e-9)) "read io stable" m1.Mix.avg_read_io m2.Mix.avg_read_io;
  Alcotest.(check (float 1e-9)) "update io stable" m1.Mix.avg_update_io m2.Mix.avg_update_io

let test_mixed_cost () =
  let m =
    { Mix.read_queries = 1; update_queries = 1; avg_read_io = 10.0; avg_update_io = 30.0 }
  in
  Alcotest.(check (float 1e-9)) "pure read" 10.0 (Mix.mixed_cost m ~update_prob:0.0);
  Alcotest.(check (float 1e-9)) "pure update" 30.0 (Mix.mixed_cost m ~update_prob:1.0);
  Alcotest.(check (float 1e-9)) "mix" 20.0 (Mix.mixed_cost m ~update_prob:0.5)

(* ------------------------------------------------------------------ *)
(* Model-vs-measured validation                                        *)

let within_tolerance ~rel ~abs measured model =
  Float.abs (measured -. model) <= abs +. (rel *. Float.max measured model)

let validate_case ~sharing ~strategy ~clustering =
  let spec =
    { Gen.default_spec with Gen.s_count = 800; sharing; strategy; clustering; seed = 11 }
  in
  let c = Mix.validate spec ~read_sel:0.002 ~update_sel:0.00125 ~queries:8 () in
  checkb
    (Printf.sprintf "read io: measured %.1f vs model %.1f" c.Mix.measured_read c.Mix.model_read)
    true
    (within_tolerance ~rel:0.25 ~abs:3.0 c.Mix.measured_read c.Mix.model_read);
  checkb
    (Printf.sprintf "update io: measured %.1f vs model %.1f" c.Mix.measured_update
       c.Mix.model_update)
    true
    (within_tolerance ~rel:0.25 ~abs:3.0 c.Mix.measured_update c.Mix.model_update)

let test_validate_no_replication () =
  validate_case ~sharing:1 ~strategy:Params.No_replication ~clustering:Params.Unclustered;
  validate_case ~sharing:5 ~strategy:Params.No_replication ~clustering:Params.Unclustered

let test_validate_inplace () =
  validate_case ~sharing:1 ~strategy:Params.Inplace ~clustering:Params.Unclustered;
  validate_case ~sharing:5 ~strategy:Params.Inplace ~clustering:Params.Unclustered

let test_validate_separate () =
  validate_case ~sharing:1 ~strategy:Params.Separate ~clustering:Params.Unclustered;
  validate_case ~sharing:5 ~strategy:Params.Separate ~clustering:Params.Unclustered

let test_validate_clustered () =
  validate_case ~sharing:5 ~strategy:Params.No_replication ~clustering:Params.Clustered;
  validate_case ~sharing:5 ~strategy:Params.Inplace ~clustering:Params.Clustered;
  validate_case ~sharing:5 ~strategy:Params.Separate ~clustering:Params.Clustered

(* The paper's qualitative ordering holds on the real system, not just in
   the equations: at low update probability in-place wins reads decisively;
   separate keeps updates cheap as f grows. *)
let test_measured_strategy_ordering () =
  let measure strategy =
    let spec = { Gen.default_spec with Gen.s_count = 800; sharing = 8; strategy; seed = 3 } in
    let b = Gen.build spec in
    Mix.measure b ~read_sel:0.002 ~update_sel:0.00125 ~queries:6 ()
  in
  let none = measure Params.No_replication in
  let inplace = measure Params.Inplace in
  let separate = measure Params.Separate in
  checkb "in-place reads cheapest" true
    (inplace.Mix.avg_read_io < separate.Mix.avg_read_io
    && separate.Mix.avg_read_io < none.Mix.avg_read_io);
  checkb "no-replication updates cheapest" true
    (none.Mix.avg_update_io < separate.Mix.avg_update_io
    && separate.Mix.avg_update_io < inplace.Mix.avg_update_io)

let () =
  Alcotest.run "fieldrep_workload"
    [
      ( "generator",
        [
          Alcotest.test_case "counts" `Quick test_gen_counts;
          Alcotest.test_case "exact sharing" `Quick test_gen_sharing_exact;
          Alcotest.test_case "keys cover range" `Quick test_gen_keys_cover_range;
          Alcotest.test_case "clustered physical order" `Quick test_gen_clustered_physical_order;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "no fragmentation" `Quick test_gen_no_fragmentation_after_replication;
          Alcotest.test_case "replication consistent" `Quick test_gen_replication_consistent;
          Alcotest.test_case "employee db" `Quick test_employee_db;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "mixed cost" `Quick test_mixed_cost;
        ] );
      ( "validation",
        [
          Alcotest.test_case "no replication" `Slow test_validate_no_replication;
          Alcotest.test_case "in-place" `Slow test_validate_inplace;
          Alcotest.test_case "separate" `Slow test_validate_separate;
          Alcotest.test_case "clustered" `Slow test_validate_clustered;
          Alcotest.test_case "strategy ordering" `Slow test_measured_strategy_ordering;
        ] );
    ]
