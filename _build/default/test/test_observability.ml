(* Tests for observability (per-structure I/O attribution) and the
   referential-integrity audit. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Pager = Fieldrep_storage.Pager
module Stats = Fieldrep_storage.Stats
module Heap_file = Fieldrep_storage.Heap_file
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Ast = Fieldrep_query.Ast
module Exec = Fieldrep_query.Exec
module Gen = Fieldrep_workload.Gen

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let vstr s = Value.VString s

let test_per_file_stats () =
  let stats = Stats.create () in
  Stats.record_read stats ~file:3;
  Stats.record_read stats ~file:3;
  Stats.record_write stats ~file:3;
  Stats.record_read stats ~file:7;
  Alcotest.(check (pair int int)) "file 3" (2, 1) (Stats.file_io stats ~file:3);
  Alcotest.(check (pair int int)) "file 7" (1, 0) (Stats.file_io stats ~file:7);
  Alcotest.(check (pair int int)) "untouched" (0, 0) (Stats.file_io stats ~file:9);
  Stats.reset stats;
  Alcotest.(check (pair int int)) "reset" (0, 0) (Stats.file_io stats ~file:3)

let test_io_breakdown_attributes_structures () =
  let built =
    Gen.build
      { Gen.default_spec with Gen.s_count = 400; sharing = 4; strategy = Fieldrep_costmodel.Params.Inplace }
  in
  let db = built.Gen.db in
  (* A cold update query touches the S index, S, the link file, and R (for
     propagation) — the breakdown must name each structure. *)
  Pager.run_cold (Db.pager db) (fun () ->
      ignore
        (Exec.replace db
           {
             Ast.target_set = "S";
             assignments = [ ("repfield", Ast.Const (vstr "xxxxxxxxxxxxxxxxxxxx")) ];
             rwhere = Some (Ast.eq "field_s" (Value.VInt 7));
           }));
  let breakdown = Db.io_breakdown db in
  let labels = List.map (fun (l, _, _) -> l) breakdown in
  let has prefix =
    List.exists (fun l -> String.length l >= String.length prefix
                          && String.sub l 0 (String.length prefix) = prefix) labels
  in
  checkb "touches S" true (has "set S");
  checkb "touches R (propagation)" true (has "set R");
  checkb "touches the S index" true (has ("index " ^ Gen.s_index));
  checkb "touches a link file" true (has "link file");
  (* The breakdown sums to the global counters. *)
  let stats = Db.stats db in
  let sum_r, sum_w =
    List.fold_left (fun (r, w) (_, r', w') -> (r + r', w + w')) (0, 0) breakdown
  in
  checki "reads add up" stats.Stats.page_reads sum_r;
  checki "writes add up" stats.Stats.page_writes sum_w

let test_breakdown_read_query_strategies () =
  (* A read query under in-place touches only R + index; under separate it
     also touches the S' file; with no replication it touches S. *)
  let probe strategy =
    let built =
      Gen.build { Gen.default_spec with Gen.s_count = 400; sharing = 4; strategy }
    in
    let db = built.Gen.db in
    Pager.run_cold (Db.pager db) (fun () ->
        let res =
          Exec.retrieve db
            {
              Ast.from_set = "R";
              projections = [ "field_r"; "sref.repfield" ];
              where = Some (Ast.between "field_r" (Value.VInt 10) (Value.VInt 29));
            }
        in
        Exec.drop_output db res.Exec.output_file);
    List.map (fun (l, _, _) -> l) (Db.io_breakdown db)
  in
  let mem prefix labels =
    List.exists
      (fun l -> String.length l >= String.length prefix
                && String.sub l 0 (String.length prefix) = prefix)
      labels
  in
  let none = probe Fieldrep_costmodel.Params.No_replication in
  checkb "none: reads S" true (mem "set S" none);
  let inplace = probe Fieldrep_costmodel.Params.Inplace in
  checkb "inplace: no S" false (mem "set S" inplace);
  checkb "inplace: no S'" false (mem "S' file" inplace);
  let separate = probe Fieldrep_costmodel.Params.Separate in
  checkb "separate: S' instead of S" true
    (mem "S' file" separate && not (mem "set S" separate))

let test_dangling_references () =
  let db = Db.create () in
  Db.define_type db
    (Ty.make ~name:"D" [ { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString } ]);
  Db.define_type db
    (Ty.make ~name:"E"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "d"; ftype = Ty.Ref "D" };
       ]);
  Db.create_set db ~name:"Ds" ~elem_type:"D" ();
  Db.create_set db ~name:"Es" ~elem_type:"E" ();
  let d = Db.insert db ~set:"Ds" [ vstr "d" ] in
  let e = Db.insert db ~set:"Es" [ vstr "e"; Value.VRef d ] in
  checki "clean database" 0 (List.length (Db.dangling_references db));
  (* Delete the target: no replication path protects it, so the reference
     dangles — exactly what the audit is for. *)
  Db.delete db ~set:"Ds" d;
  (match Db.dangling_references db with
  | [ ("Es", oid, "d") ] -> checkb "right object" true (Oid.equal oid e)
  | l -> Alcotest.failf "expected one dangling ref, got %d" (List.length l));
  (* Nulling the reference clears the audit. *)
  Db.update_field db ~set:"Es" e ~field:"d" Value.VNull;
  checki "clean again" 0 (List.length (Db.dangling_references db))

let () =
  Alcotest.run "fieldrep_observability"
    [
      ( "io attribution",
        [
          Alcotest.test_case "per-file stats" `Quick test_per_file_stats;
          Alcotest.test_case "update query breakdown" `Quick
            test_io_breakdown_attributes_structures;
          Alcotest.test_case "read query per strategy" `Quick
            test_breakdown_read_query_strategies;
        ] );
      ( "referential integrity",
        [ Alcotest.test_case "dangling references" `Quick test_dangling_references ] );
    ]
