(* Tests for lazy (deferred) propagation — the paper's §8 future work,
   "replication techniques in which updates are not propagated until
   needed".  Updates to replicated fields only invalidate the affected
   sources in an in-memory table; hidden copies are repaired by a forward
   walk the first time they are read. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Pager = Fieldrep_storage.Pager
module Stats = Fieldrep_storage.Stats
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Engine = Fieldrep_replication.Engine
module Ast = Fieldrep_query.Ast
module Exec = Fieldrep_query.Exec
module Lang = Fieldrep_query.Lang

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let value_testable = Alcotest.testable Value.pp Value.equal
let checkv = Alcotest.check value_testable
let vstr s = Value.VString s

let lazy_options = { Schema.default_options with Schema.lazy_propagation = true }

type fixture = { db : Db.t; orgs : Oid.t array; depts : Oid.t array; emps : Oid.t array }

let employee_db ?(ndepts = 4) ?(nemps = 16) () =
  let db = Db.create ~page_size:1024 ~frames:128 () in
  Db.define_type db
    (Ty.make ~name:"ORG" [ { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString } ]);
  Db.define_type db
    (Ty.make ~name:"DEPT"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "org"; ftype = Ty.Ref "ORG" };
       ]);
  Db.define_type db
    (Ty.make ~name:"EMP"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "dept"; ftype = Ty.Ref "DEPT" };
       ]);
  Db.create_set db ~name:"Org" ~elem_type:"ORG" ();
  Db.create_set db ~name:"Dept" ~elem_type:"DEPT" ();
  Db.create_set db ~name:"Emp1" ~elem_type:"EMP" ();
  let orgs = Array.init 2 (fun i -> Db.insert db ~set:"Org" [ vstr (Printf.sprintf "org-%d" i) ]) in
  let depts =
    Array.init ndepts (fun i ->
        Db.insert db ~set:"Dept"
          [ vstr (Printf.sprintf "dept-%d" i); Value.VRef orgs.(i mod 2) ])
  in
  let emps =
    Array.init nemps (fun i ->
        Db.insert db ~set:"Emp1"
          [ vstr (Printf.sprintf "emp-%d" i); Value.VRef depts.(i mod ndepts) ])
  in
  { db; orgs; depts; emps }

let pending fx = Engine.pending_count (Db.engine fx.db)

(* ------------------------------------------------------------------ *)

let test_update_only_invalidates () =
  let fx = employee_db () in
  Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Inplace
    (Path.parse "Emp1.dept.name");
  checki "clean after build" 0 (pending fx);
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name" (vstr "renamed");
  (* 4 employees of dept 0 are now pending; nothing was written to them. *)
  checki "four sources invalidated" 4 (pending fx);
  (* The invariant checker accepts pending-stale copies. *)
  Db.check_integrity fx.db

let test_read_repairs () =
  let fx = employee_db () in
  Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Inplace
    (Path.parse "Emp1.dept.name");
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name" (vstr "renamed");
  (* Reading through deref returns the fresh value and repairs. *)
  checkv "read sees new value" (vstr "renamed")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  checki "one repaired" 3 (pending fx);
  (* The repaired copy is now physically up to date (no more walk). *)
  let record = Db.get fx.db ~set:"Emp1" fx.emps.(0) in
  let idx =
    Schema.hidden_index (Db.schema fx.db) "Emp1"
      ~rep_id:
        (Option.get (Schema.find_replication (Db.schema fx.db) (Path.parse "Emp1.dept.name")))
          .Schema.rep_id
      ~field:(Some "name")
  in
  checkv "hidden copy repaired in place" (vstr "renamed")
    record.Fieldrep_model.Record.values.(idx);
  Db.check_integrity fx.db

let test_flush_pending () =
  let fx = employee_db () in
  Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Inplace
    (Path.parse "Emp1.dept.name");
  Db.update_field fx.db ~set:"Dept" fx.depts.(1) ~field:"name" (vstr "x1");
  Db.update_field fx.db ~set:"Dept" fx.depts.(2) ~field:"name" (vstr "x2");
  checkb "pending accumulated" true (pending fx > 0);
  Engine.flush_pending (Db.engine fx.db);
  checki "flushed" 0 (pending fx);
  Db.check_integrity fx.db;
  checkv "values correct after flush" (vstr "x1")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(1) "dept.name")

let test_repeated_updates_coalesce () =
  let fx = employee_db () in
  Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Inplace
    (Path.parse "Emp1.dept.name");
  for i = 1 to 10 do
    Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name"
      (vstr (Printf.sprintf "v%d" i))
  done;
  (* Ten updates, still only the 4 affected sources pending — the whole
     point of invalidation over eager propagation. *)
  checki "coalesced" 4 (pending fx);
  checkv "one repair gets the last value" (vstr "v10")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  Db.check_integrity fx.db

let test_lazy_update_io_cheaper () =
  let mk lazy_ =
    let fx = employee_db ~ndepts:2 ~nemps:64 () in
    let options = if lazy_ then lazy_options else Schema.default_options in
    Db.replicate fx.db ~options ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
    fx
  in
  let io fx f =
    Pager.run_cold (Db.pager fx.db) f;
    Stats.total_io (Db.stats fx.db)
  in
  let eager = mk false and lzy = mk true in
  let eager_io =
    io eager (fun () ->
        Db.update_field eager.db ~set:"Dept" eager.depts.(0) ~field:"name" (vstr "e"))
  in
  let lazy_io =
    io lzy (fun () ->
        Db.update_field lzy.db ~set:"Dept" lzy.depts.(0) ~field:"name" (vstr "l"))
  in
  (* 32 employees share dept 0: eager propagation writes all their pages,
     lazy only reads the link object. *)
  checkb
    (Printf.sprintf "lazy update cheaper (%d < %d)" lazy_io eager_io)
    true
    (lazy_io * 2 <= eager_io)

let test_query_reads_repair () =
  let fx = employee_db () in
  Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Inplace
    (Path.parse "Emp1.dept.name");
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name" (vstr "fresh");
  let rows =
    Exec.retrieve_values fx.db
      { Ast.from_set = "Emp1"; projections = [ "name"; "dept.name" ]; where = None }
  in
  checki "all rows" 16 (List.length rows);
  List.iter
    (fun row ->
      match row with
      | [ Value.VString name; Value.VString dept ] ->
          let i = Scanf.sscanf name "emp-%d" (fun i -> i) in
          if i mod 4 = 0 then checkv "query sees fresh value" (vstr "fresh") (vstr dept)
      | _ -> Alcotest.fail "bad row")
    rows;
  checki "query repaired everything it read" 0 (pending fx);
  Db.check_integrity fx.db

let test_two_level_lazy () =
  let fx = employee_db () in
  Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Inplace
    (Path.parse "Emp1.dept.org.name");
  Db.update_field fx.db ~set:"Org" fx.orgs.(0) ~field:"name" (vstr "megacorp");
  checkb "invalidated through two levels" true (pending fx > 0);
  checkv "repair walks two levels" (vstr "megacorp")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  Db.check_integrity fx.db;
  Engine.flush_pending (Db.engine fx.db);
  Db.check_integrity fx.db

let test_ref_update_repairs_eagerly () =
  let fx = employee_db () in
  Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Inplace
    (Path.parse "Emp1.dept.name");
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name" (vstr "stale-maker");
  (* A reference update refreshes the moved source eagerly and clears its
     invalidation entry. *)
  Db.update_field fx.db ~set:"Emp1" fx.emps.(0) ~field:"dept" (Value.VRef fx.depts.(1));
  checkb "moved source no longer pending" false
    (Engine.is_pending (Db.engine fx.db)
       (Option.get (Schema.find_replication (Db.schema fx.db) (Path.parse "Emp1.dept.name")))
       fx.emps.(0));
  checkv "moved source correct" (vstr "dept-1")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  Db.check_integrity fx.db

let test_delete_clears_pending () =
  let fx = employee_db () in
  Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Inplace
    (Path.parse "Emp1.dept.name");
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name" (vstr "gone");
  let before = pending fx in
  Db.delete fx.db ~set:"Emp1" fx.emps.(0);
  checki "entry dropped with the object" (before - 1) (pending fx);
  Db.check_integrity fx.db

let test_lazy_rejected_for_separate () =
  let fx = employee_db () in
  try
    Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Separate
      (Path.parse "Emp1.dept.name");
    Alcotest.fail "lazy separate accepted"
  with Invalid_argument _ -> ()

let test_lazy_path_cannot_be_indexed () =
  let fx = employee_db () in
  Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Inplace
    (Path.parse "Emp1.dept.name");
  try
    Db.build_index fx.db ~name:"bad" ~set:"Emp1" ~field:"Emp1.dept.name" ~clustered:false;
    Alcotest.fail "index on lazy path accepted"
  with Invalid_argument _ -> ()

let test_lang_lazy_modifier () =
  let fx = employee_db () in
  (match Lang.exec fx.db "replicate Emp1.dept.name lazy" with
  | Lang.Replicated _ -> ()
  | _ -> Alcotest.fail "expected Replicated");
  let rep =
    Option.get (Schema.find_replication (Db.schema fx.db) (Path.parse "Emp1.dept.name"))
  in
  checkb "lazy flag set" true rep.Schema.options.Schema.lazy_propagation

let test_deref_record_without_oid_still_correct () =
  let fx = employee_db () in
  Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Inplace
    (Path.parse "Emp1.dept.name");
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name" (vstr "careful");
  (* Without the OID the engine cannot repair, but it must never serve the
     stale copy: it falls back to the actual walk. *)
  let record = Db.get fx.db ~set:"Emp1" fx.emps.(0) in
  checkv "no-oid read still fresh" (vstr "careful")
    (Db.deref_record fx.db ~set:"Emp1" record "dept.name")

let test_eager_and_lazy_coexist () =
  let fx = employee_db () in
  Db.replicate fx.db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  Db.replicate fx.db ~options:lazy_options ~strategy:Schema.Inplace
    (Path.parse "Emp1.dept.org.name");
  Db.update_field fx.db ~set:"Dept" fx.depts.(0) ~field:"name" (vstr "eager-now");
  checki "eager path propagated immediately" 0 (pending fx);
  Db.update_field fx.db ~set:"Org" fx.orgs.(0) ~field:"name" (vstr "lazy-later");
  checkb "lazy path deferred" true (pending fx > 0);
  checkv "eager value" (vstr "eager-now") (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.name");
  checkv "lazy value on read" (vstr "lazy-later")
    (Db.deref fx.db ~set:"Emp1" fx.emps.(0) "dept.org.name");
  Db.check_integrity fx.db

let () =
  Alcotest.run "fieldrep_lazy"
    [
      ( "lazy propagation",
        [
          Alcotest.test_case "update only invalidates" `Quick test_update_only_invalidates;
          Alcotest.test_case "read repairs" `Quick test_read_repairs;
          Alcotest.test_case "flush" `Quick test_flush_pending;
          Alcotest.test_case "repeated updates coalesce" `Quick test_repeated_updates_coalesce;
          Alcotest.test_case "lazy update io cheaper" `Quick test_lazy_update_io_cheaper;
          Alcotest.test_case "query reads repair" `Quick test_query_reads_repair;
          Alcotest.test_case "two-level lazy" `Quick test_two_level_lazy;
          Alcotest.test_case "ref update repairs eagerly" `Quick test_ref_update_repairs_eagerly;
          Alcotest.test_case "delete clears pending" `Quick test_delete_clears_pending;
          Alcotest.test_case "rejected for separate" `Quick test_lazy_rejected_for_separate;
          Alcotest.test_case "cannot be indexed" `Quick test_lazy_path_cannot_be_indexed;
          Alcotest.test_case "language modifier" `Quick test_lang_lazy_modifier;
          Alcotest.test_case "no-oid reads stay correct" `Quick
            test_deref_record_without_oid_still_correct;
          Alcotest.test_case "eager and lazy coexist" `Quick test_eager_and_lazy_coexist;
        ] );
    ]
