(* Strategy tuning: which replication strategy should a DBA pick?

   Builds the cost model's R/S database three times (no replication,
   in-place, separate), measures real read- and update-query I/O, and
   reports the measured C_total across the update-probability axis — a
   miniature, *measured* version of the paper's Figure 11, ending with the
   recommendation the analysis implies.

   Run with: dune exec examples/strategy_tuning.exe *)

module Params = Fieldrep_costmodel.Params
module Sweep = Fieldrep_costmodel.Sweep
module Gen = Fieldrep_workload.Gen
module Mix = Fieldrep_workload.Mix
module T = Fieldrep_util.Tableprint

let () =
  let sharing = 8 in
  let s_count = 1200 in
  Printf.printf
    "Measuring strategies on |S| = %d, f = %d (|R| = %d), unclustered indexes...\n\n"
    s_count sharing (s_count * sharing);
  let measurements =
    List.map
      (fun strategy ->
        let spec =
          { Gen.default_spec with Gen.s_count; sharing; strategy; seed = 2026 }
        in
        let built = Gen.build spec in
        (strategy, Mix.measure built ~read_sel:0.002 ~update_sel:0.001 ~queries:10 ()))
      [ Params.No_replication; Params.Inplace; Params.Separate ]
  in
  T.print
    ~header:[ "strategy"; "read I/O"; "update I/O" ]
    (List.map
       (fun (s, m) ->
         [ Sweep.strategy_name s; T.fixed 1 m.Mix.avg_read_io; T.fixed 1 m.Mix.avg_update_io ])
       measurements);

  Printf.printf "\nmeasured C_total by update probability:\n";
  let probs = [ 0.0; 0.1; 0.2; 0.3; 0.5; 0.7; 0.9; 1.0 ] in
  T.print
    ~header:("P(update)" :: List.map (fun (s, _) -> Sweep.strategy_name s) measurements)
    (List.map
       (fun p ->
         T.fixed 1 p
         :: List.map (fun (_, m) -> T.fixed 1 (Mix.mixed_cost m ~update_prob:p)) measurements)
       probs);

  Printf.printf "\nrecommendation per workload:\n";
  List.iter
    (fun p ->
      let best, _ =
        List.fold_left
          (fun (bs, bc) (s, m) ->
            let c = Mix.mixed_cost m ~update_prob:p in
            if c < bc then (s, c) else (bs, bc))
          (Params.No_replication, infinity)
          measurements
      in
      Printf.printf "  %2.0f%% updates -> %s\n" (100.0 *. p) (Sweep.strategy_name best))
    [ 0.05; 0.25; 0.75 ]
