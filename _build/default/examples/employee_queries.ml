(* The paper's employee database (§2) driven entirely through the
   EXTRA-style surface language: every replication example from §3 —
   selective field replication, full object replication, n-level paths,
   and an index on replicated data.

   Run with: dune exec examples/employee_queries.exe *)

module Db = Fieldrep.Db
module Lang = Fieldrep_query.Lang
module Value = Fieldrep_model.Value

let run db stmt =
  Printf.printf "> %s\n" (String.concat " " (String.split_on_char '\n' (String.trim stmt)));
  let outcome = Lang.exec db stmt in
  Format.printf "%a@." Lang.pp_outcome outcome

let () =
  let db = Db.create () in

  (* Figure 1 of the paper, verbatim apart from our index statements. *)
  List.iter (run db)
    [
      "define type ORG (name: char[], budget: int)";
      "define type DEPT (name: char[], budget: int, org: ref ORG)";
      "define type EMP (name: char[], age: int, salary: int, dept: ref DEPT)";
      "create Org: {own ref ORG}";
      "create Dept: {own ref DEPT}";
      "create Emp1: {own ref EMP}";
      "create Emp2: {own ref EMP}";
    ];

  (* Populate through the API (the language has no insert statement, like
     the paper's fragment). *)
  let org name budget = Db.insert db ~set:"Org" [ Value.VString name; Value.VInt budget ] in
  let dept name budget org =
    Db.insert db ~set:"Dept" [ Value.VString name; Value.VInt budget; Value.VRef org ]
  in
  let emp set name age salary dept =
    ignore
      (Db.insert db ~set
         [ Value.VString name; Value.VInt age; Value.VInt salary; Value.VRef dept ])
  in
  let acme = org "acme" 5_000_000 and globex = org "globex" 9_000_000 in
  let toys = dept "toys" 100_000 acme in
  let shoes = dept "shoes" 150_000 acme in
  let lasers = dept "lasers" 800_000 globex in
  emp "Emp1" "alice" 34 120_000 toys;
  emp "Emp1" "bob" 45 95_000 toys;
  emp "Emp1" "carol" 29 130_000 shoes;
  emp "Emp1" "dave" 51 105_000 lasers;
  emp "Emp1" "erin" 38 99_000 lasers;
  emp "Emp2" "frank" 41 88_000 shoes;
  Printf.printf "\npopulated: %d orgs, %d depts, %d+%d emps\n\n"
    (Db.set_size db "Org") (Db.set_size db "Dept") (Db.set_size db "Emp1")
    (Db.set_size db "Emp2");

  (* §3.1: replication is per-instance — Emp1 replicates, Emp2 does not. *)
  run db "replicate Emp1.dept.name";

  (* §3.3.1: full object replication. *)
  run db "replicate Emp1.dept.all";

  (* §3.3.2: a 2-level path, stored separately (§5). *)
  run db "replicate Emp1.dept.org.name using separate";

  Printf.printf "\nfunctional joins needed by Emp1 projections:\n";
  List.iter
    (fun path ->
      Printf.printf "  Emp1.%-15s : %d\n" path (Db.deref_would_join db ~set:"Emp1" path))
    [ "dept.name"; "dept.budget"; "dept.org.name"; "dept.org.budget" ];
  Printf.printf "and by Emp2 (not replicated):\n";
  Printf.printf "  Emp2.%-15s : %d\n\n" "dept.name"
    (Db.deref_would_join db ~set:"Emp2" "dept.name");

  (* The paper's §3.1 query. *)
  run db
    "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) where Emp1.salary > 100000";

  (* Updates propagate to every replica, across both strategies. *)
  run db {|replace (Dept.name = "toys & games") where Dept.name = "toys"|};
  run db {|retrieve (Emp1.name, Emp1.dept.name) where Emp1.age <= 45|};
  run db {|replace (Org.name = "acme holdings") where Org.name = "acme"|};
  run db "retrieve (Emp1.name, Emp1.dept.org.name) where Emp1.salary >= 95000";

  (* §3.3.4: an index on a replicated 2-level path.  It maps organization
     names directly to employees — one tree descent, no joins. *)
  run db "replicate Emp2.dept.org.name";
  run db "build btree on Emp2.dept.org.name";
  run db {|retrieve (Emp2.name) where Emp2.salary >= 0|};

  Db.check_integrity db;
  Printf.printf "\nintegrity: ok\n"
