(* Quickstart: define a schema with reference attributes, replicate a field,
   and watch the functional join disappear.

   Run with: dune exec examples/quickstart.exe *)

module Db = Fieldrep.Db
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Pager = Fieldrep_storage.Pager
module Stats = Fieldrep_storage.Stats

let () =
  let db = Db.create () in

  (* The paper's running example: departments and employees. *)
  Db.define_type db
    (Ty.make ~name:"DEPT"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "budget"; ftype = Ty.Scalar Ty.SInt };
       ]);
  Db.define_type db
    (Ty.make ~name:"EMP"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "salary"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "dept"; ftype = Ty.Ref "DEPT" };
       ]);
  Db.create_set db ~name:"Dept" ~elem_type:"DEPT" ();
  Db.create_set db ~name:"Emp1" ~elem_type:"EMP" ();

  let toys = Db.insert db ~set:"Dept" [ Value.VString "toys"; Value.VInt 1000 ] in
  let games = Db.insert db ~set:"Dept" [ Value.VString "games"; Value.VInt 2000 ] in
  let alice =
    Db.insert db ~set:"Emp1" [ Value.VString "alice"; Value.VInt 90_000; Value.VRef toys ]
  in
  let bob =
    Db.insert db ~set:"Emp1" [ Value.VString "bob"; Value.VInt 80_000; Value.VRef games ]
  in

  (* Without replication, emp.dept.name is a functional join: two objects,
     usually two pages. *)
  Printf.printf "before replication: dept.name needs %d functional join(s)\n"
    (Db.deref_would_join db ~set:"Emp1" "dept.name");
  Printf.printf "  alice works in %s\n"
    (Value.to_string (Db.deref db ~set:"Emp1" alice "dept.name"));

  (* replicate Emp1.dept.name — the paper's §3.1 statement. *)
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  Printf.printf "after replication:  dept.name needs %d functional join(s)\n"
    (Db.deref_would_join db ~set:"Emp1" "dept.name");

  (* Count the pages a query actually touches, cold. *)
  let cold f =
    Pager.run_cold (Db.pager db) f;
    Stats.total_io (Db.stats db)
  in
  let io =
    cold (fun () -> ignore (Db.deref db ~set:"Emp1" alice "dept.name"))
  in
  Printf.printf "  cold deref now touches %d page(s)\n" io;

  (* Updates to the department name are propagated to the hidden copies
     automatically — replicated data is never stale. *)
  Db.update_field db ~set:"Dept" toys ~field:"name" (Value.VString "toys+games");
  Printf.printf "after update: alice works in %s, bob in %s\n"
    (Value.to_string (Db.deref db ~set:"Emp1" alice "dept.name"))
    (Value.to_string (Db.deref db ~set:"Emp1" bob "dept.name"));

  Db.check_integrity db;
  Printf.printf "integrity: ok\n"
