examples/quickstart.ml: Fieldrep Fieldrep_model Fieldrep_storage Printf
