examples/employee_queries.ml: Fieldrep Fieldrep_model Fieldrep_query Format List Printf String
