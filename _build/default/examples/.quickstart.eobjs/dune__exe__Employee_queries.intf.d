examples/employee_queries.mli:
