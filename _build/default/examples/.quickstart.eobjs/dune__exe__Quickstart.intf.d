examples/quickstart.mli:
