(* A tour of the features this implementation adds beyond the paper's core:
   lazy propagation (§8 future work), inverse references through the
   inverted paths (§8), aggregates/ordering in the query language,
   per-structure I/O attribution, and database images.

   Run with: dune exec examples/extensions_tour.exe *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Pager = Fieldrep_storage.Pager
module Stats = Fieldrep_storage.Stats
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Lang = Fieldrep_query.Lang
module Exec = Fieldrep_query.Exec
module Engine = Fieldrep_replication.Engine
module Gen = Fieldrep_workload.Gen
module T = Fieldrep_util.Tableprint

let show db stmt =
  Printf.printf "> %s\n" stmt;
  Format.printf "%a@.@." Lang.pp_outcome (Lang.exec db stmt)

let () =
  let db = Gen.employee_db ~norgs:4 ~ndepts:12 ~nemps:400 ~seed:11 () in

  Printf.printf "=== lazy propagation (updates are not propagated until needed) ===\n";
  show db "replicate Emp1.dept.name lazy";
  let dept = List.hd (Exec.matching_oids db ~set:"Dept" None) in
  let io f =
    Pager.run_cold (Db.pager db) f;
    Stats.total_io (Db.stats db)
  in
  let upd_io =
    io (fun () ->
        Db.update_field db ~set:"Dept" dept ~field:"name" (Value.VString "lazy dept"))
  in
  Printf.printf "dept rename cost %d page I/Os and left %d employees invalidated\n"
    upd_io
    (Engine.pending_count (Db.engine db));
  let emps, _ = Db.referencers db ~source_set:"Emp1" ~attr:"dept" dept in
  Printf.printf "first read repairs on demand: %s\n"
    (Value.to_string (Db.deref db ~set:"Emp1" (List.hd emps) "dept.name"));
  Printf.printf "pending after one read: %d\n\n" (Engine.pending_count (Db.engine db));
  Engine.flush_pending (Db.engine db);

  Printf.printf "=== inverse references (inverted paths as inverse functions) ===\n";
  let members, how = Db.referencers db ~source_set:"Emp1" ~attr:"dept" dept in
  Printf.printf "%d employees reference this department (answered %s)\n\n"
    (List.length members)
    (match how with Db.Via_links -> "from link objects, no scan" | Db.Via_scan -> "by scan");

  Printf.printf "=== aggregates and ordering in the query language ===\n";
  show db "retrieve (count(Emp1.name), avg(Emp1.salary), max(Emp1.salary))";
  show db "retrieve (Emp1.name, Emp1.salary) order by Emp1.salary desc limit 3";
  show db "retrieve (count(Emp1.name), avg(Emp1.salary)) group by Emp1.dept.org.name";
  show db {|insert into Emp1 values ("new hire", 29, 61000, ref(Dept.name = "dept-03"))|};

  Printf.printf "=== per-structure I/O attribution ===\n";
  Pager.run_cold (Db.pager db) (fun () ->
      match Lang.exec db {|retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary >= 140000|} with
      | Lang.Rows rows -> Printf.printf "(query returned %d rows)\n" (List.length rows)
      | _ -> ());
  T.print
    ~header:[ "structure"; "reads"; "writes" ]
    (List.map
       (fun (label, r, w) -> [ label; string_of_int r; string_of_int w ])
       (Db.io_breakdown db));

  Printf.printf "\n=== database images ===\n";
  let path = Filename.temp_file "fieldrep_tour" ".img" in
  Db.save db path;
  let db2 = Db.load path in
  Printf.printf "saved and reopened: %d employees, integrity %s\n"
    (Db.set_size db2 "Emp1")
    (try
       Db.check_integrity db2;
       "ok"
     with Failure m -> "BROKEN: " ^ m);
  Sys.remove path
