(* fieldrep: command-line interface to the field-replication DBMS.

   Subcommands:
     model     - evaluate the analytical cost model at one configuration
     table     - print the paper's Figure 12 / 14 tables
     validate  - build a database, measure real I/O, compare to the model
     script    - execute an EXTRA-style statement script against a fresh db
     demo      - a short guided tour on the employee database
*)

module Db = Fieldrep.Db
module Value = Fieldrep_model.Value
module Lang = Fieldrep_query.Lang
module Params = Fieldrep_costmodel.Params
module Cost = Fieldrep_costmodel.Cost
module Sweep = Fieldrep_costmodel.Sweep
module Gen = Fieldrep_workload.Gen
module Mix = Fieldrep_workload.Mix
module T = Fieldrep_util.Tableprint

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument definitions                                         *)

let strategy_conv =
  let parse = function
    | "none" | "no-replication" -> Ok Params.No_replication
    | "inplace" | "in-place" -> Ok Params.Inplace
    | "separate" -> Ok Params.Separate
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S (none|inplace|separate)" s))
  in
  let print fmt s = Format.pp_print_string fmt (Sweep.strategy_name s) in
  Arg.conv (parse, print)

let strategy =
  Arg.(
    value
    & opt strategy_conv Params.Inplace
    & info [ "strategy" ] ~docv:"STRATEGY" ~doc:"none, inplace or separate.")

let clustered =
  Arg.(value & flag & info [ "clustered" ] ~doc:"Use clustered indexes.")

let sharing =
  Arg.(value & opt int 1 & info [ "f"; "sharing" ] ~docv:"F" ~doc:"Sharing level f.")

let s_count =
  Arg.(value & opt int 10_000 & info [ "s-count" ] ~docv:"N" ~doc:"Cardinality of S.")

let read_sel =
  Arg.(value & opt float 0.002 & info [ "fr"; "read-sel" ] ~doc:"Read selectivity f_r.")

let update_sel =
  Arg.(value & opt float 0.001 & info [ "fs"; "update-sel" ] ~doc:"Update selectivity f_s.")

let clustering_of_flag c = if c then Params.Clustered else Params.Unclustered

(* ------------------------------------------------------------------ *)
(* model                                                               *)

let model_cmd =
  let run sharing s_count read_sel update_sel clustered update_prob =
    let p =
      { Params.default with Params.sharing; s_count; read_sel; update_sel }
    in
    let clustering = clustering_of_flag clustered in
    let rows =
      List.map
        (fun strategy ->
          let r = Cost.sum (Cost.read p strategy clustering) in
          let u = Cost.sum (Cost.update p strategy clustering) in
          [
            Sweep.strategy_name strategy;
            T.fixed 1 r;
            T.fixed 1 u;
            T.fixed 1 (Cost.total p strategy clustering ~update_prob);
            (if strategy = Params.No_replication then "-"
             else
               T.pct
                 (Cost.percent_vs_no_replication p strategy clustering ~update_prob));
          ])
        [ Params.No_replication; Params.Inplace; Params.Separate ]
    in
    Printf.printf "cost model at |S|=%d f=%d fr=%g fs=%g (%s), P(update)=%g\n" s_count
      sharing read_sel update_sel
      (match clustering with Params.Clustered -> "clustered" | Params.Unclustered -> "unclustered")
      update_prob;
    T.print ~header:[ "strategy"; "C_read"; "C_update"; "C_total"; "vs none" ] rows
  in
  let update_prob =
    Arg.(value & opt float 0.1 & info [ "p"; "update-prob" ] ~doc:"Update probability.")
  in
  Cmd.v
    (Cmd.info "model" ~doc:"Evaluate the analytical cost model (paper section 6).")
    Term.(const run $ sharing $ s_count $ read_sel $ update_sel $ clustered $ update_prob)

(* ------------------------------------------------------------------ *)
(* table                                                               *)

let table_cmd =
  let run clustered =
    let clustering = clustering_of_flag clustered in
    let cells = Sweep.table Params.default clustering in
    T.print
      ~header:[ "configuration"; "C_read"; "C_update" ]
      (List.map
         (fun c ->
           [
             Printf.sprintf "f=%d %s" c.Sweep.t_sharing (Sweep.strategy_name c.Sweep.t_strategy);
             string_of_int c.Sweep.c_read;
             string_of_int c.Sweep.c_update;
           ])
         cells)
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Print the paper's Figure 12 (or, with --clustered, Figure 14).")
    Term.(const run $ clustered)

(* ------------------------------------------------------------------ *)
(* validate                                                            *)

let validate_cmd =
  let run sharing s_count read_sel update_sel clustered strategy queries =
    let spec =
      {
        Gen.default_spec with
        Gen.sharing;
        s_count;
        strategy;
        clustering = clustering_of_flag clustered;
      }
    in
    Printf.printf "building |S|=%d f=%d %s (%s) and measuring %d queries each...\n%!"
      s_count sharing (Sweep.strategy_name strategy)
      (if clustered then "clustered" else "unclustered")
      queries;
    let c = Mix.validate spec ~read_sel ~update_sel ~queries () in
    T.print
      ~header:[ ""; "measured"; "model" ]
      [
        [ "read I/O"; T.fixed 1 c.Mix.measured_read; T.fixed 1 c.Mix.model_read ];
        [ "update I/O"; T.fixed 1 c.Mix.measured_update; T.fixed 1 c.Mix.model_update ];
      ]
  in
  let queries =
    Arg.(value & opt int 12 & info [ "queries" ] ~doc:"Queries per measurement.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Measure real page I/O on a generated database and compare to the model.")
    Term.(
      const run $ sharing
      $ Arg.(value & opt int 2000 & info [ "s-count" ] ~docv:"N" ~doc:"Cardinality of S.")
      $ read_sel $ update_sel $ clustered $ strategy $ queries)

(* ------------------------------------------------------------------ *)
(* script                                                              *)

let script_cmd =
  let run file db_image save_image =
    let contents =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let db = match db_image with Some path -> Db.load path | None -> Db.create () in
    List.iter (fun o -> Format.printf "%a@." Lang.pp_outcome o) (Lang.exec_script db contents);
    match save_image with
    | Some path ->
        Db.save db path;
        Printf.printf "saved database image to %s\n" path
    | None -> ()
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Statement script.")
  in
  let db_image =
    Arg.(value & opt (some file) None & info [ "db" ] ~docv:"IMAGE" ~doc:"Open this database image instead of a fresh database.")
  in
  let save_image =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"IMAGE" ~doc:"Save the database image afterwards.")
  in
  Cmd.v
    (Cmd.info "script"
       ~doc:"Execute an EXTRA-style statement script (optionally against / into a database image).")
    Term.(const run $ file $ db_image $ save_image)

(* ------------------------------------------------------------------ *)
(* demo                                                                *)

let demo_cmd =
  let run () =
    let db = Gen.employee_db ~norgs:3 ~ndepts:8 ~nemps:60 () in
    let show stmt =
      Printf.printf "> %s\n" stmt;
      Format.printf "%a@.@." Lang.pp_outcome (Lang.exec db stmt)
    in
    Printf.printf "employee database: %d orgs, %d depts, %d employees\n\n"
      (Db.set_size db "Org") (Db.set_size db "Dept") (Db.set_size db "Emp1");
    show "replicate Emp1.dept.name";
    show "replicate Emp1.dept.org.name using separate";
    show "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) where Emp1.salary > 140000";
    show {|replace (Dept.budget = 123456) where Dept.name = "dept-03"|};
    show "retrieve (Emp1.name, Emp1.dept.org.name) where Emp1.salary > 145000";
    Db.check_integrity db;
    Printf.printf "integrity: ok\n"
  in
  Cmd.v (Cmd.info "demo" ~doc:"A short guided tour on the employee database.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let () =
  let doc = "Field replication in an object-oriented DBMS (Shekita & Carey, 1989)" in
  let info = Cmd.info "fieldrep" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ model_cmd; table_cmd; validate_cmd; script_cmd; demo_cmd ]))
