module Wire = Fieldrep_util.Wire

type t = Int of int | String of string

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.Int.compare x y
  | String x, String y -> Stdlib.String.compare x y
  | Int _, String _ -> -1
  | String _, Int _ -> 1

let equal a b = compare a b = 0

let same_variant a b =
  match (a, b) with
  | Int _, Int _ | String _, String _ -> true
  | Int _, String _ | String _, Int _ -> false

let pp fmt = function
  | Int v -> Format.fprintf fmt "%d" v
  | String s -> Format.fprintf fmt "%S" s

let to_string t = Format.asprintf "%a" pp t
let tag_int = 0
let tag_string = 1

let encoded_size = function
  | Int _ -> 1 + 8
  | String s -> 1 + Wire.string_size s

let encode buf off = function
  | Int v ->
      let off = Wire.put_u8 buf off tag_int in
      Wire.put_int buf off v
  | String s ->
      let off = Wire.put_u8 buf off tag_string in
      Wire.put_string buf off s

let decode buf off =
  let tag, off = Wire.get_u8 buf off in
  if tag = tag_int then
    let v, off = Wire.get_int buf off in
    (Int v, off)
  else if tag = tag_string then
    let s, off = Wire.get_string buf off in
    (String s, off)
  else raise (Wire.Corrupt (Printf.sprintf "Key: bad tag %d" tag))

let min_int_key = Int min_int
