(** Page-based B+-tree mapping keys to OIDs.

    Entries are (key, oid) pairs ordered lexicographically, so duplicate
    keys are supported and every entry is individually addressable (needed
    when an index entry must follow one specific object).  Internal
    separators carry the full (key, oid) pair of the right subtree's first
    entry, which keeps duplicate runs searchable from the leftmost
    occurrence.

    Nodes occupy one page each; splits are byte-driven, deletes rebalance by
    borrowing or merging, and leaves are chained for range scans.  This is
    the index structure the paper assumes on [field_r] / [field_s]
    (clustered or not is a property of the heap file's physical order, not
    of the tree). *)

type t

val create : ?max_leaf_entries:int -> ?max_internal_entries:int -> Fieldrep_storage.Pager.t -> t
(** A fresh empty tree in its own file.  The optional caps bound the entry
    count per node below what the page size allows — used to pin the fanout
    to the cost model's [m]. *)

val root : t -> int
(** Page number of the root node (stable for the tree's lifetime). *)

val attach :
  ?max_leaf_entries:int ->
  ?max_internal_entries:int ->
  Fieldrep_storage.Pager.t ->
  file:int ->
  root:int ->
  count:int ->
  t
(** Reopen a tree persisted in an existing file (database image load).
    Freed pages from before the save are not reclaimed. *)

val file_id : t -> int
val entry_count : t -> int
val height : t -> int
(** 1 for a lone leaf. *)

val page_count : t -> int

val leaf_count : t -> int
(** Number of leaf nodes (walks the leaf chain). *)

val insert : t -> Key.t -> Fieldrep_storage.Oid.t -> unit
(** Duplicate (key, oid) pairs are rejected with [Invalid_argument];
    duplicate keys with distinct OIDs are fine.  All keys in a tree must be
    of one {!Key.t} variant. *)

val delete : t -> Key.t -> Fieldrep_storage.Oid.t -> bool
(** [true] iff the exact entry existed. *)

val find : t -> Key.t -> Fieldrep_storage.Oid.t list
(** All OIDs under the key, in OID order. *)

val find_first : t -> Key.t -> Fieldrep_storage.Oid.t option

val mem : t -> Key.t -> bool

val iter_range : t -> lo:Key.t -> hi:Key.t -> (Key.t -> Fieldrep_storage.Oid.t -> unit) -> unit
(** Entries with [lo <= key <= hi] in order. *)

val fold_range :
  t -> lo:Key.t -> hi:Key.t -> init:'a -> f:('a -> Key.t -> Fieldrep_storage.Oid.t -> 'a) -> 'a

val iter_all : t -> (Key.t -> Fieldrep_storage.Oid.t -> unit) -> unit

val bulk_load : t -> (Key.t * Fieldrep_storage.Oid.t) array -> unit
(** Build bottom-up from entries (sorted internally); the tree must be
    empty.  Much cheaper than repeated {!insert} and produces full leaves. *)

val check_invariants : t -> unit
(** Raises [Failure] describing the first violated invariant: global order,
    uniform depth, separator correctness, leaf chaining, node size bounds.
    For tests. *)
