(** Index keys.

    The paper's model indexes scalar fields; we support integer and string
    keys.  A single tree holds keys of one variant only (enforced by
    {!Btree}). *)

type t = Int of int | String of string

val compare : t -> t -> int
(** Total order within a variant; [Int _ < String _] across variants (never
    exercised by a well-formed tree, but keeps [compare] total). *)

val equal : t -> t -> bool
val same_variant : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val encoded_size : t -> int
val encode : Bytes.t -> int -> t -> int
val decode : Bytes.t -> int -> t * int

val min_int_key : t
(** Smallest possible [Int] key. *)
