lib/btree/key.ml: Fieldrep_util Format Printf Stdlib
