lib/btree/key.mli: Bytes Format
