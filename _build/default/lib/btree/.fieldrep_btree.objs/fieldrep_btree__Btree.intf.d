lib/btree/btree.mli: Fieldrep_storage Key
