lib/btree/btree.ml: Array Fieldrep_storage Fieldrep_util Key List Option Printf
