(** Aligned plain-text tables for benchmark and experiment output.

    The benchmark harness reports every paper table and figure as text; this
    keeps the formatting in one place so the output stays diffable. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with a header rule.  Columns
    default to right-aligned except the first, which is left-aligned; an
    explicit [align] list (padded with [Right]) overrides this.  Rows shorter
    than the header are padded with empty cells. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [print] is [render] followed by [print_string]. *)

val fixed : int -> float -> string
(** [fixed d v] formats [v] with [d] decimal places. *)

val pct : float -> string
(** [pct v] formats a percentage with one decimal and a [%] suffix. *)
