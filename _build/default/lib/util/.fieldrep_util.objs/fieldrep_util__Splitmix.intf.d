lib/util/splitmix.mli:
