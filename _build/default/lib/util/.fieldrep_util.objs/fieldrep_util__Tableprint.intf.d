lib/util/tableprint.mli:
