lib/util/splitmix.ml: Array Float Hashtbl Int64
