lib/util/tableprint.ml: Buffer List Option Printf String
