lib/util/combin.mli:
