let log_binomial n k =
  assert (0 <= k && k <= n);
  (* lgamma-based computation keeps this O(1) and stable for the large
     populations (|R| up to 500k) used by the cost model. *)
  let lgamma_int x =
    (* Stirling series for ln((x-1)!) = ln Gamma(x); exact enough (< 1e-10
       relative) for x >= 10, with a small exact table below that. *)
    let rec lift x acc =
      if x >= 10.0 then (x, acc) else lift (x +. 1.0) (acc -. log x)
    in
    let x, shift = lift (float_of_int x) 0.0 in
    let inv = 1.0 /. x in
    let inv2 = inv *. inv in
    shift
    +. ((x -. 0.5) *. log x) -. x
    +. (0.5 *. log (2.0 *. Float.pi))
    +. (inv /. 12.0)
    -. (inv *. inv2 /. 360.0)
    +. (inv *. inv2 *. inv2 /. 1260.0)
  in
  if k = 0 || k = n then 0.0
  else lgamma_int (n + 1) -. lgamma_int (k + 1) -. lgamma_int (n - k + 1)

let binomial_ratio a b k =
  assert (0 <= k && k <= a && a <= b);
  if k = 0 then 1.0
  else if a = b then 1.0
  else exp (log_binomial a k -. log_binomial b k)

let yao ~n ~per_page ~k =
  assert (n >= 0 && per_page >= 0 && k >= 0);
  if k = 0 || per_page = 0 || n = 0 then 0.0
  else if k > n - per_page then 1.0
  else 1.0 -. binomial_ratio (n - per_page) n k

let expected_pages ~pages ~n ~per_page ~k =
  float_of_int pages *. yao ~n ~per_page ~k

let ceil_div a b =
  assert (b > 0);
  if a <= 0 then 0 else (a + b - 1) / b

let ceil_log ~base n =
  assert (base >= 2 && n >= 1);
  let rec loop power count =
    if power >= n then count else loop (power * base) (count + 1)
  in
  loop 1 0
