(** Combinatorics for the analytical cost model.

    The central quantity is Yao's block-access estimate [Yao77], used by the
    paper for every expected-pages-touched term:

    {v y(n, m, k) = 1 - C(n - m, k) / C(n, k) v}

    i.e. the probability that a page holding [m] of [n] objects is touched
    when [k] objects are picked at random without replacement. *)

val log_binomial : int -> int -> float
(** [log_binomial n k] is [ln C(n, k)].  Requires [0 <= k <= n]. *)

val binomial_ratio : int -> int -> int -> float
(** [binomial_ratio a b k] is [C(a, k) / C(b, k)] computed in log space for
    numerical stability.  Requires [0 <= k <= a <= b].  Returns a value in
    [0, 1]. *)

val yao : n:int -> per_page:int -> k:int -> float
(** [yao ~n ~per_page ~k] is the paper's [y(n, per_page, k)]: the probability
    that a given page containing [per_page] of the [n] objects is touched
    when [k] distinct objects are accessed.  Edge cases: result is [0.] when
    [k = 0] or [per_page = 0], and [1.] when [k > n - per_page]. *)

val expected_pages : pages:int -> n:int -> per_page:int -> k:int -> float
(** [expected_pages ~pages ~n ~per_page ~k] is [pages *. yao ~n ~per_page ~k],
    the expected number of pages read. *)

val ceil_div : int -> int -> int
(** Ceiling integer division; divisor must be positive. *)

val ceil_log : base:int -> int -> int
(** [ceil_log ~base n] is [ceil (log_base n)], with [ceil_log ~base 1 = 0].
    Requires [base >= 2] and [n >= 1]. *)
