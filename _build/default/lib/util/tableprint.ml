type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    let given = Option.value align ~default:[] in
    List.init ncols (fun i ->
        match List.nth_opt given i with
        | Some a -> a
        | None -> if i = 0 then Left else Right)
  in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)
let fixed d v = Printf.sprintf "%.*f" d v
let pct v = Printf.sprintf "%.1f%%" v
