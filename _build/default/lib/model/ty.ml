type scalar = SInt | SString
type ftype = Scalar of scalar | Ref of string
type field = { fname : string; ftype : ftype }
type t = { tname : string; fields : field list }

let make ~name fields =
  if name = "" then invalid_arg "Ty.make: empty type name";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if f.fname = "" then invalid_arg "Ty.make: empty field name";
      if Hashtbl.mem seen f.fname then
        invalid_arg (Printf.sprintf "Ty.make: duplicate field %S in %s" f.fname name);
      Hashtbl.add seen f.fname ())
    fields;
  { tname = name; fields }

let field_opt t name = List.find_opt (fun f -> f.fname = name) t.fields

let field t name =
  match field_opt t name with Some f -> f | None -> raise Not_found

let field_index t name =
  let rec go i = function
    | [] -> raise Not_found
    | f :: rest -> if f.fname = name then i else go (i + 1) rest
  in
  go 0 t.fields

let arity t = List.length t.fields

let scalar_fields t =
  List.filter_map
    (fun f -> match f.ftype with Scalar s -> Some (f.fname, s) | Ref _ -> None)
    t.fields

let ref_fields t =
  List.filter_map
    (fun f -> match f.ftype with Ref target -> Some (f.fname, target) | Scalar _ -> None)
    t.fields

let is_ref f = match f.ftype with Ref _ -> true | Scalar _ -> false

let pp_scalar fmt = function
  | SInt -> Format.pp_print_string fmt "int"
  | SString -> Format.pp_print_string fmt "char[]"

let pp_ftype fmt = function
  | Scalar s -> pp_scalar fmt s
  | Ref target -> Format.fprintf fmt "ref %s" target

let pp fmt t =
  Format.fprintf fmt "@[<v 2>define type %s (@," t.tname;
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf fmt ",@,";
      Format.fprintf fmt "%s: %a" f.fname pp_ftype f.ftype)
    t.fields;
  Format.fprintf fmt "@]@,)"
