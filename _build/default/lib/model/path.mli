(** Reference-path expressions: the syntax of [replicate] statements.

    A path names a source set, a chain of reference attributes, and a
    terminal — either one scalar field or [all] (full object replication,
    paper §3.3.1).  [Empl.dept.org.name] has source set [Empl], steps
    [dept; org] and terminal [Field "name"]; its *level* is 2 because it
    crosses two references. *)

type terminal = Field of string | All

type t = { source_set : string; steps : string list; terminal : terminal }

val make : source_set:string -> steps:string list -> terminal:terminal -> t
(** Requires at least one step (a path with no reference attribute needs no
    replication).  Raises [Invalid_argument]. *)

val level : t -> int
(** Number of reference attributes crossed: [List.length steps]. *)

val parse : string -> t
(** Parse ["Set.attr1.attr2.field"] / ["Set.attr.all"].  The last component
    is the terminal; [all] (case-insensitive) means {!All}.  Raises
    [Invalid_argument] on fewer than three components or empty parts. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val prefix_length : t -> t -> int
(** Number of leading steps two paths from the same source set share; 0 when
    the source sets differ.  Link-ID sharing (paper §4.1.4) is driven by
    this. *)
