type terminal = Field of string | All
type t = { source_set : string; steps : string list; terminal : terminal }

let make ~source_set ~steps ~terminal =
  if source_set = "" then invalid_arg "Path.make: empty source set";
  if steps = [] then invalid_arg "Path.make: a replication path needs at least one reference step";
  List.iter (fun s -> if s = "" then invalid_arg "Path.make: empty step") steps;
  (match terminal with
  | Field "" -> invalid_arg "Path.make: empty terminal field"
  | Field _ | All -> ());
  { source_set; steps; terminal }

let level t = List.length t.steps

let parse s =
  match String.split_on_char '.' (String.trim s) with
  | source_set :: rest when List.length rest >= 2 ->
      let rec split_last acc = function
        | [] -> assert false
        | [ last ] -> (List.rev acc, last)
        | x :: tl -> split_last (x :: acc) tl
      in
      let steps, last = split_last [] rest in
      let terminal =
        if String.lowercase_ascii last = "all" then All else Field last
      in
      make ~source_set ~steps ~terminal
  | _ ->
      invalid_arg
        (Printf.sprintf "Path.parse: %S (want Set.attr...attr.field or Set.attr.all)" s)

let to_string t =
  let last = match t.terminal with Field f -> f | All -> "all" in
  String.concat "." ((t.source_set :: t.steps) @ [ last ])

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal a b =
  a.source_set = b.source_set && a.steps = b.steps
  &&
  match (a.terminal, b.terminal) with
  | Field x, Field y -> x = y
  | All, All -> true
  | (Field _ | All), _ -> false

let prefix_length a b =
  if a.source_set <> b.source_set then 0
  else
    let rec go n xs ys =
      match (xs, ys) with
      | x :: xs, y :: ys when x = y -> go (n + 1) xs ys
      | _, _ -> n
    in
    go 0 a.steps b.steps
