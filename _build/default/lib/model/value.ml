module Wire = Fieldrep_util.Wire
module Oid = Fieldrep_storage.Oid

type t = VInt of int | VString of string | VRef of Oid.t | VNull

let equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VString x, VString y -> String.equal x y
  | VRef x, VRef y -> Oid.equal x y
  | VNull, VNull -> true
  | (VInt _ | VString _ | VRef _ | VNull), _ -> false

let rank = function VNull -> 0 | VInt _ -> 1 | VString _ -> 2 | VRef _ -> 3

let compare a b =
  match (a, b) with
  | VInt x, VInt y -> Int.compare x y
  | VString x, VString y -> String.compare x y
  | VRef x, VRef y -> Oid.compare x y
  | VNull, VNull -> 0
  | _ -> Int.compare (rank a) (rank b)

let pp fmt = function
  | VInt v -> Format.fprintf fmt "%d" v
  | VString s -> Format.fprintf fmt "%S" s
  | VRef oid -> Format.fprintf fmt "@%a" Oid.pp oid
  | VNull -> Format.pp_print_string fmt "null"

let to_string t = Format.asprintf "%a" pp t

let matches ftype v =
  match (ftype, v) with
  | Ty.Scalar Ty.SInt, VInt _ -> true
  | Ty.Scalar Ty.SString, VString _ -> true
  | Ty.Ref _, (VRef _ | VNull) -> true
  | (Ty.Scalar _ | Ty.Ref _), _ -> false

let tag_null = 0
let tag_int = 1
let tag_string = 2
let tag_ref = 3

let encoded_size = function
  | VNull -> 1
  | VInt _ -> 1 + 8
  | VString s -> 1 + Wire.string_size s
  | VRef _ -> 1 + Oid.encoded_size

let encode buf off = function
  | VNull -> Wire.put_u8 buf off tag_null
  | VInt v ->
      let off = Wire.put_u8 buf off tag_int in
      Wire.put_int buf off v
  | VString s ->
      let off = Wire.put_u8 buf off tag_string in
      Wire.put_string buf off s
  | VRef oid ->
      let off = Wire.put_u8 buf off tag_ref in
      Oid.encode buf off oid

let decode buf off =
  let tag, off = Wire.get_u8 buf off in
  if tag = tag_null then (VNull, off)
  else if tag = tag_int then
    let v, off = Wire.get_int buf off in
    (VInt v, off)
  else if tag = tag_string then
    let s, off = Wire.get_string buf off in
    (VString s, off)
  else if tag = tag_ref then
    let oid, off = Oid.decode buf off in
    (VRef oid, off)
  else raise (Wire.Corrupt (Printf.sprintf "Value: bad tag %d" tag))

let as_int = function
  | VInt v -> v
  | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_string = function
  | VString s -> s
  | v -> invalid_arg ("Value.as_string: " ^ to_string v)

let as_ref = function
  | VRef oid -> oid
  | v -> invalid_arg ("Value.as_ref: " ^ to_string v)
