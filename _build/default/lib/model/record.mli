(** Stored object representation.

    Every object on disk carries:
    - a 2-byte *type tag* identifying its type (paper §2.2),
    - a small *link section* of (link-OID, link-ID) pairs driving update
      propagation along replication paths (paper §4.1.3),
    - its field values — the user-visible fields of its type followed by any
      *hidden* fields added by replication (replicated copies for in-place
      paths, an S'-reference for separate paths; paper §3.1, §4, §5).

    The record layer is schema-agnostic: it stores a flat value array; which
    positions are user vs hidden fields is the catalog's business. *)

type link = { link_oid : Fieldrep_storage.Oid.t; link_id : int }
(** [link_oid] points at this object's link object for link [link_id].  A
    nil [link_oid] means the link is registered but currently has no link
    object (e.g. eliminated small links store member OIDs elsewhere). *)

type t = {
  type_tag : int;
  links : link list;  (** sorted by [link_id]; at most one entry per id *)
  values : Value.t array;
}

val make : type_tag:int -> Value.t array -> t
(** A record with no links. *)

val field : t -> int -> Value.t
(** Raises [Invalid_argument] on a bad index. *)

val set_field : t -> int -> Value.t -> t
(** Functional update. *)

val with_links : t -> link list -> t
(** Replaces the link section (re-sorts by link id). *)

val find_link : t -> int -> link option
val add_link : t -> link -> t
(** Replaces any existing entry with the same link id. *)

val remove_link : t -> int -> t

val encoded_size : t -> int
val encode : t -> Bytes.t
val decode : Bytes.t -> t

val type_tag_of_bytes : Bytes.t -> int
(** Peek at the tag without decoding the rest. *)

val pp : Format.formatter -> t -> unit
