(** Runtime values stored in object fields. *)

type t =
  | VInt of int
  | VString of string
  | VRef of Fieldrep_storage.Oid.t
  | VNull  (** an unset reference or missing scalar *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val matches : Ty.ftype -> t -> bool
(** Does the value conform to the field type?  [VNull] conforms to any
    [Ref _] field (an unset reference) but not to scalars. *)

val encoded_size : t -> int
val encode : Bytes.t -> int -> t -> int
val decode : Bytes.t -> int -> t * int

val as_int : t -> int
(** Raises [Invalid_argument] on other variants; same for the others. *)

val as_string : t -> string
val as_ref : t -> Fieldrep_storage.Oid.t
