(** Type definitions of the EXTRA-like data model.

    A type is a named list of fields; fields are either scalars or reference
    attributes ([ref T]) holding the OID of an object of type [T] — the
    construct field replication is built on (paper §2). *)

type scalar = SInt | SString

type ftype = Scalar of scalar | Ref of string  (** target type name *)

type field = { fname : string; ftype : ftype }

type t = { tname : string; fields : field list }

val make : name:string -> field list -> t
(** Validates that field names are non-empty and unique.
    Raises [Invalid_argument] otherwise. *)

val field : t -> string -> field
(** Raises [Not_found]. *)

val field_opt : t -> string -> field option
val field_index : t -> string -> int
(** Position of a field in the layout.  Raises [Not_found]. *)

val arity : t -> int

val scalar_fields : t -> (string * scalar) list
(** Scalar fields in declaration order (what [replicate path.all] copies). *)

val ref_fields : t -> (string * string) list
(** [(field name, target type name)] pairs. *)

val is_ref : field -> bool
val pp_scalar : Format.formatter -> scalar -> unit
val pp_ftype : Format.formatter -> ftype -> unit
val pp : Format.formatter -> t -> unit
