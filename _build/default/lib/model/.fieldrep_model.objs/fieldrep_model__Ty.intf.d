lib/model/ty.mli: Format
