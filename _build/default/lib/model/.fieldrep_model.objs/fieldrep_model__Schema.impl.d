lib/model/schema.ml: Hashtbl List Path Printf String Ty
