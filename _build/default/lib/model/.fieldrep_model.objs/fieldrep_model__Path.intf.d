lib/model/path.mli: Format
