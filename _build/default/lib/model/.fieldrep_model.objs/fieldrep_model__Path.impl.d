lib/model/path.ml: Format List Printf String
