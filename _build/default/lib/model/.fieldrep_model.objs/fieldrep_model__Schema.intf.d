lib/model/schema.mli: Path Ty
