lib/model/value.ml: Fieldrep_storage Fieldrep_util Format Int Printf String Ty
