lib/model/record.ml: Array Bytes Fieldrep_storage Fieldrep_util Format Int List Printf Value
