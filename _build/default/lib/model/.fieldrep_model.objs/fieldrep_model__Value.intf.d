lib/model/value.mli: Bytes Fieldrep_storage Format Ty
