lib/model/record.mli: Bytes Fieldrep_storage Format Value
