lib/model/ty.ml: Format Hashtbl List Printf
