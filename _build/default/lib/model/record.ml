module Wire = Fieldrep_util.Wire
module Oid = Fieldrep_storage.Oid

type link = { link_oid : Oid.t; link_id : int }
type t = { type_tag : int; links : link list; values : Value.t array }

let sort_links links =
  List.sort_uniq (fun a b -> Int.compare a.link_id b.link_id) links

let make ~type_tag values = { type_tag; links = []; values }

let field t i =
  if i < 0 || i >= Array.length t.values then
    invalid_arg (Printf.sprintf "Record.field: index %d of %d" i (Array.length t.values));
  t.values.(i)

let set_field t i v =
  if i < 0 || i >= Array.length t.values then
    invalid_arg (Printf.sprintf "Record.set_field: index %d of %d" i (Array.length t.values));
  let values = Array.copy t.values in
  values.(i) <- v;
  { t with values }

let with_links t links = { t with links = sort_links links }
let find_link t id = List.find_opt (fun l -> l.link_id = id) t.links

let add_link t link =
  let links = List.filter (fun l -> l.link_id <> link.link_id) t.links in
  { t with links = sort_links (link :: links) }

let remove_link t id =
  { t with links = List.filter (fun l -> l.link_id <> id) t.links }

let encoded_size t =
  2 + 1
  + (List.length t.links * (Oid.encoded_size + 1))
  + 2
  + Array.fold_left (fun acc v -> acc + Value.encoded_size v) 0 t.values

let encode t =
  let buf = Bytes.create (encoded_size t) in
  let off = Wire.put_u16 buf 0 t.type_tag in
  let off = Wire.put_u8 buf off (List.length t.links) in
  let off =
    List.fold_left
      (fun off l ->
        let off = Oid.encode buf off l.link_oid in
        Wire.put_u8 buf off l.link_id)
      off t.links
  in
  let off = Wire.put_u16 buf off (Array.length t.values) in
  let off = Array.fold_left (fun off v -> Value.encode buf off v) off t.values in
  assert (off = Bytes.length buf);
  buf

let decode buf =
  let type_tag, off = Wire.get_u16 buf 0 in
  let nlinks, off = Wire.get_u8 buf off in
  let cursor = ref off in
  let links =
    List.init nlinks (fun _ ->
        let link_oid, off = Oid.decode buf !cursor in
        let link_id, off = Wire.get_u8 buf off in
        cursor := off;
        { link_oid; link_id })
  in
  let nvalues, off = Wire.get_u16 buf !cursor in
  cursor := off;
  let values =
    Array.init nvalues (fun _ ->
        let v, off = Value.decode buf !cursor in
        cursor := off;
        v)
  in
  { type_tag; links; values }

let type_tag_of_bytes buf = fst (Wire.get_u16 buf 0)

let pp fmt t =
  Format.fprintf fmt "@[<hov 2>{tag=%d;@ links=[%a];@ values=[%a]}@]" t.type_tag
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
       (fun fmt l -> Format.fprintf fmt "(%a,#%d)" Oid.pp l.link_oid l.link_id))
    t.links
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
       Value.pp)
    (Array.to_list t.values)
