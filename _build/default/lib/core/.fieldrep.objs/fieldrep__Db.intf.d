lib/core/db.mli: Fieldrep_btree Fieldrep_model Fieldrep_replication Fieldrep_storage Fieldrep_wal
