lib/core/db.ml: Array Buffer Bytes Char Fieldrep_btree Fieldrep_model Fieldrep_replication Fieldrep_storage Fieldrep_wal Filename Format Fun Hashtbl Int32 Int64 Lazy List Option Printf String
