(* Tiny string utilities (no dependency on the Str library). *)

let find_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then Some 0
  else begin
    let rec go i =
      if i + nn > nh then None
      else if String.sub haystack i nn = needle then Some i
      else go (i + 1)
    in
    go 0
  end
