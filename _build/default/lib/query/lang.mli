(** A small surface language in the EXTRA style of the paper's examples.

    Supported statements:

    {v
    define type DEPT (name: char[], budget: int, org: ref ORG)
    create Dept: {own ref DEPT}
    replicate Emp1.dept.name
    replicate Emp1.dept.budget using separate
    replicate Emp1.dept.org.name collapsed
    replicate Emp1.dept.name threshold 0
    replicate Emp1.dept.name lazy
    build btree on Emp1.salary
    build clustered btree on Emp1.salary
    build btree on Emp1.dept.org.name          (index on replicated data)
    retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary > 100000
    retrieve (count(Emp1.name), avg(Emp1.salary)) where Emp1.age >= 40
    retrieve (Emp1.name) order by Emp1.salary desc limit 5
    retrieve (count(Emp1.name)) group by Emp1.dept.org.name
    replace (Dept.budget = 42) where Dept.name = "toys"
    insert into Emp1 values ("joe", 30, 50000, ref(Dept.name = "toys"))
    delete from Emp1 where Emp1.salary < 10000
    v}

    [ref(Set.field = literal)] resolves to the unique object of [Set]
    matching the predicate (an error if none or several match).

    Comparisons: [=], [<], [<=], [>], [>=], [between lit and lit].  Strict
    comparisons are supported for integers only (rewritten to inclusive
    bounds).  Literals: integers, double-quoted strings, [null]. *)

exception Parse_error of string

type outcome =
  | Type_defined of string
  | Set_created of string
  | Replicated of string
  | Index_built of string
  | Rows of Fieldrep_model.Value.t list list
  | Updated of int
  | Inserted of Fieldrep_storage.Oid.t
  | Deleted of int

val exec : Fieldrep.Db.t -> string -> outcome
(** Parse and execute one statement.  Raises {!Parse_error} on syntax
    errors and the underlying exceptions on semantic ones. *)

val exec_script : Fieldrep.Db.t -> string -> outcome list
(** Execute a sequence of statements separated by blank lines or
    semicolons; lines starting with [--] are comments. *)

val pp_outcome : Format.formatter -> outcome -> unit
