module Db = Fieldrep.Db
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type outcome =
  | Type_defined of string
  | Set_created of string
  | Replicated of string
  | Index_built of string
  | Rows of Value.t list list
  | Updated of int
  | Inserted of Fieldrep_storage.Oid.t
  | Deleted of int

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | Ident of string  (* may contain '.' and "[]" *)
  | Int_lit of int
  | Str_lit of string
  | Punct of string  (* ( ) , : { } = < > <= >= *)

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '[' || c = ']'
  in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '"' then begin
      let start = !i + 1 in
      let stop = ref start in
      while !stop < n && input.[!stop] <> '"' do
        incr stop
      done;
      if !stop >= n then fail "unterminated string literal";
      push (Str_lit (String.sub input start (!stop - start)));
      i := !stop + 1
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && input.[!i + 1] >= '0' && input.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      while !i < n && input.[!i] >= '0' && input.[!i] <= '9' do
        incr i
      done;
      push (Int_lit (int_of_string (String.sub input start (!i - start))))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      push (Ident (String.sub input start (!i - start)))
    end
    else if c = '<' || c = '>' then begin
      if !i + 1 < n && input.[!i + 1] = '=' then begin
        push (Punct (String.init 2 (fun j -> input.[!i + j])));
        i := !i + 2
      end
      else begin
        push (Punct (String.make 1 c));
        incr i
      end
    end
    else if c = '(' || c = ')' || c = ',' || c = ':' || c = '{' || c = '}' || c = '=' then begin
      push (Punct (String.make 1 c));
      incr i
    end
    else fail "unexpected character %C" c
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser helpers                                                      *)

type cursor = { mutable toks : token list }

let peek c = match c.toks with [] -> None | t :: _ -> Some t

let advance c =
  match c.toks with
  | [] -> fail "unexpected end of statement"
  | t :: rest ->
      c.toks <- rest;
      t

let expect_punct c s =
  match advance c with
  | Punct p when p = s -> ()
  | _ -> fail "expected %S" s

let expect_ident c =
  match advance c with Ident s -> s | _ -> fail "expected identifier"

let expect_keyword c kw =
  match advance c with
  | Ident s when String.lowercase_ascii s = kw -> ()
  | _ -> fail "expected keyword %S" kw

let accept_keyword c kw =
  match peek c with
  | Some (Ident s) when String.lowercase_ascii s = kw ->
      ignore (advance c);
      true
  | Some _ | None -> false

let literal c =
  match advance c with
  | Int_lit v -> Value.VInt v
  | Str_lit s -> Value.VString s
  | Ident s when String.lowercase_ascii s = "null" -> Value.VNull
  | _ -> fail "expected a literal"

(* Split "Set.rest.of.path" into the set and the in-set expression. *)
let split_qualified name =
  match String.index_opt name '.' with
  | Some i -> (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
  | None -> fail "expected Set.field, got %S" name

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let parse_field_type c =
  let t = expect_ident c in
  match String.lowercase_ascii t with
  | "int" -> Ty.Scalar Ty.SInt
  | "char[]" -> Ty.Scalar Ty.SString
  | "ref" -> Ty.Ref (expect_ident c)
  | _ -> fail "unknown field type %S" t

let exec_define db c =
  expect_keyword c "type";
  let name = expect_ident c in
  expect_punct c "(";
  let fields = ref [] in
  let rec loop () =
    let fname = expect_ident c in
    expect_punct c ":";
    let ftype = parse_field_type c in
    fields := { Ty.fname; ftype } :: !fields;
    match peek c with
    | Some (Punct ",") ->
        ignore (advance c);
        loop ()
    | Some (Punct ")") -> ignore (advance c)
    | Some _ | None -> fail "expected ',' or ')' in type definition"
  in
  loop ();
  Db.define_type db (Ty.make ~name (List.rev !fields));
  Type_defined name

let exec_create db c =
  let name = expect_ident c in
  expect_punct c ":";
  expect_punct c "{";
  ignore (accept_keyword c "own");
  expect_keyword c "ref";
  let elem = expect_ident c in
  expect_punct c "}";
  Db.create_set db ~name ~elem_type:elem ();
  Set_created name

let exec_replicate db c =
  let path_str = expect_ident c in
  let path = Path.parse path_str in
  let strategy = ref Schema.Inplace in
  let options = ref Schema.default_options in
  let rec modifiers () =
    if accept_keyword c "using" then begin
      (match String.lowercase_ascii (expect_ident c) with
      | "separate" -> strategy := Schema.Separate
      | "inplace" | "in-place" -> strategy := Schema.Inplace
      | s -> fail "unknown strategy %S" s);
      modifiers ()
    end
    else if accept_keyword c "collapsed" then begin
      options := { !options with Schema.collapse = true };
      modifiers ()
    end
    else if accept_keyword c "clustered" then begin
      options := { !options with Schema.cluster_links = true };
      modifiers ()
    end
    else if accept_keyword c "lazy" then begin
      options := { !options with Schema.lazy_propagation = true };
      modifiers ()
    end
    else if accept_keyword c "threshold" then begin
      (match advance c with
      | Int_lit v -> options := { !options with Schema.small_link_threshold = v }
      | _ -> fail "threshold expects an integer");
      modifiers ()
    end
  in
  modifiers ();
  Db.replicate db ~options:!options ~strategy:!strategy path;
  Replicated path_str

let exec_build db c =
  let clustered = accept_keyword c "clustered" in
  expect_keyword c "btree";
  expect_keyword c "on";
  let target = expect_ident c in
  let set, rest = split_qualified target in
  (* A one-component rest is a plain field; more components form a
     replicated-path index named by the full path. *)
  let field = if String.contains rest '.' then target else rest in
  let name = Printf.sprintf "btree_%s" (String.map (fun ch -> if ch = '.' then '_' else ch) target) in
  Db.build_index db ~name ~set ~field ~clustered;
  Index_built name

let parse_predicate c =
  let lhs = expect_ident c in
  let set, field = split_qualified lhs in
  let p =
    if accept_keyword c "between" then begin
      let lo = literal c in
      expect_keyword c "and";
      let hi = literal c in
      { Ast.pfield = field; lo = Some lo; hi = Some hi }
    end
    else
      match advance c with
      | Punct "=" -> Ast.eq field (literal c)
      | Punct "<=" -> { Ast.pfield = field; lo = None; hi = Some (literal c) }
      | Punct ">=" -> { Ast.pfield = field; lo = Some (literal c); hi = None }
      | Punct "<" -> (
          match literal c with
          | Value.VInt v -> { Ast.pfield = field; lo = None; hi = Some (Value.VInt (v - 1)) }
          | _ -> fail "strict comparison needs an integer literal")
      | Punct ">" -> (
          match literal c with
          | Value.VInt v -> { Ast.pfield = field; lo = Some (Value.VInt (v + 1)); hi = None }
          | _ -> fail "strict comparison needs an integer literal")
      | _ -> fail "expected a comparison operator"
  in
  (set, p)

type proj_item = P_col of string | P_agg of Exec.aggregate * string

let aggregate_of_name name =
  match String.lowercase_ascii name with
  | "count" -> Some Exec.Count
  | "sum" -> Some Exec.Sum
  | "avg" -> Some Exec.Avg
  | "min" -> Some Exec.Min
  | "max" -> Some Exec.Max
  | _ -> None

let exec_retrieve db c =
  expect_punct c "(";
  let items = ref [] in
  let rec loop () =
    let name = expect_ident c in
    let item =
      match aggregate_of_name name with
      | Some agg when peek c = Some (Punct "(") ->
          ignore (advance c);
          let arg = expect_ident c in
          expect_punct c ")";
          P_agg (agg, arg)
      | Some _ | None -> P_col name
    in
    items := item :: !items;
    match advance c with
    | Punct "," -> loop ()
    | Punct ")" -> ()
    | _ -> fail "expected ',' or ')' in projection list"
  in
  loop ();
  let items = List.rev !items in
  let qualified_of = function P_col q | P_agg (_, q) -> q in
  let sets = List.map (fun it -> fst (split_qualified (qualified_of it))) items in
  let from_set =
    match sets with
    | [] -> fail "empty projection list"
    | s :: rest ->
        if List.for_all (String.equal s) rest then s
        else fail "all projections must come from one set"
  in
  let where =
    if accept_keyword c "where" then begin
      let set, p = parse_predicate c in
      if set <> from_set then fail "predicate set %S does not match %S" set from_set;
      Some p
    end
    else None
  in
  let group_key =
    if accept_keyword c "group" then begin
      expect_keyword c "by";
      let q = expect_ident c in
      let set, expr = split_qualified q in
      if set <> from_set then fail "group-by set %S does not match %S" set from_set;
      Some expr
    end
    else None
  in
  let order_by =
    if accept_keyword c "order" then begin
      expect_keyword c "by";
      let q = expect_ident c in
      let set, expr = split_qualified q in
      if set <> from_set then fail "order-by set %S does not match %S" set from_set;
      let descending = accept_keyword c "desc" in
      if not descending then ignore (accept_keyword c "asc");
      Some (expr, descending)
    end
    else None
  in
  let limit =
    if accept_keyword c "limit" then
      match advance c with
      | Int_lit n when n >= 0 -> Some n
      | _ -> fail "limit expects a non-negative integer"
    else None
  in
  let aggs = List.filter_map (function P_agg (a, q) -> Some (a, q) | P_col _ -> None) items in
  let cols = List.filter_map (function P_col q -> Some q | P_agg _ -> None) items in
  match group_key with
  | Some key ->
      if aggs = [] then fail "group by needs at least one aggregate projection";
      List.iter
        (fun q ->
          if snd (split_qualified q) <> key then
            fail "plain projection %S must equal the group-by key" q)
        cols;
      if order_by <> None || limit <> None then
        fail "order by / limit do not apply to grouped queries";
      let specs = List.map (fun (a, q) -> (a, snd (split_qualified q))) aggs in
      Rows
        (List.map
           (fun (k, vs) -> if cols <> [] then k :: vs else k :: vs)
           (Exec.group_by db ~set:from_set ~where ~key specs))
  | None ->
  if aggs <> [] && cols <> [] then
    fail "cannot mix aggregate and plain projections (no group-by support)";
  if aggs <> [] then begin
    if order_by <> None || limit <> None then
      fail "order by / limit do not apply to aggregate queries";
    let specs = List.map (fun (a, q) -> (a, snd (split_qualified q))) aggs in
    Rows [ Exec.aggregate db ~set:from_set ~where specs ]
  end
  else begin
    let projections = List.map (fun q -> snd (split_qualified q)) cols in
    let q = { Ast.from_set; projections; where } in
    match order_by with
    | Some (expr, descending) ->
        Rows (Exec.retrieve_sorted db q ~order_by:expr ~descending ?limit ())
    | None -> (
        match limit with
        | Some n ->
            Rows
              (Exec.retrieve_values db q |> List.filteri (fun i _ -> i < n))
        | None -> Rows (Exec.retrieve_values db q))
  end

let exec_replace db c =
  expect_punct c "(";
  let assignments = ref [] in
  let target = ref None in
  let rec loop () =
    let lhs = expect_ident c in
    let set, field = split_qualified lhs in
    (match !target with
    | None -> target := Some set
    | Some s when s = set -> ()
    | Some s -> fail "assignments mix sets %S and %S" s set);
    expect_punct c "=";
    let v = literal c in
    assignments := (field, Ast.Const v) :: !assignments;
    match advance c with
    | Punct "," -> loop ()
    | Punct ")" -> ()
    | _ -> fail "expected ',' or ')' in assignment list"
  in
  loop ();
  let target_set = match !target with Some s -> s | None -> fail "no assignments" in
  let rwhere =
    if accept_keyword c "where" then begin
      let set, p = parse_predicate c in
      if set <> target_set then fail "predicate set %S does not match %S" set target_set;
      Some p
    end
    else None
  in
  Updated
    (Exec.replace db
       { Ast.target_set; assignments = List.rev !assignments; rwhere })

(* A literal, [null], or [ref(Set.field = literal)] resolved to the unique
   matching object. *)
let insert_value db c =
  match peek c with
  | Some (Ident name) when String.lowercase_ascii name = "ref" ->
      ignore (advance c);
      expect_punct c "(";
      let set, p = parse_predicate c in
      expect_punct c ")";
      (match Exec.matching_oids db ~set (Some p) with
      | [ oid ] -> Value.VRef oid
      | [] -> fail "ref(...): no %s object matches" set
      | l -> fail "ref(...): %d %s objects match (need exactly one)" (List.length l) set)
  | Some _ | None -> literal c

let exec_insert db c =
  expect_keyword c "into";
  let set = expect_ident c in
  expect_keyword c "values";
  expect_punct c "(";
  let values = ref [] in
  let rec loop () =
    values := insert_value db c :: !values;
    match advance c with
    | Punct "," -> loop ()
    | Punct ")" -> ()
    | _ -> fail "expected ',' or ')' in value list"
  in
  loop ();
  Inserted (Fieldrep.Db.insert db ~set (List.rev !values))

let exec_delete db c =
  expect_keyword c "from";
  let set = expect_ident c in
  let where =
    if accept_keyword c "where" then begin
      let pset, p = parse_predicate c in
      if pset <> set then fail "predicate set %S does not match %S" pset set;
      Some p
    end
    else None
  in
  Deleted (Exec.delete_where db ~set where)

let exec db input =
  let c = { toks = lex input } in
  let outcome =
    match advance c with
    | Ident kw -> (
        match String.lowercase_ascii kw with
        | "define" -> exec_define db c
        | "create" -> exec_create db c
        | "replicate" -> exec_replicate db c
        | "build" -> exec_build db c
        | "retrieve" -> exec_retrieve db c
        | "replace" -> exec_replace db c
        | "insert" -> exec_insert db c
        | "delete" -> exec_delete db c
        | _ -> fail "unknown statement %S" kw)
    | _ -> fail "expected a statement keyword"
  in
  (match c.toks with
  | [] -> ()
  | _ -> fail "trailing tokens after statement");
  outcome

let exec_script db input =
  (* Statements are separated by semicolons and/or blank lines; "--"
     comments run to end of line. *)
  let without_comments =
    String.split_on_char '\n' input
    |> List.map (fun line ->
           match Str_helpers.find_substring line "--" with
           | Some i -> String.sub line 0 i
           | None -> line)
    |> String.concat "\n"
  in
  String.split_on_char ';' without_comments
  |> List.concat_map (fun chunk ->
         (* Also treat blank lines as separators within a chunk. *)
         let statements = ref [] in
         let current = Buffer.create 64 in
         let flush_current () =
           let s = String.trim (Buffer.contents current) in
           if s <> "" then statements := s :: !statements;
           Buffer.clear current
         in
         List.iter
           (fun line ->
             if String.trim line = "" then flush_current ()
             else begin
               Buffer.add_string current line;
               Buffer.add_char current '\n'
             end)
           (String.split_on_char '\n' chunk);
         flush_current ();
         List.rev !statements)
  |> List.map (exec db)

let pp_outcome fmt = function
  | Type_defined name -> Format.fprintf fmt "defined type %s" name
  | Set_created name -> Format.fprintf fmt "created set %s" name
  | Replicated path -> Format.fprintf fmt "replicated %s" path
  | Index_built name -> Format.fprintf fmt "built index %s" name
  | Updated n -> Format.fprintf fmt "updated %d object(s)" n
  | Inserted oid -> Format.fprintf fmt "inserted %s" (Fieldrep_storage.Oid.to_string oid)
  | Deleted n -> Format.fprintf fmt "deleted %d object(s)" n
  | Rows rows ->
      Format.fprintf fmt "%d row(s)" (List.length rows);
      List.iter
        (fun row ->
          Format.fprintf fmt "@\n  (%s)"
            (String.concat ", " (List.map Value.to_string row)))
        rows
