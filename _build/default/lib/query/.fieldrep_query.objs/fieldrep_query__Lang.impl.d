lib/query/lang.ml: Ast Buffer Exec Fieldrep Fieldrep_model Fieldrep_storage Format List Printf Str_helpers String
