lib/query/exec.ml: Array Ast Fieldrep Fieldrep_btree Fieldrep_model Fieldrep_storage List Map Option Printf String
