lib/query/ast.mli: Fieldrep_model Fieldrep_storage Format
