lib/query/ast.ml: Fieldrep_model Fieldrep_storage Format List String
