lib/query/exec.mli: Ast Fieldrep Fieldrep_model Fieldrep_storage
