lib/query/str_helpers.ml: String
