lib/query/lang.mli: Fieldrep Fieldrep_model Fieldrep_storage Format
