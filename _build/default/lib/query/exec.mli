(** Query planning and execution.

    The planner is deliberately simple — pick an index for the predicate if
    one exists, then evaluate projections — but it is *replication-aware*
    through {!Fieldrep.Db.deref_record}: a projection covered by an in-place
    path reads no other object, one covered by a separate path reads only
    the S' object, and anything else performs the functional joins.  This is
    exactly the query-processing behaviour the paper's cost model prices. *)

module Db = Fieldrep.Db
module Value = Fieldrep_model.Value
module Oid = Fieldrep_storage.Oid

type access = Index_scan of string | File_scan

type retrieve_plan = {
  access : access;
  join_counts : (string * int) list;
      (** functional joins each projection performs per row *)
}

val explain_retrieve : Db.t -> Ast.retrieve -> retrieve_plan

type retrieve_result = {
  rows : int;
  output_file : int;  (** heap file holding the result (the model's T) *)
  output_pages : int;
}

val retrieve : Db.t -> Ast.retrieve -> retrieve_result
(** Executes the query, materialising the result into a fresh output file
    (so its generation I/O is counted, as in the model). *)

val retrieve_values : Db.t -> Ast.retrieve -> Value.t list list
(** Convenience for tests and examples: run the query and load the result
    rows back; the output file is dropped. *)

val drop_output : Db.t -> int -> unit
(** Delete a result file produced by {!retrieve}. *)

val replace : Db.t -> Ast.replace -> int
(** Executes an update query; returns the number of objects updated.  All
    replicated copies are maintained through the usual engine paths. *)

val matching_oids : Db.t -> set:string -> Ast.predicate option -> Oid.t list
(** The OIDs a predicate selects (exposed for workload drivers). *)

(** {1 Aggregates and ordering} *)

type aggregate = Count | Sum | Avg | Min | Max

val aggregate :
  Db.t ->
  set:string ->
  where:Ast.predicate option ->
  (aggregate * string) list ->
  Value.t list
(** One pass over the selected objects computing every aggregate.  The
    expression may be a field name or a replicated/derefenced path.  [Count]
    counts non-null values; [Sum]/[Avg] require integers ([Avg] rounds
    down); [Min]/[Max] work on integers and strings.  Aggregates over an
    empty selection yield [VInt 0] for [Count] and [VNull] otherwise. *)

val group_by :
  Db.t ->
  set:string ->
  where:Ast.predicate option ->
  key:string ->
  (aggregate * string) list ->
  (Value.t * Value.t list) list
(** Grouped aggregation: partition the selected objects by the value of
    [key] (a field or path expression — grouping by a replicated path needs
    no joins), compute the aggregates within each group, and return the
    groups in ascending key order. *)

val delete_where : Db.t -> set:string -> Ast.predicate option -> int
(** Delete every selected object (replication maintenance included).
    Raises like {!Db.delete} if a selected object is still referenced along
    a replication path; objects deleted before the error stay deleted. *)

val retrieve_sorted :
  Db.t ->
  Ast.retrieve ->
  order_by:string ->
  ?descending:bool ->
  ?limit:int ->
  unit ->
  Value.t list list
(** Run the query, sort rows by the value of [order_by] (a field or path
    expression, evaluated per row whether or not it is projected), and
    optionally keep only the first [limit] rows. *)
