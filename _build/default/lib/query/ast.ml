module Value = Fieldrep_model.Value
module Oid = Fieldrep_storage.Oid

type predicate = { pfield : string; lo : Value.t option; hi : Value.t option }

type retrieve = {
  from_set : string;
  projections : string list;
  where : predicate option;
}

type rhs = Const of Value.t | Computed of (Oid.t -> Value.t)

type replace = {
  target_set : string;
  assignments : (string * rhs) list;
  rwhere : predicate option;
}

let eq field v = { pfield = field; lo = Some v; hi = Some v }
let between field lo hi = { pfield = field; lo = Some lo; hi = Some hi }

let pp_predicate fmt p =
  match (p.lo, p.hi) with
  | Some a, Some b when Value.equal a b ->
      Format.fprintf fmt "%s = %a" p.pfield Value.pp a
  | Some a, Some b ->
      Format.fprintf fmt "%s between %a and %a" p.pfield Value.pp a Value.pp b
  | Some a, None -> Format.fprintf fmt "%s >= %a" p.pfield Value.pp a
  | None, Some b -> Format.fprintf fmt "%s <= %a" p.pfield Value.pp b
  | None, None -> Format.fprintf fmt "true"

let pp_retrieve fmt q =
  Format.fprintf fmt "retrieve (%s)"
    (String.concat ", " (List.map (fun p -> q.from_set ^ "." ^ p) q.projections));
  match q.where with
  | Some p -> Format.fprintf fmt " where %a" pp_predicate p
  | None -> ()
