(** Query abstract syntax: the two query classes of the paper's model
    (§6) generalised a little.

    A read query projects field and path expressions from objects of one
    set selected by a range predicate on a scalar field:

    {v retrieve (Emp1.name, Emp1.salary, Emp1.dept.name)
       where Emp1.salary > 100000 v}

    An update query assigns new values to fields of the selected objects:

    {v replace (Dept.budget = 42) where Dept.name = "toys" v} *)

module Value = Fieldrep_model.Value
module Oid = Fieldrep_storage.Oid

(** Inclusive range predicate on one scalar field; [None] bounds are open.
    Equality is [lo = hi = Some v]. *)
type predicate = { pfield : string; lo : Value.t option; hi : Value.t option }

type retrieve = {
  from_set : string;
  projections : string list;
      (** field names or dotted path expressions rooted at the set *)
  where : predicate option;  (** [None] scans the whole set *)
}

(** Right-hand side of an assignment: a constant, or a function of the
    updated object's OID (used by workload generators to write distinct
    values). *)
type rhs = Const of Value.t | Computed of (Oid.t -> Value.t)

type replace = {
  target_set : string;
  assignments : (string * rhs) list;
  rwhere : predicate option;
}

val eq : string -> Value.t -> predicate
val between : string -> Value.t -> Value.t -> predicate
val pp_predicate : Format.formatter -> predicate -> unit
val pp_retrieve : Format.formatter -> retrieve -> unit
