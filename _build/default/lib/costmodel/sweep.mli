(** Experiment drivers that regenerate the paper's figures and tables. *)

type series = {
  strategy : Params.strategy;
  read_sel : float;
  points : (float * float) list;  (** (update probability, % diff vs no replication) *)
}

val figure :
  ?sharings:int list ->
  ?read_sels:float list ->
  ?update_probs:float list ->
  Params.t ->
  Params.clustering ->
  (int * series list) list
(** The data behind Figure 11 (unclustered) / Figure 13 (clustered): for
    each sharing level f, one series per (strategy, read selectivity).
    Defaults follow the paper: f ∈ {1, 10, 20, 50}, f_r ∈ {.001, .002,
    .005}, update probability 0.0 .. 1.0 in steps of 0.05. *)

type table_cell = {
  t_strategy : Params.strategy;
  t_sharing : int;
  c_read : int;  (** rounded up, as the paper presents them *)
  c_update : int;
}

val table : ?sharings:int list -> ?read_sel:float -> Params.t -> Params.clustering -> table_cell list
(** The data behind Figure 12 (unclustered) / Figure 14 (clustered):
    C_read and C_update for f ∈ {1, 20} at f_r = 0.002, all strategies. *)

val crossover :
  Params.t -> Params.clustering -> Params.strategy -> Params.strategy -> float option
(** Smallest update probability (on a 0.001 grid) where the first strategy
    stops beating the second, if any — e.g. where separate overtakes
    in-place (the paper quotes ≈0.15 / ≈0.35 boundaries). *)

val strategy_name : Params.strategy -> string
