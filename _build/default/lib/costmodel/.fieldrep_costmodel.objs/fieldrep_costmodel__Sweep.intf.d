lib/costmodel/sweep.mli: Params
