lib/costmodel/sweep.ml: Cost Float List Params
