lib/costmodel/cost.ml: Fieldrep_util Float Params
