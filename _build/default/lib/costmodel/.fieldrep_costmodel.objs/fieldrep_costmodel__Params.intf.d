lib/costmodel/params.mli:
