lib/costmodel/params.ml: Fieldrep_util Float
