lib/costmodel/cost.mli: Params
