module Combin = Fieldrep_util.Combin

type strategy = No_replication | Inplace | Separate
type clustering = Unclustered | Clustered

type t = {
  page_bytes : int;
  obj_overhead : int;
  fanout : int;
  s_count : int;
  sharing : int;
  read_sel : float;
  update_sel : float;
  oid_bytes : int;
  link_id_bytes : int;
  type_tag_bytes : int;
  rep_field_bytes : int;
  r_bytes : int;
  s_bytes : int;
  t_bytes : int;
  small_link_elim : bool;
}

let default =
  {
    page_bytes = 4056;
    obj_overhead = 20;
    fanout = 350;
    s_count = 10_000;
    sharing = 1;
    read_sel = 0.001;
    update_sel = 0.001;
    oid_bytes = 8;
    link_id_bytes = 1;
    type_tag_bytes = 2;
    rep_field_bytes = 20;
    r_bytes = 100;
    s_bytes = 200;
    t_bytes = 100;
    small_link_elim = true;
  }

type derived = {
  r_count : int;
  r_size : int;
  s_size : int;
  sprime_size : int;
  link_size : int;
  o_r : int;
  o_s : int;
  o_sprime : int;
  o_l : int;
  o_t : int;
  p_r : int;
  p_s : int;
  p_sprime : int;
  p_l : int;
  read_objects : int;
  update_objects : int;
  p_t : int;
}

let derive p strategy =
  assert (p.sharing >= 1 && p.s_count >= 1);
  let r_count = p.sharing * p.s_count in
  (* Size adjustments per strategy (paper footnote 4):
     - in-place: R grows by the replicated field, S by a (link-OID, link-ID)
       pair for propagation bookkeeping;
     - separate: R grows by a hidden reference to S', S by its sref pair. *)
  let r_size =
    match strategy with
    | No_replication -> p.r_bytes
    | Inplace -> p.r_bytes + p.rep_field_bytes
    | Separate -> p.r_bytes + p.oid_bytes
  in
  let s_size =
    match strategy with
    | No_replication -> p.s_bytes
    | Inplace | Separate -> p.s_bytes + p.oid_bytes + p.link_id_bytes
  in
  let sprime_size = p.rep_field_bytes + p.type_tag_bytes in
  let link_size = p.link_id_bytes + p.type_tag_bytes + (p.sharing * p.oid_bytes) in
  let per_page size = max 1 (p.page_bytes / (p.obj_overhead + size)) in
  let o_r = per_page r_size in
  let o_s = per_page s_size in
  let o_sprime = per_page sprime_size in
  let o_l = per_page link_size in
  let o_t = per_page p.t_bytes in
  let read_objects = int_of_float (Float.round (p.read_sel *. float_of_int r_count)) in
  let update_objects = int_of_float (Float.round (p.update_sel *. float_of_int p.s_count)) in
  {
    r_count;
    r_size;
    s_size;
    sprime_size;
    link_size;
    o_r;
    o_s;
    o_sprime;
    o_l;
    o_t;
    p_r = Combin.ceil_div r_count o_r;
    p_s = Combin.ceil_div p.s_count o_s;
    p_sprime = Combin.ceil_div p.s_count o_sprime;
    p_l = Combin.ceil_div p.s_count o_l;
    read_objects;
    update_objects;
    p_t = Combin.ceil_div read_objects o_t;
  }
