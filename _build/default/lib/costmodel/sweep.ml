type series = {
  strategy : Params.strategy;
  read_sel : float;
  points : (float * float) list;
}

let strategy_name = function
  | Params.No_replication -> "no replication"
  | Params.Inplace -> "in-place"
  | Params.Separate -> "separate"

let default_probs =
  List.init 21 (fun i -> float_of_int i /. 20.0)

let figure ?(sharings = [ 1; 10; 20; 50 ]) ?(read_sels = [ 0.001; 0.002; 0.005 ])
    ?(update_probs = default_probs) (p : Params.t) clustering =
  List.map
    (fun f ->
      let p = { p with Params.sharing = f } in
      let series =
        List.concat_map
          (fun strategy ->
            List.map
              (fun read_sel ->
                let p = { p with Params.read_sel } in
                {
                  strategy;
                  read_sel;
                  points =
                    List.map
                      (fun update_prob ->
                        ( update_prob,
                          Cost.percent_vs_no_replication p strategy clustering
                            ~update_prob ))
                      update_probs;
                })
              read_sels)
          [ Params.Inplace; Params.Separate ]
      in
      (f, series))
    sharings

type table_cell = {
  t_strategy : Params.strategy;
  t_sharing : int;
  c_read : int;
  c_update : int;
}

let table ?(sharings = [ 1; 20 ]) ?(read_sel = 0.002) (p : Params.t) clustering =
  List.concat_map
    (fun f ->
      let p = { p with Params.sharing = f; Params.read_sel = read_sel } in
      List.map
        (fun strategy ->
          {
            t_strategy = strategy;
            t_sharing = f;
            c_read = int_of_float (Float.ceil (Cost.sum (Cost.read p strategy clustering)));
            c_update =
              int_of_float (Float.ceil (Cost.sum (Cost.update p strategy clustering)));
          })
        [ Params.No_replication; Params.Inplace; Params.Separate ])
    sharings

let crossover p clustering a b =
  let beats prob =
    Cost.total p a clustering ~update_prob:prob
    <= Cost.total p b clustering ~update_prob:prob
  in
  if not (beats 0.0) then Some 0.0
  else begin
    let rec scan i =
      if i > 1000 then None
      else
        let prob = float_of_int i /. 1000.0 in
        if not (beats prob) then Some prob else scan (i + 1)
    in
    scan 1
  end
