(** The paper's cost equations (§6.5 unclustered, §6.7 clustered).

    All costs are expected page I/Os.  [read] and [update] return a term
    breakdown so tests can pin each component against hand-computed values;
    [total] is the paper's C_total = (1 − P_u)·C_read + P_u·C_update. *)

type terms = {
  index : float;  (** descend the B+-tree and scan its leaves *)
  data_r : float;  (** touch R (read queries, or propagation writes) *)
  data_s : float;  (** touch S (the functional join, or the update) *)
  data_sprime : float;  (** touch S' (separate replication) *)
  links : float;  (** read link objects (in-place update propagation) *)
  output : float;  (** generate the output file T *)
}

val sum : terms -> float

val read : Params.t -> Params.strategy -> Params.clustering -> terms
(** Cost of one read query:
    [retrieve (R.fields, R.sref.repfield) where clause on R.field_r]. *)

val update : Params.t -> Params.strategy -> Params.clustering -> terms
(** Cost of one update query:
    [replace (S.fields, S.repfield) where clause on S.field_s]. *)

val read_with : Params.t -> Params.derived -> Params.strategy -> Params.clustering -> terms
(** Like {!read} with explicitly supplied derived quantities — used by the
    empirical validation harness to price the model with *measured* page
    counts and fanouts instead of the paper's nominal object sizes. *)

val update_with : Params.t -> Params.derived -> Params.strategy -> Params.clustering -> terms

val total :
  Params.t -> Params.strategy -> Params.clustering -> update_prob:float -> float
(** Expected cost under a query mix with update probability [update_prob]. *)

type space = {
  r_pages : int;
  s_pages : int;
  aux_pages : int;  (** link files (in-place) or S' files (separate) *)
}

val space : Params.t -> Params.strategy -> space
(** The §4.2 space overhead, analytically: page counts for R and S with the
    per-strategy size adjustments, plus the auxiliary replication storage —
    link files for in-place (empty when the small-link elimination removes
    them at f = 1), the S' file for separate. *)

val percent_vs_no_replication :
  Params.t -> Params.strategy -> Params.clustering -> update_prob:float -> float
(** The quantity plotted in Figures 11 and 13: percentage difference of
    C_total against no replication (negative = replication wins). *)
