(** Parameters of the analytical cost model (paper §6.3, Figure 10).

    The model describes two sets R and S with [replicate R.sref.repfield]:
    read queries select [read_sel * |R|] objects of R through an index on a
    scalar field and fetch [sref.repfield]; update queries modify
    [update_sel * |S|] objects of S, including the replicated field. *)

type strategy = No_replication | Inplace | Separate

type clustering = Unclustered | Clustered

type t = {
  page_bytes : int;  (** B: usable bytes per disk page (default 4056) *)
  obj_overhead : int;  (** h: per-object storage overhead (default 20) *)
  fanout : int;  (** m: B+-tree fanout (default 350) *)
  s_count : int;  (** |S| (default 10000) *)
  sharing : int;  (** f: objects in R referencing each object of S *)
  read_sel : float;  (** f_r: selectivity of read queries (default 0.001) *)
  update_sel : float;  (** f_s: selectivity of update queries (default 0.001) *)
  oid_bytes : int;  (** sizeof(OID) (default 8) *)
  link_id_bytes : int;  (** sizeof(link-ID) (default 1) *)
  type_tag_bytes : int;  (** sizeof(type-tag) (default 2) *)
  rep_field_bytes : int;  (** k: size of the replicated field (default 20) *)
  r_bytes : int;  (** r: size of R objects before adjustment (default 100) *)
  s_bytes : int;  (** s: size of S objects before adjustment (default 200) *)
  t_bytes : int;  (** t: size of output objects (default 100) *)
  small_link_elim : bool;
      (** apply the §4.3.1 small-link elimination when [sharing = 1]: the
          single member OID is stored in the S object, so in-place update
          propagation reads no link pages.  Required to reproduce the
          paper's Figure 12 value of 42 for in-place updates at f = 1. *)
}

val default : t

(** Quantities derived from the core parameters for one strategy (sizes
    already adjusted as footnote 4 of the paper prescribes). *)
type derived = {
  r_count : int;  (** |R| = f * |S| *)
  r_size : int;
  s_size : int;
  sprime_size : int;
  link_size : int;
  o_r : int;  (** objects of R per page *)
  o_s : int;
  o_sprime : int;
  o_l : int;
  o_t : int;
  p_r : int;  (** pages of R *)
  p_s : int;
  p_sprime : int;
  p_l : int;
  read_objects : int;  (** f_r * |R|, rounded to nearest *)
  update_objects : int;  (** f_s * |S| *)
  p_t : int;  (** pages of the output file for a read query *)
}

val derive : t -> strategy -> derived
