module Combin = Fieldrep_util.Combin

type terms = {
  index : float;
  data_r : float;
  data_s : float;
  data_sprime : float;
  links : float;
  output : float;
}

let zero =
  { index = 0.; data_r = 0.; data_s = 0.; data_sprime = 0.; links = 0.; output = 0. }

let sum t = t.index +. t.data_r +. t.data_s +. t.data_sprime +. t.links +. t.output

(* Clustered access reads ⌈sel · pages⌉ sequential pages: a fraction of a
   page still costs one I/O, and the paper's Figure 14 values only reproduce
   with this per-term ceiling. *)
let seq_pages ~sel ~pages ~k =
  if k = 0 then 0.0 else Float.max 1.0 (Float.ceil (sel *. float_of_int pages))

(* ⌈log_m N⌉ + ⌈sel·N/m − 1⌉: descend to a leaf, then walk leaves. *)
let index_cost (p : Params.t) ~count ~selected =
  let descend = float_of_int (Combin.ceil_log ~base:p.Params.fanout count) in
  let leaves =
    Float.ceil ((float_of_int selected /. float_of_int p.Params.fanout) -. 1.0)
  in
  descend +. Float.max 0.0 leaves

let expected_pages ~pages ~n ~per_page ~k = Combin.expected_pages ~pages ~n ~per_page ~k

(* Small-link elimination (§4.3.1): at f = 1 every link object holds one
   OID, which is stored directly in the S object instead — propagation then
   reads no link pages. *)
let links_eliminated (p : Params.t) = p.Params.small_link_elim && p.Params.sharing <= 1

let read_with (p : Params.t) (d : Params.derived) strategy clustering =
  let index = index_cost p ~count:d.Params.r_count ~selected:d.Params.read_objects in
  let k = d.Params.read_objects in
  let data_r =
    match clustering with
    | Params.Unclustered ->
        expected_pages ~pages:d.Params.p_r ~n:d.Params.r_count ~per_page:d.Params.o_r ~k
    | Params.Clustered -> seq_pages ~sel:p.Params.read_sel ~pages:d.Params.p_r ~k
  in
  let data_s =
    match strategy with
    | Params.No_replication ->
        (* The functional join: each page of S is referenced by f·O_s
           objects of R, clustered or not. *)
        expected_pages ~pages:d.Params.p_s ~n:d.Params.r_count
          ~per_page:(p.Params.sharing * d.Params.o_s)
          ~k
    | Params.Inplace | Params.Separate -> 0.0
  in
  let data_sprime =
    match strategy with
    | Params.Separate ->
        expected_pages ~pages:d.Params.p_sprime ~n:d.Params.r_count
          ~per_page:(p.Params.sharing * d.Params.o_sprime)
          ~k
    | Params.No_replication | Params.Inplace -> 0.0
  in
  { zero with index; data_r; data_s; data_sprime; output = float_of_int d.Params.p_t }

let update_with (p : Params.t) (d : Params.derived) strategy clustering =
  let index = index_cost p ~count:p.Params.s_count ~selected:d.Params.update_objects in
  let k = d.Params.update_objects in
  (* Read and write back the touched pages of S. *)
  let data_s =
    match clustering with
    | Params.Unclustered ->
        2.0
        *. expected_pages ~pages:d.Params.p_s ~n:p.Params.s_count ~per_page:d.Params.o_s ~k
    | Params.Clustered ->
        2.0 *. seq_pages ~sel:p.Params.update_sel ~pages:d.Params.p_s ~k
  in
  match strategy with
  | Params.No_replication -> { zero with index; data_s }
  | Params.Inplace ->
      (* Read the link objects of the updated S objects, then read and write
         the f·f_s·|S| = f_s·|R| objects of R holding replicated copies. *)
      let links =
        if links_eliminated p then 0.0
        else
          match clustering with
          | Params.Unclustered ->
              expected_pages ~pages:d.Params.p_l ~n:p.Params.s_count
                ~per_page:d.Params.o_l ~k
          | Params.Clustered ->
              seq_pages ~sel:p.Params.update_sel ~pages:d.Params.p_l ~k
      in
      let propagated = int_of_float (Float.round (p.Params.update_sel *. float_of_int d.Params.r_count)) in
      let data_r =
        (* R is relatively unclustered w.r.t. S in both settings, so this
           term is Yao-shaped even with clustered indexes (paper §6.7). *)
        2.0
        *. expected_pages ~pages:d.Params.p_r ~n:d.Params.r_count ~per_page:d.Params.o_r
             ~k:propagated
      in
      { zero with index; data_s; links; data_r }
  | Params.Separate ->
      (* Propagate to S', which mirrors S's order: one object in S' per
         updated object of S. *)
      let data_sprime =
        match clustering with
        | Params.Unclustered ->
            2.0
            *. expected_pages ~pages:d.Params.p_sprime ~n:p.Params.s_count
                 ~per_page:d.Params.o_sprime ~k
        | Params.Clustered ->
            2.0 *. seq_pages ~sel:p.Params.update_sel ~pages:d.Params.p_sprime ~k
      in
      { zero with index; data_s; data_sprime }

let read p strategy clustering = read_with p (Params.derive p strategy) strategy clustering

let update p strategy clustering =
  update_with p (Params.derive p strategy) strategy clustering

type space = { r_pages : int; s_pages : int; aux_pages : int }

let space (p : Params.t) strategy =
  let d = Params.derive p strategy in
  let aux_pages =
    match strategy with
    | Params.No_replication -> 0
    | Params.Inplace -> if links_eliminated p then 0 else d.Params.p_l
    | Params.Separate -> d.Params.p_sprime
  in
  { r_pages = d.Params.p_r; s_pages = d.Params.p_s; aux_pages }

let total p strategy clustering ~update_prob =
  assert (update_prob >= 0.0 && update_prob <= 1.0);
  ((1.0 -. update_prob) *. sum (read p strategy clustering))
  +. (update_prob *. sum (update p strategy clustering))

let percent_vs_no_replication p strategy clustering ~update_prob =
  let base = total p Params.No_replication clustering ~update_prob in
  let mine = total p strategy clustering ~update_prob in
  100.0 *. (mine -. base) /. base
