lib/wal/recovery.mli: Fieldrep_model Fieldrep_storage Wal
