lib/wal/wal.ml: Bytes Char Fieldrep_model Fieldrep_storage Fieldrep_util Fun Int64 List Printf String Sys
