lib/wal/recovery.ml: Fieldrep_model Fieldrep_storage Int64 List Wal
