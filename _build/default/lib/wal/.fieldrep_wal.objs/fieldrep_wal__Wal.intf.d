lib/wal/wal.mli: Fieldrep_model Fieldrep_storage
