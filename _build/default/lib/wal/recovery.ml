type applier = {
  define_type : Fieldrep_model.Ty.t -> unit;
  create_set : name:string -> elem_type:string -> reserve:int -> unit;
  insert : set:string -> Fieldrep_model.Value.t list -> unit;
  update :
    set:string ->
    oid:Fieldrep_storage.Oid.t ->
    field:string ->
    Fieldrep_model.Value.t ->
    unit;
  delete : set:string -> oid:Fieldrep_storage.Oid.t -> unit;
  replicate :
    strategy:Fieldrep_model.Schema.strategy ->
    options:Fieldrep_model.Schema.rep_options ->
    path:string ->
    unit;
  build_index :
    name:string -> set:string -> field:string -> clustered:bool -> unit;
}

let apply a = function
  | Wal.Define_type ty -> a.define_type ty
  | Wal.Create_set { name; elem_type; reserve } ->
      a.create_set ~name ~elem_type ~reserve
  | Wal.Insert { set; values } -> a.insert ~set values
  | Wal.Update { set; oid; field; value } -> a.update ~set ~oid ~field value
  | Wal.Delete { set; oid } -> a.delete ~set ~oid
  | Wal.Replicate { path; strategy; options } ->
      a.replicate ~strategy ~options ~path
  | Wal.Build_index { name; set; field; clustered } ->
      a.build_index ~name ~set ~field ~clustered
  | Wal.Abort _ -> ()  (* already filtered by Wal.records; belt and braces *)

let replay wal ~after applier =
  List.fold_left
    (fun n (lsn, record) ->
      if Int64.compare lsn after > 0 then begin
        apply applier record;
        n + 1
      end
      else n)
    0 (Wal.records wal)
