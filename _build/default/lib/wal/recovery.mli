(** Redo-from-checkpoint recovery.

    Recovery reopens the last checkpoint image (an LSN-stamped [Db.save]
    image) and redoes every log record with a larger LSN {e through the
    normal engine code}: each replayed insert/update/delete re-runs index
    maintenance and replication propagation, so hidden copies, link
    objects, S' objects and B+-trees are rebuilt exactly as the original
    run built them — including re-queuing lazy-propagation invalidations.
    Determinism of the storage layer (physical OIDs, file ids, page
    layout) makes the redo converge on the uncrashed state.

    This module is engine-agnostic: the caller (lib/core's [Db.recover])
    provides an {!applier} of closures over its own DML entry points, which
    keeps the dependency arrow pointing from core to wal. *)

type applier = {
  define_type : Fieldrep_model.Ty.t -> unit;
  create_set : name:string -> elem_type:string -> reserve:int -> unit;
  insert : set:string -> Fieldrep_model.Value.t list -> unit;
  update :
    set:string ->
    oid:Fieldrep_storage.Oid.t ->
    field:string ->
    Fieldrep_model.Value.t ->
    unit;
  delete : set:string -> oid:Fieldrep_storage.Oid.t -> unit;
  replicate :
    strategy:Fieldrep_model.Schema.strategy ->
    options:Fieldrep_model.Schema.rep_options ->
    path:string ->
    unit;
  build_index :
    name:string -> set:string -> field:string -> clustered:bool -> unit;
}

val replay : Wal.t -> after:int64 -> applier -> int
(** Redo, in LSN order, every record of the log (as found when it was
    opened) whose LSN is strictly greater than [after] — the checkpoint's
    LSN stamp.  Returns the number of records redone. *)
