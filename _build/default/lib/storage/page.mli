(** Slotted pages.

    A page is a byte buffer with a 4-byte header, a data area growing up from
    the header, and a slot directory growing down from the end.  Slots give
    records stable in-page identifiers across compaction, which is what makes
    physical OIDs possible.

    Layout:
    {v
      [ n_slots:u16 | free_off:u16 | record data ... free ... directory ]
      directory entry i (4 bytes, at size - 4*(i+1)): [ off:u16 | len:u16 ]
      off = 0xFFFF marks a free directory entry.
    v} *)

type slot = int

val header_size : int
val dir_entry_size : int

val init : Bytes.t -> unit
(** Format a fresh page in place. *)

val slot_count : Bytes.t -> int
(** Number of directory entries (live or free). *)

val live_count : Bytes.t -> int
(** Number of live records. *)

val is_live : Bytes.t -> slot -> bool
(** [is_live page s] is false for free or out-of-range slots. *)

val free_space : Bytes.t -> int
(** Bytes available for a new record, assuming its directory entry must be
    newly allocated and after compaction. *)

val fits : Bytes.t -> int -> bool
(** [fits page len] — would a record of [len] bytes fit (possibly after
    compaction)? *)

val insert : Bytes.t -> Bytes.t -> slot option
(** [insert page data] places a record, compacting if needed.  [None] when it
    cannot fit. *)

val read : Bytes.t -> slot -> Bytes.t
(** Copy of the record bytes.  Raises [Invalid_argument] on a dead slot. *)

val read_length : Bytes.t -> slot -> int

val write : Bytes.t -> slot -> Bytes.t -> bool
(** [write page s data] replaces the record in [s].  Returns [false] when the
    new record cannot fit even after compaction (the old record is then left
    intact). *)

val delete : Bytes.t -> slot -> unit
(** Frees the slot.  Raises [Invalid_argument] on a dead slot. *)

val iter : (slot -> Bytes.t -> unit) -> Bytes.t -> unit
(** Live records in slot order. *)

val fold : ('a -> slot -> Bytes.t -> 'a) -> 'a -> Bytes.t -> 'a

val compact : Bytes.t -> unit
(** Squeeze out holes left by deletes and in-place shrinks.  Slot numbers are
    preserved.  Called automatically by [insert]/[write] when needed. *)
