lib/storage/pager.mli: Bytes Disk Stats
