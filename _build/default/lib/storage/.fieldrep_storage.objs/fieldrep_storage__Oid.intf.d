lib/storage/oid.mli: Bytes Format Stdlib
