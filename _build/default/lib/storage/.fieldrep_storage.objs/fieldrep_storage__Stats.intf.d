lib/storage/stats.mli: Format Hashtbl
