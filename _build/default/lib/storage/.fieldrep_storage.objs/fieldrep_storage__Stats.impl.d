lib/storage/stats.ml: Format Hashtbl Option
