lib/storage/heap_file.ml: Bytes Fieldrep_util List Oid Page Pager Printf
