lib/storage/oid.ml: Fieldrep_util Format Hashtbl Int Int64 Stdlib
