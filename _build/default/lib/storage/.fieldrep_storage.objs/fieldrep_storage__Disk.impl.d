lib/storage/disk.ml: Array Bytes Hashtbl Int List Option Printf Stats
