lib/storage/disk.ml: Array Bytes Hashtbl Int List Printf Stats
