lib/storage/heap_file.mli: Bytes Oid Pager
