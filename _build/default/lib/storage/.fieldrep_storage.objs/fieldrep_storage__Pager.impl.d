lib/storage/pager.ml: Buffer_pool Disk Stats
