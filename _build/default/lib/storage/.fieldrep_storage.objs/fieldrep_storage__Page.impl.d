lib/storage/page.ml: Bytes Int List Printf
