type file = { mutable pages : Bytes.t array; mutable count : int }

type t = {
  page_size : int;
  stats : Stats.t;
  files : (int, file) Hashtbl.t;
  mutable next_file : int;
}

let create ?(page_size = 4096) stats =
  { page_size; stats; files = Hashtbl.create 16; next_file = 0 }

let page_size t = t.page_size
let stats t = t.stats

let create_file t =
  let id = t.next_file in
  t.next_file <- id + 1;
  Hashtbl.replace t.files id { pages = [||]; count = 0 };
  id

let delete_file t id = Hashtbl.remove t.files id
let file_exists t id = Hashtbl.mem t.files id

let find t id =
  match Hashtbl.find_opt t.files id with
  | Some f -> f
  | None -> raise Not_found

let page_count t id = (find t id).count

let allocate_page t id =
  let f = find t id in
  if f.count = Array.length f.pages then begin
    let cap = max 8 (2 * Array.length f.pages) in
    let pages = Array.make cap Bytes.empty in
    Array.blit f.pages 0 pages 0 f.count;
    f.pages <- pages
  end;
  let page_no = f.count in
  f.pages.(page_no) <- Bytes.make t.page_size '\000';
  f.count <- f.count + 1;
  t.stats.pages_allocated <- t.stats.pages_allocated + 1;
  page_no

let check t f page =
  if page < 0 || page >= f.count then
    invalid_arg (Printf.sprintf "Disk: page %d out of range (count %d)" page f.count);
  ignore t

let read_page t ~file ~page buf =
  let f = find t file in
  check t f page;
  assert (Bytes.length buf = t.page_size);
  Bytes.blit f.pages.(page) 0 buf 0 t.page_size;
  t.stats.page_reads <- t.stats.page_reads + 1;
  Stats.record_read t.stats ~file

let write_page t ~file ~page buf =
  let f = find t file in
  check t f page;
  assert (Bytes.length buf = t.page_size);
  Bytes.blit buf 0 f.pages.(page) 0 t.page_size;
  t.stats.page_writes <- t.stats.page_writes + 1;
  Stats.record_write t.stats ~file

let dump_page t ~file ~page =
  let f = find t file in
  check t f page;
  Bytes.copy f.pages.(page)

let restore_file t ~id pages =
  let count = Array.length pages in
  Array.iter (fun p -> assert (Bytes.length p = t.page_size)) pages;
  Hashtbl.replace t.files id { pages = Array.map Bytes.copy pages; count };
  if id >= t.next_file then t.next_file <- id + 1

let total_pages t = Hashtbl.fold (fun _ f acc -> acc + f.count) t.files 0
let file_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.files [] |> List.sort Int.compare
