exception Crash of string

type file = { mutable pages : Bytes.t array; mutable count : int }

type failpoint = { mutable remaining : int; torn : bool }

type t = {
  page_size : int;
  stats : Stats.t;
  files : (int, file) Hashtbl.t;
  mutable next_file : int;
  mutable failpoint : failpoint option;
}

let create ?(page_size = 4096) stats =
  { page_size; stats; files = Hashtbl.create 16; next_file = 0; failpoint = None }

let page_size t = t.page_size
let stats t = t.stats

let create_file t =
  let id = t.next_file in
  t.next_file <- id + 1;
  Hashtbl.replace t.files id { pages = [||]; count = 0 };
  id

let delete_file t id = Hashtbl.remove t.files id
let file_exists t id = Hashtbl.mem t.files id

let find t id =
  match Hashtbl.find_opt t.files id with
  | Some f -> f
  | None -> raise Not_found

let page_count t id = (find t id).count

let allocate_page t id =
  let f = find t id in
  if f.count = Array.length f.pages then begin
    let cap = max 8 (2 * Array.length f.pages) in
    let pages = Array.make cap Bytes.empty in
    Array.blit f.pages 0 pages 0 f.count;
    f.pages <- pages
  end;
  let page_no = f.count in
  f.pages.(page_no) <- Bytes.make t.page_size '\000';
  f.count <- f.count + 1;
  t.stats.pages_allocated <- t.stats.pages_allocated + 1;
  page_no

let check t f page =
  if page < 0 || page >= f.count then
    invalid_arg (Printf.sprintf "Disk: page %d out of range (count %d)" page f.count);
  ignore t

let read_page t ~file ~page buf =
  let f = find t file in
  check t f page;
  assert (Bytes.length buf = t.page_size);
  Bytes.blit f.pages.(page) 0 buf 0 t.page_size;
  t.stats.page_reads <- t.stats.page_reads + 1;
  Stats.record_read t.stats ~file

(* Fault injection: arm with [set_failpoint] and the N+1-th physical write
   raises {!Crash} instead of completing.  In torn mode the first half of
   the buffer lands on the platter before the crash — the classic
   half-written page a real machine can leave behind on power loss. *)
let set_failpoint ?(torn = false) t ~after_writes =
  if after_writes < 0 then invalid_arg "Disk.set_failpoint: negative count";
  t.failpoint <- Some { remaining = after_writes; torn }

let clear_failpoint t = t.failpoint <- None

let writes_until_crash t = Option.map (fun fp -> fp.remaining) t.failpoint

let write_page t ~file ~page buf =
  let f = find t file in
  check t f page;
  assert (Bytes.length buf = t.page_size);
  (match t.failpoint with
  | Some fp when fp.remaining <= 0 ->
      if fp.torn then Bytes.blit buf 0 f.pages.(page) 0 (t.page_size / 2);
      t.failpoint <- None;
      raise
        (Crash
           (Printf.sprintf "injected crash on write to file %d page %d%s" file
              page
              (if fp.torn then " (torn)" else "")))
  | Some fp -> fp.remaining <- fp.remaining - 1
  | None -> ());
  Bytes.blit buf 0 f.pages.(page) 0 t.page_size;
  t.stats.page_writes <- t.stats.page_writes + 1;
  Stats.record_write t.stats ~file

let dump_page t ~file ~page =
  let f = find t file in
  check t f page;
  Bytes.copy f.pages.(page)

let restore_file t ~id pages =
  let count = Array.length pages in
  Array.iter (fun p -> assert (Bytes.length p = t.page_size)) pages;
  Hashtbl.replace t.files id { pages = Array.map Bytes.copy pages; count };
  if id >= t.next_file then t.next_file <- id + 1

let next_file_id t = t.next_file
let reserve_file_ids t n = if n > t.next_file then t.next_file <- n

let total_pages t = Hashtbl.fold (fun _ f acc -> acc + f.count) t.files 0
let file_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.files [] |> List.sort Int.compare
