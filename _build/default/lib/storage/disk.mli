(** Simulated disk.

    Files are growable arrays of fixed-size pages held in memory.  Every
    [read_page]/[write_page] increments the shared {!Stats} counters — this
    is the "hardware" whose I/O the experiments measure.  All access goes
    through the buffer pool in normal operation. *)

type t

exception Crash of string
(** Raised by {!write_page} when an armed failpoint fires: the simulated
    machine lost power mid-workload.  Everything the buffer pool had not
    yet written back is gone; recovery must restart from the last
    checkpoint image and the write-ahead log. *)

val create : ?page_size:int -> Stats.t -> t
(** Default page size is 4096 bytes (EXODUS's page size; the cost model's
    [B = 4056] is this minus per-page bookkeeping). *)

val page_size : t -> int
val stats : t -> Stats.t

val create_file : t -> int
(** Returns a fresh file id. *)

val delete_file : t -> int -> unit
val file_exists : t -> int -> bool

val page_count : t -> int -> int
(** Number of pages in a file.  Raises [Not_found] for unknown files. *)

val allocate_page : t -> int -> int
(** [allocate_page t file] appends a zeroed page and returns its page number.
    Counted in [pages_allocated], not as a read or write. *)

val read_page : t -> file:int -> page:int -> Bytes.t -> unit
(** Copy a page into the caller's buffer (one physical read). *)

val write_page : t -> file:int -> page:int -> Bytes.t -> unit
(** Copy the caller's buffer onto the page (one physical write). *)

val total_pages : t -> int
(** Pages across all files (for space-overhead reporting). *)

val file_ids : t -> int list

val next_file_id : t -> int
(** The id {!create_file} would hand out next.  Checkpoint images record it
    so that replayed DDL allocates the same file ids as the original run
    even when deleted files left holes in the id space. *)

val reserve_file_ids : t -> int -> unit
(** [reserve_file_ids t n] bumps the file-id allocator to at least [n]. *)

(** {1 Fault injection}

    Crash-recovery tests arm a failpoint, run a workload, and catch
    {!Crash} — proving that a crash between any two physical writes is
    recoverable.  The failpoint fires once and disarms itself. *)

val set_failpoint : ?torn:bool -> t -> after_writes:int -> unit
(** Let [after_writes] more physical writes succeed, then raise {!Crash} on
    the next one.  With [torn:true] the first half of the crashing write
    lands on the page before the exception — a half-written (torn) page. *)

val clear_failpoint : t -> unit

val writes_until_crash : t -> int option
(** Remaining successful writes before the armed failpoint fires, if any. *)

(** {1 Image support}

    Raw access used by database save/load; bypasses the I/O counters. *)

val dump_page : t -> file:int -> page:int -> Bytes.t
(** Copy of the raw page, not counted as a read. *)

val restore_file : t -> id:int -> Bytes.t array -> unit
(** (Re)create a file with exactly these pages, not counted as writes.
    Also bumps the internal file-id allocator past [id]. *)
