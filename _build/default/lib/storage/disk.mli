(** Simulated disk.

    Files are growable arrays of fixed-size pages held in memory.  Every
    [read_page]/[write_page] increments the shared {!Stats} counters — this
    is the "hardware" whose I/O the experiments measure.  All access goes
    through the buffer pool in normal operation. *)

type t

val create : ?page_size:int -> Stats.t -> t
(** Default page size is 4096 bytes (EXODUS's page size; the cost model's
    [B = 4056] is this minus per-page bookkeeping). *)

val page_size : t -> int
val stats : t -> Stats.t

val create_file : t -> int
(** Returns a fresh file id. *)

val delete_file : t -> int -> unit
val file_exists : t -> int -> bool

val page_count : t -> int -> int
(** Number of pages in a file.  Raises [Not_found] for unknown files. *)

val allocate_page : t -> int -> int
(** [allocate_page t file] appends a zeroed page and returns its page number.
    Counted in [pages_allocated], not as a read or write. *)

val read_page : t -> file:int -> page:int -> Bytes.t -> unit
(** Copy a page into the caller's buffer (one physical read). *)

val write_page : t -> file:int -> page:int -> Bytes.t -> unit
(** Copy the caller's buffer onto the page (one physical write). *)

val total_pages : t -> int
(** Pages across all files (for space-overhead reporting). *)

val file_ids : t -> int list

(** {1 Image support}

    Raw access used by database save/load; bypasses the I/O counters. *)

val dump_page : t -> file:int -> page:int -> Bytes.t
(** Copy of the raw page, not counted as a read. *)

val restore_file : t -> id:int -> Bytes.t array -> unit
(** (Re)create a file with exactly these pages, not counted as writes.
    Also bumps the internal file-id allocator past [id]. *)
