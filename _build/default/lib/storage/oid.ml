module Wire = Fieldrep_util.Wire

type t = { file : int; page : int; slot : int }

(* Packed layout: file in bits 48-63, page in 16-47, slot in 0-15. *)
let file_bits = 16
let page_bits = 32
let slot_bits = 16
let max_file = (1 lsl file_bits) - 1
let max_page = (1 lsl page_bits) - 1
let max_slot = (1 lsl slot_bits) - 1
let nil = { file = max_file; page = max_page; slot = max_slot }
let is_nil t = t.file = max_file && t.page = max_page && t.slot = max_slot
let equal a b = a.file = b.file && a.page = b.page && a.slot = b.slot

let compare a b =
  match Int.compare a.file b.file with
  | 0 -> (
      match Int.compare a.page b.page with
      | 0 -> Int.compare a.slot b.slot
      | c -> c)
  | c -> c

let to_int64 t =
  assert (t.file >= 0 && t.file <= max_file);
  assert (t.page >= 0 && t.page <= max_page);
  assert (t.slot >= 0 && t.slot <= max_slot);
  Int64.logor
    (Int64.shift_left (Int64.of_int t.file) (page_bits + slot_bits))
    (Int64.logor
       (Int64.shift_left (Int64.of_int t.page) slot_bits)
       (Int64.of_int t.slot))

let of_int64 v =
  let mask bits = (1 lsl bits) - 1 in
  {
    file = Int64.to_int (Int64.shift_right_logical v (page_bits + slot_bits)) land mask file_bits;
    page = Int64.to_int (Int64.shift_right_logical v slot_bits) land mask page_bits;
    slot = Int64.to_int v land mask slot_bits;
  }

let hash t = Hashtbl.hash (to_int64 t)

let pp fmt t =
  if is_nil t then Format.fprintf fmt "<nil>"
  else Format.fprintf fmt "%d.%d.%d" t.file t.page t.slot

let to_string t = Format.asprintf "%a" pp t
let encoded_size = 8
let encode buf off t = Wire.put_i64 buf off (to_int64 t)

let decode buf off =
  let v, off = Wire.get_i64 buf off in
  (of_int64 v, off)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Stdlib.Set.Make (Ord)
module Map = Stdlib.Map.Make (Ord)
module Table = Stdlib.Hashtbl.Make (Hashed)
