type slot = int

let header_size = 4
let dir_entry_size = 4
let free_mark = 0xffff

let size page = Bytes.length page
let get_n_slots page = Bytes.get_uint16_le page 0
let set_n_slots page v = Bytes.set_uint16_le page 0 v
let get_free_off page = Bytes.get_uint16_le page 2
let set_free_off page v = Bytes.set_uint16_le page 2 v
let dir_pos page i = size page - (dir_entry_size * (i + 1))
let get_off page i = Bytes.get_uint16_le page (dir_pos page i)
let get_len page i = Bytes.get_uint16_le page (dir_pos page i + 2)

let set_entry page i ~off ~len =
  Bytes.set_uint16_le page (dir_pos page i) off;
  Bytes.set_uint16_le page (dir_pos page i + 2) len

let init page =
  set_n_slots page 0;
  set_free_off page header_size

let slot_count = get_n_slots

let is_live page s =
  s >= 0 && s < get_n_slots page && get_off page s <> free_mark

let live_count page =
  let n = get_n_slots page in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if get_off page s <> free_mark then incr count
  done;
  !count

(* Contiguous space between the data area and the directory, assuming
   [extra_slots] new directory entries will be appended. *)
let raw_gap page ~extra_slots =
  size page
  - (dir_entry_size * (get_n_slots page + extra_slots))
  - get_free_off page

let used_bytes page =
  let n = get_n_slots page in
  let acc = ref 0 in
  for s = 0 to n - 1 do
    if get_off page s <> free_mark then acc := !acc + get_len page s
  done;
  !acc

let free_slot_available page =
  let n = get_n_slots page in
  let rec find s = if s >= n then None else if get_off page s = free_mark then Some s else find (s + 1) in
  find 0

let free_space page =
  let dir_room =
    match free_slot_available page with
    | Some _ -> 0
    | None -> dir_entry_size
  in
  let capacity = size page - header_size - (dir_entry_size * get_n_slots page) - dir_room in
  capacity - used_bytes page

let fits page len = len <= free_space page

let compact page =
  let n = get_n_slots page in
  let live = ref [] in
  for s = n - 1 downto 0 do
    let off = get_off page s in
    if off <> free_mark then live := (s, off, get_len page s) :: !live
  done;
  let live = List.sort (fun (_, a, _) (_, b, _) -> Int.compare a b) !live in
  let cursor = ref header_size in
  List.iter
    (fun (s, off, len) ->
      if off <> !cursor then begin
        Bytes.blit page off page !cursor len;
        set_entry page s ~off:!cursor ~len
      end;
      cursor := !cursor + len)
    live;
  set_free_off page !cursor

let ensure_gap page ~extra_slots need =
  if raw_gap page ~extra_slots < need then compact page;
  raw_gap page ~extra_slots >= need

let insert page data =
  let len = Bytes.length data in
  if not (fits page len) then None
  else begin
    let slot, extra_slots =
      match free_slot_available page with
      | Some s -> (s, 0)
      | None -> (get_n_slots page, 1)
    in
    let ok = ensure_gap page ~extra_slots len in
    assert ok;
    let off = get_free_off page in
    Bytes.blit data 0 page off len;
    if extra_slots > 0 then set_n_slots page (slot + 1);
    set_entry page slot ~off ~len;
    set_free_off page (off + len);
    Some slot
  end

let check_live page s =
  if not (is_live page s) then
    invalid_arg (Printf.sprintf "Page: dead slot %d" s)

let read page s =
  check_live page s;
  Bytes.sub page (get_off page s) (get_len page s)

let read_length page s =
  check_live page s;
  get_len page s

let delete page s =
  check_live page s;
  set_entry page s ~off:free_mark ~len:0

let write page s data =
  check_live page s;
  let new_len = Bytes.length data in
  let old_off = get_off page s in
  let old_len = get_len page s in
  if new_len <= old_len then begin
    Bytes.blit data 0 page old_off new_len;
    set_entry page s ~off:old_off ~len:new_len;
    true
  end
  else begin
    (* Room check with the old copy logically removed; its directory entry is
       reused so no directory cost. *)
    let available = size page - header_size - (dir_entry_size * get_n_slots page) - (used_bytes page - old_len) in
    if new_len > available then false
    else begin
      set_entry page s ~off:free_mark ~len:0;
      let ok = ensure_gap page ~extra_slots:0 new_len in
      assert ok;
      let off = get_free_off page in
      Bytes.blit data 0 page off new_len;
      set_entry page s ~off ~len:new_len;
      set_free_off page (off + new_len);
      true
    end
  end

let iter f page =
  let n = get_n_slots page in
  for s = 0 to n - 1 do
    if get_off page s <> free_mark then f s (read page s)
  done

let fold f init page =
  let acc = ref init in
  iter (fun s data -> acc := f !acc s data) page;
  !acc
