(** Physical object identifiers.

    As in the EXODUS storage manager, OIDs are physically based: they name
    the file, page and slot where the object lives.  Objects that move leave
    a forwarding stub behind, so an OID stays valid for the object's
    lifetime.  The encoded size is 8 bytes, matching the cost model's
    [sizeof(OID)]. *)

type t = { file : int; page : int; slot : int }

val nil : t
(** A reserved invalid OID (all components [0xffff...]); never allocated. *)

val is_nil : t -> bool
val equal : t -> t -> bool

val compare : t -> t -> int
(** Physical order: file, then page, then slot.  Sorting OIDs in this order
    yields clustered access, which the replication engine relies on when
    propagating updates. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val encoded_size : int
(** 8 bytes. *)

val encode : Bytes.t -> int -> t -> int
val decode : Bytes.t -> int -> t * int

val to_int64 : t -> int64
val of_int64 : int64 -> t

module Set : Stdlib.Set.S with type elt = t
module Map : Stdlib.Map.S with type key = t
module Table : Stdlib.Hashtbl.S with type key = t
