(** Synthetic database generation for the experiments.

    Builds the cost model's two-set schema (paper §6):

    {v define type RTYPE (field_r: int, pad: char[], sref: ref STYPE)
       define type STYPE (field_s: int, repfield: char[], pad: char[]) v}

    with exactly [sharing] R objects per S object, R and S *relatively
    unclustered* (reference assignment shuffled — the paper's key layout
    assumption), B+-tree indexes on [field_r] and [field_s], and optionally
    a replication path on [R.sref.repfield].

    Clustered setting: objects are laid down in key order so the indexes
    are clustered.  Unclustered: key values are a random permutation of the
    insertion order. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Params = Fieldrep_costmodel.Params

type spec = {
  s_count : int;
  sharing : int;  (** f *)
  clustering : Params.clustering;
  strategy : Params.strategy;
  rep_field_bytes : int;  (** k: length of [repfield] strings *)
  r_pad_bytes : int;  (** padding string length in R objects *)
  s_pad_bytes : int;
  page_size : int;
  frames : int;
  seed : int;
  durable : bool;  (** attach a write-ahead log ([Db.create ~durable]) *)
}

val default_spec : spec
(** |S| = 2000, f = 1, unclustered, no replication, k = 20, pads sized so
    R ≈ 100 and S ≈ 200 bytes as in the paper, 4096-byte pages. *)

type built = {
  spec : spec;
  db : Db.t;
  r_keys : int array;  (** key of R object i (R objects hold keys 0..|R|-1) *)
  s_keys : int array;
}

val build : spec -> built
(** Deterministic in [spec.seed]. *)

val r_index : string
(** Name of the index on [R.field_r]. *)

val s_index : string

val measured_params : built -> read_sel:float -> update_sel:float -> Params.t * Params.derived
(** Cost-model parameters derived from the *actual* layout: measured pages
    and objects-per-page for R, S, S', L, the real index fanout, and the
    real output-tuple density.  Feeding these to {!Fieldrep_costmodel.Cost}
    prices the model on the same physical database the measurements run
    against. *)

val employee_db :
  ?norgs:int -> ?ndepts:int -> ?nemps:int -> ?seed:int -> unit -> Db.t
(** The paper's §2 employee database (sets Org, Dept, Emp1), populated with
    deterministic data.  Used by examples and integration tests. *)
