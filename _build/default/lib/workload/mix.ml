module Db = Fieldrep.Db
module Pager = Fieldrep_storage.Pager
module Stats = Fieldrep_storage.Stats
module Value = Fieldrep_model.Value
module Ast = Fieldrep_query.Ast
module Exec = Fieldrep_query.Exec
module Params = Fieldrep_costmodel.Params
module Cost = Fieldrep_costmodel.Cost
module Splitmix = Fieldrep_util.Splitmix

type measurement = {
  read_queries : int;
  update_queries : int;
  avg_read_io : float;
  avg_update_io : float;
}

let cold_io db f =
  Pager.run_cold (Db.pager db) f;
  float_of_int (Stats.total_io (Db.stats db))

let read_query built rng ~read_sel =
  let spec = built.Gen.spec in
  let r_count = spec.Gen.s_count * spec.Gen.sharing in
  let k = max 1 (int_of_float (Float.round (read_sel *. float_of_int r_count))) in
  let lo = Splitmix.int rng (max 1 (r_count - k + 1)) in
  {
    Ast.from_set = "R";
    projections = [ "field_r"; "pad"; "sref.repfield" ];
    where = Some (Ast.between "field_r" (Value.VInt lo) (Value.VInt (lo + k - 1)));
  }

let update_query built rng ~update_sel =
  let spec = built.Gen.spec in
  let k = max 1 (int_of_float (Float.round (update_sel *. float_of_int spec.Gen.s_count))) in
  let lo = Splitmix.int rng (max 1 (spec.Gen.s_count - k + 1)) in
  let stamp = Splitmix.int rng 1_000_000 in
  {
    Ast.target_set = "S";
    assignments =
      [
        ( "repfield",
          Ast.Computed
            (fun oid ->
              Value.VString
                (Printf.sprintf "%0*d" spec.Gen.rep_field_bytes
                   ((stamp + oid.Fieldrep_storage.Oid.slot) mod 1_000_000))) );
      ];
    rwhere = Some (Ast.between "field_s" (Value.VInt lo) (Value.VInt (lo + k - 1)));
  }

let measure built ~read_sel ~update_sel ?(queries = 20) ?(seed = 99) () =
  let db = built.Gen.db in
  let rng = Splitmix.create seed in
  let read_total = ref 0.0 in
  for _ = 1 to queries do
    let q = read_query built rng ~read_sel in
    read_total :=
      !read_total
      +. cold_io db (fun () ->
             let res = Exec.retrieve db q in
             Exec.drop_output db res.Exec.output_file)
  done;
  let update_total = ref 0.0 in
  for _ = 1 to queries do
    let q = update_query built rng ~update_sel in
    update_total := !update_total +. cold_io db (fun () -> ignore (Exec.replace db q))
  done;
  {
    read_queries = queries;
    update_queries = queries;
    avg_read_io = !read_total /. float_of_int queries;
    avg_update_io = !update_total /. float_of_int queries;
  }

let mixed_cost m ~update_prob =
  ((1.0 -. update_prob) *. m.avg_read_io) +. (update_prob *. m.avg_update_io)

type comparison = {
  strategy : Params.strategy;
  clustering : Params.clustering;
  sharing : int;
  measured_read : float;
  model_read : float;
  measured_update : float;
  model_update : float;
}

let validate spec ~read_sel ~update_sel ?(queries = 20) () =
  let built = Gen.build spec in
  let m = measure built ~read_sel ~update_sel ~queries () in
  let params, derived = Gen.measured_params built ~read_sel ~update_sel in
  let strategy = spec.Gen.strategy in
  let clustering = spec.Gen.clustering in
  {
    strategy;
    clustering;
    sharing = spec.Gen.sharing;
    measured_read = m.avg_read_io;
    model_read = Cost.sum (Cost.read_with params derived strategy clustering);
    measured_update = m.avg_update_io;
    model_update = Cost.sum (Cost.update_with params derived strategy clustering);
  }
