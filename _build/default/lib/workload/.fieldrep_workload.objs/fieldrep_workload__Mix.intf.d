lib/workload/mix.mli: Fieldrep_costmodel Gen
