lib/workload/mix.ml: Fieldrep Fieldrep_costmodel Fieldrep_model Fieldrep_query Fieldrep_storage Fieldrep_util Float Gen Printf
