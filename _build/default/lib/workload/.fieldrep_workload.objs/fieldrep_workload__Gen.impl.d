lib/workload/gen.ml: Array Char Fieldrep Fieldrep_costmodel Fieldrep_model Fieldrep_query Fieldrep_replication Fieldrep_storage Fieldrep_util Float List Printf String
