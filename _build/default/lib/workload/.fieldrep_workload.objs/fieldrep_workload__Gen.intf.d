lib/workload/gen.mli: Fieldrep Fieldrep_costmodel Fieldrep_storage
