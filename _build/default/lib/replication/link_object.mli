(** Link objects: the building blocks of inverted paths (paper §4.1).

    A link object belongs to one target object X and one link, and holds the
    sorted OIDs of the objects one level closer to the source set that
    reference X along the path.  Sorted order gives binary-search deletes
    and, because OIDs are physical, clustered-order propagation.

    Entries may carry a *tag* OID: collapsed inverted paths (paper §4.3.3)
    tag each source OID with the intermediate object it came through, so a
    reference update on the intermediate can move exactly its entries. *)

type entry = { member : Fieldrep_storage.Oid.t; tag : Fieldrep_storage.Oid.t }
(** [tag] is {!Fieldrep_storage.Oid.nil} for untagged links. *)

type t

val empty : t
val of_entries : entry list -> t
(** Sorts and de-duplicates by member. *)

val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> Fieldrep_storage.Oid.t -> bool

val add : t -> entry -> t
(** Inserts keeping order; replaces the tag if the member is present. *)

val remove : t -> Fieldrep_storage.Oid.t -> t
(** No-op if absent. *)

val entries : t -> entry list
(** In member (physical) order. *)

val members : t -> Fieldrep_storage.Oid.t list

val entries_tagged : t -> Fieldrep_storage.Oid.t -> entry list
(** Entries whose tag equals the given OID (collapsed-path moves). *)

val remove_tagged : t -> Fieldrep_storage.Oid.t -> t

val iter : (entry -> unit) -> t -> unit
val encode : t -> Bytes.t
val decode : Bytes.t -> t
val pp : Format.formatter -> t -> unit
