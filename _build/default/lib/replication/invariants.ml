module Oid = Fieldrep_storage.Oid
module Heap_file = Fieldrep_storage.Heap_file
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record

type expected = {
  (* (link_id, target oid) -> expected entries, keyed by member. *)
  memberships : (int * Oid.t, (Oid.t, Oid.t) Hashtbl.t) Hashtbl.t;
  (* source oid -> (rep_id, absolute value index, expected hidden value);
     separate srefs are checked structurally instead. *)
  hidden : (Oid.t, (int * int * Value.t) list ref) Hashtbl.t;
  (* (rep_id, source oid) -> final oid, for separate paths. *)
  sep_final : (int * Oid.t, Oid.t option) Hashtbl.t;
}

let value_or_null (record : Record.t) idx =
  if idx < Array.length record.Record.values then record.Record.values.(idx)
  else Value.VNull

let membership_key tbl link_id target =
  match Hashtbl.find_opt tbl.memberships (link_id, target) with
  | Some t -> t
  | None ->
      let t = Hashtbl.create 8 in
      Hashtbl.replace tbl.memberships (link_id, target) t;
      t

let hidden_slot tbl source =
  match Hashtbl.find_opt tbl.hidden source with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace tbl.hidden source r;
      r

(* Recompute every expected structure by scanning the source sets. *)
let compute_expected (env : Engine.env) =
  let schema = env.Engine.schema in
  let registry = env.Engine.registry in
  let exp =
    {
      memberships = Hashtbl.create 64;
      hidden = Hashtbl.create 64;
      sep_final = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (rep : Schema.replication) ->
      let set = rep.Schema.rpath.Path.source_set in
      let nodes = Registry.chain registry rep in
      let _, term = Registry.terminal_of registry rep in
      let src_file = env.Engine.file_of_set set in
      Heap_file.iter src_file (fun source_oid bytes ->
          let source_rec = Record.decode bytes in
          (* Forward walk. *)
          let rec walk current_rec acc = function
            | [] -> List.rev acc
            | (node : Registry.node) :: rest -> (
                let idx =
                  Ty.field_index
                    (Schema.find_type schema node.Registry.from_type)
                    node.Registry.step
                in
                match value_or_null current_rec idx with
                | Value.VRef oid ->
                    let r =
                      Record.decode (Heap_file.read (env.Engine.file_of_oid oid) oid)
                    in
                    walk r ((node, oid, r) :: acc) rest
                | Value.VNull | Value.VInt _ | Value.VString _ -> List.rev acc)
          in
          let targets = walk source_rec [] nodes in
          let complete = List.length targets = List.length nodes in
          let final =
            if complete then
              match List.rev targets with t :: _ -> Some t | [] -> None
            else None
          in
          (* Memberships. *)
          (match term.Registry.kind with
          | Registry.K_collapsed cid -> (
              match (final, targets) with
              | Some (_, final_oid, _), (_, x1, _) :: _ ->
                  Hashtbl.replace (membership_key exp cid final_oid) source_oid x1
              | _, _ -> ())
          | Registry.K_inplace | Registry.K_separate _ ->
              ignore
                (List.fold_left
                   (fun member (node, x_oid, _) ->
                     (match node.Registry.link_id with
                     | Some link_id ->
                         Hashtbl.replace
                           (membership_key exp link_id x_oid)
                           member Oid.nil
                     | None -> ());
                     x_oid)
                   source_oid targets));
          (* Hidden expectations. *)
          match term.Registry.kind with
          | Registry.K_inplace | Registry.K_collapsed _ ->
              let final_ty =
                Schema.find_type schema
                  (List.nth nodes (List.length nodes - 1)).Registry.to_type
              in
              List.iter
                (fun (fname, _) ->
                  let idx =
                    Schema.hidden_index schema set ~rep_id:rep.Schema.rep_id
                      ~field:(Some fname)
                  in
                  let v =
                    match final with
                    | Some (_, _, final_rec) ->
                        value_or_null final_rec (Ty.field_index final_ty fname)
                    | None -> Value.VNull
                  in
                  let slot = hidden_slot exp source_oid in
                  slot := (rep.Schema.rep_id, idx, v) :: !slot)
                term.Registry.fields
          | Registry.K_separate _ ->
              Hashtbl.replace exp.sep_final
                (rep.Schema.rep_id, source_oid)
                (Option.map (fun (_, oid, _) -> oid) final)))
    (Schema.replications schema);
  exp

let errors (env : Engine.env) =
  let schema = env.Engine.schema in
  let registry = env.Engine.registry in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let exp = compute_expected env in
  (* Pass 1: every data object's link pairs and hidden fields are exactly as
     expected. *)
  let seen_memberships = Hashtbl.create 64 in
  let referenced_link_oids = Hashtbl.create 64 in
  List.iter
    (fun (set_name, _) ->
      let hf = env.Engine.file_of_set set_name in
      Heap_file.iter hf (fun oid bytes ->
          let record = Record.decode bytes in
          (* Hidden copies. *)
          (match Hashtbl.find_opt exp.hidden oid with
          | Some slot ->
              List.iter
                (fun (rep_id, idx, v) ->
                  (* Invalidated sources are legitimately stale under lazy
                     propagation. *)
                  if not (Hashtbl.mem env.Engine.pending (rep_id, Oid.to_int64 oid))
                  then begin
                    let actual = value_or_null record idx in
                    if not (Value.equal actual v) then
                      err "object %s: hidden slot %d is %s, expected %s"
                        (Oid.to_string oid) idx (Value.to_string actual)
                        (Value.to_string v)
                  end)
                !slot
          | None -> ());
          (* Link pairs. *)
          List.iter
            (fun (pair : Record.link) ->
              let link_id = pair.Record.link_id in
              match Registry.link_kind registry link_id with
              | None -> err "object %s: unknown link id %d" (Oid.to_string oid) link_id
              | Some (Registry.L_sref _) ->
                  (* Checked in the S' pass. *)
                  ()
              | Some (Registry.L_path _ | Registry.L_collapsed _) -> (
                  Hashtbl.replace seen_memberships (link_id, oid) ();
                  let actual =
                    if Store.is_link_oid env.Engine.store pair.Record.link_oid then begin
                      Hashtbl.replace referenced_link_oids pair.Record.link_oid ();
                      Link_object.entries
                        (Link_object.decode
                           (Heap_file.read
                              (Store.link_file env.Engine.store link_id)
                              pair.Record.link_oid))
                    end
                    else
                      [ { Link_object.member = pair.Record.link_oid; tag = Oid.nil } ]
                  in
                  if actual = [] then
                    err "object %s: empty membership stored for link %d"
                      (Oid.to_string oid) link_id;
                  match Hashtbl.find_opt exp.memberships (link_id, oid) with
                  | None ->
                      err "object %s: unexpected membership for link %d"
                        (Oid.to_string oid) link_id
                  | Some expected_tbl ->
                      List.iter
                        (fun (e : Link_object.entry) ->
                          match Hashtbl.find_opt expected_tbl e.Link_object.member with
                          | None ->
                              err "link %d of %s: stray member %s" link_id
                                (Oid.to_string oid)
                                (Oid.to_string e.Link_object.member)
                          | Some expected_tag ->
                              if
                                (not (Oid.is_nil e.Link_object.tag))
                                && not (Oid.equal e.Link_object.tag expected_tag)
                              then
                                err "link %d of %s: member %s tagged %s, expected %s"
                                  link_id (Oid.to_string oid)
                                  (Oid.to_string e.Link_object.member)
                                  (Oid.to_string e.Link_object.tag)
                                  (Oid.to_string expected_tag))
                        actual;
                      if Hashtbl.length expected_tbl <> List.length actual then
                        err "link %d of %s: %d members stored, %d expected" link_id
                          (Oid.to_string oid) (List.length actual)
                          (Hashtbl.length expected_tbl)))
            record.Record.links))
    (Schema.sets schema);
  (* Pass 2: every expected membership was seen. *)
  Hashtbl.iter
    (fun (link_id, target) tbl ->
      if Hashtbl.length tbl > 0 && not (Hashtbl.mem seen_memberships (link_id, target))
      then
        err "link %d: target %s should hold %d members but has none" link_id
          (Oid.to_string target) (Hashtbl.length tbl))
    exp.memberships;
  (* Pass 3: no orphan link objects. *)
  List.iter
    (fun (node : Registry.node) ->
      let ids =
        (match node.Registry.link_id with Some id -> [ id ] | None -> [])
        @ List.filter_map
            (fun (t : Registry.terminal) ->
              match t.Registry.kind with
              | Registry.K_collapsed id -> Some id
              | Registry.K_inplace | Registry.K_separate _ -> None)
            node.Registry.terminals
      in
      List.iter
        (fun id ->
          match Store.link_file_opt env.Engine.store id with
          | None -> ()
          | Some hf ->
              Heap_file.iter_oids hf (fun loid ->
                  if not (Hashtbl.mem referenced_link_oids loid) then
                    err "link %d: orphan link object %s" id (Oid.to_string loid)))
        ids)
    (Registry.nodes registry);
  (* Pass 4: S' objects — srefs resolve, values match, refcounts add up. *)
  List.iter
    (fun (rep : Schema.replication) ->
      match rep.Schema.strategy with
      | Schema.Inplace -> ()
      | Schema.Separate -> (
          let set = rep.Schema.rpath.Path.source_set in
          let nodes = Registry.chain registry rep in
          let _, term = Registry.terminal_of registry rep in
          let sref_link =
            match term.Registry.kind with
            | Registry.K_separate id -> id
            | Registry.K_inplace | Registry.K_collapsed _ -> assert false
          in
          let idx = Schema.hidden_index schema set ~rep_id:rep.Schema.rep_id ~field:None in
          let src_file = env.Engine.file_of_set set in
          let claim_counts = Oid.Table.create 32 in
          Heap_file.iter src_file (fun source_oid bytes ->
              let record = Record.decode bytes in
              let expected_final =
                Option.join (Hashtbl.find_opt exp.sep_final (rep.Schema.rep_id, source_oid))
              in
              match (value_or_null record idx, expected_final) with
              | Value.VNull, None -> ()
              | Value.VNull, Some f ->
                  err "separate %s: source %s should reference S' of %s"
                    (Path.to_string rep.Schema.rpath) (Oid.to_string source_oid)
                    (Oid.to_string f)
              | Value.VRef sp, None ->
                  err "separate %s: source %s holds stale S' %s"
                    (Path.to_string rep.Schema.rpath) (Oid.to_string source_oid)
                    (Oid.to_string sp)
              | Value.VRef sp, Some final_oid ->
                  Oid.Table.replace claim_counts sp
                    (1 + Option.value ~default:0 (Oid.Table.find_opt claim_counts sp));
                  let sp_rec =
                    Record.decode
                      (Heap_file.read (Store.sprime_file env.Engine.store rep.Schema.rep_id) sp)
                  in
                  let owner = Value.as_ref (Record.field sp_rec 1) in
                  if not (Oid.equal owner final_oid) then
                    err "separate %s: S' %s owned by %s, source %s expects %s"
                      (Path.to_string rep.Schema.rpath) (Oid.to_string sp)
                      (Oid.to_string owner) (Oid.to_string source_oid)
                      (Oid.to_string final_oid);
                  (* Replicated values match the final object's current state. *)
                  let final_ty =
                    Schema.find_type schema
                      (List.nth nodes (List.length nodes - 1)).Registry.to_type
                  in
                  let final_rec =
                    Record.decode
                      (Heap_file.read (env.Engine.file_of_oid final_oid) final_oid)
                  in
                  List.iteri
                    (fun i (fname, _) ->
                      let expected =
                        value_or_null final_rec (Ty.field_index final_ty fname)
                      in
                      let actual = Record.field sp_rec (Engine.sprime_field_offset + i) in
                      if not (Value.equal actual expected) then
                        err "separate %s: S' %s field %s is %s, final has %s"
                          (Path.to_string rep.Schema.rpath) (Oid.to_string sp) fname
                          (Value.to_string actual) (Value.to_string expected))
                    term.Registry.fields
              | (Value.VInt _ | Value.VString _), _ ->
                  err "separate %s: source %s hidden slot holds a non-reference"
                    (Path.to_string rep.Schema.rpath) (Oid.to_string source_oid));
          (* Refcounts and sref pairs. *)
          match Store.sprime_file_opt env.Engine.store rep.Schema.rep_id with
          | None -> ()
          | Some hf ->
              Heap_file.iter hf (fun sp bytes ->
                  let sp_rec = Record.decode bytes in
                  let count = Value.as_int (Record.field sp_rec 0) in
                  let claimed = Option.value ~default:0 (Oid.Table.find_opt claim_counts sp) in
                  if count <> claimed then
                    err "separate %s: S' %s refcount %d but %d sources claim it"
                      (Path.to_string rep.Schema.rpath) (Oid.to_string sp) count claimed;
                  if count = 0 then
                    err "separate %s: S' %s has refcount 0 but still exists"
                      (Path.to_string rep.Schema.rpath) (Oid.to_string sp);
                  let owner = Value.as_ref (Record.field sp_rec 1) in
                  let owner_rec =
                    Record.decode (Heap_file.read (env.Engine.file_of_oid owner) owner)
                  in
                  match Record.find_link owner_rec sref_link with
                  | Some pair when Oid.equal pair.Record.link_oid sp -> ()
                  | Some _ ->
                      err "separate %s: owner %s sref pair points elsewhere"
                        (Path.to_string rep.Schema.rpath) (Oid.to_string owner)
                  | None ->
                      err "separate %s: owner %s is missing its sref pair"
                        (Path.to_string rep.Schema.rpath) (Oid.to_string owner))))
    (Schema.replications schema);
  List.rev !errs

let check env =
  match errors env with
  | [] -> ()
  | e :: rest ->
      failwith
        (Printf.sprintf "replication invariants violated (%d total): %s"
           (List.length rest + 1) e)

let check_all = check
