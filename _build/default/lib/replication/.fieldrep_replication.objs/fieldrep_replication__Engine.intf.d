lib/replication/engine.mli: Fieldrep_model Fieldrep_storage Hashtbl Registry Store
