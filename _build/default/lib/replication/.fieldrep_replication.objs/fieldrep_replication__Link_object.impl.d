lib/replication/link_object.ml: Array Bytes Fieldrep_storage Fieldrep_util Format List
