lib/replication/invariants.ml: Array Engine Fieldrep_model Fieldrep_storage Hashtbl Link_object List Option Printf Registry Store
