lib/replication/store.ml: Fieldrep_storage Hashtbl List
