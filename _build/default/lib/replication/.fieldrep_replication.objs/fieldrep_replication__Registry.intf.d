lib/replication/registry.mli: Fieldrep_model
