lib/replication/link_object.mli: Bytes Fieldrep_storage Format
