lib/replication/invariants.mli: Engine
