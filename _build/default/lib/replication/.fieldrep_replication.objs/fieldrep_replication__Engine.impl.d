lib/replication/engine.ml: Array Fieldrep_model Fieldrep_storage Hashtbl Link_object List Option Printf Registry Store
