lib/replication/registry.ml: Array Fieldrep_model Hashtbl List Option Printf
