lib/replication/store.mli: Fieldrep_storage
