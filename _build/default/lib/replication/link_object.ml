module Wire = Fieldrep_util.Wire
module Oid = Fieldrep_storage.Oid

type entry = { member : Oid.t; tag : Oid.t }

(* Kept as a sorted array for O(log n) membership and cheap encoding. *)
type t = entry array

let empty = [||]

let compare_entry a b = Oid.compare a.member b.member

let of_entries l =
  let arr = Array.of_list l in
  Array.sort compare_entry arr;
  (* De-duplicate by member, keeping the last tag. *)
  let n = Array.length arr in
  if n <= 1 then arr
  else begin
    let out = ref [] in
    for i = n - 1 downto 0 do
      match !out with
      | last :: _ when Oid.equal last.member arr.(i).member -> ()
      | _ -> out := arr.(i) :: !out
    done;
    Array.of_list !out
  end

let cardinal = Array.length
let is_empty t = Array.length t = 0

let find_index t member =
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Oid.compare t.(mid).member member < 0 then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  bsearch 0 (Array.length t)

let mem t member =
  let i = find_index t member in
  i < Array.length t && Oid.equal t.(i).member member

let add t entry =
  let i = find_index t entry.member in
  if i < Array.length t && Oid.equal t.(i).member entry.member then begin
    let out = Array.copy t in
    out.(i) <- entry;
    out
  end
  else begin
    let n = Array.length t in
    Array.init (n + 1) (fun j ->
        if j < i then t.(j) else if j = i then entry else t.(j - 1))
  end

let remove t member =
  let i = find_index t member in
  if i < Array.length t && Oid.equal t.(i).member member then
    Array.init (Array.length t - 1) (fun j -> if j < i then t.(j) else t.(j + 1))
  else t

let entries t = Array.to_list t
let members t = Array.to_list (Array.map (fun e -> e.member) t)

let entries_tagged t tag =
  Array.to_list t |> List.filter (fun e -> Oid.equal e.tag tag)

let remove_tagged t tag =
  Array.of_list (Array.to_list t |> List.filter (fun e -> not (Oid.equal e.tag tag)))

let iter f t = Array.iter f t

(* Layout: [count:u16][tagged:u8][member (+tag)...].  The tagged flag is set
   when any entry carries a tag, so untagged links cost 8 bytes per OID as in
   the cost model's l = 1 + sizeof(type-tag) + f*sizeof(OID). *)
let encode t =
  let tagged = Array.exists (fun e -> not (Oid.is_nil e.tag)) t in
  let size =
    2 + 1 + (Array.length t * (Oid.encoded_size * if tagged then 2 else 1))
  in
  let buf = Bytes.create size in
  let off = Wire.put_u16 buf 0 (Array.length t) in
  let off = Wire.put_u8 buf off (if tagged then 1 else 0) in
  let off =
    Array.fold_left
      (fun off e ->
        let off = Oid.encode buf off e.member in
        if tagged then Oid.encode buf off e.tag else off)
      off t
  in
  assert (off = size);
  buf

let decode buf =
  let n, off = Wire.get_u16 buf 0 in
  let tagged, off = Wire.get_u8 buf off in
  let cursor = ref off in
  Array.init n (fun _ ->
      let member, off = Oid.decode buf !cursor in
      let tag, off =
        if tagged = 1 then Oid.decode buf off else (Oid.nil, off)
      in
      cursor := off;
      { member; tag })

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
       (fun fmt e ->
         if Oid.is_nil e.tag then Oid.pp fmt e.member
         else Format.fprintf fmt "%a^%a" Oid.pp e.member Oid.pp e.tag))
    (entries t)
