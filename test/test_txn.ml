(* Transactions: strict two-phase locking, undo, deadlock detection —
   and the two acceptance tests of the transaction subsystem:

   - the randomized interleaved-client run is equivalent to the serial
     execution of its committed transactions in commit order, for all
     three replication strategies;
   - a crash in the middle of a multi-client run recovers to exactly the
     state produced by the transactions that committed before it. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Disk = Fieldrep_storage.Disk
module Pager = Fieldrep_storage.Pager
module Wal = Fieldrep_wal.Wal
module Value = Fieldrep_model.Value
module Key = Fieldrep_btree.Key
module Params = Fieldrep_costmodel.Params
module Lock = Fieldrep_txn.Lock
module Txn = Fieldrep_txn.Txn
module Gen = Fieldrep_workload.Gen
module Multi = Fieldrep_workload.Multi

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checksl = Alcotest.(check (list string))
let value_testable = Alcotest.testable Value.pp Value.equal
let checkv = Alcotest.check value_testable

let tmp name ext =
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) ("fieldrep_txn_" ^ name ^ ext)
  in
  if Sys.file_exists path then Sys.remove path;
  path

let small_spec ?(frames = 64) ?(durable = false) strategy seed =
  {
    Gen.default_spec with
    Gen.s_count = 20;
    sharing = 3;
    strategy;
    page_size = 1024;
    frames;
    seed;
    durable;
  }

(* Resolve a generation key to its OID by scanning (keys are immutable
   identifiers of the generated objects; OIDs are run-specific). *)
let oid_of db ~set ~field key =
  let found = ref None in
  Db.scan db ~set (fun oid record ->
      match Db.field_value db ~set record field with
      | Value.VInt k when k = key -> found := Some oid
      | _ -> ());
  match !found with
  | Some oid -> oid
  | None -> Alcotest.failf "no %s object with %s = %d" set field key

let r_of db key = oid_of db ~set:"R" ~field:"field_r" key
let s_of db key = oid_of db ~set:"S" ~field:"field_s" key

let sref_of db r =
  match Db.field_value db ~set:"R" (Db.get db ~set:"R" r) "sref" with
  | Value.VRef s -> s
  | v -> Alcotest.failf "sref is not a reference: %s" (Value.to_string v)

(* ------------------------------------------------------------------ *)
(* Lock manager units                                                  *)

let test_lock_compat () =
  let l = Lock.create () in
  let t = Lock.Set "T" in
  Lock.acquire l ~txn:1 t Lock.IS;
  Lock.acquire l ~txn:2 t Lock.IX;
  (* already covered: re-acquiring a weaker mode is a no-op *)
  Lock.acquire l ~txn:2 t Lock.IS;
  checkb "IX retained" true (Lock.holds l ~txn:2 t Lock.IX);
  (match Lock.acquire l ~txn:3 t Lock.X with
  | () -> Alcotest.fail "X should block on IS+IX holders"
  | exception Lock.Would_block { txn; holders } ->
      checki "blocked txn is the requester" 3 txn;
      checki "both holders reported" 2 (List.length holders));
  Lock.release_all l ~txn:1;
  Lock.release_all l ~txn:2;
  Lock.acquire l ~txn:3 t Lock.X;
  checkb "X granted once holders release" true (Lock.holds l ~txn:3 t Lock.X);
  Lock.release_all l ~txn:3;
  checki "lock table drained" 0 (Lock.active_locks l)

let test_lock_upgrade () =
  let l = Lock.create () in
  let t = Lock.Set "T" in
  Lock.acquire l ~txn:1 t Lock.S;
  Lock.acquire l ~txn:1 t Lock.X;
  checkb "sole reader upgrades in place" true (Lock.holds l ~txn:1 t Lock.X);
  Lock.release_all l ~txn:1;
  Lock.acquire l ~txn:1 t Lock.S;
  Lock.acquire l ~txn:2 t Lock.S;
  match Lock.acquire l ~txn:1 t Lock.X with
  | () -> Alcotest.fail "upgrade should block on the second reader"
  | exception Lock.Would_block { holders; _ } ->
      checki "blocked only by the other reader" 1 (List.length holders);
      checki "the other reader" 2 (List.hd holders)

let test_lock_deadlock () =
  let stats = Stats.create () in
  let l = Lock.create ~stats () in
  let a = Lock.Set "A" and b = Lock.Set "B" in
  Lock.acquire l ~txn:1 a Lock.X;
  Lock.acquire l ~txn:2 b Lock.X;
  (try
     Lock.acquire l ~txn:1 b Lock.X;
     Alcotest.fail "t1 should block on t2"
   with Lock.Would_block _ -> ());
  (match Lock.acquire l ~txn:2 a Lock.X with
  | () -> Alcotest.fail "t2 closing the cycle should deadlock"
  | exception Lock.Deadlock { victim; cycle } ->
      checki "the requester is the victim" 2 victim;
      checkb "cycle names both parties" true (List.mem 1 cycle && List.mem 2 cycle));
  checki "deadlock counted" 1 stats.Stats.deadlocks;
  checki "both waits counted" 2 stats.Stats.lock_waits;
  (* the victim aborts; the survivor's blocked request now succeeds *)
  Lock.release_all l ~txn:2;
  Lock.acquire l ~txn:1 b Lock.X;
  checkb "survivor proceeds" true (Lock.holds l ~txn:1 b Lock.X)

(* ------------------------------------------------------------------ *)
(* Commit / abort semantics through Db                                 *)

let test_commit_applies () =
  let built = Gen.build (small_spec Params.Inplace 3) in
  let db = built.Gen.db in
  let r0 = r_of db 0 and s0 = s_of db 0 in
  let tx = Db.begin_txn db in
  checki "one active txn" 1 (Db.active_txn_count db);
  Db.update_field ~txn:tx db ~set:"S" s0 ~field:"repfield"
    (Value.VString "committed");
  Db.update_field ~txn:tx db ~set:"R" r0 ~field:"field_r" (Value.VInt 4242);
  let fresh =
    Db.insert ~txn:tx db ~set:"R"
      [ Value.VInt 777; Value.VString "new"; Value.VRef s0 ]
  in
  Db.commit db tx;
  checki "no active txn after commit" 0 (Db.active_txn_count db);
  checki "commit counted" 1 (Db.stats db).Stats.txn_commits;
  checki "all locks released" 0 (Lock.active_locks (Db.lock_manager db));
  checkv "scalar update durable" (Value.VString "committed")
    (Db.field_value db ~set:"S" (Db.get db ~set:"S" s0) "repfield");
  checkv "indexed field updated" (Value.VInt 4242)
    (Db.field_value db ~set:"R" (Db.get db ~set:"R" r0) "field_r");
  checki "index follows the update" 1
    (List.length (Db.index_lookup db ~index:Gen.r_index (Key.Int 4242)));
  checkv "insert visible through the replicated path" (Value.VString "committed")
    (Db.deref db ~set:"R" fresh "sref.repfield");
  Db.check_integrity db

let abort_restores strategy () =
  let built = Gen.build (small_spec strategy 7) in
  let db = built.Gen.db in
  let before = Multi.observe db in
  let r0 = r_of db 0 and r1 = r_of db 1 and r2 = r_of db 2 in
  let s0 = s_of db 0 and s1 = s_of db 1 in
  let retarget = if Oid.equal (sref_of db r1) s0 then s1 else s0 in
  let tx = Db.begin_txn db in
  Db.update_field ~txn:tx db ~set:"S" s0 ~field:"repfield"
    (Value.VString "doomed");
  Db.update_field ~txn:tx db ~set:"R" r0 ~field:"field_r" (Value.VInt 999_999);
  Db.update_field ~txn:tx db ~set:"R" r1 ~field:"sref" (Value.VRef retarget);
  let fresh =
    Db.insert ~txn:tx db ~set:"R"
      [ Value.VInt 888; Value.VString "x"; Value.VRef s1 ]
  in
  Db.delete ~txn:tx db ~set:"R" r2;
  (* the deleted slot is pinned until the transaction resolves: a later
     insert cannot recycle the OID *)
  let fresh2 =
    Db.insert ~txn:tx db ~set:"R"
      [ Value.VInt 889; Value.VString "y"; Value.VRef s1 ]
  in
  checkb "tombstone pins the slot" true (not (Oid.equal fresh2 r2));
  ignore fresh;
  let snap = Stats.copy (Db.stats db) in
  Db.abort db tx;
  let d = Stats.diff (Db.stats db) snap in
  checki "abort counted" 1 d.Stats.txn_aborts;
  checkb "before-images restored" true (d.Stats.undo_applied >= 4);
  checki "no active txn after abort" 0 (Db.active_txn_count db);
  checki "all locks released" 0 (Lock.active_locks (Db.lock_manager db));
  checksl "logical state restored exactly" before (Multi.observe db);
  checkb "revived object keeps its original OID" true
    (Oid.equal (r_of db 2) r2);
  checki "index entry for the old key restored" 1
    (List.length (Db.index_lookup db ~index:Gen.r_index (Key.Int 0)));
  checki "index entry for the aborted update gone" 0
    (List.length (Db.index_lookup db ~index:Gen.r_index (Key.Int 999_999)));
  Db.check_integrity db

let test_isolation_blocks () =
  let built = Gen.build (small_spec Params.Inplace 9) in
  let db = built.Gen.db in
  let s0 = s_of db 0 in
  (* a source reaching s0 (its hidden copy is part of the write's fan-out)
     and a bystander reaching some other S object *)
  let src = ref None and other = ref None in
  Db.scan db ~set:"R" (fun oid _ ->
      if Oid.equal (sref_of db oid) s0 then begin
        if !src = None then src := Some oid
      end
      else if !other = None then other := Some oid);
  let src = Option.get !src and other = Option.get !other in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.update_field ~txn:t1 db ~set:"S" s0 ~field:"repfield"
    (Value.VString "uncommitted");
  (try
     ignore (Db.get ~txn:t2 db ~set:"S" s0);
     Alcotest.fail "reading an uncommitted write should block"
   with Lock.Would_block _ -> ());
  (try
     ignore (Db.deref ~txn:t2 db ~set:"R" src "sref.repfield");
     Alcotest.fail "reading an uncommitted hidden copy should block"
   with Lock.Would_block _ -> ());
  (* readers do not block readers *)
  ignore (Db.get ~txn:t2 db ~set:"R" other);
  ignore (Db.get ~txn:t1 db ~set:"R" other);
  checkb "waits were counted" true ((Db.stats db).Stats.lock_waits >= 2);
  Db.commit db t1;
  checkv "committed value now readable" (Value.VString "uncommitted")
    (Db.field_value db ~set:"S" (Db.get ~txn:t2 db ~set:"S" s0) "repfield");
  Db.commit db t2;
  checki "all locks released" 0 (Lock.active_locks (Db.lock_manager db))

let test_db_deadlock () =
  let built = Gen.build (small_spec Params.No_replication 11) in
  let db = built.Gen.db in
  let ra = r_of db 0 and rb = r_of db 1 in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  Db.update_field ~txn:t1 db ~set:"R" ra ~field:"field_r" (Value.VInt 100_000);
  Db.update_field ~txn:t2 db ~set:"R" rb ~field:"field_r" (Value.VInt 100_001);
  (try
     Db.update_field ~txn:t1 db ~set:"R" rb ~field:"field_r"
       (Value.VInt 100_002);
     Alcotest.fail "t1 should block on t2"
   with Lock.Would_block _ -> ());
  (match
     Db.update_field ~txn:t2 db ~set:"R" ra ~field:"field_r"
       (Value.VInt 100_003)
   with
  | () -> Alcotest.fail "t2 closing the cycle should deadlock"
  | exception Lock.Deadlock { victim; _ } ->
      checki "the requester is chosen as victim" (Txn.id t2) victim);
  checki "deadlock counted" 1 (Db.stats db).Stats.deadlocks;
  Db.abort db t2;
  (* the survivor's blocked update now goes through; strict 2PL made the
     victim's update vanish without a trace *)
  Db.update_field ~txn:t1 db ~set:"R" rb ~field:"field_r" (Value.VInt 100_002);
  Db.commit db t1;
  checkv "survivor's writes stand" (Value.VInt 100_002)
    (Db.field_value db ~set:"R" (Db.get db ~set:"R" rb) "field_r");
  Db.check_integrity db

(* Satellite: undo I/O is real I/O — counted in the global ledger and
   attributed to the aborting transaction (regression for the bug where
   rollback page writes escaped [grand_total_io]). *)
let test_abort_io_attribution () =
  let built = Gen.build (small_spec ~frames:4 Params.Inplace 13) in
  let db = built.Gen.db in
  let soids = Array.init 20 (fun k -> s_of db k) in
  let tx = Db.begin_txn db in
  Array.iteri
    (fun k s ->
      Db.update_field ~txn:tx db ~set:"S" s ~field:"repfield"
        (Value.VString (Printf.sprintf "doomed-%04d" k)))
    soids;
  let io_forward = Txn.io tx in
  checkb "forward work charged to the txn" true (io_forward > 0);
  let snap = Stats.copy (Db.stats db) in
  Db.abort db tx;
  let d = Stats.diff (Db.stats db) snap in
  checki "every image restored" 20 d.Stats.undo_applied;
  checkb "rollback performs physical I/O" true (Stats.total_io d > 0);
  checki "undo I/O attributed to the aborting txn"
    (io_forward + Stats.total_io d)
    (Txn.io tx);
  Db.check_integrity db

(* ------------------------------------------------------------------ *)
(* Randomized interleaved clients: the serializability acceptance test *)

let serializable ?(clients = 4) ?(mix = Multi.update_mix) strategy seed () =
  let spec =
    {
      Gen.default_spec with
      Gen.s_count = 40;
      sharing = 3;
      strategy;
      page_size = 1024;
      frames = 64;
      seed;
    }
  in
  let built = Gen.build spec in
  let res =
    Multi.run ~abort_prob:0.15 ~clients ~txns_per_client:6 ~ops_per_txn:5 ~mix
      ~seed:((seed * 17) + 1) built
  in
  checkb "run completed" true (not res.Multi.crashed);
  checkb "made progress" true (res.Multi.commits > 0);
  checki "every program resolved exactly once" (clients * 6)
    (res.Multi.commits + res.Multi.voluntary_aborts + res.Multi.discarded);
  checki "no transaction left active" 0 (Db.active_txn_count built.Gen.db);
  checki "no lock left behind" 0
    (Lock.active_locks (Db.lock_manager built.Gen.db));
  Db.check_integrity built.Gen.db;
  (* strict 2PL promises equivalence to the serial execution of the
     committed programs in commit order — run exactly that on a fresh
     identical database and compare the logical states *)
  let serial = Gen.build spec in
  Multi.replay_serial serial.Gen.db res.Multi.committed;
  Db.check_integrity serial.Gen.db;
  checksl "equivalent to serial commit order"
    (Multi.observe serial.Gen.db)
    (Multi.observe built.Gen.db)

(* ------------------------------------------------------------------ *)
(* Crash during a multi-client run: recovery keeps exactly the
   transactions that committed                                         *)

let test_crash_during_run () =
  let spec =
    {
      Gen.default_spec with
      Gen.s_count = 24;
      sharing = 2;
      strategy = Params.Inplace;
      page_size = 1024;
      frames = 12;
      seed = 21;
      durable = true;
    }
  in
  let built = Gen.build spec in
  let db = built.Gen.db in
  let img = tmp "crash_run" ".img" in
  Db.checkpoint db img;
  (* arm the failpoint just before the fifth commit: the crash lands
     inside or shortly after it, with other transactions in flight *)
  let res =
    Multi.run ~abort_prob:0.1 ~clients:3 ~txns_per_client:4 ~ops_per_txn:4
      ~mix:Multi.update_mix ~seed:99
      ~before_commit:(fun k ->
        if k = 4 then
          Disk.set_failpoint (Pager.disk (Db.pager db)) ~after_writes:3)
      built
  in
  checkb "the failpoint fired" true res.Multi.crashed;
  checkb "some transactions committed first" true (res.Multi.commits >= 4);
  Wal.close (Option.get (Db.wal db));
  let db2 = Db.recover ~frames:spec.Gen.frames img in
  checki "losers resolved at recovery" 0 (Db.active_txn_count db2);
  Db.check_integrity db2;
  (* reference: serial execution of exactly the committed programs *)
  let serial = Gen.build { spec with Gen.durable = false } in
  Multi.replay_serial serial.Gen.db res.Multi.committed;
  checksl "recovered state = committed transactions only"
    (Multi.observe serial.Gen.db)
    (Multi.observe db2);
  Wal.close (Option.get (Db.wal db2));
  Sys.remove img

let () =
  Alcotest.run "fieldrep_txn"
    [
      ( "lock manager",
        [
          Alcotest.test_case "granularity compatibility" `Quick test_lock_compat;
          Alcotest.test_case "upgrade" `Quick test_lock_upgrade;
          Alcotest.test_case "deadlock detection" `Quick test_lock_deadlock;
        ] );
      ( "commit/abort",
        [
          Alcotest.test_case "commit applies" `Quick test_commit_applies;
          Alcotest.test_case "abort restores (no replication)" `Quick
            (abort_restores Params.No_replication);
          Alcotest.test_case "abort restores (in-place)" `Quick
            (abort_restores Params.Inplace);
          Alcotest.test_case "abort restores (separate)" `Quick
            (abort_restores Params.Separate);
          Alcotest.test_case "isolation blocks readers" `Quick
            test_isolation_blocks;
          Alcotest.test_case "deadlock through the engine" `Quick
            test_db_deadlock;
          Alcotest.test_case "abort I/O attribution" `Quick
            test_abort_io_attribution;
        ] );
      ( "interleaved serializability",
        [
          Alcotest.test_case "no replication, seed 1" `Slow
            (serializable Params.No_replication 1);
          Alcotest.test_case "no replication, seed 2" `Slow
            (serializable Params.No_replication 2);
          Alcotest.test_case "in-place, seed 1" `Slow
            (serializable Params.Inplace 1);
          Alcotest.test_case "in-place, seed 2" `Slow
            (serializable Params.Inplace 2);
          Alcotest.test_case "separate, seed 1" `Slow
            (serializable Params.Separate 1);
          Alcotest.test_case "separate, seed 2" `Slow
            (serializable Params.Separate 2);
          Alcotest.test_case "read mix, 6 clients" `Slow
            (serializable ~clients:6 ~mix:Multi.read_mix Params.Inplace 5);
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "crash during multi-client run" `Slow
            test_crash_during_run;
        ] );
    ]
