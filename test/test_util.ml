(* Tests for fieldrep_util: wire codecs, combinatorics/Yao, RNG, tables. *)

module Wire = Fieldrep_util.Wire
module Combin = Fieldrep_util.Combin
module Splitmix = Fieldrep_util.Splitmix
module Tableprint = Fieldrep_util.Tableprint

let check = Alcotest.check
let checki = check Alcotest.int
let checkf msg = check (Alcotest.float 1e-9) msg
let checks = check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)

let test_wire_roundtrip_ints () =
  let buf = Bytes.create 64 in
  List.iter
    (fun v ->
      let off = Wire.put_u8 buf 0 v in
      checki "u8 advance" 1 off;
      checki "u8 value" (v land 0xff) (fst (Wire.get_u8 buf 0)))
    [ 0; 1; 127; 255 ];
  List.iter
    (fun v ->
      ignore (Wire.put_u16 buf 3 v);
      checki "u16" (v land 0xffff) (fst (Wire.get_u16 buf 3)))
    [ 0; 1; 0xffff; 0x1234 ];
  List.iter
    (fun v ->
      ignore (Wire.put_u32 buf 8 v);
      checki "u32" v (fst (Wire.get_u32 buf 8)))
    [ 0; 1; 0xffff_ffff; 0x1234_5678 ];
  List.iter
    (fun v ->
      ignore (Wire.put_int buf 16 v);
      checki "int" v (fst (Wire.get_int buf 16)))
    [ 0; 1; -1; max_int; min_int; 42 ]

let test_wire_roundtrip_strings () =
  let buf = Bytes.create 256 in
  List.iter
    (fun s ->
      let off = Wire.put_string buf 5 s in
      checki "advance" (5 + Wire.string_size s) off;
      let s', off' = Wire.get_string buf 5 in
      checks "value" s s';
      checki "read advance" off off')
    [ ""; "x"; "hello world"; String.make 100 'z' ]

let test_wire_bounds () =
  let buf = Bytes.create 4 in
  Alcotest.check_raises "u32 overflow write" (Wire.Corrupt "out of bounds: off=2 len=4 buflen=4")
    (fun () -> ignore (Wire.put_u32 buf 2 1));
  Alcotest.check_raises "negative offset"
    (Wire.Corrupt "out of bounds: off=-1 len=1 buflen=4") (fun () ->
      ignore (Wire.put_u8 buf (-1) 0))

let test_wire_string_too_long () =
  let buf = Bytes.create 10 in
  (try
     ignore (Wire.put_string buf 0 (String.make 70000 'a'));
     Alcotest.fail "expected Corrupt"
   with Wire.Corrupt _ -> ())

(* ------------------------------------------------------------------ *)
(* Combin                                                              *)

let naive_binomial n k =
  let rec go n k acc =
    if k = 0 then acc else go (n - 1) (k - 1) (acc *. float_of_int n /. float_of_int k)
  in
  go n k 1.0

let test_log_binomial () =
  List.iter
    (fun (n, k) ->
      let expected = log (naive_binomial n k) in
      let got = Combin.log_binomial n k in
      check (Alcotest.float 1e-6) (Printf.sprintf "C(%d,%d)" n k) expected got)
    [ (5, 2); (10, 3); (100, 10); (1000, 5); (52, 26) ]

let test_binomial_ratio_extremes () =
  checkf "k=0" 1.0 (Combin.binomial_ratio 10 20 0);
  checkf "a=b" 1.0 (Combin.binomial_ratio 20 20 7);
  let r = Combin.binomial_ratio 90 100 5 in
  (* C(90,5)/C(100,5) = (90*89*88*87*86)/(100*99*98*97*96) *)
  let expected = naive_binomial 90 5 /. naive_binomial 100 5 in
  check (Alcotest.float 1e-9) "ratio" expected r

let test_yao_edges () =
  checkf "k=0" 0.0 (Combin.yao ~n:100 ~per_page:10 ~k:0);
  checkf "per_page=0" 0.0 (Combin.yao ~n:100 ~per_page:0 ~k:5);
  checkf "k beyond complement" 1.0 (Combin.yao ~n:100 ~per_page:10 ~k:91);
  checkf "all objects" 1.0 (Combin.yao ~n:100 ~per_page:10 ~k:100)

let test_yao_exact_small () =
  (* n=4 objects, 2 on the page, pick 1: P(touch) = 2/4. *)
  check (Alcotest.float 1e-9) "n4" 0.5 (Combin.yao ~n:4 ~per_page:2 ~k:1);
  (* n=4, 2 on page, pick 2: 1 - C(2,2)/C(4,2) = 1 - 1/6. *)
  check (Alcotest.float 1e-9) "n4k2" (1.0 -. (1.0 /. 6.0))
    (Combin.yao ~n:4 ~per_page:2 ~k:2)

let test_yao_monotone_in_k () =
  let prev = ref (-1.0) in
  for k = 0 to 50 do
    let y = Combin.yao ~n:1000 ~per_page:20 ~k in
    if y < !prev then Alcotest.failf "yao not monotone at k=%d" k;
    prev := y
  done

let test_yao_paper_scale () =
  (* The magnitude used throughout the cost model: |R|=10000, 33 objects per
     page, 20 objects read. *)
  let y = Combin.yao ~n:10000 ~per_page:33 ~k:20 in
  if y < 0.063 || y > 0.066 then Alcotest.failf "unexpected yao %.6f" y

let test_ceil_div_and_log () =
  checki "7/2" 4 (Combin.ceil_div 7 2);
  checki "8/2" 4 (Combin.ceil_div 8 2);
  checki "0/5" 0 (Combin.ceil_div 0 5);
  checki "neg" 0 (Combin.ceil_div (-3) 5);
  checki "log350(10000)" 2 (Combin.ceil_log ~base:350 10000);
  checki "log350(200000)" 3 (Combin.ceil_log ~base:350 200000);
  checki "log2(1)" 0 (Combin.ceil_log ~base:2 1);
  checki "log2(2)" 1 (Combin.ceil_log ~base:2 2);
  checki "log2(3)" 2 (Combin.ceil_log ~base:2 3)

(* ------------------------------------------------------------------ *)
(* Splitmix                                                            *)

let test_rng_deterministic () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Splitmix.next_int64 a) (Splitmix.next_int64 b)
  done

let test_rng_bounds () =
  let rng = Splitmix.create 7 in
  for _ = 1 to 1000 do
    let v = Splitmix.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of bounds: %d" v;
    let v = Splitmix.int_in rng 5 8 in
    if v < 5 || v > 8 then Alcotest.failf "int_in out of bounds: %d" v;
    let f = Splitmix.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_permutation () =
  let rng = Splitmix.create 3 in
  let p = Splitmix.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 100 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let rng = Splitmix.create 11 in
  List.iter
    (fun (n, k) ->
      let s = Splitmix.sample_without_replacement rng ~n ~k in
      checki "size" k (Array.length s);
      let set = Hashtbl.create 16 in
      Array.iter
        (fun v ->
          if v < 0 || v >= n then Alcotest.failf "value %d out of range" v;
          if Hashtbl.mem set v then Alcotest.failf "duplicate %d" v;
          Hashtbl.add set v ())
        s)
    [ (10, 0); (10, 10); (1000, 5); (10, 7); (5, 3) ]

let test_zipf_range () =
  let rng = Splitmix.create 13 in
  for _ = 1 to 500 do
    let v = Splitmix.zipf rng ~n:50 ~theta:0.8 in
    if v < 0 || v >= 50 then Alcotest.failf "zipf out of range: %d" v
  done;
  (* theta = 0 degenerates to uniform. *)
  let v = Splitmix.zipf rng ~n:50 ~theta:0.0 in
  if v < 0 || v >= 50 then Alcotest.failf "uniform zipf out of range: %d" v

let test_zipf_skew () =
  let rng = Splitmix.create 17 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let v = Splitmix.zipf rng ~n:100 ~theta:0.99 in
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 0 must dominate the tail decisively under high skew. *)
  if counts.(0) < 5 * counts.(50) then
    Alcotest.failf "zipf not skewed: head=%d mid=%d" counts.(0) counts.(50)

(* Regression: theta = 1.0 used to degenerate silently — the closed form's
   exponent 1/(1-theta) is infinite, [eta *. u] goes NaN and every rank
   collapsed to 0, so "maximum skew" quietly meant "constant 0".  Now it
   refuses by name; 0.99 stays in range as the supported extreme. *)
let test_zipf_theta_one_rejected () =
  let rng = Splitmix.create 19 in
  Alcotest.check_raises "theta = 1.0"
    (Invalid_argument "Splitmix.zipf: theta 1 out of range [0, 1)")
    (fun () -> ignore (Splitmix.zipf rng ~n:100 ~theta:1.0));
  Alcotest.check_raises "theta > 1.0"
    (Invalid_argument "Splitmix.zipf: theta 1.5 out of range [0, 1)")
    (fun () -> ignore (Splitmix.zipf rng ~n:100 ~theta:1.5));
  (* Just under the boundary draws normally and is not constant. *)
  let distinct = Hashtbl.create 8 in
  for _ = 1 to 1_000 do
    let v = Splitmix.zipf rng ~n:100 ~theta:0.99 in
    if v < 0 || v >= 100 then Alcotest.failf "out of range: %d" v;
    Hashtbl.replace distinct v ()
  done;
  if Hashtbl.length distinct < 2 then
    Alcotest.fail "theta = 0.99 drew a constant stream"

(* Regression: every draw recomputed the O(n) zeta constants, so a skewed
   workload over 10^6 objects cost 10^12 float-loop iterations.  With the
   per-(n, theta) cache a million draws at n = 10^6 must cost about one
   zeta pass plus a million O(1) draws — wall-clock-bounded far below the
   uncached behaviour (which takes hours). *)
let test_zipf_draws_are_constant_time () =
  let rng = Splitmix.create 23 in
  let n = 1_000_000 in
  let counts = Array.make 64 0 in
  let start = Sys.time () in
  for _ = 1 to 1_000_000 do
    let v = Splitmix.zipf rng ~n ~theta:0.9 in
    if v < 0 || v >= n then Alcotest.failf "out of range: %d" v;
    if v < 64 then counts.(v) <- counts.(v) + 1
  done;
  let elapsed = Sys.time () -. start in
  if elapsed > 10.0 then
    Alcotest.failf "million zipf draws took %.1fs: constants not cached" elapsed;
  (* Distribution sanity at theta 0.9: the head ranks soak up a large
     share of a million draws over a million objects. *)
  let head = Array.fold_left ( + ) 0 counts in
  if head < 100_000 then
    Alcotest.failf "zipf(0.9) head too light: %d/10^6 in top 64" head;
  if counts.(0) <= counts.(1) || counts.(1) = 0 then
    Alcotest.failf "zipf ranks not ordered: %d %d" counts.(0) counts.(1)

let test_zipf_deterministic_with_cache () =
  (* The memo table must not perturb the stream: equal seeds still give
     equal streams, including across a [copy] taken mid-stream. *)
  let a = Splitmix.create 31 and b = Splitmix.create 31 in
  for _ = 1 to 100 do
    Alcotest.(check int)
      "equal streams"
      (Splitmix.zipf a ~n:1000 ~theta:0.7)
      (Splitmix.zipf b ~n:1000 ~theta:0.7)
  done;
  let c = Splitmix.copy a in
  for _ = 1 to 100 do
    Alcotest.(check int)
      "copy continues the stream"
      (Splitmix.zipf a ~n:1000 ~theta:0.7)
      (Splitmix.zipf c ~n:1000 ~theta:0.7)
  done

(* ------------------------------------------------------------------ *)
(* Tableprint                                                          *)

let test_table_render () =
  let out =
    Tableprint.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  checki "line count" 4 (List.length lines);
  (match lines with
  | header :: _ ->
      if not (String.length header > 0 && header.[0] = '|') then
        Alcotest.fail "missing border"
  | [] -> Alcotest.fail "empty output");
  (* All lines share a width. *)
  let widths = List.map String.length lines in
  List.iter (fun w -> checki "uniform width" (List.hd widths) w) widths

let test_table_pads_short_rows () =
  let out = Tableprint.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  if not (String.length out > 0) then Alcotest.fail "no output"

let test_formatters () =
  checks "fixed" "3.14" (Tableprint.fixed 2 3.14159);
  checks "pct" "12.5%" (Tableprint.pct 12.5)

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"wire int roundtrip" ~count:500 (int)
      (fun v ->
        let buf = Bytes.create 16 in
        ignore (Fieldrep_util.Wire.put_int buf 0 v);
        fst (Fieldrep_util.Wire.get_int buf 0) = v);
    Test.make ~name:"wire string roundtrip" ~count:200 (string_of_size Gen.(0 -- 200))
      (fun s ->
        let buf = Bytes.create (Fieldrep_util.Wire.string_size s) in
        ignore (Fieldrep_util.Wire.put_string buf 0 s);
        fst (Fieldrep_util.Wire.get_string buf 0) = s);
    Test.make ~name:"yao within [0,1]" ~count:500
      (triple (int_range 1 5000) (int_range 0 200) (int_range 0 5000))
      (fun (n, per_page, k) ->
        let per_page = min per_page n and k = min k n in
        let y = Combin.yao ~n ~per_page ~k in
        y >= 0.0 && y <= 1.0);
    Test.make ~name:"yao vs monte carlo" ~count:20
      (triple (int_range 20 200) (int_range 1 10) (int_range 1 20))
      (fun (n, per_page, k) ->
        let per_page = min per_page n and k = min k n in
        let y = Combin.yao ~n ~per_page ~k in
        let rng = Splitmix.create (n + (per_page * 1000) + (k * 100000)) in
        let trials = 2000 in
        let hits = ref 0 in
        for _ = 1 to trials do
          let picked = Splitmix.sample_without_replacement rng ~n ~k in
          if Array.exists (fun v -> v < per_page) picked then incr hits
        done;
        let estimate = float_of_int !hits /. float_of_int trials in
        Float.abs (estimate -. y) < 0.05);
    Test.make ~name:"sample_without_replacement distinct" ~count:200
      (pair (int_range 1 100) (int_range 0 100))
      (fun (n, k) ->
        let k = min k n in
        let rng = Splitmix.create (n * 131 + k) in
        let s = Splitmix.sample_without_replacement rng ~n ~k in
        let sorted = Array.copy s in
        Array.sort Int.compare sorted;
        let distinct = ref true in
        for i = 0 to Array.length sorted - 2 do
          if sorted.(i) = sorted.(i + 1) then distinct := false
        done;
        !distinct && Array.length s = k);
  ]

let () =
  Alcotest.run "fieldrep_util"
    [
      ( "wire",
        [
          Alcotest.test_case "int roundtrips" `Quick test_wire_roundtrip_ints;
          Alcotest.test_case "string roundtrips" `Quick test_wire_roundtrip_strings;
          Alcotest.test_case "bounds checking" `Quick test_wire_bounds;
          Alcotest.test_case "oversized string rejected" `Quick test_wire_string_too_long;
        ] );
      ( "combin",
        [
          Alcotest.test_case "log_binomial matches naive" `Quick test_log_binomial;
          Alcotest.test_case "binomial_ratio extremes" `Quick test_binomial_ratio_extremes;
          Alcotest.test_case "yao edge cases" `Quick test_yao_edges;
          Alcotest.test_case "yao exact small cases" `Quick test_yao_exact_small;
          Alcotest.test_case "yao monotone in k" `Quick test_yao_monotone_in_k;
          Alcotest.test_case "yao at paper scale" `Quick test_yao_paper_scale;
          Alcotest.test_case "ceil_div / ceil_log" `Quick test_ceil_div_and_log;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "permutation" `Quick test_permutation;
          Alcotest.test_case "sampling" `Quick test_sample_without_replacement;
          Alcotest.test_case "zipf range" `Quick test_zipf_range;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf theta=1 rejected" `Quick
            test_zipf_theta_one_rejected;
          Alcotest.test_case "zipf draws are O(1)" `Quick
            test_zipf_draws_are_constant_time;
          Alcotest.test_case "zipf deterministic with cache" `Quick
            test_zipf_deterministic_with_cache;
        ] );
      ( "tableprint",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "short rows padded" `Quick test_table_pads_short_rows;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
