(* Background maintenance: online replicate / unreplicate / scrub.

   The acceptance tests of the reconfiguration subsystem:

   - `Db.replicate` and `Db.unreplicate` complete with concurrent active
     transactions, and the multi-client run interleaved with a full
     replicate -> unreplicate -> re-replicate cycle stays equivalent to
     the serial execution of its committed transactions (no lost updates);
   - an online backfill with no concurrent writes produces derived state
     byte-identical to the quiesced bulk build;
   - a crash at every maintenance WAL record recovers, resumes the job,
     and converges on the uncrashed run's state. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Disk = Fieldrep_storage.Disk
module Pager = Fieldrep_storage.Pager
module Wal = Fieldrep_wal.Wal
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Params = Fieldrep_costmodel.Params
module Lock = Fieldrep_txn.Lock
module Gen = Fieldrep_workload.Gen
module Multi = Fieldrep_workload.Multi

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checksl = Alcotest.(check (list string))
let value_testable = Alcotest.testable Value.pp Value.equal
let checkv = Alcotest.check value_testable

(* CI runs the suite under several seeds; the generated database, the
   client programs, and therefore the walk/crash schedule shift with it. *)
let seed_base =
  match Sys.getenv_opt "FIELDREP_TEST_SEED" with
  | Some s -> ( try int_of_string s with _ -> 0)
  | None -> 0

let tmp name ext =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      ("fieldrep_maint_" ^ name ^ ext)
  in
  if Sys.file_exists path then Sys.remove path;
  path

let rep_path = Path.parse "R.sref.repfield"

let spec ?(s_count = 24) ?(sharing = 2) ?(page_size = 1024) ?(frames = 64)
    ?(durable = false) ?(strategy = Params.No_replication) seed =
  {
    Gen.default_spec with
    Gen.s_count;
    sharing;
    strategy;
    page_size;
    frames;
    seed;
    durable;
  }

(* Ground truth for the replicated value: the functional join, read
   directly from the source records. *)
let join_read db r =
  match Db.field_value db ~set:"R" (Db.get db ~set:"R" r) "sref" with
  | Value.VRef s -> Db.field_value db ~set:"S" (Db.get db ~set:"S" s) "repfield"
  | v -> Alcotest.failf "sref is not a reference: %s" (Value.to_string v)

let r_oids db =
  let acc = ref [] in
  Db.scan db ~set:"R" (fun oid _ -> acc := oid :: !acc);
  List.rev !acc

let s_oids db =
  let acc = ref [] in
  Db.scan db ~set:"S" (fun oid _ -> acc := oid :: !acc);
  List.rev !acc

(* Every replicated read agrees with the join — the "no lost updates in
   derived state" check, independent of how the copies were built. *)
let check_reads_match_join db =
  List.iter
    (fun r ->
      checkv "replicated read = functional join" (join_read db r)
        (Db.deref db ~set:"R" r "sref.repfield"))
    (r_oids db)

(* Byte-level identity: flush the buffer pool, then digest every page of
   every disk file (same helper as test_repl). *)
let disk_digest db =
  Pager.flush (Db.pager db);
  let disk = Pager.disk (Db.pager db) in
  Disk.file_ids disk
  |> List.sort compare
  |> List.map (fun id ->
         let n = Disk.page_count disk id in
         let b = Buffer.create 64 in
         for page = 0 to n - 1 do
           Buffer.add_string b
             (Digest.to_hex (Digest.bytes (Disk.dump_page disk ~file:id ~page)))
         done;
         (id, n, Digest.to_hex (Digest.string (Buffer.contents b))))

(* ------------------------------------------------------------------ *)
(* API validation                                                      *)

let test_double_replicate_rejected () =
  let built = Gen.build (spec ~strategy:Params.Inplace (seed_base + 1)) in
  let db = built.Gen.db in
  Alcotest.check_raises "second declaration of the same path"
    (Invalid_argument
       "Db.replicate: path R.sref.repfield is already replicated")
    (fun () -> Db.replicate db ~strategy:Schema.Inplace rep_path);
  (* ... even with a different strategy: replicate is not idempotent, the
     path must be unreplicated first. *)
  Alcotest.check_raises "different strategy is still a duplicate"
    (Invalid_argument
       "Db.replicate: path R.sref.repfield is already replicated")
    (fun () -> Db.replicate db ~strategy:Schema.Separate rep_path);
  (* Dropping the declaration frees the path for a fresh one. *)
  Db.unreplicate db rep_path;
  checkb "declaration gone" true (Db.replication_state db rep_path = None);
  check_reads_match_join db;
  Db.replicate db ~strategy:Schema.Separate rep_path;
  checkb "re-replicated path is active" true
    (Db.replication_state db rep_path = Some Schema.Active);
  check_reads_match_join db;
  Db.check_integrity db;
  Alcotest.check_raises "the fresh declaration is guarded too"
    (Invalid_argument
       "Db.replicate: path R.sref.repfield is already replicated")
    (fun () -> Db.replicate db ~strategy:Schema.Separate rep_path)

let test_unreplicate_validation () =
  let built = Gen.build (spec (seed_base + 2)) in
  let db = built.Gen.db in
  Alcotest.check_raises "unreplicated path"
    (Invalid_argument "Db.unreplicate: path R.sref.repfield is not replicated")
    (fun () -> Db.unreplicate db rep_path);
  (* Mid-backfill the declaration belongs to its maintenance job. *)
  let tx = Db.begin_txn db in
  Db.replicate db ~strategy:Schema.Inplace rep_path;
  checkb "installed as Building" true
    (Db.replication_state db rep_path = Some Schema.Building);
  Alcotest.check_raises "dropping a Building declaration"
    (Invalid_argument
       "Db.unreplicate: path R.sref.repfield is being reconfigured")
    (fun () -> Db.unreplicate db rep_path);
  Db.commit db tx;
  Db.maint_drain db;
  checkb "backfill completed" true
    (Db.replication_state db rep_path = Some Schema.Active);
  (* An index compiled against the hidden copy blocks the drop. *)
  Db.build_index db ~name:"idx_rep" ~set:"R" ~field:"R.sref.repfield"
    ~clustered:false;
  Alcotest.check_raises "path index pins the declaration"
    (Invalid_argument
       "Db.unreplicate: index idx_rep reads path R.sref.repfield; drop it first")
    (fun () -> Db.unreplicate db rep_path);
  Db.check_integrity db

(* ------------------------------------------------------------------ *)
(* Online backfill vs quiesced bulk build                              *)

(* Every record of a set, encoded, in OID order — compares stored bytes
   (user fields, hidden copies, link sections) independent of where in the
   page each record sits. *)
let record_bytes db set =
  let acc = ref [] in
  Db.scan db ~set (fun oid record ->
      acc :=
        Printf.sprintf "%d.%d.%d:%s" oid.Oid.file oid.Oid.page oid.Oid.slot
          (Digest.to_hex (Digest.bytes (Fieldrep_model.Record.encode record)))
        :: !acc);
  List.rev !acc

(* With no concurrent writes, an in-place backfill must land exactly the
   bytes the quiesced bulk build would have: with direct links (sharing 1)
   the derived state lives entirely inside source and target records, in
   slots fixed by the schema.  Every *derived-state* file — the source-set
   heap holding the hidden copies, the link file, the S' file — is
   byte-identical page for page.  The one file allowed to differ
   physically is the target set S: its pages are source data, and
   attaching the (identical) membership sections in source order rather
   than target order fragments the pages differently — so S is compared
   record by record instead.

   A separate-strategy backfill allocates S' objects in source-walk order
   where the bulk build allocates them in target order, and records store
   S' OIDs — so for [Separate] the byte-level claims are legitimately
   unreachable and the test asserts logical identity plus identical
   derived space instead. *)
let online_equals_bulk_build strategy () =
  let sp = spec ~s_count:90 ~sharing:1 (seed_base + 3) in
  let online = (Gen.build sp).Gen.db in
  let tx = Db.begin_txn online in
  (* an idle open transaction: enough to force the online path *)
  Db.replicate online ~strategy rep_path;
  checkb "declaration is Building" true
    (Db.replication_state online rep_path = Some Schema.Building);
  checkb "a backfill job is queued" true (Db.maint_pending online = 1);
  checkb "the backlog counts source pages" true (Db.maint_backlog online > 0);
  (* Building declarations never serve reads: the join still answers. *)
  check_reads_match_join online;
  Db.commit online tx;
  let steps = ref 0 in
  while Db.maint_pending online > 0 do
    (match Db.maint_step ~quantum:3 online with
    | `Progress -> incr steps
    | `Yield -> Alcotest.fail "nothing to yield to"
    | `Idle -> ());
    Db.check_integrity online
    (* the store is consistent between any two quanta *)
  done;
  checkb "took several quanta" true (!steps > 2);
  checkb "declaration is Active" true
    (Db.replication_state online rep_path = Some Schema.Active);
  let bulk = (Gen.build sp).Gen.db in
  Db.replicate bulk ~strategy rep_path;
  checksl "same observable state" (Multi.observe bulk) (Multi.observe online);
  checksl "same derived space"
    (List.map
       (fun (c, p) -> Printf.sprintf "%s=%d" c p)
       (Db.space_report bulk))
    (List.map
       (fun (c, p) -> Printf.sprintf "%s=%d" c p)
       (Db.space_report online));
  if strategy = Schema.Inplace then begin
    checksl "S records byte-identical" (record_bytes bulk "S")
      (record_bytes online "S");
    checksl "R records byte-identical" (record_bytes bulk "R")
      (record_bytes online "R");
    let s_file = (List.hd (s_oids online)).Oid.file in
    let derived db_ =
      List.filter (fun (file, _, _) -> file <> s_file) (disk_digest db_)
    in
    checkb "derived-state files byte-identical to the quiesced build" true
      (derived bulk = derived online)
  end;
  check_reads_match_join online;
  Db.check_integrity online

(* Writes during the backfill: behind the watermark they propagate through
   the catch-up trigger, ahead of it the walk picks them up; inserts and
   deletes of source objects mid-build are caught the same way. *)
let test_watermark_writes () =
  let built = Gen.build (spec ~s_count:40 ~page_size:512 (seed_base + 4)) in
  let db = built.Gen.db in
  let tx = Db.begin_txn db in
  Db.replicate db ~strategy:Schema.Inplace rep_path;
  Db.commit db tx;
  (* advance the watermark a little, leaving most pages ahead of it *)
  for _ = 1 to 2 do
    match Db.maint_step ~quantum:1 db with
    | `Progress -> ()
    | `Yield | `Idle -> Alcotest.fail "backfill should progress"
  done;
  (* overwrite every replicated source value: some sit behind the
     watermark (already backfilled), most ahead of it *)
  List.iteri
    (fun i s ->
      Db.update_field db ~set:"S" s ~field:"repfield"
        (Value.VString (Printf.sprintf "rewritten-%04d" i)))
    (s_oids db);
  (* a source object born mid-build must be attached by the trigger *)
  let some_s = List.hd (s_oids db) in
  let template =
    Db.user_values db ~set:"R" (Db.get db ~set:"R" (List.hd (r_oids db)))
  in
  let fresh =
    Db.insert db ~set:"R"
      (List.map
         (function
           | Value.VInt _ -> Value.VInt 99_999
           | Value.VRef _ -> Value.VRef some_s
           | v -> v)
         template)
  in
  (* ... and one deleted mid-build must not resurface *)
  Db.delete db ~set:"R" (List.nth (r_oids db) 3);
  Db.maint_drain ~quantum:3 db;
  checkb "declaration is Active" true
    (Db.replication_state db rep_path = Some Schema.Active);
  checkv "mid-build insert reads through its copy"
    (join_read db fresh)
    (Db.deref db ~set:"R" fresh "sref.repfield");
  check_reads_match_join db;
  Db.check_integrity db

(* ------------------------------------------------------------------ *)
(* Cooperation with foreground transactions                            *)

let test_yields_to_foreground_locks () =
  let built = Gen.build (spec (seed_base + 5)) in
  let db = built.Gen.db in
  let blocker = Db.begin_txn db in
  (* X-lock one source object; the backfill's first quantum covers it *)
  let r0 = List.hd (r_oids db) in
  Db.update_field ~txn:blocker db ~set:"R" r0 ~field:"field_r"
    (Value.VInt 123_456);
  Db.replicate db ~strategy:Schema.Inplace rep_path;
  let st0 = Stats.copy (Db.stats db) in
  (match Db.maint_step ~quantum:64 db with
  | `Yield -> ()
  | `Progress | `Idle -> Alcotest.fail "quantum should yield to the X lock");
  let d = Stats.diff (Db.stats db) st0 in
  checki "yield counted" 1 d.Stats.maint_lock_yields;
  checki "no page walked" 0 d.Stats.maint_pages_walked;
  checkb "job still queued" true (Db.maint_pending db = 1);
  checkb "no maintenance lock leaked" true
    (Lock.active_locks (Db.lock_manager db) > 0);
  (* only the blocker's locks remain; a drain cannot make progress *)
  Alcotest.check_raises "drain refuses to spin on a blocked queue"
    (Invalid_argument
       "Db.maint_drain: maintenance is blocked on locks held by active \
        transactions")
    (fun () -> Db.maint_drain db);
  Db.commit db blocker;
  Db.maint_drain db;
  checkb "backfill completed after the blocker committed" true
    (Db.replication_state db rep_path = Some Schema.Active);
  checki "maintenance locks all released" 0
    (Lock.active_locks (Db.lock_manager db));
  check_reads_match_join db;
  Db.check_integrity db

let test_scrub_with_active_txns () =
  let built = Gen.build (spec ~strategy:Params.Inplace (seed_base + 6)) in
  let db = built.Gen.db in
  let tx = Db.begin_txn db in
  Db.update_field ~txn:tx db ~set:"S" (List.hd (s_oids db)) ~field:"repfield"
    (Value.VString "uncommitted!");
  (* the old quiesce check is gone: scrub runs alongside the open txn *)
  let report = Db.scrub db in
  checkb "pages scanned" true (report.Fieldrep_scrub.Scrub.pages_scanned > 0);
  checki "clean store needs no repairs" 0 report.Fieldrep_scrub.Scrub.repairs;
  Db.commit db tx;
  Db.check_integrity db

(* A scrub issued while a backfill is queued interleaves with it — and the
   rotating queue means both finish. *)
let test_scrub_interleaves_with_backfill () =
  let built = Gen.build (spec (seed_base + 7)) in
  let db = built.Gen.db in
  let tx = Db.begin_txn db in
  Db.replicate db ~strategy:Schema.Separate rep_path;
  Db.commit db tx;
  checkb "backfill queued" true (Db.maint_pending db = 1);
  let report = Db.scrub db in
  checkb "sweep ran" true (report.Fieldrep_scrub.Scrub.pages_scanned > 0);
  (* the scrub pump drained the queue: backfill included *)
  checki "queue empty after scrub" 0 (Db.maint_pending db);
  checkb "backfill completed during the scrub" true
    (Db.replication_state db rep_path = Some Schema.Active);
  check_reads_match_join db;
  Db.check_integrity db

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)

let test_maint_counters () =
  let built = Gen.build (spec (seed_base + 8)) in
  let db = built.Gen.db in
  let st0 = Stats.copy (Db.stats db) in
  let tx = Db.begin_txn db in
  Db.replicate db ~strategy:Schema.Inplace rep_path;
  checksl "job labelled by its path"
    [ "backfill R.sref.repfield" ]
    (List.map fst (Db.maint_jobs db));
  checkb "backlog gauge raised" true
    ((Db.stats db).Stats.maint_backfill_pending > 0);
  Db.commit db tx;
  Db.maint_drain ~quantum:2 db;
  let d = Stats.diff (Db.stats db) st0 in
  checkb "steps counted" true (d.Stats.maint_steps > 0);
  checkb "every source page walked" true
    (d.Stats.maint_pages_walked >= Db.set_pages db "R");
  checki "backlog gauge settled" 0 d.Stats.maint_backfill_pending;
  let rendered = Format.asprintf "%a" Stats.pp d in
  let contains needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec go i =
      i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle -> checkb (needle ^ " in pp") true (contains needle))
    [ "maint_steps="; "maint_pages_walked="; "maint_lock_yields=";
      "maint_backfill_pending=" ]

(* ------------------------------------------------------------------ *)
(* The acceptance run: reconfiguration under multi-client load         *)

(* Run the interleaved-client mix continuously while the path is
   replicated, de-replicated, and re-replicated — the DDL issued only when
   transactions are active (proving no quiesce), the backfill/teardown
   pumped between client steps.  The run must stay equivalent to the
   serial execution of its committed transactions. *)
let reconfig_under_load ?(sharing = 2) strategy seed () =
  let sp = spec ~s_count:30 ~sharing ~page_size:512 (seed_base + seed) in
  let built = Gen.build sp in
  let db = built.Gen.db in
  let phase = ref `Replicate in
  let schema_strategy =
    match strategy with
    | Params.Inplace -> Schema.Inplace
    | Params.Separate -> Schema.Separate
    | Params.No_replication -> Alcotest.fail "needs a replication strategy"
  in
  (* The byte-identity variant eliminates link objects entirely (direct
     pairs): link-object OIDs are allocation-order-dependent, so only the
     direct layout can be compared byte for byte against a rebuild. *)
  let options =
    if sharing = 1 then
      { Schema.default_options with Schema.small_link_threshold = 8 }
    else Schema.default_options
  in
  let on_turn turn =
    if Db.maint_pending db > 0 then ignore (Db.maint_step ~quantum:2 db);
    match !phase with
    | `Replicate when turn >= 2 && Db.active_txn_count db > 0 ->
        Db.replicate db ~options ~strategy:schema_strategy rep_path;
        checkb "installed online (txns active)" true
          (Db.replication_state db rep_path = Some Schema.Building);
        phase := `Built
    | `Built when Db.replication_state db rep_path = Some Schema.Active ->
        phase := `Unreplicate
    | `Unreplicate when Db.active_txn_count db > 0 ->
        Db.unreplicate db rep_path;
        phase := `Dropped
    | `Dropped when Db.replication_state db rep_path = None ->
        phase := `Rereplicate
    | `Rereplicate when Db.active_txn_count db > 0 ->
        Db.replicate db ~options ~strategy:schema_strategy rep_path;
        phase := `Rebuilt
    | `Rebuilt when Db.replication_state db rep_path = Some Schema.Active ->
        phase := `Done
    | _ -> ()
  in
  (* The byte-identity variant (sharing 1) drops inserts and deletes from
     the mix: a record allocated under the interleaved schedule can land
     on a different slot than under the serial replay, which is invisible
     logically but defeats an OID-keyed byte comparison. *)
  let mix =
    if sharing = 1 then
      { Multi.update_mix with Multi.w_insert = 0; w_delete = 0 }
    else Multi.update_mix
  in
  let res =
    Multi.run ~abort_prob:0.1 ~on_turn ~clients:4 ~txns_per_client:10
      ~ops_per_txn:4 ~mix
      ~seed:((seed_base + seed) * 13 + 7)
      built
  in
  checkb "run completed" true (not res.Multi.crashed);
  checkb "made progress" true (res.Multi.commits > 0);
  checkb "the full reconfiguration cycle ran under load" true
    (match !phase with `Rereplicate | `Rebuilt | `Done -> true | _ -> false);
  checki "no transaction left active" 0 (Db.active_txn_count db);
  Db.maint_drain db;
  checkb "final declaration active" true
    (Db.replication_state db rep_path = Some Schema.Active);
  checki "no lock left behind" 0 (Lock.active_locks (Db.lock_manager db));
  check_reads_match_join db;
  Db.check_integrity db;
  (* no lost updates: equivalent to the serial execution of the committed
     transactions on an identical database that never reconfigured *)
  let serial = Gen.build sp in
  Multi.replay_serial serial.Gen.db res.Multi.committed;
  Db.check_integrity serial.Gen.db;
  checksl "equivalent to serial commit order"
    (Multi.observe serial.Gen.db)
    (Multi.observe db);
  (* Derived state vs. a quiesced rebuild: put the serial database
     through the same declaration history with no transactions active
     (replicate, unreplicate, replicate — all on the bulk paths).  Both
     databases then have identical hidden-slot layouts — a dropped
     declaration keeps its (nulled) slot forever — so:

     - source records, which hold every replicated byte of the in-place
       layout (hidden copies and, where small-link elimination applied,
       the direct member pair), must match byte for byte;
     - target records must match byte for byte once their link pair is
       set aside — a link *object's* OID is allocation-order-dependent,
       the one physical name an incremental history cannot reproduce;
     - the memberships those link objects carry must match as content,
       read back through the inverted path itself. *)
  if sharing = 1 && schema_strategy = Schema.Inplace then begin
    let sdb = serial.Gen.db in
    Db.replicate sdb ~options ~strategy:schema_strategy rep_path;
    Db.unreplicate sdb rep_path;
    checkb "quiesced unreplicate drains inline" true
      (Db.replication_state sdb rep_path = None);
    Db.replicate sdb ~options ~strategy:schema_strategy rep_path;
    Db.check_integrity sdb;
    checksl "R records byte-identical to the quiesced rebuild"
      (record_bytes sdb "R") (record_bytes db "R");
    let nolinks record = Fieldrep_model.Record.with_links record [] in
    let s_bytes db_ =
      List.map
        (fun s ->
          Printf.sprintf "%s:%s" (Oid.to_string s)
            (Digest.to_hex
               (Digest.bytes
                  (Fieldrep_model.Record.encode
                     (nolinks (Db.get db_ ~set:"S" s))))))
        (s_oids db_)
    in
    checksl "S records byte-identical modulo the link pair" (s_bytes sdb)
      (s_bytes db);
    let memberships db_ =
      List.map
        (fun s ->
          let members, how =
            Db.referencers db_ ~source_set:"R" ~attr:"sref" s
          in
          checkb "membership answered from the inverted path" true
            (how = Db.Via_links);
          Printf.sprintf "%s<-[%s]" (Oid.to_string s)
            (String.concat ";" (List.map Oid.to_string members)))
        (s_oids db_)
    in
    checksl "memberships identical to the quiesced rebuild" (memberships sdb)
      (memberships db)
  end

(* ------------------------------------------------------------------ *)
(* Crash matrix: kill at every maintenance WAL record                  *)

(* Drive one online reconfiguration to completion, counting its pumps
   (each `Progress` logs at least one Maint_step/Maint_done record), then
   re-run it crashing at every record boundary — odd positions crash
   *mid-quantum* through a disk failpoint, after the record is on disk but
   with the quantum's page writes torn off halfway.  Recovery must resume
   the job and converge on the uncrashed run's state. *)

let durable_spec seed =
  spec ~s_count:16 ~page_size:512 ~frames:32 ~durable:true seed

(* Build the scenario up to the point where only maintenance pumping
   remains: checkpoint, then the online DDL issued under an open txn. *)
let start_scenario ~kind ~name seed =
  let sp =
    match kind with
    | `Backfill -> durable_spec seed
    | `Teardown -> { (durable_spec seed) with Gen.strategy = Params.Inplace }
  in
  let built = Gen.build sp in
  let db = built.Gen.db in
  let img = tmp name ".img" in
  Db.checkpoint db img;
  let tx = Db.begin_txn db in
  (* an active transaction forces the online path for the DDL *)
  (match kind with
  | `Backfill -> Db.replicate db ~strategy:Schema.Inplace rep_path
  | `Teardown -> Db.unreplicate db rep_path);
  Db.commit db tx;
  (db, img, sp)

let finish_checks ~kind db =
  (match kind with
  | `Backfill ->
      checkb "declaration active" true
        (Db.replication_state db rep_path = Some Schema.Active);
      check_reads_match_join db
  | `Teardown ->
      checkb "declaration gone" true (Db.replication_state db rep_path = None));
  Db.check_integrity db

let crash_matrix kind name () =
  let seed = seed_base + 31 in
  (* reference: the same scenario pumped to completion without a crash *)
  let ref_db, ref_img, sp = start_scenario ~kind ~name:(name ^ "_ref") seed in
  let pumps = ref 0 in
  while Db.maint_pending ref_db > 0 do
    match Db.maint_step ~quantum:1 ref_db with
    | `Progress -> incr pumps
    | `Yield -> Alcotest.fail "reference run should not yield"
    | `Idle -> ()
  done;
  finish_checks ~kind ref_db;
  let expected = Multi.observe ref_db in
  let total = !pumps in
  checkb "the job takes several quanta" true (total > 3);
  Wal.close (Option.get (Db.wal ref_db));
  Sys.remove ref_img;
  (* kill after the k-th maintenance record, k = 0 (right after the DDL
     record, before any quantum) .. total (after Maint_done) *)
  for k = 0 to total do
    let db, img, _ =
      start_scenario ~kind ~name:(Printf.sprintf "%s_%d" name k) seed
    in
    for _ = 1 to k - 1 do
      ignore (Db.maint_step ~quantum:1 db)
    done;
    (* odd k: crash inside the k-th quantum, after its Maint_step record
       hit the log but with the page writes cut off; even k: a clean kill
       at the record boundary *)
    if k > 0 then
      if k mod 2 = 1 then (
        Disk.set_failpoint ~torn:(k mod 4 = 1) (Pager.disk (Db.pager db))
          ~after_writes:(k mod 3);
        match Db.maint_step ~quantum:1 db with
        | exception Disk.Crash _ -> ()
        | _ ->
            (* the quantum wrote fewer pages than the failpoint depth: it
               completed; the crash is a clean kill here *)
            Disk.clear_failpoint (Pager.disk (Db.pager db)))
      else ignore (Db.maint_step ~quantum:1 db);
    Wal.close (Option.get (Db.wal db));
    let db2 = Db.recover ~frames:sp.Gen.frames img in
    checki "no transaction survives recovery" 0 (Db.active_txn_count db2);
    (* recovery re-queued the job at its logged watermark; finish it *)
    Db.maint_drain db2;
    finish_checks ~kind db2;
    checksl
      (Printf.sprintf "crash at record %d/%d converges on the uncrashed state"
         k total)
      expected (Multi.observe db2);
    Wal.close (Option.get (Db.wal db2));
    Sys.remove img
  done

let () =
  Alcotest.run "fieldrep_maint"
    [
      ( "api",
        [
          Alcotest.test_case "double replicate rejected" `Quick
            test_double_replicate_rejected;
          Alcotest.test_case "unreplicate validation" `Quick
            test_unreplicate_validation;
        ] );
      ( "online build",
        [
          Alcotest.test_case "backfill = bulk build, in-place" `Quick
            (online_equals_bulk_build Schema.Inplace);
          Alcotest.test_case "backfill = bulk build, separate" `Quick
            (online_equals_bulk_build Schema.Separate);
          Alcotest.test_case "writes behind and ahead of the watermark" `Quick
            test_watermark_writes;
        ] );
      ( "cooperation",
        [
          Alcotest.test_case "yields to foreground locks" `Quick
            test_yields_to_foreground_locks;
          Alcotest.test_case "scrub with active transactions" `Quick
            test_scrub_with_active_txns;
          Alcotest.test_case "scrub interleaves with a backfill" `Quick
            test_scrub_interleaves_with_backfill;
        ] );
      ( "observability",
        [ Alcotest.test_case "maint counters" `Quick test_maint_counters ] );
      ( "reconfig under load",
        [
          Alcotest.test_case "in-place, multi-client" `Slow
            (reconfig_under_load Params.Inplace 11);
          Alcotest.test_case "separate, multi-client" `Slow
            (reconfig_under_load Params.Separate 12);
          Alcotest.test_case "in-place, direct links (byte-identity)" `Slow
            (reconfig_under_load ~sharing:1 Params.Inplace 13);
        ] );
      ( "crash matrix",
        [
          Alcotest.test_case "backfill: kill at every maint record" `Slow
            (crash_matrix `Backfill "backfill");
          Alcotest.test_case "teardown: kill at every maint record" `Slow
            (crash_matrix `Teardown "teardown");
        ] );
    ]
