(* Chaos harness: long seeded runs of writes, crashes, hangs, partitions,
   promotions and rejoins over the in-process loopback transport, with the
   probabilistic fault schedules (drop/corrupt/duplicate/hang) armed on
   every established link.

   Each seeded schedule runs >= 200 write operations and forces at least
   one failover (master crash -> epoch-bumped promotion) and at least one
   zombie-master fencing event (the deposed master keeps writing and its
   stale-epoch traffic is rejected).  Time is an injected manual clock —
   no wall-clock sleeps anywhere — and every run must end with all three
   nodes byte-identical (page digests) and exactly one master per epoch. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Disk = Fieldrep_storage.Disk
module Pager = Fieldrep_storage.Pager
module Wal = Fieldrep_wal.Wal
module Value = Fieldrep_model.Value
module Key = Fieldrep_btree.Key
module Params = Fieldrep_costmodel.Params
module Gen = Fieldrep_workload.Gen
module Splitmix = Fieldrep_util.Splitmix
module Transport = Fieldrep_repl.Transport
module Clock = Fieldrep_repl.Clock
module Repl = Fieldrep_repl.Repl
module Master = Fieldrep_repl.Repl.Master
module Replica = Fieldrep_repl.Repl.Replica

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let seed_base =
  match Sys.getenv_opt "FIELDREP_TEST_SEED" with
  | Some s -> ( try int_of_string s with _ -> 0)
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Observation helpers (as in test_repl)                               *)

let observe db =
  let b = Buffer.create 4096 in
  List.iter
    (fun set ->
      Buffer.add_string b
        (Printf.sprintf "== set %s (%d)\n" set (Db.set_size db set));
      Db.scan db ~set (fun oid record ->
          Buffer.add_string b (Oid.to_string oid);
          List.iter
            (fun v ->
              Buffer.add_char b '|';
              Buffer.add_string b (Value.to_string v))
            (Db.user_values db ~set record);
          Buffer.add_char b '\n'))
    [ "S"; "R" ];
  Buffer.contents b

let disk_digest db =
  Pager.flush (Db.pager db);
  let disk = Pager.disk (Db.pager db) in
  Disk.file_ids disk
  |> List.sort compare
  |> List.map (fun id ->
         let n = Disk.page_count disk id in
         let b = Buffer.create 64 in
         for page = 0 to n - 1 do
           Buffer.add_string b
             (Digest.to_hex (Digest.bytes (Disk.dump_page disk ~file:id ~page)))
         done;
         (id, n, Digest.to_hex (Digest.string (Buffer.contents b))))

(* ------------------------------------------------------------------ *)
(* One chaos run                                                       *)

type node = {
  r : Replica.t;
  hung : bool ref;
  mutable m_fault : Transport.faults;  (* master -> replica direction *)
  mutable r_fault : Transport.faults;  (* replica -> master direction *)
  mutable old_link : Transport.t;  (* replica endpoint of the last link *)
}

let chaos_liveness =
  { Repl.heartbeat_every = 20; suspect_after = 200; dead_after = 400 }

let run_chaos seed =
  let seed = seed + seed_base in
  let rng = Splitmix.create (0xC4A0 + (seed * 131)) in
  let clk = Clock.manual () in
  let clock = Clock.of_manual clk in
  let events = ref 0 in
  let on_event _ = incr events in
  let ops_done = ref 0 in

  (* genesis master *)
  let built =
    Gen.build
      {
        Gen.default_spec with
        Gen.s_count = 24;
        sharing = 2;
        strategy = Params.Inplace;
        page_size = 1024;
        frames = 64;
        seed = 77 + seed;
        durable = true;
      }
  in
  let mdb = built.Gen.db in
  let old_wal_path = Wal.path (Option.get (Db.wal mdb)) in
  let img = Filename.temp_file "fieldrep_chaos" ".img" in
  Db.checkpoint mdb img;
  let m1 =
    Master.create
      ~mode:(Master.Async { buffer_bytes = 2048 })
      ~clock ~liveness:chaos_liveness ~on_event mdb
  in
  (* exactly-one-master-per-epoch ledger: every engine that ever acted as
     a master claims its epoch here *)
  let claims = ref [ (Master.epoch m1, "m1") ] in

  let arm_faults node k =
    Transport.seed_schedule ~p_drop:0.05 ~p_corrupt:0.04 ~p_duplicate:0.05
      ~p_hang:0.05 ~hang_for:3 node.m_fault
      ~seed:((seed * 31) + k);
    Transport.seed_schedule ~p_drop:0.04 ~p_duplicate:0.04 node.r_fault
      ~seed:((seed * 37) + k)
  in
  let disarm_faults node =
    Transport.seed_schedule node.m_fault ~seed:0;
    Transport.seed_schedule node.r_fault ~seed:0
  in

  let attach_to m node =
    let ma, rb, fa, fb = Transport.loopback () in
    Replica.reconnect node.r rb;
    node.old_link <- rb;
    node.m_fault <- fa;
    node.r_fault <- fb;
    ignore
      (Master.attach
         ~pump:(fun () ->
           if !(node.hung) then Clock.advance clk ~by:5
           else ignore (Replica.drain node.r))
         m ma)
  in
  let fresh_node m k =
    let ma, rb, fa, fb = Transport.loopback () in
    let r = Replica.connect ~clock ~liveness:chaos_liveness rb in
    let hung = ref false in
    ignore
      (Master.attach
         ~pump:(fun () ->
           if !hung then Clock.advance clk ~by:5 else ignore (Replica.drain r))
         m ma);
    ignore (Replica.drain r);
    let node = { r; hung; m_fault = fa; r_fault = fb; old_link = rb } in
    arm_faults node k;
    node
  in

  let a = fresh_node m1 1 in
  let b = fresh_node m1 2 in

  (* one write against [db], drawn from the seeded schedule — autocommit
     only, and never validation-failing, so any prefix is promotable *)
  let s_oids db =
    let acc = ref [] in
    Db.scan db ~set:"S" (fun oid _ -> acc := oid :: !acc);
    Array.of_list (List.rev !acc)
  in
  let write db oids =
    incr ops_done;
    let i = !ops_done in
    (match Splitmix.int rng 4 with
    | 0 ->
        ignore
          (Db.insert db ~set:"R"
             [
               Value.VInt (200_000 + i);
               Value.VString (String.make 65 'c');
               Value.VRef oids.(Splitmix.int rng (Array.length oids));
             ])
    | _ ->
        Db.update_field db ~set:"S"
          oids.(Splitmix.int rng (Array.length oids))
          ~field:"repfield"
          (Value.VString (Printf.sprintf "%020d" (i + (seed * 7)))));
    Clock.advance clk ~by:1
  in
  let drain_live nodes = List.iter (fun n -> ignore (Replica.drain n.r)) nodes in
  let beat m nodes =
    Master.tick m;
    drain_live nodes;
    List.iter (fun n -> Replica.tick n.r) nodes;
    Master.pump m
  in

  (* ---- phase 1: faulty steady state under the genesis master -------- *)
  let m1_oids = s_oids mdb in
  for i = 1 to 100 do
    write mdb m1_oids;
    if Splitmix.int rng 3 = 0 then Master.pump m1;
    if Splitmix.int rng 5 = 0 then beat m1 [ a; b ];
    (* a scripted partition of B mid-phase: the link dies, the master
       counts the death, B reconnects and catches up from the file *)
    if i = 60 then begin
      b.m_fault.Transport.disconnect_after <- 1;
      Master.pump m1;
      (* the next ship killed the link *)
      attach_to m1 b;
      arm_faults b 3
    end
  done;

  (* ---- the crash: unshipped writes, then the master goes silent ----- *)
  disarm_faults a;
  disarm_faults b;
  for _ = 1 to 10 do
    beat m1 [ a; b ]
  done;
  (* divergent history: appended to m1's log but never shipped (async
     buffers are not flushed before the "crash") *)
  for _ = 1 to 6 do
    write mdb m1_oids
  done;
  Clock.advance clk ~by:500;
  Replica.tick a.r;
  Replica.tick b.r;
  checkb "successor sees the master dead" true
    (Replica.master_state a.r = Repl.Dead);
  checkb "peer replica sees the master dead" true
    (Replica.master_state b.r = Repl.Dead);

  (* ---- failover: A promotes into epoch 1 ---------------------------- *)
  let new_wal = Filename.temp_file "fieldrep_chaos" ".wal" in
  Sys.remove new_wal;
  let fork = Replica.last_applied a.r in
  let m2 =
    Replica.promote ~mode:Master.Ack ~ack_deadline:100 ~clock
      ~liveness:chaos_liveness ~on_event a.r ~wal_path:new_wal
  in
  claims := (Master.epoch m2, "m2") :: !claims;
  let m2db = Replica.db a.r in
  checki "promotion entered epoch 1" 1 (Master.epoch m2);
  checkb "fork recorded" true (Int64.equal (Master.fork m2) fork);

  (* B re-wires to the new master (snapshot or tail, depending on how far
     it got before the crash) *)
  attach_to m2 b;
  ignore (Replica.drain b.r);
  arm_faults b 4;

  (* ---- zombie fencing: the deposed-to-be master keeps writing ------- *)
  for _ = 1 to 4 do
    write mdb m1_oids
  done;
  Master.pump m1;  (* ships stale-epoch traffic onto the old links *)
  let fenced =
    Replica.fence_link b.r b.old_link + Replica.fence_link a.r a.old_link
  in
  checkb "at least one zombie payload fenced" true (fenced > 0);
  Master.pump m1;  (* drains the Fenced replies *)
  checkb "zombie master deposed" true (Master.is_deposed m1);
  write mdb m1_oids;
  (* deposed: local writes continue but nothing ships *)
  Master.pump m1;
  checki "no post-deposition zombie traffic" 0
    (Replica.fence_link b.r b.old_link);

  (* ---- phase 2: ack-mode chaos under the new master ----------------- *)
  let m2_oids = s_oids m2db in
  for i = 1 to 60 do
    write m2db m2_oids;
    (* hang windows: B stalls, the ack deadline demotes it, commits keep
       their latency bound; B is re-promoted once it catches up *)
    if i = 20 || i = 40 then b.hung := true;
    if i = 25 || i = 45 then begin
      b.hung := false;
      disarm_faults b;
      for _ = 1 to 6 do
        Master.pump m2;
        ignore (Replica.drain b.r)
      done;
      arm_faults b (5 + i)
    end;
    if Splitmix.int rng 4 = 0 && not !(b.hung) then beat m2 [ b ]
  done;
  checkb "hung ack peer was demoted (bounded commits)" true
    ((Db.stats m2db).Stats.ack_demotions > 0);

  (* ---- the old master rejoins as a replica below the new epoch ------ *)
  let old_last =
    match List.rev (Wal.read_frames old_wal_path ~after:0L) with
    | (lsn, _) :: _ -> lsn
    | [] -> 0L
  in
  checkb "zombie history diverged past the fork" true
    (Int64.compare old_last fork > 0);
  let on_reset ~fork =
    Wal.truncate_file old_wal_path ~after:fork;
    Db.recover_replica ~wal_path:old_wal_path img
  in
  let ma3, rb3, fa3, fb3 = Transport.loopback () in
  let c_r =
    Replica.rejoin ~clock ~liveness:chaos_liveness ~on_reset
      ~db:(Db.recover_replica ~wal_path:old_wal_path img)
      ~last_applied:old_last rb3
  in
  let c_hung = ref false in
  ignore
    (Master.attach
       ~pump:(fun () ->
         if !c_hung then Clock.advance clk ~by:5
         else ignore (Replica.drain c_r))
       m2 ma3);
  let c =
    { r = c_r; hung = c_hung; m_fault = fa3; r_fault = fb3; old_link = rb3 }
  in
  ignore (Replica.drain c.r);
  arm_faults c 9;

  (* ---- phase 3: both replicas under chaos --------------------------- *)
  for _ = 1 to 40 do
    write m2db m2_oids;
    if Splitmix.int rng 3 = 0 then beat m2 [ b; c ]
  done;

  (* ---- heal and converge -------------------------------------------- *)
  disarm_faults b;
  disarm_faults c;
  for _ = 1 to 30 do
    Clock.advance clk ~by:1;
    Master.pump m2;
    drain_live [ b; c ]
  done;
  checkb "enough operations for a chaos run" true (!ops_done >= 200);

  (* every node ends on the new epoch, byte-identical to the master *)
  checki "B adopted epoch 1" 1 (Replica.epoch b.r);
  checki "C adopted epoch 1" 1 (Replica.epoch c.r);
  checki "epoch durable on the master" 1 (Db.epoch m2db);
  checkb "B at the master's lsn" true
    (Int64.equal (Replica.last_applied b.r) (Wal.last_lsn (Option.get (Db.wal m2db))));
  checkb "C at the master's lsn" true
    (Int64.equal (Replica.last_applied c.r) (Wal.last_lsn (Option.get (Db.wal m2db))));
  checks "B observation identical" (observe m2db) (observe (Replica.db b.r));
  checks "C observation identical" (observe m2db) (observe (Replica.db c.r));
  checkb "B pages byte-identical" true
    (disk_digest m2db = disk_digest (Replica.db b.r));
  checkb "C pages byte-identical" true
    (disk_digest m2db = disk_digest (Replica.db c.r));
  Db.check_integrity (Replica.db b.r);
  Db.check_integrity (Replica.db c.r);

  (* exactly one master per epoch, and exactly one not deposed *)
  let epochs = List.map fst !claims in
  checki "one master per epoch" (List.length epochs)
    (List.length (List.sort_uniq compare epochs));
  checkb "old master deposed, new master standing" true
    (Master.is_deposed m1 && not (Master.is_deposed m2));

  (* the self-healing bookkeeping fired *)
  let st1 = Db.stats mdb and st2 = Db.stats m2db in
  checkb "failover counted" true (st2.Stats.failovers >= 1);
  checkb "peer deaths counted" true
    (st1.Stats.peer_deaths + st2.Stats.peer_deaths
     + (Db.stats (Replica.db b.r)).Stats.peer_deaths
    >= 2);
  checkb "reconnects counted" true
    ((Db.stats (Replica.db b.r)).Stats.reconnects >= 1);
  checkb "events were logged" true (!events > 0);
  Sys.remove img

let test_seeded seed () = run_chaos seed

let () =
  Alcotest.run "chaos"
    [
      ( "seeded schedules",
        [
          Alcotest.test_case "seed 101" `Quick (test_seeded 101);
          Alcotest.test_case "seed 202" `Quick (test_seeded 202);
          Alcotest.test_case "seed 303" `Quick (test_seeded 303);
        ] );
    ]
