(* Batched physically-ordered propagation.

   The engine's page-batched propagation path must be a pure access-layer
   optimisation: identical final state to the per-object reference path,
   strictly fewer page reads on the paper's 1-level update mix, and a
   physical visit order that ascends by (file, page) so each fan-out
   touches every data page exactly once. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Pager = Fieldrep_storage.Pager
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Engine = Fieldrep_replication.Engine
module Params = Fieldrep_costmodel.Params
module Gen = Fieldrep_workload.Gen
module Mix = Fieldrep_workload.Mix
module Exec = Fieldrep_query.Exec
module Splitmix = Fieldrep_util.Splitmix

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* A deliberately small pool over an unclustered layout: index-order update
   targets are physically random, so the per-object path re-fetches pages
   the sorted path reads once. *)
let spec strategy seed =
  {
    Gen.default_spec with
    Gen.s_count = 400;
    sharing = 2;
    clustering = Params.Unclustered;
    strategy;
    frames = 12;
    seed;
  }

(* Canonical image of every stored byte that matters: raw records (user
   AND hidden values) of both sets, in physical order. *)
let observe db =
  let b = Buffer.create 8192 in
  List.iter
    (fun set ->
      Buffer.add_string b (Printf.sprintf "== %s (%d)\n" set (Db.set_size db set));
      Db.scan db ~set (fun oid record ->
          Buffer.add_string b (Oid.to_string oid);
          Array.iter
            (fun v ->
              Buffer.add_char b '|';
              Buffer.add_string b (Value.to_string v))
            record.Record.values;
          Buffer.add_char b '\n'))
    [ "S"; "R" ];
  Buffer.contents b

(* The same seeded 1-level update mix against a database, cold, returning
   the page reads it cost.  Identical specs + identical [qseed] produce
   identical query sequences, so two databases are directly comparable. *)
let run_update_mix built ~qseed ~queries =
  let db = built.Gen.db in
  let rng = Splitmix.create qseed in
  Pager.run_cold (Db.pager db) (fun () ->
      for _ = 1 to queries do
        ignore (Exec.replace db (Mix.update_query built rng ~update_sel:0.2))
      done);
  (Db.stats db).Stats.page_reads

let fewer_reads strategy () =
  let batched = Gen.build (spec strategy 21) in
  let reference = Gen.build (spec strategy 21) in
  Db.set_batching reference.Gen.db false;
  checkb "baseline build is batched" true (Db.batching batched.Gen.db);
  let r_batched = run_update_mix batched ~qseed:5 ~queries:6 in
  let r_reference = run_update_mix reference ~qseed:5 ~queries:6 in
  checkb
    (Printf.sprintf "strictly fewer reads (%d < %d)" r_batched r_reference)
    true
    (r_batched < r_reference);
  checks "identical final state" (observe reference.Gen.db) (observe batched.Gen.db);
  Db.check_integrity batched.Gen.db

(* ------------------------------------------------------------------ *)
(* Physical visit order                                                *)

(* One scalar update fanning out to many sources: the hidden-update hook
   must observe them in strictly ascending (file, page, slot) order, and
   the fan-out must span several pages for the ordering to mean anything. *)
let test_propagation_ascending_order () =
  let built =
    Gen.build
      { (spec Params.Inplace 3) with Gen.s_count = 48; sharing = 8; frames = 64 }
  in
  let db = built.Gen.db in
  let eng = Db.engine db in
  let visited = ref [] in
  let orig = eng.Engine.on_hidden_update in
  eng.Engine.on_hidden_update <-
    (fun set oid ~before ~after ->
      visited := oid :: !visited;
      orig set oid ~before ~after);
  let target = ref None in
  Db.scan db ~set:"S" (fun oid _ -> if !target = None then target := Some oid);
  let target = Option.get !target in
  Db.update_field db ~set:"S" target ~field:"repfield"
    (Value.VString (String.make built.Gen.spec.Gen.rep_field_bytes 'z'));
  let visited = List.rev !visited in
  checki "whole fan-out observed" built.Gen.spec.Gen.sharing (List.length visited);
  let pages =
    List.sort_uniq compare
      (List.map (fun o -> (o.Oid.file, o.Oid.page)) visited)
  in
  checkb "fan-out spans several pages" true (List.length pages >= 2);
  let rec ascending = function
    | a :: (b :: _ as rest) -> Oid.compare a b < 0 && ascending rest
    | [ _ ] | [] -> true
  in
  checkb "visited in ascending physical order" true (ascending visited);
  List.iter
    (fun src ->
      Alcotest.check
        (Alcotest.testable Value.pp Value.equal)
        "hidden copy refreshed"
        (Value.VString (String.make built.Gen.spec.Gen.rep_field_bytes 'z'))
        (Db.deref db ~set:"R" src "sref.repfield"))
    visited

(* ------------------------------------------------------------------ *)
(* Property: batching is invisible except in the I/O counters           *)

(* Aggregated over every property case: physical order must win overall.
   Per case the clock policy makes I/O order-sensitive in both directions
   (a sorted visit can evict a page the random order happened to keep), so
   individual cases only get a small slack. *)
let total_batched = ref 0
let total_reference = ref 0

let batching_invisible (seed, si) =
  let strategy =
    match si with
    | 0 -> Params.No_replication
    | 1 -> Params.Inplace
    | _ -> Params.Separate
  in
  let small s = { s with Gen.s_count = 200; frames = 10 } in
  let batched = Gen.build (small (spec strategy seed)) in
  let reference = Gen.build (small (spec strategy seed)) in
  Db.set_batching reference.Gen.db false;
  let r_batched = run_update_mix batched ~qseed:(seed + 1) ~queries:3 in
  let r_reference = run_update_mix reference ~qseed:(seed + 1) ~queries:3 in
  total_batched := !total_batched + r_batched;
  total_reference := !total_reference + r_reference;
  if observe batched.Gen.db <> observe reference.Gen.db then
    QCheck.Test.fail_report "batched and per-object states diverged";
  let slack = max 3 (r_reference / 20) in
  if r_batched > r_reference + slack then
    QCheck.Test.fail_reportf "batching cost extra reads: %d > %d + %d" r_batched
      r_reference slack;
  Db.check_integrity batched.Gen.db;
  true

let test_property_aggregate () =
  if !total_reference > 0 then
    checkb
      (Printf.sprintf "fewer reads in aggregate (%d < %d)" !total_batched
         !total_reference)
      true
      (!total_batched < !total_reference)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:6 ~name:"batched = per-object state, never more reads"
      (pair (int_bound 1000) (int_bound 2))
      batching_invisible;
  ]

let () =
  Alcotest.run "fieldrep_batch"
    [
      ( "update mix reads",
        [
          Alcotest.test_case "no replication" `Quick
            (fewer_reads Params.No_replication);
          Alcotest.test_case "in-place" `Quick (fewer_reads Params.Inplace);
          Alcotest.test_case "separate" `Quick (fewer_reads Params.Separate);
        ] );
      ( "visit order",
        [
          Alcotest.test_case "ascending (file, page)" `Quick
            test_propagation_ascending_order;
        ] );
      ( "properties",
        List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
        @ [
            Alcotest.test_case "fewer reads in aggregate" `Quick
              test_property_aggregate;
          ] );
    ]
