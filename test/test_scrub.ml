(* Page checksums, read-path fault injection, online scrubbing and
   self-repair.

   The matrix is the centrepiece: for every replication strategy, corruption
   is injected into every kind of derived page — inverted-path link pages,
   S' pages, and the hidden/replicated values themselves — and scrub must
   detect it, repair it, and leave the invariant checker happy.  Source
   fields are the counter-case: they are not derivable, so scrub must report
   them and leave them alone. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Disk = Fieldrep_storage.Disk
module Pager = Fieldrep_storage.Pager
module Heap_file = Fieldrep_storage.Heap_file
module Checksum = Fieldrep_storage.Checksum
module Wal = Fieldrep_wal.Wal
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Record = Fieldrep_model.Record
module Engine = Fieldrep_replication.Engine
module Store = Fieldrep_replication.Store
module Invariants = Fieldrep_replication.Invariants
module Scrub = Fieldrep_scrub.Scrub
module Gen = Fieldrep_workload.Gen
module Params = Fieldrep_costmodel.Params

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let value_testable = Alcotest.testable Value.pp Value.equal
let checkv = Alcotest.check value_testable

(* CI runs the suite under several seeds; corruption targets and database
   contents shift with it. *)
let seed_base =
  match Sys.getenv_opt "FIELDREP_TEST_SEED" with
  | Some s -> ( try int_of_string s with _ -> 0)
  | None -> 0

let tmp name ext =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      ("fieldrep_scrub_" ^ name ^ ext)
  in
  if Sys.file_exists path then Sys.remove path;
  path

(* ------------------------------------------------------------------ *)
(* Detection: the checksum layer                                       *)

let test_checksum_detects_bit_rot () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:128 stats in
  let f = Disk.create_file disk in
  let p = Disk.allocate_page disk f in
  Disk.write_page disk ~file:f ~page:p (Bytes.make 128 'd');
  let buf = Bytes.create 128 in
  Disk.read_page disk ~file:f ~page:p buf;
  checki "clean read passes" 0 stats.Stats.checksum_failures;
  Disk.corrupt_page disk ~file:f ~page:p [ 64 ];
  checkb "verify sees the rot" false (Disk.verify_page disk ~file:f ~page:p);
  (try
     Disk.read_page disk ~file:f ~page:p buf;
     Alcotest.fail "expected Corrupt_page"
   with Disk.Corrupt_page { file; page } ->
     checki "file identified" f file;
     checki "page identified" p page);
  checki "failure counted" 1 stats.Stats.checksum_failures;
  checkb "page quarantined" true (Disk.quarantined disk ~file:f ~page:p);
  (* Quarantine is sticky even though the bytes happen to verify again. *)
  Disk.corrupt_page disk ~file:f ~page:p [ 64 ];
  (try
     Disk.read_page disk ~file:f ~page:p buf;
     Alcotest.fail "expected Corrupt_page from quarantine"
   with Disk.Corrupt_page _ -> ());
  (* Rewriting with fresh content is the repair: it lifts the quarantine. *)
  Disk.write_page disk ~file:f ~page:p (Bytes.make 128 'r');
  Disk.read_page disk ~file:f ~page:p buf;
  checkb "healed" true (Bytes.get buf 0 = 'r')

let test_checksum_detects_torn_page () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:128 stats in
  let f = Disk.create_file disk in
  let p = Disk.allocate_page disk f in
  Disk.write_page disk ~file:f ~page:p (Bytes.make 128 'x');
  Disk.tear_page disk ~file:f ~page:p;
  checkb "torn page fails verification" false (Disk.verify_page disk ~file:f ~page:p);
  let buf = Bytes.create 128 in
  (try
     Disk.read_page disk ~file:f ~page:p buf;
     Alcotest.fail "expected Corrupt_page"
   with Disk.Corrupt_page _ -> ());
  checki "failure counted" 1 stats.Stats.checksum_failures

let test_fnv1a_known_values () =
  (* Cross-checked reference values for the 32-bit FNV-1a of "" and "a". *)
  checki "offset basis" 0x811c9dc5 (Checksum.fnv1a32 Bytes.empty 0 0);
  checki "fnv1a of 'a'" 0xe40c292c (Checksum.fnv1a32 (Bytes.of_string "a") 0 1)

(* ------------------------------------------------------------------ *)
(* Fault injection: armed failpoints                                   *)

let test_write_failpoint_count () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let f = Disk.create_file disk in
  let p = Disk.allocate_page disk f in
  let buf = Bytes.make 64 'w' in
  (* Persistent arming: the failpoint fires on two consecutive writes
     before disarming, unlike the default one-shot. *)
  Disk.set_failpoint ~count:2 disk ~after_writes:0;
  (try
     Disk.write_page disk ~file:f ~page:p buf;
     Alcotest.fail "expected first Crash"
   with Disk.Crash _ -> ());
  (try
     Disk.write_page disk ~file:f ~page:p buf;
     Alcotest.fail "expected second Crash"
   with Disk.Crash _ -> ());
  checkb "disarmed after both fires" true (Disk.writes_until_crash disk = None);
  Disk.write_page disk ~file:f ~page:p buf;
  checki "third write landed" 1 stats.Stats.page_writes

let test_read_failpoint_retry () =
  let pager = Pager.create ~page_size:256 ~frames:4 () in
  let disk = Pager.disk pager in
  let file = Pager.create_file pager in
  let p = Pager.new_page pager ~file in
  Pager.with_page_write pager ~file ~page:p (fun buf -> Bytes.set buf 0 'a');
  (* Transient: two injected errors, absorbed by the pool's bounded retry. *)
  Pager.run_cold pager (fun () -> ());
  Disk.set_read_failpoint ~count:2 disk ~after_reads:0;
  let c = Pager.with_page_read pager ~file ~page:p (fun buf -> Bytes.get buf 0) in
  checkb "read succeeded through retries" true (c = 'a');
  checki "both retries counted" 2 (Pager.stats pager).Stats.read_retries;
  (* Persistent: more errors than the retry budget — the error surfaces. *)
  Pager.run_cold pager (fun () -> ());
  Disk.set_read_failpoint ~count:5 disk ~after_reads:0;
  (try
     ignore (Pager.with_page_read pager ~file ~page:p (fun buf -> Bytes.get buf 0));
     Alcotest.fail "expected Read_error"
   with Disk.Read_error _ -> ());
  checki "budget exhausted after two retries" 2
    (Pager.stats pager).Stats.read_retries;
  Disk.clear_read_failpoint disk;
  let c = Pager.with_page_read pager ~file ~page:p (fun buf -> Bytes.get buf 0) in
  checkb "cleared failpoint reads fine" true (c = 'a')

let test_read_failpoint_intermittent () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let f = Disk.create_file disk in
  let p = Disk.allocate_page disk f in
  Disk.write_page disk ~file:f ~page:p (Bytes.make 64 'i');
  let buf = Bytes.create 64 in
  (* every:2 — every second read attempt fails, twice in total. *)
  Disk.set_read_failpoint ~count:2 ~every:2 disk ~after_reads:0;
  let outcomes =
    List.init 5 (fun _ ->
        try
          Disk.read_page disk ~file:f ~page:p buf;
          `Ok
        with Disk.Read_error _ -> `Err)
  in
  checkb "alternating failures then disarmed" true
    (outcomes = [ `Ok; `Err; `Ok; `Err; `Ok ])

(* ------------------------------------------------------------------ *)
(* WAL: the Scrub_repair record                                        *)

let test_wal_scrub_repair_roundtrip () =
  let path = tmp "wal" ".wal" in
  let w = Wal.open_ path in
  let r =
    Wal.Scrub_repair { rep_id = 3; source = { Oid.file = 4; page = 7; slot = 2 } }
  in
  ignore (Wal.append w r);
  Wal.close w;
  let w2 = Wal.open_ path in
  (match Wal.records w2 with
  | [ (_, r') ] -> checkb "record survives the codec" true (r = r')
  | l -> Alcotest.failf "expected one record, got %d" (List.length l));
  Wal.close w2;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* The corruption matrix                                               *)

type strat = S_inplace | S_separate | S_collapsed

let strat_name = function
  | S_inplace -> "in-place"
  | S_separate -> "separate"
  | S_collapsed -> "collapsed"

(* The paper's employee database with Emp1.dept.org.name replicated under
   the given strategy: a level-2 path, so it exercises link files at both
   levels (or a tagged collapsed link, or a level-1 link plus an S'
   file). *)
let build_employee strat =
  let db = Gen.employee_db ~seed:(7 + seed_base) () in
  (match strat with
  | S_inplace ->
      Db.replicate db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.org.name")
  | S_separate ->
      Db.replicate db ~strategy:Schema.Separate (Path.parse "Emp1.dept.org.name")
  | S_collapsed ->
      Db.replicate db
        ~options:{ Schema.default_options with Schema.collapse = true }
        ~strategy:Schema.Inplace
        (Path.parse "Emp1.dept.org.name"));
  Db.check_integrity db;
  db

(* Snapshot of every replicated read, for before/after comparison. *)
let snapshot db =
  let acc = ref [] in
  Db.scan db ~set:"Emp1" (fun oid _ ->
      acc := (oid, Db.deref db ~set:"Emp1" oid "dept.org.name") :: !acc);
  List.rev !acc

let assert_snapshot db expected =
  List.iter
    (fun (oid, v) -> checkv "replicated read intact" v (Db.deref db ~set:"Emp1" oid "dept.org.name"))
    expected

let scrub_and_verify db expected =
  let r = Db.scrub db in
  checkb "corruption detected" true (r.Scrub.checksum_failures >= 1);
  checkb "repairs performed" true (r.Scrub.repairs >= 1);
  checkb "nothing left quarantined" true (r.Scrub.quarantined = []);
  Db.check_integrity db;
  assert_snapshot db expected;
  (* A second scrub over the repaired database finds nothing to do, and
     the deep invariant check still passes after it ran. *)
  let r2 = Db.scrub db in
  checki "second scrub is clean" 0 r2.Scrub.checksum_failures;
  checki "second scrub repairs nothing" 0 r2.Scrub.repairs;
  Db.check_integrity db;
  assert_snapshot db expected

let corrupt_first_page db files =
  (* Flush and empty the pool first: cached frames would either mask the
     rot or overwrite it at the next flush. *)
  Pager.run_cold (Db.pager db) (fun () -> ());
  let disk = Pager.disk (Db.pager db) in
  let ps = Disk.page_size disk in
  List.iter
    (fun fid ->
      checkb "target file has pages" true (Disk.page_count disk fid > 0);
      Disk.corrupt_page disk ~file:fid ~page:0 [ ps / 64; ps / 2; ps - 7 ])
    files

let test_matrix_link_page strat () =
  let db = build_employee strat in
  let expected = snapshot db in
  let link_bindings, _ = Store.bindings (Db.engine db).Engine.store in
  checkb "strategy maintains link files" true (link_bindings <> []);
  let files = List.sort_uniq compare (List.map snd link_bindings) in
  corrupt_first_page db files;
  scrub_and_verify db expected

let test_matrix_sprime_page () =
  let db = build_employee S_separate in
  let expected = snapshot db in
  let _, sprime_bindings = Store.bindings (Db.engine db).Engine.store in
  checkb "separate strategy maintains an S' file" true (sprime_bindings <> []);
  corrupt_first_page db (List.map snd sprime_bindings);
  scrub_and_verify db expected

(* Logical corruption: the page checksums are fine, the derived values are
   wrong.  Scrub's recompute pass must still catch and repair it. *)
let overwrite_derived db strat =
  let env = Db.engine db in
  let schema = Db.schema db in
  let rep = List.hd (Schema.replications schema) in
  match strat with
  | S_inplace | S_collapsed ->
      let hf = env.Engine.file_of_set "Emp1" in
      let idx =
        Schema.hidden_index schema "Emp1" ~rep_id:rep.Schema.rep_id
          ~field:(Some "name")
      in
      let victim = ref Oid.nil in
      Heap_file.iter_oids hf (fun o -> if Oid.is_nil !victim then victim := o);
      let r = Record.decode (Heap_file.read hf !victim) in
      Heap_file.update hf !victim
        (Record.encode (Record.set_field r idx (Value.VString "__rotten__")))
  | S_separate ->
      let sp_file =
        Option.get (Store.sprime_file_opt env.Engine.store rep.Schema.rep_id)
      in
      let victim = ref Oid.nil in
      Heap_file.iter_oids sp_file (fun o -> if Oid.is_nil !victim then victim := o);
      let r = Record.decode (Heap_file.read sp_file !victim) in
      let r = Record.set_field r Engine.sprime_field_offset (Value.VString "__rotten__") in
      (* Also break the reference count, so the audit half is exercised. *)
      let r = Record.set_field r 0 (Value.VInt 99) in
      Heap_file.update sp_file !victim (Record.encode r)

let test_matrix_derived_values strat () =
  let db = build_employee strat in
  let expected = snapshot db in
  overwrite_derived db strat;
  checkb "corruption visible to the invariant checker" true
    (Invariants.errors (Db.engine db) <> []);
  let r = Db.scrub db in
  checkb "logical repairs performed" true (r.Scrub.repairs >= 1);
  Db.check_integrity db;
  assert_snapshot db expected

(* ------------------------------------------------------------------ *)
(* Source fields are not derivable                                     *)

let find_sub hay needle =
  let n = Bytes.length hay and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.equal (Bytes.sub_string hay i m) needle then Some i
    else go (i + 1)
  in
  go 0

let test_source_field_unrepairable () =
  let db = build_employee S_inplace in
  let env = Db.engine db in
  (* Give one Org a unique name so its bytes can be located on disk, and
     let the update propagate to every hidden copy. *)
  let org = ref Oid.nil in
  Db.scan db ~set:"Org" (fun oid _ -> if Oid.is_nil !org then org := oid);
  let org = !org in
  Db.update_field db ~set:"Org" org ~field:"name" (Value.VString "XMARKSTHESPOT");
  Db.check_integrity db;
  Pager.run_cold (Db.pager db) (fun () -> ());
  let disk = Pager.disk (Db.pager db) in
  let fid = Heap_file.file_id (env.Engine.file_of_set "Org") in
  let dump = Disk.dump_page disk ~file:fid ~page:org.Oid.page in
  let off =
    match find_sub dump "XMARKSTHESPOT" with
    | Some o -> o
    | None -> Alcotest.fail "marker string not found on the org page"
  in
  (* Flip one content byte: the record still decodes, but the stored name
     is now silently wrong — and there is no second copy to prove it. *)
  Disk.corrupt_page disk ~file:fid ~page:org.Oid.page [ off + 1 ];
  let r = Db.scrub db in
  checki "rot detected" 1 r.Scrub.checksum_failures;
  checkb "page salvaged, not quarantined" true (r.Scrub.quarantined = []);
  checkb "source corruption reported as unrepairable" true
    (List.exists
       (fun s ->
         let has sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has "source fields" || has "unrepairable")
       r.Scrub.unrepairable);
  (* The value was NOT silently "fixed": the flipped byte is still there,
     and the hidden copies follow the (authoritative, now corrupt) source. *)
  let name = List.hd (Db.user_values db ~set:"Org" (Db.get db ~set:"Org" org)) in
  checkb "corrupt source value left in place" true
    (not (Value.equal name (Value.VString "XMARKSTHESPOT")));
  Db.check_integrity db;
  let rs, _ = Db.referencers db ~source_set:"Dept" ~attr:"org" org in
  checkb "org still referenced" true (rs <> [])

let test_undecodable_data_page_stays_quarantined () =
  let db = build_employee S_inplace in
  let env = Db.engine db in
  Pager.run_cold (Db.pager db) (fun () -> ());
  let disk = Pager.disk (Db.pager db) in
  let fid = Heap_file.file_id (env.Engine.file_of_set "Emp1") in
  (* Shred the page header: the slot directory itself is garbage, no
     record can be trusted, the page must stay fenced off. *)
  Disk.corrupt_page disk ~file:fid ~page:0 [ 0; 1; 2; 3; 4; 5 ];
  let r = Db.scrub db in
  checki "rot detected" 1 r.Scrub.checksum_failures;
  checkb "page stays quarantined" true (List.mem (fid, 0) r.Scrub.quarantined);
  checkb "reported unrepairable" true (r.Scrub.unrepairable <> []);
  (try
     ignore
       (Pager.with_page_read (Db.pager db) ~file:fid ~page:0 (fun b ->
            Bytes.get b 0));
     Alcotest.fail "expected Corrupt_page"
   with Disk.Corrupt_page _ -> ())

(* ------------------------------------------------------------------ *)
(* End to end: degrade, scrub, repair, crash, recover                  *)

let test_end_to_end_degraded_then_repaired () =
  let img = tmp "e2e" ".img" in
  let built =
    Gen.build
      {
        Gen.default_spec with
        Gen.s_count = 30;
        sharing = 2;
        strategy = Params.Separate;
        page_size = 1024;
        frames = 32;
        seed = 13 + seed_base;
        durable = true;
      }
  in
  let db = built.Gen.db in
  Db.checkpoint db img;
  let r_oids = ref [] in
  Db.scan db ~set:"R" (fun oid _ -> r_oids := oid :: !r_oids);
  let r_oids = List.rev !r_oids in
  let expected =
    List.map (fun r -> (r, Db.deref db ~set:"R" r "sref.repfield")) r_oids
  in
  checkb "reads are replica-served before corruption" true
    (Db.deref_would_join db ~set:"R" "sref.repfield" = 1);
  (* Bit-rot on every S' page, with the buffer pool emptied so the next
     read really hits the disk. *)
  Pager.run_cold (Db.pager db) (fun () -> ());
  let disk = Pager.disk (Db.pager db) in
  let _, sprime_bindings = Store.bindings (Db.engine db).Engine.store in
  let sp_fid = snd (List.hd sprime_bindings) in
  let sp_pages = Disk.page_count disk sp_fid in
  for page = 0 to sp_pages - 1 do
    Disk.corrupt_page disk ~file:sp_fid ~page [ 11; 19 ]
  done;
  (* Degraded reads: every query still answers, via the functional join
     over the authoritative source objects. *)
  let degraded_before = (Db.stats db).Stats.degraded_reads in
  List.iter
    (fun (r, v) -> checkv "degraded read still correct" v (Db.deref db ~set:"R" r "sref.repfield"))
    expected;
  checkb "fallback counted" true ((Db.stats db).Stats.degraded_reads > degraded_before);
  (* Scrub: detect, rebuild the S' file, re-verify. *)
  let report = Db.scrub db in
  checkb "all S' pages failed their checksums" true
    (report.Scrub.checksum_failures >= sp_pages);
  checkb "repairs performed" true (report.Scrub.repairs >= 1);
  checkb "nothing quarantined" true (report.Scrub.quarantined = []);
  Db.check_integrity db;
  let degraded_after_scrub = (Db.stats db).Stats.degraded_reads in
  List.iter
    (fun (r, v) -> checkv "replica-served read restored" v (Db.deref db ~set:"R" r "sref.repfield"))
    expected;
  checki "no more degraded reads" degraded_after_scrub
    (Db.stats db).Stats.degraded_reads;
  (* The repairs were WAL-logged: crash now and recover from the
     checkpoint — replay must converge back to a clean, repaired state. *)
  Wal.close (Option.get (Db.wal db));
  let db2 = Db.recover img in
  Db.check_integrity db2;
  List.iter
    (fun (r, v) -> checkv "repair survives recovery" v (Db.deref db2 ~set:"R" r "sref.repfield"))
    expected;
  Sys.remove img

(* A scrub on a durable database logs Scrub_repair records. *)
let test_scrub_repairs_are_logged () =
  let built =
    Gen.build
      {
        Gen.default_spec with
        Gen.s_count = 20;
        sharing = 2;
        strategy = Params.Inplace;
        page_size = 1024;
        frames = 32;
        seed = 29 + seed_base;
        durable = true;
      }
  in
  let db = built.Gen.db in
  let link_bindings, _ = Store.bindings (Db.engine db).Engine.store in
  corrupt_first_page db (List.sort_uniq compare (List.map snd link_bindings));
  let before = Wal.appended (Option.get (Db.wal db)) in
  let r = Db.scrub db in
  checkb "repairs performed" true (r.Scrub.repairs >= 1);
  checkb "each repair hit the log" true
    (Wal.appended (Option.get (Db.wal db)) > before);
  Db.check_integrity db

let () =
  Alcotest.run "fieldrep_scrub"
    [
      ( "detection",
        [
          Alcotest.test_case "bit rot" `Quick test_checksum_detects_bit_rot;
          Alcotest.test_case "torn page" `Quick test_checksum_detects_torn_page;
          Alcotest.test_case "fnv1a vectors" `Quick test_fnv1a_known_values;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "write failpoint count" `Quick test_write_failpoint_count;
          Alcotest.test_case "read retry" `Quick test_read_failpoint_retry;
          Alcotest.test_case "intermittent reads" `Quick test_read_failpoint_intermittent;
        ] );
      ( "wal",
        [
          Alcotest.test_case "scrub_repair codec" `Quick test_wal_scrub_repair_roundtrip;
        ] );
      ( "scrub matrix",
        List.concat_map
          (fun strat ->
            [
              Alcotest.test_case
                (strat_name strat ^ ": link page rot")
                `Quick (test_matrix_link_page strat);
              Alcotest.test_case
                (strat_name strat ^ ": derived values")
                `Quick (test_matrix_derived_values strat);
            ])
          [ S_inplace; S_separate; S_collapsed ]
        @ [ Alcotest.test_case "separate: S' page rot" `Quick test_matrix_sprime_page ]
      );
      ( "unrepairable",
        [
          Alcotest.test_case "source field reported, not fixed" `Quick
            test_source_field_unrepairable;
          Alcotest.test_case "undecodable page quarantined" `Quick
            test_undecodable_data_page_stays_quarantined;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "degrade, scrub, recover" `Quick
            test_end_to_end_degraded_then_repaired;
          Alcotest.test_case "repairs are logged" `Quick test_scrub_repairs_are_logged;
        ] );
    ]
