(* Master/replica streaming replication.

   Everything runs over the deterministic in-process loopback transport
   (plus one socketpair smoke test): a master Db ships WAL frames as its
   log syncs them, replicas apply them through the streaming redo path and
   serve reads.  The fault tests inject drop/duplicate/corrupt/truncate
   and mid-commit disconnects, then prove the replica converges to a state
   byte-identical to the master's. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Disk = Fieldrep_storage.Disk
module Pager = Fieldrep_storage.Pager
module Wal = Fieldrep_wal.Wal
module Recovery = Fieldrep_wal.Recovery
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Key = Fieldrep_btree.Key
module Params = Fieldrep_costmodel.Params
module Gen = Fieldrep_workload.Gen
module Splitmix = Fieldrep_util.Splitmix
module Wire = Fieldrep_util.Wire
module Proto = Fieldrep_repl.Proto
module Transport = Fieldrep_repl.Transport
module Clock = Fieldrep_repl.Clock
module Repl = Fieldrep_repl.Repl
module Master = Fieldrep_repl.Repl.Master
module Replica = Fieldrep_repl.Repl.Replica
module Path = Fieldrep_model.Path

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* CI re-runs the fault tests under several fixed seeds by exporting
   FIELDREP_TEST_SEED; the offset perturbs the generated database and the
   fuzzed op/fault schedule. *)
let seed_base =
  match Sys.getenv_opt "FIELDREP_TEST_SEED" with
  | Some s -> ( try int_of_string s with _ -> 0)
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                     *)

let build_master ?(s_count = 30) ?(seed = 5) () =
  let built =
    Gen.build
      {
        Gen.default_spec with
        Gen.s_count;
        sharing = 2;
        strategy = Params.Inplace;
        page_size = 1024;
        frames = 64;
        seed = seed + seed_base;
        durable = true;
      }
  in
  built.Gen.db

let s_oids db =
  let acc = ref [] in
  Db.scan db ~set:"S" (fun oid _ -> acc := oid :: !acc);
  Array.of_list (List.rev !acc)

let r_oids db =
  let acc = ref [] in
  Db.scan db ~set:"R" (fun oid _ -> acc := oid :: !acc);
  Array.of_list (List.rev !acc)

(* Canonical user-visible observation (sets, indexes, replicated reads):
   two databases in the same state produce the same string. *)
let observe db =
  let b = Buffer.create 4096 in
  List.iter
    (fun set ->
      Buffer.add_string b (Printf.sprintf "== set %s (%d)\n" set (Db.set_size db set));
      Db.scan db ~set (fun oid record ->
          Buffer.add_string b (Oid.to_string oid);
          List.iter
            (fun v ->
              Buffer.add_char b '|';
              Buffer.add_string b (Value.to_string v))
            (Db.user_values db ~set record);
          Buffer.add_char b '\n'))
    [ "S"; "R" ];
  List.iter
    (fun index ->
      Buffer.add_string b ("== index " ^ index ^ "\n");
      Db.index_range db ~index ~lo:Key.min_int_key ~hi:(Key.Int max_int) ~init:()
        ~f:(fun () k oid ->
          Buffer.add_string b
            (Printf.sprintf "%s->%s\n" (Key.to_string k) (Oid.to_string oid))))
    [ Gen.r_index; Gen.s_index ];
  Buffer.add_string b "== derefs\n";
  Db.scan db ~set:"R" (fun oid _ ->
      Buffer.add_string b (Value.to_string (Db.deref db ~set:"R" oid "sref.repfield"));
      Buffer.add_char b '\n');
  Buffer.contents b

(* Byte-level identity: flush both buffer pools, then digest every page of
   every disk file.  The replica restores the master's checkpoint pages
   and replays deterministically, so even the physical layout matches. *)
let disk_digest db =
  Pager.flush (Db.pager db);
  let disk = Pager.disk (Db.pager db) in
  Disk.file_ids disk
  |> List.sort compare
  |> List.map (fun id ->
         let n = Disk.page_count disk id in
         let b = Buffer.create 64 in
         for page = 0 to n - 1 do
           Buffer.add_string b
             (Digest.to_hex (Digest.bytes (Disk.dump_page disk ~file:id ~page)))
         done;
         (id, n, Digest.to_hex (Digest.string (Buffer.contents b))))

let check_converged ?(what = "replica") master_db replica_db =
  checks (what ^ " observation identical") (observe master_db)
    (observe replica_db);
  checkb
    (what ^ " pages byte-identical")
    true
    (disk_digest master_db = disk_digest replica_db)

(* Drive an in-process master/replica pair until traffic dries up: flush
   buffers and acks both ways.  Several rounds, because a resend costs a
   full round-trip (replica asks, master re-ships, replica applies). *)
let converge ?(rounds = 4) m r =
  for _ = 1 to rounds do
    Master.pump m;
    ignore (Replica.drain r)
  done;
  Master.pump m

let connect_pair ?mode mdb =
  let m = Master.create ?mode mdb in
  let ma, rb, fa, fb = Transport.loopback () in
  let r = Replica.connect rb in
  let _peer = Master.attach ~pump:(fun () -> ignore (Replica.drain r)) m ma in
  ignore (Replica.drain r);
  (* the bootstrap snapshot *)
  (m, r, fa, fb)

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                      *)

let proto_samples =
  [
    Proto.Hello { last_lsn = 0L };
    Proto.Hello { last_lsn = 123456789L };
    Proto.Snapshot { lsn = 42L; bytes = 9_999L; image = String.make 100_000 'i' };
    Proto.Frames [ Bytes.of_string "abc"; Bytes.create 0; Bytes.make 70_000 'f' ];
    Proto.Commit { lsn = 7L; bytes = 1234L };
    Proto.Ack { lsn = 7L };
    Proto.Resend { after = 3L };
    Proto.Ping { lsn = 88L; bytes = 4321L };
    Proto.Pong { lsn = 88L };
    Proto.Fenced;
    Proto.Reset { fork = 55L };
  ]

let test_proto_roundtrip () =
  List.iter
    (fun msg ->
      List.iter
        (fun epoch ->
          let back_epoch, back = Proto.decode (Proto.encode ~epoch msg) in
          checkb
            (Format.asprintf "%a survives the codec" Proto.pp msg)
            true
            (msg = back && epoch = back_epoch))
        [ 0; 1; 777 ])
    proto_samples;
  try
    ignore (Proto.encode ~epoch:(-1) Proto.Fenced);
    Alcotest.fail "negative epoch encoded"
  with Invalid_argument _ -> ()

let test_proto_rejects_corruption () =
  List.iter
    (fun msg ->
      let s = Proto.encode ~epoch:3 msg in
      (* flip one byte somewhere in the middle *)
      let b = Bytes.of_string s in
      let i = Bytes.length b / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      (try
         ignore (Proto.decode (Bytes.to_string b));
         Alcotest.fail "corrupt message decoded"
       with Wire.Corrupt _ -> ());
      (* truncate *)
      (try
         ignore (Proto.decode (String.sub s 0 (String.length s / 2)));
         Alcotest.fail "truncated message decoded"
       with Wire.Corrupt _ -> ());
      (* trailing garbage *)
      try
        ignore (Proto.decode (s ^ "x"));
        Alcotest.fail "trailing garbage decoded"
      with Wire.Corrupt _ -> ())
    proto_samples

let test_wal_frame_codec () =
  let record = Wal.Insert { set = "S"; values = [ Value.VInt 1 ] } in
  let frame = Wal.encode_frame 9L record in
  let lsn, back = Wal.decode_frame frame in
  checkb "frame roundtrips" true (Int64.equal lsn 9L && back = record);
  let b = Bytes.copy frame in
  Bytes.set b (Bytes.length b - 1) 'x';
  (try
     ignore (Wal.decode_frame b);
     Alcotest.fail "corrupt frame decoded"
   with Wire.Corrupt _ -> ());
  try
    ignore (Wal.decode_frame (Bytes.sub frame 0 (Bytes.length frame - 2)));
    Alcotest.fail "truncated frame decoded"
  with Wire.Corrupt _ -> ()

let test_read_frames () =
  let path = Filename.temp_file "fieldrep_repl_test" ".wal" in
  Sys.remove path;
  let w = Wal.open_ path in
  let records =
    List.init 5 (fun i -> Wal.Insert { set = "S"; values = [ Value.VInt i ] })
  in
  List.iter (fun r -> ignore (Wal.append w r)) records;
  Wal.sync w;
  let all = Wal.read_frames path ~after:0L in
  checki "all frames read back" 5 (List.length all);
  List.iteri
    (fun i (lsn, frame) ->
      let flsn, record = Wal.decode_frame frame in
      checkb "frame is self-consistent" true
        (Int64.equal lsn flsn && Int64.equal lsn (Int64.of_int (i + 1)));
      checkb "record matches" true (record = List.nth records i))
    all;
  let tail = Wal.read_frames path ~after:3L in
  checki "tail after 3" 2 (List.length tail);
  checkb "tail starts at 4" true (Int64.equal (fst (List.hd tail)) 4L);
  checki "missing file is empty" 0
    (List.length (Wal.read_frames (path ^ ".nope") ~after:0L));
  Wal.close w;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Transport                                                           *)

let test_loopback_faults () =
  let a, b, fa, _fb = Transport.loopback () in
  a.Transport.send "one";
  checkb "delivered" true (b.Transport.recv ~block:false = Some "one");
  fa.Transport.drop <- 1;
  a.Transport.send "lost";
  a.Transport.send "kept";
  checkb "drop loses exactly one" true (b.Transport.recv ~block:false = Some "kept");
  fa.Transport.duplicate <- 1;
  a.Transport.send "twice";
  checkb "dup 1" true (b.Transport.recv ~block:false = Some "twice");
  checkb "dup 2" true (b.Transport.recv ~block:false = Some "twice");
  fa.Transport.corrupt <- 1;
  a.Transport.send "payload";
  checkb "corrupted in flight" true
    (match b.Transport.recv ~block:false with
    | Some s -> s <> "payload" && String.length s = 7
    | None -> false);
  fa.Transport.truncate <- 1;
  a.Transport.send "12345678";
  checkb "truncated to half" true (b.Transport.recv ~block:false = Some "1234");
  fa.Transport.disconnect_after <- 1;
  a.Transport.send "last";
  (try
     a.Transport.send "never";
     Alcotest.fail "send on dying link succeeded"
   with Transport.Disconnected -> ());
  checkb "delivered before death is readable" true
    (b.Transport.recv ~block:false = Some "last");
  try
    ignore (b.Transport.recv ~block:false);
    Alcotest.fail "recv on dead drained link succeeded"
  with Transport.Disconnected -> ()

let test_socket_transport () =
  let sa, sb = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let a = Transport.of_socket ~label:"test:a" sa in
  let b = Transport.of_socket ~label:"test:b" sb in
  checkb "empty socket: no payload" true (b.Transport.recv ~block:false = None);
  let msg = Proto.encode ~epoch:0 (Proto.Frames [ Bytes.make 10_000 'f' ]) in
  a.Transport.send msg;
  a.Transport.send (Proto.encode ~epoch:2 (Proto.Commit { lsn = 3L; bytes = 64L }));
  checkb "payload survives the socket" true (b.Transport.recv ~block:true = Some msg);
  checkb "framing separates messages" true
    (match b.Transport.recv ~block:false with
    | Some s -> Proto.decode s = (2, Proto.Commit { lsn = 3L; bytes = 64L })
    | None -> false);
  a.Transport.close ();
  (try
     ignore (b.Transport.recv ~block:true);
     Alcotest.fail "recv past EOF succeeded"
   with Transport.Disconnected -> ());
  b.Transport.close ()

(* Regression: the socket receiver must reassemble a frame that arrives
   one byte at a time — including a split length prefix.  The old reader
   blocked (or failed) on a partial prefix even with [block:false]. *)
let test_socket_byte_at_a_time () =
  let sa, sb = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let b = Transport.of_socket ~label:"partial:b" sb in
  let payload = Proto.encode ~epoch:3 (Proto.Commit { lsn = 9L; bytes = 512L }) in
  let len = String.length payload in
  let framed = Bytes.create (4 + len) in
  Bytes.set_int32_le framed 0 (Int32.of_int len);
  Bytes.blit_string payload 0 framed 4 len;
  for i = 0 to 4 + len - 1 do
    checkb "no message while the frame is incomplete" true
      (b.Transport.recv ~block:false = None);
    ignore (Unix.write sa framed i 1)
  done;
  checkb "frame completes on the last byte" true
    (b.Transport.recv ~block:false = Some payload);
  checkb "nothing trailing" true (b.Transport.recv ~block:false = None);
  (* two frames coalesced into one kernel write split messages correctly *)
  let p2 = Proto.encode ~epoch:1 (Proto.Ack { lsn = 4L }) in
  let frame_of p =
    let fp = Bytes.create (4 + String.length p) in
    Bytes.set_int32_le fp 0 (Int32.of_int (String.length p));
    Bytes.blit_string p 0 fp 4 (String.length p);
    fp
  in
  let both = Bytes.cat (frame_of p2) (frame_of p2) in
  ignore (Unix.write sa both 0 (Bytes.length both));
  checkb "first of coalesced pair" true (b.Transport.recv ~block:false = Some p2);
  checkb "second of coalesced pair" true (b.Transport.recv ~block:false = Some p2);
  Unix.close sa;
  b.Transport.close ()

(* ------------------------------------------------------------------ *)
(* Bootstrap and streaming                                             *)

let test_bootstrap_snapshot () =
  let mdb = build_master () in
  let m, r, _, _ = connect_pair mdb in
  let rdb = Replica.db r in
  checkb "replica flag set" true (Db.is_replica rdb);
  checkb "master flag clear" true (not (Db.is_replica mdb));
  checkb "bootstrap lsn matches the log" true
    (Int64.equal (Replica.last_applied r)
       (Wal.last_lsn (Option.get (Db.wal mdb))));
  check_converged ~what:"bootstrapped replica" mdb rdb;
  ignore m

let test_async_streaming () =
  let mdb = build_master () in
  let m, r, _, _ = connect_pair mdb in
  let ss = s_oids mdb and rs = r_oids mdb in
  (* autocommit traffic *)
  Db.update_field mdb ~set:"S" ss.(0) ~field:"repfield"
    (Value.VString (String.make 20 'z'));
  ignore
    (Db.insert mdb ~set:"R"
       [ Value.VInt 7777; Value.VString (String.make 65 'q'); Value.VRef ss.(1) ]);
  (* a committed transaction *)
  let tx = Db.begin_txn mdb in
  Db.update_field ~txn:tx mdb ~set:"S" ss.(2) ~field:"repfield"
    (Value.VString (String.make 20 'y'));
  Db.update_field ~txn:tx mdb ~set:"R" rs.(0) ~field:"field_r" (Value.VInt 100_000);
  Db.commit mdb tx;
  (* an aborted transaction: compensations ship too *)
  let tx = Db.begin_txn mdb in
  Db.update_field ~txn:tx mdb ~set:"S" ss.(3) ~field:"repfield"
    (Value.VString (String.make 20 'w'));
  Db.abort mdb tx;
  converge m r;
  check_converged mdb (Replica.db r);
  checkb "replica applied frames" true
    ((Db.stats (Replica.db r)).Stats.frames_applied > 0);
  checkb "master shipped frames" true ((Db.stats mdb).Stats.frames_shipped > 0)

let test_abort_marker_stream () =
  let mdb = build_master () in
  let m, r, _, _ = connect_pair mdb in
  let ss = s_oids mdb in
  (* Deleting a still-referenced S object fails validation on the master
     AFTER its record hit the log; the abort marker rescinds it.  The
     replica applies the record, fails identically, and the marker clears
     the failed slot. *)
  (try
     Db.delete mdb ~set:"S" ss.(0);
     Alcotest.fail "expected a validation failure"
   with Invalid_argument _ -> ());
  Db.update_field mdb ~set:"S" ss.(0) ~field:"repfield"
    (Value.VString (String.make 20 'k'));
  converge m r;
  check_converged ~what:"post-abort replica" mdb (Replica.db r)

let test_ack_mode_blocks () =
  let mdb = build_master () in
  let m, r, _, _ = connect_pair ~mode:Master.Ack mdb in
  let ss = s_oids mdb in
  let acks0 = (Db.stats mdb).Stats.acks_waited in
  Db.update_field mdb ~set:"S" ss.(0) ~field:"repfield"
    (Value.VString (String.make 20 'a'));
  (* The autocommit sync blocked until the replica acknowledged: the
     replica is already caught up, with no pump needed afterwards. *)
  checkb "replica at master lsn right after the commit" true
    (Int64.equal (Replica.last_applied r)
       (Wal.last_lsn (Option.get (Db.wal mdb))));
  checkb "a commit barrier waited" true ((Db.stats mdb).Stats.acks_waited > acks0);
  let tx = Db.begin_txn mdb in
  Db.update_field ~txn:tx mdb ~set:"S" ss.(1) ~field:"repfield"
    (Value.VString (String.make 20 'b'));
  Db.commit mdb tx;
  checkb "txn commit also waited" true
    (Int64.equal (Replica.last_applied r)
       (Wal.last_lsn (Option.get (Db.wal mdb))));
  check_converged ~what:"ack replica" mdb (Replica.db r);
  ignore m

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_replica_read_only () =
  let mdb = build_master () in
  let _m, r, _, _ = connect_pair mdb in
  let rdb = Replica.db r in
  let ss = s_oids rdb in
  let expect_readonly what f =
    try
      f ();
      Alcotest.fail (what ^ " succeeded on a replica")
    with Invalid_argument msg ->
      checkb (what ^ " names the replica") true (contains msg "read-only replica")
  in
  expect_readonly "insert" (fun () ->
      ignore
        (Db.insert rdb ~set:"R"
           [ Value.VInt 1; Value.VString "x"; Value.VRef ss.(0) ]));
  expect_readonly "update" (fun () ->
      Db.update_field rdb ~set:"S" ss.(0) ~field:"repfield" (Value.VString "x"));
  expect_readonly "delete" (fun () -> Db.delete rdb ~set:"S" ss.(0));
  expect_readonly "begin_txn" (fun () -> ignore (Db.begin_txn rdb));
  expect_readonly "ddl" (fun () ->
      Db.define_type rdb (Ty.make ~name:"X" [ { Ty.fname = "a"; ftype = Ty.Scalar Ty.SInt } ]));
  expect_readonly "scrub" (fun () -> ignore (Db.scrub rdb));
  expect_readonly "checkpoint" (fun () -> Db.checkpoint rdb "/dev/null");
  (* every write entry point added with online maintenance *)
  expect_readonly "replicate" (fun () ->
      Db.replicate rdb ~strategy:Schema.Separate (Path.parse "R.sref.field_s"));
  expect_readonly "unreplicate" (fun () ->
      Db.unreplicate rdb (Path.parse "R.sref.repfield"));
  expect_readonly "maint_step" (fun () -> ignore (Db.maint_step rdb));
  expect_readonly "maint_drain" (fun () -> Db.maint_drain rdb);
  expect_readonly "build_index" (fun () ->
      Db.build_index rdb ~name:"ix_ro" ~set:"S" ~field:"field_s" ~clustered:false);
  (* reads keep working *)
  checkb "reads serve" true
    (Db.deref rdb ~set:"R" (r_oids rdb).(0) "sref.repfield" <> Value.VNull)

(* ------------------------------------------------------------------ *)
(* Wire faults                                                         *)

let mutate_some mdb ~seed ~ops =
  let rng = Splitmix.create (0x5EED + seed) in
  let ss = s_oids mdb in
  for i = 1 to ops do
    let s = ss.(Splitmix.int rng (Array.length ss)) in
    Db.update_field mdb ~set:"S" s ~field:"repfield"
      (Value.VString (Printf.sprintf "%020d" (i * 7 + seed)))
  done

let test_corrupt_frame_resend () =
  let mdb = build_master () in
  let m, r, fa, _ = connect_pair mdb in
  mutate_some mdb ~seed:1 ~ops:5;
  fa.Transport.corrupt <- 1;
  (* the next shipped Frames message is damaged in flight *)
  converge m r;
  check_converged ~what:"post-corruption replica" mdb (Replica.db r)

let test_drop_and_duplicate () =
  let mdb = build_master () in
  let m, r, fa, fb = connect_pair mdb in
  mutate_some mdb ~seed:2 ~ops:4;
  fa.Transport.drop <- 1;
  converge m r;
  check_converged ~what:"post-drop replica" mdb (Replica.db r);
  mutate_some mdb ~seed:3 ~ops:4;
  fa.Transport.duplicate <- 1;
  fb.Transport.duplicate <- 1;
  converge m r;
  check_converged ~what:"post-duplicate replica" mdb (Replica.db r)

let test_truncated_frame_resend () =
  let mdb = build_master () in
  let m, r, fa, _ = connect_pair mdb in
  mutate_some mdb ~seed:4 ~ops:4;
  fa.Transport.truncate <- 1;
  converge m r;
  check_converged ~what:"post-truncation replica" mdb (Replica.db r)

let test_disconnect_mid_commit_and_rejoin () =
  let mdb = build_master () in
  let m, r, fa, _ = connect_pair mdb in
  mutate_some mdb ~seed:5 ~ops:6;
  converge m r;
  let rdb_before = Replica.db r in
  mutate_some mdb ~seed:6 ~ops:6;
  (* The link dies mid-commit: the Frames message is delivered, the Commit
     barrier right behind it is lost with the link. *)
  fa.Transport.disconnect_after <- 1;
  Master.pump m;
  ignore (Replica.drain r);
  checkb "master marked the peer dead" true (Master.peer_count m = 0);
  (* the master keeps taking writes while the replica is gone *)
  mutate_some mdb ~seed:7 ~ops:6;
  (* Rejoin on a fresh transport: Hello carries the replica's position, so
     the master ships only the missing tail — no new snapshot. *)
  let ma2, rb2, _, _ = Transport.loopback () in
  Replica.reconnect r rb2;
  ignore (Master.attach ~pump:(fun () -> ignore (Replica.drain r)) m ma2);
  converge m r;
  checkb "same database instance (no re-bootstrap)" true (Replica.db r == rdb_before);
  checki "rejoined peer live" 1 (Master.peer_count m);
  check_converged ~what:"rejoined replica" mdb (Replica.db r)

let test_fuzzed_faults_converge () =
  let mdb = build_master ~s_count:24 ~seed:9 () in
  let m, r, fa, fb = connect_pair mdb in
  let rng = Splitmix.create (0xFA17 + seed_base) in
  let ss = s_oids mdb in
  for i = 1 to 120 do
    (match Splitmix.int rng 10 with
    | 0 ->
        (* a write that fails validation: exercises abort markers *)
        (try Db.delete mdb ~set:"S" ss.(Splitmix.int rng (Array.length ss))
         with Invalid_argument _ -> ())
    | 1 | 2 ->
        ignore
          (Db.insert mdb ~set:"R"
             [
               Value.VInt (100_000 + i);
               Value.VString (String.make 65 'n');
               Value.VRef ss.(Splitmix.int rng (Array.length ss));
             ])
    | 3 | 4 | 5 when Splitmix.int rng 2 = 0 ->
        let tx = Db.begin_txn mdb in
        Db.update_field ~txn:tx mdb ~set:"S"
          ss.(Splitmix.int rng (Array.length ss))
          ~field:"repfield"
          (Value.VString (Printf.sprintf "%020d" i));
        if Splitmix.int rng 3 = 0 then Db.abort mdb tx else Db.commit mdb tx
    | _ ->
        Db.update_field mdb ~set:"S"
          ss.(Splitmix.int rng (Array.length ss))
          ~field:"repfield"
          (Value.VString (Printf.sprintf "%020d" (i + 1_000))));
    (* sprinkle wire faults *)
    (match Splitmix.int rng 12 with
    | 0 -> fa.Transport.corrupt <- fa.Transport.corrupt + 1
    | 1 -> fa.Transport.drop <- fa.Transport.drop + 1
    | 2 -> fa.Transport.duplicate <- fa.Transport.duplicate + 1
    | 3 -> fa.Transport.truncate <- fa.Transport.truncate + 1
    | 4 -> fb.Transport.drop <- fb.Transport.drop + 1
    | _ -> ());
    if Splitmix.int rng 4 = 0 then begin
      Master.pump m;
      ignore (Replica.drain r)
    end
  done;
  (* heal the wire and settle *)
  fa.Transport.corrupt <- 0;
  fa.Transport.drop <- 0;
  fa.Transport.duplicate <- 0;
  fa.Transport.truncate <- 0;
  fb.Transport.drop <- 0;
  converge ~rounds:8 m r;
  check_converged ~what:"fuzzed replica" mdb (Replica.db r);
  Db.check_integrity (Replica.db r)

(* ------------------------------------------------------------------ *)
(* Liveness, degradation, failover                                     *)

let tight_liveness =
  { Repl.heartbeat_every = 5; suspect_after = 12; dead_after = 25 }

(* A master/replica pair on a shared manual clock, with a switchable pump:
   while [hung] the replica makes no progress (the pump only advances the
   clock, as a real scheduler would). *)
let connect_pair_manual ?mode ?(ack_deadline = 50) mdb =
  let clk = Clock.manual () in
  let clock = Clock.of_manual clk in
  let m =
    Master.create ?mode ~clock ~liveness:tight_liveness ~ack_deadline mdb
  in
  let ma, rb, fa, fb = Transport.loopback () in
  let r = Replica.connect ~clock ~liveness:tight_liveness rb in
  let hung = ref false in
  let pump () =
    if !hung then Clock.advance clk ~by:10 else ignore (Replica.drain r)
  in
  let peer = Master.attach ~pump m ma in
  ignore (Replica.drain r);
  (m, r, peer, clk, hung, fa, fb)

let test_heartbeat_liveness () =
  let mdb = build_master () in
  let m, r, peer, clk, _hung, _, _ = connect_pair_manual mdb in
  (* heartbeats keep both ends Live while traffic flows *)
  for _ = 1 to 10 do
    Clock.advance clk ~by:5;
    Master.tick m;
    ignore (Replica.drain r);
    Replica.tick r;
    Master.pump m
  done;
  checkb "peer live under heartbeats" true (Master.peer_state peer = Repl.Live);
  checkb "master live under heartbeats" true
    (Replica.master_state r = Repl.Live);
  (* both links go silent: each end walks the other Live -> Suspect ->
     Dead on the same deadlines (the replica stops draining, the master's
     pings stop reaching it) *)
  Master.pump m;
  let rdb = Replica.db r in
  let missed0 = (Db.stats mdb).Stats.heartbeats_missed in
  Clock.advance clk ~by:13;
  Master.tick m;
  Replica.tick r;
  checkb "silent peer suspected" true (Master.peer_state peer = Repl.Suspect);
  checkb "missed heartbeat counted" true
    ((Db.stats mdb).Stats.heartbeats_missed > missed0);
  checkb "silent master suspected" true
    (Replica.master_state r = Repl.Suspect);
  Clock.advance clk ~by:13;
  Master.tick m;
  Replica.tick r;
  checkb "silent peer declared dead" true (Master.peer_state peer = Repl.Dead);
  checkb "peer no longer alive" true (not (Master.peer_alive peer));
  checki "dead peer left the live set" 0 (Master.peer_count m);
  checkb "peer death counted" true ((Db.stats mdb).Stats.peer_deaths > 0);
  checkb "silent master declared dead" true
    (Replica.master_state r = Repl.Dead);
  checkb "replica counted the master's death" true
    ((Db.stats rdb).Stats.peer_deaths > 0)

(* The acceptance bound: an ack-mode commit under a hung replica finishes
   within the deadline (no unbounded block), demotes the peer, and the
   peer is re-promoted once it catches back up. *)
let test_ack_demotion_bounded () =
  let mdb = build_master () in
  let m, r, peer, _clk, hung, _, _ =
    connect_pair_manual ~mode:Master.Ack mdb
  in
  let ss = s_oids mdb in
  Db.update_field mdb ~set:"S" ss.(0) ~field:"repfield"
    (Value.VString (String.make 20 'a'));
  checkb "healthy ack commit reached the replica" true
    (Int64.equal (Replica.last_applied r)
       (Wal.last_lsn (Option.get (Db.wal mdb))));
  checki "no demotion while healthy" 0 (Db.stats mdb).Stats.ack_demotions;
  (* hang the replica: the pump now only advances the clock *)
  hung := true;
  Db.update_field mdb ~set:"S" ss.(1) ~field:"repfield"
    (Value.VString (String.make 20 'b'));
  (* the commit returned — that is the bound — and the peer was demoted *)
  checki "exactly one demotion" 1 (Db.stats mdb).Stats.ack_demotions;
  checkb "peer demoted to async" true (not (Master.peer_synchronous peer));
  checkb "peer still alive" true (Master.peer_alive peer);
  checkb "replica is behind" true
    (Int64.compare (Replica.last_applied r)
       (Wal.last_lsn (Option.get (Db.wal mdb)))
    < 0);
  (* further commits do not wait for the demoted peer *)
  Db.update_field mdb ~set:"S" ss.(2) ~field:"repfield"
    (Value.VString (String.make 20 'c'));
  checki "demoted peer does not re-demote" 1 (Db.stats mdb).Stats.ack_demotions;
  (* the replica wakes up, catches up, and is re-promoted *)
  hung := false;
  converge m r;
  checkb "caught-up peer re-promoted" true (Master.peer_synchronous peer);
  Db.update_field mdb ~set:"S" ss.(3) ~field:"repfield"
    (Value.VString (String.make 20 'd'));
  checkb "synchronous again: commit waits and lands" true
    (Int64.equal (Replica.last_applied r)
       (Wal.last_lsn (Option.get (Db.wal mdb))));
  check_converged ~what:"re-promoted replica" mdb (Replica.db r)

let test_staleness_gate () =
  let mdb = build_master () in
  let m, r, fa, _ = connect_pair mdb in
  Replica.set_max_lag r (Some 0);
  checki "caught up: gated read serves" (Db.set_size mdb "S")
    (Replica.read r (fun db -> Db.set_size db "S"));
  mutate_some mdb ~seed:21 ~ops:4;
  (* the flush loses its Frames but the Commit barrier arrives: the
     replica now knows exactly how far behind it is *)
  fa.Transport.drop <- 1;
  Master.pump m;
  ignore (Replica.drain r);
  checkb "lag is visible" true (Int64.compare (Replica.lag_bytes r) 0L > 0);
  (try
     ignore (Replica.read r (fun db -> Db.set_size db "S"));
     Alcotest.fail "stale read served"
   with Replica.Stale msg ->
     checkb "error names the lag" true (contains msg "behind the master"));
  (* the resend heals the gap; the gate opens again *)
  converge m r;
  checkb "lag drained" true (Int64.equal (Replica.lag_bytes r) 0L);
  checki "fresh again: gated read serves" (Db.set_size mdb "S")
    (Replica.read r (fun db -> Db.set_size db "S"));
  Replica.set_max_lag r None;
  check_converged mdb (Replica.db r)

(* The full failover story: master crashes, a replica promotes into the
   next epoch, the surviving replica re-wires, the zombie master is
   fenced, and the old master rejoins as a replica by truncating its
   divergent tail. *)
let test_failover_fence_rejoin () =
  let mdb = build_master () in
  let clk = Clock.manual () in
  let clock = Clock.of_manual clk in
  let m = Master.create ~clock ~liveness:tight_liveness mdb in
  let old_wal_path = Wal.path (Option.get (Db.wal mdb)) in
  (* a checkpoint image the old master will rejoin from *)
  let img = Filename.temp_file "fieldrep_failover" ".img" in
  Db.checkpoint mdb img;
  let attach () =
    let ma, rb, fa, fb = Transport.loopback () in
    let r = Replica.connect ~clock ~liveness:tight_liveness rb in
    ignore (Master.attach ~pump:(fun () -> ignore (Replica.drain r)) m ma);
    ignore (Replica.drain r);
    (r, ma, rb, fa, fb)
  in
  let r1, _, r1b, _, _ = attach () in
  let r2, _, r2b, _, _ = attach () in
  mutate_some mdb ~seed:31 ~ops:6;
  converge m r1;
  converge m r2;
  let fork = Replica.last_applied r1 in
  checkb "replicas in step before the crash" true
    (Int64.equal fork (Replica.last_applied r2));
  (* --- the master "crashes" (we stop driving it) and r1 promotes ----- *)
  Clock.advance clk ~by:30;
  Replica.tick r1;
  checkb "master declared dead before promotion" true
    (Replica.master_state r1 = Repl.Dead);
  let new_wal = Filename.temp_file "fieldrep_failover" ".wal" in
  Sys.remove new_wal;
  let m2 = Replica.promote ~clock ~liveness:tight_liveness r1 ~wal_path:new_wal in
  checki "promotion bumped the epoch" 1 (Master.epoch m2);
  checki "epoch is durable in the db" 1 (Db.epoch (Replica.db r1));
  checkb "fork point recorded" true (Int64.equal (Master.fork m2) fork);
  checkb "failover counted" true ((Db.stats (Replica.db r1)).Stats.failovers > 0);
  let m2db = Replica.db r1 in
  (* --- r2 re-wires to the new master and adopts the epoch ------------ *)
  let ma2, rb2, _, _ = Transport.loopback () in
  Replica.reconnect r2 rb2;
  ignore (Master.attach ~pump:(fun () -> ignore (Replica.drain r2)) m2 ma2);
  let s2 = s_oids m2db in
  Db.update_field m2db ~set:"S" s2.(0) ~field:"repfield"
    (Value.VString (String.make 20 'E'));
  converge m2 r2;
  checki "r2 adopted the new epoch" 1 (Replica.epoch r2);
  check_converged ~what:"re-wired replica" m2db (Replica.db r2);
  (* --- the zombie master keeps writing and gets fenced ---------------- *)
  mutate_some mdb ~seed:32 ~ops:3;  (* divergent, unreplicated history *)
  Master.pump m;  (* ships stale-epoch traffic onto the old links *)
  let fenced = Replica.fence_link r2 r2b + Replica.fence_link r1 r1b in
  checkb "zombie traffic was fenced" true (fenced > 0);
  Master.pump m;  (* the zombie drains the Fenced replies *)
  checkb "zombie master deposed" true (Master.is_deposed m);
  (* a deposed master ships nothing more *)
  mutate_some mdb ~seed:33 ~ops:1;
  Master.pump m;
  checki "no fresh zombie traffic" 0 (Replica.fence_link r2 r2b);
  (* --- the old master rejoins as a replica below the new epoch -------- *)
  let ma3, rb3, _, _ = Transport.loopback () in
  let on_reset ~fork =
    Wal.truncate_file old_wal_path ~after:fork;
    Db.recover_replica ~wal_path:old_wal_path img
  in
  (* it reopens with its full (divergent) log, then obeys the Reset *)
  let old_last =
    match List.rev (Wal.read_frames old_wal_path ~after:0L) with
    | (lsn, _) :: _ -> lsn
    | [] -> 0L
  in
  checkb "old master's log runs past the fork" true
    (Int64.compare old_last fork > 0);
  let r3 =
    Replica.rejoin ~clock ~liveness:tight_liveness ~on_reset
      ~db:(Db.recover_replica ~wal_path:old_wal_path img)
      ~last_applied:old_last rb3
  in
  ignore (Master.attach ~pump:(fun () -> ignore (Replica.drain r3)) m2 ma3);
  converge m2 r3;
  checki "old master adopted the new epoch" 1 (Replica.epoch r3);
  checkb "old master truncated to the fork and caught up" true
    (Int64.compare (Replica.last_applied r3) fork > 0);
  check_converged ~what:"rejoined old master" m2db (Replica.db r3);
  check_converged ~what:"surviving replica" m2db (Replica.db r2);
  Sys.remove img

(* ------------------------------------------------------------------ *)
(* Fan-out                                                             *)

let test_two_replicas () =
  let mdb = build_master () in
  let m = Master.create mdb in
  let attach () =
    let ma, rb, _, _ = Transport.loopback () in
    let r = Replica.connect rb in
    ignore (Master.attach ~pump:(fun () -> ignore (Replica.drain r)) m ma);
    ignore (Replica.drain r);
    r
  in
  let r1 = attach () in
  mutate_some mdb ~seed:10 ~ops:5;
  Master.pump m;
  ignore (Replica.drain r1);
  (* the second replica bootstraps later, from a newer snapshot *)
  let r2 = attach () in
  mutate_some mdb ~seed:11 ~ops:5;
  converge m r1;
  converge m r2;
  checki "both peers live" 2 (Master.peer_count m);
  check_converged ~what:"replica 1" mdb (Replica.db r1);
  check_converged ~what:"replica 2" mdb (Replica.db r2)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "repl"
    [
      ( "codec",
        [
          Alcotest.test_case "proto roundtrip" `Quick test_proto_roundtrip;
          Alcotest.test_case "proto rejects corruption" `Quick
            test_proto_rejects_corruption;
          Alcotest.test_case "wal frame codec" `Quick test_wal_frame_codec;
          Alcotest.test_case "read_frames" `Quick test_read_frames;
        ] );
      ( "transport",
        [
          Alcotest.test_case "loopback faults" `Quick test_loopback_faults;
          Alcotest.test_case "socketpair" `Quick test_socket_transport;
          Alcotest.test_case "byte-at-a-time reassembly" `Quick
            test_socket_byte_at_a_time;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "bootstrap snapshot" `Quick test_bootstrap_snapshot;
          Alcotest.test_case "async streaming" `Quick test_async_streaming;
          Alcotest.test_case "abort marker in stream" `Quick
            test_abort_marker_stream;
          Alcotest.test_case "ack mode blocks" `Quick test_ack_mode_blocks;
          Alcotest.test_case "replica is read-only" `Quick test_replica_read_only;
          Alcotest.test_case "two replicas" `Quick test_two_replicas;
        ] );
      ( "faults",
        [
          Alcotest.test_case "corrupt frame resend" `Quick
            test_corrupt_frame_resend;
          Alcotest.test_case "drop and duplicate" `Quick test_drop_and_duplicate;
          Alcotest.test_case "truncated frame resend" `Quick
            test_truncated_frame_resend;
          Alcotest.test_case "disconnect mid-commit, rejoin" `Quick
            test_disconnect_mid_commit_and_rejoin;
          Alcotest.test_case "fuzzed faults converge" `Quick
            test_fuzzed_faults_converge;
        ] );
      ( "failover",
        [
          Alcotest.test_case "heartbeat liveness" `Quick test_heartbeat_liveness;
          Alcotest.test_case "ack demotion is bounded" `Quick
            test_ack_demotion_bounded;
          Alcotest.test_case "staleness gate" `Quick test_staleness_gate;
          Alcotest.test_case "failover, fencing, rejoin" `Quick
            test_failover_fence_rejoin;
        ] );
    ]
