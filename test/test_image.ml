(* Tests for database images (Db.save / Db.load): a full round-trip must
   preserve the catalog, all data, indexes, replication structures and the
   engine's ability to keep propagating afterwards. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Key = Fieldrep_btree.Key
module Ast = Fieldrep_query.Ast
module Exec = Fieldrep_query.Exec
module Lang = Fieldrep_query.Lang
module Gen = Fieldrep_workload.Gen
module Engine = Fieldrep_replication.Engine

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let value_testable = Alcotest.testable Value.pp Value.equal
let checkv = Alcotest.check value_testable
let vstr s = Value.VString s

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("fieldrep_" ^ name ^ ".img")

let rich_db () =
  let db = Gen.employee_db ~norgs:3 ~ndepts:10 ~nemps:120 ~seed:19 () in
  Db.replicate db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
  Db.replicate db ~strategy:Schema.Separate (Path.parse "Emp1.dept.org.name");
  Db.build_index db ~name:"by_salary" ~set:"Emp1" ~field:"salary" ~clustered:false;
  Db.build_index db ~name:"by_deptname" ~set:"Emp1" ~field:"Emp1.dept.name" ~clustered:false;
  db

let dump_rows db =
  Exec.retrieve_values db
    {
      Ast.from_set = "Emp1";
      projections = [ "name"; "salary"; "dept.name"; "dept.org.name" ];
      where = None;
    }

let test_roundtrip_preserves_everything () =
  let db = rich_db () in
  let before = dump_rows db in
  let path = tmp "roundtrip" in
  Db.save db path;
  let db2 = Db.load path in
  (* Catalog. *)
  checki "types" 3 (List.length (Schema.types (Db.schema db2)));
  checki "sets" 3 (List.length (Schema.sets (Db.schema db2)));
  checki "replications" 2 (List.length (Schema.replications (Db.schema db2)));
  checki "indexes" 2 (List.length (Schema.indexes (Db.schema db2)));
  (* Data. *)
  checki "employees" 120 (Db.set_size db2 "Emp1");
  let after = dump_rows db2 in
  checkb "identical query results" true
    (List.equal (List.equal Value.equal) before after);
  (* Planner still avoids the joins. *)
  checki "inplace covered" 0 (Db.deref_would_join db2 ~set:"Emp1" "dept.name");
  checki "separate covered" 1 (Db.deref_would_join db2 ~set:"Emp1" "dept.org.name");
  Db.check_integrity db2;
  Sys.remove path

let test_mutations_after_load () =
  let db = rich_db () in
  let path = tmp "mutate" in
  Db.save db path;
  let db2 = Db.load path in
  (* Propagation machinery still works on the reopened database. *)
  let dept = List.hd (Exec.matching_oids db2 ~set:"Dept" None) in
  Db.update_field db2 ~set:"Dept" dept ~field:"name" (vstr "post-load");
  let emps, how = Db.referencers db2 ~source_set:"Emp1" ~attr:"dept" dept in
  checkb "inverse via links after load" true (how = Db.Via_links);
  List.iter
    (fun e -> checkv "propagated" (vstr "post-load") (Db.deref db2 ~set:"Emp1" e "dept.name"))
    emps;
  (* Index on the replicated path was maintained. *)
  checki "path index tracks rename" (List.length emps)
    (List.length (Db.index_lookup db2 ~index:"by_deptname" (Key.String "post-load")));
  (* Inserts and deletes still work. *)
  let e =
    Db.insert db2 ~set:"Emp1"
      [ vstr "fresh"; Value.VInt 30; Value.VInt 1; Value.VRef dept ]
  in
  checkv "new object attached" (vstr "post-load") (Db.deref db2 ~set:"Emp1" e "dept.name");
  Db.delete db2 ~set:"Emp1" e;
  Db.check_integrity db2;
  Sys.remove path

let test_index_survives () =
  let db = rich_db () in
  let hits_before = Db.index_range db ~index:"by_salary" ~lo:(Key.Int 0) ~hi:(Key.Int max_int) ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  let path = tmp "index" in
  Db.save db path;
  let db2 = Db.load path in
  let hits_after = Db.index_range db2 ~index:"by_salary" ~lo:(Key.Int 0) ~hi:(Key.Int max_int) ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  checki "index entries" hits_before hits_after;
  let st = Db.index_stats db2 ~index:"by_salary" in
  checki "entry count" 120 st.Db.entries;
  Sys.remove path

let test_lazy_flushed_on_save () =
  let db = Db.create () in
  ignore
    (Lang.exec_script db
       {|
       define type D (name: char[]);
       define type E (name: char[], d: ref D);
       create Ds: {own ref D};
       create Es: {own ref E}
       |});
  let d = Db.insert db ~set:"Ds" [ vstr "d0" ] in
  let e = Db.insert db ~set:"Es" [ vstr "e0"; Value.VRef d ] in
  ignore (Lang.exec db "replicate Es.d.name lazy");
  Db.update_field db ~set:"Ds" d ~field:"name" (vstr "later");
  checkb "pending before save" true (Engine.pending_count (Db.engine db) > 0);
  let path = tmp "lazy" in
  Db.save db path;
  checki "flushed by save" 0 (Engine.pending_count (Db.engine db));
  let db2 = Db.load path in
  checkv "image fully propagated" (vstr "later") (Db.deref db2 ~set:"Es" e "d.name");
  Db.check_integrity db2;
  Sys.remove path

let test_options_roundtrip () =
  let db = Db.create () in
  ignore
    (Lang.exec_script db
       {|
       define type O (name: char[]);
       define type D (name: char[], org: ref O);
       define type E (name: char[], d: ref D);
       create Os: {own ref O};
       create Ds: {own ref D};
       create Es: {own ref E}
       |});
  let o = Db.insert db ~set:"Os" [ vstr "o" ] in
  let d = Db.insert db ~set:"Ds" [ vstr "d"; Value.VRef o ] in
  ignore (Db.insert db ~set:"Es" [ vstr "e"; Value.VRef d ]);
  ignore (Lang.exec db "replicate Es.d.org.name collapsed");
  ignore (Lang.exec db "replicate Es.d.name threshold 0");
  let path = tmp "options" in
  Db.save db path;
  let db2 = Db.load path in
  let r1 =
    Option.get (Schema.find_replication (Db.schema db2) (Path.parse "Es.d.org.name"))
  in
  let r2 = Option.get (Schema.find_replication (Db.schema db2) (Path.parse "Es.d.name")) in
  checkb "collapse preserved" true r1.Schema.options.Schema.collapse;
  checki "threshold preserved" 0 r2.Schema.options.Schema.small_link_threshold;
  Db.check_integrity db2;
  Sys.remove path

let test_pending_lazy_with_mixed_indexes () =
  (* The hardest image case: clustered AND unclustered indexes present and
     lazy propagations still pending at save time.  Save must flush the
     pending work, and the reloaded database must satisfy every replication
     and index invariant. *)
  let built =
    Gen.build
      {
        Gen.default_spec with
        Gen.s_count = 200;
        sharing = 4;
        strategy = Fieldrep_costmodel.Params.No_replication;
        clustering = Fieldrep_costmodel.Params.Clustered;
        seed = 29;
      }
  in
  let db = built.Gen.db in
  (* Gen built clustered indexes on field_r / field_s; add an unclustered
     one over the same set. *)
  Db.build_index db ~name:"r_by_pad" ~set:"R" ~field:"pad" ~clustered:false;
  let options = { Schema.default_options with Schema.lazy_propagation = true } in
  Db.replicate db ~options ~strategy:Schema.Inplace (Path.parse "R.sref.repfield");
  (* Touch several S objects so invalidations are pending when we save. *)
  let dirty = [ 0; 7; 42; 199 ] in
  List.iter
    (fun key ->
      let s = List.hd (Db.index_lookup db ~index:Gen.s_index (Key.Int key)) in
      Db.update_field db ~set:"S" s ~field:"repfield"
        (vstr (Printf.sprintf "%020d" key)))
    dirty;
  checkb "pending before save" true (Engine.pending_count (Db.engine db) > 0);
  let path = tmp "pending_mixed" in
  Db.save db path;
  let db2 = Db.load path in
  checki "nothing pending after load" 0 (Engine.pending_count (Db.engine db2));
  (* The flushed hidden copies are visible through every R referencing a
     dirty S object. *)
  List.iter
    (fun key ->
      let s = List.hd (Db.index_lookup db2 ~index:Gen.s_index (Key.Int key)) in
      let rs, _ = Db.referencers db2 ~source_set:"R" ~attr:"sref" s in
      checki "sharing preserved" 4 (List.length rs);
      List.iter
        (fun r ->
          checkv "lazy update propagated into image"
            (vstr (Printf.sprintf "%020d" key))
            (Db.deref db2 ~set:"R" r "sref.repfield"))
        rs)
    dirty;
  (* All three indexes — two clustered, one unclustered — and the
     replication structures are consistent. *)
  Fieldrep_replication.Invariants.check_all (Db.engine db2);
  Db.check_integrity db2;
  Sys.remove path

let test_load_rejects_garbage () =
  let path = tmp "garbage" in
  let oc = open_out_bin path in
  output_string oc "this is not a database image at all";
  close_out oc;
  (try
     ignore (Db.load path);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  Sys.remove path

let test_rs_database_roundtrip () =
  (* The full workload database with clustered indexes. *)
  let built =
    Gen.build
      {
        Gen.default_spec with
        Gen.s_count = 300;
        sharing = 3;
        strategy = Fieldrep_costmodel.Params.Inplace;
        clustering = Fieldrep_costmodel.Params.Clustered;
      }
  in
  let path = tmp "rs" in
  Db.save built.Gen.db path;
  let db2 = Db.load path in
  checki "R preserved" 900 (Db.set_size db2 "R");
  (* A range query through the clustered index returns the same rows. *)
  let q =
    {
      Ast.from_set = "R";
      projections = [ "field_r"; "sref.repfield" ];
      where = Some (Ast.between "field_r" (Value.VInt 100) (Value.VInt 120));
    }
  in
  checkb "query identical" true
    (List.equal (List.equal Value.equal)
       (Exec.retrieve_values built.Gen.db q)
       (Exec.retrieve_values db2 q));
  Db.check_integrity db2;
  Sys.remove path

let () =
  Alcotest.run "fieldrep_image"
    [
      ( "images",
        [
          Alcotest.test_case "roundtrip preserves everything" `Quick
            test_roundtrip_preserves_everything;
          Alcotest.test_case "mutations after load" `Quick test_mutations_after_load;
          Alcotest.test_case "index survives" `Quick test_index_survives;
          Alcotest.test_case "lazy flushed on save" `Quick test_lazy_flushed_on_save;
          Alcotest.test_case "options roundtrip" `Quick test_options_roundtrip;
          Alcotest.test_case "pending lazy + mixed indexes" `Quick
            test_pending_lazy_with_mixed_indexes;
          Alcotest.test_case "garbage rejected" `Quick test_load_rejects_garbage;
          Alcotest.test_case "R/S database roundtrip" `Quick test_rs_database_roundtrip;
        ] );
    ]
