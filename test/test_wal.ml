(* Write-ahead logging, crash injection, and recovery.

   The crash matrix is the centrepiece: a 200-operation mixed workload is
   crashed at EVERY physical write offset (alternating clean and torn
   crashing writes), recovered from the checkpoint image plus the log tail,
   resumed, and compared against an uncrashed reference — for all three
   replication strategies. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Disk = Fieldrep_storage.Disk
module Pager = Fieldrep_storage.Pager
module Wal = Fieldrep_wal.Wal
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Key = Fieldrep_btree.Key
module Engine = Fieldrep_replication.Engine
module Params = Fieldrep_costmodel.Params
module Gen = Fieldrep_workload.Gen
module Splitmix = Fieldrep_util.Splitmix

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let value_testable = Alcotest.testable Value.pp Value.equal
let checkv = Alcotest.check value_testable

let tmp name ext =
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) ("fieldrep_wal_" ^ name ^ ext)
  in
  if Sys.file_exists path then Sys.remove path;
  path

(* CI re-runs the crash matrix under several fixed seeds by exporting
   FIELDREP_TEST_SEED; the offset perturbs both the generated database and
   the baked workload, so each seed crashes at a different write history. *)
let seed_base =
  match Sys.getenv_opt "FIELDREP_TEST_SEED" with
  | Some s -> ( try int_of_string s with _ -> 0)
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Fault injection in the simulated disk                               *)

let test_failpoint_fires_and_disarms () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let f = Disk.create_file disk in
  let p = Disk.allocate_page disk f in
  let buf = Bytes.make 64 'x' in
  Disk.set_failpoint disk ~after_writes:2;
  Disk.write_page disk ~file:f ~page:p buf;
  Disk.write_page disk ~file:f ~page:p buf;
  checki "no writes left" 0 (Option.get (Disk.writes_until_crash disk));
  (try
     Disk.write_page disk ~file:f ~page:p buf;
     Alcotest.fail "expected Crash"
   with Disk.Crash _ -> ());
  checkb "disarmed after firing" true (Disk.writes_until_crash disk = None);
  (* The machine "rebooted": writes work again. *)
  Disk.write_page disk ~file:f ~page:p buf;
  checki "post-crash write counted" 3 stats.Stats.page_writes

let test_failpoint_torn_write () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let f = Disk.create_file disk in
  let p = Disk.allocate_page disk f in
  Disk.write_page disk ~file:f ~page:p (Bytes.make 64 'o');
  Disk.set_failpoint ~torn:true disk ~after_writes:0;
  (try
     Disk.write_page disk ~file:f ~page:p (Bytes.make 64 'n');
     Alcotest.fail "expected Crash"
   with Disk.Crash _ -> ());
  let page = Disk.dump_page disk ~file:f ~page:p in
  Alcotest.(check char) "first half landed" 'n' (Bytes.get page 0);
  Alcotest.(check char) "second half did not" 'o' (Bytes.get page 63)

(* ------------------------------------------------------------------ *)
(* The log itself                                                      *)

let sample_records =
  [
    Wal.Define_type
      (Ty.make ~name:"T"
         [
           { Ty.fname = "a"; ftype = Ty.Scalar Ty.SInt };
           { Ty.fname = "b"; ftype = Ty.Scalar Ty.SString };
           { Ty.fname = "r"; ftype = Ty.Ref "T" };
         ]);
    Wal.Create_set { name = "Ts"; elem_type = "T"; reserve = 128 };
    Wal.Insert
      { set = "Ts"; values = [ Value.VInt 7; Value.VString "hello"; Value.VNull ] };
    Wal.Update
      {
        set = "Ts";
        oid = { Oid.file = 3; page = 9; slot = 2 };
        field = "r";
        value = Value.VRef { Oid.file = 1; page = 2; slot = 3 };
      };
    Wal.Delete { set = "Ts"; oid = { Oid.file = 1; page = 0; slot = 0 } };
    Wal.Replicate
      {
        path = "Ts.r.b";
        strategy = Schema.Separate;
        options =
          {
            Schema.collapse = true;
            small_link_threshold = 3;
            lazy_propagation = true;
            cluster_links = false;
          };
      };
    Wal.Build_index { name = "i"; set = "Ts"; field = "a"; clustered = true };
  ]

let test_wal_roundtrip () =
  let path = tmp "roundtrip" ".wal" in
  let w = Wal.open_ path in
  let lsns = List.map (Wal.append w) sample_records in
  checkb "lsns ascend from 1" true
    (lsns = List.init (List.length lsns) (fun i -> Int64.of_int (i + 1)));
  Wal.close w;
  let w2 = Wal.open_ path in
  let back = Wal.records w2 in
  checki "all records recovered" (List.length sample_records) (List.length back);
  List.iter2
    (fun r (_, r') -> checkb "record survives the codec" true (r = r'))
    sample_records back;
  checkb "lsn counter continues" true
    (Wal.last_lsn w2 = Int64.of_int (List.length sample_records));
  Wal.close w2;
  Sys.remove path

let test_wal_abort_rescinds () =
  let path = tmp "abort" ".wal" in
  let w = Wal.open_ path in
  ignore (Wal.append w (Wal.Delete { set = "S"; oid = Oid.nil }));
  let l2 = Wal.append w (Wal.Insert { set = "S"; values = [ Value.VInt 1 ] }) in
  Wal.append_abort w ~aborted:l2;
  Wal.close w;
  let w2 = Wal.open_ path in
  checki "aborted record and marker filtered" 1 (List.length (Wal.records w2));
  checkb "lsn counter past the marker" true (Wal.last_lsn w2 = 3L);
  Wal.close w2;
  Sys.remove path

let test_wal_torn_tail () =
  let path = tmp "torn" ".wal" in
  let w = Wal.open_ path in
  ignore (Wal.append w (Wal.Delete { set = "A"; oid = Oid.nil }));
  ignore (Wal.append w (Wal.Delete { set = "B"; oid = Oid.nil }));
  Wal.close w;
  (* A crash tore the next append: a frame header promising more bytes than
     were ever written. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x40\x00\x00\x00GARB";
  close_out oc;
  let w2 = Wal.open_ path in
  checki "torn tail dropped" 2 (List.length (Wal.records w2));
  ignore (Wal.append w2 (Wal.Delete { set = "C"; oid = Oid.nil }));
  Wal.close w2;
  let w3 = Wal.open_ path in
  checki "new append overwrote the garbage" 3 (List.length (Wal.records w3));
  Wal.close w3;
  Sys.remove path

let test_wal_corrupt_frame_mid_log () =
  let path = tmp "corrupt_mid" ".wal" in
  let ins k = Wal.Insert { set = "T"; values = [ Value.VInt k ] } in
  let w = Wal.open_ path in
  ignore (Wal.append w (ins 1));
  ignore (Wal.append w (ins 2));
  Wal.close w;
  let good =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  let w = Wal.open_ path in
  ignore (Wal.append w (ins 3));
  ignore (Wal.append w (ins 4));
  Wal.close w;
  (* Flip one payload byte of frame 3 (its payload starts 8 framing bytes
     past the end of the good prefix): bit rot in the middle of the log,
     not a torn tail. *)
  let pos = good + 12 in
  let orig =
    let ic = open_in_bin path in
    seek_in ic pos;
    let c = input_char ic in
    close_in ic;
    c
  in
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  seek_out oc pos;
  output_char oc (Char.chr (Char.code orig lxor 0xff));
  close_out oc;
  (* The scan must stop at the CRC mismatch: frame 3 AND everything after
     it is discarded — a prefix of the log is all that can be trusted. *)
  let w2 = Wal.open_ path in
  checki "scan stops at the corrupt frame" 2 (List.length (Wal.records w2));
  checkb "lsn counter rewound to the good prefix" true (Wal.last_lsn w2 = 2L);
  ignore (Wal.append w2 (ins 5));
  Wal.close w2;
  let w3 = Wal.open_ path in
  (match List.map snd (Wal.records w3) with
  | [
   Wal.Insert { values = [ Value.VInt 1 ]; _ };
   Wal.Insert { values = [ Value.VInt 2 ]; _ };
   Wal.Insert { values = [ Value.VInt 5 ]; _ };
  ] ->
      ()
  | recs ->
      Alcotest.failf "unexpected records after corruption: %d" (List.length recs));
  Wal.close w3;
  Sys.remove path

let test_wal_duplicate_abort_markers () =
  let path = tmp "dup_abort" ".wal" in
  let w = Wal.open_ path in
  let l1 = Wal.append w (Wal.Insert { set = "T"; values = [ Value.VInt 1 ] }) in
  ignore (Wal.append w (Wal.Insert { set = "T"; values = [ Value.VInt 2 ] }));
  (* An abort retried across a crash can log its marker twice; the second
     marker must be harmless. *)
  Wal.append_abort w ~aborted:l1;
  Wal.append_abort w ~aborted:l1;
  Wal.close w;
  let w2 = Wal.open_ path in
  (match List.map snd (Wal.records w2) with
  | [ Wal.Insert { values = [ Value.VInt 2 ]; _ } ] -> ()
  | recs -> Alcotest.failf "expected one survivor, got %d" (List.length recs));
  checkb "both markers consumed lsns" true (Wal.last_lsn w2 = 4L);
  Wal.close w2;
  Sys.remove path

let test_wal_abort_marker_missing_target () =
  let path = tmp "abort_missing" ".wal" in
  let w = Wal.open_ path in
  (* A marker whose target fell off the log (e.g. the aborted record was
     itself in a torn tail): nothing to rescind, nothing to break. *)
  Wal.append_abort w ~aborted:9999L;
  ignore (Wal.append w (Wal.Insert { set = "T"; values = [ Value.VInt 7 ] }));
  Wal.close w;
  let w2 = Wal.open_ path in
  (match List.map snd (Wal.records w2) with
  | [ Wal.Insert { values = [ Value.VInt 7 ]; _ } ] -> ()
  | recs -> Alcotest.failf "expected one record, got %d" (List.length recs));
  Wal.close w2;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Group commit                                                        *)

let count_on_disk path =
  let w = Wal.open_ path in
  let n = List.length (Wal.records w) in
  Wal.close w;
  n

let test_wal_sync_is_the_durability_point () =
  let path = tmp "group" ".wal" in
  let w = Wal.open_ path in
  ignore (Wal.append w (Wal.Delete { set = "A"; oid = Oid.nil }));
  ignore (Wal.append w (Wal.Delete { set = "B"; oid = Oid.nil }));
  Wal.sync w;
  ignore (Wal.append w (Wal.Delete { set = "C"; oid = Oid.nil }));
  ignore (Wal.append w (Wal.Delete { set = "D"; oid = Oid.nil }));
  checkb "appends buffered" true (Wal.pending_bytes w > 0);
  (* Only the synced prefix is on disk — a crash here loses exactly the
     unsynced tail, never an interior record. *)
  checki "synced prefix visible" 2 (count_on_disk path);
  Wal.sync w;
  checki "buffer drained" 0 (Wal.pending_bytes w);
  checki "everything visible after sync" 4 (count_on_disk path);
  checki "two physical flushes" 2 (Wal.flushes w);
  Wal.sync w;
  checki "empty sync is free" 2 (Wal.flushes w);
  Wal.close w;
  Sys.remove path

let test_wal_close_syncs () =
  let path = tmp "close_syncs" ".wal" in
  let w = Wal.open_ path in
  ignore (Wal.append w (Wal.Delete { set = "A"; oid = Oid.nil }));
  Wal.close w;
  checki "close flushed the tail" 1 (count_on_disk path);
  Sys.remove path

let test_wal_flush_limit_bounds_buffer () =
  let path = tmp "flush_limit" ".wal" in
  let w = Wal.open_ ~flush_limit:1 path in
  ignore (Wal.append w (Wal.Delete { set = "A"; oid = Oid.nil }));
  ignore (Wal.append w (Wal.Delete { set = "B"; oid = Oid.nil }));
  checki "threshold forced a flush per append" 2 (Wal.flushes w);
  checki "records on disk without explicit sync" 2 (count_on_disk path);
  Wal.close w;
  Sys.remove path

let test_txn_commit_is_one_flush () =
  let db = Db.create ~durable:true () in
  let w = Option.get (Db.wal db) in
  Db.define_type db
    (Ty.make ~name:"GT" [ { Ty.fname = "a"; ftype = Ty.Scalar Ty.SInt } ]);
  Db.create_set db ~name:"G" ~elem_type:"GT" ();
  let oids =
    List.init 8 (fun i -> Db.insert db ~set:"G" [ Value.VInt i ])
  in
  let appends0 = Wal.appended w and flushes0 = Wal.flushes w in
  let tx = Db.begin_txn db in
  List.iteri
    (fun i oid -> Db.update_field ~txn:tx db ~set:"G" oid ~field:"a" (Value.VInt (100 + i)))
    oids;
  Db.commit db tx;
  (* Begin + 8 ops + 8 undo images + commit appended; one flush covers
     them all. *)
  checkb "many records appended" true (Wal.appended w - appends0 >= 10);
  checki "single group-commit flush" 1 (Wal.flushes w - flushes0);
  (* Autocommit stays synchronous: each mutation is its own commit point. *)
  let a1 = Wal.appended w and f1 = Wal.flushes w in
  ignore (Db.insert db ~set:"G" [ Value.VInt 99 ]);
  checki "autocommit append" 1 (Wal.appended w - a1);
  checki "autocommit flush" 1 (Wal.flushes w - f1)

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

(* A canonical observation of everything user-visible: object contents in
   physical order, full dumps of both indexes, and the replicated-field
   read of every R object.  Two databases in the same state produce the
   same string. *)
let observe db =
  let b = Buffer.create 4096 in
  List.iter
    (fun set ->
      Buffer.add_string b (Printf.sprintf "== set %s (%d)\n" set (Db.set_size db set));
      Db.scan db ~set (fun oid record ->
          Buffer.add_string b (Oid.to_string oid);
          List.iter
            (fun v ->
              Buffer.add_char b '|';
              Buffer.add_string b (Value.to_string v))
            (Db.user_values db ~set record);
          Buffer.add_char b '\n'))
    [ "S"; "R" ];
  List.iter
    (fun index ->
      Buffer.add_string b ("== index " ^ index ^ "\n");
      Db.index_range db ~index ~lo:Key.min_int_key ~hi:(Key.Int max_int) ~init:()
        ~f:(fun () k oid ->
          Buffer.add_string b
            (Printf.sprintf "%s->%s\n" (Key.to_string k) (Oid.to_string oid))))
    [ Gen.r_index; Gen.s_index ];
  Buffer.add_string b "== derefs\n";
  Db.scan db ~set:"R" (fun oid _ ->
      Buffer.add_string b (Value.to_string (Db.deref db ~set:"R" oid "sref.repfield"));
      Buffer.add_char b '\n');
  Buffer.contents b

let test_recover_basic () =
  let img = tmp "basic" ".img" in
  let built =
    Gen.build
      {
        Gen.default_spec with
        Gen.s_count = 30;
        sharing = 2;
        strategy = Params.Inplace;
        page_size = 1024;
        frames = 32;
        seed = 5;
        durable = true;
      }
  in
  let db = built.Gen.db in
  Db.checkpoint db img;
  (* Post-checkpoint work lives only in the log. *)
  let s_oids = ref [] in
  Db.scan db ~set:"S" (fun oid _ -> s_oids := oid :: !s_oids);
  let s_oids = Array.of_list (List.rev !s_oids) in
  Db.update_field db ~set:"S" s_oids.(3) ~field:"repfield"
    (Value.VString (String.make 20 'z'));
  ignore
    (Db.insert db ~set:"R"
       [ Value.VInt 9999; Value.VString (String.make 65 'q'); Value.VRef s_oids.(0) ]);
  let expected = observe db in
  (* The machine dies: the in-memory disk is lost, only the checkpoint
     image and the log file survive.  [recover] finds the log through the
     path recorded in the image. *)
  Wal.close (Option.get (Db.wal db));
  let db2 = Db.recover img in
  checks "recovered state identical" expected (observe db2);
  checki "replay counted" 1 (Db.stats db2).Stats.recovery_replays;
  Db.check_integrity db2;
  (* The recovered database is durable: new mutations keep logging. *)
  let appends = Wal.appended (Option.get (Db.wal db2)) in
  Db.update_field db2 ~set:"S" s_oids.(1) ~field:"repfield"
    (Value.VString (String.make 20 'y'));
  checkb "still logging" true (Wal.appended (Option.get (Db.wal db2)) > appends);
  Sys.remove img

let test_recover_requeues_lazy () =
  let img = tmp "lazy" ".img" in
  let built =
    Gen.build
      {
        Gen.default_spec with
        Gen.s_count = 20;
        sharing = 3;
        strategy = Params.No_replication;
        page_size = 1024;
        frames = 32;
        seed = 11;
        durable = true;
      }
  in
  let db = built.Gen.db in
  let options = { Schema.default_options with Schema.lazy_propagation = true } in
  Db.replicate db ~options ~strategy:Schema.Inplace (Path.parse "R.sref.repfield");
  Db.checkpoint db img;
  (* A lazy update after the checkpoint: the hidden copies are NOT written,
     only an in-memory invalidation is queued — and then the machine dies.
     Replay must re-run the update and re-queue the invalidation. *)
  let s = ref Oid.nil in
  Db.scan db ~set:"S" (fun oid _ -> if Oid.is_nil !s then s := oid);
  let s = !s in
  Db.update_field db ~set:"S" s ~field:"repfield" (Value.VString (String.make 20 'w'));
  checkb "invalidation pending before crash" true
    (Engine.pending_count (Db.engine db) > 0);
  Wal.close (Option.get (Db.wal db));
  let db2 = Db.recover img in
  checkb "invalidation re-queued by replay" true
    (Engine.pending_count (Db.engine db2) > 0);
  let rs, _ = Db.referencers db2 ~source_set:"R" ~attr:"sref" s in
  checki "sharing preserved" 3 (List.length rs);
  List.iter
    (fun r ->
      checkv "read repairs the replayed lazy update"
        (Value.VString (String.make 20 'w'))
        (Db.deref db2 ~set:"R" r "sref.repfield"))
    rs;
  Db.check_integrity db2;
  Sys.remove img

(* ------------------------------------------------------------------ *)
(* The crash matrix                                                    *)

(* 200 concrete operations over a built R/S database: updates to the
   replicated field, key and pad updates on R, inserts of new R objects,
   and deletes from a reserved tail of R.  Everything is baked upfront —
   OIDs and values are fixed — so the same list can drive the reference
   run, every crashed run, and every resumed run. *)
let bake_ops ~s_oids ~r_oids ~count ~seed =
  let rng = Splitmix.create seed in
  let ns = Array.length s_oids in
  let n_deletable = 20 in
  let r_updatable = Array.sub r_oids 0 (Array.length r_oids - n_deletable) in
  let nu = Array.length r_updatable in
  let deletable =
    ref (Array.to_list (Array.sub r_oids (Array.length r_oids - n_deletable) n_deletable))
  in
  List.init count (fun i ->
      let i = i + 1 in
      let roll = Splitmix.int rng 100 in
      let op =
        if roll < 40 then begin
          let s = s_oids.(Splitmix.int rng ns) in
          fun db ->
            Db.update_field db ~set:"S" s ~field:"repfield"
              (Value.VString (Printf.sprintf "%020d" i))
        end
        else if roll < 60 then begin
          let r = r_updatable.(Splitmix.int rng nu) in
          fun db -> Db.update_field db ~set:"R" r ~field:"field_r" (Value.VInt (100_000 + i))
        end
        else if roll < 72 then begin
          let r = r_updatable.(Splitmix.int rng nu) in
          fun db ->
            Db.update_field db ~set:"R" r ~field:"pad"
              (Value.VString (Printf.sprintf "%-65d" i))
        end
        else if roll < 90 then begin
          let s = s_oids.(Splitmix.int rng ns) in
          fun db ->
            ignore
              (Db.insert db ~set:"R"
                 [
                   Value.VInt (200_000 + i);
                   Value.VString (String.make 65 'i');
                   Value.VRef s;
                 ])
        end
        else
          match !deletable with
          | r :: rest ->
              deletable := rest;
              fun db -> Db.delete db ~set:"R" r
          | [] ->
              let s = s_oids.(Splitmix.int rng ns) in
              fun db ->
                Db.update_field db ~set:"S" s ~field:"repfield"
                  (Value.VString (Printf.sprintf "%020d" (500_000 + i)))
      in
      (i, op))

let oids_of db set =
  let acc = ref [] in
  Db.scan db ~set (fun oid _ -> acc := oid :: !acc);
  Array.of_list (List.rev !acc)

let crash_matrix strategy () =
  let name = Fieldrep_costmodel.Sweep.strategy_name strategy in
  let spec =
    {
      Gen.default_spec with
      Gen.s_count = 40;
      sharing = 2;
      strategy;
      page_size = 1024;
      frames = 12;
      seed = 77 + seed_base;
      durable = true;
    }
  in
  let built = Gen.build spec in
  let db0 = built.Gen.db in
  let img = tmp ("matrix_" ^ name) ".img" in
  Db.checkpoint db0 img;
  let base_lsn = Wal.last_lsn (Option.get (Db.wal db0)) in
  let s_oids = oids_of db0 "S" in
  let r_oids = oids_of db0 "R" in
  let ops = bake_ops ~s_oids ~r_oids ~count:200 ~seed:(101 + seed_base) in
  Wal.close (Option.get (Db.wal db0));
  (* One log file per test, recreated empty for every simulated history. *)
  let wal_k = Filename.concat (Filename.get_temp_dir_name ())
      ("fieldrep_wal_matrix_" ^ name ^ ".wal") in
  let fresh_recover () =
    if Sys.file_exists wal_k then Sys.remove wal_k;
    Db.recover ~frames:spec.Gen.frames ~wal_path:wal_k img
  in
  (* Uncrashed reference: recover from the checkpoint (empty log tail) and
     run the whole workload. *)
  let refdb = fresh_recover () in
  let writes0 = (Db.stats refdb).Stats.page_writes in
  List.iter (fun (_, op) -> op refdb) ops;
  let total_writes = (Db.stats refdb).Stats.page_writes - writes0 in
  let reference = observe refdb in
  Wal.close (Option.get (Db.wal refdb));
  checkb "workload does physical writes" true (total_writes > 0);
  (* Crash at every write offset; odd offsets also tear the crashing
     write.  Recovery must reproduce the reference exactly each time. *)
  for k = 1 to total_writes do
    let db = fresh_recover () in
    Disk.set_failpoint ~torn:(k mod 2 = 1) (Pager.disk (Db.pager db))
      ~after_writes:(k - 1);
    let crashed =
      try
        List.iter (fun (_, op) -> op db) ops;
        false
      with Disk.Crash _ -> true
    in
    checkb (Printf.sprintf "%s: write %d/%d crashes" name k total_writes) true crashed;
    let w = Option.get (Db.wal db) in
    (* Ops 1..done_ops are in the log (the last possibly half-applied on
       the lost disk — replay completes it); resumption starts after. *)
    let done_ops = Int64.to_int (Int64.sub (Wal.last_lsn w) base_lsn) in
    Wal.close w;
    let db2 = Db.recover ~frames:spec.Gen.frames ~wal_path:wal_k img in
    List.iter (fun (i, op) -> if i > done_ops then op db2) ops;
    let obs = observe db2 in
    if not (String.equal reference obs) then
      Alcotest.failf "%s: crash at write %d/%d diverged (%d ops were durable)"
        name k total_writes done_ops;
    Db.check_integrity db2;
    Wal.close (Option.get (Db.wal db2))
  done;
  Sys.remove img;
  if Sys.file_exists wal_k then Sys.remove wal_k

let () =
  Alcotest.run "fieldrep_wal"
    [
      ( "failpoints",
        [
          Alcotest.test_case "fires and disarms" `Quick test_failpoint_fires_and_disarms;
          Alcotest.test_case "torn write" `Quick test_failpoint_torn_write;
        ] );
      ( "log",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "abort rescinds" `Quick test_wal_abort_rescinds;
          Alcotest.test_case "torn tail ignored" `Quick test_wal_torn_tail;
          Alcotest.test_case "corrupt frame mid-log" `Quick
            test_wal_corrupt_frame_mid_log;
          Alcotest.test_case "duplicate abort markers" `Quick
            test_wal_duplicate_abort_markers;
          Alcotest.test_case "abort marker without target" `Quick
            test_wal_abort_marker_missing_target;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "sync is the durability point" `Quick
            test_wal_sync_is_the_durability_point;
          Alcotest.test_case "close syncs" `Quick test_wal_close_syncs;
          Alcotest.test_case "flush limit bounds the buffer" `Quick
            test_wal_flush_limit_bounds_buffer;
          Alcotest.test_case "one flush per committed txn" `Quick
            test_txn_commit_is_one_flush;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "checkpoint + log tail" `Quick test_recover_basic;
          Alcotest.test_case "lazy invalidations re-queued" `Quick
            test_recover_requeues_lazy;
        ] );
      ( "crash matrix",
        [
          Alcotest.test_case "no replication" `Slow
            (crash_matrix Params.No_replication);
          Alcotest.test_case "in-place" `Slow (crash_matrix Params.Inplace);
          Alcotest.test_case "separate" `Slow (crash_matrix Params.Separate);
        ] );
    ]
