(* First steps toward OCaml 5 parallelism: the lockdep recorder's own
   semantics (edge recording, cycle detection, per-domain held-stacks, the
   isolated node boundary), then Domain.spawn smoke over the two most
   contended subsystems — the lock manager and the buffer pool — with a
   coarse mutex serializing entry, which is exactly the Db_mutex phase-1
   locking story the S1 ownership map documents. *)

module Lockdep = Fieldrep_util.Lockdep
module Stats = Fieldrep_storage.Stats
module Disk = Fieldrep_storage.Disk
module Buffer_pool = Fieldrep_storage.Buffer_pool
module Oid = Fieldrep_storage.Oid
module Lock = Fieldrep_txn.Lock

let () = Lockdep.set_enabled true

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Every test starts from an empty observed-edge graph. *)
let fresh () = Lockdep.reset ()

(* ---------------- lockdep semantics ---------------- *)

let test_edge_recording () =
  fresh ();
  Lockdep.with_held Lockdep.Txn_lock (fun () ->
      Lockdep.with_held Lockdep.Pool_pin (fun () -> ()));
  checkb "Txn_lock -> Pool_pin observed" true
    (List.mem (Lockdep.Txn_lock, Lockdep.Pool_pin) (Lockdep.edges ()));
  checkb "no reverse edge" false
    (List.mem (Lockdep.Pool_pin, Lockdep.Txn_lock) (Lockdep.edges ()))

let test_inversion_detected () =
  fresh ();
  (* A -> B, then B -> A must close the cycle. *)
  Lockdep.with_held Lockdep.Txn_lock (fun () ->
      Lockdep.with_held Lockdep.Pool_pin (fun () -> ()));
  let raised =
    try
      Lockdep.with_held Lockdep.Pool_pin (fun () ->
          Lockdep.with_held Lockdep.Txn_lock (fun () -> ()));
      false
    with Lockdep.Cycle _ -> true
  in
  checkb "A->B then B->A raises Cycle" true raised;
  fresh ()

let test_transitive_inversion () =
  fresh ();
  (* A -> B and B -> C, then C -> A: the cycle is indirect. *)
  Lockdep.with_held Lockdep.Maint_job (fun () ->
      Lockdep.with_held Lockdep.Txn_lock (fun () -> ()));
  Lockdep.with_held Lockdep.Txn_lock (fun () ->
      Lockdep.with_held Lockdep.Pool_pin (fun () -> ()));
  let raised =
    try
      Lockdep.with_held Lockdep.Pool_pin (fun () ->
          Lockdep.note Lockdep.Maint_job);
      false
    with Lockdep.Cycle _ -> true
  in
  checkb "transitive cycle detected" true raised;
  fresh ()

let test_release_ends_span () =
  fresh ();
  Lockdep.acquire Lockdep.Pool_pin;
  Lockdep.release Lockdep.Pool_pin;
  Lockdep.acquire Lockdep.Txn_lock;
  Lockdep.release Lockdep.Txn_lock;
  checki "no edge across a released span" 0 (List.length (Lockdep.edges ()))

let test_isolated_resets_held () =
  fresh ();
  (* The loopback-replication shape: a replica applies records while the
     master's Wal_sync is held.  The node boundary must keep the replica's
     acquisitions out of the master's held-context. *)
  Lockdep.with_held Lockdep.Wal_sync (fun () ->
      Lockdep.isolated (fun () ->
          Lockdep.with_held Lockdep.Txn_lock (fun () ->
              Lockdep.with_held Lockdep.Pool_pin (fun () -> ()))));
  checkb "no Wal_sync -> Txn_lock edge through the boundary" false
    (List.mem (Lockdep.Wal_sync, Lockdep.Txn_lock) (Lockdep.edges ()));
  checkb "inner-node edges still recorded" true
    (List.mem (Lockdep.Txn_lock, Lockdep.Pool_pin) (Lockdep.edges ()))

let test_disabled_is_free () =
  fresh ();
  Lockdep.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Lockdep.set_enabled true)
    (fun () ->
      Lockdep.with_held Lockdep.Wal_sync (fun () ->
          Lockdep.acquire Lockdep.Maint_job;
          Lockdep.release Lockdep.Maint_job);
      checki "disabled recorder observes nothing" 0
        (List.length (Lockdep.edges ())))

let test_held_stacks_are_per_domain () =
  fresh ();
  (* This domain holds Wal_sync; another domain acquires Txn_lock.  With a
     shared held-stack that would record the reverse edge Wal_sync ->
     Txn_lock; per-domain stacks must not. *)
  Lockdep.with_held Lockdep.Wal_sync (fun () ->
      let d =
        Domain.spawn (fun () ->
            Lockdep.with_held Lockdep.Txn_lock (fun () -> ()))
      in
      Domain.join d);
  checkb "no cross-domain false edge" false
    (List.mem (Lockdep.Wal_sync, Lockdep.Txn_lock) (Lockdep.edges ()))

(* ---------------- Domain.spawn smoke: lock manager ---------------- *)

let test_lock_manager_smoke () =
  fresh ();
  let locks = Lock.create ~stats:(Stats.create ()) () in
  let mu = Mutex.create () in
  let domains = 4 and txns_per_domain = 25 in
  let failures = Atomic.make 0 in
  let worker d () =
    for i = 0 to txns_per_domain - 1 do
      let txn = (d * txns_per_domain) + i in
      (* Disjoint object ranges keep the schedule conflict-free; the shared
         set is taken in IX, which is self-compatible. *)
      let oid = { Oid.file = 1; page = txn; slot = 0 } in
      try
        Mutex.protect mu (fun () ->
            Lock.acquire locks ~txn (Lock.Set "S") Lock.IX;
            Lock.acquire locks ~txn (Lock.Obj oid) Lock.X;
            checkb "holds its X lock" true
              (Lock.holds locks ~txn (Lock.Obj oid) Lock.X));
        Mutex.protect mu (fun () -> Lock.release_all locks ~txn)
      with _ -> Atomic.incr failures
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  checki "no worker failed" 0 (Atomic.get failures);
  checki "all locks released" 0 (Lock.active_locks locks)

(* ---------------- Domain.spawn smoke: buffer pool ---------------- *)

let test_buffer_pool_smoke () =
  fresh ();
  let disk = Disk.create ~page_size:256 (Stats.create ()) in
  let file = Disk.create_file disk in
  let domains = 4 and pages_per_domain = 8 in
  for _ = 0 to (domains * pages_per_domain) - 1 do
    ignore (Disk.allocate_page disk file)
  done;
  let pool = Buffer_pool.create disk ~frames:16 in
  let mu = Mutex.create () in
  let failures = Atomic.make 0 in
  let worker d () =
    for i = 0 to pages_per_domain - 1 do
      let page = (d * pages_per_domain) + i in
      try
        (* Write the page's number into its first byte, then read it back;
           every pool call runs under the coarse latch. *)
        Mutex.protect mu (fun () ->
            Buffer_pool.with_page_write pool ~file ~page (fun buf ->
                Bytes.set buf 0 (Char.chr (page land 0xff))));
        Mutex.protect mu (fun () ->
            Buffer_pool.with_page_read pool ~file ~page (fun buf ->
                if Char.code (Bytes.get buf 0) <> page land 0xff then
                  failwith "readback mismatch"))
      with _ -> Atomic.incr failures
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  checki "no worker failed" 0 (Atomic.get failures);
  Mutex.protect mu (fun () -> Buffer_pool.flush pool);
  (* Every frame unpinned: a full clear must succeed. *)
  Mutex.protect mu (fun () -> Buffer_pool.clear pool);
  checki "nothing left resident" 0 (Buffer_pool.resident pool)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "fieldrep_domains"
    [
      ( "lockdep",
        [
          tc "edge recording" test_edge_recording;
          tc "inversion" test_inversion_detected;
          tc "transitive inversion" test_transitive_inversion;
          tc "release ends span" test_release_ends_span;
          tc "isolated boundary" test_isolated_resets_held;
          tc "disabled" test_disabled_is_free;
          tc "per-domain held stacks" test_held_stacks_are_per_domain;
        ] );
      ( "smoke",
        [
          tc "lock manager across domains" test_lock_manager_smoke;
          tc "buffer pool across domains" test_buffer_pool_smoke;
        ] );
    ]
