(* Tests for the storage manager: OIDs, slotted pages, the simulated disk,
   the buffer pool, and heap files (including chained oversize objects). *)

module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Page = Fieldrep_storage.Page
module Disk = Fieldrep_storage.Disk
module Buffer_pool = Fieldrep_storage.Buffer_pool
module Pager = Fieldrep_storage.Pager
module Heap_file = Fieldrep_storage.Heap_file
module Splitmix = Fieldrep_util.Splitmix

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Oid                                                                 *)

let test_oid_roundtrip () =
  List.iter
    (fun oid ->
      let buf = Bytes.create Oid.encoded_size in
      ignore (Oid.encode buf 0 oid);
      let decoded, off = Oid.decode buf 0 in
      checkb "equal" true (Oid.equal oid decoded);
      checki "advance" Oid.encoded_size off;
      checkb "int64 roundtrip" true (Oid.equal oid (Oid.of_int64 (Oid.to_int64 oid))))
    [
      { Oid.file = 0; page = 0; slot = 0 };
      { Oid.file = 5; page = 12345; slot = 77 };
      { Oid.file = 65534; page = 0xFFFF_FFFE; slot = 65534 };
      Oid.nil;
    ]

let test_oid_order_is_physical () =
  let a = { Oid.file = 1; page = 5; slot = 9 } in
  let b = { Oid.file = 1; page = 6; slot = 0 } in
  let c = { Oid.file = 2; page = 0; slot = 0 } in
  checkb "page order" true (Oid.compare a b < 0);
  checkb "file order" true (Oid.compare b c < 0);
  checkb "reflexive" true (Oid.compare a a = 0)

let test_oid_nil () =
  checkb "nil is nil" true (Oid.is_nil Oid.nil);
  checkb "ordinary oid" false (Oid.is_nil { Oid.file = 0; page = 0; slot = 0 })

let test_oid_containers () =
  let oids = List.init 100 (fun i -> { Oid.file = i mod 3; page = i; slot = i * 7 mod 11 }) in
  let set = Oid.Set.of_list oids in
  checki "set size" 100 (Oid.Set.cardinal set);
  let tbl = Oid.Table.create 16 in
  List.iteri (fun i oid -> Oid.Table.replace tbl oid i) oids;
  checki "table size" 100 (Oid.Table.length tbl)

(* ------------------------------------------------------------------ *)
(* Page                                                                *)

let fresh_page ?(size = 512) () =
  let page = Bytes.create size in
  Page.init page;
  page

let payload n c = Bytes.make n c

let test_page_insert_read () =
  let page = fresh_page () in
  let s1 = Option.get (Page.insert page (payload 10 'a')) in
  let s2 = Option.get (Page.insert page (payload 20 'b')) in
  checki "distinct slots" 1 (s2 - s1);
  Alcotest.(check bytes) "read back a" (payload 10 'a') (Page.read page s1);
  Alcotest.(check bytes) "read back b" (payload 20 'b') (Page.read page s2);
  checki "live" 2 (Page.live_count page)

let test_page_delete_and_reuse () =
  let page = fresh_page () in
  let s1 = Option.get (Page.insert page (payload 10 'a')) in
  let _s2 = Option.get (Page.insert page (payload 10 'b')) in
  Page.delete page s1;
  checkb "dead" false (Page.is_live page s1);
  checki "live" 1 (Page.live_count page);
  (* The freed directory entry is reused. *)
  let s3 = Option.get (Page.insert page (payload 5 'c')) in
  checki "slot reused" s1 s3

let test_page_fill_to_capacity () =
  let page = fresh_page ~size:256 () in
  let inserted = ref 0 in
  (try
     while true do
       match Page.insert page (payload 16 'x') with
       | Some _ -> incr inserted
       | None -> raise Exit
     done
   with Exit -> ());
  (* 256 - 4 header; each record costs 16 + 4 directory = 20. *)
  checki "capacity" 12 !inserted;
  checkb "page full" false (Page.fits page 16)

let test_page_compaction_recovers_space () =
  let page = fresh_page ~size:256 () in
  let slots = List.init 12 (fun _ -> Option.get (Page.insert page (payload 16 'x'))) in
  (* Free alternating slots, then a 32-byte record must fit via compaction. *)
  List.iteri (fun i s -> if i mod 2 = 0 then Page.delete page s) slots;
  (match Page.insert page (payload 32 'y') with
  | Some s -> Alcotest.(check bytes) "read" (payload 32 'y') (Page.read page s)
  | None -> Alcotest.fail "compaction failed to recover space")

let test_page_write_in_place_and_grow () =
  let page = fresh_page () in
  let s = Option.get (Page.insert page (payload 50 'a')) in
  checkb "shrink" true (Page.write page s (payload 10 'b'));
  Alcotest.(check bytes) "shrunk" (payload 10 'b') (Page.read page s);
  checkb "grow" true (Page.write page s (payload 100 'c'));
  Alcotest.(check bytes) "grown" (payload 100 'c') (Page.read page s)

let test_page_write_too_big_fails_cleanly () =
  let page = fresh_page ~size:128 () in
  let s = Option.get (Page.insert page (payload 40 'a')) in
  checkb "rejected" false (Page.write page s (payload 1000 'b'));
  Alcotest.(check bytes) "old intact" (payload 40 'a') (Page.read page s)

let test_page_iter_order () =
  let page = fresh_page () in
  let s0 = Option.get (Page.insert page (payload 4 '0')) in
  let s1 = Option.get (Page.insert page (payload 4 '1')) in
  let s2 = Option.get (Page.insert page (payload 4 '2')) in
  Page.delete page s1;
  let visited = Page.fold (fun acc s _ -> s :: acc) [] page in
  Alcotest.(check (list int)) "slot order" [ s0; s2 ] (List.rev visited)

let test_page_dead_slot_raises () =
  let page = fresh_page () in
  let s = Option.get (Page.insert page (payload 4 'a')) in
  Page.delete page s;
  (try
     ignore (Page.read page s);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  (try
     Page.delete page s;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Disk                                                                *)

let test_disk_io_counting () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:128 stats in
  let f = Disk.create_file disk in
  let p = Disk.allocate_page disk f in
  checki "no reads yet" 0 stats.Stats.page_reads;
  checki "allocation tracked" 1 stats.Stats.pages_allocated;
  let buf = Bytes.make 128 'z' in
  Disk.write_page disk ~file:f ~page:p buf;
  checki "one write" 1 stats.Stats.page_writes;
  let out = Bytes.create 128 in
  Disk.read_page disk ~file:f ~page:p out;
  checki "one read" 1 stats.Stats.page_reads;
  Alcotest.(check bytes) "data" buf out

let test_disk_many_pages () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let f = Disk.create_file disk in
  for i = 0 to 99 do
    let p = Disk.allocate_page disk f in
    checki "sequential page numbers" i p
  done;
  checki "page count" 100 (Disk.page_count disk f)

let test_disk_bad_page_rejected () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let f = Disk.create_file disk in
  (try
     Disk.read_page disk ~file:f ~page:0 (Bytes.create 64);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                         *)

let test_pool_hit_avoids_io () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let pool = Buffer_pool.create disk ~frames:4 in
  let f = Disk.create_file disk in
  let p = Buffer_pool.new_page pool ~file:f in
  checki "no read on new page" 0 stats.Stats.page_reads;
  Buffer_pool.with_page_write pool ~file:f ~page:p (fun buf -> Bytes.fill buf 0 8 'q');
  Buffer_pool.with_page_read pool ~file:f ~page:p (fun buf ->
      Alcotest.(check char) "resident data" 'q' (Bytes.get buf 0));
  checki "still no physical read" 0 stats.Stats.page_reads;
  checki "hits recorded" 2 stats.Stats.buffer_hits

let test_pool_eviction_writes_dirty () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let pool = Buffer_pool.create disk ~frames:2 in
  let f = Disk.create_file disk in
  let pages = List.init 4 (fun _ -> Buffer_pool.new_page pool ~file:f) in
  List.iteri
    (fun i p ->
      Buffer_pool.with_page_write pool ~file:f ~page:p (fun buf ->
          Bytes.fill buf 0 8 (Char.chr (Char.code 'a' + i))))
    pages;
  (* Pool holds 2 frames; 4 dirty pages forced at least 2 evictions. *)
  checkb "evictions wrote" true (stats.Stats.page_writes >= 2);
  (* All data must survive eviction. *)
  List.iteri
    (fun i p ->
      Buffer_pool.with_page_read pool ~file:f ~page:p (fun buf ->
          Alcotest.(check char) "survives" (Char.chr (Char.code 'a' + i)) (Bytes.get buf 0)))
    pages

let test_pool_clear_forces_cold_reads () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let pool = Buffer_pool.create disk ~frames:8 in
  let f = Disk.create_file disk in
  let p = Buffer_pool.new_page pool ~file:f in
  Buffer_pool.with_page_write pool ~file:f ~page:p (fun buf -> Bytes.fill buf 0 4 'k');
  Buffer_pool.clear pool;
  let before = stats.Stats.page_reads in
  Buffer_pool.with_page_read pool ~file:f ~page:p (fun buf ->
      Alcotest.(check char) "data flushed" 'k' (Bytes.get buf 0));
  checki "cold read" (before + 1) stats.Stats.page_reads

(* Regression: Pager.delete_file used to clear the WHOLE pool, evicting
   every other file's frames; it must only drop the deleted file's. *)
let test_delete_file_keeps_other_files_resident () =
  let pager = Pager.create ~page_size:64 ~frames:8 () in
  let stats = Pager.stats pager in
  let keep = Pager.create_file pager in
  let doomed = Pager.create_file pager in
  let kp = Pager.new_page pager ~file:keep in
  Pager.with_page_write pager ~file:keep ~page:kp (fun buf -> Bytes.fill buf 0 4 'k');
  let dp = Pager.new_page pager ~file:doomed in
  Pager.with_page_write pager ~file:doomed ~page:dp (fun buf -> Bytes.fill buf 0 4 'd');
  Pager.delete_file pager doomed;
  let before = stats.Stats.page_reads in
  Pager.with_page_read pager ~file:keep ~page:kp (fun buf ->
      Alcotest.(check char) "data intact" 'k' (Bytes.get buf 0));
  checki "still resident: no physical read" before stats.Stats.page_reads

let test_drop_file_discards_without_writeback () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let pool = Buffer_pool.create disk ~frames:4 in
  let f = Disk.create_file disk in
  let p = Buffer_pool.new_page pool ~file:f in
  Buffer_pool.with_page_write pool ~file:f ~page:p (fun buf -> Bytes.fill buf 0 4 'x');
  let writes = stats.Stats.page_writes in
  Buffer_pool.drop_file pool ~file:f;
  checki "dirty frame dropped, not written" writes stats.Stats.page_writes;
  (* The frame really is gone: re-reading goes to the disk. *)
  let reads = stats.Stats.page_reads in
  Buffer_pool.with_page_read pool ~file:f ~page:p (fun _ -> ());
  checki "cold read after drop" (reads + 1) stats.Stats.page_reads

let test_pool_exhaustion () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let pool = Buffer_pool.create disk ~frames:1 in
  let f = Disk.create_file disk in
  let p0 = Buffer_pool.new_page pool ~file:f in
  let p1 = Buffer_pool.new_page pool ~file:f in
  (try
     Buffer_pool.with_page_read pool ~file:f ~page:p0 (fun _ ->
         Buffer_pool.with_page_read pool ~file:f ~page:p1 (fun _ -> ()));
     Alcotest.fail "expected Exhausted"
   with Buffer_pool.Exhausted -> ())

let test_pool_pin_released_on_exception () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let pool = Buffer_pool.create disk ~frames:1 in
  let f = Disk.create_file disk in
  let p0 = Buffer_pool.new_page pool ~file:f in
  (try
     Buffer_pool.with_page_read pool ~file:f ~page:p0 (fun _ -> failwith "boom")
   with Failure _ -> ());
  (* The pin must have been dropped: a different page can now evict p0. *)
  let p1 = Buffer_pool.new_page pool ~file:f in
  Buffer_pool.with_page_read pool ~file:f ~page:p1 (fun _ -> ())

(* Regression: new_page used to call Disk.allocate_page before claiming a
   victim frame, so an exhausted pool leaked the freshly allocated disk
   page (there is no Disk.free_page to return it). *)
let test_new_page_no_leak_when_exhausted () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let pool = Buffer_pool.create disk ~frames:2 in
  let f = Disk.create_file disk in
  let p0 = Buffer_pool.new_page pool ~file:f in
  let p1 = Buffer_pool.new_page pool ~file:f in
  checki "two pages allocated" 2 (Disk.page_count disk f);
  (* Fill the pool with pinned frames, then ask for a third page. *)
  (try
     Buffer_pool.with_page_read pool ~file:f ~page:p0 (fun _ ->
         Buffer_pool.with_page_read pool ~file:f ~page:p1 (fun _ ->
             ignore (Buffer_pool.new_page pool ~file:f);
             Alcotest.fail "expected Exhausted"))
   with Buffer_pool.Exhausted -> ());
  checki "no disk page leaked" 2 (Disk.page_count disk f);
  (* Once unpinned, allocation proceeds and lands on the next page. *)
  checki "next allocation contiguous" 2 (Buffer_pool.new_page pool ~file:f)

(* Regression: drop_file / clear raised on a pinned frame mid-sweep,
   leaving some of the file's pages unmapped and others resident.  They
   must refuse before mutating anything. *)
let test_delete_file_with_pinned_page_is_atomic () =
  let pager = Pager.create ~page_size:64 ~frames:8 () in
  let stats = Pager.stats pager in
  let f = Pager.create_file pager in
  let p0 = Pager.new_page pager ~file:f in
  let p1 = Pager.new_page pager ~file:f in
  Pager.with_page_write pager ~file:f ~page:p0 (fun buf -> Bytes.fill buf 0 4 'a');
  Pager.with_page_write pager ~file:f ~page:p1 (fun buf -> Bytes.fill buf 0 4 'b');
  (try
     Pager.with_page_read pager ~file:f ~page:p0 (fun _ ->
         Pager.delete_file pager f;
         Alcotest.fail "expected Invalid_argument")
   with Invalid_argument _ -> ());
  (* Nothing was unmapped and the disk file survived: both pages are still
     served from the pool without physical reads. *)
  checkb "file still exists" true (Disk.file_exists (Pager.disk pager) f);
  let reads = stats.Stats.page_reads in
  Pager.with_page_read pager ~file:f ~page:p0 (fun buf ->
      Alcotest.(check char) "p0 intact" 'a' (Bytes.get buf 0));
  Pager.with_page_read pager ~file:f ~page:p1 (fun buf ->
      Alcotest.(check char) "p1 intact" 'b' (Bytes.get buf 0));
  checki "both pages stayed resident" reads stats.Stats.page_reads;
  (* With the pin gone the delete goes through. *)
  Pager.delete_file pager f;
  checkb "file deleted" false (Disk.file_exists (Pager.disk pager) f)

let test_clear_with_pinned_page_is_atomic () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let pool = Buffer_pool.create disk ~frames:4 in
  let f = Disk.create_file disk in
  let p0 = Buffer_pool.new_page pool ~file:f in
  let p1 = Buffer_pool.new_page pool ~file:f in
  Buffer_pool.flush pool;
  (try
     Buffer_pool.with_page_read pool ~file:f ~page:p0 (fun _ ->
         Buffer_pool.clear pool;
         Alcotest.fail "expected Invalid_argument")
   with Invalid_argument _ -> ());
  let reads = stats.Stats.page_reads in
  Buffer_pool.with_page_read pool ~file:f ~page:p0 (fun _ -> ());
  Buffer_pool.with_page_read pool ~file:f ~page:p1 (fun _ -> ());
  checki "no frame was dropped" reads stats.Stats.page_reads

(* Regression: install evicted the victim before attempting the physical
   read, so a read that failed after retries silently dropped a clean
   cached page.  The failure must leave the pool untouched and be counted
   in [failed_reads], keeping hits + reads + failed_reads consistent. *)
let test_install_read_failure_keeps_victim () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:64 stats in
  let pool = Buffer_pool.create disk ~frames:1 in
  let f = Disk.create_file disk in
  let p0 = Buffer_pool.new_page pool ~file:f in
  let p1 = Buffer_pool.new_page pool ~file:f in
  Buffer_pool.with_page_write pool ~file:f ~page:p0 (fun buf ->
      Bytes.fill buf 0 4 'v');
  Buffer_pool.flush pool;
  (* p0 is the sole resident (clean) frame.  Make every read of p1 fail,
     past the retry budget. *)
  Disk.set_read_failpoint ~count:10 disk ~after_reads:0;
  (try
     Buffer_pool.with_page_read pool ~file:f ~page:p1 (fun _ -> ());
     Alcotest.fail "expected Read_error"
   with Disk.Read_error _ -> ());
  Disk.clear_read_failpoint disk;
  checki "failure counted" 1 stats.Stats.failed_reads;
  checki "all attempts retried" 2 stats.Stats.read_retries;
  (* The clean victim survived: p0 is served without a physical read. *)
  let reads = stats.Stats.page_reads in
  Buffer_pool.with_page_read pool ~file:f ~page:p0 (fun buf ->
      Alcotest.(check char) "victim intact" 'v' (Bytes.get buf 0));
  checki "victim still resident" reads stats.Stats.page_reads;
  (* And the faulty page remains fetchable once the fault clears. *)
  Buffer_pool.with_page_read pool ~file:f ~page:p1 (fun _ -> ())

(* Sequential read-ahead: two adjacent demand misses start a run; the next
   [depth] pages are read ahead and later accesses to them are hits. *)
let test_prefetch_sequential_scan () =
  let pager = Pager.create ~page_size:64 ~frames:16 ~prefetch:4 () in
  let stats = Pager.stats pager in
  let f = Pager.create_file pager in
  for _ = 0 to 7 do
    ignore (Pager.new_page pager ~file:f)
  done;
  Pager.flush pager;
  Pager.run_cold pager (fun () ->
      for p = 0 to 7 do
        Pager.with_page_read pager ~file:f ~page:p (fun _ -> ())
      done);
  (* Misses at 0 and 1; the miss at 1 prefetches 2-5; the miss at 6
     continues the run and prefetches 7. *)
  checki "pages read ahead" 5 stats.Stats.prefetch_issued;
  checki "read-ahead absorbed the demand" 5 stats.Stats.prefetch_hits;
  checki "every page read exactly once" 8 stats.Stats.page_reads;
  checki "prefetched pages were hits" 5 stats.Stats.buffer_hits

let test_prefetch_off_by_default () =
  let pager = Pager.create ~page_size:64 ~frames:16 () in
  let stats = Pager.stats pager in
  let f = Pager.create_file pager in
  for _ = 0 to 3 do
    ignore (Pager.new_page pager ~file:f)
  done;
  Pager.flush pager;
  Pager.run_cold pager (fun () ->
      for p = 0 to 3 do
        Pager.with_page_read pager ~file:f ~page:p (fun _ -> ())
      done);
  checki "no read-ahead" 0 stats.Stats.prefetch_issued;
  checki "one read per page" 4 stats.Stats.page_reads

(* Regression: a negative depth must clamp to "off", not poison the
   adjacency arithmetic inside the pool. *)
let test_prefetch_negative_depth_clamps () =
  let pager = Pager.create ~page_size:64 ~frames:16 ~prefetch:4 () in
  Pager.set_prefetch pager (-3);
  checki "negative depth reads as off" 0 (Pager.prefetch_depth pager);
  let stats = Pager.stats pager in
  let f = Pager.create_file pager in
  for _ = 0 to 3 do
    ignore (Pager.new_page pager ~file:f)
  done;
  Pager.flush pager;
  Pager.run_cold pager (fun () ->
      for p = 0 to 3 do
        Pager.with_page_read pager ~file:f ~page:p (fun _ -> ())
      done);
  checki "no read-ahead with clamped depth" 0 stats.Stats.prefetch_issued;
  checki "one read per page" 4 stats.Stats.page_reads;
  (* And setting a sane depth afterwards re-enables read-ahead. *)
  Pager.set_prefetch pager 2;
  checki "positive depth sticks" 2 (Pager.prefetch_depth pager)

(* ------------------------------------------------------------------ *)
(* Heap file                                                           *)

let mk_pager ?(page_size = 512) ?(frames = 32) () = Pager.create ~page_size ~frames ()

let test_heap_insert_read () =
  let pager = mk_pager () in
  let hf = Heap_file.create pager in
  let data = List.init 50 (fun i -> Bytes.of_string (Printf.sprintf "object-%04d" i)) in
  let oids = List.map (Heap_file.insert hf) data in
  checki "count" 50 (Heap_file.object_count hf);
  List.iter2
    (fun oid d -> Alcotest.(check bytes) "payload" d (Heap_file.read hf oid))
    oids data

let test_heap_physical_order () =
  let pager = mk_pager () in
  let hf = Heap_file.create pager in
  let oids = List.init 100 (fun i -> Heap_file.insert hf (Bytes.make 20 (Char.chr (i mod 256)))) in
  (* Home slots must be non-decreasing in physical order. *)
  List.iteri
    (fun i oid ->
      if i > 0 then
        checkb "insertion order is physical order" true
          (Oid.compare (List.nth oids (i - 1)) oid < 0))
    oids;
  (* iter yields the same order. *)
  let visited = ref [] in
  Heap_file.iter hf (fun oid _ -> visited := oid :: !visited);
  Alcotest.(check (list string))
    "iter order" (List.map Oid.to_string oids)
    (List.rev_map Oid.to_string !visited |> List.rev |> List.rev)

let test_heap_update_same_size () =
  let pager = mk_pager () in
  let hf = Heap_file.create pager in
  let oid = Heap_file.insert hf (Bytes.make 30 'a') in
  Heap_file.update hf oid (Bytes.make 30 'b');
  Alcotest.(check bytes) "updated" (Bytes.make 30 'b') (Heap_file.read hf oid)

let test_heap_update_grow_within_page () =
  let pager = mk_pager () in
  let hf = Heap_file.create pager in
  let oid = Heap_file.insert hf (Bytes.make 10 'a') in
  Heap_file.update hf oid (Bytes.make 200 'b');
  Alcotest.(check bytes) "grown" (Bytes.make 200 'b') (Heap_file.read hf oid)

let test_heap_update_grow_spills () =
  let pager = mk_pager () in
  let hf = Heap_file.create pager in
  (* Fill a page almost completely so in-place growth is impossible. *)
  let oid = Heap_file.insert hf (Bytes.make 100 'a') in
  let _fill = List.init 3 (fun _ -> Heap_file.insert hf (Bytes.make 110 'f')) in
  Heap_file.update hf oid (Bytes.make 400 'g');
  Alcotest.(check bytes) "spilled object readable" (Bytes.make 400 'g') (Heap_file.read hf oid);
  (* The OID is stable: still the same home slot. *)
  checkb "oid still live" true (Heap_file.exists hf oid)

let test_heap_object_larger_than_page () =
  let pager = mk_pager () in
  let hf = Heap_file.create pager in
  let big = Bytes.init 2500 (fun i -> Char.chr (i mod 251)) in
  let oid = Heap_file.insert hf big in
  Alcotest.(check bytes) "multi-page object" big (Heap_file.read hf oid);
  Heap_file.delete hf oid;
  checkb "gone" false (Heap_file.exists hf oid);
  checki "count" 0 (Heap_file.object_count hf)

let test_heap_shrink_frees_chain () =
  let pager = mk_pager () in
  let hf = Heap_file.create pager in
  let big = Bytes.make 2000 'x' in
  let oid = Heap_file.insert hf big in
  Heap_file.update hf oid (Bytes.make 8 'y');
  Alcotest.(check bytes) "shrunk" (Bytes.make 8 'y') (Heap_file.read hf oid);
  (* Chain segments freed: a same-size reinsert should not grow the file. *)
  let pages_before = Heap_file.page_count hf in
  let _ = Heap_file.insert hf (Bytes.make 400 'z') in
  checkb "space reused" true (Heap_file.page_count hf <= pages_before + 1)

let test_heap_delete_then_scan () =
  let pager = mk_pager () in
  let hf = Heap_file.create pager in
  let oids = Array.init 30 (fun i -> Heap_file.insert hf (Bytes.make 25 (Char.chr (65 + (i mod 26))))) in
  Array.iteri (fun i oid -> if i mod 3 = 0 then Heap_file.delete hf oid) oids;
  checki "count after deletes" 20 (Heap_file.object_count hf);
  let seen = ref 0 in
  Heap_file.iter hf (fun _ _ -> incr seen);
  checki "scan count" 20 !seen

let test_heap_attach_recovers () =
  let pager = mk_pager () in
  let hf = Heap_file.create pager in
  let _ = List.init 40 (fun i -> Heap_file.insert hf (Bytes.make 25 (Char.chr (65 + (i mod 26))))) in
  let hf2 = Heap_file.attach pager ~file:(Heap_file.file_id hf) in
  checki "recovered count" 40 (Heap_file.object_count hf2)

let test_heap_dead_oid_raises () =
  let pager = mk_pager () in
  let hf = Heap_file.create pager in
  let oid = Heap_file.insert hf (Bytes.make 10 'a') in
  Heap_file.delete hf oid;
  (try
     ignore (Heap_file.read hf oid);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* run_cold                                                            *)

let test_run_cold_measures_distinct_pages () =
  let pager = mk_pager ~page_size:512 ~frames:64 () in
  let hf = Heap_file.create pager in
  let oids = Array.init 200 (fun _ -> Heap_file.insert hf (Bytes.make 40 'd')) in
  let npages = Heap_file.page_count hf in
  Pager.run_cold pager (fun () ->
      (* Read every object twice; each page must be read exactly once. *)
      Array.iter (fun oid -> ignore (Heap_file.read hf oid)) oids;
      Array.iter (fun oid -> ignore (Heap_file.read hf oid)) oids);
  checki "reads = distinct pages" npages (Pager.stats pager).Stats.page_reads;
  checki "no writes for read-only work" 0 (Pager.stats pager).Stats.page_writes

(* ------------------------------------------------------------------ *)
(* Backend conformance                                                 *)

(* The same scenario battery runs against every backend: the in-memory
   arrays and the real-file store must be observationally identical
   through the Disk API — checksums, quarantine, fault injection and
   image support included.  [File None] backs each disk with a fresh
   temp directory that [Disk.close] removes. *)

let psize = 256

let with_disk kind f =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size:psize ~backend:kind stats in
  Fun.protect ~finally:(fun () -> Disk.close disk) (fun () -> f disk)

let page_of i c =
  Bytes.init psize (fun j -> Char.chr ((Char.code c + i + j) mod 256))

let conf_roundtrip kind () =
  with_disk kind (fun disk ->
      let f1 = Disk.create_file disk in
      let f2 = Disk.create_file disk in
      let pages =
        List.init 10 (fun i ->
            let p = Disk.allocate_page disk f1 in
            let buf = page_of i 'a' in
            Disk.write_page disk ~file:f1 ~page:p buf;
            (p, buf))
      in
      ignore (Disk.allocate_page disk f2);
      checki "page count" 10 (Disk.page_count disk f1);
      checki "total pages" 11 (Disk.total_pages disk);
      Alcotest.(check (list int))
        "file ids" [ f1; f2 ]
        (List.sort compare (Disk.file_ids disk));
      let out = Bytes.create psize in
      List.iter
        (fun (p, buf) ->
          Disk.read_page disk ~file:f1 ~page:p out;
          Alcotest.(check bytes) "data" buf out)
        pages;
      (* A fresh allocation reads back zeroed (and checksum-valid). *)
      let p = Disk.allocate_page disk f2 in
      Disk.read_page disk ~file:f2 ~page:p out;
      Alcotest.(check bytes) "zeroed" (Bytes.make psize '\000') out;
      checkb "exists" true (Disk.file_exists disk f1);
      Disk.delete_file disk f1;
      checkb "deleted" false (Disk.file_exists disk f1);
      checki "remaining pages" 2 (Disk.total_pages disk))

let conf_quarantine_heal kind () =
  with_disk kind (fun disk ->
      let f = Disk.create_file disk in
      let p = Disk.allocate_page disk f in
      let buf = page_of 0 'q' in
      Disk.write_page disk ~file:f ~page:p buf;
      Disk.corrupt_page disk ~file:f ~page:p [ 3; 17 ];
      let out = Bytes.make psize 'Z' in
      (try
         Disk.read_page disk ~file:f ~page:p out;
         Alcotest.fail "expected Corrupt_page"
       with Disk.Corrupt_page { file; page } ->
         checki "names the file" f file;
         checki "names the page" p page);
      Alcotest.(check bytes) "caller buffer untouched" (Bytes.make psize 'Z') out;
      checkb "quarantined" true (Disk.quarantined disk ~file:f ~page:p);
      checki "failure counted" 1 (Disk.stats disk).Stats.checksum_failures;
      (* Re-reads keep failing from the quarantine entry. *)
      (try
         Disk.read_page disk ~file:f ~page:p out;
         Alcotest.fail "still corrupt"
       with Disk.Corrupt_page _ -> ());
      (* Rewriting fresh content heals. *)
      Disk.write_page disk ~file:f ~page:p buf;
      checkb "healed" false (Disk.quarantined disk ~file:f ~page:p);
      Disk.read_page disk ~file:f ~page:p out;
      Alcotest.(check bytes) "healed data" buf out)

let conf_torn_write kind () =
  with_disk kind (fun disk ->
      let f = Disk.create_file disk in
      let p = Disk.allocate_page disk f in
      let old_page = page_of 1 'o' in
      Disk.write_page disk ~file:f ~page:p old_page;
      let torn = page_of 64 'n' in
      Disk.set_failpoint ~torn:true disk ~after_writes:0;
      (try
         Disk.write_page disk ~file:f ~page:p torn;
         Alcotest.fail "expected Crash"
       with Disk.Crash _ -> ());
      Disk.clear_failpoint disk;
      (* Exactly the first half landed; the stored checksum is stale. *)
      let half = psize / 2 in
      let raw = Disk.dump_page disk ~file:f ~page:p in
      Alcotest.(check bytes)
        "first half is the new write" (Bytes.sub torn 0 half) (Bytes.sub raw 0 half);
      Alcotest.(check bytes)
        "second half is the old page"
        (Bytes.sub old_page half (psize - half))
        (Bytes.sub raw half (psize - half));
      checkb "verify fails" false (Disk.verify_page disk ~file:f ~page:p);
      try
        Disk.read_page disk ~file:f ~page:p (Bytes.create psize);
        Alcotest.fail "expected Corrupt_page"
      with Disk.Corrupt_page _ -> ())

let conf_failpoint_crash kind () =
  with_disk kind (fun disk ->
      let f = Disk.create_file disk in
      let pages = Array.init 6 (fun _ -> Disk.allocate_page disk f) in
      Disk.set_failpoint disk ~after_writes:3;
      let wrote = ref 0 in
      (try
         Array.iteri
           (fun i p ->
             Disk.write_page disk ~file:f ~page:p (page_of i 'w');
             incr wrote)
           pages;
         Alcotest.fail "expected Crash"
       with Disk.Crash _ -> ());
      checki "crash after three writes" 3 !wrote;
      Disk.clear_failpoint disk;
      let out = Bytes.create psize in
      (* The completed writes are intact and still checksum-valid... *)
      for i = 0 to 2 do
        Disk.read_page disk ~file:f ~page:pages.(i) out;
        Alcotest.(check bytes) "survived the crash" (page_of i 'w') out
      done;
      (* ...and the crashed (non-torn) write never touched its page. *)
      Disk.read_page disk ~file:f ~page:pages.(3) out;
      Alcotest.(check bytes) "crashed write absent" (Bytes.make psize '\000') out)

let conf_tear_page kind () =
  with_disk kind (fun disk ->
      let f = Disk.create_file disk in
      let p = Disk.allocate_page disk f in
      let buf = page_of 4 't' in
      Disk.write_page disk ~file:f ~page:p buf;
      Disk.tear_page disk ~file:f ~page:p;
      checkb "verify fails" false (Disk.verify_page disk ~file:f ~page:p);
      let half = psize / 2 in
      let raw = Disk.dump_page disk ~file:f ~page:p in
      Alcotest.(check bytes)
        "second half zeroed"
        (Bytes.make (psize - half) '\000')
        (Bytes.sub raw half (psize - half));
      Disk.write_page disk ~file:f ~page:p buf;
      checkb "heals on rewrite" true (Disk.verify_page disk ~file:f ~page:p))

let conf_read_failpoint kind () =
  with_disk kind (fun disk ->
      let f = Disk.create_file disk in
      let p = Disk.allocate_page disk f in
      let buf = page_of 0 'r' in
      Disk.write_page disk ~file:f ~page:p buf;
      Disk.set_read_failpoint ~count:2 disk ~after_reads:0;
      let out = Bytes.create psize in
      for _ = 1 to 2 do
        try
          Disk.read_page disk ~file:f ~page:p out;
          Alcotest.fail "expected Read_error"
        with Disk.Read_error _ -> ()
      done;
      (* Transient: the stored page was never damaged. *)
      Disk.read_page disk ~file:f ~page:p out;
      Alcotest.(check bytes) "fault cleared" buf out)

let conf_restore_file kind () =
  with_disk kind (fun disk ->
      let f = Disk.create_file disk in
      let p0 = Disk.allocate_page disk f in
      Disk.write_page disk ~file:f ~page:p0 (page_of 0 'i');
      ignore (Disk.allocate_page disk f);
      let img =
        Array.init (Disk.page_count disk f) (fun p ->
            Disk.dump_page disk ~file:f ~page:p)
      in
      (* Restore into a fresh disk at a never-allocated file id. *)
      with_disk kind (fun disk2 ->
          let id = 7 in
          Disk.restore_file disk2 ~id img;
          checki "pages restored" (Array.length img) (Disk.page_count disk2 id);
          let out = Bytes.create psize in
          (* Verified read: restore recomputed the checksums. *)
          Disk.read_page disk2 ~file:id ~page:0 out;
          Alcotest.(check bytes) "restored bytes" img.(0) out;
          checkb "id allocator bumped past the image" true
            (Disk.create_file disk2 > id)))

(* Satellite of the backend work: unknown files fail with a named error
   from every entry point — no bare [Not_found] escapes the layer. *)
let conf_unknown_file kind () =
  with_disk kind (fun disk ->
      Alcotest.check_raises "page_count names itself"
        (Invalid_argument "Disk.page_count: unknown file 42")
        (fun () -> ignore (Disk.page_count disk 42));
      Alcotest.check_raises "read_page names itself"
        (Invalid_argument "Disk.read_page: unknown file 42")
        (fun () -> Disk.read_page disk ~file:42 ~page:0 (Bytes.create psize));
      Alcotest.check_raises "allocate_page names itself"
        (Invalid_argument "Disk.allocate_page: unknown file 42")
        (fun () -> ignore (Disk.allocate_page disk 42)))

let conformance kind =
  [
    Alcotest.test_case "roundtrip" `Quick (conf_roundtrip kind);
    Alcotest.test_case "quarantine and heal" `Quick (conf_quarantine_heal kind);
    Alcotest.test_case "torn write detected" `Quick (conf_torn_write kind);
    Alcotest.test_case "write failpoint crash" `Quick (conf_failpoint_crash kind);
    Alcotest.test_case "tear_page" `Quick (conf_tear_page kind);
    Alcotest.test_case "transient read faults" `Quick (conf_read_failpoint kind);
    Alcotest.test_case "restore_file" `Quick (conf_restore_file kind);
    Alcotest.test_case "unknown file named errors" `Quick (conf_unknown_file kind);
  ]

(* File-backend specifics: descriptor caching and directory handling. *)

let test_file_fd_cache_eviction () =
  with_disk (Disk.File None) (fun disk ->
      (* Far more files than the descriptor cache holds: every file keeps
         working as its descriptor is evicted and reopened on demand. *)
      let files = Array.init 100 (fun _ -> Disk.create_file disk) in
      Array.iteri
        (fun i f ->
          let p = Disk.allocate_page disk f in
          Disk.write_page disk ~file:f ~page:p (page_of i 'f'))
        files;
      let out = Bytes.create psize in
      Array.iteri
        (fun i f ->
          Disk.read_page disk ~file:f ~page:0 out;
          Alcotest.(check bytes) "survives fd eviction" (page_of i 'f') out)
        files)

let test_file_explicit_dir () =
  let dir = Filename.temp_file "fieldrep-test" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let stats = Stats.create () in
      let disk = Disk.create ~page_size:psize ~backend:(Disk.File (Some dir)) stats in
      Alcotest.(check string) "backend name" "file" (Disk.backend_name disk);
      let f = Disk.create_file disk in
      let p = Disk.allocate_page disk f in
      Disk.write_page disk ~file:f ~page:p (page_of 0 'd');
      let backing = Filename.concat dir (Printf.sprintf "%06d.fdb" f) in
      checkb "backing file exists on disk" true (Sys.file_exists backing);
      (* One slot = page + 8-byte checksum trailer. *)
      checki "slot bytes on disk" (psize + 8)
        (let ic = open_in_bin backing in
         Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () -> in_channel_length ic));
      Disk.delete_file disk f;
      checkb "backing file removed" false (Sys.file_exists backing);
      (* Close is idempotent and leaves the caller-owned directory alone. *)
      Disk.close disk;
      Disk.close disk;
      checkb "caller-owned dir survives close" true (Sys.file_exists dir))

let test_backend_of_env () =
  let original = Sys.getenv_opt "FIELDREP_BACKEND" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "FIELDREP_BACKEND" (Option.value original ~default:""))
    (fun () ->
      Unix.putenv "FIELDREP_BACKEND" "";
      checkb "unset means mem" true (Disk.backend_of_env () = Disk.Mem);
      Unix.putenv "FIELDREP_BACKEND" "mem";
      checkb "mem" true (Disk.backend_of_env () = Disk.Mem);
      Unix.putenv "FIELDREP_BACKEND" "file";
      checkb "file" true (Disk.backend_of_env () = Disk.File None);
      Unix.putenv "FIELDREP_BACKEND" "bogus";
      try
        ignore (Disk.backend_of_env ());
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"heap model conformance" ~count:60
      (list_of_size Gen.(1 -- 120) (pair (int_range 0 3) (int_range 1 600)))
      (fun ops ->
        (* Model: a growable list of live payloads, mirrored against the
           heap file through insert / update / delete / read, randomised by
           the op stream. *)
        let pager = Pager.create ~page_size:256 ~frames:16 () in
        let hf = Heap_file.create pager in
        let live = ref [] in
        let counter = ref 0 in
        let ok = ref true in
        List.iter
          (fun (op, size) ->
            match op with
            | 0 ->
                incr counter;
                let payload = Bytes.make size (Char.chr (!counter mod 256)) in
                let oid = Heap_file.insert hf payload in
                live := (oid, payload) :: !live
            | 1 -> (
                match !live with
                | [] -> ()
                | (oid, _) :: rest ->
                    incr counter;
                    let payload = Bytes.make size (Char.chr (!counter mod 256)) in
                    Heap_file.update hf oid payload;
                    live := (oid, payload) :: rest)
            | 2 -> (
                match !live with
                | [] -> ()
                | (oid, _) :: rest ->
                    Heap_file.delete hf oid;
                    live := rest)
            | _ ->
                List.iter
                  (fun (oid, payload) ->
                    if not (Bytes.equal (Heap_file.read hf oid) payload) then ok := false)
                  !live)
          ops;
        List.iter
          (fun (oid, payload) ->
            if not (Bytes.equal (Heap_file.read hf oid) payload) then ok := false)
          !live;
        !ok && Heap_file.object_count hf = List.length !live);
    Test.make ~name:"page never corrupts neighbours" ~count:100
      (list_of_size Gen.(1 -- 40) (int_range 1 60))
      (fun sizes ->
        let page = Bytes.create 512 in
        Page.init page;
        let stored = Hashtbl.create 16 in
        List.iteri
          (fun i size ->
            let data = Bytes.make size (Char.chr (i mod 256)) in
            match Page.insert page data with
            | Some slot -> Hashtbl.replace stored slot data
            | None -> ())
          sizes;
        Hashtbl.fold
          (fun slot data acc -> acc && Bytes.equal (Page.read page slot) data)
          stored true);
  ]

let () =
  Alcotest.run "fieldrep_storage"
    [
      ( "oid",
        [
          Alcotest.test_case "roundtrip" `Quick test_oid_roundtrip;
          Alcotest.test_case "physical order" `Quick test_oid_order_is_physical;
          Alcotest.test_case "nil" `Quick test_oid_nil;
          Alcotest.test_case "containers" `Quick test_oid_containers;
        ] );
      ( "page",
        [
          Alcotest.test_case "insert/read" `Quick test_page_insert_read;
          Alcotest.test_case "delete and slot reuse" `Quick test_page_delete_and_reuse;
          Alcotest.test_case "fill to capacity" `Quick test_page_fill_to_capacity;
          Alcotest.test_case "compaction" `Quick test_page_compaction_recovers_space;
          Alcotest.test_case "write in place / grow" `Quick test_page_write_in_place_and_grow;
          Alcotest.test_case "oversized write rejected" `Quick test_page_write_too_big_fails_cleanly;
          Alcotest.test_case "iter order" `Quick test_page_iter_order;
          Alcotest.test_case "dead slot raises" `Quick test_page_dead_slot_raises;
        ] );
      ( "disk",
        [
          Alcotest.test_case "io counting" `Quick test_disk_io_counting;
          Alcotest.test_case "many pages" `Quick test_disk_many_pages;
          Alcotest.test_case "bad page rejected" `Quick test_disk_bad_page_rejected;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "hits avoid io" `Quick test_pool_hit_avoids_io;
          Alcotest.test_case "eviction writes dirty pages" `Quick test_pool_eviction_writes_dirty;
          Alcotest.test_case "clear forces cold reads" `Quick test_pool_clear_forces_cold_reads;
          Alcotest.test_case "delete_file keeps other files resident" `Quick
            test_delete_file_keeps_other_files_resident;
          Alcotest.test_case "drop_file discards without writeback" `Quick
            test_drop_file_discards_without_writeback;
          Alcotest.test_case "exhaustion raises" `Quick test_pool_exhaustion;
          Alcotest.test_case "pin released on exception" `Quick test_pool_pin_released_on_exception;
          Alcotest.test_case "new_page leaks nothing when exhausted" `Quick
            test_new_page_no_leak_when_exhausted;
          Alcotest.test_case "delete_file with pinned page is atomic" `Quick
            test_delete_file_with_pinned_page_is_atomic;
          Alcotest.test_case "clear with pinned page is atomic" `Quick
            test_clear_with_pinned_page_is_atomic;
          Alcotest.test_case "install read failure keeps victim" `Quick
            test_install_read_failure_keeps_victim;
          Alcotest.test_case "sequential read-ahead" `Quick test_prefetch_sequential_scan;
          Alcotest.test_case "read-ahead off by default" `Quick test_prefetch_off_by_default;
          Alcotest.test_case "negative depth clamps" `Quick
            test_prefetch_negative_depth_clamps;
        ] );
      ( "heap_file",
        [
          Alcotest.test_case "insert/read" `Quick test_heap_insert_read;
          Alcotest.test_case "physical order" `Quick test_heap_physical_order;
          Alcotest.test_case "update same size" `Quick test_heap_update_same_size;
          Alcotest.test_case "update grows in page" `Quick test_heap_update_grow_within_page;
          Alcotest.test_case "update spills to chain" `Quick test_heap_update_grow_spills;
          Alcotest.test_case "object larger than page" `Quick test_heap_object_larger_than_page;
          Alcotest.test_case "shrink frees chain" `Quick test_heap_shrink_frees_chain;
          Alcotest.test_case "delete then scan" `Quick test_heap_delete_then_scan;
          Alcotest.test_case "attach recovers" `Quick test_heap_attach_recovers;
          Alcotest.test_case "dead oid raises" `Quick test_heap_dead_oid_raises;
        ] );
      ( "cold runs",
        [ Alcotest.test_case "distinct pages counted once" `Quick test_run_cold_measures_distinct_pages ] );
      ("backend conformance: mem", conformance Disk.Mem);
      ("backend conformance: file", conformance (Disk.File None));
      ( "file backend",
        [
          Alcotest.test_case "fd cache eviction" `Quick test_file_fd_cache_eviction;
          Alcotest.test_case "explicit directory" `Quick test_file_explicit_dir;
          Alcotest.test_case "FIELDREP_BACKEND selection" `Quick test_backend_of_env;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
