(* fieldrep: command-line interface to the field-replication DBMS.

   Subcommands:
     model     - evaluate the analytical cost model at one configuration
     table     - print the paper's Figure 12 / 14 tables
     validate  - build a database, measure real I/O, compare to the model
     script    - execute an EXTRA-style statement script against a fresh db
     demo      - a short guided tour on the employee database
     master    - serve a generated database's WAL stream to replicas
     replica   - follow a master over TCP and apply its WAL stream
*)

module Db = Fieldrep.Db
module Value = Fieldrep_model.Value
module Lang = Fieldrep_query.Lang
module Params = Fieldrep_costmodel.Params
module Cost = Fieldrep_costmodel.Cost
module Sweep = Fieldrep_costmodel.Sweep
module Gen = Fieldrep_workload.Gen
module Mix = Fieldrep_workload.Mix
module T = Fieldrep_util.Tableprint
module Stats = Fieldrep_storage.Stats
module Wal = Fieldrep_wal.Wal
module Splitmix = Fieldrep_util.Splitmix
module Repl = Fieldrep_repl.Repl
module Transport = Fieldrep_repl.Transport
module Backoff = Fieldrep_repl.Backoff

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument definitions                                         *)

let strategy_conv =
  let parse = function
    | "none" | "no-replication" -> Ok Params.No_replication
    | "inplace" | "in-place" -> Ok Params.Inplace
    | "separate" -> Ok Params.Separate
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S (none|inplace|separate)" s))
  in
  let print fmt s = Format.pp_print_string fmt (Sweep.strategy_name s) in
  Arg.conv (parse, print)

let strategy =
  Arg.(
    value
    & opt strategy_conv Params.Inplace
    & info [ "strategy" ] ~docv:"STRATEGY" ~doc:"none, inplace or separate.")

let clustered =
  Arg.(value & flag & info [ "clustered" ] ~doc:"Use clustered indexes.")

let sharing =
  Arg.(value & opt int 1 & info [ "f"; "sharing" ] ~docv:"F" ~doc:"Sharing level f.")

let s_count =
  Arg.(value & opt int 10_000 & info [ "s-count" ] ~docv:"N" ~doc:"Cardinality of S.")

let read_sel =
  Arg.(value & opt float 0.002 & info [ "fr"; "read-sel" ] ~doc:"Read selectivity f_r.")

let update_sel =
  Arg.(value & opt float 0.001 & info [ "fs"; "update-sel" ] ~doc:"Update selectivity f_s.")

let clustering_of_flag c = if c then Params.Clustered else Params.Unclustered

let backend_conv =
  let parse s =
    if s = "mem" then Ok Db.Mem
    else if s = "file" then Ok (Db.File None)
    else if String.length s > 5 && String.sub s 0 5 = "file:" then
      Ok (Db.File (Some (String.sub s 5 (String.length s - 5))))
    else Error (`Msg (Printf.sprintf "unknown backend %S (mem|file|file:DIR)" s))
  in
  let print fmt = function
    | Db.Mem -> Format.pp_print_string fmt "mem"
    | Db.File None -> Format.pp_print_string fmt "file"
    | Db.File (Some d) -> Format.fprintf fmt "file:%s" d
  in
  Arg.conv (parse, print)

let backend =
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Page-store backend: $(b,mem) (in-memory arrays), $(b,file) (real \
           files under a fresh temp directory), or $(b,file:DIR).  Defaults \
           to the FIELDREP_BACKEND environment variable, else $(b,mem).")

(* ------------------------------------------------------------------ *)
(* model                                                               *)

let model_cmd =
  let run sharing s_count read_sel update_sel clustered update_prob =
    let p =
      { Params.default with Params.sharing; s_count; read_sel; update_sel }
    in
    let clustering = clustering_of_flag clustered in
    let rows =
      List.map
        (fun strategy ->
          let r = Cost.sum (Cost.read p strategy clustering) in
          let u = Cost.sum (Cost.update p strategy clustering) in
          [
            Sweep.strategy_name strategy;
            T.fixed 1 r;
            T.fixed 1 u;
            T.fixed 1 (Cost.total p strategy clustering ~update_prob);
            (if strategy = Params.No_replication then "-"
             else
               T.pct
                 (Cost.percent_vs_no_replication p strategy clustering ~update_prob));
          ])
        [ Params.No_replication; Params.Inplace; Params.Separate ]
    in
    Printf.printf "cost model at |S|=%d f=%d fr=%g fs=%g (%s), P(update)=%g\n" s_count
      sharing read_sel update_sel
      (match clustering with Params.Clustered -> "clustered" | Params.Unclustered -> "unclustered")
      update_prob;
    T.print ~header:[ "strategy"; "C_read"; "C_update"; "C_total"; "vs none" ] rows
  in
  let update_prob =
    Arg.(value & opt float 0.1 & info [ "p"; "update-prob" ] ~doc:"Update probability.")
  in
  Cmd.v
    (Cmd.info "model" ~doc:"Evaluate the analytical cost model (paper section 6).")
    Term.(const run $ sharing $ s_count $ read_sel $ update_sel $ clustered $ update_prob)

(* ------------------------------------------------------------------ *)
(* table                                                               *)

let table_cmd =
  let run clustered =
    let clustering = clustering_of_flag clustered in
    let cells = Sweep.table Params.default clustering in
    T.print
      ~header:[ "configuration"; "C_read"; "C_update" ]
      (List.map
         (fun c ->
           [
             Printf.sprintf "f=%d %s" c.Sweep.t_sharing (Sweep.strategy_name c.Sweep.t_strategy);
             string_of_int c.Sweep.c_read;
             string_of_int c.Sweep.c_update;
           ])
         cells)
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Print the paper's Figure 12 (or, with --clustered, Figure 14).")
    Term.(const run $ clustered)

(* ------------------------------------------------------------------ *)
(* validate                                                            *)

let validate_cmd =
  let run sharing s_count read_sel update_sel clustered strategy queries backend
      =
    let spec =
      {
        Gen.default_spec with
        Gen.sharing;
        s_count;
        strategy;
        clustering = clustering_of_flag clustered;
        backend;
      }
    in
    Printf.printf "building |S|=%d f=%d %s (%s) and measuring %d queries each...\n%!"
      s_count sharing (Sweep.strategy_name strategy)
      (if clustered then "clustered" else "unclustered")
      queries;
    let c = Mix.validate spec ~read_sel ~update_sel ~queries () in
    T.print
      ~header:[ ""; "measured"; "model" ]
      [
        [ "read I/O"; T.fixed 1 c.Mix.measured_read; T.fixed 1 c.Mix.model_read ];
        [ "update I/O"; T.fixed 1 c.Mix.measured_update; T.fixed 1 c.Mix.model_update ];
      ]
  in
  let queries =
    Arg.(value & opt int 12 & info [ "queries" ] ~doc:"Queries per measurement.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Measure real page I/O on a generated database and compare to the model.")
    Term.(
      const run $ sharing
      $ Arg.(value & opt int 2000 & info [ "s-count" ] ~docv:"N" ~doc:"Cardinality of S.")
      $ read_sel $ update_sel $ clustered $ strategy $ queries $ backend)

(* ------------------------------------------------------------------ *)
(* script                                                              *)

let script_cmd =
  let run file db_image save_image backend =
    let contents =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let db =
      match db_image with
      | Some path -> Db.load ?backend path
      | None -> Db.create ?backend ()
    in
    List.iter (fun o -> Format.printf "%a@." Lang.pp_outcome o) (Lang.exec_script db contents);
    match save_image with
    | Some path ->
        Db.save db path;
        Printf.printf "saved database image to %s\n" path
    | None -> ()
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Statement script.")
  in
  let db_image =
    Arg.(value & opt (some file) None & info [ "db" ] ~docv:"IMAGE" ~doc:"Open this database image instead of a fresh database.")
  in
  let save_image =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"IMAGE" ~doc:"Save the database image afterwards.")
  in
  Cmd.v
    (Cmd.info "script"
       ~doc:"Execute an EXTRA-style statement script (optionally against / into a database image).")
    Term.(const run $ file $ db_image $ save_image $ backend)

(* ------------------------------------------------------------------ *)
(* demo                                                                *)

let demo_cmd =
  let run () =
    let db = Gen.employee_db ~norgs:3 ~ndepts:8 ~nemps:60 () in
    let show stmt =
      Printf.printf "> %s\n" stmt;
      Format.printf "%a@.@." Lang.pp_outcome (Lang.exec db stmt)
    in
    Printf.printf "employee database: %d orgs, %d depts, %d employees\n\n"
      (Db.set_size db "Org") (Db.set_size db "Dept") (Db.set_size db "Emp1");
    show "replicate Emp1.dept.name";
    show "replicate Emp1.dept.org.name using separate";
    show "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) where Emp1.salary > 140000";
    show {|replace (Dept.budget = 123456) where Dept.name = "dept-03"|};
    show "retrieve (Emp1.name, Emp1.dept.org.name) where Emp1.salary > 145000";
    Db.check_integrity db;
    Printf.printf "integrity: ok\n"
  in
  Cmd.v (Cmd.info "demo" ~doc:"A short guided tour on the employee database.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* master / replica: streaming replication over TCP                    *)

let port_arg =
  Arg.(value & opt int 7199 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (on 127.0.0.1).")

(* Over real sockets a clock tick is a millisecond and setup stalls are
   legitimate (the master blocks in accept until every expected replica
   has dialed), so the CLI runs the failure detector on second-scale
   deadlines — the test-tuned defaults would false-positive during a
   multi-replica bootstrap. *)
let cli_liveness =
  { Repl.heartbeat_every = 500; suspect_after = 2_000; dead_after = 10_000 }

let master_cmd =
  let run port replicas mode ops s_count =
    let mode =
      match mode with
      | `Async -> Repl.Master.default_mode
      | `Ack -> Repl.Master.Ack
    in
    let built =
      Gen.build
        {
          Gen.default_spec with
          Gen.s_count;
          sharing = 2;
          strategy = Params.Inplace;
          page_size = 1024;
          frames = 256;
          durable = true;
        }
    in
    let db = built.Gen.db in
    let on_event line = Printf.eprintf "master: %s\n%!" line in
    let m = Repl.Master.create ~mode ~liveness:cli_liveness ~on_event db in
    let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt listener Unix.SO_REUSEADDR true;
    Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen listener replicas;
    Printf.printf "master: |S|=%d, listening on 127.0.0.1:%d for %d replica(s)\n%!"
      s_count port replicas;
    let peers =
      List.init replicas (fun i ->
          let fd, _ = Unix.accept listener in
          let tr = Transport.of_socket ~label:(Printf.sprintf "replica-%d" i) fd in
          let peer = Repl.Master.attach m tr in
          Printf.printf "master: replica %d attached\n%!" i;
          (tr, peer))
    in
    Unix.close listener;
    let s_oids = ref [] in
    Db.scan db ~set:"S" (fun oid _ -> s_oids := oid :: !s_oids);
    let s_oids = Array.of_list !s_oids in
    let rng = Splitmix.create 42 in
    for i = 1 to ops do
      let oid = s_oids.(Splitmix.int rng (Array.length s_oids)) in
      Db.update_field db ~set:"S" oid ~field:"repfield"
        (Value.VString (Printf.sprintf "%020d" i));
      if i mod 16 = 0 then Repl.Master.tick m
    done;
    let target =
      match Db.wal db with Some w -> Wal.last_lsn w | None -> 0L
    in
    (* Ack mode is already durable everywhere; in async mode, keep pumping
       until every live replica has acknowledged the final LSN. *)
    let deadline = Unix.gettimeofday () +. 30.0 in
    let behind () =
      List.exists
        (fun (_, p) ->
          Repl.Master.peer_alive p
          && Int64.compare (Repl.Master.acked_lsn p) target < 0)
        peers
    in
    while behind () && Unix.gettimeofday () < deadline do
      Repl.Master.tick m;
      if behind () then Unix.sleepf 0.005
    done;
    let st = Db.stats db in
    Printf.printf
      "master: %d updates at lsn %Ld; frames_shipped=%d acks_waited=%d \
       replica_lag_bytes=%d live_peers=%d\n"
      ops target st.Stats.frames_shipped st.Stats.acks_waited
      st.Stats.replica_lag_bytes (Repl.Master.peer_count m);
    List.iter (fun (tr, _) -> tr.Transport.close ()) peers
  in
  let replicas =
    Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"N" ~doc:"Replicas to wait for.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("async", `Async); ("ack", `Ack) ]) `Async
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Shipping mode: $(b,async) buffers frames, $(b,ack) blocks \
                each commit until every replica acknowledges.")
  in
  let ops =
    Arg.(value & opt int 200 & info [ "ops" ] ~docv:"N" ~doc:"Updates to run.")
  in
  Cmd.v
    (Cmd.info "master"
       ~doc:"Generate a database, accept replicas, and stream the WAL to \
             them while running an update workload.")
    Term.(
      const run $ port_arg $ replicas $ mode $ ops
      $ Arg.(value & opt int 500 & info [ "s-count" ] ~docv:"N" ~doc:"Cardinality of S."))

let replica_cmd =
  let run port frames redials =
    (* exponential backoff with full jitter between dial attempts, so a
       herd of replicas restarting together spreads out (one tick = 10ms) *)
    let bo = Backoff.create ~base:2 ~cap:200 ~seed:(port + (Unix.getpid () * 31)) () in
    let rec dial attempts =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Backoff.reset bo;
        Some fd
      with Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
        Unix.close fd;
        if attempts <= 0 then None
        else begin
          Unix.sleepf (0.01 *. float_of_int (1 + Backoff.next_delay bo));
          dial (attempts - 1)
        end
    in
    let fd =
      match dial 50 with
      | Some fd -> fd
      | None ->
          Printf.eprintf "replica: 127.0.0.1:%d never answered\n%!" port;
          exit 1
    in
    let tr = Transport.of_socket ~label:"master" fd in
    let r = Repl.Replica.connect ~frames ~liveness:cli_liveness tr in
    Printf.printf "replica: connected to 127.0.0.1:%d, bootstrapping...\n%!" port;
    (* serve until the link dies; while the master is not known-Dead,
       redial with backoff and resume the stream from last_applied *)
    let rec serve budget =
      Repl.Replica.run r;
      if budget > 0 && Repl.Replica.master_state r <> Repl.Dead then
        match dial 20 with
        | Some fd ->
            Repl.Replica.reconnect r (Transport.of_socket ~label:"master" fd);
            Printf.printf "replica: reconnected (resuming at lsn %Ld)\n%!"
              (Repl.Replica.last_applied r);
            serve (budget - 1)
        | None -> ()
    in
    serve redials;
    let db = Repl.Replica.db r in
    let st = Db.stats db in
    Printf.printf
      "replica: stream ended at lsn %Ld (commit barrier %Ld); |S|=%d |R|=%d \
       frames_applied=%d\n"
      (Repl.Replica.last_applied r)
      (Repl.Replica.commit_lsn r)
      (Db.set_size db "S") (Db.set_size db "R") st.Stats.frames_applied;
    Db.check_integrity db;
    Printf.printf "replica: integrity ok\n"
  in
  let frames =
    Arg.(value & opt int 256 & info [ "frames" ] ~docv:"N" ~doc:"Buffer-pool frames.")
  in
  let redials =
    Arg.(
      value & opt int 0
      & info [ "redials" ] ~docv:"N"
          ~doc:"After the link dies, redial the master up to $(docv) times \
                (exponential backoff) and resume the stream.")
  in
  Cmd.v
    (Cmd.info "replica"
       ~doc:"Connect to a master on 127.0.0.1, bootstrap from its snapshot, \
             apply its WAL stream, and serve reads until the link closes.")
    Term.(const run $ port_arg $ frames $ redials)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "Field replication in an object-oriented DBMS (Shekita & Carey, 1989)" in
  let info = Cmd.info "fieldrep" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            model_cmd; table_cmd; validate_cmd; script_cmd; demo_cmd;
            master_cmd; replica_cmd;
          ]))
