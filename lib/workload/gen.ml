module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Heap_file = Fieldrep_storage.Heap_file
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Params = Fieldrep_costmodel.Params
module Registry = Fieldrep_replication.Registry
module Store = Fieldrep_replication.Store
module Engine = Fieldrep_replication.Engine
module Splitmix = Fieldrep_util.Splitmix
module Combin = Fieldrep_util.Combin

type spec = {
  s_count : int;
  sharing : int;
  clustering : Params.clustering;
  strategy : Params.strategy;
  rep_field_bytes : int;
  r_pad_bytes : int;
  s_pad_bytes : int;
  page_size : int;
  frames : int;
  seed : int;
  durable : bool;
  backend : Db.backend option;
  wal_fsync : bool option;
  wal_flush_limit : int option;
}

let default_spec =
  {
    s_count = 2000;
    sharing = 1;
    clustering = Params.Unclustered;
    strategy = Params.No_replication;
    rep_field_bytes = 20;
    r_pad_bytes = 65;
    s_pad_bytes = 140;
    page_size = 4096;
    frames = 512;
    seed = 42;
    durable = false;
    backend = None;
    wal_fsync = None;
    wal_flush_limit = None;
  }

type built = {
  spec : spec;
  db : Db.t;
  r_keys : int array;
  s_keys : int array;
}

let r_index = "idx_r_field_r"
let s_index = "idx_s_field_s"
let rep_path = Path.parse "R.sref.repfield"

let random_string rng len =
  String.init len (fun _ -> Char.chr (Char.code 'a' + Splitmix.int rng 26))

let build spec =
  assert (spec.s_count > 0 && spec.sharing >= 1);
  let rng = Splitmix.create spec.seed in
  let db =
    Db.create ~page_size:spec.page_size ~frames:spec.frames ~durable:spec.durable
      ?backend:spec.backend ?wal_fsync:spec.wal_fsync
      ?wal_flush_limit:spec.wal_flush_limit ()
  in
  Db.define_type db
    (Ty.make ~name:"STYPE"
       [
         { Ty.fname = "field_s"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "repfield"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "pad"; ftype = Ty.Scalar Ty.SString };
       ]);
  Db.define_type db
    (Ty.make ~name:"RTYPE"
       [
         { Ty.fname = "field_r"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "pad"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "sref"; ftype = Ty.Ref "STYPE" };
       ]);
  (* Reserve in-page room for the growth replication will cause: hidden
     fields in R (a k-byte string copy or an 8-byte S' reference) and a
     (link-OID, link-ID) pair in S.  Without the reserve every object would
     spill into a continuation segment when the hidden data arrives,
     doubling the pages touched per object. *)
  let per_page_estimate rec_bytes = max 1 (spec.page_size / (rec_bytes + 13)) in
  let r_growth =
    match spec.strategy with
    | Params.No_replication -> 0
    | Params.Inplace -> spec.rep_field_bytes + 3
    | Params.Separate -> 9
  in
  let s_growth = match spec.strategy with Params.No_replication -> 0 | Params.Inplace | Params.Separate -> 12 in
  let r_reserve = per_page_estimate (26 + spec.r_pad_bytes) * r_growth * 11 / 10 in
  let s_reserve =
    per_page_estimate (31 + spec.rep_field_bytes + spec.s_pad_bytes) * s_growth * 11 / 10
  in
  Db.create_set db ~reserve:s_reserve ~name:"S" ~elem_type:"STYPE" ();
  Db.create_set db ~reserve:r_reserve ~name:"R" ~elem_type:"RTYPE" ();
  let r_count = spec.s_count * spec.sharing in
  (* Key assignment: insertion order equals key order in the clustered
     setting; a random permutation otherwise. *)
  let keys n =
    match spec.clustering with
    | Params.Clustered -> Array.init n (fun i -> i)
    | Params.Unclustered -> Splitmix.permutation rng n
  in
  let s_keys = keys spec.s_count in
  let r_keys = keys r_count in
  let s_oids =
    Array.init spec.s_count (fun i ->
        Db.insert db ~set:"S"
          [
            Value.VInt s_keys.(i);
            Value.VString (random_string rng spec.rep_field_bytes);
            Value.VString (random_string rng spec.s_pad_bytes);
          ])
  in
  (* Exactly f references to each S object, shuffled: R and S relatively
     unclustered, the model's central layout assumption (§6.2). *)
  let refs = Array.init r_count (fun i -> s_oids.(i mod spec.s_count)) in
  Splitmix.shuffle rng refs;
  Array.iteri
    (fun i key ->
      ignore
        (Db.insert db ~set:"R"
           [
             Value.VInt key;
             Value.VString (random_string rng spec.r_pad_bytes);
             Value.VRef refs.(i);
           ]))
    r_keys;
  let clustered = spec.clustering = Params.Clustered in
  Db.build_index db ~name:r_index ~set:"R" ~field:"field_r" ~clustered;
  Db.build_index db ~name:s_index ~set:"S" ~field:"field_s" ~clustered;
  (match spec.strategy with
  | Params.No_replication -> ()
  | Params.Inplace -> Db.replicate db ~strategy:Schema.Inplace rep_path
  | Params.Separate -> Db.replicate db ~strategy:Schema.Separate rep_path);
  { spec; db; r_keys; s_keys }

(* ------------------------------------------------------------------ *)
(* Million-object scale                                                *)

let build_large ?(page_size = 4096) ?(frames = 1024) ?backend ?(pad_bytes = 64)
    ?(seed = 42) ~count () =
  assert (count > 0);
  let rng = Splitmix.create seed in
  let db = Db.create ~page_size ~frames ?backend () in
  Db.define_type db
    (Ty.make ~name:"BIGTYPE"
       [
         { Ty.fname = "key"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "pad"; ftype = Ty.Scalar Ty.SString };
       ]);
  Db.create_set db ~name:"Big" ~elem_type:"BIGTYPE" ();
  (* One shared pad string: at count = 10^6 a per-object random string
     would dominate the build, and the I/O experiment only needs bulk. *)
  let pad = Value.VString (random_string rng pad_bytes) in
  let oids =
    Array.init count (fun i -> Db.insert db ~set:"Big" [ Value.VInt i; pad ])
  in
  (db, oids)

(* ------------------------------------------------------------------ *)
(* Model parameters from the actual physical layout                    *)

let round_div a b = if b = 0 then 0 else int_of_float (Float.round (float_of_int a /. float_of_int b))

let measured_params built ~read_sel ~update_sel =
  let spec = built.spec in
  let db = built.db in
  let r_count = spec.s_count * spec.sharing in
  let p_r = Db.set_pages db "R" in
  let p_s = Db.set_pages db "S" in
  let eng = Db.engine db in
  let rep = Schema.find_replication (Db.schema db) rep_path in
  let p_l, o_l =
    match rep with
    | Some r when r.Schema.strategy = Schema.Inplace -> (
        match Registry.roots eng.Engine.registry "R" with
        | [] -> (0, 1)
        | node :: _ -> (
        match node.Registry.link_id with
        | Some id -> (
            match Store.link_file_opt eng.Engine.store id with
            | Some hf when Heap_file.page_count hf > 0 ->
                (Heap_file.page_count hf, round_div spec.s_count (Heap_file.page_count hf))
            | Some _ | None -> (0, 1))
        | None -> (0, 1)))
    | Some _ | None -> (0, 1)
  in
  let p_sprime, o_sprime =
    match rep with
    | Some r when r.Schema.strategy = Schema.Separate -> (
        match Store.sprime_file_opt eng.Engine.store r.Schema.rep_id with
        | Some hf -> (Heap_file.page_count hf, round_div spec.s_count (Heap_file.page_count hf))
        | None -> (0, 1))
    | Some _ | None -> (0, 1)
  in
  let rstats = Db.index_stats db ~index:r_index in
  let fanout = max 2 (round_div rstats.Db.entries (max 1 rstats.Db.leaves)) in
  let read_objects = max 1 (int_of_float (Float.round (read_sel *. float_of_int r_count))) in
  let update_objects =
    max 1 (int_of_float (Float.round (update_sel *. float_of_int spec.s_count)))
  in
  (* Output density: measure one sample result file. *)
  let o_t =
    let q =
      {
        Fieldrep_query.Ast.from_set = "R";
        projections = [ "field_r"; "pad"; "sref.repfield" ];
        where = Some (Fieldrep_query.Ast.between "field_r" (Value.VInt 0) (Value.VInt (read_objects - 1)));
      }
    in
    let res = Fieldrep_query.Exec.retrieve db q in
    let per_page = round_div res.Fieldrep_query.Exec.rows (max 1 res.Fieldrep_query.Exec.output_pages) in
    Fieldrep_query.Exec.drop_output db res.Fieldrep_query.Exec.output_file;
    max 1 per_page
  in
  let strategy = spec.strategy in
  let params =
    {
      Params.default with
      Params.s_count = spec.s_count;
      sharing = spec.sharing;
      read_sel;
      update_sel;
      fanout;
      rep_field_bytes = spec.rep_field_bytes;
      small_link_elim = true;
    }
  in
  let nominal = Params.derive params strategy in
  let derived =
    {
      nominal with
      Params.r_count;
      o_r = round_div r_count p_r;
      o_s = round_div spec.s_count p_s;
      o_sprime;
      o_l;
      o_t;
      p_r;
      p_s;
      p_sprime;
      p_l;
      read_objects;
      update_objects;
      p_t = Combin.ceil_div read_objects o_t;
    }
  in
  (params, derived)

(* ------------------------------------------------------------------ *)
(* The paper's employee database                                       *)

let employee_db ?(norgs = 5) ?(ndepts = 20) ?(nemps = 500) ?(seed = 7) () =
  let rng = Splitmix.create seed in
  let db = Db.create ~page_size:4096 ~frames:256 () in
  Db.define_type db
    (Ty.make ~name:"ORG"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "budget"; ftype = Ty.Scalar Ty.SInt };
       ]);
  Db.define_type db
    (Ty.make ~name:"DEPT"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "budget"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "org"; ftype = Ty.Ref "ORG" };
       ]);
  Db.define_type db
    (Ty.make ~name:"EMP"
       [
         { Ty.fname = "name"; ftype = Ty.Scalar Ty.SString };
         { Ty.fname = "age"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "salary"; ftype = Ty.Scalar Ty.SInt };
         { Ty.fname = "dept"; ftype = Ty.Ref "DEPT" };
       ]);
  Db.create_set db ~name:"Org" ~elem_type:"ORG" ();
  Db.create_set db ~name:"Dept" ~elem_type:"DEPT" ();
  Db.create_set db ~name:"Emp1" ~elem_type:"EMP" ();
  let orgs =
    Array.init norgs (fun i ->
        Db.insert db ~set:"Org"
          [ Value.VString (Printf.sprintf "org-%02d" i); Value.VInt (100_000 * (i + 1)) ])
  in
  let depts =
    Array.init ndepts (fun i ->
        Db.insert db ~set:"Dept"
          [
            Value.VString (Printf.sprintf "dept-%02d" i);
            Value.VInt (10_000 + (100 * i));
            Value.VRef orgs.(i mod norgs);
          ])
  in
  for i = 0 to nemps - 1 do
    ignore
      (Db.insert db ~set:"Emp1"
         [
           Value.VString (Printf.sprintf "emp-%04d" i);
           Value.VInt (21 + Splitmix.int rng 44);
           Value.VInt (30_000 + Splitmix.int rng 120_000);
           Value.VRef depts.(Splitmix.int rng ndepts);
         ])
  done;
  db
