(** Synthetic database generation for the experiments.

    Builds the cost model's two-set schema (paper §6):

    {v define type RTYPE (field_r: int, pad: char[], sref: ref STYPE)
       define type STYPE (field_s: int, repfield: char[], pad: char[]) v}

    with exactly [sharing] R objects per S object, R and S *relatively
    unclustered* (reference assignment shuffled — the paper's key layout
    assumption), B+-tree indexes on [field_r] and [field_s], and optionally
    a replication path on [R.sref.repfield].

    Clustered setting: objects are laid down in key order so the indexes
    are clustered.  Unclustered: key values are a random permutation of the
    insertion order. *)

module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Params = Fieldrep_costmodel.Params

type spec = {
  s_count : int;
  sharing : int;  (** f *)
  clustering : Params.clustering;
  strategy : Params.strategy;
  rep_field_bytes : int;  (** k: length of [repfield] strings *)
  r_pad_bytes : int;  (** padding string length in R objects *)
  s_pad_bytes : int;
  page_size : int;
  frames : int;
  seed : int;
  durable : bool;  (** attach a write-ahead log ([Db.create ~durable]) *)
  backend : Db.backend option;
      (** page-store backend; [None] = [Db.create]'s default
          ([FIELDREP_BACKEND] env, else in-memory) *)
  wal_fsync : bool option;
      (** real [fsync(2)] at every WAL group commit; [None] = env default *)
  wal_flush_limit : int option;
      (** WAL buffering threshold; [Some 1] defeats group commit *)
}

val default_spec : spec
(** |S| = 2000, f = 1, unclustered, no replication, k = 20, pads sized so
    R ≈ 100 and S ≈ 200 bytes as in the paper, 4096-byte pages. *)

type built = {
  spec : spec;
  db : Db.t;
  r_keys : int array;  (** key of R object i (R objects hold keys 0..|R|-1) *)
  s_keys : int array;
}

val build : spec -> built
(** Deterministic in [spec.seed]. *)

val build_large :
  ?page_size:int ->
  ?frames:int ->
  ?backend:Db.backend ->
  ?pad_bytes:int ->
  ?seed:int ->
  count:int ->
  unit ->
  Db.t * Oid.t array
(** A deliberately simple bulk database for I/O-scale experiments: one set
    ["Big"] of [count] objects [(key : int, pad : char[pad_bytes])], no
    indexes, no replication, keys 0..count-1 in insertion order.  Returns
    the database and the OID of every object (object [i] has key [i]), so
    zipf-skewed access patterns can be driven directly by rank.  At the
    default [pad_bytes] a million objects span tens of thousands of pages —
    size [frames] well below that to make the buffer pool earn its keep. *)

val r_index : string
(** Name of the index on [R.field_r]. *)

val s_index : string

val measured_params : built -> read_sel:float -> update_sel:float -> Params.t * Params.derived
(** Cost-model parameters derived from the *actual* layout: measured pages
    and objects-per-page for R, S, S', L, the real index fanout, and the
    real output-tuple density.  Feeding these to {!Fieldrep_costmodel.Cost}
    prices the model on the same physical database the measurements run
    against. *)

val employee_db :
  ?norgs:int -> ?ndepts:int -> ?nemps:int -> ?seed:int -> unit -> Db.t
(** The paper's §2 employee database (sets Org, Dept, Emp1), populated with
    deterministic data.  Used by examples and integration tests. *)
