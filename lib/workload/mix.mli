(** Query-mix driver: runs the cost model's read and update queries against
    a generated database and measures real page I/O.

    Each query runs *cold* (empty buffer pool, zeroed counters) so the
    measured I/O is the number of distinct pages touched — the same quantity
    the analytical model estimates under its "optimal join" assumption
    (paper §6.2). *)

type measurement = {
  read_queries : int;
  update_queries : int;
  avg_read_io : float;  (** mean page reads+writes per read query *)
  avg_update_io : float;
}

val read_query :
  Gen.built -> Fieldrep_util.Splitmix.t -> read_sel:float -> Fieldrep_query.Ast.retrieve
(** One cost-model read query at a random key range of the given
    selectivity (exposed so tests and benchmarks can replay the exact mix
    {!measure} runs). *)

val update_query :
  Gen.built -> Fieldrep_util.Splitmix.t -> update_sel:float -> Fieldrep_query.Ast.replace
(** One cost-model update query: rewrite the replicated field of a random
    key range of S objects. *)

val measure :
  Gen.built ->
  read_sel:float ->
  update_sel:float ->
  ?queries:int ->
  ?seed:int ->
  unit ->
  measurement
(** Runs [queries] read queries and [queries] update queries (default 20)
    at random key ranges of the given selectivities. *)

val mixed_cost : measurement -> update_prob:float -> float
(** C_total of the measured costs under a query mix. *)

type comparison = {
  strategy : Fieldrep_costmodel.Params.strategy;
  clustering : Fieldrep_costmodel.Params.clustering;
  sharing : int;
  measured_read : float;
  model_read : float;
  measured_update : float;
  model_update : float;
}

val validate :
  Gen.spec -> read_sel:float -> update_sel:float -> ?queries:int -> unit -> comparison
(** Build the database for [spec], measure, and price the analytical model
    with the measured physical layout ({!Gen.measured_params}) — the
    experiment the paper never ran: model vs implementation. *)
