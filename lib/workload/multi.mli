(** Deterministic interleaved-client transaction driver.

    Simulates N concurrent clients over one {!Fieldrep.Db} with cooperative
    round-robin scheduling: each turn a client executes (at most) one
    operation of its current transaction.  Because every operation acquires
    its whole lock set before touching anything, a conflict surfaces as
    {!Fieldrep_txn.Lock.Would_block} (the client retries the operation on
    its next turn) or {!Fieldrep_txn.Lock.Deadlock} (the client aborts and
    restarts the same program, up to a retry bound).  Everything is driven
    by SplitMix seeds, so a run is reproducible bit-for-bit.

    The central correctness check this enables: strict two-phase locking
    guarantees the interleaved execution is equivalent to {e some} serial
    execution — namely the commit order.  {!run} returns the committed
    programs in commit order; {!replay_serial} re-executes them one at a
    time on a freshly generated identical database; {!observe} projects
    both final states OID-independently for comparison. *)

module Db = Fieldrep.Db

(** One client operation, naming objects by generation key (the [field_r] /
    [field_s] values assigned by {!Gen.build}), never by OID — OID
    allocation differs between an interleaved run and its serial replay. *)
type op =
  | Deref of int  (** R[key].sref.repfield — the replicated read *)
  | Read of int
  | Update_rep of int * string  (** S[key].repfield: propagating write *)
  | Update_key of int * int  (** R[key].field_r: plain indexed scalar *)
  | Update_ref of int * int  (** R[key].sref <- S[key']: path restructure *)
  | Insert_r of int * int
  | Delete_r of int  (** key in the issuing client's private range *)

type program = { ops : op array; abort_after : int option }
(** [abort_after = Some k]: the client voluntarily rolls back after [k]
    operations and discards the program (a user abort, never retried). *)

type mix = {
  w_deref : int;
  w_read : int;
  w_update_rep : int;
  w_update_key : int;
  w_update_ref : int;
  w_insert : int;
  w_delete : int;
}
(** Relative operation weights. *)

val read_mix : mix
(** Read-dominated: mostly replicated derefs, occasional updates. *)

val update_mix : mix
(** Update-heavy: propagating writes, restructures, inserts and deletes. *)

type result = {
  committed : program list;  (** in commit order — the serialization order *)
  commits : int;
  voluntary_aborts : int;
  deadlock_aborts : int;  (** abort events, including retried attempts *)
  discarded : int;  (** programs given up after the deadlock-retry bound *)
  blocked_turns : int;  (** turns spent waiting on a lock *)
  ops_executed : int;
  committed_io : int;  (** page I/O attributed to committed transactions *)
  aborted_io : int;  (** page I/O of aborted attempts, undo writes included *)
  crashed : bool;  (** a [Disk.Crash] failpoint fired; the run stopped *)
}

val run :
  ?abort_prob:float ->
  ?max_retries:int ->
  ?before_commit:(int -> unit) ->
  ?on_turn:(int -> unit) ->
  clients:int ->
  txns_per_client:int ->
  ops_per_txn:int ->
  mix:mix ->
  seed:int ->
  Gen.built ->
  result
(** Generate each client's programs from [seed] and run them interleaved.
    [before_commit] is called with the commit ordinal just before each
    commit — crash tests use it to arm a disk failpoint.  [on_turn] is
    called with the turn number at the top of every scheduler turn —
    reconfiguration tests use it to pump background maintenance (and to
    issue DDL) between client steps.  A [Disk.Crash] anywhere stops the
    run and is reported as [crashed] (the in-flight transaction is not in
    [committed]). *)

val replay_serial : Db.t -> program list -> unit
(** Re-execute the programs one at a time (autocommit, no locks) against a
    database freshly built from the same {!Gen.spec}. *)

val observe : Db.t -> string list
(** OID-independent projection of the logical state: one sorted row per
    object, references resolved to the target's key. *)
