module Db = Fieldrep.Db
module Oid = Fieldrep_storage.Oid
module Disk = Fieldrep_storage.Disk
module Value = Fieldrep_model.Value
module Lock = Fieldrep_txn.Lock
module Txn = Fieldrep_txn.Txn
module Splitmix = Fieldrep_util.Splitmix

(* Operations name objects by their immutable generation key (the value
   [Gen.build] stored in [field_r] / [field_s]), never by OID: OID
   allocation differs between an interleaved run and its serial re-
   execution, but the key space is identical, which is what makes the
   serializability comparison possible. *)
type op =
  | Deref of int  (* R[key].sref.repfield — the replicated read *)
  | Read of int  (* fetch R[key] *)
  | Update_rep of int * string  (* S[key].repfield <- v : fan-out write *)
  | Update_key of int * int  (* R[key].field_r <- v : plain indexed scalar *)
  | Update_ref of int * int  (* R[key].sref <- S[key'] : path restructure *)
  | Insert_r of int * int  (* fresh key, S[key'] for sref *)
  | Delete_r of int  (* key in the issuing client's private range *)

type program = {
  ops : op array;
  abort_after : int option;
      (* voluntary rollback after this many operations; the program is
         discarded, not retried — it models a user abort *)
}

type mix = {
  w_deref : int;
  w_read : int;
  w_update_rep : int;
  w_update_key : int;
  w_update_ref : int;
  w_insert : int;
  w_delete : int;
}

let read_mix =
  {
    w_deref = 6;
    w_read = 2;
    w_update_rep = 1;
    w_update_key = 1;
    w_update_ref = 0;
    w_insert = 0;
    w_delete = 0;
  }

let update_mix =
  {
    w_deref = 2;
    w_read = 1;
    w_update_rep = 3;
    w_update_key = 2;
    w_update_ref = 1;
    w_insert = 1;
    w_delete = 1;
  }

(* ------------------------------------------------------------------ *)
(* Key -> OID maps                                                     *)

type maps = {
  r_oid : (int, Oid.t) Hashtbl.t;
  s_oid : (int, Oid.t) Hashtbl.t;
}

(* S objects are never deleted by the generated mixes, so every S key the
   generator can draw stays mapped for the whole run. *)
let s_oid_of maps key =
  match Hashtbl.find_opt maps.s_oid key with
  | Some oid -> oid
  | None -> invalid_arg (Printf.sprintf "Multi: unmapped S key %d" key)

let build_maps db =
  let r_oid = Hashtbl.create 1024 and s_oid = Hashtbl.create 256 in
  Db.scan db ~set:"R" (fun oid record ->
      match Db.field_value db ~set:"R" record "field_r" with
      | Value.VInt k -> Hashtbl.replace r_oid k oid
      | _ -> assert false);
  Db.scan db ~set:"S" (fun oid record ->
      match Db.field_value db ~set:"S" record "field_s" with
      | Value.VInt k -> Hashtbl.replace s_oid k oid
      | _ -> assert false);
  { r_oid; s_oid }

(* The driver's view of inserts/deletes must roll back with the
   transaction; an aborted delete revives the object in its original slot,
   so re-adding the remembered OID is exact. *)
type journal_entry = J_removed of int * Oid.t | J_added of int

let rollback_maps maps journal =
  List.iter
    (function
      | J_added key -> Hashtbl.remove maps.r_oid key
      | J_removed (key, oid) -> Hashtbl.replace maps.r_oid key oid)
    journal

(* ------------------------------------------------------------------ *)
(* Operation execution (shared by the interleaved and serial drivers)  *)

let exec db maps txn journal op =
  match op with
  | Deref key -> (
      match Hashtbl.find_opt maps.r_oid key with
      | Some oid -> ignore (Db.deref ?txn db ~set:"R" oid "sref.repfield")
      | None -> ())
  | Read key -> (
      match Hashtbl.find_opt maps.r_oid key with
      | Some oid -> ignore (Db.get ?txn db ~set:"R" oid)
      | None -> ())
  | Update_rep (key, v) ->
      Db.update_field ?txn db ~set:"S" (s_oid_of maps key)
        ~field:"repfield" (Value.VString v)
  | Update_key (key, v) -> (
      match Hashtbl.find_opt maps.r_oid key with
      | Some oid -> Db.update_field ?txn db ~set:"R" oid ~field:"field_r" (Value.VInt v)
      | None -> ())
  | Update_ref (key, skey) -> (
      match Hashtbl.find_opt maps.r_oid key with
      | Some oid ->
          Db.update_field ?txn db ~set:"R" oid ~field:"sref"
            (Value.VRef (s_oid_of maps skey))
      | None -> ())
  | Insert_r (key, skey) ->
      let oid =
        Db.insert ?txn db ~set:"R"
          [
            Value.VInt key;
            Value.VString "inserted";
            Value.VRef (s_oid_of maps skey);
          ]
      in
      Hashtbl.replace maps.r_oid key oid;
      journal := J_added key :: !journal
  | Delete_r key -> (
      match Hashtbl.find_opt maps.r_oid key with
      | Some oid ->
          Db.delete ?txn db ~set:"R" oid;
          Hashtbl.remove maps.r_oid key;
          journal := J_removed (key, oid) :: !journal
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Program generation                                                  *)

let random_string rng len =
  String.init len (fun _ -> Char.chr (Char.code 'a' + Splitmix.int rng 26))

let gen_programs ~rng ~mix ~shared_r ~s_count ~delete_pool ~next_key
    ~txns_per_client ~ops_per_txn ~abort_prob =
  let total =
    mix.w_deref + mix.w_read + mix.w_update_rep + mix.w_update_key
    + mix.w_update_ref + mix.w_insert + mix.w_delete
  in
  assert (total > 0 && shared_r > 0 && s_count > 0);
  let gen_op () =
    let roll = Splitmix.int rng total in
    let r = ref roll and chosen = ref None in
    let bucket w make =
      if !chosen = None then
        if !r < w then chosen := Some (make ()) else r := !r - w
    in
    bucket mix.w_deref (fun () -> Deref (Splitmix.int rng shared_r));
    bucket mix.w_read (fun () -> Read (Splitmix.int rng shared_r));
    bucket mix.w_update_rep (fun () ->
        Update_rep (Splitmix.int rng s_count, random_string rng 20));
    bucket mix.w_update_key (fun () ->
        Update_key (Splitmix.int rng shared_r, 10_000_000 + Splitmix.int rng 1_000_000));
    bucket mix.w_update_ref (fun () ->
        Update_ref (Splitmix.int rng shared_r, Splitmix.int rng s_count));
    bucket mix.w_insert (fun () ->
        incr next_key;
        Insert_r (!next_key, Splitmix.int rng s_count));
    bucket mix.w_delete (fun () ->
        match !delete_pool with
        | key :: rest ->
            delete_pool := rest;
            Delete_r key
        | [] ->
            (* private range exhausted: degrade to an update *)
            Update_key (Splitmix.int rng shared_r, 10_000_000 + Splitmix.int rng 1_000_000));
    match !chosen with
    | Some op -> op
    | None -> invalid_arg "Multi: operation mix selected no bucket"
  in
  List.init txns_per_client (fun _ ->
      let ops = Array.init ops_per_txn (fun _ -> gen_op ()) in
      let abort_after =
        if abort_prob > 0.0 && Splitmix.float rng 1.0 < abort_prob then
          Some (Splitmix.int rng (max 1 ops_per_txn))
        else None
      in
      { ops; abort_after })

(* ------------------------------------------------------------------ *)
(* The interleaved scheduler                                           *)

type result = {
  committed : program list;  (* in commit order — the serialization order *)
  commits : int;
  voluntary_aborts : int;
  deadlock_aborts : int;  (* abort events, including retried attempts *)
  discarded : int;  (* programs given up after [max_retries] deadlocks *)
  blocked_turns : int;
  ops_executed : int;
  committed_io : int;  (* page I/O attributed to committed transactions *)
  aborted_io : int;  (* including the undo writes of each rollback *)
  crashed : bool;
}

type running = {
  prog : program;
  tx : Db.txn;
  mutable pc : int;
  journal : journal_entry list ref;
  retries : int;
}

type client = { mutable todo : program list; mutable cur : running option }

let run ?(abort_prob = 0.0) ?(max_retries = 20) ?(before_commit = fun _ -> ())
    ?(on_turn = fun _ -> ()) ~clients ~txns_per_client ~ops_per_txn ~mix ~seed
    (built : Gen.built) =
  let db = built.Gen.db in
  let maps = build_maps db in
  let r_count = Array.length built.Gen.r_keys in
  let s_count = Array.length built.Gen.s_keys in
  (* Each client owns a private slice at the top of the key space for its
     deletes; every other operation targets the shared prefix, so no
     program can reference an object another client may have removed. *)
  let quota = min (txns_per_client * ops_per_txn) (r_count / (2 * clients)) in
  let shared_r = r_count - (clients * quota) in
  let next_key = ref 20_000_000 in
  let clients_arr =
    Array.init clients (fun c ->
        let rng = Splitmix.create (seed + (1_000_003 * (c + 1))) in
        let delete_pool =
          ref (List.init quota (fun i -> shared_r + (c * quota) + i))
        in
        {
          todo =
            gen_programs ~rng ~mix ~shared_r ~s_count ~delete_pool ~next_key
              ~txns_per_client ~ops_per_txn ~abort_prob;
          cur = None;
        })
  in
  let committed = ref [] in
  let commits = ref 0 in
  let voluntary = ref 0 in
  let deadlocks = ref 0 in
  let discarded = ref 0 in
  let blocked = ref 0 in
  let ops_executed = ref 0 in
  let committed_io = ref 0 in
  let aborted_io = ref 0 in
  let crashed = ref false in
  let turns = ref 0 in
  let limit = 1000 * clients * txns_per_client * (ops_per_txn + 2) in
  let alive () =
    Array.exists (fun c -> c.cur <> None || c.todo <> []) clients_arr
  in
  let step c =
    match c.cur with
    | None -> (
        match c.todo with
        | [] -> ()
        | p :: rest ->
            c.todo <- rest;
            c.cur <-
              Some
                { prog = p; tx = Db.begin_txn db; pc = 0; journal = ref []; retries = 0 })
    | Some r ->
        let voluntary_now =
          match r.prog.abort_after with Some k -> r.pc >= k | None -> false
        in
        if voluntary_now then begin
          Db.abort db r.tx;
          aborted_io := !aborted_io + Txn.io r.tx;
          rollback_maps maps !(r.journal);
          incr voluntary;
          c.cur <- None
        end
        else if r.pc >= Array.length r.prog.ops then begin
          before_commit !commits;
          Db.commit db r.tx;
          committed_io := !committed_io + Txn.io r.tx;
          committed := r.prog :: !committed;
          incr commits;
          c.cur <- None
        end
        else begin
          match exec db maps (Some r.tx) r.journal r.prog.ops.(r.pc) with
          | () ->
              r.pc <- r.pc + 1;
              incr ops_executed
          | exception Lock.Would_block _ ->
              (* no partial effects: simply try again next turn *)
              incr blocked
          | exception Lock.Deadlock _ ->
              Db.abort db r.tx;
              aborted_io := !aborted_io + Txn.io r.tx;
              rollback_maps maps !(r.journal);
              incr deadlocks;
              if r.retries >= max_retries then begin
                incr discarded;
                c.cur <- None
              end
              else
                c.cur <-
                  Some
                    {
                      prog = r.prog;
                      tx = Db.begin_txn db;
                      pc = 0;
                      journal = ref [];
                      retries = r.retries + 1;
                    }
        end
  in
  (try
     while (not !crashed) && alive () do
       incr turns;
       if !turns > limit then failwith "Multi.run: scheduler made no progress";
       on_turn !turns;
       Array.iter (fun c -> if not !crashed then step c) clients_arr
     done
   with Disk.Crash _ -> crashed := true);
  {
    committed = List.rev !committed;
    commits = !commits;
    voluntary_aborts = !voluntary;
    deadlock_aborts = !deadlocks;
    discarded = !discarded;
    blocked_turns = !blocked;
    ops_executed = !ops_executed;
    committed_io = !committed_io;
    aborted_io = !aborted_io;
    crashed = !crashed;
  }

(* ------------------------------------------------------------------ *)
(* Serial re-execution and state observation                           *)

let replay_serial db programs =
  let maps = build_maps db in
  List.iter
    (fun p ->
      let journal = ref [] in
      Array.iter (fun op -> exec db maps None journal op) p.ops)
    programs

let observe db =
  let rows = ref [] in
  Db.scan db ~set:"S" (fun _ record ->
      let vs = Db.user_values db ~set:"S" record in
      rows := ("S:" ^ String.concat "|" (List.map Value.to_string vs)) :: !rows);
  Db.scan db ~set:"R" (fun _ record ->
      let key = Db.field_value db ~set:"R" record "field_r" in
      let pad = Db.field_value db ~set:"R" record "pad" in
      let sref =
        (* resolve the reference to the target's immutable key: rows then
           compare across runs with different OID assignments *)
        match Db.field_value db ~set:"R" record "sref" with
        | Value.VRef s -> Db.field_value db ~set:"S" (Db.get db ~set:"S" s) "field_s"
        | v -> v
      in
      rows :=
        ("R:"
        ^ String.concat "|" (List.map Value.to_string [ key; pad; sref ]))
        :: !rows);
  List.sort compare !rows
