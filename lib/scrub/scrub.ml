module Oid = Fieldrep_storage.Oid
module Listx = Fieldrep_util.Listx
module Wire = Fieldrep_util.Wire
module Disk = Fieldrep_storage.Disk
module Pager = Fieldrep_storage.Pager
module Page = Fieldrep_storage.Page
module Stats = Fieldrep_storage.Stats
module Heap_file = Fieldrep_storage.Heap_file
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record
module Engine = Fieldrep_replication.Engine
module Registry = Fieldrep_replication.Registry
module Store = Fieldrep_replication.Store
module Link_object = Fieldrep_replication.Link_object
module Recompute = Fieldrep_replication.Recompute

type report = {
  pages_scanned : int;
  checksum_failures : int;
  repairs : int;
  quarantined : (int * int) list;
  unrepairable : string list;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>scanned %d pages, %d checksum failure(s), %d repair(s), %d page(s) \
     quarantined@,"
    r.pages_scanned r.checksum_failures r.repairs
    (List.length r.quarantined);
  List.iter (fun s -> Format.fprintf ppf "unrepairable: %s@," s) r.unrepairable;
  Format.fprintf ppf "@]"

let max_read_attempts = 3

type file_kind = Fdata of string | Flink of int list | Fsprime of int

(* Resumable physical-sweep state: a page cursor over the store's files,
   plus everything the logical pass will need — accumulated failures and
   notes travel with it so [finish] produces the same report the old
   monolithic run did. *)
type sweep = {
  sw_env : Engine.env;
  sw_data_sets : (string * Heap_file.t) list;
  sw_link_files : (int, int list) Hashtbl.t;
  mutable sw_todo : (file_kind * int) list;  (* files not yet fully swept *)
  mutable sw_page : int;  (* next page of the head file *)
  mutable sw_scanned : int;
  mutable sw_failures : int;
  mutable sw_corrupt : (file_kind * int * int) list;  (* newest first *)
  mutable sw_notes : string list;  (* newest first *)
  sw_scratch : Bytes.t;
}

let sweep_start (env : Engine.env) ~data_sets =
  let store = env.Engine.store in
  let pager = Store.pager store in
  (* Every link and S' file backing the store; several link ids may alias one
     disk file (small-link clustering), so group them. *)
  let link_bindings, sprime_bindings = Store.bindings store in
  let link_files = Hashtbl.create 8 in
  List.iter
    (fun (link_id, fid) ->
      let ids = Option.value ~default:[] (Hashtbl.find_opt link_files fid) in
      Hashtbl.replace link_files fid (link_id :: ids))
    link_bindings;
  let files =
    List.map (fun (name, hf) -> (Fdata name, Heap_file.file_id hf)) data_sets
    @ Hashtbl.fold (fun fid ids acc -> (Flink ids, fid) :: acc) link_files []
    @ List.map (fun (rep_id, fid) -> (Fsprime rep_id, fid)) sprime_bindings
  in
  (* Push every dirty frame out so the disk reflects the logical state the
     sweep is about to verify. *)
  Pager.flush pager;
  {
    sw_env = env;
    sw_data_sets = data_sets;
    sw_link_files = link_files;
    sw_todo = files;
    sw_page = 0;
    sw_scanned = 0;
    sw_failures = 0;
    sw_corrupt = [];
    sw_notes = [];
    sw_scratch = Bytes.create (Pager.page_size pager);
  }

(* Physical sweep, [budget] pages at a time.  Verified reads straight from
   the disk: the buffer pool would happily serve a cached frame and mask
   bit-rot. *)
let rec sweep_step sw ~budget =
  if budget <= 0 then sw.sw_todo <> []
  else
    match sw.sw_todo with
    | [] -> false
    | (kind, fid) :: rest ->
        let pager = Store.pager sw.sw_env.Engine.store in
        let disk = Pager.disk pager in
        if sw.sw_page >= Disk.page_count disk fid then begin
          sw.sw_todo <- rest;
          sw.sw_page <- 0;
          sweep_step sw ~budget
        end
        else begin
          let page = sw.sw_page in
          sw.sw_page <- page + 1;
          sw.sw_scanned <- sw.sw_scanned + 1;
          Stats.note_scrub_page (Pager.stats pager);
          let rec attempt n =
            match Disk.read_page disk ~file:fid ~page sw.sw_scratch with
            | () -> ()
            | exception Disk.Read_error _ when n < max_read_attempts ->
                Stats.note_read_retry (Pager.stats pager);
                attempt (n + 1)
            | exception Disk.Read_error _ ->
                sw.sw_notes <-
                  Printf.sprintf
                    "file %d page %d: persistent read errors; page skipped"
                    fid page
                  :: sw.sw_notes
            | exception Disk.Corrupt_page _ ->
                sw.sw_failures <- sw.sw_failures + 1;
                sw.sw_corrupt <- (kind, fid, page) :: sw.sw_corrupt
          in
          attempt 1;
          sweep_step sw ~budget:(budget - 1)
        end

let finish ?(log_repair = fun ~rep_id:_ ~source:_ -> ())
    ?(guard = fun (_ : Oid.t) -> true) (sw : sweep) =
  let env = sw.sw_env in
  let data_sets = sw.sw_data_sets in
  let link_files = sw.sw_link_files in
  let store = env.Engine.store in
  let pager = Store.pager store in
  let disk = Pager.disk pager in
  let stats = Pager.stats pager in
  let page_size = Pager.page_size pager in
  let schema = env.Engine.schema in
  let registry = env.Engine.registry in
  let _, sprime_bindings = Store.bindings store in
  let repairs = ref 0 in
  let unrepairable = ref sw.sw_notes in
  let note fmt =
    Printf.ksprintf (fun s -> unrepairable := s :: !unrepairable) fmt
  in
  let repair_done () =
    incr repairs;
    Stats.note_repair stats
  in
  (* Repairs write through foreground-visible objects, so each one asks the
     guard first (lib/core wires it to short X locks under a job-scoped
     owner).  A refused repair is deferred, not lost: the divergence
     survives untouched for the next scrub, after the conflicting
     transaction has resolved. *)
  let deferred = Oid.Table.create 8 in
  let locked oid =
    if guard oid then true
    else begin
      if not (Oid.Table.mem deferred oid) then begin
        Oid.Table.replace deferred oid ();
        note "object %s: repair deferred (locked by an active transaction)"
          (Oid.to_string oid)
      end;
      false
    end
  in
  (* Phase 2: triage.  Link and S' pages hold pure redundancy: blank them and
     let the logical pass rebuild their contents.  Data pages hold source
     fields with no second copy — salvage the page only if every record on it
     still decodes, and even then report the possibility of silent source
     corruption rather than pretending the page is known-good. *)
  let blank_page fid page =
    let buf = Bytes.make page_size '\000' in
    Page.init buf;
    Disk.write_page disk ~file:fid ~page buf;
    Pager.invalidate pager ~file:fid ~page
  in
  let touched_files = Hashtbl.create 4 in
  List.iter
    (fun (kind, fid, page) ->
      match kind with
      | Flink _ ->
          blank_page fid page;
          Hashtbl.replace touched_files fid ()
      | Fsprime _ ->
          blank_page fid page;
          Hashtbl.replace touched_files fid ()
      | Fdata set_name -> (
          let dump = Disk.dump_page disk ~file:fid ~page in
          let slots =
            (* Pure decoding of an already-corrupt image: only malformed-
               bytes exceptions can arise, no storage faults to swallow. *)
            try Some (Page.fold (fun acc slot _ -> slot :: acc) [] dump)
            with Invalid_argument _ | Failure _ | Wire.Corrupt _ -> None
          in
          match slots with
          | None ->
              note
                "set %s: data page %d is undecodable and stays quarantined \
                 (source fields are not derivable)"
                set_name page
          | Some slots ->
              (* Re-seal: writing the salvaged image back recomputes the
                 trailer and lifts the quarantine. *)
              Disk.write_page disk ~file:fid ~page dump;
              Pager.invalidate pager ~file:fid ~page;
              let hf = List.assoc set_name data_sets in
              let broken =
                (* Any failure at all — including a Corrupt_page raised by a
                   continuation chain crossing another bad page — means the
                   salvage attempt failed and the page must stay
                   quarantined; swallowing wide here is the point. *)
                (List.exists
                   (fun slot ->
                     let oid = { Oid.file = fid; page; slot } in
                     match Heap_file.exists hf oid with
                     | false -> false
                     | true -> (
                         try
                           ignore (Record.decode (Heap_file.read hf oid));
                           false
                         with _ -> true)
                     | exception _ -> true)
                   slots [@lint.allow "E1"])
              in
              if broken then begin
                Disk.quarantine disk ~file:fid ~page;
                Pager.invalidate pager ~file:fid ~page;
                note
                  "set %s: data page %d holds undecodable objects and stays \
                   quarantined"
                  set_name page
              end
              else
                note
                  "set %s: data page %d failed its checksum; derived fields \
                   were re-verified, but source fields are not derivable and \
                   may be silently corrupt"
                  set_name page))
    (List.rev sw.sw_corrupt);
  (* Phase 3: logical verify and repair against the recomputed ground
     truth.  Only [Active] declarations are audited: a path mid-backfill or
     mid-teardown is intentionally divergent, and its maintenance job — not
     scrub — is responsible for converging it. *)
  (match
     try Some (Recompute.compute env)
     with Disk.Corrupt_page { file; page } ->
       note
         "logical scrub skipped: page %d of file %d is unreadable, ground \
          truth cannot be recomputed"
         page file;
       None
   with
  | None -> ()
  | Some exp ->
      let find_rep rep_id =
        List.find_opt
          (fun (r : Schema.replication) -> r.Schema.rep_id = rep_id)
          (Schema.replications schema)
      in
      let refreshed = Hashtbl.create 32 in
      let do_refresh (rep : Schema.replication) source_oid =
        let key = (rep.Schema.rep_id, Oid.to_int64 source_oid) in
        if (not (Hashtbl.mem refreshed key)) && locked source_oid then begin
          Hashtbl.replace refreshed key ();
          log_repair ~rep_id:rep.Schema.rep_id ~source:source_oid;
          Engine.refresh env rep source_oid;
          repair_done ()
        end
      in
      let pending rep_id oid =
        Hashtbl.mem env.Engine.pending (rep_id, Oid.to_int64 oid)
      in
      let rep_of_link link_id =
        match Registry.link_kind registry link_id with
        | Some (Registry.L_path node_id) -> (
            match (Registry.node registry node_id).Registry.passing with
            | rep :: _ -> Some rep
            | [] -> None)
        | Some (Registry.L_collapsed node_id) ->
            List.find_map
              (fun (t : Registry.terminal) ->
                match t.Registry.kind with
                | Registry.K_collapsed id when id = link_id ->
                    Some t.Registry.rep
                | _ -> None)
              (Registry.node registry node_id).Registry.terminals
        | Some (Registry.L_sref _) | None -> None
      in
      (* Tolerant head iteration: skip quarantined pages, report objects
         whose chains were severed by one. *)
      let iter_live hf f =
        let fid = Heap_file.file_id hf in
        for page = 0 to Pager.page_count pager fid - 1 do
          if not (Disk.quarantined disk ~file:fid ~page) then begin
            let slots =
              Pager.with_page_read pager ~file:fid ~page (fun buf ->
                  Page.fold (fun acc slot _ -> slot :: acc) [] buf)
            in
            List.iter
              (fun slot ->
                let oid = { Oid.file = fid; page; slot } in
                if Heap_file.exists hf oid then
                  match Heap_file.read hf oid with
                  | bytes -> f oid bytes
                  | exception _ ->
                      note "object %s: unreadable (chain severed by a corrupt page)"
                        (Oid.to_string oid))
              (List.rev slots)
          end
        done
      in
      let read_data oid =
        Record.decode (Heap_file.read (env.Engine.file_of_oid oid) oid)
      in
      let write_data oid record =
        Heap_file.update (env.Engine.file_of_oid oid) oid (Record.encode record)
      in
      (* Pass A: hidden copies and stray link pairs on data objects. *)
      List.iter
        (fun (set_name, hf) ->
          iter_live hf (fun oid bytes ->
              match Record.decode bytes with
              | exception _ ->
                  note "set %s: object %s does not decode; unrepairable"
                    set_name (Oid.to_string oid)
              | record ->
                  (match Hashtbl.find_opt exp.Recompute.hidden oid with
                  | Some slot ->
                      List.iter
                        (fun (rep_id, idx, v) ->
                          if
                            (not (pending rep_id oid))
                            && not
                                 (Value.equal
                                    (Recompute.value_or_null record idx)
                                    v)
                          then
                            match find_rep rep_id with
                            | Some rep -> do_refresh rep oid
                            | None -> ())
                        !slot
                  | None -> ());
                  List.iter
                    (fun (pair : Record.link) ->
                      let link_id = pair.Record.link_id in
                      match Registry.link_kind registry link_id with
                      | Some (Registry.L_path _ | Registry.L_collapsed _)
                        when not (Engine.link_active env link_id) ->
                          (* Mid-reconfiguration: the maintenance job owns
                             this link's state; scrub must not judge it. *)
                          ()
                      | Some (Registry.L_path _ | Registry.L_collapsed _) ->
                          let expected_there =
                            match
                              Hashtbl.find_opt exp.Recompute.memberships
                                (link_id, oid)
                            with
                            | Some tbl -> Hashtbl.length tbl > 0
                            | None -> false
                          in
                          if (not expected_there) && locked oid then begin
                            (match rep_of_link link_id with
                            | Some rep ->
                                log_repair ~rep_id:rep.Schema.rep_id
                                  ~source:oid
                            | None -> ());
                            if Store.is_link_oid store pair.Record.link_oid
                            then (
                              match
                                Store.file_of_oid store pair.Record.link_oid
                              with
                              | Some lf ->
                                  Heap_file.purge lf pair.Record.link_oid
                              | None -> ());
                            let fresh = read_data oid in
                            write_data oid (Record.remove_link fresh link_id);
                            repair_done ()
                          end
                      | Some (Registry.L_sref _) | None -> ())
                    record.Record.links))
        data_sets;
      (* Pass B: every expected membership is stored, with the right
         members.  Anything divergent is rebuilt from a fresh link object. *)
      let referenced = Oid.Table.create 64 in
      Hashtbl.iter
        (fun (link_id, target) tbl ->
          if Hashtbl.length tbl > 0 then
            match Registry.link_kind registry link_id with
            | Some (Registry.L_sref _) | None -> ()
            | Some (Registry.L_path _ | Registry.L_collapsed _) -> (
                match read_data target with
                | exception _ ->
                    note "link %d: target %s unreadable; membership not verified"
                      link_id (Oid.to_string target)
                | target_rec -> (
                    let expected_entries =
                      Hashtbl.fold
                        (fun member tag acc ->
                          { Link_object.member; tag } :: acc)
                        tbl []
                      |> List.sort (fun (a : Link_object.entry) b ->
                             Oid.compare a.Link_object.member
                               b.Link_object.member)
                    in
                    let stored = Record.find_link target_rec link_id in
                    let lf_opt = Store.link_file_opt store link_id in
                    let ok =
                      match stored with
                      | None -> false
                      | Some pair ->
                          if Store.is_link_oid store pair.Record.link_oid then
                            (* A rebuilt link object of ANOTHER target may
                               have landed in this (freed) slot: a stored
                               OID someone else already claimed is never
                               ours, however plausible its entries look. *)
                            (not (Oid.Table.mem referenced pair.Record.link_oid))
                            &&
                            match lf_opt with
                            | None -> false
                            | Some lf -> (
                                match
                                  Link_object.entries
                                    (Link_object.decode
                                       (Heap_file.read lf pair.Record.link_oid))
                                with
                                | entries ->
                                    List.length entries
                                    = List.length expected_entries
                                    && List.for_all2
                                         (fun (a : Link_object.entry)
                                              (e : Link_object.entry) ->
                                           Oid.equal a.Link_object.member
                                             e.Link_object.member
                                           && (Oid.is_nil a.Link_object.tag
                                              || Oid.equal a.Link_object.tag
                                                   e.Link_object.tag))
                                         entries expected_entries
                                | exception _ -> false)
                          else
                            (match expected_entries with
                            | [ e ] ->
                                Oid.equal pair.Record.link_oid
                                  e.Link_object.member
                            | _ -> false)
                    in
                    if ok then (
                      match stored with
                      | Some pair
                        when Store.is_link_oid store pair.Record.link_oid ->
                          Oid.Table.replace referenced pair.Record.link_oid ()
                      | _ -> ())
                    else if not (locked target) then (
                      (* Deferred: keep the stored link object off the orphan
                         list — [target] still references it. *)
                      match stored with
                      | Some pair
                        when Store.is_link_oid store pair.Record.link_oid ->
                          Oid.Table.replace referenced pair.Record.link_oid ()
                      | _ -> ())
                    else begin
                      (match rep_of_link link_id with
                      | Some rep ->
                          log_repair ~rep_id:rep.Schema.rep_id ~source:target
                      | None -> ());
                      (match stored with
                      | Some pair
                        when Store.is_link_oid store pair.Record.link_oid
                             && not
                                  (Oid.Table.mem referenced
                                     pair.Record.link_oid) -> (
                          (* Only purge what no earlier rebuild claimed —
                             freed slots get recycled, so this OID may now
                             hold another target's fresh link object. *)
                          match lf_opt with
                          | Some lf -> Heap_file.purge lf pair.Record.link_oid
                          | None -> ())
                      | _ -> ());
                      let fresh = read_data target in
                      let fresh = Record.remove_link fresh link_id in
                      (match (lf_opt, expected_entries) with
                      | Some lf, _ ->
                          let loid =
                            Heap_file.insert lf
                              (Link_object.encode
                                 (Link_object.of_entries expected_entries))
                          in
                          write_data target
                            (Record.add_link fresh
                               { Record.link_oid = loid; link_id });
                          Oid.Table.replace referenced loid ();
                          repair_done ()
                      | None, [ e ] ->
                          (* No link file was ever materialised for this id:
                             store the single member as a direct pair, as the
                             engine's small-link elimination would. *)
                          write_data target
                            (Record.add_link fresh
                               {
                                 Record.link_oid = e.Link_object.member;
                                 link_id;
                               });
                          repair_done ()
                      | None, _ ->
                          note
                            "link %d of %s: no link file exists to rebuild a \
                             %d-member membership"
                            link_id (Oid.to_string target)
                            (List.length expected_entries))
                    end)))
        exp.Recompute.memberships;
      (* Orphan link objects: purge what no expected membership references.
         Skipped whenever a data page is still quarantined — the pairs of its
         unreadable objects are unknown, so nothing is provably orphaned.
         Also skipped per file when any of its link ids belongs to a path
         mid-reconfiguration: a half-backfilled (or half-torn-down) link
         file is full of entries the Active-only expectation cannot see. *)
      let data_fids =
        List.map (fun (_, hf) -> Heap_file.file_id hf) data_sets
      in
      let data_quarantined =
        List.exists
          (fun (f, _) -> List.mem f data_fids)
          (Disk.quarantined_pages disk)
      in
      if data_quarantined then
        note "orphan link-object sweep skipped: a data page is quarantined"
      else
        Hashtbl.iter
          (fun _fid ids ->
            match ids with
            | [] -> ()
            | id :: _ -> (
                if List.for_all (Engine.link_active env) ids then
                  match Store.link_file_opt store id with
                  | None -> ()
                  | Some hf ->
                      let orphans = ref [] in
                      Heap_file.iter_oids hf (fun loid ->
                          if not (Oid.Table.mem referenced loid) then
                            orphans := loid :: !orphans);
                      List.iter
                        (fun loid ->
                          Heap_file.purge hf loid;
                          repair_done ())
                        !orphans))
          link_files;
      (* Pass C: separate replications — the source's S' reference, the S'
         record's owner, values and reference count. *)
      List.iter
        (fun (rep : Schema.replication) ->
          match rep.Schema.strategy with
          | Schema.Inplace -> ()
          | Schema.Separate -> (
              let set = rep.Schema.rpath.Path.source_set in
              let nodes = Registry.chain registry rep in
              let _, term = Registry.terminal_of registry rep in
              let sref_link =
                match term.Registry.kind with
                | Registry.K_separate id -> id
                | Registry.K_inplace | Registry.K_collapsed _ -> assert false
              in
              let idx =
                Schema.hidden_index schema set ~rep_id:rep.Schema.rep_id
                  ~field:None
              in
              let src_file = env.Engine.file_of_set set in
              let sp_file_opt = Store.sprime_file_opt store rep.Schema.rep_id in
              let final_ty =
                Schema.find_type schema
                  (Listx.last_exn ~what:"Scrub: empty chain" nodes)
                    .Registry.to_type
              in
              let detach_dead_sref source_oid sp =
                (* The S' object died with a blanked page.  Null the slot and
                   drop the owner's sref pair by hand so [refresh] does not
                   try to decrement a reference count that no longer
                   exists. *)
                let fresh = read_data source_oid in
                if idx < Array.length fresh.Record.values then
                  write_data source_oid (Record.set_field fresh idx Value.VNull);
                match
                  Option.join
                    (Hashtbl.find_opt exp.Recompute.sep_final
                       (rep.Schema.rep_id, source_oid))
                with
                | None -> ()
                | Some f -> (
                    match read_data f with
                    | exception _ -> ()
                    | f_rec -> (
                        match Record.find_link f_rec sref_link with
                        | Some pair when Oid.equal pair.Record.link_oid sp ->
                            write_data f (Record.remove_link f_rec sref_link)
                        | _ -> ()))
              in
              (* Before any refresh runs, sever every reference to an S'
                 object that died with a blanked page — both the sources'
                 hidden slots and the owning finals' sref pairs.  Refresh
                 recycles freed slots, so a stale reference left in place
                 would alias a freshly rebuilt S' of some other final
                 object (and refresh itself would try to decrement a
                 reference count through it). *)
              let sp_dead sp =
                match sp_file_opt with
                | None -> true
                | Some sp_file -> (
                    match Record.decode (Heap_file.read sp_file sp) with
                    | _ -> false
                    | exception _ -> true)
              in
              let finals = Oid.Table.create 16 in
              Hashtbl.iter
                (fun (rid, _) fo ->
                  if rid = rep.Schema.rep_id then
                    match fo with
                    | Some f -> Oid.Table.replace finals f ()
                    | None -> ())
                exp.Recompute.sep_final;
              Oid.Table.iter
                (fun f () ->
                  match read_data f with
                  | exception _ -> ()
                  | f_rec -> (
                      match Record.find_link f_rec sref_link with
                      | Some pair when sp_dead pair.Record.link_oid ->
                          write_data f (Record.remove_link f_rec sref_link)
                      | _ -> ()))
                finals;
              iter_live src_file (fun source_oid bytes ->
                  match Record.decode bytes with
                  | exception _ -> ()
                  | record -> (
                      match Recompute.value_or_null record idx with
                      | Value.VRef sp when sp_dead sp ->
                          if idx < Array.length record.Record.values then
                            write_data source_oid
                              (Record.set_field record idx Value.VNull)
                      | _ -> ()));
              let value_checked = Oid.Table.create 8 in
              iter_live src_file (fun source_oid bytes ->
                  match Record.decode bytes with
                  | exception _ -> ()
                  | record ->
                      if not (pending rep.Schema.rep_id source_oid) then begin
                        let exp_final =
                          Option.join
                            (Hashtbl.find_opt exp.Recompute.sep_final
                               (rep.Schema.rep_id, source_oid))
                        in
                        match (Recompute.value_or_null record idx, exp_final)
                        with
                        | Value.VNull, None -> ()
                        | Value.VNull, Some _ -> do_refresh rep source_oid
                        | Value.VRef sp, None ->
                            (match sp_file_opt with
                            | Some sp_file
                              when not (Heap_file.exists sp_file sp) ->
                                detach_dead_sref source_oid sp
                            | _ -> ());
                            do_refresh rep source_oid
                        | Value.VRef sp, Some f -> (
                            match sp_file_opt with
                            | None ->
                                detach_dead_sref source_oid sp;
                                do_refresh rep source_oid
                            | Some sp_file -> (
                                match
                                  Record.decode (Heap_file.read sp_file sp)
                                with
                                | exception _ ->
                                    detach_dead_sref source_oid sp;
                                    do_refresh rep source_oid
                                | sp_rec -> (
                                    match Record.field sp_rec 1 with
                                    | Value.VRef owner when Oid.equal owner f
                                      ->
                                        (* Right S'; verify its replicated
                                           values once. *)
                                        if
                                          not
                                            (Oid.Table.mem value_checked sp)
                                        then begin
                                          Oid.Table.replace value_checked sp
                                            ();
                                          match read_data f with
                                          | exception _ -> ()
                                          | final_rec ->
                                              let updated = ref sp_rec in
                                              let dirty = ref false in
                                              List.iteri
                                                (fun i (fname, _) ->
                                                  let want =
                                                    Recompute.value_or_null
                                                      final_rec
                                                      (Ty.field_index final_ty
                                                         fname)
                                                  in
                                                  let at =
                                                    Engine.sprime_field_offset
                                                    + i
                                                  in
                                                  if
                                                    not
                                                      (Value.equal
                                                         (Record.field
                                                            !updated at)
                                                         want)
                                                  then begin
                                                    updated :=
                                                      Record.set_field
                                                        !updated at want;
                                                    dirty := true
                                                  end)
                                                term.Registry.fields;
                                              if !dirty && locked f then begin
                                                log_repair
                                                  ~rep_id:rep.Schema.rep_id
                                                  ~source:source_oid;
                                                Heap_file.update sp_file sp
                                                  (Record.encode !updated);
                                                repair_done ()
                                              end
                                        end
                                    | _ -> do_refresh rep source_oid)))
                        | (Value.VInt _ | Value.VString _), _ ->
                            if locked source_oid then begin
                              let fresh = read_data source_oid in
                              write_data source_oid
                                (Record.set_field fresh idx Value.VNull);
                              do_refresh rep source_oid
                            end
                      end);
              (* Reference-count and orphan audit over the S' file. *)
              match sp_file_opt with
              | None -> ()
              | Some sp_file ->
                  let claims = Oid.Table.create 32 in
                  iter_live src_file (fun _ bytes ->
                      match Record.decode bytes with
                      | exception _ -> ()
                      | r -> (
                          match Recompute.value_or_null r idx with
                          | Value.VRef sp ->
                              Oid.Table.replace claims sp
                                (1
                                + Option.value ~default:0
                                    (Oid.Table.find_opt claims sp))
                          | _ -> ()));
                  let to_purge = ref [] in
                  let to_fix = ref [] in
                  let to_pair = ref [] in
                  Heap_file.iter_oids sp_file (fun sp ->
                      match Record.decode (Heap_file.read sp_file sp) with
                      | exception _ -> to_purge := (sp, None) :: !to_purge
                      | sp_rec -> (
                          let claimed =
                            Option.value ~default:0
                              (Oid.Table.find_opt claims sp)
                          in
                          if claimed = 0 then
                            to_purge := (sp, Some sp_rec) :: !to_purge
                          else begin
                            if Value.as_int (Record.field sp_rec 0) <> claimed
                            then to_fix := (sp, sp_rec, claimed) :: !to_fix;
                            match Record.field sp_rec 1 with
                            | Value.VRef owner -> (
                                match read_data owner with
                                | exception _ -> ()
                                | o_rec -> (
                                    match Record.find_link o_rec sref_link with
                                    | Some pair
                                      when Oid.equal pair.Record.link_oid sp ->
                                        ()
                                    | _ -> to_pair := (sp, owner) :: !to_pair))
                            | _ -> ()
                          end));
                  List.iter
                    (fun (sp, sp_rec) ->
                      (match sp_rec with
                      | Some r -> (
                          match Record.field r 1 with
                          | Value.VRef owner -> (
                              match read_data owner with
                              | exception _ -> ()
                              | o_rec -> (
                                  match Record.find_link o_rec sref_link with
                                  | Some pair
                                    when Oid.equal pair.Record.link_oid sp ->
                                      write_data owner
                                        (Record.remove_link o_rec sref_link)
                                  | _ -> ()))
                          | _ -> ())
                      | None -> ());
                      Heap_file.purge sp_file sp;
                      repair_done ())
                    !to_purge;
                  List.iter
                    (fun (sp, sp_rec, claimed) ->
                      Heap_file.update sp_file sp
                        (Record.encode
                           (Record.set_field sp_rec 0 (Value.VInt claimed)));
                      repair_done ())
                    !to_fix;
                  List.iter
                    (fun (sp, owner) ->
                      match read_data owner with
                      | exception _ -> ()
                      | o_rec ->
                          write_data owner
                            (Record.add_link
                               (Record.remove_link o_rec sref_link)
                               { Record.link_oid = sp; link_id = sref_link });
                          repair_done ())
                    !to_pair))
        (List.filter
           (fun (r : Schema.replication) ->
             Schema.rep_state schema r.Schema.rep_id = Schema.Active)
           (Schema.replications schema));
      (* Blanked pages dropped heads without going through [delete]; restore
         accurate object counts on the affected handles. *)
      Hashtbl.iter
        (fun fid () ->
          (match Hashtbl.find_opt link_files fid with
          | Some (id :: _) -> (
              match Store.link_file_opt store id with
              | Some hf -> Heap_file.recount hf
              | None -> ())
          | _ -> ());
          List.iter
            (fun (rep_id, f) ->
              if f = fid then
                match Store.sprime_file_opt store rep_id with
                | Some hf -> Heap_file.recount hf
                | None -> ())
            sprime_bindings)
        touched_files);
  Pager.flush pager;
  {
    pages_scanned = sw.sw_scanned;
    checksum_failures = sw.sw_failures;
    repairs = !repairs;
    quarantined = Disk.quarantined_pages disk;
    unrepairable = List.rev !unrepairable;
  }

let run ?log_repair ?guard (env : Engine.env) ~data_sets =
  let sw = sweep_start env ~data_sets in
  while sweep_step sw ~budget:64 do () done;
  finish ?log_repair ?guard sw
