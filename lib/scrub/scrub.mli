(** Online scrubbing and self-repair of replicated fields.

    Field replication stores {e derivable redundancy}: every hidden copy,
    link-object membership and S' record can be recomputed by walking the
    forward path from clean source objects ({!Fieldrep_replication.Recompute}
    is that walk, shared with the invariant checker).  Scrub exploits this to
    turn detected corruption back into clean state:

    - a {b physical sweep} reads every page of the data, link and S' files
      through the checksum-verifying disk layer, counting and quarantining
      pages whose trailer no longer matches;
    - {b triage}: corrupt link and S' pages are blanked — their contents are
      pure redundancy and will be rebuilt; corrupt {e data} pages are
      re-sealed only if every record on them still decodes, because source
      fields have no second authoritative copy and can only be {e reported},
      never silently "fixed";
    - a {b logical pass} compares stored derived state against the
      recomputed expectation and repairs divergences: hidden copies are
      refreshed through {!Fieldrep_replication.Engine.refresh}, memberships
      are rebuilt from fresh link objects, S' records are reconstructed and
      their reference counts re-audited.

    Every repair is announced through [log_repair] {e before} it mutates
    anything, so a write-ahead log can persist a [Scrub_repair] record and
    recovery can replay the repair after a crash. *)

module Oid = Fieldrep_storage.Oid
module Heap_file = Fieldrep_storage.Heap_file
module Engine = Fieldrep_replication.Engine

type report = {
  pages_scanned : int;  (** pages whose checksums were verified *)
  checksum_failures : int;  (** pages that failed verification *)
  repairs : int;  (** logical repair actions performed *)
  quarantined : (int * int) list;
      (** (file, page) pairs still quarantined when scrub finished —
          unrepairable data pages *)
  unrepairable : string list;
      (** human-readable reports of damage scrub could not (or must not)
          repair, e.g. corrupt source fields *)
}

val pp_report : Format.formatter -> report -> unit

(** {1 Incremental driving}

    The physical sweep is resumable so a background-maintenance job can
    interleave it with foreground transactions: {!sweep_start} snapshots
    the file list, {!sweep_step} verifies a bounded number of pages, and
    {!finish} runs triage plus the logical pass and builds the report. *)

type sweep
(** In-progress physical sweep: a page cursor over the store's files plus
    the accumulated failures the later phases consume. *)

val sweep_start :
  Engine.env -> data_sets:(string * Heap_file.t) list -> sweep
(** Flush the buffer pool and begin a sweep over [data_sets] plus every
    link and S' file discovered from the engine's store. *)

val sweep_step : sweep -> budget:int -> bool
(** Verify up to [budget] pages through the checksum-checking disk layer.
    Returns [true] while pages remain, [false] once the sweep is done. *)

val finish :
  ?log_repair:(rep_id:int -> source:Oid.t -> unit) ->
  ?guard:(Oid.t -> bool) ->
  sweep ->
  report
(** Triage the sweep's corrupt pages, then logically verify and repair
    derived state against the recomputed ground truth.  [log_repair] is
    invoked before each repair with the replication and source object
    about to be refreshed; wire it to WAL appending for durable repairs.

    [guard oid] is asked before any repair that writes through a
    foreground-visible object (default: always [true]); wire it to
    short-duration X locks to scrub alongside active transactions.  A
    refused repair is {e deferred} — reported in [unrepairable] and left
    for a later scrub — never half-applied.

    Only [Active] replication declarations are audited: link state of a
    path mid-backfill or mid-teardown belongs to its maintenance job and
    is skipped. *)

val run :
  ?log_repair:(rep_id:int -> source:Oid.t -> unit) ->
  ?guard:(Oid.t -> bool) ->
  Engine.env ->
  data_sets:(string * Heap_file.t) list ->
  report
(** Scrub the whole database in one call:
    [sweep_start] + [sweep_step] to exhaustion + [finish]. *)
