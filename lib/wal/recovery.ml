module Oid = Fieldrep_storage.Oid
module Value = Fieldrep_model.Value

type applier = {
  define_type : Fieldrep_model.Ty.t -> unit;
  create_set : name:string -> elem_type:string -> reserve:int -> unit;
  insert : set:string -> Value.t list -> Oid.t;
  update : set:string -> oid:Oid.t -> field:string -> Value.t -> unit;
  delete : set:string -> oid:Oid.t -> unit;
  delete_pinned : set:string -> oid:Oid.t -> unit;
  insert_at : set:string -> oid:Oid.t -> Value.t list -> unit;
  free_tombstone : set:string -> oid:Oid.t -> unit;
  replicate :
    strategy:Fieldrep_model.Schema.strategy ->
    options:Fieldrep_model.Schema.rep_options ->
    path:string ->
    unit;
  build_index :
    name:string -> set:string -> field:string -> clustered:bool -> unit;
  scrub_repair : rep_id:int -> source:Oid.t -> unit;
  replicate_online :
    strategy:Fieldrep_model.Schema.strategy ->
    options:Fieldrep_model.Schema.rep_options ->
    path:string ->
    unit;
  unreplicate : path:string -> unit;
  maint_step : job:int -> upto:int -> unit;
  maint_done : job:int -> unit;
  epoch_change : epoch:int -> unit;
}

type loser = {
  l_txn : int;
  l_images : (string * Oid.t * bool * Value.t list) list;  (* newest first *)
  l_inserts : (string * Oid.t) list;  (* newest first *)
  l_tombstones : (string * Oid.t) list;
}

(* Replay-time trace of one logged transaction. *)
type trace = {
  mutable t_images : (string * Oid.t * bool * Value.t list) list;
  mutable t_inserts : (string * Oid.t) list;
  mutable t_tombs : (string * Oid.t) list;
}

exception Diverged of string

type stream = {
  s_applier : applier;
  s_txns : (int, trace) Hashtbl.t;
  mutable s_failed : (int64 * string) option;
      (* a record whose operation raised; the next record must be the
         master's [Abort] marker rescinding it *)
  mutable s_applied : int;
}

let stream applier =
  { s_applier = applier; s_txns = Hashtbl.create 8; s_failed = None;
    s_applied = 0 }

let applied s = s.s_applied
let pending_failure s = s.s_failed

let apply_plain a = function
  | Wal.Define_type ty -> a.define_type ty
  | Wal.Create_set { name; elem_type; reserve } ->
      a.create_set ~name ~elem_type ~reserve
  | Wal.Insert { set; values } -> ignore (a.insert ~set values)
  | Wal.Update { set; oid; field; value } -> a.update ~set ~oid ~field value
  | Wal.Delete { set; oid } -> a.delete ~set ~oid
  | Wal.Replicate { path; strategy; options } ->
      a.replicate ~strategy ~options ~path
  | Wal.Build_index { name; set; field; clustered } ->
      a.build_index ~name ~set ~field ~clustered
  | Wal.Scrub_repair { rep_id; source } -> a.scrub_repair ~rep_id ~source
  | Wal.Replicate_online { path; strategy; options } ->
      a.replicate_online ~strategy ~options ~path
  | Wal.Unreplicate { path } -> a.unreplicate ~path
  | Wal.Maint_step { job; upto } -> a.maint_step ~job ~upto
  | Wal.Maint_done { job } -> a.maint_done ~job
  | Wal.Epoch_change { epoch } -> a.epoch_change ~epoch
  | Wal.Abort _ -> ()  (* handled in [feed]; belt and braces *)
  | Wal.Txn_begin _ | Wal.Txn_commit _ | Wal.Txn_abort _ | Wal.Undo_image _
  | Wal.Insert_at _ | Wal.Txn_op _ ->
      invalid_arg "Recovery: transaction record outside replay"

let trace s txn =
  match Hashtbl.find_opt s.s_txns txn with
  | Some t -> t
  | None ->
      let t = { t_images = []; t_inserts = []; t_tombs = [] } in
      Hashtbl.replace s.s_txns txn t;
      t

(* A tombstone revived by a compensation record is no longer pending. *)
let unpin s set oid =
  Hashtbl.iter
    (fun _ t -> t.t_tombs <- List.filter (fun e -> e <> (set, oid)) t.t_tombs)
    s.s_txns

let resolve s txn =
  match Hashtbl.find_opt s.s_txns txn with
  | None -> ()
  | Some t ->
      List.iter
        (fun (set, oid) -> s.s_applier.free_tombstone ~set ~oid)
        (List.rev t.t_tombs);
      Hashtbl.remove s.s_txns txn

let apply s record =
  let a = s.s_applier in
  match record with
  | Wal.Txn_begin txn -> ignore (trace s txn)
  | Wal.Txn_commit txn | Wal.Txn_abort txn -> resolve s txn
  | Wal.Undo_image { txn; set; oid; present; values } ->
      let t = trace s txn in
      t.t_images <- (set, oid, present, values) :: t.t_images
  | Wal.Insert_at { set; oid; values } ->
      a.insert_at ~set ~oid values;
      unpin s set oid;
      s.s_applied <- s.s_applied + 1
  | Wal.Txn_op { txn; op } -> (
      let t = trace s txn in
      s.s_applied <- s.s_applied + 1;
      match op with
      | Wal.Insert { set; values } ->
          let oid = a.insert ~set values in
          t.t_inserts <- (set, oid) :: t.t_inserts
      | Wal.Delete { set; oid } ->
          a.delete_pinned ~set ~oid;
          t.t_tombs <- (set, oid) :: t.t_tombs
      | op -> apply_plain a op)
  | record ->
      apply_plain a record;
      s.s_applied <- s.s_applied + 1

let feed s lsn record =
  match (s.s_failed, record) with
  | Some (flsn, _), Wal.Abort rescinded when Int64.equal rescinded flsn ->
      (* The master's operation failed validation after its record was
         appended; ours failed identically and left no effects, so the
         marker simply clears the slot. *)
      s.s_failed <- None
  | Some (flsn, msg), _ ->
      raise
        (Diverged
           (Printf.sprintf
              "record %Ld failed (%s) but the next record is not its Abort \
               marker"
              flsn msg))
  | None, Wal.Abort rescinded ->
      raise
        (Diverged
           (Printf.sprintf
              "master rescinded record %Ld, which this replica applied"
              rescinded))
  | None, record -> (
      (* The write-ahead contract means a validation failure raises before
         the operation touches any page, so catching it here leaves the
         store exactly as it was — matching the master, whose own attempt
         failed the same validation and appended the Abort marker that
         must arrive next. *)
      try apply s record
      with Invalid_argument msg | Failure msg -> s.s_failed <- Some (lsn, msg))

let losers s =
  Hashtbl.fold
    (fun txn t acc ->
      {
        l_txn = txn;
        l_images = t.t_images;
        l_inserts = t.t_inserts;
        l_tombstones = t.t_tombs;
      }
      :: acc)
    s.s_txns []
  |> List.sort (fun a b -> compare a.l_txn b.l_txn)

let replay wal ~after applier =
  let s = stream applier in
  List.iter
    (fun (lsn, record) ->
      if Int64.compare lsn after > 0 then feed s lsn record)
    (Wal.records wal);
  (* [Wal.records] filters rescinded records and their markers out, so a
     pending failure here means the log redid an operation that failed —
     the store and the log genuinely disagree. *)
  (match s.s_failed with
  | Some (lsn, msg) ->
      raise
        (Diverged (Printf.sprintf "replay of record %Ld failed: %s" lsn msg))
  | None -> ());
  (s.s_applied, losers s)
