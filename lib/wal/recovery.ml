module Oid = Fieldrep_storage.Oid
module Value = Fieldrep_model.Value

type applier = {
  define_type : Fieldrep_model.Ty.t -> unit;
  create_set : name:string -> elem_type:string -> reserve:int -> unit;
  insert : set:string -> Value.t list -> Oid.t;
  update : set:string -> oid:Oid.t -> field:string -> Value.t -> unit;
  delete : set:string -> oid:Oid.t -> unit;
  delete_pinned : set:string -> oid:Oid.t -> unit;
  insert_at : set:string -> oid:Oid.t -> Value.t list -> unit;
  free_tombstone : set:string -> oid:Oid.t -> unit;
  replicate :
    strategy:Fieldrep_model.Schema.strategy ->
    options:Fieldrep_model.Schema.rep_options ->
    path:string ->
    unit;
  build_index :
    name:string -> set:string -> field:string -> clustered:bool -> unit;
  scrub_repair : rep_id:int -> source:Oid.t -> unit;
}

type loser = {
  l_txn : int;
  l_images : (string * Oid.t * bool * Value.t list) list;  (* newest first *)
  l_inserts : (string * Oid.t) list;  (* newest first *)
  l_tombstones : (string * Oid.t) list;
}

(* Replay-time trace of one logged transaction. *)
type trace = {
  mutable t_images : (string * Oid.t * bool * Value.t list) list;
  mutable t_inserts : (string * Oid.t) list;
  mutable t_tombs : (string * Oid.t) list;
}

let apply_plain a = function
  | Wal.Define_type ty -> a.define_type ty
  | Wal.Create_set { name; elem_type; reserve } ->
      a.create_set ~name ~elem_type ~reserve
  | Wal.Insert { set; values } -> ignore (a.insert ~set values)
  | Wal.Update { set; oid; field; value } -> a.update ~set ~oid ~field value
  | Wal.Delete { set; oid } -> a.delete ~set ~oid
  | Wal.Replicate { path; strategy; options } ->
      a.replicate ~strategy ~options ~path
  | Wal.Build_index { name; set; field; clustered } ->
      a.build_index ~name ~set ~field ~clustered
  | Wal.Scrub_repair { rep_id; source } -> a.scrub_repair ~rep_id ~source
  | Wal.Abort _ -> ()  (* already filtered by Wal.records; belt and braces *)
  | Wal.Txn_begin _ | Wal.Txn_commit _ | Wal.Txn_abort _ | Wal.Undo_image _
  | Wal.Insert_at _ | Wal.Txn_op _ ->
      invalid_arg "Recovery: transaction record outside replay"

let replay wal ~after applier =
  let txns : (int, trace) Hashtbl.t = Hashtbl.create 8 in
  let trace txn =
    match Hashtbl.find_opt txns txn with
    | Some t -> t
    | None ->
        let t = { t_images = []; t_inserts = []; t_tombs = [] } in
        Hashtbl.replace txns txn t;
        t
  in
  (* A tombstone revived by a compensation record is no longer pending. *)
  let unpin set oid =
    Hashtbl.iter
      (fun _ t ->
        t.t_tombs <- List.filter (fun e -> e <> (set, oid)) t.t_tombs)
      txns
  in
  let resolve txn =
    match Hashtbl.find_opt txns txn with
    | None -> ()
    | Some t ->
        List.iter
          (fun (set, oid) -> applier.free_tombstone ~set ~oid)
          (List.rev t.t_tombs);
        Hashtbl.remove txns txn
  in
  let n = ref 0 in
  List.iter
    (fun (lsn, record) ->
      if Int64.compare lsn after > 0 then
        match record with
        | Wal.Txn_begin txn -> ignore (trace txn)
        | Wal.Txn_commit txn | Wal.Txn_abort txn -> resolve txn
        | Wal.Undo_image { txn; set; oid; present; values } ->
            let t = trace txn in
            t.t_images <- (set, oid, present, values) :: t.t_images
        | Wal.Insert_at { set; oid; values } ->
            applier.insert_at ~set ~oid values;
            unpin set oid;
            incr n
        | Wal.Txn_op { txn; op } -> (
            let t = trace txn in
            incr n;
            match op with
            | Wal.Insert { set; values } ->
                let oid = applier.insert ~set values in
                t.t_inserts <- (set, oid) :: t.t_inserts
            | Wal.Delete { set; oid } ->
                applier.delete_pinned ~set ~oid;
                t.t_tombs <- (set, oid) :: t.t_tombs
            | op -> apply_plain applier op)
        | record ->
            apply_plain applier record;
            incr n)
    (Wal.records wal);
  let losers =
    Hashtbl.fold
      (fun txn t acc ->
        {
          l_txn = txn;
          l_images = t.t_images;
          l_inserts = t.t_inserts;
          l_tombstones = t.t_tombs;
        }
        :: acc)
      txns []
    |> List.sort (fun a b -> compare a.l_txn b.l_txn)
  in
  (!n, losers)
