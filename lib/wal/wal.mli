(** Write-ahead log of logical DML/DDL redo records.

    The log is the durability substrate under the replication engine: a
    single logical update may touch many pages (the object itself, hidden
    copies in every source object, link objects, S' objects, B+-tree
    nodes), and a crash mid-propagation would otherwise leave replicas and
    indexes silently inconsistent.  Instead of physical page logging, the
    engine appends one {e logical redo record} per mutation — before it
    touches any page — and recovery reopens the last checkpoint image and
    redoes the tail deterministically through the same engine code
    ({!Recovery}).

    {1 On-disk format}

    The log is an append-only file:

    {v "FREPWAL1"                                    file header
       frame*                                        one frame per record
       frame = [ len:u32 | crc:u32 | payload ]
       payload = [ lsn:i64 | kind:u8 | body ]        via Fieldrep_util.Wire v}

    [crc] is an FNV-1a checksum of the payload.  {!open_} scans existing
    frames and stops at the first short or corrupt frame — a torn tail
    written during a crash is ignored, and subsequent appends overwrite it.

    {1 Group commit}

    Appends accumulate in an in-memory buffer; {!sync} writes the buffer
    through to the OS in one physical flush.  The database layer syncs at
    every durability point — an autocommit mutation before it touches
    pages, [Txn_commit] / [Txn_abort], a checkpoint — so N interleaved
    clients amortise one flush over all the [Txn_op] and [Undo_image]
    records appended since the last commit.  A byte threshold
    ([?flush_limit], default 64 KiB) bounds the unflushed window, and
    {!close} syncs.  Buffering preserves append order, so the on-disk log
    is always a {e prefix} of the appended sequence: after a crash,
    recovery lands exactly on the committed prefix — records past the last
    sync belong to transactions that had not committed (their commit
    marker syncs before {!append} returns to the caller) and are rolled
    back as losers.

    {1 Aborted records}

    A record is appended before its operation runs, so an operation that
    then fails validation (e.g. deleting a still-referenced object) leaves
    a record that must not be redone.  Rather than truncating — the log is
    append-only — the engine appends an {!record.Abort} marker naming the
    failed record's LSN; {!records} filters both out. *)

module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema

(** Logical redo records.  Everything a record needs to be redone is
    captured by value; OIDs are physical and stable, and replay is
    deterministic, so inserted objects land on the same OIDs as in the
    original run. *)
type record =
  | Define_type of Ty.t
  | Create_set of { name : string; elem_type : string; reserve : int }
  | Insert of { set : string; values : Value.t list }
  | Update of { set : string; oid : Oid.t; field : string; value : Value.t }
  | Delete of { set : string; oid : Oid.t }
  | Replicate of {
      path : string;
      strategy : Schema.strategy;
      options : Schema.rep_options;
    }
  | Build_index of {
      name : string;
      set : string;
      field : string;
      clustered : bool;
    }
  | Abort of int64  (** rescind the record with this LSN *)
  | Txn_begin of int  (** transaction boundary: txn id *)
  | Txn_commit of int
  | Txn_abort of int
      (** the txn was rolled back — compensation records for it appear
          between its last [Txn_op] and this marker *)
  | Undo_image of {
      txn : int;
      set : string;
      oid : Oid.t;
      present : bool;
      values : Value.t list;
    }
      (** before-image of an object, logged at the transaction's first
          write touch; [present = false] records that the object was
          created by the transaction.  Undo-only: skipped during redo. *)
  | Insert_at of { set : string; oid : Oid.t; values : Value.t list }
      (** revive a tombstoned OID with these values — the compensation
          record for an aborted delete *)
  | Txn_op of { txn : int; op : record }
      (** a DML record executed inside transaction [txn]; redo applies
          [op], recovery uses the tag to resolve winners and losers *)
  | Scrub_repair of { rep_id : int; source : Oid.t }
      (** scrub rebuilt the replicated state derived from [source] under
          replication [rep_id].  Replay re-runs the (idempotent) refresh:
          on a cleanly recovered store it is a no-op, and after a crash
          mid-repair it completes the repair. *)
  | Replicate_online of {
      path : string;
      strategy : Schema.strategy;
      options : Schema.rep_options;
    }
      (** like [Replicate] but the declaration is installed in the
          [Building] state with no bulk build: the backfill runs as a
          background-maintenance job whose progress the following
          [Maint_step] records log. *)
  | Unreplicate of { path : string }
      (** flip the path's declaration to [Dropping]: reads revert to the
          functional join immediately, derived state is torn down by the
          maintenance job behind [Maint_step] records. *)
  | Maint_step of { job : int; upto : int }
      (** one quantum of maintenance job [job] (= the rep_id being built or
          torn down) ran: its page cursor advanced to [upto] (exclusive).
          Logged {e before} the quantum mutates anything; replay re-runs
          the quantum's idempotent per-source operations, so a crash
          mid-quantum converges to the same state. *)
  | Maint_done of { job : int }
      (** the job's walk completed: replay flips the declaration
          [Building] -> [Active] or [Dropping] -> [Dropped]. *)
  | Epoch_change of { epoch : int }
      (** a replica promoted to master and bumped the replication epoch:
          the first record a new master appends, so the log stream itself
          carries the epoch history.  Replay raises the database's epoch
          (state is otherwise untouched); replicas applying the shipped
          frame adopt the epoch the same way. *)

type t

val open_ : ?stats:Stats.t -> ?flush_limit:int -> ?fsync:bool -> string -> t
(** Open (creating if absent) the log at a path.  Existing frames are
    scanned and validated; the scan stops at the first torn or corrupt
    frame, and the write position is placed just after the last good one.
    Raises [Invalid_argument] on a file that is not a fieldrep log.
    [stats], when given, accrues [wal_appends] / [wal_bytes] /
    [wal_flushes].  [flush_limit] caps the bytes buffered between
    {!sync}s (default 64 KiB).  With [fsync:true] every {!sync} issues a
    real [fsync(2)] after the channel flush, so the group-commit point is
    an honest disk barrier (pass [flush_limit:1] to defeat group commit
    and pay one fsync per append — the benchmark baseline).  Defaults to
    the [FIELDREP_WAL_FSYNC] environment variable (["1"]/["true"]; off
    when unset). *)

val path : t -> string

val append : t -> record -> int64
(** Serialize, frame and buffer one record; returns its LSN.  Must be
    called {e before} the operation it describes touches any page.  The
    record reaches the OS at the next {!sync} (or when the buffered bytes
    pass the flush limit). *)

val sync : t -> unit
(** Flush every buffered record to the OS in one physical flush (a no-op
    when nothing is buffered).  The group-commit point: callers invoke it
    when a durability boundary is reached, not per append. *)

val flushes : t -> int
(** Physical flushes performed through this handle (monotonic, survives
    [Stats.reset] — benchmarks read this alongside {!appended}). *)

val fsyncs : t -> int
(** Real [fsync(2)] barriers issued through this handle (0 unless the log
    was opened with [fsync:true]).  Monotonic; the [io] bench reads this
    to show group commit amortizing {e measured} fsyncs. *)

val pending_bytes : t -> int
(** Bytes appended but not yet synced. *)

val append_abort : t -> aborted:int64 -> unit
(** Rescind a previously appended record (its operation failed). *)

val last_lsn : t -> int64
(** The most recently assigned LSN (0 for an empty log). *)

val ensure_lsn : t -> int64 -> unit
(** Raise the LSN counter to at least the given value — used when attaching
    a log to a database restored from an LSN-stamped checkpoint, so fresh
    appends sort after the checkpoint. *)

val set_tap : t -> ((int64 * Bytes.t) list -> unit) option -> unit
(** Install (or clear) a frame tap.  While installed, every appended frame
    is stashed and the tap fires inside {!sync}, {e after} the physical
    flush, with the batch that flush made durable, in append order — so
    anything the observer sees can be re-read from the file with
    {!read_frames}.  A tap that blocks turns [sync] itself into a
    replication barrier (ack-mode shipping).  Install the tap before the
    workload starts: frames appended while no tap is installed are not
    retained.  Note the tap also fires on flush-limit overflow syncs, so an
    observer may see mid-transaction records before their commit marker. *)

val encode_frame : int64 -> record -> Bytes.t
(** Serialize one record into a self-validating wire frame
    ([len | crc | lsn | kind | body]) — exactly the bytes {!append} writes
    to the log file. *)

val decode_frame : Bytes.t -> int64 * record
(** Inverse of {!encode_frame}.  Raises [Fieldrep_util.Wire.Corrupt] on a
    short, truncated, trailing-garbage or checksum-failing frame. *)

val read_frames : string -> after:int64 -> (int64 * Bytes.t) list
(** Re-read the raw frames of the log file at a path, keeping those with
    LSN strictly greater than [after], in LSN order.  Stops at the first
    torn or corrupt frame (as {!open_} does); returns [[]] for a missing
    or empty file; raises [Invalid_argument] on a file that is not a
    fieldrep log.  Serves replica re-send and rejoin requests. *)

val truncate_file : string -> after:int64 -> unit
(** Physically discard every frame with LSN strictly greater than [after]
    from the (closed) log file at a path — the rejoin path for a deposed
    master whose unshipped tail diverged from the new epoch's history.
    Ill-formed tails are discarded too (the scan stops where {!open_}
    would).  A no-op on a missing file; raises [Invalid_argument] on a
    file that is not a fieldrep log. *)

val records : t -> (int64 * record) list
(** The valid records found at {!open_} time, in LSN order, with aborted
    records and [Abort] markers filtered out.  Records appended through
    this handle afterwards are not included. *)

val appended : t -> int
(** Records appended through this handle (monotonic, survives
    [Stats.reset] — benchmarks read this). *)

val bytes_written : t -> int
(** Bytes appended through this handle, including framing. *)

val close : t -> unit
(** {!sync}, then close the underlying channel. *)
