module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Wire = Fieldrep_util.Wire
module Lockdep = Fieldrep_util.Lockdep
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Schema = Fieldrep_model.Schema

type record =
  | Define_type of Ty.t
  | Create_set of { name : string; elem_type : string; reserve : int }
  | Insert of { set : string; values : Value.t list }
  | Update of { set : string; oid : Oid.t; field : string; value : Value.t }
  | Delete of { set : string; oid : Oid.t }
  | Replicate of {
      path : string;
      strategy : Schema.strategy;
      options : Schema.rep_options;
    }
  | Build_index of {
      name : string;
      set : string;
      field : string;
      clustered : bool;
    }
  | Abort of int64
  | Txn_begin of int
  | Txn_commit of int
  | Txn_abort of int
  | Undo_image of {
      txn : int;
      set : string;
      oid : Oid.t;
      present : bool;
      values : Value.t list;
    }
  | Insert_at of { set : string; oid : Oid.t; values : Value.t list }
  | Txn_op of { txn : int; op : record }
  | Scrub_repair of { rep_id : int; source : Oid.t }
  | Replicate_online of {
      path : string;
      strategy : Schema.strategy;
      options : Schema.rep_options;
    }
  | Unreplicate of { path : string }
  | Maint_step of { job : int; upto : int }
  | Maint_done of { job : int }
  | Epoch_change of { epoch : int }

let magic = "FREPWAL1"

(* ------------------------------------------------------------------ *)
(* Record codec (body only; lsn and kind are framed by the caller)     *)

let ftype_size = function
  | Ty.Scalar _ -> 1
  | Ty.Ref target -> 1 + Wire.string_size target

let put_ftype buf off = function
  | Ty.Scalar Ty.SInt -> Wire.put_u8 buf off 0
  | Ty.Scalar Ty.SString -> Wire.put_u8 buf off 1
  | Ty.Ref target ->
      let off = Wire.put_u8 buf off 2 in
      Wire.put_string buf off target

let get_ftype buf off =
  let k, off = Wire.get_u8 buf off in
  match k with
  | 0 -> (Ty.Scalar Ty.SInt, off)
  | 1 -> (Ty.Scalar Ty.SString, off)
  | 2 ->
      let target, off = Wire.get_string buf off in
      (Ty.Ref target, off)
  | k -> raise (Wire.Corrupt (Printf.sprintf "Wal: bad field kind %d" k))

let kind_of = function
  | Define_type _ -> 0
  | Create_set _ -> 1
  | Insert _ -> 2
  | Update _ -> 3
  | Delete _ -> 4
  | Replicate _ -> 5
  | Build_index _ -> 6
  | Abort _ -> 7
  | Txn_begin _ -> 8
  | Txn_commit _ -> 9
  | Txn_abort _ -> 10
  | Undo_image _ -> 11
  | Insert_at _ -> 12
  | Txn_op _ -> 13
  | Scrub_repair _ -> 14
  | Replicate_online _ -> 15
  | Unreplicate _ -> 16
  | Maint_step _ -> 17
  | Maint_done _ -> 18
  | Epoch_change _ -> 19

let rec body_size = function
  | Define_type ty ->
      Wire.string_size ty.Ty.tname + 2
      + List.fold_left
          (fun acc (f : Ty.field) ->
            acc + Wire.string_size f.Ty.fname + ftype_size f.Ty.ftype)
          0 ty.Ty.fields
  | Create_set { name; elem_type; reserve = _ } ->
      Wire.string_size name + Wire.string_size elem_type + 4
  | Insert { set; values } ->
      Wire.string_size set + 2
      + List.fold_left (fun acc v -> acc + Value.encoded_size v) 0 values
  | Update { set; oid = _; field; value } ->
      Wire.string_size set + Oid.encoded_size + Wire.string_size field
      + Value.encoded_size value
  | Delete { set; oid = _ } -> Wire.string_size set + Oid.encoded_size
  | Replicate { path; strategy = _; options = _ } -> Wire.string_size path + 6
  | Build_index { name; set; field; clustered = _ } ->
      Wire.string_size name + Wire.string_size set + Wire.string_size field + 1
  | Abort _ -> 8
  | Txn_begin _ | Txn_commit _ | Txn_abort _ -> 4
  | Undo_image { txn = _; set; oid = _; present = _; values } ->
      4 + Wire.string_size set + Oid.encoded_size + 1 + 2
      + List.fold_left (fun acc v -> acc + Value.encoded_size v) 0 values
  | Insert_at { set; oid = _; values } ->
      Wire.string_size set + Oid.encoded_size + 2
      + List.fold_left (fun acc v -> acc + Value.encoded_size v) 0 values
  | Txn_op { txn = _; op } -> 4 + 1 + body_size op
  | Scrub_repair { rep_id = _; source = _ } -> 4 + Oid.encoded_size
  | Replicate_online { path; strategy; options } ->
      body_size (Replicate { path; strategy; options })
  | Unreplicate { path } -> Wire.string_size path
  | Maint_step { job = _; upto = _ } -> 8
  | Maint_done { job = _ } -> 4
  | Epoch_change { epoch = _ } -> 4

let rec put_body buf off = function
  | Define_type ty ->
      let off = Wire.put_string buf off ty.Ty.tname in
      let off = Wire.put_u16 buf off (List.length ty.Ty.fields) in
      List.fold_left
        (fun off (f : Ty.field) ->
          let off = Wire.put_string buf off f.Ty.fname in
          put_ftype buf off f.Ty.ftype)
        off ty.Ty.fields
  | Create_set { name; elem_type; reserve } ->
      let off = Wire.put_string buf off name in
      let off = Wire.put_string buf off elem_type in
      Wire.put_u32 buf off reserve
  | Insert { set; values } ->
      let off = Wire.put_string buf off set in
      let off = Wire.put_u16 buf off (List.length values) in
      List.fold_left (fun off v -> Value.encode buf off v) off values
  | Update { set; oid; field; value } ->
      let off = Wire.put_string buf off set in
      let off = Oid.encode buf off oid in
      let off = Wire.put_string buf off field in
      Value.encode buf off value
  | Delete { set; oid } ->
      let off = Wire.put_string buf off set in
      Oid.encode buf off oid
  | Replicate { path; strategy; options } ->
      let off = Wire.put_string buf off path in
      let off =
        Wire.put_u8 buf off
          (match strategy with Schema.Inplace -> 0 | Schema.Separate -> 1)
      in
      let off = Wire.put_u8 buf off (if options.Schema.collapse then 1 else 0) in
      let off = Wire.put_u16 buf off options.Schema.small_link_threshold in
      let off =
        Wire.put_u8 buf off (if options.Schema.lazy_propagation then 1 else 0)
      in
      Wire.put_u8 buf off (if options.Schema.cluster_links then 1 else 0)
  | Build_index { name; set; field; clustered } ->
      let off = Wire.put_string buf off name in
      let off = Wire.put_string buf off set in
      let off = Wire.put_string buf off field in
      Wire.put_u8 buf off (if clustered then 1 else 0)
  | Abort lsn -> Wire.put_i64 buf off lsn
  | Txn_begin txn | Txn_commit txn | Txn_abort txn -> Wire.put_u32 buf off txn
  | Undo_image { txn; set; oid; present; values } ->
      let off = Wire.put_u32 buf off txn in
      let off = Wire.put_string buf off set in
      let off = Oid.encode buf off oid in
      let off = Wire.put_u8 buf off (if present then 1 else 0) in
      let off = Wire.put_u16 buf off (List.length values) in
      List.fold_left (fun off v -> Value.encode buf off v) off values
  | Insert_at { set; oid; values } ->
      let off = Wire.put_string buf off set in
      let off = Oid.encode buf off oid in
      let off = Wire.put_u16 buf off (List.length values) in
      List.fold_left (fun off v -> Value.encode buf off v) off values
  | Txn_op { txn; op } ->
      let off = Wire.put_u32 buf off txn in
      let off = Wire.put_u8 buf off (kind_of op) in
      put_body buf off op
  | Scrub_repair { rep_id; source } ->
      let off = Wire.put_u32 buf off rep_id in
      Oid.encode buf off source
  | Replicate_online { path; strategy; options } ->
      put_body buf off (Replicate { path; strategy; options })
  | Unreplicate { path } -> Wire.put_string buf off path
  | Maint_step { job; upto } ->
      let off = Wire.put_u32 buf off job in
      Wire.put_u32 buf off upto
  | Maint_done { job } -> Wire.put_u32 buf off job
  | Epoch_change { epoch } -> Wire.put_u32 buf off epoch

let rec get_body kind buf off =
  match kind with
  | 0 ->
      let tname, off = Wire.get_string buf off in
      let nfields, off = Wire.get_u16 buf off in
      let off = ref off in
      let fields =
        List.init nfields (fun _ ->
            let fname, o = Wire.get_string buf !off in
            let ftype, o = get_ftype buf o in
            off := o;
            { Ty.fname; ftype })
      in
      (Define_type (Ty.make ~name:tname fields), !off)
  | 1 ->
      let name, off = Wire.get_string buf off in
      let elem_type, off = Wire.get_string buf off in
      let reserve, off = Wire.get_u32 buf off in
      (Create_set { name; elem_type; reserve }, off)
  | 2 ->
      let set, off = Wire.get_string buf off in
      let n, off = Wire.get_u16 buf off in
      let off = ref off in
      let values =
        List.init n (fun _ ->
            let v, o = Value.decode buf !off in
            off := o;
            v)
      in
      (Insert { set; values }, !off)
  | 3 ->
      let set, off = Wire.get_string buf off in
      let oid, off = Oid.decode buf off in
      let field, off = Wire.get_string buf off in
      let value, off = Value.decode buf off in
      (Update { set; oid; field; value }, off)
  | 4 ->
      let set, off = Wire.get_string buf off in
      let oid, off = Oid.decode buf off in
      (Delete { set; oid }, off)
  | 5 ->
      let path, off = Wire.get_string buf off in
      let s, off = Wire.get_u8 buf off in
      let strategy =
        match s with
        | 0 -> Schema.Inplace
        | 1 -> Schema.Separate
        | s -> raise (Wire.Corrupt (Printf.sprintf "Wal: bad strategy %d" s))
      in
      let collapse, off = Wire.get_u8 buf off in
      let small_link_threshold, off = Wire.get_u16 buf off in
      let lazy_propagation, off = Wire.get_u8 buf off in
      let cluster_links, off = Wire.get_u8 buf off in
      ( Replicate
          {
            path;
            strategy;
            options =
              {
                Schema.collapse = collapse = 1;
                small_link_threshold;
                lazy_propagation = lazy_propagation = 1;
                cluster_links = cluster_links = 1;
              };
          },
        off )
  | 6 ->
      let name, off = Wire.get_string buf off in
      let set, off = Wire.get_string buf off in
      let field, off = Wire.get_string buf off in
      let clustered, off = Wire.get_u8 buf off in
      (Build_index { name; set; field; clustered = clustered = 1 }, off)
  | 7 ->
      let lsn, off = Wire.get_i64 buf off in
      (Abort lsn, off)
  | 8 ->
      let txn, off = Wire.get_u32 buf off in
      (Txn_begin txn, off)
  | 9 ->
      let txn, off = Wire.get_u32 buf off in
      (Txn_commit txn, off)
  | 10 ->
      let txn, off = Wire.get_u32 buf off in
      (Txn_abort txn, off)
  | 11 ->
      let txn, off = Wire.get_u32 buf off in
      let set, off = Wire.get_string buf off in
      let oid, off = Oid.decode buf off in
      let present, off = Wire.get_u8 buf off in
      let n, off = Wire.get_u16 buf off in
      let off = ref off in
      let values =
        List.init n (fun _ ->
            let v, o = Value.decode buf !off in
            off := o;
            v)
      in
      (Undo_image { txn; set; oid; present = present = 1; values }, !off)
  | 12 ->
      let set, off = Wire.get_string buf off in
      let oid, off = Oid.decode buf off in
      let n, off = Wire.get_u16 buf off in
      let off = ref off in
      let values =
        List.init n (fun _ ->
            let v, o = Value.decode buf !off in
            off := o;
            v)
      in
      (Insert_at { set; oid; values }, !off)
  | 13 ->
      let txn, off = Wire.get_u32 buf off in
      let ikind, off = Wire.get_u8 buf off in
      if ikind = 13 then raise (Wire.Corrupt "Wal: nested Txn_op");
      let op, off = get_body ikind buf off in
      (Txn_op { txn; op }, off)
  | 14 ->
      let rep_id, off = Wire.get_u32 buf off in
      let source, off = Oid.decode buf off in
      (Scrub_repair { rep_id; source }, off)
  | 15 -> (
      match get_body 5 buf off with
      | Replicate { path; strategy; options }, off ->
          (Replicate_online { path; strategy; options }, off)
      | _ -> raise (Wire.Corrupt "Wal: bad Replicate_online body"))
  | 16 ->
      let path, off = Wire.get_string buf off in
      (Unreplicate { path }, off)
  | 17 ->
      let job, off = Wire.get_u32 buf off in
      let upto, off = Wire.get_u32 buf off in
      (Maint_step { job; upto }, off)
  | 18 ->
      let job, off = Wire.get_u32 buf off in
      (Maint_done { job }, off)
  | 19 ->
      let epoch, off = Wire.get_u32 buf off in
      (Epoch_change { epoch }, off)
  | k -> raise (Wire.Corrupt (Printf.sprintf "Wal: bad record kind %d" k))

(* FNV-1a, 32-bit: cheap, dependency-free, catches torn frames.  The same
   function seals disk pages (see [Fieldrep_storage.Disk]). *)
let crc = Fieldrep_storage.Checksum.fnv1a32

(* ------------------------------------------------------------------ *)
(* The log handle                                                      *)

(* Group commit: appends accumulate in the channel buffer and reach the OS
   only on {!sync} — issued by the database layer at commit points (an
   autocommit mutation, [Txn_commit], a checkpoint) — or when the buffered
   bytes pass [flush_limit].  Buffering preserves append order, so the
   on-disk log is always a prefix of the appended sequence and recovery
   lands exactly on the last synced record. *)
let default_flush_limit = 1 lsl 16

type t = {
  path : string;
  oc : out_channel;
  mutable next_lsn : int64;  (* last assigned *)
  existing : (int64 * record) list;
  mutable appends : int;
  mutable bytes : int;
  mutable pending_bytes : int;  (* appended but not yet flushed *)
  mutable flushes : int;
  mutable fsyncs : int;
  fsync : bool;  (* fsync(2) on every sync: honest durability on real disks *)
  flush_limit : int;
  stats : Stats.t option;
  mutable tap : ((int64 * Bytes.t) list -> unit) option;
  mutable tap_pending : (int64 * Bytes.t) list;  (* newest first *)
}

let path t = t.path
let last_lsn t = t.next_lsn
let ensure_lsn t lsn = if t.next_lsn < lsn then t.next_lsn <- lsn
let records t = t.existing
let appended t = t.appends
let bytes_written t = t.bytes
let flushes t = t.flushes
let fsyncs t = t.fsyncs
let pending_bytes t = t.pending_bytes

(* Lockdep class [Wal_sync] brackets the whole flush barrier, including the
   frame tap: anything the shipping hook does runs "under" the sync from
   this node's point of view (a loopback peer applying frames resets its
   scope at [Db.replica_apply], because its pins belong to the other
   node). *)
let sync t =
  Lockdep.with_held Lockdep.Wal_sync @@ fun () ->
  if t.pending_bytes > 0 then begin
    flush t.oc;
    (* With [fsync] the group-commit point pays for a real disk barrier,
       not just a channel flush to the OS cache — so the appends-per-sync
       ratio the txn bench reports amortizes {e actual} fsyncs.  The
       descriptor is fsynced, not reopened O_DSYNC, so the channel keeps
       buffering between syncs (that buffering {e is} group commit). *)
    if t.fsync then begin
      Unix.fsync (Unix.descr_of_out_channel t.oc);
      t.fsyncs <- t.fsyncs + 1
    end;
    t.pending_bytes <- 0;
    t.flushes <- t.flushes + 1;
    (match t.stats with Some s -> Stats.note_wal_flush s | None -> ());
    (* The frame tap fires after the physical flush, with the batch this
       sync made durable, in append order.  Replication shipping hangs off
       this hook: anything a tap observer sees is already on disk, so a
       re-send can always be served from the file — and a tap that blocks
       (ack-mode shipping) makes [sync] itself the durability barrier. *)
    match t.tap with
    | Some f when t.tap_pending <> [] ->
        let batch = List.rev t.tap_pending in
        t.tap_pending <- [];
        f batch
    | Some _ | None -> t.tap_pending <- []
  end

let set_tap t tap =
  t.tap <- tap;
  t.tap_pending <- []

(* Scan the frames of an existing log file.  Returns the raw (lsn, record)
   list and the offset just past the last well-formed frame. *)
let scan data =
  let len = String.length data in
  let buf = Bytes.unsafe_of_string data in
  let acc = ref [] in
  let pos = ref (String.length magic) in
  let stop = ref false in
  while not !stop do
    if !pos + 8 > len then stop := true
    else begin
      let flen, p = Wire.get_u32 buf !pos in
      let fcrc, p = Wire.get_u32 buf p in
      if flen < 9 || p + flen > len then stop := true
      else if crc buf p flen <> fcrc then stop := true
      else begin
        match
          let lsn, o = Wire.get_i64 buf p in
          let kind, o = Wire.get_u8 buf o in
          let r, o = get_body kind buf o in
          if o <> p + flen then raise (Wire.Corrupt "Wal: frame length mismatch");
          (lsn, r)
        with
        | entry ->
            acc := entry :: !acc;
            pos := p + flen
        | exception Wire.Corrupt _ -> stop := true
        | exception Invalid_argument _ -> stop := true
      end
    end
  done;
  (List.rev !acc, !pos)

let fsync_of_env () =
  match Sys.getenv_opt "FIELDREP_WAL_FSYNC" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let open_ ?stats ?(flush_limit = default_flush_limit) ?fsync path =
  let fsync = match fsync with Some b -> b | None -> fsync_of_env () in
  let raw, good_end, data =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let data =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      if String.length data < String.length magic then
        if String.length data = 0 then ([], 0, data)
        else invalid_arg "Wal.open_: not a fieldrep log"
      else if String.sub data 0 (String.length magic) <> magic then
        invalid_arg "Wal.open_: not a fieldrep log"
      else
        let raw, good_end = scan data in
        (raw, good_end, data)
    end
    else ([], 0, "")
  in
  let oc =
    if good_end > 0 && good_end < String.length data then begin
      (* Discard everything past the last well-formed frame immediately.
         Merely seeking there and letting the next append overwrite is not
         enough: if a corrupt frame in the middle of the log happens to be
         the same size as the overwriting one, a stale frame beyond it
         would come back to life with its old LSN. *)
      let oc =
        open_out_gen [ Open_wronly; Open_trunc; Open_binary ] 0o644 path
      in
      output_string oc (String.sub data 0 good_end);
      flush oc;
      oc
    end
    else begin
      let oc =
        open_out_gen [ Open_wronly; Open_creat; Open_binary ] 0o644 path
      in
      if good_end = 0 then begin
        output_string oc magic;
        flush oc
      end
      else seek_out oc good_end;
      oc
    end
  in
  let aborted =
    List.filter_map (function _, Abort l -> Some l | _ -> None) raw
  in
  let existing =
    List.filter
      (fun (lsn, r) ->
        (match r with Abort _ -> false | _ -> true)
        && not (List.mem lsn aborted))
      raw
  in
  let next_lsn = List.fold_left (fun acc (l, _) -> max acc l) 0L raw in
  {
    path;
    oc;
    next_lsn;
    existing;
    appends = 0;
    bytes = 0;
    pending_bytes = 0;
    flushes = 0;
    fsyncs = 0;
    fsync;
    flush_limit = max 1 flush_limit;
    stats;
    tap = None;
    tap_pending = [];
  }

let encode_frame lsn record =
  let blen = body_size record in
  let flen = 8 + 1 + blen in
  let frame = Bytes.create (8 + flen) in
  let off = Wire.put_u32 frame 0 flen in
  let off = Wire.put_u32 frame off 0 (* crc patched below *) in
  let off = Wire.put_i64 frame off lsn in
  let off = Wire.put_u8 frame off (kind_of record) in
  let off = put_body frame off record in
  assert (off = 8 + flen);
  ignore (Wire.put_u32 frame 4 (crc frame 8 flen));
  frame

let decode_frame frame =
  if Bytes.length frame < 8 then raise (Wire.Corrupt "Wal: short frame");
  let flen, p = Wire.get_u32 frame 0 in
  let fcrc, p = Wire.get_u32 frame p in
  if flen < 9 || p + flen <> Bytes.length frame then
    raise (Wire.Corrupt "Wal: bad frame length");
  if crc frame p flen <> fcrc then
    raise (Wire.Corrupt "Wal: frame checksum mismatch");
  let lsn, o = Wire.get_i64 frame p in
  let kind, o = Wire.get_u8 frame o in
  let r, o = get_body kind frame o in
  if o <> p + flen then raise (Wire.Corrupt "Wal: frame length mismatch");
  (lsn, r)

(* Re-read raw frames from a log file, for serving replica re-send
   requests.  The shipping tap only ever sees frames that have already
   been flushed (see [sync]), so any frame a replica can legitimately ask
   for again is present in the file. *)
let read_frames path ~after =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let len = String.length data in
    if len = 0 then []
    else if
      len < String.length magic
      || String.sub data 0 (String.length magic) <> magic
    then invalid_arg "Wal.read_frames: not a fieldrep log"
    else begin
      let buf = Bytes.unsafe_of_string data in
      let acc = ref [] in
      let pos = ref (String.length magic) in
      let stop = ref false in
      while not !stop do
        if !pos + 8 > len then stop := true
        else begin
          let flen, p = Wire.get_u32 buf !pos in
          let fcrc, p = Wire.get_u32 buf p in
          if flen < 9 || p + flen > len then stop := true
          else if crc buf p flen <> fcrc then stop := true
          else begin
            let lsn, _ = Wire.get_i64 buf p in
            if Int64.compare lsn after > 0 then
              acc := (lsn, Bytes.sub buf !pos (8 + flen)) :: !acc;
            pos := p + flen
          end
        end
      done;
      List.rev !acc
    end
  end

(* Physically discard every frame above [after] — the rejoin path for a
   deposed master whose unshipped tail diverged from the new epoch's
   history.  Works on a closed log file: the caller re-opens (or
   re-recovers) afterwards.  Keeps the magic header plus every
   well-formed frame with lsn <= after; scanning stops at the first
   ill-formed frame exactly as [open_] would, so nothing past a torn
   frame survives either. *)
let truncate_file path ~after =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let len = String.length data in
    if len < String.length magic
       || String.sub data 0 (String.length magic) <> magic
    then invalid_arg "Wal.truncate_file: not a fieldrep log"
    else begin
      let buf = Bytes.unsafe_of_string data in
      let keep = Buffer.create len in
      Buffer.add_string keep magic;
      let pos = ref (String.length magic) in
      let stop = ref false in
      while not !stop do
        if !pos + 8 > len then stop := true
        else begin
          let flen, p = Wire.get_u32 buf !pos in
          let fcrc, p = Wire.get_u32 buf p in
          if flen < 9 || p + flen > len then stop := true
          else if crc buf p flen <> fcrc then stop := true
          else begin
            let lsn, _ = Wire.get_i64 buf p in
            if Int64.compare lsn after > 0 then stop := true
            else begin
              Buffer.add_subbytes keep buf !pos (8 + flen);
              pos := p + flen
            end
          end
        end
      done;
      let oc =
        open_out_gen [ Open_wronly; Open_trunc; Open_binary ] 0o644 path
      in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Buffer.output_buffer oc keep)
    end
  end

let write_record t lsn record =
  let frame = encode_frame lsn record in
  output_bytes t.oc frame;
  t.appends <- t.appends + 1;
  t.bytes <- t.bytes + Bytes.length frame;
  t.pending_bytes <- t.pending_bytes + Bytes.length frame;
  (match t.stats with
  | Some s -> Stats.note_wal_append s ~bytes:(Bytes.length frame)
  | None -> ());
  (match t.tap with
  | Some _ -> t.tap_pending <- (lsn, frame) :: t.tap_pending
  | None -> ());
  if t.pending_bytes >= t.flush_limit then sync t

let append t record =
  let lsn = Int64.add t.next_lsn 1L in
  t.next_lsn <- lsn;
  write_record t lsn record;
  lsn

let append_abort t ~aborted = ignore (append t (Abort aborted))

let close t =
  sync t;
  close_out t.oc
