(** Redo-from-checkpoint recovery with transaction resolution.

    Recovery reopens the last checkpoint image (an LSN-stamped [Db.save]
    image) and redoes every log record with a larger LSN {e through the
    normal engine code}: each replayed insert/update/delete re-runs index
    maintenance and replication propagation, so hidden copies, link
    objects, S' objects and B+-trees are rebuilt exactly as the original
    run built them — including re-queuing lazy-propagation invalidations.
    Determinism of the storage layer (physical OIDs, file ids, page
    layout) makes the redo converge on the uncrashed state.

    Transactions extend the picture in three ways:

    - [Txn_op]-tagged records redo like plain ones, but the tag lets the
      replay reconstruct each transaction's footprint.  A tagged delete
      redoes as [delete_pinned] (the slot stays tombstoned, exactly as it
      was in the original run), and a [Txn_commit]/[Txn_abort] marker frees
      the transaction's still-pinned tombstones — reproducing the original
      timing of slot reuse, which OID determinism depends on.
    - [Undo_image] records are redo no-ops; they are collected per
      transaction.
    - Transactions with a logged footprint but no commit/abort marker are
      {e losers} — they were live at the crash.  Their images, replayed
      insert OIDs and pending tombstones are returned so the caller can
      roll them back (and append the compensations plus a [Txn_abort]
      marker, making the rollback itself replayable).

    This module is engine-agnostic: the caller (lib/core's [Db.recover])
    provides an {!applier} of closures over its own DML entry points, which
    keeps the dependency arrow pointing from core to wal. *)

type applier = {
  define_type : Fieldrep_model.Ty.t -> unit;
  create_set : name:string -> elem_type:string -> reserve:int -> unit;
  insert : set:string -> Fieldrep_model.Value.t list -> Fieldrep_storage.Oid.t;
  update :
    set:string ->
    oid:Fieldrep_storage.Oid.t ->
    field:string ->
    Fieldrep_model.Value.t ->
    unit;
  delete : set:string -> oid:Fieldrep_storage.Oid.t -> unit;
  delete_pinned : set:string -> oid:Fieldrep_storage.Oid.t -> unit;
  insert_at :
    set:string ->
    oid:Fieldrep_storage.Oid.t ->
    Fieldrep_model.Value.t list ->
    unit;
  free_tombstone : set:string -> oid:Fieldrep_storage.Oid.t -> unit;
  replicate :
    strategy:Fieldrep_model.Schema.strategy ->
    options:Fieldrep_model.Schema.rep_options ->
    path:string ->
    unit;
  build_index :
    name:string -> set:string -> field:string -> clustered:bool -> unit;
  scrub_repair : rep_id:int -> source:Fieldrep_storage.Oid.t -> unit;
  replicate_online :
    strategy:Fieldrep_model.Schema.strategy ->
    options:Fieldrep_model.Schema.rep_options ->
    path:string ->
    unit;
      (** install the declaration in the [Building] state (no bulk build)
          and enqueue its backfill job at cursor 0 *)
  unreplicate : path:string -> unit;
      (** flip the declaration to [Dropping] and enqueue its teardown job *)
  maint_step : job:int -> upto:int -> unit;
      (** re-run the logged quantum of the job's (idempotent) walk *)
  maint_done : job:int -> unit;
      (** complete the job: [Building] -> [Active] / [Dropping] ->
          [Dropped] *)
  epoch_change : epoch:int -> unit;
      (** adopt the replication epoch a promotion stamped into the log
          (raise-only; state is otherwise untouched) *)
}

(** A transaction that was live at the crash: everything the caller needs
    to roll it back.  Lists are newest-first — already in undo order. *)
type loser = {
  l_txn : int;
  l_images :
    (string * Fieldrep_storage.Oid.t * bool * Fieldrep_model.Value.t list)
    list;
      (** logged before-images: (set, oid, existed-before, user values) *)
  l_inserts : (string * Fieldrep_storage.Oid.t) list;
      (** OIDs the transaction's replayed inserts produced — covers the
          crash window where an insert ran but its image was not yet
          logged *)
  l_tombstones : (string * Fieldrep_storage.Oid.t) list;
      (** slots still pinned by the transaction's deletes *)
}

val replay : Wal.t -> after:int64 -> applier -> int * loser list
(** Redo, in LSN order, every record of the log (as found when it was
    opened) whose LSN is strictly greater than [after] — the checkpoint's
    LSN stamp.  Returns the number of records redone and the losers to
    roll back.  Raises {!Diverged} if a replayed operation fails — the
    log and the store disagree. *)

(** {1 Streaming replay}

    A replication replica receives the {e unfiltered} record stream as the
    master appends it, so — unlike {!replay}, which works from
    [Wal.records] with rescinded records already filtered out — it sees a
    failed operation's record {e before} the [Abort] marker that rescinds
    it.  The stream applier handles this with a one-slot protocol: a record
    whose operation raises [Invalid_argument] or [Failure] (the engine's
    validation errors, raised before any page is touched) parks in the
    failed slot, and the very next record must be its [Abort] marker —
    which is guaranteed by the master's append discipline, where the marker
    is logged immediately after the failure with no interleaving.  Anything
    else raises {!Diverged}. *)

exception Diverged of string
(** The record stream cannot be reconciled with this store's state — the
    replica must re-bootstrap from a fresh checkpoint image. *)

type stream
(** Incremental replay state: per-transaction traces plus the failed-record
    slot.  One [stream] lives as long as the replica applies records. *)

val stream : applier -> stream

val feed : stream -> int64 -> Wal.record -> unit
(** Apply one record.  Records must arrive in LSN order with no gaps —
    gap detection and re-request is the transport layer's job.  Raises
    {!Diverged} on an irreconcilable stream (see above). *)

val applied : stream -> int
(** Operations applied so far (markers and undo images not counted). *)

val pending_failure : stream -> (int64 * string) option
(** The parked failed record, if the last fed record failed validation and
    its [Abort] marker has not arrived yet. *)

val losers : stream -> loser list
(** Transactions with a logged footprint but no commit/abort marker yet —
    at a clean shutdown boundary this is the set to roll back, exactly as
    {!replay} returns. *)
