(** Redo-from-checkpoint recovery with transaction resolution.

    Recovery reopens the last checkpoint image (an LSN-stamped [Db.save]
    image) and redoes every log record with a larger LSN {e through the
    normal engine code}: each replayed insert/update/delete re-runs index
    maintenance and replication propagation, so hidden copies, link
    objects, S' objects and B+-trees are rebuilt exactly as the original
    run built them — including re-queuing lazy-propagation invalidations.
    Determinism of the storage layer (physical OIDs, file ids, page
    layout) makes the redo converge on the uncrashed state.

    Transactions extend the picture in three ways:

    - [Txn_op]-tagged records redo like plain ones, but the tag lets the
      replay reconstruct each transaction's footprint.  A tagged delete
      redoes as [delete_pinned] (the slot stays tombstoned, exactly as it
      was in the original run), and a [Txn_commit]/[Txn_abort] marker frees
      the transaction's still-pinned tombstones — reproducing the original
      timing of slot reuse, which OID determinism depends on.
    - [Undo_image] records are redo no-ops; they are collected per
      transaction.
    - Transactions with a logged footprint but no commit/abort marker are
      {e losers} — they were live at the crash.  Their images, replayed
      insert OIDs and pending tombstones are returned so the caller can
      roll them back (and append the compensations plus a [Txn_abort]
      marker, making the rollback itself replayable).

    This module is engine-agnostic: the caller (lib/core's [Db.recover])
    provides an {!applier} of closures over its own DML entry points, which
    keeps the dependency arrow pointing from core to wal. *)

type applier = {
  define_type : Fieldrep_model.Ty.t -> unit;
  create_set : name:string -> elem_type:string -> reserve:int -> unit;
  insert : set:string -> Fieldrep_model.Value.t list -> Fieldrep_storage.Oid.t;
  update :
    set:string ->
    oid:Fieldrep_storage.Oid.t ->
    field:string ->
    Fieldrep_model.Value.t ->
    unit;
  delete : set:string -> oid:Fieldrep_storage.Oid.t -> unit;
  delete_pinned : set:string -> oid:Fieldrep_storage.Oid.t -> unit;
  insert_at :
    set:string ->
    oid:Fieldrep_storage.Oid.t ->
    Fieldrep_model.Value.t list ->
    unit;
  free_tombstone : set:string -> oid:Fieldrep_storage.Oid.t -> unit;
  replicate :
    strategy:Fieldrep_model.Schema.strategy ->
    options:Fieldrep_model.Schema.rep_options ->
    path:string ->
    unit;
  build_index :
    name:string -> set:string -> field:string -> clustered:bool -> unit;
  scrub_repair : rep_id:int -> source:Fieldrep_storage.Oid.t -> unit;
}

(** A transaction that was live at the crash: everything the caller needs
    to roll it back.  Lists are newest-first — already in undo order. *)
type loser = {
  l_txn : int;
  l_images :
    (string * Fieldrep_storage.Oid.t * bool * Fieldrep_model.Value.t list)
    list;
      (** logged before-images: (set, oid, existed-before, user values) *)
  l_inserts : (string * Fieldrep_storage.Oid.t) list;
      (** OIDs the transaction's replayed inserts produced — covers the
          crash window where an insert ran but its image was not yet
          logged *)
  l_tombstones : (string * Fieldrep_storage.Oid.t) list;
      (** slots still pinned by the transaction's deletes *)
}

val replay : Wal.t -> after:int64 -> applier -> int * loser list
(** Redo, in LSN order, every record of the log (as found when it was
    opened) whose LSN is strictly greater than [after] — the checkpoint's
    LSN stamp.  Returns the number of records redone and the losers to
    roll back. *)
