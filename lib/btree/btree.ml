module Wire = Fieldrep_util.Wire
module Listx = Fieldrep_util.Listx
module Oid = Fieldrep_storage.Oid
module Pager = Fieldrep_storage.Pager

type entry = Key.t * Oid.t

type node =
  | Leaf of { entries : entry array; next : int (* page, -1 = none *) }
  | Internal of { children : int array; seps : entry array }
      (* Array.length children = Array.length seps + 1; seps.(i) is the
         first entry of the subtree under children.(i + 1). *)

type t = {
  pager : Pager.t;
  file : int;
  mutable root : int;
  mutable count : int;
  mutable free_pages : int list;
  mutable key_witness : Key.t option;
  max_leaf : int;
  max_internal : int;
}

let min_oid = { Oid.file = 0; page = 0; slot = 0 }

let compare_entry (k1, o1) (k2, o2) =
  match Key.compare k1 k2 with 0 -> Oid.compare o1 o2 | c -> c

(* ------------------------------------------------------------------ *)
(* Node (de)serialization                                              *)

let tag_leaf = 0
let tag_internal = 1
let none_page = 0xffff_ffff

let entry_size (k, _) = Key.encoded_size k + Oid.encoded_size

let node_bytes = function
  | Leaf { entries; _ } ->
      Array.fold_left (fun acc e -> acc + entry_size e) (1 + 2 + 4) entries
  | Internal { children; seps } ->
      ignore children;
      Array.fold_left (fun acc e -> acc + entry_size e + 4) (1 + 2 + 4) seps

let write_entry buf off (k, o) =
  let off = Key.encode buf off k in
  Oid.encode buf off o

let read_entry buf off =
  let k, off = Key.decode buf off in
  let o, off = Oid.decode buf off in
  ((k, o), off)

let serialize node buf =
  match node with
  | Leaf { entries; next } ->
      let off = Wire.put_u8 buf 0 tag_leaf in
      let off = Wire.put_u16 buf off (Array.length entries) in
      let off = Wire.put_u32 buf off (if next < 0 then none_page else next) in
      ignore (Array.fold_left (fun off e -> write_entry buf off e) off entries)
  | Internal { children; seps } ->
      let off = Wire.put_u8 buf 0 tag_internal in
      let off = Wire.put_u16 buf off (Array.length seps) in
      let off = Wire.put_u32 buf off children.(0) in
      let off = ref off in
      Array.iteri
        (fun i sep ->
          off := write_entry buf !off sep;
          off := Wire.put_u32 buf !off children.(i + 1))
        seps;
      ignore !off

let deserialize buf =
  let tag, off = Wire.get_u8 buf 0 in
  if tag = tag_leaf then begin
    let n, off = Wire.get_u16 buf off in
    let next, off = Wire.get_u32 buf off in
    let next = if next = none_page then -1 else next in
    let cursor = ref off in
    let entries =
      Array.init n (fun _ ->
          let e, off = read_entry buf !cursor in
          cursor := off;
          e)
    in
    Leaf { entries; next }
  end
  else if tag = tag_internal then begin
    let n, off = Wire.get_u16 buf off in
    let child0, off = Wire.get_u32 buf off in
    let cursor = ref off in
    let seps = Array.make n (Key.Int 0, min_oid) in
    let children = Array.make (n + 1) child0 in
    for i = 0 to n - 1 do
      let sep, off = read_entry buf !cursor in
      let child, off = Wire.get_u32 buf off in
      seps.(i) <- sep;
      children.(i + 1) <- child;
      cursor := off
    done;
    Internal { children; seps }
  end
  else raise (Wire.Corrupt (Printf.sprintf "Btree: bad node tag %d" tag))

let read_node t page =
  Pager.with_page_read t.pager ~file:t.file ~page deserialize

let write_node t page node =
  Pager.with_page_write t.pager ~file:t.file ~page (fun buf -> serialize node buf)

let alloc_page t =
  match t.free_pages with
  | page :: rest ->
      t.free_pages <- rest;
      page
  | [] -> Pager.new_page t.pager ~file:t.file

let free_page t page = t.free_pages <- page :: t.free_pages

(* ------------------------------------------------------------------ *)
(* Capacity policy                                                     *)

let max_entries t = function
  | Leaf _ -> t.max_leaf
  | Internal _ -> t.max_internal

let entry_count_of = function
  | Leaf { entries; _ } -> Array.length entries
  | Internal { seps; _ } -> Array.length seps

let overfull t node =
  node_bytes node > Pager.page_size t.pager
  || entry_count_of node > max_entries t node

let underfull t node =
  let cap = max_entries t node in
  if cap < max_int then entry_count_of node < (cap + 1) / 2
  else 4 * node_bytes node < Pager.page_size t.pager

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create ?(max_leaf_entries = max_int) ?(max_internal_entries = max_int) pager =
  if max_leaf_entries < 2 || max_internal_entries < 2 then
    invalid_arg "Btree.create: entry caps must be >= 2";
  let file = Pager.create_file pager in
  let t =
    {
      pager;
      file;
      root = 0;
      count = 0;
      free_pages = [];
      key_witness = None;
      max_leaf = max_leaf_entries;
      max_internal = max_internal_entries;
    }
  in
  t.root <- alloc_page t;
  write_node t t.root (Leaf { entries = [||]; next = -1 });
  t

let file_id t = t.file
let root t = t.root
let entry_count t = t.count

let attach ?(max_leaf_entries = max_int) ?(max_internal_entries = max_int) pager
    ~file ~root ~count =
  let t =
    {
      pager;
      file;
      root;
      count;
      free_pages = [];
      key_witness = None;
      max_leaf = max_leaf_entries;
      max_internal = max_internal_entries;
    }
  in
  (* Recover the key variant from any entry. *)
  (try
     let rec first page =
       match read_node t page with
       | Leaf { entries; _ } ->
           if Array.length entries > 0 then t.key_witness <- Some (fst entries.(0))
       | Internal { children; _ } -> first children.(0)
     in
     first root
   (* Decode failures just mean no witness; storage faults (Corrupt_page,
      Read_error) must keep propagating to the scrub machinery. *)
   with Invalid_argument _ | Failure _ | Wire.Corrupt _ -> ());
  t
let page_count t = Pager.page_count t.pager t.file

let leaf_count t =
  let rec leftmost page =
    match read_node t page with
    | Leaf _ -> page
    | Internal { children; _ } -> leftmost children.(0)
  in
  let rec walk page acc =
    if page < 0 then acc
    else
      match read_node t page with
      | Leaf { next; _ } -> walk next (acc + 1)
      | Internal _ -> raise (Wire.Corrupt "Btree: leaf chain hits internal node")
  in
  walk (leftmost t.root) 0

let height t =
  let rec depth page =
    match read_node t page with
    | Leaf _ -> 1
    | Internal { children; _ } -> 1 + depth children.(0)
  in
  depth t.root

let check_key t key =
  match t.key_witness with
  | None -> t.key_witness <- Some key
  | Some witness ->
      if not (Key.same_variant witness key) then
        invalid_arg "Btree: mixed key variants in one tree"

(* ------------------------------------------------------------------ *)
(* Search                                                              *)

(* Index of the child to descend into for [probe]: the last child whose
   separated range can contain it. *)
let child_index seps probe =
  (* first separator strictly greater than probe *)
  let n = Array.length seps in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if compare_entry seps.(mid) probe <= 0 then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  bsearch 0 n

(* Position of the first entry >= probe within a sorted entry array. *)
let lower_bound entries probe =
  let n = Array.length entries in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if compare_entry entries.(mid) probe < 0 then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  bsearch 0 n

let rec leaf_for t page probe =
  match read_node t page with
  | Leaf { entries; next } -> (entries, next)
  | Internal { children; seps } ->
      leaf_for t children.(child_index seps probe) probe

(* Walk entries in [lo, hi] starting from the leaf containing lo. *)
let iter_range t ~lo ~hi f =
  if Key.compare lo hi <= 0 then begin
    let probe = (lo, min_oid) in
    let entries0, next0 = leaf_for t t.root probe in
    let rec walk entries next start =
      let n = Array.length entries in
      let rec scan i =
        if i >= n then
          if next >= 0 then begin
            match read_node t next with
            | Leaf l2 -> walk l2.entries l2.next 0
            | Internal _ -> raise (Wire.Corrupt "Btree: leaf chain hits internal node")
          end
          else ()
        else begin
          let k, o = entries.(i) in
          if Key.compare k hi > 0 then ()
          else begin
            f k o;
            scan (i + 1)
          end
        end
      in
      scan start
    in
    walk entries0 next0 (lower_bound entries0 probe)
  end

let fold_range t ~lo ~hi ~init ~f =
  let acc = ref init in
  iter_range t ~lo ~hi (fun k o -> acc := f !acc k o);
  !acc

let find t key =
  let acc = ref [] in
  iter_range t ~lo:key ~hi:key (fun _ o -> acc := o :: !acc);
  List.rev !acc

let find_first t key =
  let exception Found of Oid.t in
  try
    iter_range t ~lo:key ~hi:key (fun _ o -> raise (Found o));
    None
  with Found o -> Some o

let mem t key = Option.is_some (find_first t key)

let iter_all t f =
  (* Left-most leaf, then the chain. *)
  let rec leftmost page =
    match read_node t page with
    | Leaf _ -> page
    | Internal { children; _ } -> leftmost children.(0)
  in
  let rec walk page =
    if page >= 0 then
      match read_node t page with
      | Leaf { entries; next } ->
          Array.iter (fun (k, o) -> f k o) entries;
          walk next
      | Internal _ -> raise (Wire.Corrupt "Btree: leaf chain hits internal node")
  in
  walk (leftmost t.root)

(* ------------------------------------------------------------------ *)
(* Insert                                                              *)

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

(* Split index that balances the serialized byte size. *)
let split_point entries extra_per_entry =
  let total =
    Array.fold_left (fun acc e -> acc + entry_size e + extra_per_entry) 0 entries
  in
  let n = Array.length entries in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc + entry_size entries.(i) + extra_per_entry in
      if 2 * acc >= total then i + 1 else scan (i + 1) acc
  in
  max 1 (min (n - 1) (scan 0 0))

(* Returns [Some (sep, right_page)] when the node split. *)
let rec insert_rec t page entry =
  match read_node t page with
  | Leaf { entries; next } ->
      let i = lower_bound entries entry in
      if i < Array.length entries && compare_entry entries.(i) entry = 0 then
        invalid_arg "Btree.insert: duplicate (key, oid) entry";
      let entries = array_insert entries i entry in
      let node = Leaf { entries; next } in
      if not (overfull t node) then begin
        write_node t page node;
        None
      end
      else begin
        let split = split_point entries 0 in
        let left = Array.sub entries 0 split in
        let right = Array.sub entries split (Array.length entries - split) in
        let right_page = alloc_page t in
        write_node t right_page (Leaf { entries = right; next });
        write_node t page (Leaf { entries = left; next = right_page });
        Some (right.(0), right_page)
      end
  | Internal { children; seps } -> (
      let idx = child_index seps entry in
      match insert_rec t children.(idx) entry with
      | None -> None
      | Some (sep, new_child) ->
          let seps = array_insert seps idx sep in
          let children = array_insert children (idx + 1) new_child in
          let node = Internal { children; seps } in
          if not (overfull t node) then begin
            write_node t page node;
            None
          end
          else begin
            (* Promote the separator at the split point ("move up"). *)
            let split = split_point seps 4 in
            let promoted = seps.(split) in
            let left_seps = Array.sub seps 0 split in
            let right_seps = Array.sub seps (split + 1) (Array.length seps - split - 1) in
            let left_children = Array.sub children 0 (split + 1) in
            let right_children =
              Array.sub children (split + 1) (Array.length children - split - 1)
            in
            let right_page = alloc_page t in
            write_node t right_page (Internal { children = right_children; seps = right_seps });
            write_node t page (Internal { children = left_children; seps = left_seps });
            Some (promoted, right_page)
          end)

let insert t key oid =
  check_key t key;
  (match insert_rec t t.root (key, oid) with
  | None -> ()
  | Some (sep, right_page) ->
      (* Root split: move the old root to a fresh page and make the root an
         internal node, so t.root stays stable. *)
      let old_root = read_node t t.root in
      let moved = alloc_page t in
      write_node t moved old_root;
      (* The right sibling produced by the split still references the root
         page via nothing (internals hold child pages; the split wrote left
         into t.root).  Re-point: left child is [moved]. *)
      (match old_root with
      | Leaf _ | Internal _ -> ());
      write_node t t.root (Internal { children = [| moved; right_page |]; seps = [| sep |] }));
  t.count <- t.count + 1

(* ------------------------------------------------------------------ *)
(* Delete                                                              *)

let first_entry t page =
  let rec go page =
    match read_node t page with
    | Leaf { entries; _ } ->
        if Array.length entries = 0 then None else Some entries.(0)
    | Internal { children; _ } -> go children.(0)
  in
  go page

(* Rebalance children.(idx) of the internal node at [page] if underfull.
   Returns the (possibly rewritten) parent node. *)
let rebalance_child t (node : node) idx =
  match node with
  | Leaf _ -> node
  | Internal { children; seps } -> (
      let child_page = children.(idx) in
      let child = read_node t child_page in
      if not (underfull t child) then node
      else begin
        (* Prefer the right sibling; fall back to the left one. *)
        let sib_idx = if idx + 1 <= Array.length seps then idx + 1 else idx - 1 in
        if sib_idx < 0 || sib_idx > Array.length seps then node
        else begin
          let left_idx = min idx sib_idx in
          let right_idx = max idx sib_idx in
          let left_page = children.(left_idx) in
          let right_page = children.(right_idx) in
          let left = read_node t left_page in
          let right = read_node t right_page in
          let merged =
            match (left, right) with
            | Leaf a, Leaf b ->
                Some (Leaf { entries = Array.append a.entries b.entries; next = b.next })
            | Internal a, Internal b ->
                Some
                  (Internal
                     {
                       children = Array.append a.children b.children;
                       seps =
                         Array.concat [ a.seps; [| seps.(left_idx) |]; b.seps ];
                     })
            | Leaf _, Internal _ | Internal _, Leaf _ -> None
          in
          match merged with
          | Some m when not (overfull t m) ->
              write_node t left_page m;
              free_page t right_page;
              Internal
                {
                  children = array_remove children right_idx;
                  seps = array_remove seps left_idx;
                }
          | Some _ | None -> (
              (* Merge impossible: redistribute the combined content evenly
                 by serialized size, which lifts the underfull side above
                 threshold in one step. *)
              match (left, right) with
              | Leaf a, Leaf b ->
                  let combined = Array.append a.entries b.entries in
                  if Array.length combined < 2 then node
                  else begin
                    let split = split_point combined 0 in
                    let l = Array.sub combined 0 split in
                    let r = Array.sub combined split (Array.length combined - split) in
                    write_node t left_page (Leaf { entries = l; next = a.next });
                    write_node t right_page (Leaf { entries = r; next = b.next });
                    let seps = Array.copy seps in
                    seps.(left_idx) <- r.(0);
                    Internal { children; seps }
                  end
              | Internal a, Internal b ->
                  (* Rotate through the parent separator: combined separator
                     list is a.seps ++ [parent sep] ++ b.seps. *)
                  let all_children = Array.append a.children b.children in
                  let all_seps = Array.concat [ a.seps; [| seps.(left_idx) |]; b.seps ] in
                  if Array.length all_seps < 2 then node
                  else begin
                    let split = split_point all_seps 4 in
                    let promoted = all_seps.(split) in
                    write_node t left_page
                      (Internal
                         {
                           children = Array.sub all_children 0 (split + 1);
                           seps = Array.sub all_seps 0 split;
                         });
                    write_node t right_page
                      (Internal
                         {
                           children =
                             Array.sub all_children (split + 1)
                               (Array.length all_children - split - 1);
                           seps =
                             Array.sub all_seps (split + 1)
                               (Array.length all_seps - split - 1);
                         });
                    let seps = Array.copy seps in
                    seps.(left_idx) <- promoted;
                    Internal { children; seps }
                  end
              | Leaf _, Internal _ | Internal _, Leaf _ ->
                  raise (Wire.Corrupt "Btree: siblings at different depths"))
        end
      end)

let rec delete_rec t page entry =
  match read_node t page with
  | Leaf { entries; next } ->
      let i = lower_bound entries entry in
      if i < Array.length entries && compare_entry entries.(i) entry = 0 then begin
        write_node t page (Leaf { entries = array_remove entries i; next });
        true
      end
      else false
  | Internal { children; seps } ->
      let idx = child_index seps entry in
      let found = delete_rec t children.(idx) entry in
      if found then begin
        let node = rebalance_child t (Internal { children; seps }) idx in
        (* Deleting the first entry of a subtree can stale the separator
           guiding into it; refresh from the actual subtree minimum. *)
        let node =
          match node with
          | Internal { children; seps } ->
              let seps = Array.copy seps in
              Array.iteri
                (fun i _ ->
                  match first_entry t children.(i + 1) with
                  | Some e -> seps.(i) <- e
                  | None -> ())
                seps;
              Internal { children; seps }
          | Leaf _ as l -> l
        in
        write_node t page node
      end;
      found

let delete t key oid =
  let found = delete_rec t t.root (key, oid) in
  if found then begin
    t.count <- t.count - 1;
    (* Collapse a root with a single child. *)
    let rec collapse () =
      match read_node t t.root with
      | Internal { children; seps } when Array.length seps = 0 ->
          let child = read_node t children.(0) in
          write_node t t.root child;
          free_page t children.(0);
          collapse ()
      | Internal _ | Leaf _ -> ()
    in
    collapse ()
  end;
  found

(* ------------------------------------------------------------------ *)
(* Bulk load                                                           *)

let bulk_load t entries =
  if t.count <> 0 then invalid_arg "Btree.bulk_load: tree not empty";
  let entries = Array.copy entries in
  Array.sort compare_entry entries;
  Array.iter (fun (k, _) -> check_key t k) entries;
  (match
     Array.exists
       (fun i -> compare_entry entries.(i) entries.(i + 1) = 0)
       (Array.init (max 0 (Array.length entries - 1)) (fun i -> i))
   with
  | true -> invalid_arg "Btree.bulk_load: duplicate (key, oid) entry"
  | false -> ());
  let n = Array.length entries in
  if n = 0 then ()
  else begin
    let page_budget = Pager.page_size t.pager - (1 + 2 + 4) in
    (* Chunk into leaves under both the byte and entry-count budgets. *)
    let leaves = ref [] in
    let start = ref 0 in
    while !start < n do
      let bytes = ref 0 in
      let stop = ref !start in
      while
        !stop < n
        && !stop - !start < t.max_leaf
        && !bytes + entry_size entries.(!stop) <= page_budget
      do
        bytes := !bytes + entry_size entries.(!stop);
        incr stop
      done;
      assert (!stop > !start);
      leaves := (Array.sub entries !start (!stop - !start)) :: !leaves;
      start := !stop
    done;
    let leaves = Array.of_list (List.rev !leaves) in
    let nleaves = Array.length leaves in
    (* First leaf must live in t.root if it is the only node; otherwise
       leaves get their own pages and the root becomes internal. *)
    if nleaves = 1 then begin
      write_node t t.root (Leaf { entries = leaves.(0); next = -1 });
      t.count <- n
    end
    else begin
      let leaf_pages = Array.map (fun _ -> alloc_page t) leaves in
      Array.iteri
        (fun i chunk ->
          let next = if i + 1 < nleaves then leaf_pages.(i + 1) else -1 in
          write_node t leaf_pages.(i) (Leaf { entries = chunk; next }))
        leaves;
      (* Build internal levels bottom-up. *)
      let rec build (pages : int array) (firsts : entry array) =
        if Array.length pages = 1 then pages.(0)
        else begin
          let groups = ref [] in
          let start = ref 0 in
          let m = Array.length pages in
          while !start < m do
            let bytes = ref 0 in
            let stop = ref !start in
            while
              !stop < m
              && !stop - !start <= t.max_internal
              && (!stop = !start
                 || !bytes + entry_size firsts.(!stop) + 4 <= page_budget - 4)
            do
              if !stop > !start then
                bytes := !bytes + entry_size firsts.(!stop) + 4;
              incr stop
            done;
            (* Never leave a singleton tail: steal one from this group. *)
            if !stop < m && m - !stop = 1 && !stop - !start > 1 then decr stop;
            groups := (!start, !stop) :: !groups;
            start := !stop
          done;
          let groups = List.rev !groups in
          let parent_pages =
            List.map
              (fun (a, b) ->
                let children = Array.sub pages a (b - a) in
                let seps = Array.sub firsts (a + 1) (b - a - 1) in
                let page = alloc_page t in
                write_node t page (Internal { children; seps });
                page)
              groups
          in
          let parent_firsts = List.map (fun (a, _) -> firsts.(a)) groups in
          build (Array.of_list parent_pages) (Array.of_list parent_firsts)
        end
      in
      let firsts = Array.map (fun chunk -> chunk.(0)) leaves in
      let top = build leaf_pages firsts in
      let top_node = read_node t top in
      write_node t t.root top_node;
      free_page t top;
      t.count <- n
    end
  end

(* ------------------------------------------------------------------ *)
(* Invariant checking                                                  *)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let leaf_chain = ref [] in
  (* [rightmost] nodes (the right spine) may be underfull: bulk loading
     leaves a short tail there, which is standard for B+-trees. *)
  let rec check page ~is_root ~rightmost =
    match read_node t page with
    | Leaf { entries; _ } ->
        let n = Array.length entries in
        for i = 0 to n - 2 do
          if compare_entry entries.(i) entries.(i + 1) >= 0 then
            fail "leaf %d: entries out of order at %d" page i
        done;
        if (not is_root) && (not rightmost) && underfull t (Leaf { entries; next = -1 })
        then fail "leaf %d: underfull (%d entries)" page n;
        if node_bytes (Leaf { entries; next = -1 }) > Pager.page_size t.pager then
          fail "leaf %d: overfull" page;
        leaf_chain := page :: !leaf_chain;
        (1, (if n = 0 then None else Some (entries.(0), entries.(n - 1))), n)
    | Internal { children; seps } as node ->
        if Array.length children <> Array.length seps + 1 then
          fail "internal %d: child/separator arity mismatch" page;
        if (not is_root) && (not rightmost) && underfull t node then
          fail "internal %d: underfull" page;
        if node_bytes node > Pager.page_size t.pager then fail "internal %d: overfull" page;
        let last = Array.length children - 1 in
        let results =
          Array.mapi
            (fun i c -> check c ~is_root:false ~rightmost:(rightmost && i = last))
            children
        in
        let depth0, _, _ = results.(0) in
        Array.iteri
          (fun i (d, _, _) ->
            if d <> depth0 then fail "internal %d: uneven depth at child %d" page i)
          results;
        Array.iteri
          (fun i sep ->
            let _, bounds, _ = results.(i + 1) in
            (match bounds with
            | Some (lo, _) ->
                if compare_entry sep lo <> 0 then
                  fail "internal %d: separator %d does not match subtree minimum" page i
            | None -> ());
            let _, left_bounds, _ = results.(i) in
            match left_bounds with
            | Some (_, hi) ->
                if compare_entry hi sep >= 0 then
                  fail "internal %d: left subtree exceeds separator %d" page i
            | None -> ())
          seps;
        let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 results in
        let bounds =
          let lows = Array.to_list results |> List.filter_map (fun (_, b, _) -> b) in
          match lows with
          | [] -> None
          | (lo, _) :: _ ->
              let _, hi = Listx.last_exn ~what:"Btree: empty bounds" lows in
              Some (lo, hi)
        in
        (depth0 + 1, bounds, total)
  in
  let _, _, total = check t.root ~is_root:true ~rightmost:true in
  if total <> t.count then
    fail "entry count mismatch: counted %d, cached %d" total t.count;
  (* The left-to-right leaf order discovered by the recursion must agree
     with the next-pointer chain. *)
  let in_order = List.rev !leaf_chain in
  let rec chain page acc =
    if page < 0 then List.rev acc
    else
      match read_node t page with
      | Leaf { next; _ } -> chain next (page :: acc)
      | Internal _ -> fail "leaf chain reaches internal node %d" page
  in
  match in_order with
  | [] -> ()
  | first :: _ ->
      let chained = chain first [] in
      if chained <> in_order then fail "leaf chain disagrees with tree order"
