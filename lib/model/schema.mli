(** The system catalog: types, sets, indexes and replication declarations.

    The schema is purely logical — it knows nothing about files or pages.
    The engine (lib/core) binds sets to heap files and indexes to B+-trees.

    The catalog also fixes the *hidden-field layout* of each set: a stored
    record's value array is the set's user fields followed by one hidden
    slot per replication declaration (in replication-id order) — a
    replicated copy per terminal field for in-place paths, or a single
    reference to the shared S' object for separate paths (paper §4, §5). *)

type strategy = Inplace | Separate

type rep_options = {
  collapse : bool;
      (** collapse the inverted path to one level (paper §4.3.3) *)
  small_link_threshold : int;
      (** eliminate link objects with at most this many OIDs, storing the
          member OID directly in the referenced object (paper §4.3.1);
          0 disables the optimization *)
  lazy_propagation : bool;
      (** defer propagation until a replicated copy is read (the paper's §8
          "updates are not propagated until needed"): a field update only
          walks the inverted path to *invalidate* the affected sources in
          an in-memory table, and each source repairs its hidden copies by
          a forward walk the first time they are read.  In-place paths
          only, and such paths cannot carry indexes. *)
  cluster_links : bool;
      (** cluster related link objects of an n-level path together
          (paper §4.3.2): all levels of this path's inverted chain share
          one link file, laid out so that a final object's link object sits
          next to the link objects of the intermediates it reaches —
          cutting the I/O of multi-level update propagation.  Best effort
          when prefix links are already materialised by another path.
          Requires level >= 2 and is incompatible with [collapse]. *)
}

val default_options : rep_options

type replication = {
  rep_id : int;
  rpath : Path.t;
  strategy : strategy;
  options : rep_options;
}

(** Life-cycle of a replication declaration, driven by the online
    reconfiguration jobs in [lib/maint]:

    - [Building]: declared, catch-up propagation installed, backfill still
      walking the source set.  Readers ignore it (functional joins); writers
      maintain whatever derived state exists so far.
    - [Active]: fully built — the only state planners use.
    - [Dropping]: reads have flipped back to functional joins; the teardown
      job is removing derived state.  Writers still {e remove} stale
      memberships but no longer add or refresh anything for it.
    - [Dropped]: terminal.  The declaration is never physically deleted —
      its hidden slot stays in the record layout as a dead (null) slot and
      its link IDs stay allocated — so later declarations keep their layout
      and IDs. *)
type rep_state = Building | Active | Dropping | Dropped

type index_def = { iname : string; iset : string; ifield : string; clustered : bool }

type resolved_path = {
  type_chain : string list;
      (** type name at every hop; length = level + 1, head = source set's
          element type *)
  terminal_fields : (string * Ty.scalar) list;
      (** replicated scalar fields of the final type (singleton unless the
          terminal is [all]) *)
}

(** Hidden slots appended to a set's records, in layout order. *)
type hidden_slot =
  | Hidden_copy of { rep_id : int; source_field : string; scalar : Ty.scalar }
  | Hidden_sref of { rep_id : int }

type t

val create : unit -> t

(** {1 Types} *)

val define_type : t -> Ty.t -> unit
(** Raises [Invalid_argument] on redefinition. *)

val find_type : t -> string -> Ty.t
(** Raises [Not_found]. *)

val type_tag : t -> string -> int
val type_of_tag : t -> int -> Ty.t
val types : t -> Ty.t list

(** {1 Sets} *)

val create_set : t -> name:string -> elem_type:string -> unit
(** Validates that the element type and the targets of all its reference
    attributes are defined.  Raises [Invalid_argument] / [Not_found]. *)

val set_exists : t -> string -> bool

val set_type : t -> string -> Ty.t
(** Element type of a set.  Raises [Not_found]. *)

val sets : t -> (string * string) list
(** [(set name, element type name)], in creation order. *)

(** {1 Indexes} *)

val add_index : t -> index_def -> unit
(** Validates the set and that the field is a user scalar field *or* an
    in-place-replicated hidden field named by a path string (paper §3.3.4:
    indexes on replicated data).  At most one clustered index per set. *)

val indexes : t -> index_def list
val indexes_on : t -> string -> index_def list

(** {1 Paths and replication} *)

val resolve_path : t -> Path.t -> resolved_path
(** Validates every step against the catalog.  Raises [Invalid_argument]
    with a description of the first bad hop. *)

val add_replication :
  t ->
  ?options:rep_options ->
  ?state:rep_state ->
  strategy:strategy ->
  Path.t ->
  replication
(** Registers the path (validating it) and assigns a fresh [rep_id].
    Duplicate paths are rejected ([Dropped] declarations do not count — a
    re-replicated path gets a fresh declaration).  [state] defaults to
    [Active] (the pre-reconfiguration bulk-build behaviour). *)

val replications : t -> replication list
(** Every non-[Dropped] declaration, in [rep_id] order. *)

val all_replications : t -> replication list
(** Every declaration ever made, [Dropped] included — the sequence that
    fixes hidden-slot layout and link-ID allocation. *)

val rep_state : t -> int -> rep_state
val set_rep_state : t -> int -> rep_state -> unit

val find_replication : t -> Path.t -> replication option
(** The latest non-[Dropped] declaration of this path, if any. *)

val replications_from : t -> string -> replication list
(** Non-[Dropped] declarations whose source set is the given set. *)

(** {1 Hidden layout} *)

val hidden_slots : t -> string -> hidden_slot list
(** Hidden slots of a set, in layout order.  Includes the dead slots of
    [Dropped] declarations, so layout never shifts under reconfiguration. *)

val user_arity : t -> string -> int
val record_width : t -> string -> int

val hidden_index : t -> string -> rep_id:int -> field:string option -> int
(** Absolute value-array index of a hidden slot: the copy of [field] for an
    in-place path, or the S'-reference ([field = None]) for a separate
    path.  Raises [Not_found]. *)
