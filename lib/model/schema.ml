module Listx = Fieldrep_util.Listx
type strategy = Inplace | Separate

type rep_options = {
  collapse : bool;
  small_link_threshold : int;
  lazy_propagation : bool;
  cluster_links : bool;
}

let default_options =
  { collapse = false; small_link_threshold = 1; lazy_propagation = false; cluster_links = false }

type replication = {
  rep_id : int;
  rpath : Path.t;
  strategy : strategy;
  options : rep_options;
}

type rep_state = Building | Active | Dropping | Dropped

type index_def = { iname : string; iset : string; ifield : string; clustered : bool }

type resolved_path = {
  type_chain : string list;
  terminal_fields : (string * Ty.scalar) list;
}

type hidden_slot =
  | Hidden_copy of { rep_id : int; source_field : string; scalar : Ty.scalar }
  | Hidden_sref of { rep_id : int }

type t = {
  type_table : (string, Ty.t) Hashtbl.t;
  tag_of_type : (string, int) Hashtbl.t;
  type_of_tag : (int, string) Hashtbl.t;
  set_table : (string, string) Hashtbl.t;  (* set -> elem type *)
  mutable set_order : string list;  (* reverse creation order *)
  mutable index_defs : index_def list;  (* reverse creation order *)
  mutable reps : replication list;  (* reverse creation order *)
  rep_states : (int, rep_state) Hashtbl.t;  (* rep_id -> life-cycle state *)
  mutable next_tag : int;
  mutable next_rep : int;
}

let create () =
  {
    type_table = Hashtbl.create 16;
    tag_of_type = Hashtbl.create 16;
    type_of_tag = Hashtbl.create 16;
    set_table = Hashtbl.create 16;
    set_order = [];
    index_defs = [];
    reps = [];
    rep_states = Hashtbl.create 8;
    next_tag = 1;
    next_rep = 1;
  }

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let define_type t (ty : Ty.t) =
  if Hashtbl.mem t.type_table ty.Ty.tname then
    invalid_arg (Printf.sprintf "Schema: type %s already defined" ty.Ty.tname);
  Hashtbl.replace t.type_table ty.Ty.tname ty;
  Hashtbl.replace t.tag_of_type ty.Ty.tname t.next_tag;
  Hashtbl.replace t.type_of_tag t.next_tag ty.Ty.tname;
  t.next_tag <- t.next_tag + 1

let find_type t name =
  match Hashtbl.find_opt t.type_table name with
  | Some ty -> ty
  | None -> raise Not_found

let type_tag t name =
  match Hashtbl.find_opt t.tag_of_type name with
  | Some tag -> tag
  | None -> raise Not_found

let type_of_tag t tag =
  match Hashtbl.find_opt t.type_of_tag tag with
  | Some name -> find_type t name
  | None -> raise Not_found

let types t =
  Hashtbl.fold (fun _ ty acc -> ty :: acc) t.type_table []
  |> List.sort (fun a b -> String.compare a.Ty.tname b.Ty.tname)

(* ------------------------------------------------------------------ *)
(* Sets                                                                *)

let create_set t ~name ~elem_type =
  if Hashtbl.mem t.set_table name then
    invalid_arg (Printf.sprintf "Schema: set %s already exists" name);
  let ty = find_type t elem_type in
  List.iter
    (fun (fname, target) ->
      if not (Hashtbl.mem t.type_table target) then
        invalid_arg
          (Printf.sprintf "Schema: field %s.%s references undefined type %s"
             elem_type fname target))
    (Ty.ref_fields ty);
  Hashtbl.replace t.set_table name elem_type;
  t.set_order <- name :: t.set_order

let set_exists t name = Hashtbl.mem t.set_table name

let set_type t name =
  match Hashtbl.find_opt t.set_table name with
  | Some elem -> find_type t elem
  | None -> raise Not_found

let sets t =
  List.rev_map
    (fun name ->
      match Hashtbl.find_opt t.set_table name with
      | Some elem -> (name, elem)
      | None -> invalid_arg ("Schema.sets: unregistered set " ^ name))
    t.set_order

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)

let resolve_path t (path : Path.t) =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  let start_type =
    match Hashtbl.find_opt t.set_table path.Path.source_set with
    | Some elem -> elem
    | None -> bad "path %s: unknown set %s" (Path.to_string path) path.Path.source_set
  in
  let rec walk ty_name steps acc =
    match steps with
    | [] -> List.rev (ty_name :: acc)
    | step :: rest -> (
        let ty = find_type t ty_name in
        match Ty.field_opt ty step with
        | Some { Ty.ftype = Ty.Ref target; _ } -> walk target rest (ty_name :: acc)
        | Some { Ty.ftype = Ty.Scalar _; _ } ->
            bad "path %s: %s.%s is a scalar, not a reference attribute"
              (Path.to_string path) ty_name step
        | None -> bad "path %s: type %s has no field %s" (Path.to_string path) ty_name step)
  in
  let type_chain = walk start_type path.Path.steps [] in
  let final_ty =
    find_type t (Listx.last_exn ~what:"Schema.resolve_path: empty type chain" type_chain)
  in
  let terminal_fields =
    match path.Path.terminal with
    | Path.All ->
        let fields = Ty.scalar_fields final_ty in
        if fields = [] then
          bad "path %s: final type %s has no scalar fields to replicate"
            (Path.to_string path) final_ty.Ty.tname;
        fields
    | Path.Field f -> (
        match Ty.field_opt final_ty f with
        | Some { Ty.ftype = Ty.Scalar s; _ } -> [ (f, s) ]
        | Some { Ty.ftype = Ty.Ref target; _ } ->
            (* Replicating a reference attribute collapses the path by one
               level (paper §3.3.3): the hidden copy holds the OID. *)
            ignore target;
            bad
              "path %s: terminal %s is a reference attribute; write the path \
               one level deeper or use .all"
              (Path.to_string path) f
        | None ->
            bad "path %s: final type %s has no field %s" (Path.to_string path)
              final_ty.Ty.tname f)
  in
  { type_chain; terminal_fields }

(* ------------------------------------------------------------------ *)
(* Replication                                                         *)

let rep_state t rep_id =
  Option.value ~default:Active (Hashtbl.find_opt t.rep_states rep_id)

let set_rep_state t rep_id state = Hashtbl.replace t.rep_states rep_id state

(* Dropped declarations are invisible to every logical consumer (planning,
   propagation, recomputation, duplicate checks) but stay in [t.reps]:
   hidden-slot layout and link-ID allocation replay over {!all_replications},
   so dropping a path never shifts the physical layout of records declared
   after it. *)
let all_replications t = List.rev t.reps

let replications t =
  List.filter (fun r -> rep_state t r.rep_id <> Dropped) (all_replications t)

let find_replication t path =
  List.find_opt
    (fun r -> Path.equal r.rpath path && rep_state t r.rep_id <> Dropped)
    t.reps

let add_replication t ?(options = default_options) ?(state = Active) ~strategy
    path =
  (match find_replication t path with
  | Some _ ->
      invalid_arg (Printf.sprintf "Schema: %s already replicated" (Path.to_string path))
  | None -> ());
  if options.small_link_threshold < 0 then
    invalid_arg "Schema: small_link_threshold must be >= 0";
  ignore (resolve_path t path);
  if strategy = Separate && options.collapse then
    invalid_arg "Schema: collapse applies to in-place replication only";
  if options.cluster_links && options.collapse then
    invalid_arg "Schema: cluster_links is meaningless for collapsed paths";
  if options.cluster_links && Path.level path < 2 then
    invalid_arg "Schema: cluster_links applies to paths of two or more levels";
  if strategy = Separate && options.lazy_propagation then
    invalid_arg
      "Schema: lazy propagation applies to in-place replication only \
       (separate replication already writes a single shared object)";
  let rep = { rep_id = t.next_rep; rpath = path; strategy; options } in
  t.next_rep <- t.next_rep + 1;
  t.reps <- rep :: t.reps;
  Hashtbl.replace t.rep_states rep.rep_id state;
  rep

let replications_from t set_name =
  List.filter (fun r -> r.rpath.Path.source_set = set_name) (replications t)

(* ------------------------------------------------------------------ *)
(* Hidden layout                                                       *)

(* Layout iterates {e all} declarations, Dropped included: a dropped path
   leaves a permanently dead (null) slot behind so the value-array indexes
   of every later declaration never move. *)
let hidden_slots t set_name =
  List.concat_map
    (fun r ->
      match r.strategy with
      | Separate -> [ Hidden_sref { rep_id = r.rep_id } ]
      | Inplace ->
          let resolved = resolve_path t r.rpath in
          List.map
            (fun (source_field, scalar) ->
              Hidden_copy { rep_id = r.rep_id; source_field; scalar })
            resolved.terminal_fields)
    (List.filter
       (fun r -> r.rpath.Path.source_set = set_name)
       (all_replications t))

let user_arity t set_name = Ty.arity (set_type t set_name)
let record_width t set_name = user_arity t set_name + List.length (hidden_slots t set_name)

let hidden_index t set_name ~rep_id ~field =
  let base = user_arity t set_name in
  let slots = hidden_slots t set_name in
  let rec go i = function
    | [] -> raise Not_found
    | Hidden_copy { rep_id = id; source_field; _ } :: rest -> (
        match field with
        | Some f when id = rep_id && f = source_field -> base + i
        | Some _ | None -> go (i + 1) rest)
    | Hidden_sref { rep_id = id } :: rest ->
        if id = rep_id && field = None then base + i else go (i + 1) rest
  in
  go 0 slots

(* ------------------------------------------------------------------ *)
(* Indexes                                                             *)

let indexes t = List.rev t.index_defs
let indexes_on t set_name = List.filter (fun d -> d.iset = set_name) (indexes t)

let add_index t def =
  if List.exists (fun d -> d.iname = def.iname) t.index_defs then
    invalid_arg (Printf.sprintf "Schema: index %s already exists" def.iname);
  let ty = set_type t def.iset in
  let is_user_scalar =
    match Ty.field_opt ty def.ifield with
    | Some { Ty.ftype = Ty.Scalar _; _ } -> true
    | Some { Ty.ftype = Ty.Ref _; _ } ->
        invalid_arg
          (Printf.sprintf "Schema: cannot index reference attribute %s.%s" def.iset
             def.ifield)
    | None -> false
  in
  let is_replicated_path =
    (not is_user_scalar)
    &&
    (* An index on a path string like "Empl.dept.org.name" is legal when the
       path is replicated in-place into this set (paper §3.3.4). *)
    match
      (try Some (Path.parse def.ifield) with Invalid_argument _ -> None)
    with
    | Some p -> (
        p.Path.source_set = def.iset
        &&
        match find_replication t p with
        | Some r ->
            if rep_state t r.rep_id <> Active then
              invalid_arg
                (Printf.sprintf
                   "Schema: cannot index path %s while its replication is \
                    being reconfigured"
                   def.ifield);
            if r.options.lazy_propagation then
              invalid_arg
                (Printf.sprintf
                   "Schema: cannot index lazily-propagated path %s (stale keys \
                    would make index lookups incorrect)"
                   def.ifield);
            r.strategy = Inplace
        | None -> false)
    | None -> false
  in
  if not (is_user_scalar || is_replicated_path) then
    invalid_arg
      (Printf.sprintf
         "Schema: %s.%s is neither a scalar field nor an in-place replicated path"
         def.iset def.ifield);
  if def.clustered && List.exists (fun d -> d.iset = def.iset && d.clustered) t.index_defs
  then invalid_arg (Printf.sprintf "Schema: set %s already has a clustered index" def.iset);
  t.index_defs <- def :: t.index_defs
