(** The object engine: the public face of the field-replication DBMS.

    A [Db.t] combines one pager (simulated disk + buffer pool), the catalog,
    one heap file per set, B+-tree indexes, and the replication engine.
    Every data mutation goes through this module so that indexes and
    replicated data stay consistent (paper §3–§5).

    {1 Typical session}

    {[
      let db = Db.create () in
      Db.define_type db (Ty.make ~name:"DEPT" [ ... ]);
      Db.define_type db (Ty.make ~name:"EMP" [ ... ]);
      Db.create_set db ~name:"Dept" ~elem_type:"DEPT";
      Db.create_set db ~name:"Emp1" ~elem_type:"EMP";
      ...insert objects...
      Db.replicate db ~strategy:Schema.Inplace (Path.parse "Emp1.dept.name");
      Db.deref db emp "dept.name"   (* no functional join *)
    ]} *)

module Oid = Fieldrep_storage.Oid
module Stats = Fieldrep_storage.Stats
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Key = Fieldrep_btree.Key
module Txn = Fieldrep_txn.Txn
module Lock = Fieldrep_txn.Lock

type t

type txn = Txn.t
(** A transaction handle — see {!begin_txn}. *)

type backend = Fieldrep_storage.Pager.backend = Mem | File of string option
    (** Page-store backend (re-exported from the storage layer so callers
        never name [Disk]): [Mem] is the in-memory array store, [File dir]
        keeps every heap file as a real on-disk file under [dir] (a fresh
        auto-removed temp directory when [None]).  Defaults to the
        [FIELDREP_BACKEND] environment variable ([mem] when unset). *)

val create :
  ?page_size:int ->
  ?frames:int ->
  ?prefetch:int ->
  ?durable:bool ->
  ?wal_path:string ->
  ?backend:backend ->
  ?wal_fsync:bool ->
  ?wal_flush_limit:int ->
  unit ->
  t
(** [~durable:true] attaches a write-ahead log: every DDL/DML mutation
    appends a logical redo record — before touching any page — so the
    database can be rebuilt after a crash from the last checkpoint plus the
    log tail ({!recover}).  The log lives at [wal_path] when given, else at
    a fresh temp file; passing [wal_path] alone implies durability.
    [prefetch] sets the buffer pool's sequential read-ahead depth in pages
    (default 0 = off, so cost-model validation sees exact per-page
    counts).  [backend] selects the page store (see {!type-backend}).
    [wal_fsync] and [wal_flush_limit] are passed through to
    {!Fieldrep_wal.Wal.open_}: [wal_fsync:true] makes every WAL group
    commit an honest [fsync(2)] barrier, and [wal_flush_limit:1] defeats
    group commit (one fsync per append — the benchmark baseline). *)

val close : t -> unit
(** Close the WAL (if any) and the pager underneath: flush the buffer
    pool, release file descriptors and remove any auto-created backing
    directory.  The handle must not be used afterwards.  Optional for
    [Mem] databases (the GC reclaims them), but file-backed databases
    should be closed to bound open descriptors and temp-dir growth. *)

val batching : t -> bool
(** Whether replication propagation runs page-batched in physical order
    (the default) — see {!Fieldrep_replication.Engine.env}. *)

val set_batching : t -> bool -> unit
(** Toggle page-batched propagation; [false] restores the per-object
    reference path, used as the comparison baseline in tests and
    benchmarks. *)

val schema : t -> Schema.t
val pager : t -> Fieldrep_storage.Pager.t
val stats : t -> Stats.t
val engine : t -> Fieldrep_replication.Engine.env

val wal : t -> Fieldrep_wal.Wal.t option
(** The attached write-ahead log, when the database is durable. *)

(** {1 Transactions}

    Multi-operation ACID transactions under strict two-phase locking.
    Pass the handle as [?txn] to any DML or read entry point; the
    operation then acquires its whole hierarchical lock set (intention
    locks on sets, shared/exclusive locks on objects — including every
    object that replication propagation will touch, enumerated through
    the inverted paths) {e before} executing, so a refused operation has
    no partial effects.  Locks are held until {!commit} or {!abort}.

    Contention surfaces as exceptions from the lock manager, raised
    before the operation has done anything:

    - {!Fieldrep_txn.Lock.Would_block} — another transaction holds a
      conflicting lock; retry the operation later or abort.
    - {!Fieldrep_txn.Lock.Deadlock} — granting would close a cycle in
      the wait-for graph; the requester is the victim and should abort.

    Operations issued without [?txn] are autocommitted singletons,
    byte-identical to the pre-transactional behaviour; mixing them with
    concurrent transactions is unprotected by locks. *)

val begin_txn : t -> txn
(** Start a transaction.  Its [Txn_begin] log record is written lazily,
    before the transaction's first logged operation, so read-only
    transactions leave no trace in the log. *)

val commit : t -> txn -> unit
(** Release the transaction's delete slots for reuse, append the
    [Txn_commit] marker, and release all its locks. *)

val abort : t -> txn -> unit
(** Roll the transaction back: every touched object is restored to its
    before-image (captured at first touch) through the normal engine
    code, so indexes, link objects, hidden copies and S' objects follow.
    The compensations are logged as plain records plus a [Txn_abort]
    marker, making the rollback itself replayable.  Lazy-propagation
    invalidations the transaction queued are repaired so no deferred
    work leaks to other transactions. *)

val active_txn_count : t -> int

val lock_manager : t -> Lock.t
(** The hierarchical lock manager (exposed for tests and benchmarks). *)

(** {1 DDL} *)

val define_type : t -> Ty.t -> unit
val create_set : t -> ?reserve:int -> name:string -> elem_type:string -> unit -> unit
(** [reserve] bytes are kept free per page during inserts so later
    replication declarations can add hidden fields without relocating
    objects (see {!Fieldrep_storage.Heap_file.create}). *)

val replicate :
  t -> ?options:Schema.rep_options -> strategy:Schema.strategy -> Path.t -> unit
(** Declare a replication path (paper §3.1).  Raises [Invalid_argument]
    if the exact path is already replicated (and not dropped).

    With no transactions active, the derived state is bulk-built before
    the call returns.  With transactions active, the declaration is
    installed {e online}: it enters the [Building] state — concurrent
    writers maintain it from that instant — and existing objects are
    backfilled by a background-maintenance job (pump {!maint_step} or
    {!maint_drain}).  Reads use the hidden copies once the declaration
    turns [Active]. *)

val unreplicate : t -> Path.t -> unit
(** Drop a replication declaration online.  The declaration enters the
    [Dropping] state — reads revert to the functional join immediately —
    and its derived state (hidden copies, link objects, S' records) is
    torn down incrementally by a background-maintenance job.  With no
    transactions active the job is drained before the call returns.
    Raises [Invalid_argument] if the path is not replicated, is still
    building (or already dropping), or an index reads it. *)

val replication_state : t -> Path.t -> Schema.rep_state option
(** Lifecycle state of the path's latest declaration ([None] if the path
    is not replicated, or every declaration of it has been dropped). *)

(** {2 Background maintenance}

    Online reconfigurations (and scrub sweeps) run as {e maintenance
    jobs}: resumable cursors over heap files that advance in bounded work
    quanta, locking through the foreground lock manager and yielding to
    conflicting transactions.  Single-threaded and cooperative — the
    application decides when maintenance runs by pumping these calls
    between its own operations.  The quantum is the throttle: pages
    walked (and locks held) per pump. *)

val maint_step : ?quantum:int -> t -> [ `Progress | `Yield | `Idle ]
(** Run one quantum (default 4 pages) of the head maintenance job.
    [`Yield] means a foreground lock conflicted: nothing was done, the
    job moved to the back of the queue and will retry. *)

val maint_drain : ?quantum:int -> t -> unit
(** Pump until the queue is empty.  Raises [Invalid_argument] if every
    queued job is blocked on locks held by active transactions. *)

val maint_pending : t -> int
(** Queued (unfinished) maintenance jobs. *)

val maint_backlog : t -> int
(** Heap pages the queued jobs have still to walk. *)

val maint_jobs : t -> (string * int) list
(** [(label, job id)] of every queued job, head first. *)

val build_index : t -> name:string -> set:string -> field:string -> clustered:bool -> unit
(** Build a B+-tree over a scalar field, or over a replicated path given as
    a path string such as ["Emp1.dept.org.name"] (paper §3.3.4).  Bulk-loads
    from existing data and is maintained incrementally afterwards. *)

(** {1 DML} *)

val insert : ?txn:txn -> t -> set:string -> Value.t list -> Oid.t
(** Values for the user fields, in declaration order.  Typechecked; [VRef]
    values are verified to point at live objects of the right type. *)

val delete : ?txn:txn -> t -> set:string -> Oid.t -> unit
(** Raises [Invalid_argument] if the object is still referenced along a
    replication path.  Inside a transaction the slot is tombstoned, not
    freed: the OID cannot be recycled until the transaction resolves, so
    an abort can revive the object in place. *)

val update_field : ?txn:txn -> t -> set:string -> Oid.t -> field:string -> Value.t -> unit
(** Update one user field.  Scalar updates propagate to replicated copies;
    reference updates restructure the inverted paths. *)

(** {1 Reads} *)

val get : ?txn:txn -> t -> set:string -> Oid.t -> Record.t
(** The raw stored record (user + hidden values). *)

val user_values : t -> set:string -> Record.t -> Value.t list
(** The user-visible fields only. *)

val field_value : t -> set:string -> Record.t -> string -> Value.t
(** A user field by name. *)

val deref : ?txn:txn -> t -> set:string -> Oid.t -> string -> Value.t
(** [deref db ~set oid "dept.org.name"] evaluates a dotted path expression
    rooted at the object.  Uses a replicated hidden field when one covers
    the whole path — eliminating the functional joins — and falls back to
    actual dereferencing otherwise.  Returns [VNull] if a reference on the
    way is null. *)

val deref_record :
  ?txn:txn -> ?oid:Oid.t -> t -> set:string -> Record.t -> string -> Value.t
(** Like {!deref} but starting from an already-fetched record (saves the
    repeated object read when several paths are projected).  Pass [oid]
    when known: lazily-propagated paths use it to consult the invalidation
    table and repair stale hidden copies on read; without it they fall back
    to evaluating the references whenever anything is pending. *)

val deref_would_join : t -> set:string -> string -> int
(** Number of functional joins [deref] will actually perform for this path
    expression (0 when fully covered by in-place replication; 1 when covered
    by separate replication or for a plain 1-level path; etc.).  Exposes the
    planner's choice for tests and benchmarks. *)

val scan : ?txn:txn -> t -> set:string -> (Oid.t -> Record.t -> unit) -> unit
(** Physical-order scan. *)

val set_size : t -> string -> int
val set_pages : t -> string -> int

(** {1 Index access} *)

val index_lookup : ?txn:txn -> t -> index:string -> Key.t -> Oid.t list

val index_range :
  ?txn:txn ->
  t -> index:string -> lo:Key.t -> hi:Key.t -> init:'a -> f:('a -> Key.t -> Oid.t -> 'a) -> 'a

val find_index : t -> set:string -> field:string -> Schema.index_def option
(** An index usable for a predicate on [set.field], if any. *)

type index_stats = { entries : int; height : int; leaves : int; pages : int }

val index_stats : t -> index:string -> index_stats

(** {1 Inverse references} *)

type inverse_method = Via_links | Via_scan

val referencers :
  t -> source_set:string -> attr:string -> Oid.t -> Oid.t list * inverse_method
(** [referencers db ~source_set:"Emp1" ~attr:"dept" d] is the list of
    Emp1 objects whose [dept] currently references [d] — a bidirectional
    reference attribute (paper §8).  Answered from the inverted-path link
    objects when a replication declaration maintains them ([Via_links],
    no scan), by a set scan otherwise. *)

val check_integrity : t -> unit
(** Replication invariants plus index invariants; raises [Failure]. *)

val scrub : t -> Fieldrep_scrub.Scrub.report
(** Online scrub and self-repair.  Verifies the checksum of every data,
    link and S' page, then compares all derived replication state (hidden
    copies, link-object memberships, S' records) against a recomputation
    from the source objects and repairs divergences in place.  Corrupt link
    and S' pages are rebuilt from scratch — they hold pure redundancy;
    corrupt {e data} pages are salvaged when possible but their source
    fields are only ever {e reported} as suspect, never silently rewritten,
    because no second authoritative copy exists.  On a durable database
    every repair is WAL-logged (as [Scrub_repair]) before it is applied, so
    {!recover} replays repairs after a crash.

    Runs alongside active transactions: the page sweep is interleaved with
    any queued maintenance jobs, and each repair takes short X locks under
    a job-scoped owner — a repair that conflicts with a transaction's
    locks is deferred (reported in [unrepairable]) for a later scrub.
    Replication declarations mid-backfill or mid-teardown are skipped;
    their maintenance job owns that state. *)

val space_report : t -> (string * int) list
(** [(category, pages)] for data sets, indexes, link files and S' files. *)

val io_breakdown : t -> (string * int * int) list
(** Per-structure (label, page reads, page writes) attribution of the I/O
    since the last stats reset: which sets, indexes, link files and S'
    files a query actually touched. *)

val dangling_references : t -> (string * Oid.t * string) list
(** Referential-integrity audit: every (set, object, field) whose reference
    attribute points at a dead object or an object of the wrong type.
    Replication paths are protected by the engine; this covers the plain
    references the paper's model leaves to the application. *)

(** {1 Database images} *)

val save : t -> string -> unit
(** Write a self-contained image of the database — catalog, every data,
    index, link and S' page — to a file.  Pending lazy propagations are
    flushed first so the image is fully propagated. *)

val load : ?frames:int -> ?backend:backend -> string -> t
(** Reopen an image written by {!save}.  Raises [Invalid_argument] on a
    malformed or foreign file.  The reopened database is not durable;
    use {!recover} to reattach the log.  [backend] selects the page store
    the image is restored into (images are backend-agnostic: a database
    saved from a [Mem] store can be reopened on [File] and vice versa). *)

(** {1 Checkpoints and crash recovery}

    The durability protocol is redo-from-checkpoint: a checkpoint is an
    ordinary {!save} image stamped with the log's LSN, and {!recover}
    discards the crashed in-memory disk entirely — it reopens the
    checkpoint and redoes the log tail through the normal DML code, which
    re-runs index maintenance and replication propagation (re-queuing lazy
    invalidations) exactly as the original run did.  Determinism of
    physical allocation makes the replayed state converge on the uncrashed
    one. *)

val checkpoint : t -> string -> unit
(** {!save} plus an active-transaction guard: flushes pending lazy
    propagations and the buffer pool, then writes the LSN-stamped image.
    Records at or below the stamp are never redone.  Raises
    [Invalid_argument] while transactions are active — in-flight undo
    state lives only in memory, so such an image could not be rolled
    back after a restart. *)

val recover : ?frames:int -> ?wal_path:string -> ?backend:backend -> string -> t
(** [recover path] reopens the checkpoint image at [path] and replays the
    tail of its write-ahead log ([wal_path] overrides the log location
    recorded in the image — use it when the log was moved, or to attach a
    fresh log to a copied image).  The recovered database is durable and
    keeps appending to the same log.  Ends by re-verifying every
    replication invariant; raises [Failure] if the redo did not converge.

    Transactions that were live at the crash (a logged footprint but no
    commit/abort marker) are rolled back from their logged before-images
    after the redo pass, and a [Txn_abort] marker is appended for each:
    the recovered state contains exactly the committed transactions. *)

(** {1 Streaming replication (replica side)}

    A replica is a database reopened from a master's checkpoint image that
    then applies the master's log records as they arrive over the wire
    (see {!Fieldrep_repl.Repl}), instead of generating its own.  It serves
    reads — {!get}, {!deref}, {!scan}, index access — while every mutating
    entry point raises [Invalid_argument]. *)

val open_replica : ?frames:int -> ?backend:backend -> string -> t
(** Reopen a {!save}/{!checkpoint} image as a read-only replica.  Not
    durable: the master's log is the log; the replica redoes shipped
    records straight into its pages. *)

val is_replica : t -> bool

val replica_apply : t -> int64 -> Fieldrep_wal.Wal.record -> unit
(** Apply one shipped log record through the streaming redo path
    ({!Fieldrep_wal.Recovery.feed}).  Records must arrive in LSN order
    with no gaps — ordering, gap detection and re-request live in the
    transport layer above.  Raises [Fieldrep_wal.Recovery.Diverged] when
    the stream cannot be reconciled (the replica must re-bootstrap), and
    [Invalid_argument] on a database not opened with {!open_replica}. *)

val epoch : t -> int
(** The replication epoch this database last saw: 0 at creation, bumped
    by {!promote_replica}, adopted from replayed/applied
    [Wal.Epoch_change] records.  The fencing token of
    {!Fieldrep_repl.Repl} — frames and acks from a lower epoch are
    rejected there. *)

val promote_replica : t -> wal_path:string -> last_lsn:int64 -> int
(** Failover: turn this replica into a primary.  Attaches a fresh log at
    [wal_path] with the LSN counter raised to [last_lsn] (the fork point
    — the last record this replica applied), bumps the epoch, and appends
    + syncs the [Wal.Epoch_change] record that stamps the new epoch into
    the log stream.  Returns the new epoch.  Raises [Invalid_argument] if
    the database is not a replica, or if its apply stream is parked on a
    failed record whose Abort marker never arrived (such a prefix is not
    a consistent fork point). *)

val recover_replica :
  ?frames:int -> ?wal_path:string -> ?backend:backend -> string -> t
(** {!recover}, then demote the result to a read-only replica (the log
    handle is dropped: records now arrive over the wire).  The rejoin
    path for a deposed master after its unshipped log tail has been
    truncated to the new master's fork point
    ({!Fieldrep_wal.Wal.truncate_file}). *)
