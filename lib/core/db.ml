module Oid = Fieldrep_storage.Oid
module Listx = Fieldrep_util.Listx
module Stats = Fieldrep_storage.Stats
module Pager = Fieldrep_storage.Pager
module Heap_file = Fieldrep_storage.Heap_file
module Disk = Fieldrep_storage.Disk
module Btree = Fieldrep_btree.Btree
module Key = Fieldrep_btree.Key
module Ty = Fieldrep_model.Ty
module Value = Fieldrep_model.Value
module Record = Fieldrep_model.Record
module Schema = Fieldrep_model.Schema
module Path = Fieldrep_model.Path
module Engine = Fieldrep_replication.Engine
module Store = Fieldrep_replication.Store
module Invariants = Fieldrep_replication.Invariants
module Scrub = Fieldrep_scrub.Scrub
module Maint = Fieldrep_maint.Maint
module Wal = Fieldrep_wal.Wal
module Recovery = Fieldrep_wal.Recovery
module Lockdep = Fieldrep_util.Lockdep
module Lock = Fieldrep_txn.Lock
module Txn = Fieldrep_txn.Txn

type txn = Txn.t

type index_rt = {
  def : Schema.index_def;
  tree : Btree.t;
  value_index : int;  (* absolute index into the record's value array *)
}

type t = {
  pager : Pager.t;
  schema : Schema.t;
  sets : (string, Heap_file.t) Hashtbl.t;
  data_files : (int, string * Heap_file.t) Hashtbl.t;  (* file id -> set, file *)
  indexes : (string, index_rt) Hashtbl.t;
  store : Store.t;
  engine : Engine.env;
  mutable wal : Wal.t option;
  mutable replaying : bool;  (* suppress WAL appends while redoing the log *)
  locks : Lock.t;
  mutable next_txn : int;
  active : (int, Txn.t) Hashtbl.t;
  mutable compensating : bool;
      (* rollback in progress: operations skip locking, undo capture and
         reference-liveness validation, and log as plain (untagged) records
         so the rollback itself is replayable *)
  mutable charging : bool;  (* re-entrancy guard for per-txn I/O accounting *)
  mutable replica_mode : bool;
      (* opened as a streaming-replication replica: reads only; mutations
         arrive exclusively through [replica_apply] *)
  mutable repl_stream : Recovery.stream option;
      (* incremental redo state for [replica_apply], created lazily *)
  mutable epoch : int;
      (* replication epoch: bumped by promotion, adopted from replayed
         [Epoch_change] records — the fencing token of lib/repl *)
  maint : Maint.t;
      (* background-maintenance queue: online backfills, teardowns and
         scrub sweeps, pumped in quanta between foreground operations *)
}

let schema t = t.schema
let pager t = t.pager
let stats t = Pager.stats t.pager
let engine t = t.engine
let wal t = t.wal
let batching t = t.engine.Engine.batching
let set_batching t v = t.engine.Engine.batching <- v
let lock_manager t = t.locks
let active_txn_count t = Hashtbl.length t.active

(* Write-ahead rule: the record is durable before the operation touches any
   page.  If the operation then fails validation (no crash, an ordinary
   exception), the record is rescinded with an abort marker so recovery
   will not redo it.  A [Disk.Crash] rescinds nothing: the record survives
   and replay *completes* the half-applied operation. *)
(* Begin records are logged lazily, just before the transaction's first
   logged record, so read-only transactions leave no trace in the log. *)
let ensure_begin t tx =
  if not (Txn.begun tx) then begin
    Txn.mark_begun tx;
    match t.wal with
    | Some w when not t.replaying -> ignore (Wal.append w (Wal.Txn_begin (Txn.id tx)))
    | _ -> ()
  end

let log_mutation ?txn t record f =
  match t.wal with
  | None -> f ()
  | Some _ when t.replaying -> f ()
  | Some w -> (
      let record, buffered =
        match txn with
        | Some tx when not t.compensating ->
            ensure_begin t tx;
            (Wal.Txn_op { txn = Txn.id tx; op = record }, true)
        | _ -> (record, t.compensating)
      in
      let lsn = Wal.append w record in
      (* Group commit: transactional records (and abort compensations) stay
         buffered until their commit/abort marker syncs; an autocommit
         record is its own commit point and must be durable before the
         operation touches any page. *)
      if not buffered then Wal.sync w;
      try f ()
      with
      | Disk.Crash _ as e -> raise e
      | e ->
          Wal.append_abort w ~aborted:lsn;
          Wal.sync w;
          raise e)

let set_file t name =
  match Hashtbl.find_opt t.sets name with
  | Some hf -> hf
  | None -> invalid_arg (Printf.sprintf "Db: unknown set %s" name)

let file_of_oid t (oid : Oid.t) =
  match Hashtbl.find_opt t.data_files oid.Oid.file with
  | Some (_, hf) -> hf
  | None -> invalid_arg (Printf.sprintf "Db: OID %s is not a data object" (Oid.to_string oid))

let set_of_oid t (oid : Oid.t) =
  match Hashtbl.find_opt t.data_files oid.Oid.file with
  | Some (set, _) -> set
  | None -> invalid_arg (Printf.sprintf "Db: OID %s is not a data object" (Oid.to_string oid))

(* ------------------------------------------------------------------ *)
(* Index plumbing                                                      *)

let key_of_value = function
  | Value.VInt v -> Some (Key.Int v)
  | Value.VString s -> Some (Key.String s)
  | Value.VRef _ | Value.VNull -> None

let value_at (record : Record.t) idx =
  if idx < Array.length record.Record.values then record.Record.values.(idx)
  else Value.VNull

let indexes_of_set t set =
  Hashtbl.fold
    (fun _ rt acc -> if rt.def.Schema.iset = set then rt :: acc else acc)
    t.indexes []

let index_insert rt oid record =
  match key_of_value (value_at record rt.value_index) with
  | Some key -> Btree.insert rt.tree key oid
  | None -> ()

let index_remove rt oid record =
  match key_of_value (value_at record rt.value_index) with
  | Some key -> ignore (Btree.delete rt.tree key oid)
  | None -> ()

let index_update rt oid ~before ~after =
  let kb = key_of_value (value_at before rt.value_index) in
  let ka = key_of_value (value_at after rt.value_index) in
  match (kb, ka) with
  | Some a, Some b when Key.equal a b -> ()
  | _ ->
      (match kb with Some k -> ignore (Btree.delete rt.tree k oid) | None -> ());
      (match ka with Some k -> Btree.insert rt.tree k oid | None -> ())

(* Hidden fields changed under an index on replicated data (paper §3.3.4):
   keep those trees current. *)
let on_hidden_update t set oid ~before ~after =
  List.iter
    (fun rt ->
      if rt.value_index >= Ty.arity (Schema.set_type t.schema set) then
        index_update rt oid ~before ~after)
    (indexes_of_set t set)

type backend = Pager.backend = Mem | File of string option

let create ?(page_size = 4096) ?(frames = 256) ?(prefetch = 0) ?(durable = false)
    ?wal_path ?backend ?wal_fsync ?wal_flush_limit () =
  let pager = Pager.create ~page_size ~frames ~prefetch ?backend () in
  let schema = Schema.create () in
  let store = Store.create pager in
  let rec t =
    lazy
      (let sets = Hashtbl.create 8 in
       let data_files = Hashtbl.create 8 in
       let engine =
         Engine.make_env ~schema ~store
           ~file_of_set:(fun name ->
             match Hashtbl.find_opt sets name with
             | Some hf -> hf
             | None -> invalid_arg (Printf.sprintf "Db: unknown set %s" name))
           ~file_of_oid:(fun oid ->
             match Hashtbl.find_opt data_files oid.Oid.file with
             | Some (_, hf) -> hf
             | None ->
                 invalid_arg
                   (Printf.sprintf "Db: OID %s is not a data object" (Oid.to_string oid)))
           ~on_hidden_update:(fun set oid ~before ~after ->
             on_hidden_update (Lazy.force t) set oid ~before ~after)
           ()
       in
       let locks = Lock.create ~stats:(Pager.stats pager) () in
       {
         pager;
         schema;
         sets;
         data_files;
         indexes = Hashtbl.create 8;
         store;
         engine;
         wal = None;
         replaying = false;
         locks;
         next_txn = 1;
         active = Hashtbl.create 8;
         compensating = false;
         charging = false;
         replica_mode = false;
         repl_stream = None;
         epoch = 0;
         maint = Maint.create ~locks ~stats:(Pager.stats pager);
       })
  in
  let t = Lazy.force t in
  if durable || wal_path <> None then begin
    let path =
      match wal_path with
      | Some p -> p
      | None -> Filename.temp_file "fieldrep" ".wal"
    in
    t.wal <-
      Some
        (Wal.open_ ~stats:(Pager.stats pager) ?fsync:wal_fsync
           ?flush_limit:wal_flush_limit path)
  end;
  t

let close t =
  (match t.wal with Some w -> Wal.close w | None -> ());
  t.wal <- None;
  Pager.close t.pager

(* ------------------------------------------------------------------ *)
(* DDL                                                                 *)

let no_active_txns t context =
  if Hashtbl.length t.active > 0 then
    invalid_arg (context ^ ": not allowed while transactions are active")

(* Read-only enforcement for replicas.  Replayed records come through the
   same entry points with [replaying] set, so the guard lets the redo path
   through while rejecting direct writes. *)
let check_primary t context =
  if t.replica_mode && not t.replaying then
    invalid_arg
      (context ^ ": read-only replica — writes go through the master")

let is_replica t = t.replica_mode
let epoch t = t.epoch

let define_type t ty =
  check_primary t "Db.define_type";
  no_active_txns t "Db.define_type";
  log_mutation t (Wal.Define_type ty) (fun () -> Schema.define_type t.schema ty)

let create_set t ?(reserve = 0) ~name ~elem_type () =
  check_primary t "Db.create_set";
  no_active_txns t "Db.create_set";
  log_mutation t (Wal.Create_set { name; elem_type; reserve }) (fun () ->
      Schema.create_set t.schema ~name ~elem_type;
      let hf = Heap_file.create ~reserve t.pager in
      Hashtbl.replace t.sets name hf;
      Hashtbl.replace t.data_files (Heap_file.file_id hf) (name, hf))

(* ------------------------------------------------------------------ *)
(* Background maintenance                                              *)

(* Maintenance jobs lock under their own owner id, drawn from the same
   counter as transactions so the lock manager never confuses the two. *)
let fresh_owner t =
  let id = t.next_txn in
  t.next_txn <- t.next_txn + 1;
  id

(* Maintenance records run outside any transaction: durable before the
   quantum (or completion) touches pages, like autocommit mutations. *)
let log_maint t record =
  match t.wal with
  | Some w when not t.replaying ->
      ignore (Wal.append w record);
      Wal.sync w
  | Some _ | None -> ()

(* The job id IS the rep id: [Maint_step]/[Maint_done] records name it,
   and a declaration never has two jobs in flight (Building and Dropping
   are mutually exclusive states). *)
let enqueue_backfill t (rep : Schema.replication) =
  let set = rep.Schema.rpath.Path.source_set in
  let hf = set_file t set in
  let job =
    Maint.walk_job
      ~label:(Printf.sprintf "backfill %s" (Path.to_string rep.Schema.rpath))
      ~job_id:rep.Schema.rep_id ~owner:(fresh_owner t) ~set ~file:hf
      ~write_targets:(fun oid ->
        let record = Record.decode (Heap_file.read hf oid) in
        List.map
          (fun o -> (set_of_oid t o, o))
          (Engine.write_set_attach t.engine ~set record))
      ~log_step:(fun ~upto ->
        log_maint t (Wal.Maint_step { job = rep.Schema.rep_id; upto }))
      ~process:(fun oid -> Engine.backfill_source t.engine rep oid)
      ~complete:(fun () ->
        log_maint t (Wal.Maint_done { job = rep.Schema.rep_id });
        Schema.set_rep_state t.schema rep.Schema.rep_id Schema.Active)
  in
  Maint.enqueue t.maint job

let enqueue_teardown t (rep : Schema.replication) =
  let set = rep.Schema.rpath.Path.source_set in
  let hf = set_file t set in
  let job =
    Maint.walk_job
      ~label:(Printf.sprintf "teardown %s" (Path.to_string rep.Schema.rpath))
      ~job_id:rep.Schema.rep_id ~owner:(fresh_owner t) ~set ~file:hf
      ~write_targets:(fun oid ->
        List.map
          (fun o -> (set_of_oid t o, o))
          (Engine.write_set_delete t.engine ~set oid))
      ~log_step:(fun ~upto ->
        log_maint t (Wal.Maint_step { job = rep.Schema.rep_id; upto }))
      ~process:(fun oid -> Engine.teardown_source t.engine rep oid)
      ~complete:(fun () ->
        log_maint t (Wal.Maint_done { job = rep.Schema.rep_id });
        Schema.set_rep_state t.schema rep.Schema.rep_id Schema.Dropped;
        (* erase the declaration's links from the compiled registry so
           writers stop maintaining the (now dead) derived state, then
           unbind its emptied files — a re-replication of the same path
           reuses the same link IDs and must build from nothing *)
        Engine.recompile t.engine;
        Engine.gc_dead_derived t.engine)
  in
  Maint.enqueue t.maint job

let maint_step ?(quantum = 4) t =
  check_primary t "Db.maint_step";
  Maint.step t.maint ~quantum

let maint_pending t = Maint.pending t.maint
let maint_backlog t = Maint.backlog t.maint
let maint_jobs t = Maint.jobs t.maint

let maint_drain ?(quantum = 16) t =
  check_primary t "Db.maint_drain";
  let yields = ref 0 in
  while Maint.pending t.maint > 0 do
    match Maint.step t.maint ~quantum with
    | `Progress -> yields := 0
    | `Yield ->
        incr yields;
        (* every queued job yielded in turn: only a foreground
           transaction's locks can unblock them, and draining from here
           would spin forever *)
        if !yields > Maint.pending t.maint then
          invalid_arg
            "Db.maint_drain: maintenance is blocked on locks held by \
             active transactions"
    | `Idle -> ()
  done

let replication_state t path =
  Option.map
    (fun (r : Schema.replication) -> Schema.rep_state t.schema r.Schema.rep_id)
    (Schema.find_replication t.schema path)

let replicate t ?options ~strategy path =
  check_primary t "Db.replicate";
  let options = Option.value ~default:Schema.default_options options in
  (match Schema.find_replication t.schema path with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Db.replicate: path %s is already replicated"
           (Path.to_string path))
  | None -> ());
  if Hashtbl.length t.active = 0 then
    (* Quiesced: bulk-build in one pass, as before.  (Replay always lands
       here — [active] is empty during recovery — which is exactly the
       semantics a logged [Replicate] record promises.) *)
    log_mutation t
      (Wal.Replicate { path = Path.to_string path; strategy; options })
      (fun () ->
        let rep = Schema.add_replication t.schema ~options ~strategy path in
        Engine.recompile t.engine;
        Engine.build t.engine rep)
  else
    (* Online: install the declaration as [Building] so concurrent writers
       maintain derived state from this instant (the catch-up trigger),
       then backfill existing objects behind the maintenance cursor. *)
    log_mutation t
      (Wal.Replicate_online { path = Path.to_string path; strategy; options })
      (fun () ->
        let rep =
          Schema.add_replication t.schema ~options ~state:Schema.Building
            ~strategy path
        in
        Engine.recompile t.engine;
        enqueue_backfill t rep)

let unreplicate t path =
  check_primary t "Db.unreplicate";
  let rep =
    match Schema.find_replication t.schema path with
    | Some r -> r
    | None ->
        invalid_arg
          (Printf.sprintf "Db.unreplicate: path %s is not replicated"
             (Path.to_string path))
  in
  if Schema.rep_state t.schema rep.Schema.rep_id <> Schema.Active then
    invalid_arg
      (Printf.sprintf "Db.unreplicate: path %s is being reconfigured"
         (Path.to_string path));
  (* An index compiled against this path's hidden copy would dangle. *)
  let set = rep.Schema.rpath.Path.source_set in
  let ty = Schema.set_type t.schema set in
  List.iter
    (fun (d : Schema.index_def) ->
      if d.Schema.iset = set && Ty.field_opt ty d.Schema.ifield = None then
        match Schema.find_replication t.schema (Path.parse d.Schema.ifield) with
        | Some r when r.Schema.rep_id = rep.Schema.rep_id ->
            invalid_arg
              (Printf.sprintf
                 "Db.unreplicate: index %s reads path %s; drop it first"
                 d.Schema.iname (Path.to_string path))
        | Some _ | None -> ())
    (Schema.indexes t.schema);
  (* Settle this declaration's lazy-propagation debt while it is still
     live: a [Dropping] declaration no longer repairs. *)
  Engine.flush_pending t.engine;
  log_mutation t
    (Wal.Unreplicate { path = Path.to_string path })
    (fun () ->
      Schema.set_rep_state t.schema rep.Schema.rep_id Schema.Dropping;
      enqueue_teardown t rep);
  (* Quiesced callers (and replay) see the drop complete synchronously,
     mirroring the bulk [replicate] fast path. *)
  if Hashtbl.length t.active = 0 && not t.replaying then maint_drain t

(* Resolve an index field spec to an absolute value index. *)
let resolve_index_field t ~set ~field =
  let ty = Schema.set_type t.schema set in
  match Ty.field_opt ty field with
  | Some { Ty.ftype = Ty.Scalar _; _ } -> Ty.field_index ty field
  | Some { Ty.ftype = Ty.Ref _; _ } ->
      invalid_arg (Printf.sprintf "Db: cannot index reference attribute %s" field)
  | None -> (
      (* A replicated-path index: "Set.step...step.field". *)
      let path = Path.parse field in
      match Schema.find_replication t.schema path with
      | Some rep ->
          let terminal_field =
            match path.Path.terminal with
            | Path.Field f -> f
            | Path.All -> invalid_arg "Db: cannot index a .all path"
          in
          Schema.hidden_index t.schema set ~rep_id:rep.Schema.rep_id
            ~field:(Some terminal_field)
      | None ->
          invalid_arg
            (Printf.sprintf "Db: %s is neither a field of %s nor a replicated path"
               field set))

let build_index t ~name ~set ~field ~clustered =
  check_primary t "Db.build_index";
  no_active_txns t "Db.build_index";
  log_mutation t (Wal.Build_index { name; set; field; clustered }) (fun () ->
      Schema.add_index t.schema
        { Schema.iname = name; iset = set; ifield = field; clustered };
      let value_index = resolve_index_field t ~set ~field in
      let tree = Btree.create t.pager in
      let rt =
        {
          def = List.find (fun d -> d.Schema.iname = name) (Schema.indexes t.schema);
          tree;
          value_index;
        }
      in
      (* Bulk-load from existing data. *)
      let entries = ref [] in
      Heap_file.iter (set_file t set) (fun oid bytes ->
          let record = Record.decode bytes in
          match key_of_value (value_at record value_index) with
          | Some key -> entries := (key, oid) :: !entries
          | None -> ());
      Btree.bulk_load tree (Array.of_list !entries);
      Hashtbl.replace t.indexes name rt)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let check_value t ~context (field : Ty.field) v =
  if not (Value.matches field.Ty.ftype v) then
    invalid_arg
      (Printf.sprintf "%s: field %s expects %s, got %s" context field.Ty.fname
         (Format.asprintf "%a" Ty.pp_ftype field.Ty.ftype)
         (Value.to_string v));
  match (field.Ty.ftype, v) with
  (* Compensations restore a prior state wholesale; intermediate states may
     legitimately hold references their restore order has not revived yet. *)
  | Ty.Ref target, Value.VRef oid when not t.compensating ->
      let hf = file_of_oid t oid in
      if not (Heap_file.exists hf oid) then
        invalid_arg
          (Printf.sprintf "%s: field %s references dead object %s" context
             field.Ty.fname (Oid.to_string oid));
      let tag = Record.type_tag_of_bytes (Heap_file.read hf oid) in
      let expected = Schema.type_tag t.schema target in
      if tag <> expected then
        invalid_arg
          (Printf.sprintf "%s: field %s expects a %s object, %s is a %s" context
             field.Ty.fname target (Oid.to_string oid)
             (Schema.type_of_tag t.schema tag).Ty.tname)
  | (Ty.Ref _ | Ty.Scalar _), _ -> ()

(* ------------------------------------------------------------------ *)
(* Locking and undo-capture plumbing                                   *)

(* Operations on behalf of a transaction acquire their whole lock set
   before mutating anything, so a [Lock.Would_block] or [Lock.Deadlock]
   surfaces with no partial effects and the operation can simply be
   retried (or the transaction aborted).  Compensations and log replay
   run lock-free: rollback only ever touches objects the transaction
   already holds exclusively, and replay is single-threaded. *)
let locking t txn k =
  match txn with
  | Some tx when not (t.compensating || t.replaying) ->
      if not (Txn.is_active tx && Hashtbl.mem t.active (Txn.id tx)) then
        invalid_arg "Db: transaction is not active";
      k tx
  | _ -> ()

let lock t tx resource mode = Lock.acquire t.locks ~txn:(Txn.id tx) resource mode

let lock_read t tx ~set oid =
  lock t tx (Lock.Set set) Lock.IS;
  lock t tx (Lock.Obj oid) Lock.S

let lock_write t tx ~set oid =
  lock t tx (Lock.Set set) Lock.IX;
  lock t tx (Lock.Obj oid) Lock.X

(* Exclusive locks on an estimated write set (data objects propagation
   will touch), each with an intention lock on its owning set. *)
let lock_targets t tx oids =
  List.iter (fun oid -> lock_write t tx ~set:(set_of_oid t oid) oid) oids

(* Attribute the physical I/O of one operation to the transaction that
   issued it.  Re-entrancy guard: [deref] calls [get] internally and the
   pages must not be counted twice. *)
let with_charge t txn f =
  match txn with
  | Some tx when not (t.compensating || t.replaying || t.charging) ->
      t.charging <- true;
      Fun.protect
        ~finally:(fun () -> t.charging <- false)
        (fun () ->
          let io0 = Stats.grand_total_io () in
          let r = f () in
          Txn.charge_io tx (Stats.grand_total_io () - io0);
          Txn.bump_ops tx;
          r)
  | _ -> f ()

(* Capture the object's before-image the first time this transaction
   touches it, and log it ahead of the operation's redo record so crash
   recovery can roll the transaction back from the log alone. *)
let capture_undo t txn ~set oid ~present =
  match txn with
  | None -> ()
  | Some tx ->
      if (not (t.compensating || t.replaying)) && not (Txn.touched tx ~set oid)
      then begin
        let values =
          if not present then []
          else
            let record = Record.decode (Heap_file.read (set_file t set) oid) in
            let n = Ty.arity (Schema.set_type t.schema set) in
            List.init n (fun i -> value_at record i)
        in
        ensure_begin t tx;
        (match t.wal with
        | Some w ->
            ignore
              (Wal.append w
                 (Wal.Undo_image { txn = Txn.id tx; set; oid; present; values }))
        | None -> ());
        Txn.record_touch tx ~set oid
          { Txn.u_set = set; u_oid = oid; u_present = present; u_values = values }
      end

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)

let insert ?txn t ~set values =
  check_primary t "Db.insert";
  let ty = Schema.set_type t.schema set in
  if List.length values <> Ty.arity ty then
    invalid_arg
      (Printf.sprintf "Db.insert: %s has %d fields, got %d values" set (Ty.arity ty)
         (List.length values));
  List.iter2 (fun f v -> check_value t ~context:"Db.insert" f v) ty.Ty.fields values;
  let record =
    Record.make ~type_tag:(Schema.type_tag t.schema ty.Ty.tname) (Array.of_list values)
  in
  (* The OID is not logged: physical allocation is deterministic, so the
     replayed insert lands on the same OID as the original run. *)
  with_charge t txn (fun () ->
      locking t txn (fun tx ->
          lock t tx (Lock.Set set) Lock.IX;
          (* referenced objects stay shared-locked so validation cannot be
             invalidated by a concurrent committed delete *)
          List.iter
            (function
              | Value.VRef o -> lock_read t tx ~set:(set_of_oid t o) o
              | Value.VInt _ | Value.VString _ | Value.VNull -> ())
            values;
          lock_targets t tx (Engine.write_set_attach t.engine ~set record));
      let oid =
        log_mutation ?txn t (Wal.Insert { set; values }) (fun () ->
            let oid = Heap_file.insert (set_file t set) (Record.encode record) in
            List.iter (fun rt -> index_insert rt oid record) (indexes_of_set t set);
            Engine.on_insert t.engine ~set oid;
            oid)
      in
      locking t txn (fun tx -> Lock.grant t.locks ~txn:(Txn.id tx) (Lock.Obj oid) Lock.X);
      (* first touch is the creation itself: undo deletes the object *)
      capture_undo t txn ~set oid ~present:false;
      oid)

(* Re-create an object in its original slot: the second half of undoing a
   delete.  The slot is still pinned by the deleting transaction's
   tombstone, so the OID cannot have been recycled. *)
let insert_at_impl t ~set oid values =
  log_mutation t (Wal.Insert_at { set; oid; values }) (fun () ->
      let ty = Schema.set_type t.schema set in
      let record =
        Record.make ~type_tag:(Schema.type_tag t.schema ty.Ty.tname)
          (Array.of_list values)
      in
      Heap_file.insert_at (set_file t set) oid (Record.encode record);
      List.iter (fun rt -> index_insert rt oid record) (indexes_of_set t set);
      Engine.on_insert t.engine ~set oid)

let get ?txn t ~set oid =
  locking t txn (fun tx -> lock_read t tx ~set oid);
  with_charge t txn (fun () ->
      let hf = set_file t set in
      Record.decode (Heap_file.read hf oid))

(* [pin]: leave a tombstone in the slot instead of freeing it, so the OID
   cannot be recycled while the deleting transaction is undecided. *)
let delete_impl ?txn ~pin t ~set oid =
  with_charge t txn (fun () ->
      locking t txn (fun tx ->
          lock_write t tx ~set oid;
          lock_targets t tx (Engine.write_set_delete t.engine ~set oid));
      capture_undo t txn ~set oid ~present:true;
      log_mutation ?txn t (Wal.Delete { set; oid }) (fun () ->
          Engine.on_delete t.engine ~set oid;
          let hf = set_file t set in
          let record = Record.decode (Heap_file.read hf oid) in
          List.iter (fun rt -> index_remove rt oid record) (indexes_of_set t set);
          if pin then Heap_file.delete_pinned hf oid else Heap_file.delete hf oid);
      match txn with
      | Some tx when pin -> Txn.add_tombstone tx ~set oid
      | Some _ | None -> ())

let delete ?txn t ~set oid =
  check_primary t "Db.delete";
  let pin =
    match txn with
    | Some _ when not (t.compensating || t.replaying) -> true
    | Some _ | None -> false
  in
  delete_impl ?txn ~pin t ~set oid

let update_field ?txn t ~set oid ~field value =
  check_primary t "Db.update_field";
  let ty = Schema.set_type t.schema set in
  let fdef =
    match Ty.field_opt ty field with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Db.update_field: %s has no field %s" set field)
  in
  check_value t ~context:"Db.update_field" fdef value;
  let idx = Ty.field_index ty field in
  let hf = set_file t set in
  with_charge t txn @@ fun () ->
  locking t txn (fun tx ->
      lock_write t tx ~set oid;
      match fdef.Ty.ftype with
      | Ty.Scalar _ ->
          (* inverted-path fan-out: sources whose hidden copies change *)
          lock_targets t tx (Engine.write_set_scalar t.engine oid ~field)
      | Ty.Ref _ ->
          (* A reference update restructures inverted paths; the set of
             affected sources is unbounded, so escalate to set-level
             exclusive locks on every source set of a path through this
             step (the inverted path names them directly). *)
          List.iter
            (fun s -> lock t tx (Lock.Set s) Lock.X)
            (Engine.ref_update_scope t.engine ~set ~field);
          (match value with
          | Value.VRef o -> lock_read t tx ~set:(set_of_oid t o) o
          | Value.VInt _ | Value.VString _ | Value.VNull -> ());
          let old_v = value_at (Record.decode (Heap_file.read hf oid)) idx in
          let targets =
            List.filter_map
              (function Value.VRef o -> Some o | _ -> None)
              [ old_v; value ]
          in
          lock_targets t tx
            (Engine.write_set_ref_targets t.engine ~set ~field targets));
  let before = Record.decode (Heap_file.read hf oid) in
  let old_value = value_at before idx in
  if not (Value.equal old_value value) then begin
    capture_undo t txn ~set oid ~present:true;
    log_mutation ?txn t (Wal.Update { set; oid; field; value }) (fun () ->
        let after = Record.set_field before idx value in
        Heap_file.update hf oid (Record.encode after);
        (* User-field indexes first, then replication propagation (which may
           fire hidden-index maintenance via the engine callback). *)
        List.iter
          (fun rt -> if rt.value_index = idx then index_update rt oid ~before ~after)
          (indexes_of_set t set);
        match fdef.Ty.ftype with
        | Ty.Scalar _ -> Engine.on_scalar_update t.engine ~set oid ~field value
        | Ty.Ref _ ->
            Engine.on_ref_update t.engine ~set oid ~field ~old_value ~new_value:value)
  end

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let begin_txn t =
  check_primary t "Db.begin_txn";
  if t.replaying then invalid_arg "Db.begin_txn: recovery in progress";
  let tx = Txn.make t.next_txn in
  t.next_txn <- t.next_txn + 1;
  (* Snapshot the lazy-invalidation table so abort can settle exactly the
     repair debt this transaction adds (and no other transaction's). *)
  Txn.set_pending_snapshot tx (Engine.pending_keys t.engine);
  Hashtbl.replace t.active (Txn.id tx) tx;
  tx

let txn_check t tx =
  if not (Txn.is_active tx && Hashtbl.mem t.active (Txn.id tx)) then
    invalid_arg "Db: transaction is not active"

let free_txn_tombstones t stones =
  List.iter
    (fun (set, oid) ->
      let hf = set_file t set in
      (* revived slots (abort path) are no longer tombstones *)
      if Heap_file.is_tombstone hf oid then Heap_file.free_tombstone hf oid)
    (List.rev stones)

let finish t tx state =
  Hashtbl.remove t.active (Txn.id tx);
  Txn.set_state tx state;
  Lock.release_all t.locks ~txn:(Txn.id tx)

let commit t tx =
  txn_check t tx;
  let io0 = Stats.grand_total_io () in
  free_txn_tombstones t (Txn.tombstones tx);
  (match t.wal with
  | Some w when Txn.begun tx && not t.replaying ->
      ignore (Wal.append w (Wal.Txn_commit (Txn.id tx)));
      (* The group-commit point: one physical flush covers this marker and
         every record the transaction buffered. *)
      Wal.sync w
  | _ -> ());
  Txn.charge_io tx (Stats.grand_total_io () - io0);
  finish t tx Txn.Committed;
  let s = stats t in
  Stats.bump s Stats.Txn_commits

(* Roll one before-image back through the normal engine code, so indexes,
   link objects, hidden copies and S' objects all follow.  Runs with
   [t.compensating] set: lock-free, no fresh undo capture, logged as plain
   records (CLR-style: the rollback replays like any other work). *)
let restore_image t (img : Txn.undo_image) =
  let set = img.Txn.u_set and oid = img.Txn.u_oid in
  let present_now = Heap_file.exists (set_file t set) oid in
  (match (img.Txn.u_present, present_now) with
  | true, true ->
      let ty = Schema.set_type t.schema set in
      List.iteri
        (fun i v ->
          update_field t ~set oid
            ~field:
              (Listx.nth_exn ~what:"Db.restore_image: undo arity mismatch"
                 ty.Ty.fields i)
                .Ty.fname v)
        img.Txn.u_values
  | true, false -> insert_at_impl t ~set oid img.Txn.u_values
  | false, true -> delete t ~set oid
  | false, false -> ());
  let s = stats t in
  Stats.bump s Stats.Undo_applied

let abort t tx =
  txn_check t tx;
  let io0 = Stats.grand_total_io () in
  t.compensating <- true;
  Fun.protect
    ~finally:(fun () -> t.compensating <- false)
    (fun () ->
      List.iter (restore_image t) (Txn.undo_images tx);
      (* Settle the lazy-propagation debt this transaction created: its
         invalidation entries must not leak repair work (and I/O) onto
         whichever innocent reader touches the source next. *)
      let snap = Txn.pending_snapshot tx in
      let added =
        List.filter (fun k -> not (List.mem k snap)) (Engine.pending_keys t.engine)
      in
      Engine.flush_keys t.engine added;
      free_txn_tombstones t (Txn.tombstones tx));
  (match t.wal with
  | Some w when Txn.begun tx && not t.replaying ->
      ignore (Wal.append w (Wal.Txn_abort (Txn.id tx)));
      Wal.sync w
  | _ -> ());
  Txn.charge_io tx (Stats.grand_total_io () - io0);
  finish t tx Txn.Aborted;
  let s = stats t in
  Stats.bump s Stats.Txn_aborts

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)

let user_values t ~set (record : Record.t) =
  let n = Ty.arity (Schema.set_type t.schema set) in
  List.init n (fun i -> value_at record i)

let field_value t ~set record field =
  let ty = Schema.set_type t.schema set in
  value_at record (Ty.field_index ty field)

let scan ?txn t ~set f =
  locking t txn (fun tx -> lock t tx (Lock.Set set) Lock.S);
  with_charge t txn (fun () ->
      Heap_file.iter (set_file t set) (fun oid bytes -> f oid (Record.decode bytes)))

let set_size t set = Heap_file.object_count (set_file t set)
let set_pages t set = Heap_file.page_count (set_file t set)

(* ------------------------------------------------------------------ *)
(* Path dereferencing with replication-aware planning                  *)

type deref_plan =
  | P_hidden of int * Schema.replication
      (* in-place / collapsed: hidden copy at value index *)
  | P_sprime of int * int  (* separate: hidden sref at index, field offset in S' *)
  | P_walk of (string * int) list * int
      (* functional joins: (type, step value index) list, then terminal index *)

let plan_deref t ~set expr =
  let parts = String.split_on_char '.' (String.trim expr) in
  let parts = List.filter (fun s -> s <> "") parts in
  match List.rev parts with
  | [] | [ _ ] ->
      invalid_arg (Printf.sprintf "Db.deref: %S is not a path expression" expr)
  | terminal :: rev_steps ->
      let steps = List.rev rev_steps in
      let covering =
        List.filter
          (fun (r : Schema.replication) ->
            (* Only [Active] declarations serve reads: a [Building] copy is
               not complete yet, a [Dropping] one is being torn down. *)
            Schema.rep_state t.schema r.Schema.rep_id = Schema.Active
            && r.Schema.rpath.Path.steps = steps
            &&
            match r.Schema.rpath.Path.terminal with
            | Path.Field f -> f = terminal
            | Path.All ->
                (* Full object replication covers every scalar field. *)
                List.mem_assoc terminal
                  (Schema.resolve_path t.schema r.Schema.rpath).Schema.terminal_fields)
          (Schema.replications_from t.schema set)
      in
      let inplace =
        List.find_opt (fun (r : Schema.replication) -> r.Schema.strategy = Schema.Inplace) covering
      in
      let separate =
        List.find_opt (fun (r : Schema.replication) -> r.Schema.strategy = Schema.Separate) covering
      in
      (match (inplace, separate) with
      | Some r, _ ->
          P_hidden
            ( Schema.hidden_index t.schema set ~rep_id:r.Schema.rep_id
                ~field:(Some terminal),
              r )
      | None, Some r ->
          let idx = Schema.hidden_index t.schema set ~rep_id:r.Schema.rep_id ~field:None in
          let resolved = Schema.resolve_path t.schema r.Schema.rpath in
          let offset =
            match
              List.find_index (fun (f, _) -> f = terminal) resolved.Schema.terminal_fields
            with
            | Some i -> Engine.sprime_field_offset + i
            | None -> assert false
          in
          P_sprime (idx, offset)
      | None, None ->
          (* Validate and compile the plain walk. *)
          let rec compile ty_name acc = function
            | [] ->
                let ty = Schema.find_type t.schema ty_name in
                (match Ty.field_opt ty terminal with
                | Some { Ty.ftype = Ty.Scalar _; _ } | Some { Ty.ftype = Ty.Ref _; _ } ->
                    P_walk (List.rev acc, Ty.field_index ty terminal)
                | None ->
                    invalid_arg
                      (Printf.sprintf "Db.deref: type %s has no field %s" ty_name terminal))
            | step :: rest -> (
                let ty = Schema.find_type t.schema ty_name in
                match Ty.field_opt ty step with
                | Some { Ty.ftype = Ty.Ref target; _ } ->
                    compile target ((ty_name, Ty.field_index ty step) :: acc) rest
                | Some _ | None ->
                    invalid_arg
                      (Printf.sprintf "Db.deref: %s.%s is not a reference attribute"
                         ty_name step))
          in
          compile (Schema.set_type t.schema set).Ty.tname [] steps)

(* Evaluate a path expression by actually following the references
   (ignoring any replicated data). *)
let deref_walk t ~set record expr =
  let parts = String.split_on_char '.' (String.trim expr) in
  let parts = List.filter (fun s -> s <> "") parts in
  let rec walk ty_name record = function
    | [] -> invalid_arg "Db.deref: empty path"
    | [ terminal ] ->
        let ty = Schema.find_type t.schema ty_name in
        value_at record (Ty.field_index ty terminal)
    | step :: rest -> (
        let ty = Schema.find_type t.schema ty_name in
        match value_at record (Ty.field_index ty step) with
        | Value.VRef oid ->
            let hf = file_of_oid t oid in
            walk
              (match Ty.field ty step with
              | { Ty.ftype = Ty.Ref target; _ } -> target
              | _ -> assert false)
              (Record.decode (Heap_file.read hf oid))
              rest
        | Value.VNull -> Value.VNull
        | Value.VInt _ | Value.VString _ -> invalid_arg "Db.deref: non-reference on path")
  in
  walk (Schema.set_type t.schema set).Ty.tname record parts

let deref_record ?txn ?oid t ~set record expr =
  match plan_deref t ~set expr with
  | P_hidden (idx, rep) -> (
      if not rep.Schema.options.Schema.lazy_propagation then value_at record idx
      else
        (* Lazy propagation: repair the hidden copy on first read.  Without
           the OID we cannot consult the invalidation table, so fall back to
           the actual walk if anything at all is pending. *)
        match oid with
        | Some oid ->
            (* the repair rewrites the source object itself *)
            locking t txn (fun tx ->
                if Engine.is_pending t.engine rep oid then lock_write t tx ~set oid);
            Engine.repair t.engine rep oid;
            let record = Record.decode (Heap_file.read (set_file t set) oid) in
            value_at record idx
        | None ->
            if Engine.pending_count t.engine = 0 then value_at record idx
            else (* correctness first: evaluate through the references *)
              deref_walk t ~set record expr)
  | P_sprime (idx, offset) -> (
      match value_at record idx with
      | Value.VRef sp -> (
          try
            let file =
              match Store.file_of_oid t.store sp with
              | Some f -> f
              | None -> invalid_arg "Db.deref: dangling S' reference"
            in
            let sp_rec = Record.decode (Heap_file.read file sp) in
            (* The S' object is guarded by the final object that owns it
               (named in slot 1): a shared lock there serialises this read
               against writers of the replicated fields. *)
            locking t txn (fun tx ->
                match value_at sp_rec 1 with
                | Value.VRef owner -> lock_read t tx ~set:(set_of_oid t owner) owner
                | Value.VInt _ | Value.VString _ | Value.VNull -> ());
            value_at sp_rec offset
          with Disk.Corrupt_page _ ->
            (* The S' page is quarantined.  The replicated value is only a
               copy: degrade gracefully to the functional join over the
               source objects, which remain authoritative. *)
            Stats.note_degraded_read (stats t);
            deref_walk t ~set record expr)
      | Value.VNull -> Value.VNull
      | Value.VInt _ | Value.VString _ -> invalid_arg "Db.deref: corrupt sref slot")
  | P_walk (hops, terminal_idx) ->
      let rec walk record = function
        | [] -> value_at record terminal_idx
        | (_, step_idx) :: rest -> (
            match value_at record step_idx with
            | Value.VRef oid ->
                locking t txn (fun tx -> lock_read t tx ~set:(set_of_oid t oid) oid);
                let hf = file_of_oid t oid in
                walk (Record.decode (Heap_file.read hf oid)) rest
            | Value.VNull -> Value.VNull
            | Value.VInt _ | Value.VString _ ->
                invalid_arg "Db.deref: non-reference on path")
      in
      walk record hops

let deref ?txn t ~set oid expr =
  with_charge t txn (fun () ->
      deref_record ?txn ~oid t ~set (get ?txn t ~set oid) expr)

let deref_would_join t ~set expr =
  match plan_deref t ~set expr with
  | P_hidden _ -> 0
  | P_sprime _ -> 1
  | P_walk (hops, _) -> List.length hops

(* ------------------------------------------------------------------ *)
(* Index access                                                        *)

let index_rt t name =
  match Hashtbl.find_opt t.indexes name with
  | Some rt -> rt
  | None -> invalid_arg (Printf.sprintf "Db: unknown index %s" name)

let index_lookup ?txn t ~index key =
  let rt = index_rt t index in
  locking t txn (fun tx -> lock t tx (Lock.Set rt.def.Schema.iset) Lock.IS);
  let oids = with_charge t txn (fun () -> Btree.find rt.tree key) in
  locking t txn (fun tx ->
      List.iter (fun o -> lock_read t tx ~set:rt.def.Schema.iset o) oids);
  oids

let index_range ?txn t ~index ~lo ~hi ~init ~f =
  let rt = index_rt t index in
  (* range reads lock the whole set: no per-key phantom protection *)
  locking t txn (fun tx -> lock t tx (Lock.Set rt.def.Schema.iset) Lock.S);
  with_charge t txn (fun () -> Btree.fold_range rt.tree ~lo ~hi ~init ~f)

type index_stats = { entries : int; height : int; leaves : int; pages : int }

let index_stats t ~index =
  let rt = index_rt t index in
  {
    entries = Btree.entry_count rt.tree;
    height = Btree.height rt.tree;
    leaves = Btree.leaf_count rt.tree;
    pages = Btree.page_count rt.tree;
  }

let find_index t ~set ~field =
  List.find_opt
    (fun d -> d.Schema.iset = set && d.Schema.ifield = field)
    (Schema.indexes t.schema)

(* ------------------------------------------------------------------ *)
(* Inverse references                                                  *)

type inverse_method = Via_links | Via_scan

let referencers t ~source_set ~attr target_oid =
  (* Validate the attribute. *)
  let ty = Schema.set_type t.schema source_set in
  (match Ty.field_opt ty attr with
  | Some { Ty.ftype = Ty.Ref _; _ } -> ()
  | Some _ | None ->
      invalid_arg
        (Printf.sprintf "Db.referencers: %s.%s is not a reference attribute"
           source_set attr));
  let scan () =
    let idx = Ty.field_index ty attr in
    let acc = ref [] in
    Heap_file.iter (set_file t source_set) (fun oid bytes ->
        let record = Record.decode bytes in
        match value_at record idx with
        | Value.VRef r when Oid.equal r target_oid -> acc := oid :: !acc
        | Value.VRef _ | Value.VNull | Value.VInt _ | Value.VString _ -> ());
    (List.rev !acc, Via_scan)
  in
  match Engine.referencers_via_links t.engine ~source_set ~attr target_oid with
  | Some members -> (members, Via_links)
  | None -> scan ()
  | exception Disk.Corrupt_page _ ->
      (* The level-1 link page is quarantined: the inverted path is just
         replicated data, so degrade to scanning the (authoritative) source
         set. *)
      Stats.note_degraded_read (stats t);
      scan ()

(* ------------------------------------------------------------------ *)
(* Integrity and space                                                 *)

let check_integrity t =
  Invariants.check t.engine;
  Hashtbl.iter
    (fun name rt ->
      Btree.check_invariants rt.tree;
      (* Every indexed object appears exactly once under its current key. *)
      let expected = ref 0 in
      Heap_file.iter (set_file t rt.def.Schema.iset) (fun oid bytes ->
          let record = Record.decode bytes in
          match key_of_value (value_at record rt.value_index) with
          | Some key ->
              incr expected;
              let hits = Btree.find rt.tree key in
              if not (List.exists (Oid.equal oid) hits) then
                failwith
                  (Printf.sprintf "index %s: missing entry for %s" name
                     (Oid.to_string oid))
          | None -> ());
      if Btree.entry_count rt.tree <> !expected then
        failwith
          (Printf.sprintf "index %s: %d entries, %d expected" name
             (Btree.entry_count rt.tree) !expected))
    t.indexes

let scrub t =
  check_primary t "Db.scrub";
  let data_sets =
    Hashtbl.fold (fun name hf acc -> (name, hf) :: acc) t.sets []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let log_repair ~rep_id ~source =
    match t.wal with
    | Some w when not t.replaying ->
        ignore (Wal.append w (Wal.Scrub_repair { rep_id; source }));
        (* Repair records run outside any transaction: durable before the
           repair itself touches pages, like autocommit mutations. *)
        Wal.sync w
    | Some _ | None -> ()
  in
  (* The physical sweep runs as a maintenance job so queued backfills and
     teardowns keep making progress while scrub reads pages.  The sweep is
     never logged: a crash mid-sweep just loses the sweep. *)
  let sw = Scrub.sweep_start t.engine ~data_sets in
  let scrub_job = -1 in
  Maint.enqueue t.maint
    (Maint.custom_job ~label:"scrub sweep" ~job_id:scrub_job
       ~step:(fun ~quantum ->
         if Scrub.sweep_step sw ~budget:(quantum * 8) then `More else `Done)
       ~complete:(fun () -> ()));
  while Maint.find t.maint scrub_job <> None do
    ignore (Maint.step t.maint ~quantum:4)
  done;
  (* Repairs lock like any other writer — IX on the set, X on the object,
     under a job-scoped owner held until the logical pass completes.  A
     conflict defers that one repair to a later scrub. *)
  let owner = fresh_owner t in
  let guard oid =
    let set = set_of_oid t oid in
    match
      Lock.acquire t.locks ~txn:owner (Lock.Set set) Lock.IX;
      Lock.acquire t.locks ~txn:owner (Lock.Obj oid) Lock.X
    with
    | () -> true
    | exception (Lock.Would_block _ | Lock.Deadlock _) ->
        Stats.note_maint_yield (stats t);
        false
  in
  Fun.protect
    ~finally:(fun () -> Lock.release_all t.locks ~txn:owner)
    (fun () -> Scrub.finish ~log_repair ~guard sw)

(* ------------------------------------------------------------------ *)
(* Observability and referential integrity                             *)

let io_breakdown t =
  let stats = Pager.stats t.pager in
  let label_of_file =
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter (fun name hf -> Hashtbl.replace tbl (Heap_file.file_id hf) ("set " ^ name)) t.sets;
    Hashtbl.iter
      (fun name rt -> Hashtbl.replace tbl (Btree.file_id rt.tree) ("index " ^ name))
      t.indexes;
    let links, sprimes = Store.bindings t.store in
    List.iter
      (fun (link_id, file_id) ->
        Hashtbl.replace tbl file_id (Printf.sprintf "link file #%d" link_id))
      links;
    List.iter
      (fun (rep_id, file_id) ->
        Hashtbl.replace tbl file_id (Printf.sprintf "S' file (rep %d)" rep_id))
      sprimes;
    fun file ->
      Option.value ~default:"output/other" (Hashtbl.find_opt tbl file)
  in
  let acc = Hashtbl.create 16 in
  Hashtbl.iter
    (fun file (r, w) ->
      let label = label_of_file file in
      let r0, w0 = Option.value ~default:(0, 0) (Hashtbl.find_opt acc label) in
      Hashtbl.replace acc label (r0 + r, w0 + w))
    stats.Stats.by_file;
  Hashtbl.fold (fun label (r, w) rows -> (label, r, w) :: rows) acc []
  |> List.sort compare

let dangling_references t =
  let dangling = ref [] in
  List.iter
    (fun (set_name, elem) ->
      let ty = Schema.find_type t.schema elem in
      let ref_fields = Ty.ref_fields ty in
      if ref_fields <> [] then
        Heap_file.iter (set_file t set_name) (fun oid bytes ->
            let record = Record.decode bytes in
            List.iter
              (fun (fname, target_type) ->
                match value_at record (Ty.field_index ty fname) with
                | Value.VRef r ->
                    let ok =
                      match Hashtbl.find_opt t.data_files r.Oid.file with
                      | Some (_, hf) ->
                          Heap_file.exists hf r
                          && Record.type_tag_of_bytes (Heap_file.read hf r)
                             = Schema.type_tag t.schema target_type
                      | None -> false
                    in
                    if not ok then dangling := (set_name, oid, fname) :: !dangling
                | Value.VNull | Value.VInt _ | Value.VString _ -> ())
              ref_fields))
    (Schema.sets t.schema);
  List.rev !dangling

(* ------------------------------------------------------------------ *)
(* Database images (save / load)                                       *)

let image_magic = "FREPIMG2"

let u8_of_rep_state = function
  | Schema.Building -> 0
  | Schema.Active -> 1
  | Schema.Dropping -> 2
  | Schema.Dropped -> 3

let rep_state_of_u8 = function
  | 0 -> Schema.Building
  | 1 -> Schema.Active
  | 2 -> Schema.Dropping
  | 3 -> Schema.Dropped
  | k -> invalid_arg (Printf.sprintf "Db.load: bad replication state %d" k)

let save t path =
  (* Make the on-disk state complete and self-describing first.  The log
     must reach the OS before its LSN is stamped into the image: a
     checkpoint is a durability point. *)
  Engine.flush_pending t.engine;
  (match t.wal with Some w -> Wal.sync w | None -> ());
  Pager.flush t.pager;
  let buf = Buffer.create (1 lsl 20) in
  let put_u8 v = Buffer.add_uint8 buf (v land 0xff) in
  let put_u16 v = Buffer.add_uint16_le buf (v land 0xffff) in
  let put_u32 v =
    assert (v >= 0 && v < 0x1_0000_0000);
    Buffer.add_int32_le buf (Int32.of_int v)
  in
  let put_u64 v = Buffer.add_int64_le buf (Int64.of_int v) in
  let put_str s =
    put_u16 (String.length s);
    Buffer.add_string buf s
  in
  Buffer.add_string buf image_magic;
  put_u32 (Pager.page_size t.pager);
  (* Durability header: the checkpoint's LSN stamp (recovery redoes only
     log records beyond it), the log this database was writing to, and the
     disk's file-id watermark (deleted files leave holes that allocation
     replay must not re-fill). *)
  put_u64 (match t.wal with Some w -> Int64.to_int (Wal.last_lsn w) | None -> 0);
  put_str (match t.wal with Some w -> Wal.path w | None -> "");
  put_u32 (Disk.next_file_id (Pager.disk t.pager));
  (* Types, in tag order so replay reassigns identical tags. *)
  let types =
    List.map (fun ty -> (Schema.type_tag t.schema ty.Ty.tname, ty)) (Schema.types t.schema)
    |> List.sort compare
  in
  put_u16 (List.length types);
  List.iter
    (fun (tag, (ty : Ty.t)) ->
      put_u16 tag;
      put_str ty.Ty.tname;
      put_u16 (List.length ty.Ty.fields);
      List.iter
        (fun (f : Ty.field) ->
          put_str f.Ty.fname;
          match f.Ty.ftype with
          | Ty.Scalar Ty.SInt -> put_u8 0
          | Ty.Scalar Ty.SString -> put_u8 1
          | Ty.Ref target ->
              put_u8 2;
              put_str target)
        ty.Ty.fields)
    types;
  (* Sets, in creation order, with their heap-file bindings. *)
  let sets = Schema.sets t.schema in
  put_u16 (List.length sets);
  List.iter
    (fun (name, elem) ->
      let hf =
        match Hashtbl.find_opt t.sets name with
        | Some hf -> hf
        | None -> invalid_arg ("Db.checkpoint: set without heap file: " ^ name)
      in
      put_str name;
      put_str elem;
      put_u32 (Heap_file.file_id hf);
      put_u32 (Heap_file.reserve hf))
    sets;
  (* Replication declarations, in rep-id order — [Dropped] ones included,
     because the full sequence is what fixes hidden-slot layout and
     link-id allocation. *)
  let reps = Schema.all_replications t.schema in
  put_u16 (List.length reps);
  List.iter
    (fun (r : Schema.replication) ->
      put_u16 r.Schema.rep_id;
      put_str (Path.to_string r.Schema.rpath);
      put_u8 (match r.Schema.strategy with Schema.Inplace -> 0 | Schema.Separate -> 1);
      put_u8 (if r.Schema.options.Schema.collapse then 1 else 0);
      put_u16 r.Schema.options.Schema.small_link_threshold;
      put_u8 (if r.Schema.options.Schema.lazy_propagation then 1 else 0);
      put_u8 (if r.Schema.options.Schema.cluster_links then 1 else 0);
      put_u8 (u8_of_rep_state (Schema.rep_state t.schema r.Schema.rep_id)))
    reps;
  (* Indexes, in creation order, with tree roots. *)
  let index_defs = Schema.indexes t.schema in
  put_u16 (List.length index_defs);
  List.iter
    (fun (d : Schema.index_def) ->
      let rt =
        match Hashtbl.find_opt t.indexes d.Schema.iname with
        | Some rt -> rt
        | None -> invalid_arg ("Db.checkpoint: unknown index: " ^ d.Schema.iname)
      in
      put_str d.Schema.iname;
      put_str d.Schema.iset;
      put_str d.Schema.ifield;
      put_u8 (if d.Schema.clustered then 1 else 0);
      put_u32 (Btree.file_id rt.tree);
      put_u32 (Btree.root rt.tree);
      put_u64 (Btree.entry_count rt.tree))
    index_defs;
  (* Replication storage bindings. *)
  let links, sprimes = Store.bindings t.store in
  put_u16 (List.length links);
  List.iter
    (fun (link_id, file_id) ->
      put_u16 link_id;
      put_u32 file_id)
    links;
  put_u16 (List.length sprimes);
  List.iter
    (fun (rep_id, file_id) ->
      put_u16 rep_id;
      put_u32 file_id)
    sprimes;
  (* Raw disk contents. *)
  let disk = Pager.disk t.pager in
  let file_ids = Disk.file_ids disk in
  put_u32 (List.length file_ids);
  List.iter
    (fun id ->
      put_u32 id;
      let npages = Disk.page_count disk id in
      put_u32 npages;
      for page = 0 to npages - 1 do
        Buffer.add_bytes buf (Disk.dump_page disk ~file:id ~page)
      done)
    file_ids;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

(* Restore a database from an image, returning the checkpoint's durability
   header alongside it: (db, checkpoint lsn, wal path recorded at save). *)
let load_image ?(frames = 256) ?backend path =
  let data =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let pos = ref 0 in
  let get_u8 () =
    let v = Char.code data.[!pos] in
    incr pos;
    v
  in
  let get_u16 () =
    let v = get_u8 () in
    v lor (get_u8 () lsl 8)
  in
  let get_u32 () =
    let v = get_u16 () in
    v lor (get_u16 () lsl 16)
  in
  let get_u64 () =
    let lo = get_u32 () in
    lo lor (get_u32 () lsl 32)
  in
  let get_str () =
    let n = get_u16 () in
    let s = String.sub data !pos n in
    pos := !pos + n;
    s
  in
  let magic = String.sub data 0 (String.length image_magic) in
  pos := String.length image_magic;
  if magic <> image_magic then invalid_arg "Db.load: not a fieldrep database image";
  let page_size = get_u32 () in
  let checkpoint_lsn = Int64.of_int (get_u64 ()) in
  let saved_wal_path = get_str () in
  let next_file_id = get_u32 () in
  let t = create ~page_size ~frames ?backend () in
  (* Types. *)
  let ntypes = get_u16 () in
  for _ = 1 to ntypes do
    let tag = get_u16 () in
    let name = get_str () in
    let nfields = get_u16 () in
    let fields =
      List.init nfields (fun _ ->
          let fname = get_str () in
          match get_u8 () with
          | 0 -> { Ty.fname; ftype = Ty.Scalar Ty.SInt }
          | 1 -> { Ty.fname; ftype = Ty.Scalar Ty.SString }
          | 2 -> { Ty.fname; ftype = Ty.Ref (get_str ()) }
          | k -> invalid_arg (Printf.sprintf "Db.load: bad field kind %d" k))
    in
    Schema.define_type t.schema (Ty.make ~name fields);
    if Schema.type_tag t.schema name <> tag then
      invalid_arg "Db.load: type tag replay mismatch"
  done;
  (* Sets (heap files attached after the disk is restored). *)
  let nsets = get_u16 () in
  let set_bindings =
    List.init nsets (fun _ ->
        let name = get_str () in
        let elem = get_str () in
        let file_id = get_u32 () in
        let reserve = get_u32 () in
        Schema.create_set t.schema ~name ~elem_type:elem;
        (name, file_id, reserve))
  in
  (* Replications. *)
  let nreps = get_u16 () in
  for _ = 1 to nreps do
    let rep_id = get_u16 () in
    let path = Path.parse (get_str ()) in
    let strategy = if get_u8 () = 0 then Schema.Inplace else Schema.Separate in
    let collapse = get_u8 () = 1 in
    let small_link_threshold = get_u16 () in
    let lazy_propagation = get_u8 () = 1 in
    let cluster_links = get_u8 () = 1 in
    let state = rep_state_of_u8 (get_u8 ()) in
    let rep =
      Schema.add_replication t.schema
        ~options:{ Schema.collapse; small_link_threshold; lazy_propagation; cluster_links }
        ~state ~strategy path
    in
    if rep.Schema.rep_id <> rep_id then invalid_arg "Db.load: rep id replay mismatch"
  done;
  (* Indexes (trees attached after the disk is restored). *)
  let nindexes = get_u16 () in
  let index_bindings =
    List.init nindexes (fun _ ->
        let iname = get_str () in
        let iset = get_str () in
        let ifield = get_str () in
        let clustered = get_u8 () = 1 in
        let file_id = get_u32 () in
        let root = get_u32 () in
        let count = get_u64 () in
        Schema.add_index t.schema { Schema.iname; iset; ifield; clustered };
        (iname, iset, ifield, file_id, root, count))
  in
  let nlinks = get_u16 () in
  let link_bindings =
    List.init nlinks (fun _ ->
        let link_id = get_u16 () in
        let file_id = get_u32 () in
        (link_id, file_id))
  in
  let nsprimes = get_u16 () in
  let sprime_bindings =
    List.init nsprimes (fun _ ->
        let rep_id = get_u16 () in
        let file_id = get_u32 () in
        (rep_id, file_id))
  in
  (* Disk contents. *)
  let disk = Pager.disk t.pager in
  let nfiles = get_u32 () in
  for _ = 1 to nfiles do
    let id = get_u32 () in
    let npages = get_u32 () in
    let pages =
      Array.init npages (fun _ ->
          let b = Bytes.of_string (String.sub data !pos page_size) in
          pos := !pos + page_size;
          b)
    in
    Disk.restore_file disk ~id pages
  done;
  (* Re-establish the file-id watermark: files created and later deleted
     before the checkpoint left holes, and replayed allocations must not
     re-fill them or every subsequent file id would diverge. *)
  Disk.reserve_file_ids disk next_file_id;
  (* Attach heap files and trees to the restored pages. *)
  List.iter
    (fun (name, file_id, reserve) ->
      let hf = Heap_file.attach ~reserve t.pager ~file:file_id in
      Hashtbl.replace t.sets name hf;
      Hashtbl.replace t.data_files file_id (name, hf))
    set_bindings;
  List.iter
    (fun (iname, iset, ifield, file_id, root, count) ->
      let tree = Btree.attach t.pager ~file:file_id ~root ~count in
      let value_index = resolve_index_field t ~set:iset ~field:ifield in
      let def = List.find (fun d -> d.Schema.iname = iname) (Schema.indexes t.schema) in
      Hashtbl.replace t.indexes iname { def; tree; value_index })
    index_bindings;
  List.iter
    (fun (link_id, file_id) ->
      Store.bind_link t.store ~link_id (Heap_file.attach t.pager ~file:file_id))
    link_bindings;
  List.iter
    (fun (rep_id, file_id) ->
      Store.bind_sprime t.store ~rep_id (Heap_file.attach t.pager ~file:file_id))
    sprime_bindings;
  Engine.recompile t.engine;
  (* Re-queue in-flight reconfigurations at cursor 0: the image may have
     been taken mid-job, and re-walking already-processed pages is safe
     because the per-source operations are idempotent.  Logged [Maint_step]
     records (if this load is the front half of a recovery) then fast-
     forward the cursor through [advance_to]. *)
  List.iter
    (fun (r : Schema.replication) ->
      match Schema.rep_state t.schema r.Schema.rep_id with
      | Schema.Building -> enqueue_backfill t r
      | Schema.Dropping -> enqueue_teardown t r
      | Schema.Active | Schema.Dropped -> ())
    (Schema.replications t.schema);
  (t, checkpoint_lsn, saved_wal_path)

let load ?frames ?backend path =
  let t, _, _ = load_image ?frames ?backend path in
  t

(* ------------------------------------------------------------------ *)
(* Checkpoints and crash recovery                                      *)

let checkpoint t path =
  (* A checkpoint is a transaction-consistent image: in-flight undo state
     lives only in memory, so an image taken mid-transaction could not be
     rolled back after a restart. *)
  check_primary t "Db.checkpoint";
  no_active_txns t "Db.checkpoint";
  save t path

let recovery_applier t =
  {
    Recovery.define_type = (fun ty -> define_type t ty);
    create_set =
      (fun ~name ~elem_type ~reserve -> create_set t ~reserve ~name ~elem_type ());
    insert = (fun ~set values -> insert t ~set values);
    update = (fun ~set ~oid ~field value -> update_field t ~set oid ~field value);
    delete = (fun ~set ~oid -> delete_impl ~pin:false t ~set oid);
    delete_pinned = (fun ~set ~oid -> delete_impl ~pin:true t ~set oid);
    insert_at = (fun ~set ~oid values -> insert_at_impl t ~set oid values);
    free_tombstone =
      (fun ~set ~oid ->
        let hf = set_file t set in
        if Heap_file.is_tombstone hf oid then Heap_file.free_tombstone hf oid);
    replicate =
      (fun ~strategy ~options ~path ->
        replicate t ~options ~strategy (Path.parse path));
    build_index =
      (fun ~name ~set ~field ~clustered -> build_index t ~name ~set ~field ~clustered);
    scrub_repair =
      (fun ~rep_id ~source ->
        (* Re-run the logged repair.  The record carries the replication and
           the source (or membership-target) object; if the object no longer
           exists at this point in the log, or the repair was a membership
           rebuild whose "source" lives in another set, refreshing is either
           impossible or a no-op — skip silently, replay continues to a
           consistent state either way. *)
        match
          List.find_opt
            (fun (r : Schema.replication) -> r.Schema.rep_id = rep_id)
            (Schema.replications t.schema)
        with
        | None -> ()
        | Some rep ->
            let set = rep.Schema.rpath.Path.source_set in
            if
              Hashtbl.mem t.sets set
              && Heap_file.exists (set_file t set) source
            then Engine.refresh t.engine rep source);
    replicate_online =
      (fun ~strategy ~options ~path ->
        let rep =
          Schema.add_replication t.schema ~options ~state:Schema.Building
            ~strategy (Path.parse path)
        in
        Engine.recompile t.engine;
        enqueue_backfill t rep);
    unreplicate =
      (fun ~path ->
        match Schema.find_replication t.schema (Path.parse path) with
        | None -> ()
        | Some rep ->
            Schema.set_rep_state t.schema rep.Schema.rep_id Schema.Dropping;
            enqueue_teardown t rep);
    maint_step = (fun ~job ~upto -> Maint.advance_to t.maint ~job ~upto);
    maint_done = (fun ~job -> Maint.finish t.maint ~job);
    epoch_change = (fun ~epoch -> if epoch > t.epoch then t.epoch <- epoch);
  }

let recover ?frames ?wal_path ?backend path =
  let t, checkpoint_lsn, saved_wal_path = load_image ?frames ?backend path in
  let wal_file =
    match wal_path with
    | Some p -> p
    | None ->
        if saved_wal_path = "" then
          invalid_arg
            "Db.recover: image was not checkpointed from a durable database \
             and no ~wal_path was given"
        else saved_wal_path
  in
  let w = Wal.open_ ~stats:(Pager.stats t.pager) wal_file in
  Wal.ensure_lsn w checkpoint_lsn;
  t.wal <- Some w;
  t.replaying <- true;
  let _replayed, losers =
    Fun.protect
      ~finally:(fun () -> t.replaying <- false)
      (fun () -> Recovery.replay w ~after:checkpoint_lsn (recovery_applier t))
  in
  (* Roll back the losers: transactions live at the crash.  Replay left
     their operations applied and their delete slots tombstoned; undo them
     from the logged before-images, newest first.  The compensations are
     logged as plain records plus a final [Txn_abort] marker, so a second
     crash during (or after) rollback recovers to the same state. *)
  List.iter
    (fun (l : Recovery.loser) ->
      t.compensating <- true;
      Fun.protect
        ~finally:(fun () -> t.compensating <- false)
        (fun () ->
          (* An insert whose before-image never made the log (the crash cut
             between the two records) is necessarily the newest operation:
             undo it first. *)
          List.iter
            (fun (set, oid) ->
              if
                (not
                   (List.exists
                      (fun (s, o, _, _) -> s = set && Oid.equal o oid)
                      l.Recovery.l_images))
                && Heap_file.exists (set_file t set) oid
              then delete t ~set oid)
            l.Recovery.l_inserts;
          List.iter
            (fun (set, oid, present, values) ->
              restore_image t
                { Txn.u_set = set; u_oid = oid; u_present = present; u_values = values })
            l.Recovery.l_images;
          free_txn_tombstones t l.Recovery.l_tombstones);
      ignore (Wal.append w (Wal.Txn_abort l.Recovery.l_txn));
      Wal.sync w;
      let s = Pager.stats t.pager in
      Stats.bump s Stats.Txn_aborts)
    losers;
  let stats = Pager.stats t.pager in
  Stats.bump stats Stats.Recovery_replays;
  Invariants.check_all t.engine;
  t

(* ------------------------------------------------------------------ *)
(* Streaming replication (replica side)                                *)

let open_replica ?frames ?backend path =
  let t = load ?frames ?backend path in
  t.replica_mode <- true;
  t

(* The apply runs under [Lockdep.isolated]: a replica is a distinct node,
   so locks held by the caller (e.g. the master's [Wal_sync] when an ack-mode
   tap drives this loopback) must not combine with the replica's own
   acquisition stack into cross-node lock-order edges. *)
let replica_apply t lsn record =
  if not t.replica_mode then invalid_arg "Db.replica_apply: not a replica";
  Lockdep.isolated @@ fun () ->
  let s =
    match t.repl_stream with
    | Some s -> s
    | None ->
        let s = Recovery.stream (recovery_applier t) in
        t.repl_stream <- Some s;
        s
  in
  (* Records redo through the normal entry points; [replaying] both
     suppresses (nonexistent) WAL appends and opens the [check_primary]
     gate for the duration of the apply. *)
  t.replaying <- true;
  Fun.protect
    ~finally:(fun () -> t.replaying <- false)
    (fun () -> Recovery.feed s lsn record);
  Stats.note_frame_applied (Pager.stats t.pager)

(* Failover: turn this replica into the epoch's new master.  Its applied
   prefix becomes the authoritative history — a fresh log is attached at
   [wal_path] with the LSN counter raised to [last_lsn] (the fork point),
   and the first record the new master appends is the [Epoch_change] that
   stamps the bumped epoch into the log stream, so every surviving replica
   adopts the epoch through the ordinary redo path. *)
let promote_replica t ~wal_path ~last_lsn =
  if not t.replica_mode then invalid_arg "Db.promote_replica: not a replica";
  (match t.repl_stream with
  | Some s -> (
      match Recovery.pending_failure s with
      | Some (lsn, msg) ->
          invalid_arg
            (Printf.sprintf
               "Db.promote_replica: record %Ld failed (%s) and its Abort \
                marker never arrived — this replica's prefix is not \
                promotable"
               lsn msg)
      | None -> ())
  | None -> ());
  t.replica_mode <- false;
  t.repl_stream <- None;
  (match t.wal with Some w -> Wal.close w | None -> ());
  let w = Wal.open_ ~stats:(Pager.stats t.pager) wal_path in
  Wal.ensure_lsn w last_lsn;
  t.wal <- Some w;
  t.epoch <- t.epoch + 1;
  ignore (Wal.append w (Wal.Epoch_change { epoch = t.epoch }));
  Wal.sync w;
  t.epoch

(* Rejoin: recover a deposed master's (truncated) image + log, then demote
   the result to a replica — the log handle is dropped, because from here
   on records arrive over the wire, not from local appends. *)
let recover_replica ?frames ?wal_path ?backend path =
  let t = recover ?frames ?wal_path ?backend path in
  (match t.wal with Some w -> Wal.close w | None -> ());
  t.wal <- None;
  t.replica_mode <- true;
  t

let space_report t =
  let sets =
    Hashtbl.fold (fun name hf acc -> (("set " ^ name), Heap_file.page_count hf) :: acc) t.sets []
  in
  let indexes =
    Hashtbl.fold (fun name rt acc -> (("index " ^ name), Btree.page_count rt.tree) :: acc) t.indexes []
  in
  let store = [ ("replication structures", Store.total_pages t.store) ] in
  List.sort compare (sets @ indexes) @ store

