(** Runtime lock-order recorder ("lockdep").

    The engine is single-domain today, but the path to OCaml 5 parallelism
    (ROADMAP "True parallelism on OCaml 5 domains") needs the implicit
    acquisition order — maintenance quantum -> transaction locks ->
    buffer-pool pin -> WAL sync — made explicit and asserted before any
    [Domain.spawn] lands.  This module records the acquisition edges the
    process actually takes and fails fast the moment an observed edge
    closes a cycle in the (class-granular) lock-order graph.

    The recorder is debug-flag-gated: it costs one atomic load per
    acquisition when disabled.  Tests enable it with {!set_enabled}; the
    [FIELDREP_LOCKDEP] environment variable ([1]/[true]/[yes]) enables it
    process-wide, which is how the CI fault matrix runs the whole suite
    under lockdep.

    Granularity is the lock {e class}, not the lock instance: one edge per
    ordered pair of classes, tracked per domain ({!acquire}/{!release}
    maintain per-domain held counts via [Domain.DLS], the edge graph is
    global under a mutex).  Class granularity is deliberately strict — it
    forbids instance-level tricks (lock A1 then A2 of the same class is
    fine; class A under class B and class B under class A is not, even on
    different instances), which is the discipline the static O1 rule
    checks too. *)

type cls =
  | Maint_job  (** a background-maintenance quantum is executing *)
  | Txn_lock  (** lock-manager resources held by some transaction *)
  | Pool_pin  (** a buffer-pool frame pin (or page latch) *)
  | Wal_sync  (** the WAL flush barrier ([Wal.sync] is executing) *)

val cls_name : cls -> string

exception Cycle of string
(** Raised by {!acquire}/{!note} when recording the new edge would close a
    cycle in the acquisition-order graph: a potential deadlock under real
    parallelism.  The message names both edges of the inversion. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val acquire : cls -> unit
(** Record edges [held -> cls] for every class currently held by this
    domain, then push [cls] on the domain's held multiset.  No-op when
    disabled. *)

val note : cls -> unit
(** Record edges like {!acquire} but do not push: for re-acquisitions that
    will not get their own {!release} (e.g. a transaction adding a lock to
    a set that is released wholesale by [release_all]). *)

val release : cls -> unit
(** Pop one held count of [cls] (clamped at zero, so toggling {!enabled}
    mid-flight cannot underflow). *)

val with_held : cls -> (unit -> 'a) -> 'a
(** [with_held c f] brackets [f] between {!acquire} and {!release}. *)

val isolated : (unit -> 'a) -> 'a
(** Run [f] with a fresh, empty held multiset, restoring the current one
    afterwards.  Used at node boundaries: when an in-process transport
    delivers a frame to a {e replica} inside the {e master}'s [Wal.sync],
    the replica's pins are taken under that replica's (future) locks, not
    the master's — without the scope reset, class-granular tracking would
    conflate the two nodes into a false [Wal_sync -> Pool_pin] edge. *)

val edges : unit -> (cls * cls) list
(** Every acquisition edge observed since the last {!reset}. *)

val reset : unit -> unit
(** Clear the edge graph (held counts are left alone). *)
