(** Total replacements for the partial [List] accessors banned by
    fieldrep-lint rule F1.

    [List.hd]/[List.nth] fail with an anonymous [Failure "hd"] that names
    neither the caller nor the invariant it relied on; these either return an
    option or raise [Invalid_argument] carrying the caller-supplied context
    string, so a broken invariant is diagnosable from the message alone. *)

val last : 'a list -> 'a option

val last_exn : what:string -> 'a list -> 'a
(** Raises [Invalid_argument] naming [what] on the empty list.  For call
    sites whose non-emptiness is a structural invariant (e.g. a compiled
    replication path always has at least one node). *)

val nth_exn : what:string -> 'a list -> int -> 'a
(** Raises [Invalid_argument] naming [what] and the index when out of
    bounds. *)
