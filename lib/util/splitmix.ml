(* Per-(n, theta) constants of the Gray et al. zipf approximation.  The
   zeta sum is an n-term float loop — recomputing it per draw made every
   skewed access at n = 10^6 a million-iteration loop, so draws cache
   their constants per generator (theta keyed by its bits: the cache must
   never conflate two floats that compare unequal). *)
type zipf_consts = { zetan : float; eta : float; alpha : float }

type t = {
  mutable state : int64;
  zipf_tbl : (int * int64, zipf_consts) Hashtbl.t;
}

let create seed = { state = Int64.of_int seed; zipf_tbl = Hashtbl.create 4 }
let copy t = { state = t.state; zipf_tbl = Hashtbl.copy t.zipf_tbl }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  assert (bound > 0);
  next_nonneg t mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let max53 = float_of_int (1 lsl 53) in
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. max53 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr

let sample_without_replacement t ~n ~k =
  assert (0 <= k && k <= n);
  if k = 0 then [||]
  else if 2 * k >= n then Array.sub (permutation t n) 0 k
  else begin
    (* Sparse rejection sampling: expected O(k) for k << n. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let zipf_consts t ~n ~theta =
  let key = (n, Int64.bits_of_float theta) in
  match Hashtbl.find_opt t.zipf_tbl key with
  | Some c -> c
  | None ->
      (* Gray et al. "Quickly generating billion-record synthetic
         databases": closed-form inverse for the zipf-like distribution.
         O(n) once per (n, theta); every draw after is O(1). *)
      let zeta m s =
        let acc = ref 0.0 in
        for i = 1 to m do
          acc := !acc +. (1.0 /. Float.pow (float_of_int i) s)
        done;
        !acc
      in
      let zetan = zeta n theta in
      let alpha = 1.0 /. (1.0 -. theta) in
      let eta =
        (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
        /. (1.0 -. (zeta 2 theta /. zetan))
      in
      let c = { zetan; eta; alpha } in
      Hashtbl.replace t.zipf_tbl key c;
      c

let zipf t ~n ~theta =
  assert (n > 0);
  (* At theta = 1 the closed form degenerates: alpha = 1/(1-theta) is
     infinite and every rank collapses to 0 through [int_of_float nan].
     Refuse loudly instead of skewing silently. *)
  if theta >= 1.0 then
    invalid_arg
      (Printf.sprintf "Splitmix.zipf: theta %g out of range [0, 1)" theta);
  if theta <= 0.0 then int t n
  else begin
    let c = zipf_consts t ~n ~theta in
    let u = float t 1.0 in
    let uz = u *. c.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 theta then 1
    else
      let v =
        float_of_int n *. Float.pow ((c.eta *. u) -. c.eta +. 1.0) c.alpha
      in
      let v = int_of_float v in
      if v >= n then n - 1 else if v < 0 then 0 else v
  end
