let last xs =
  let rec go = function [] -> None | [ x ] -> Some x | _ :: rest -> go rest in
  go xs

let last_exn ~what xs =
  match last xs with
  | Some x -> x
  | None -> invalid_arg (what ^ ": empty list")

let nth_exn ~what xs n =
  match List.nth_opt xs n with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "%s: index %d out of bounds" what n)
