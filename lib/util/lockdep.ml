type cls = Maint_job | Txn_lock | Pool_pin | Wal_sync

let ncls = 4
let idx = function Maint_job -> 0 | Txn_lock -> 1 | Pool_pin -> 2 | Wal_sync -> 3
let all_cls = [ Maint_job; Txn_lock; Pool_pin; Wal_sync ]

let cls_name = function
  | Maint_job -> "Maint_job"
  | Txn_lock -> "Txn_lock"
  | Pool_pin -> "Pool_pin"
  | Wal_sync -> "Wal_sync"

exception Cycle of string

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "FIELDREP_LOCKDEP" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* The observed-edge graph, row-major [from * ncls + to].  Tiny and fixed
   size, so cycle checks are a bounded DFS under the same mutex that
   guards insertion. *)
let graph = Array.make (ncls * ncls) false
let graph_mu = Mutex.create ()

(* Per-domain held multiset: count of outstanding acquisitions per class. *)
let held_key = Domain.DLS.new_key (fun () -> Array.make ncls 0)

(* Is [b] reachable from [a] in the current graph?  Caller holds
   [graph_mu]. *)
let reachable a b =
  let seen = Array.make ncls false in
  let rec go n =
    n = b
    || (not seen.(n))
       && begin
            seen.(n) <- true;
            let rec scan m =
              m < ncls && (((graph.((n * ncls) + m)) && go m) || scan (m + 1))
            in
            scan 0
          end
  in
  go a

let record_edge h c =
  Mutex.protect graph_mu (fun () ->
      if not graph.((idx h * ncls) + idx c) then begin
        if reachable (idx c) (idx h) then
          raise
            (Cycle
               (Printf.sprintf
                  "Lockdep: acquiring %s while holding %s closes a cycle — \
                   the reverse path %s -> %s was already observed; canonical \
                   order is Maint_job -> Txn_lock -> Pool_pin -> Wal_sync"
                  (cls_name c) (cls_name h) (cls_name c) (cls_name h)));
        graph.((idx h * ncls) + idx c) <- true
      end)

let note c =
  if enabled () then begin
    let held = Domain.DLS.get held_key in
    List.iter
      (fun h -> if h <> c && held.(idx h) > 0 then record_edge h c)
      all_cls
  end

let acquire c =
  if enabled () then begin
    note c;
    let held = Domain.DLS.get held_key in
    held.(idx c) <- held.(idx c) + 1
  end

let release c =
  if enabled () then begin
    let held = Domain.DLS.get held_key in
    if held.(idx c) > 0 then held.(idx c) <- held.(idx c) - 1
  end

let with_held c f =
  acquire c;
  Fun.protect ~finally:(fun () -> release c) f

let isolated f =
  if not (enabled ()) then f ()
  else begin
    let saved = Domain.DLS.get held_key in
    Domain.DLS.set held_key (Array.make ncls 0);
    Fun.protect ~finally:(fun () -> Domain.DLS.set held_key saved) f
  end

let edges () =
  Mutex.protect graph_mu (fun () ->
      List.concat_map
        (fun h ->
          List.filter_map
            (fun c ->
              if graph.((idx h * ncls) + idx c) then Some (h, c) else None)
            all_cls)
        all_cls)

let reset () =
  Mutex.protect graph_mu (fun () -> Array.fill graph 0 (ncls * ncls) false)
