exception Corrupt of string

let check_bounds buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    raise (Corrupt (Printf.sprintf "out of bounds: off=%d len=%d buflen=%d"
                      off len (Bytes.length buf)))

let put_u8 buf off v =
  check_bounds buf off 1;
  Bytes.unsafe_set buf off (Char.unsafe_chr (v land 0xff));
  off + 1

let get_u8 buf off =
  check_bounds buf off 1;
  (Char.code (Bytes.unsafe_get buf off), off + 1)

let put_u16 buf off v =
  check_bounds buf off 2;
  Bytes.set_uint16_le buf off (v land 0xffff);
  off + 2

let get_u16 buf off =
  check_bounds buf off 2;
  (Bytes.get_uint16_le buf off, off + 2)

let put_u32 buf off v =
  check_bounds buf off 4;
  assert (v >= 0 && v < 0x1_0000_0000);
  Bytes.set_int32_le buf off (Int32.of_int v);
  off + 4

let get_u32 buf off =
  check_bounds buf off 4;
  (Int32.to_int (Bytes.get_int32_le buf off) land 0xffff_ffff, off + 4)

let put_i64 buf off v =
  check_bounds buf off 8;
  Bytes.set_int64_le buf off v;
  off + 8

let get_i64 buf off =
  check_bounds buf off 8;
  (Bytes.get_int64_le buf off, off + 8)

let put_int buf off v = put_i64 buf off (Int64.of_int v)

let get_int buf off =
  let v, off = get_i64 buf off in
  (Int64.to_int v, off)

let put_string buf off s =
  let n = String.length s in
  if n >= 0x10000 then raise (Corrupt "string too long");
  let off = put_u16 buf off n in
  check_bounds buf off n;
  Bytes.blit_string s 0 buf off n;
  off + n

let get_string buf off =
  let n, off = get_u16 buf off in
  check_bounds buf off n;
  (Bytes.sub_string buf off n, off + n)

let string_size s = 2 + String.length s

let put_blob buf off s =
  let n = String.length s in
  let off = put_u32 buf off n in
  check_bounds buf off n;
  Bytes.blit_string s 0 buf off n;
  off + n

let get_blob buf off =
  let n, off = get_u32 buf off in
  check_bounds buf off n;
  (Bytes.sub_string buf off n, off + n)

let blob_size s = 4 + String.length s
