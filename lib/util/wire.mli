(** Little-endian binary codecs over [Bytes.t].

    All storage-level structures (records, link objects, B+-tree nodes)
    serialize through this module so that the on-page layout is defined in
    exactly one place.  Writers take a buffer and an offset and return the
    offset just past what they wrote; readers mirror that shape. *)

exception Corrupt of string
(** Raised by readers on malformed input (bad bounds, bad tags). *)

val put_u8 : Bytes.t -> int -> int -> int
(** [put_u8 buf off v] writes the low 8 bits of [v] at [off]. *)

val get_u8 : Bytes.t -> int -> int * int
(** [get_u8 buf off] is [(v, off')] with [0 <= v < 256]. *)

val put_u16 : Bytes.t -> int -> int -> int
(** [put_u16 buf off v] writes the low 16 bits of [v], little-endian. *)

val get_u16 : Bytes.t -> int -> int * int

val put_u32 : Bytes.t -> int -> int -> int
(** [put_u32 buf off v] writes the low 32 bits of [v]; [v] must be
    non-negative and fit in 32 bits. *)

val get_u32 : Bytes.t -> int -> int * int

val put_i64 : Bytes.t -> int -> int64 -> int
val get_i64 : Bytes.t -> int -> int64 * int

val put_int : Bytes.t -> int -> int -> int
(** [put_int] stores an OCaml [int] as a signed 64-bit value. *)

val get_int : Bytes.t -> int -> int * int

val put_string : Bytes.t -> int -> string -> int
(** [put_string buf off s] writes a [u16] length prefix followed by the raw
    bytes of [s].  [String.length s] must be < 65536. *)

val get_string : Bytes.t -> int -> string * int

val string_size : string -> int
(** Encoded size of a string (2 + length). *)

val put_blob : Bytes.t -> int -> string -> int
(** [put_blob buf off s] writes a [u32] length prefix followed by the raw
    bytes of [s] — the large-payload variant of {!put_string}, used for
    values (checkpoint images, raw log frames) that can exceed 64 KiB. *)

val get_blob : Bytes.t -> int -> string * int

val blob_size : string -> int
(** Encoded size of a blob (4 + length). *)

val check_bounds : Bytes.t -> int -> int -> unit
(** [check_bounds buf off len] raises {!Corrupt} unless [off, off+len) lies
    inside [buf]. *)
