(** Deterministic pseudo-random numbers (SplitMix64).

    Every experiment in the repository must be reproducible from a seed, so
    all randomness goes through this module rather than [Stdlib.Random]. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive.  Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0 .. n-1]. *)

val sample_without_replacement : t -> n:int -> k:int -> int array
(** [sample_without_replacement t ~n ~k] draws [k] distinct values from
    [0 .. n-1], in random order.  Requires [0 <= k <= n]. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] draws from a Zipf distribution over [0 .. n-1] with
    skew [theta] (0 = uniform).  Uses the standard rejection-free
    closed-form approximation of Gray et al.; adequate for workload skew
    generation.  Requires [theta < 1.0] (the closed form degenerates at 1:
    the exponent [1/(1-theta)] is infinite and every rank would silently
    collapse to 0) — raises [Invalid_argument] otherwise.  The O(n) zeta
    constants are cached per generator and (n, theta) pair, so a draw is
    O(1) after the first at a given configuration. *)
