(** Master/replica streaming replication: WAL shipping.

    The paper's field replication cheapens each read; this layer multiplies
    how many reads the system can serve, by shipping the master's
    write-ahead log to N read-only replicas (the Perst/Volante
    [TestReplic] shape).  A replica bootstraps from a checkpoint image,
    then applies raw WAL frames through the streaming redo path
    ({!Fieldrep.Db.replica_apply}) as the master's {!Fieldrep_wal.Wal.sync}
    makes them durable.

    {1 Shipping modes}

    - {!Master.mode.Async}: synced frames accumulate in a bounded
      per-replica buffer, shipped when the buffer passes its byte limit or
      at an explicit {!Master.pump}.  The master never waits; replica lag
      is visible in [Stats.replica_lag_bytes].
    - {!Master.mode.Ack}: every sync ships its batch immediately and
      blocks until {e every} live replica acknowledges the commit barrier —
      a commit is durable on all replicas before the mutation proceeds.

    {1 Failure handling}

    Every message carries an FNV-1a checksum, and each WAL frame carries
    its own.  A replica that sees a corrupt or missing frame answers with
    [Resend]; the master re-reads the tail from the log file — the tap
    only ships flushed frames, so the file always has them.  A replica
    that disconnects rejoins with [Hello] carrying its last applied LSN
    and catches up from the file, without a new snapshot.  A master never
    blocks on a dead replica: transport failures mark the peer dead and
    the workload continues. *)

module Master : sig
  type mode =
    | Async of { buffer_bytes : int }
        (** buffer synced frames per replica, ship on overflow or {!pump} *)
    | Ack  (** every sync blocks until all live replicas acknowledge *)

  val default_mode : mode
  (** [Async { buffer_bytes = 64 * 1024 }]. *)

  type peer
  (** One attached replica, as the master sees it. *)

  type t

  val create : ?mode:mode -> Fieldrep.Db.t -> t
  (** Install the shipping tap on the database's log.  Raises
      [Invalid_argument] if the database is not durable.  Create the
      master {e before} running the workload to replicate: frames
      appended before the tap exists reach replicas only through the
      bootstrap snapshot or a file-served catch-up. *)

  val attach : ?pump:(unit -> unit) -> t -> Transport.t -> peer
  (** Serve the replica's [Hello] on this transport: a fresh replica
      ([last_lsn = 0]) gets a checkpoint-image [Snapshot]; a rejoining one
      gets the log tail after its LSN.  [pump], for non-blocking
      transports only, is called while waiting for this peer's messages —
      it should let the in-process replica make progress
      ({!Replica.drain}).  Raises [Invalid_argument] while transactions
      are active (the snapshot must be transaction-consistent). *)

  val pump : t -> unit
  (** Flush async buffers and drain replica-to-master traffic (acks,
      resend requests).  Call between workload batches; ack mode largely
      drives itself from inside [Wal.sync]. *)

  val stats : t -> Fieldrep_storage.Stats.t
  val peer_count : t -> int
  (** Live (attached, not disconnected) replicas. *)

  val acked_lsn : peer -> int64
  val peer_alive : peer -> bool
end

module Replica : sig
  type t

  val connect : ?frames:int -> Transport.t -> t
  (** Send the initial [Hello{0}]; the snapshot bootstrap happens on the
      first {!step}/{!drain}/{!run} that sees the master's reply.
      [frames] sizes the bootstrapped database's buffer pool. *)

  val reconnect : t -> Transport.t -> unit
  (** Resume on a fresh transport after a disconnect: sends
      [Hello{last_applied}], so the master ships only the missing tail —
      the bootstrapped database is kept, not rebuilt. *)

  val db : t -> Fieldrep.Db.t
  (** The replica database — serve reads from it.  Raises
      [Invalid_argument] before the bootstrap snapshot has arrived. *)

  val last_applied : t -> int64
  (** LSN of the last frame applied. *)

  val commit_lsn : t -> int64
  (** Highest commit barrier received — everything at or below it is
      durable on the master. *)

  val step : t -> bool
  (** Process at most one pending message; [false] when none was
      pending.  Raises [Transport.Disconnected] on a drained dead link and
      [Fieldrep_wal.Recovery.Diverged] if the stream cannot be reconciled
      (re-bootstrap on a fresh connection in that case). *)

  val drain : t -> int
  (** {!step} until nothing is pending; the number of messages processed.
      A dead link ends the drain quietly — {!reconnect} resumes later. *)

  val run : t -> unit
  (** Blocking service loop for a socket transport: apply messages until
      the link dies. *)
end
