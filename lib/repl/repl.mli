(** Master/replica streaming replication with failover and self-healing.

    The paper's field replication cheapens each read; this layer multiplies
    how many reads the system can serve, by shipping the master's
    write-ahead log to N read-only replicas (the Perst/Volante
    [TestReplic] shape).  A replica bootstraps from a checkpoint image,
    then applies raw WAL frames through the streaming redo path
    ({!Fieldrep.Db.replica_apply}) as the master's {!Fieldrep_wal.Wal.sync}
    makes them durable.

    {1 Shipping modes}

    - {!Master.mode.Async}: synced frames accumulate in a bounded
      per-replica buffer, shipped when the buffer passes its byte limit or
      at an explicit {!Master.pump}.  The master never waits; replica lag
      is visible in [Stats.replica_lag_bytes].
    - {!Master.mode.Ack}: every sync ships its batch immediately and
      blocks until every live {e synchronous} replica acknowledges the
      commit barrier — bounded by the ack deadline (below).

    {1 Failure handling}

    Every message carries an FNV-1a checksum, and each WAL frame carries
    its own.  A replica that sees a corrupt or missing frame answers with
    [Resend]; the master re-reads the tail from the log file — the tap
    only ships flushed frames, so the file always has them.  A replica
    that disconnects rejoins with [Hello] carrying its last applied LSN
    and catches up from the file, without a new snapshot.  A master never
    blocks on a dead replica: transport failures mark the peer dead and
    the workload continues.

    {1 Liveness}

    Both ends run a deadline-based failure detector over an injected
    {!Clock}: the master [Ping]s its peers and walks each through
    [Live -> Suspect -> Dead] as replies go silent; replicas watch the
    master's heartbeats the same way.  Nothing here reads wall-clock time
    directly, so tests drive every deadline with a manual clock.

    {1 Graceful degradation}

    An ack-mode peer that misses the commit deadline is {e demoted} to
    async — the commit proceeds, the demotion is counted
    ([ack_demotions]) and logged — and is re-promoted once it has
    acknowledged everything.  A hung replica costs bounded latency, never
    availability.  Replicas offer a bounded-staleness read gate
    ({!Replica.set_max_lag}) that fails reads with {!Replica.Stale} when
    the replica has fallen too far behind.

    {1 Failover and fencing}

    Every message carries an epoch.  A replica promoted with
    {!Replica.promote} bumps the epoch (durably, via an [Epoch_change]
    log record); from then on, traffic from older epochs is rejected with
    [Fenced], so a {e zombie} master — one that lost its replicas but
    keeps running — can no longer advance replicated state.  A deposed
    master stops shipping the moment it sees a newer epoch.  An old
    master rejoins as a replica by truncating its unshipped log tail back
    to the new master's fork point (the [Reset] negotiation). *)

(** Peer liveness as seen by the failure detector. *)
type state = Live | Suspect | Dead

(** Failure-detector deadlines, in clock ticks. *)
type liveness = {
  heartbeat_every : int;  (** send a [Ping] when this long since the last *)
  suspect_after : int;  (** silence before [Live] decays to [Suspect] *)
  dead_after : int;  (** silence before the peer is declared [Dead] *)
}

val default_liveness : liveness
(** [{heartbeat_every = 50; suspect_after = 120; dead_after = 250}]. *)

module Master : sig
  type mode =
    | Async of { buffer_bytes : int }
        (** buffer synced frames per replica, ship on overflow or {!pump} *)
    | Ack
        (** every sync blocks until all live synchronous replicas
            acknowledge *)

  val default_mode : mode
  (** [Async { buffer_bytes = 64 * 1024 }]. *)

  type peer
  (** One attached replica, as the master sees it. *)

  type t

  val create :
    ?mode:mode ->
    ?clock:Clock.t ->
    ?liveness:liveness ->
    ?ack_deadline:int ->
    ?on_event:(string -> unit) ->
    ?fork:int64 ->
    Fieldrep.Db.t ->
    t
  (** Install the shipping tap on the database's log.  Raises
      [Invalid_argument] if the database is not durable.  Create the
      master {e before} running the workload to replicate: frames
      appended before the tap exists reach replicas only through the
      bootstrap snapshot or a file-served catch-up.

      [ack_deadline] (default 200 ticks) bounds how long an ack-mode
      commit waits for one peer before demoting it to async.  [on_event]
      receives one human-readable line per noteworthy transition (peer
      death, suspicion, demotion, deposition); the default drops them.
      [fork] is the LSN this master's log file starts above —
      {!Replica.promote} sets it; leave it [0L] for a genesis master.
      The epoch is adopted from [Fieldrep.Db.epoch]. *)

  val attach : ?pump:(unit -> unit) -> t -> Transport.t -> peer
  (** Serve the replica's [Hello] on this transport: a fresh replica
      ([last_lsn = 0]) — or one whose history predates the fork point,
      which the log file cannot serve — gets a checkpoint-image
      [Snapshot]; a rejoining one gets the log tail after its LSN.  A
      rejoiner whose log {e diverged} (it ran as a master in an older
      epoch) is first ordered to [Reset] back to the fork point and must
      re-[Hello].  [pump], for non-blocking transports only, is called
      while waiting for this peer's messages — it should let the
      in-process replica make progress ({!Replica.drain}).  Raises
      [Invalid_argument] while transactions are active (the snapshot must
      be transaction-consistent), or if the peer fences us from a newer
      epoch. *)

  val pump : t -> unit
  (** Flush async buffers, re-ship the durability barrier to lagging
      peers, drain replica-to-master traffic (acks, resend requests), and
      re-promote caught-up demoted peers.  Call between workload batches;
      ack mode largely drives itself from inside [Wal.sync]. *)

  val tick : t -> unit
  (** The liveness beat: {!pump}, then advance each peer's
      [Live -> Suspect -> Dead] state from heartbeat deadlines, then send
      [Ping]s as the heartbeat interval expires.  A master that is never
      ticked never suspects anyone. *)

  val stats : t -> Fieldrep_storage.Stats.t
  val peer_count : t -> int
  (** Live (attached, not disconnected) replicas. *)

  val epoch : t -> int
  val fork : t -> int64

  val is_deposed : t -> bool
  (** True once a newer epoch fenced this master; it ships nothing more
      (local writes still run — that divergence is exactly what fencing
      protects replicas from). *)

  val acked_lsn : peer -> int64
  val peer_alive : peer -> bool
  val peer_state : peer -> state
  val peer_synchronous : peer -> bool
  (** False while demoted to async by a missed ack deadline. *)
end

module Replica : sig
  type t

  exception Stale of string
  (** Raised by the read gate when the replica lags the master's shipped
      log by more than the configured bound. *)

  val connect :
    ?frames:int ->
    ?clock:Clock.t ->
    ?liveness:liveness ->
    ?on_reset:(fork:int64 -> Fieldrep.Db.t) ->
    Transport.t ->
    t
  (** Send the initial [Hello{0}]; the snapshot bootstrap happens on the
      first {!step}/{!drain}/{!run} that sees the master's reply.
      [frames] sizes the bootstrapped database's buffer pool.  [on_reset]
      handles a [Reset] order — truncate the local log above [fork],
      reopen, and return the reopened db (see
      [Fieldrep_wal.Wal.truncate_file] and [Fieldrep.Db.recover_replica]);
      without it a [Reset] falls back to a full re-bootstrap. *)

  val rejoin :
    ?frames:int ->
    ?clock:Clock.t ->
    ?liveness:liveness ->
    ?on_reset:(fork:int64 -> Fieldrep.Db.t) ->
    db:Fieldrep.Db.t ->
    last_applied:int64 ->
    Transport.t ->
    t
  (** Wrap an existing replica-mode database — a restarted replica, or an
      old master reopened with [Fieldrep.Db.recover_replica] — and [Hello]
      the master with [last_applied] (at the db's own epoch).  The master
      ships the missing tail, re-bootstraps if the tail predates its fork
      point, or orders a [Reset] first if the log diverged. *)

  val reconnect : t -> Transport.t -> unit
  (** Resume on a fresh transport after a disconnect: sends
      [Hello{last_applied}], so the master ships only the missing tail —
      the bootstrapped database is kept, not rebuilt.  Counts one
      [reconnects] tick. *)

  val db : t -> Fieldrep.Db.t
  (** The replica database — serve reads from it.  Raises
      [Invalid_argument] before the bootstrap snapshot has arrived. *)

  val last_applied : t -> int64
  (** LSN of the last frame applied. *)

  val commit_lsn : t -> int64
  (** Highest commit barrier received — everything at or below it is
      durable on the master. *)

  val epoch : t -> int
  val master_state : t -> state
  val set_on_reset : t -> (fork:int64 -> Fieldrep.Db.t) option -> unit

  val lag_bytes : t -> int64
  (** How far behind the master's shipped log this replica is, in WAL
      bytes — the master's cumulative byte counter (reported on
      [Snapshot]/[Commit]/[Ping]) minus bytes applied here.  Zero when
      caught up; the scale restarts at each epoch. *)

  val set_max_lag : t -> int option -> unit
  (** Arm (or disarm, with [None]) the bounded-staleness read gate. *)

  val check_staleness : t -> unit
  (** Raises {!Stale} when the gate is armed and {!lag_bytes} exceeds
      it. *)

  val read : t -> (Fieldrep.Db.t -> 'a) -> 'a
  (** [read r f] applies [f] to the replica database after
      {!check_staleness} — the gated read entry point. *)

  val step : t -> bool
  (** Process at most one pending message; [false] when none was
      pending.  Raises [Transport.Disconnected] on a drained dead link and
      [Fieldrep_wal.Recovery.Diverged] if the stream cannot be reconciled
      (re-bootstrap on a fresh connection in that case). *)

  val drain : t -> int
  (** {!step} until nothing is pending; the number of messages processed.
      A dead link ends the drain quietly — {!reconnect} resumes later. *)

  val tick : t -> unit
  (** Advance the master's [Live -> Suspect -> Dead] state from its
      heartbeat deadline.  Any received message resets it to [Live];
      promotion decisions key off {!master_state}. *)

  val fence_link : t -> Transport.t -> int
  (** Drain a link this replica no longer follows (e.g. the old master's
      transport after a failover), answering every lower-epoch payload
      with [Fenced] and applying nothing.  Returns how many payloads were
      fenced. *)

  val promote :
    ?mode:Master.mode ->
    ?clock:Clock.t ->
    ?liveness:liveness ->
    ?ack_deadline:int ->
    ?on_event:(string -> unit) ->
    t ->
    wal_path:string ->
    Master.t
  (** Failover: make this replica the master of the next epoch.  Opens a
      fresh WAL at [wal_path] positioned at the replica's applied prefix
      (the fork point), durably logs the epoch bump ([Epoch_change]),
      counts one [failovers] tick, and returns the new master engine with
      [fork] set so rejoiners above the fork catch up from the file and
      older ones re-bootstrap.  Raises [Invalid_argument] if the
      replica's stream parked a failed record whose [Abort] marker never
      arrived — that prefix is not promotable. *)

  val run : t -> unit
  (** Blocking service loop for a socket transport: apply messages until
      the link dies or the master is declared [Dead], ticking the failure
      detector while idle. *)
end
