(* Monotonic tick source for liveness deadlines.

   Failure detection is deadline arithmetic over an abstract tick counter,
   never wall-clock reads in the engine itself: tests drive a [manual]
   clock so every heartbeat miss, suspicion and promotion happens at a
   deterministic tick, while [wall ()] maps ticks to milliseconds of
   [Unix.gettimeofday] for the CLI processes in bin/main.ml. *)

type t = { now : unit -> int }

let now t = t.now ()

type manual = { mutable tick : int }

let manual () = { tick = 0 }
let advance m ~by = m.tick <- m.tick + max 0 by
let of_manual m = { now = (fun () -> m.tick) }

let wall () =
  let t0 = Unix.gettimeofday () in
  { now = (fun () -> int_of_float ((Unix.gettimeofday () -. t0) *. 1000.)) }
