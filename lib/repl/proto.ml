module Wire = Fieldrep_util.Wire
module Checksum = Fieldrep_storage.Checksum

type msg =
  | Hello of { last_lsn : int64 }
  | Snapshot of { lsn : int64; image : string }
  | Frames of Bytes.t list
  | Commit of { lsn : int64 }
  | Ack of { lsn : int64 }
  | Resend of { after : int64 }

let tag_of = function
  | Hello _ -> 0
  | Snapshot _ -> 1
  | Frames _ -> 2
  | Commit _ -> 3
  | Ack _ -> 4
  | Resend _ -> 5

let body_size = function
  | Hello _ | Commit _ | Ack _ | Resend _ -> 8
  | Snapshot { image; _ } -> 8 + Wire.blob_size image
  | Frames frames ->
      List.fold_left (fun acc f -> acc + 4 + Bytes.length f) 4 frames

let put_body buf off = function
  | Hello { last_lsn } -> Wire.put_i64 buf off last_lsn
  | Commit { lsn } | Ack { lsn } -> Wire.put_i64 buf off lsn
  | Resend { after } -> Wire.put_i64 buf off after
  | Snapshot { lsn; image } ->
      let off = Wire.put_i64 buf off lsn in
      Wire.put_blob buf off image
  | Frames frames ->
      let off = Wire.put_u32 buf off (List.length frames) in
      List.fold_left
        (fun off f -> Wire.put_blob buf off (Bytes.to_string f))
        off frames

let encode msg =
  let blen = body_size msg in
  let buf = Bytes.create (4 + 1 + blen) in
  let off = Wire.put_u32 buf 0 0 (* crc patched below *) in
  let off = Wire.put_u8 buf off (tag_of msg) in
  let off = put_body buf off msg in
  assert (off = 4 + 1 + blen);
  ignore (Wire.put_u32 buf 0 (Checksum.fnv1a32 buf 4 (1 + blen)));
  Bytes.unsafe_to_string buf

let decode s =
  let buf = Bytes.of_string s in
  if Bytes.length buf < 5 then raise (Wire.Corrupt "Proto: short message");
  let want_crc, off = Wire.get_u32 buf 0 in
  if Checksum.fnv1a32 buf 4 (Bytes.length buf - 4) <> want_crc then
    raise (Wire.Corrupt "Proto: message checksum mismatch");
  let tag, off = Wire.get_u8 buf off in
  let msg, off =
    match tag with
    | 0 ->
        let last_lsn, off = Wire.get_i64 buf off in
        (Hello { last_lsn }, off)
    | 1 ->
        let lsn, off = Wire.get_i64 buf off in
        let image, off = Wire.get_blob buf off in
        (Snapshot { lsn; image }, off)
    | 2 ->
        let count, off = Wire.get_u32 buf off in
        (* Each frame costs at least its 4-byte length prefix; a count that
           could not fit is a corrupt (or hostile) header, reject before
           allocating. *)
        if count * 4 > Bytes.length buf - off then
          raise (Wire.Corrupt "Proto: absurd frame count");
        let off = ref off in
        let frames =
          List.init count (fun _ ->
              let f, o = Wire.get_blob buf !off in
              off := o;
              Bytes.of_string f)
        in
        (Frames frames, !off)
    | 3 ->
        let lsn, off = Wire.get_i64 buf off in
        (Commit { lsn }, off)
    | 4 ->
        let lsn, off = Wire.get_i64 buf off in
        (Ack { lsn }, off)
    | 5 ->
        let after, off = Wire.get_i64 buf off in
        (Resend { after }, off)
    | t -> raise (Wire.Corrupt (Printf.sprintf "Proto: unknown tag %d" t))
  in
  if off <> Bytes.length buf then
    raise (Wire.Corrupt "Proto: trailing bytes");
  msg

let pp fmt = function
  | Hello { last_lsn } -> Format.fprintf fmt "Hello{last_lsn=%Ld}" last_lsn
  | Snapshot { lsn; image } ->
      Format.fprintf fmt "Snapshot{lsn=%Ld; %d bytes}" lsn (String.length image)
  | Frames frames -> Format.fprintf fmt "Frames{%d}" (List.length frames)
  | Commit { lsn } -> Format.fprintf fmt "Commit{lsn=%Ld}" lsn
  | Ack { lsn } -> Format.fprintf fmt "Ack{lsn=%Ld}" lsn
  | Resend { after } -> Format.fprintf fmt "Resend{after=%Ld}" after
