module Wire = Fieldrep_util.Wire
module Checksum = Fieldrep_storage.Checksum

type msg =
  | Hello of { last_lsn : int64 }
  | Snapshot of { lsn : int64; bytes : int64; image : string }
  | Frames of Bytes.t list
  | Commit of { lsn : int64; bytes : int64 }
  | Ack of { lsn : int64 }
  | Resend of { after : int64 }
  | Ping of { lsn : int64; bytes : int64 }
  | Pong of { lsn : int64 }
  | Fenced
  | Reset of { fork : int64 }

let tag_of = function
  | Hello _ -> 0
  | Snapshot _ -> 1
  | Frames _ -> 2
  | Commit _ -> 3
  | Ack _ -> 4
  | Resend _ -> 5
  | Ping _ -> 6
  | Pong _ -> 7
  | Fenced -> 8
  | Reset _ -> 9

let body_size = function
  | Hello _ | Ack _ | Resend _ | Pong _ | Reset _ -> 8
  | Commit _ | Ping _ -> 16
  | Fenced -> 0
  | Snapshot { image; _ } -> 16 + Wire.blob_size image
  | Frames frames ->
      List.fold_left (fun acc f -> acc + 4 + Bytes.length f) 4 frames

let put_body buf off = function
  | Hello { last_lsn } -> Wire.put_i64 buf off last_lsn
  | Ack { lsn } | Pong { lsn } -> Wire.put_i64 buf off lsn
  | Resend { after } -> Wire.put_i64 buf off after
  | Reset { fork } -> Wire.put_i64 buf off fork
  | Fenced -> off
  | Commit { lsn; bytes } | Ping { lsn; bytes } ->
      let off = Wire.put_i64 buf off lsn in
      Wire.put_i64 buf off bytes
  | Snapshot { lsn; bytes; image } ->
      let off = Wire.put_i64 buf off lsn in
      let off = Wire.put_i64 buf off bytes in
      Wire.put_blob buf off image
  | Frames frames ->
      let off = Wire.put_u32 buf off (List.length frames) in
      List.fold_left
        (fun off f -> Wire.put_blob buf off (Bytes.to_string f))
        off frames

(* Envelope: [crc:u32 | epoch:u32 | tag:u8 | body], crc over epoch+tag+body.
   The epoch is in the envelope, not per-message, so *every* payload — data,
   heartbeat or ack — is fenceable: a receiver compares the envelope epoch
   against its own before it even dispatches on the tag. *)

let encode ~epoch msg =
  if epoch < 0 then invalid_arg "Proto.encode: negative epoch";
  let blen = body_size msg in
  let buf = Bytes.create (4 + 4 + 1 + blen) in
  let off = Wire.put_u32 buf 0 0 (* crc patched below *) in
  let off = Wire.put_u32 buf off epoch in
  let off = Wire.put_u8 buf off (tag_of msg) in
  let off = put_body buf off msg in
  assert (off = 4 + 4 + 1 + blen);
  ignore (Wire.put_u32 buf 0 (Checksum.fnv1a32 buf 4 (4 + 1 + blen)));
  Bytes.unsafe_to_string buf

let decode s =
  let buf = Bytes.of_string s in
  if Bytes.length buf < 9 then raise (Wire.Corrupt "Proto: short message");
  let want_crc, off = Wire.get_u32 buf 0 in
  if Checksum.fnv1a32 buf 4 (Bytes.length buf - 4) <> want_crc then
    raise (Wire.Corrupt "Proto: message checksum mismatch");
  let epoch, off = Wire.get_u32 buf off in
  let tag, off = Wire.get_u8 buf off in
  let msg, off =
    match tag with
    | 0 ->
        let last_lsn, off = Wire.get_i64 buf off in
        (Hello { last_lsn }, off)
    | 1 ->
        let lsn, off = Wire.get_i64 buf off in
        let bytes, off = Wire.get_i64 buf off in
        let image, off = Wire.get_blob buf off in
        (Snapshot { lsn; bytes; image }, off)
    | 2 ->
        let count, off = Wire.get_u32 buf off in
        (* Each frame costs at least its 4-byte length prefix; a count that
           could not fit is a corrupt (or hostile) header, reject before
           allocating. *)
        if count * 4 > Bytes.length buf - off then
          raise (Wire.Corrupt "Proto: absurd frame count");
        let off = ref off in
        let frames =
          List.init count (fun _ ->
              let f, o = Wire.get_blob buf !off in
              off := o;
              Bytes.of_string f)
        in
        (Frames frames, !off)
    | 3 ->
        let lsn, off = Wire.get_i64 buf off in
        let bytes, off = Wire.get_i64 buf off in
        (Commit { lsn; bytes }, off)
    | 4 ->
        let lsn, off = Wire.get_i64 buf off in
        (Ack { lsn }, off)
    | 5 ->
        let after, off = Wire.get_i64 buf off in
        (Resend { after }, off)
    | 6 ->
        let lsn, off = Wire.get_i64 buf off in
        let bytes, off = Wire.get_i64 buf off in
        (Ping { lsn; bytes }, off)
    | 7 ->
        let lsn, off = Wire.get_i64 buf off in
        (Pong { lsn }, off)
    | 8 -> (Fenced, off)
    | 9 ->
        let fork, off = Wire.get_i64 buf off in
        (Reset { fork }, off)
    | t -> raise (Wire.Corrupt (Printf.sprintf "Proto: unknown tag %d" t))
  in
  if off <> Bytes.length buf then
    raise (Wire.Corrupt "Proto: trailing bytes");
  (epoch, msg)

let pp fmt = function
  | Hello { last_lsn } -> Format.fprintf fmt "Hello{last_lsn=%Ld}" last_lsn
  | Snapshot { lsn; bytes; image } ->
      Format.fprintf fmt "Snapshot{lsn=%Ld; bytes=%Ld; %d bytes}" lsn bytes
        (String.length image)
  | Frames frames -> Format.fprintf fmt "Frames{%d}" (List.length frames)
  | Commit { lsn; bytes } ->
      Format.fprintf fmt "Commit{lsn=%Ld; bytes=%Ld}" lsn bytes
  | Ack { lsn } -> Format.fprintf fmt "Ack{lsn=%Ld}" lsn
  | Resend { after } -> Format.fprintf fmt "Resend{after=%Ld}" after
  | Ping { lsn; bytes } ->
      Format.fprintf fmt "Ping{lsn=%Ld; bytes=%Ld}" lsn bytes
  | Pong { lsn } -> Format.fprintf fmt "Pong{lsn=%Ld}" lsn
  | Fenced -> Format.fprintf fmt "Fenced"
  | Reset { fork } -> Format.fprintf fmt "Reset{fork=%Ld}" fork
