(** Monotonic tick abstraction for liveness deadlines.

    The replication engine never reads the wall clock directly: it asks an
    injected {!t} for the current tick and compares against deadlines.
    Tests inject a {!manual} clock and advance it explicitly, so failure
    detection, ack demotion and failover are fully deterministic; the CLI
    uses {!wall}, whose ticks are milliseconds since the clock was made. *)

type t

val now : t -> int
(** Current tick.  Monotonic non-decreasing. *)

type manual

val manual : unit -> manual
(** A test clock starting at tick 0. *)

val advance : manual -> by:int -> unit
(** Advance the manual clock by [by] ticks (negative values are ignored). *)

val of_manual : manual -> t
(** View a manual clock as a tick source; later {!advance}s are visible. *)

val wall : unit -> t
(** Wall-clock ticks: milliseconds elapsed since this call. *)
