(** Seeded exponential backoff with full jitter, in clock ticks.

    Reconnect loops ask {!next_delay} how long to wait before the next
    attempt; each call doubles the ceiling (from [base] up to [cap]) and
    draws the actual delay uniformly below it, so a herd of reconnecting
    replicas spreads out instead of retrying in lockstep.  Seeded, so
    tests replay the exact schedule. *)

type t

val create : ?base:int -> ?cap:int -> seed:int -> unit -> t
(** [base] is the first ceiling (default 10 ticks), [cap] the largest
    (default 5000). *)

val next_delay : t -> int
(** Delay in ticks before the next attempt: uniform in
    [0, min (base * 2^n) cap] for the n-th call since the last {!reset}. *)

val reset : t -> unit
(** Call after a successful connection: the next failure starts over at
    the [base] ceiling. *)

val attempts : t -> int
(** Attempts since the last {!reset}. *)
