(** Replication wire protocol.

    Six message kinds cover the whole master/replica conversation:

    {v replica -> master   Hello{last_lsn}      who I am, where I stopped
       master  -> replica  Snapshot{lsn;image}  bootstrap: checkpoint image
       master  -> replica  Frames[...]          raw WAL frames, LSN order
       master  -> replica  Commit{lsn}          durability barrier marker
       replica -> master   Ack{lsn}             applied through this LSN
       replica -> master   Resend{after}        gap or corruption: re-ship v}

    Each message travels as one transport payload:
    [crc:u32 | tag:u8 | body], where [crc] is the same FNV-1a-32 the WAL
    and the disk use, over tag+body.  The transport frames lengths; the
    checksum catches corruption and truncation inside a delivered payload.
    [Frames] bodies carry {e raw WAL frames} exactly as
    [Fieldrep_wal.Wal.encode_frame] produced them — each frame is itself
    checksummed, so a replica re-validates twice before applying. *)

type msg =
  | Hello of { last_lsn : int64 }
      (** replica's first message: [0L] asks for a {!Snapshot} bootstrap,
          a later LSN asks for catch-up from there (rejoin) *)
  | Snapshot of { lsn : int64; image : string }
      (** a [Db.save] image stamped with the log position it reflects *)
  | Frames of Bytes.t list  (** raw WAL frames, in LSN order *)
  | Commit of { lsn : int64 }
      (** everything through [lsn] is durable on the master; the replica
          always answers with an {!Ack} *)
  | Ack of { lsn : int64 }  (** the replica has applied through [lsn] *)
  | Resend of { after : int64 }
      (** the replica saw a gap or a corrupt frame: re-ship everything
          after [after] *)

val encode : msg -> string

val decode : string -> msg
(** Raises [Fieldrep_util.Wire.Corrupt] on a short, truncated, checksum-
    failing or trailing-garbage payload. *)

val pp : Format.formatter -> msg -> unit
