(** Replication wire protocol.

    Ten message kinds cover the whole master/replica conversation,
    including liveness and failover:

    {v replica -> master   Hello{last_lsn}      who I am, where I stopped
       master  -> replica  Snapshot{lsn;bytes;image}  bootstrap image
       master  -> replica  Frames[...]          raw WAL frames, LSN order
       master  -> replica  Commit{lsn;bytes}    durability barrier marker
       replica -> master   Ack{lsn}             applied through this LSN
       replica -> master   Resend{after}        gap or corruption: re-ship
       master  -> replica  Ping{lsn;bytes}      heartbeat + log position
       replica -> master   Pong{lsn}            heartbeat reply
       either  -> either   Fenced               your epoch is stale, stop
       master  -> replica  Reset{fork}          truncate above fork, rejoin v}

    Each message travels as one transport payload:
    [crc:u32 | epoch:u32 | tag:u8 | body], where [crc] is the same
    FNV-1a-32 the WAL and the disk use, over epoch+tag+body.  The
    transport frames lengths; the checksum catches corruption and
    truncation inside a delivered payload.

    The {e epoch} is the fencing token (one promotion = one epoch bump).
    It lives in the envelope rather than in any message body so every
    payload is fenceable before dispatch: a receiver drops or answers
    {!Fenced} to anything from a lower epoch, which is how a zombie
    master's frames and a stale replica's acks are kept out of the state.

    [Frames] bodies carry {e raw WAL frames} exactly as
    [Fieldrep_wal.Wal.encode_frame] produced them — each frame is itself
    checksummed, so a replica re-validates twice before applying.

    [bytes] on {!Snapshot}/{!Commit}/{!Ping} is the master's cumulative
    WAL byte count at that position; replicas difference it against the
    bytes they have applied to bound read staleness. *)

type msg =
  | Hello of { last_lsn : int64 }
      (** replica's first message: [0L] asks for a {!Snapshot} bootstrap,
          a later LSN asks for catch-up from there (rejoin) *)
  | Snapshot of { lsn : int64; bytes : int64; image : string }
      (** a [Db.save] image stamped with the log position and cumulative
          WAL bytes it reflects *)
  | Frames of Bytes.t list  (** raw WAL frames, in LSN order *)
  | Commit of { lsn : int64; bytes : int64 }
      (** everything through [lsn] ([bytes] cumulative WAL bytes) is
          durable on the master; the replica always answers an {!Ack} *)
  | Ack of { lsn : int64 }  (** the replica has applied through [lsn] *)
  | Resend of { after : int64 }
      (** the replica saw a gap or a corrupt frame: re-ship everything
          after [after] *)
  | Ping of { lsn : int64; bytes : int64 }
      (** master heartbeat: alive, log ends at [lsn] / [bytes] *)
  | Pong of { lsn : int64 }
      (** replica heartbeat reply: alive, applied through [lsn] *)
  | Fenced
      (** the sender's envelope epoch is newer than yours: you are stale.
          A fenced master stops shipping; a fenced replica re-syncs. *)
  | Reset of { fork : int64 }
      (** the receiver's log diverged above [fork] (it was a master in an
          older epoch): truncate everything above [fork] and re-Hello *)

val encode : epoch:int -> msg -> string
(** Raises [Invalid_argument] on a negative epoch. *)

val decode : string -> int * msg
(** [(epoch, msg)].  Raises [Fieldrep_util.Wire.Corrupt] on a short,
    truncated, checksum-failing or trailing-garbage payload. *)

val pp : Format.formatter -> msg -> unit
