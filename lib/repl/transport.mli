(** Message transport between a master and one replica.

    A transport moves opaque payloads (encoded {!Proto} messages) in both
    directions, preserving order per direction.  Two implementations: an
    in-process {!loopback} pair with deterministic fault injection for
    tests and benchmarks, and {!of_socket} over a Unix file descriptor for
    the CLI's [master]/[replica] subcommands. *)

exception Disconnected
(** The link is gone.  [send] raises it on a dead link; [recv] raises it
    once the already-delivered backlog is drained. *)

type t = {
  send : string -> unit;  (** enqueue one payload; raises {!Disconnected} *)
  recv : block:bool -> string option;
      (** next payload, if any.  [~block:false] never waits.
          [~block:true] waits only when {!field-blocking} is [true];
          a loopback cannot wait (single process) and returns [None],
          relying on the caller to pump the peer. *)
  close : unit -> unit;
  blocking : bool;  (** whether [recv ~block:true] actually blocks *)
  label : string;  (** for diagnostics *)
}

(** Deterministic fault injection on a loopback endpoint's {e sends}.
    Counters are one-shot: each fault consumes one unit as payloads pass
    through.  Mutate mid-test to inject at an exact point. *)
type faults = {
  mutable drop : int;  (** lose the next N payloads silently *)
  mutable duplicate : int;  (** deliver the next N payloads twice *)
  mutable corrupt : int;  (** flip a byte in the next N payloads *)
  mutable truncate : int;  (** deliver only half of the next N payloads *)
  mutable disconnect_after : int;
      (** after this many further sends, kill the link mid-send (that
          payload is lost); [-1] = never *)
}

val no_faults : unit -> faults

val loopback : unit -> t * t * faults * faults
(** [loopback ()] is [(a, b, faults_a, faults_b)]: two connected endpoints
    backed by in-process queues — what [a] sends (filtered through
    [faults_a]) arrives at [b.recv], and vice versa.  Closing either end
    kills the link for both; payloads delivered before the disconnect
    remain readable, like bytes already in a socket buffer. *)

val of_socket : ?label:string -> Unix.file_descr -> t
(** Wrap a connected stream socket: each payload travels as a u32-le
    length prefix plus the raw bytes.  EOF and socket errors surface as
    {!Disconnected}. *)
