(** Message transport between a master and one replica.

    A transport moves opaque payloads (encoded {!Proto} messages) in both
    directions, preserving order per direction.  Two implementations: an
    in-process {!loopback} pair with deterministic fault injection for
    tests and benchmarks, and {!of_socket} over a Unix file descriptor for
    the CLI's [master]/[replica] subcommands. *)

exception Disconnected
(** The link is gone.  [send] raises it on a dead link; [recv] raises it
    once the already-delivered backlog is drained. *)

type t = {
  send : string -> unit;  (** enqueue one payload; raises {!Disconnected} *)
  recv : block:bool -> string option;
      (** next payload, if any.  [~block:false] never waits.
          [~block:true] waits only when {!field-blocking} is [true];
          a loopback cannot wait (single process) and returns [None],
          relying on the caller to pump the peer. *)
  close : unit -> unit;
  blocking : bool;  (** whether [recv ~block:true] actually blocks *)
  label : string;  (** for diagnostics *)
}

(** Fault injection on a loopback endpoint's {e sends}, two layers:

    {b One-shot counters} ([drop], [duplicate], [corrupt], [truncate],
    [hang], [disconnect_after]) each consume one unit as payloads pass
    through — mutate mid-test to inject at an exact point.

    {b Seeded schedules} ([p_*] probabilities drawn from [rng], set via
    {!seed_schedule}) decide independently per payload, so a long run
    sees a reproducible random mix of faults.  One-shot counters take
    precedence over the probabilistic draw for the same fault kind.

    A {e hang} is a bounded delay-and-reorder, not a loss: the payload is
    held and delivered after [hang_for] further sends on the same
    endpoint (duplicates/resends keep the link moving, so held payloads
    eventually arrive late and out of order — exactly the case the
    receiver's gap/duplicate handling must absorb). *)
type faults = {
  mutable drop : int;  (** lose the next N payloads silently *)
  mutable duplicate : int;  (** deliver the next N payloads twice *)
  mutable corrupt : int;  (** flip a byte in the next N payloads *)
  mutable truncate : int;  (** deliver only half of the next N payloads *)
  mutable hang : int;  (** hold the next N payloads for [hang_for] sends *)
  mutable disconnect_after : int;
      (** after this many further sends, kill the link mid-send (that
          payload is lost); [-1] = never *)
  mutable p_drop : float;  (** per-payload drop probability *)
  mutable p_duplicate : float;  (** per-payload duplication probability *)
  mutable p_corrupt : float;  (** per-payload corruption probability *)
  mutable p_hang : float;  (** per-payload hold probability *)
  mutable hang_for : int;  (** sends a held payload waits before delivery *)
  mutable rng : Fieldrep_util.Splitmix.t option;
      (** draws for the [p_*] probabilities; [None] disables them *)
  mutable held : (int * string) list;
      (** internal: held payloads and their remaining delay *)
}

val no_faults : unit -> faults
(** All counters zero, no schedule: a clean link. *)

val seed_schedule :
  ?p_drop:float ->
  ?p_duplicate:float ->
  ?p_corrupt:float ->
  ?p_hang:float ->
  ?hang_for:int ->
  faults ->
  seed:int ->
  unit
(** Arm a seeded probabilistic schedule on this endpoint (probabilities
    default to 0).  Deterministic for a given seed and send sequence. *)

val loopback : unit -> t * t * faults * faults
(** [loopback ()] is [(a, b, faults_a, faults_b)]: two connected endpoints
    backed by in-process queues — what [a] sends (filtered through
    [faults_a]) arrives at [b.recv], and vice versa.  Closing either end
    kills the link for both; payloads delivered before the disconnect
    remain readable, like bytes already in a socket buffer. *)

val of_socket : ?label:string -> Unix.file_descr -> t
(** Wrap a connected stream socket: each payload travels as a u32-le
    length prefix plus the raw bytes.  EOF and socket errors surface as
    {!Disconnected}; [EINTR] is retried everywhere.  Incoming bytes are
    reassembled incrementally, so a non-blocking [recv] returns [None]
    (never blocks) while a length prefix or body is still partial — even
    if the peer delivers one byte at a time. *)
