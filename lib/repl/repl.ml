module Wire = Fieldrep_util.Wire
module Stats = Fieldrep_storage.Stats
module Wal = Fieldrep_wal.Wal
module Db = Fieldrep.Db

(* ------------------------------------------------------------------ *)
(* Master: ship WAL frames to N replicas off the log's sync tap        *)

module Master = struct
  type mode = Async of { buffer_bytes : int } | Ack

  let default_mode = Async { buffer_bytes = 64 * 1024 }

  type peer = {
    tr : Transport.t;
    pump : unit -> unit;
    mutable buf : (int64 * Bytes.t) list;  (* newest first *)
    mutable buf_bytes : int;
    mutable shipped_lsn : int64;
    mutable acked_lsn : int64;
    mutable alive : bool;
  }

  type t = {
    db : Db.t;
    wal : Wal.t;
    mode : mode;
    mutable peers : peer list;
  }

  let stats m = Db.stats m.db
  let peer_count m = List.length (List.filter (fun p -> p.alive) m.peers)

  let update_lag m =
    let lag =
      List.fold_left
        (fun acc p -> if p.alive then max acc p.buf_bytes else acc)
        0 m.peers
    in
    Stats.set_replica_lag (stats m) ~bytes:lag

  (* Ship frames (oldest first) followed by a [Commit] barrier.  Any
     transport failure just marks the peer dead: a master must survive a
     replica that vanishes mid-commit. *)
  let ship_frames m peer frames =
    if peer.alive then
      try
        (match frames with
        | [] -> ()
        | frames ->
            peer.tr.Transport.send
              (Proto.encode (Proto.Frames (List.map snd frames)));
            List.iter
              (fun (lsn, _) ->
                Stats.note_frame_shipped (stats m);
                if Int64.compare lsn peer.shipped_lsn > 0 then
                  peer.shipped_lsn <- lsn)
              frames);
        peer.tr.Transport.send
          (Proto.encode (Proto.Commit { lsn = Wal.last_lsn m.wal }))
      with Transport.Disconnected -> peer.alive <- false

  let handle_peer_msg m peer payload =
    match Proto.decode payload with
    | Proto.Ack { lsn } ->
        if Int64.compare lsn peer.acked_lsn > 0 then peer.acked_lsn <- lsn
    | Proto.Resend { after } ->
        (* Anything the tap ever shipped is already flushed (the tap fires
           after the physical flush), so the file can always serve it. *)
        ship_frames m peer (Wal.read_frames (Wal.path m.wal) ~after)
    | Proto.Hello _ | Proto.Snapshot _ | Proto.Frames _ | Proto.Commit _ ->
        ()  (* not a replica-to-master message; ignore *)
    | exception Wire.Corrupt _ -> ()  (* garbage from the peer; drop *)

  let recv_peer peer =
    try peer.tr.Transport.recv ~block:peer.tr.Transport.blocking
    with Transport.Disconnected ->
      peer.alive <- false;
      None

  (* How many recv/pump rounds with no message before an ack wait is
     declared stalled.  Generous: a loopback replica answers within one
     pump, a socket replica blocks in recv instead of counting rounds. *)
  let ack_stall_limit = 10_000

  let await_ack m peer lsn =
    let stalls = ref 0 in
    while peer.alive && Int64.compare peer.acked_lsn lsn < 0 do
      match recv_peer peer with
      | Some payload ->
          handle_peer_msg m peer payload;
          stalls := 0
      | None ->
          peer.pump ();
          incr stalls;
          if !stalls > ack_stall_limit then
            failwith
              (Printf.sprintf "Repl: ack wait for LSN %Ld stalled on %s" lsn
                 peer.tr.Transport.label)
    done

  let flush_peer m peer =
    let frames = List.rev peer.buf in
    peer.buf <- [];
    peer.buf_bytes <- 0;
    ship_frames m peer frames

  (* The tap: called inside [Wal.sync], after the physical flush, with the
     batch that flush made durable. *)
  let on_sync m batch =
    match m.mode with
    | Async { buffer_bytes } ->
        List.iter
          (fun peer ->
            if peer.alive then begin
              List.iter
                (fun (lsn, frame) ->
                  peer.buf <- (lsn, frame) :: peer.buf;
                  peer.buf_bytes <- peer.buf_bytes + Bytes.length frame)
                batch;
              if peer.buf_bytes > buffer_bytes then flush_peer m peer
            end)
          m.peers;
        update_lag m
    | Ack ->
        let lsn = Wal.last_lsn m.wal in
        List.iter (fun peer -> ship_frames m peer batch) m.peers;
        if List.exists (fun p -> p.alive) m.peers then
          Stats.note_ack_waited (stats m);
        List.iter (fun peer -> if peer.alive then await_ack m peer lsn) m.peers

  let create ?(mode = default_mode) db =
    let wal =
      match Db.wal db with
      | Some w -> w
      | None -> invalid_arg "Repl.Master.create: master must be durable"
    in
    let m = { db; wal; mode; peers = [] } in
    Wal.set_tap wal (Some (on_sync m));
    m

  let wait_hello peer_tr pump =
    let stalls = ref 0 in
    let rec loop () =
      match peer_tr.Transport.recv ~block:peer_tr.Transport.blocking with
      | Some payload -> payload
      | None ->
          pump ();
          incr stalls;
          if !stalls > ack_stall_limit then
            failwith "Repl: no Hello from the connecting replica";
          loop ()
    in
    loop ()

  let attach ?(pump = fun () -> ()) m tr =
    if Db.active_txn_count m.db > 0 then
      invalid_arg "Repl.Master.attach: not allowed while transactions are active";
    let hello = Proto.decode (wait_hello tr pump) in
    let peer =
      { tr; pump; buf = []; buf_bytes = 0; shipped_lsn = 0L; acked_lsn = 0L;
        alive = true }
    in
    (match hello with
    | Proto.Hello { last_lsn } when Int64.equal last_lsn 0L ->
        (* Fresh replica: bootstrap from a checkpoint image.  [Db.save]
           syncs the log first, so the image's state and the stamped LSN
           agree, and everything after the stamp will arrive as frames. *)
        let tmp = Filename.temp_file "fieldrep_repl" ".img" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
          (fun () ->
            Db.save m.db tmp;
            let ic = open_in_bin tmp in
            let image =
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            let lsn = Wal.last_lsn m.wal in
            tr.Transport.send (Proto.encode (Proto.Snapshot { lsn; image }));
            peer.shipped_lsn <- lsn;
            peer.acked_lsn <- lsn)
    | Proto.Hello { last_lsn } ->
        (* Rejoin: the replica stopped at [last_lsn]; ship the tail from
           the file.  Sync first so the file holds everything appended. *)
        Wal.sync m.wal;
        peer.shipped_lsn <- last_lsn;
        peer.acked_lsn <- last_lsn;
        ship_frames m peer (Wal.read_frames (Wal.path m.wal) ~after:last_lsn)
    | msg ->
        invalid_arg
          (Format.asprintf "Repl.Master.attach: expected Hello, got %a"
             Proto.pp msg));
    m.peers <- m.peers @ [ peer ];
    peer

  (* Drive progress outside a sync: flush async buffers, re-issue the
     durability barrier to lagging peers (the anti-entropy retry: a
     behind replica answers a bare [Commit] with an [Ack] or a [Resend],
     even if its earlier [Resend] was lost), and drain replica-to-master
     traffic (acks, resend requests). *)
  let pump m =
    List.iter
      (fun peer ->
        if peer.alive then begin
          if peer.buf <> [] then flush_peer m peer
          else if Int64.compare peer.acked_lsn (Wal.last_lsn m.wal) < 0 then
            ship_frames m peer [];
          (* Poll, never wait: pump drains what has already arrived.  Only
             an ack-mode barrier ([await_ack]) may block on a peer. *)
          let continue = ref true in
          while !continue do
            match
              try peer.tr.Transport.recv ~block:false
              with Transport.Disconnected ->
                peer.alive <- false;
                None
            with
            | Some payload -> handle_peer_msg m peer payload
            | None -> continue := false
          done
        end)
      m.peers;
    update_lag m

  let acked_lsn peer = peer.acked_lsn
  let peer_alive peer = peer.alive
end

(* ------------------------------------------------------------------ *)
(* Replica: bootstrap from a snapshot, then apply shipped frames       *)

module Replica = struct
  type t = {
    mutable tr : Transport.t;
    mutable db : Db.t option;
    mutable last_applied : int64;
    mutable commit_lsn : int64;
    mutable gap_pending : bool;
        (* a resend is already in flight: do not re-request per frame *)
    frames : int option;  (* buffer-pool size for the bootstrapped Db *)
  }

  let connect ?frames tr =
    tr.Transport.send (Proto.encode (Proto.Hello { last_lsn = 0L }));
    { tr; db = None; last_applied = 0L; commit_lsn = 0L; gap_pending = false;
      frames }

  let reconnect r tr =
    r.tr <- tr;
    r.gap_pending <- false;
    tr.Transport.send
      (Proto.encode (Proto.Hello { last_lsn = r.last_applied }))

  let db r =
    match r.db with
    | Some db -> db
    | None -> invalid_arg "Repl.Replica.db: not bootstrapped yet"

  let last_applied r = r.last_applied
  let commit_lsn r = r.commit_lsn

  let request_resend r =
    if not r.gap_pending then begin
      r.gap_pending <- true;
      r.tr.Transport.send
        (Proto.encode (Proto.Resend { after = r.last_applied }))
    end

  let apply_frame r raw =
    match Wal.decode_frame raw with
    | exception Wire.Corrupt _ ->
        (* Damaged in flight (the frame carries its own checksum): ask for
           the tail again rather than trusting anything further. *)
        request_resend r
    | lsn, record ->
        if Int64.compare lsn r.last_applied <= 0 then ()  (* duplicate *)
        else if Int64.compare lsn (Int64.add r.last_applied 1L) > 0 then
          (* A gap: something was lost ahead of this frame.  Drop it and
             request the tail; the resent stream restores contiguity. *)
          request_resend r
        else begin
          Db.replica_apply (db r) lsn record;
          r.last_applied <- lsn;
          r.gap_pending <- false
        end

  let handle r msg =
    match msg with
    | Proto.Snapshot { lsn; image } ->
        let tmp = Filename.temp_file "fieldrep_repl" ".img" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
          (fun () ->
            let oc = open_out_bin tmp in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc image);
            r.db <- Some (Db.open_replica ?frames:r.frames tmp));
        r.last_applied <- lsn;
        r.commit_lsn <- lsn;
        r.gap_pending <- false
    | Proto.Frames frames -> List.iter (apply_frame r) frames
    | Proto.Commit { lsn } ->
        if Int64.compare lsn r.last_applied > 0 then begin
          (* The barrier names an LSN we never saw: frames were lost.
             Force a fresh request even if one is already in flight — the
             request itself may have been lost on the way to the master.
             Duplicated re-ships are harmless (frames at or below
             [last_applied] are skipped). *)
          r.gap_pending <- false;
          request_resend r
        end
        else r.commit_lsn <- lsn;
        (* Always acknowledge with where we actually are — an async master
           drains these to track lag, an ack master blocks on them. *)
        r.tr.Transport.send
          (Proto.encode (Proto.Ack { lsn = r.last_applied }))
    | Proto.Hello _ | Proto.Ack _ | Proto.Resend _ ->
        ()  (* not a master-to-replica message; ignore *)

  (* Process at most one pending message; [false] when none was pending. *)
  let step r =
    match r.tr.Transport.recv ~block:false with
    | None -> false
    | Some payload ->
        (match Proto.decode payload with
        | msg -> handle r msg
        | exception Wire.Corrupt _ ->
            (* The envelope failed its checksum, so the message kind itself
               is unknowable — it may have been frames.  Re-request. *)
            request_resend r);
        true

  (* Drain everything pending; the count of messages processed.  A dead
     link stops the drain quietly — [reconnect] resumes from
     [last_applied]. *)
  let drain r =
    let n = ref 0 in
    (try
       while step r do
         incr n
       done
     with Transport.Disconnected -> ());
    !n

  (* Blocking service loop for the CLI: apply messages until the link
     dies. *)
  let run r =
    let live = ref true in
    while !live do
      match r.tr.Transport.recv ~block:true with
      | Some payload -> (
          match Proto.decode payload with
          | msg -> handle r msg
          | exception Wire.Corrupt _ -> request_resend r)
      | None ->
          (* a transport that cannot block (loopback) has nothing to wait
             on: the caller should use [drain] instead *)
          live := false
      | exception Transport.Disconnected -> live := false
    done
end
