module Wire = Fieldrep_util.Wire
module Stats = Fieldrep_storage.Stats
module Wal = Fieldrep_wal.Wal
module Db = Fieldrep.Db

(* ------------------------------------------------------------------ *)
(* Liveness: deadline-based failure detection over an injected clock   *)

type state = Live | Suspect | Dead

type liveness = {
  heartbeat_every : int;
  suspect_after : int;
  dead_after : int;
}

let default_liveness =
  { heartbeat_every = 50; suspect_after = 120; dead_after = 250 }

(* ------------------------------------------------------------------ *)
(* Master: ship WAL frames to N replicas off the log's sync tap        *)

module Master = struct
  type mode = Async of { buffer_bytes : int } | Ack

  let default_mode = Async { buffer_bytes = 64 * 1024 }

  type peer = {
    tr : Transport.t;
    pump : unit -> unit;
    mutable buf : (int64 * Bytes.t) list;  (* newest first *)
    mutable buf_bytes : int;
    mutable shipped_lsn : int64;
    mutable acked_lsn : int64;
    mutable alive : bool;
    mutable pstate : state;
    mutable synchronous : bool;  (* ack mode: commits wait for this peer *)
    mutable last_heard : int;  (* clock tick of the last message received *)
  }

  type t = {
    db : Db.t;
    wal : Wal.t;
    mode : mode;
    clock : Clock.t;
    liveness : liveness;
    ack_deadline : int;  (* ticks a commit waits for an ack before demoting *)
    fork : int64;
        (* the log file serves history only above this LSN (a promoted
           master's log starts at its fork point); peers below it must
           re-bootstrap from a snapshot *)
    epoch : int;
    mutable deposed : bool;  (* fenced by a newer epoch: shipping stopped *)
    mutable peers : peer list;
    mutable last_ping : int;
    on_event : string -> unit;
  }

  let stats m = Db.stats m.db
  let peer_count m = List.length (List.filter (fun p -> p.alive) m.peers)
  let epoch m = m.epoch
  let is_deposed m = m.deposed
  let fork m = m.fork

  let update_lag m =
    let lag =
      List.fold_left
        (fun acc p -> if p.alive then max acc p.buf_bytes else acc)
        0 m.peers
    in
    Stats.set_replica_lag (stats m) ~bytes:lag

  let kill_peer m peer =
    if peer.alive then begin
      peer.alive <- false;
      peer.pstate <- Dead;
      Stats.note_peer_death (stats m);
      m.on_event
        (Printf.sprintf "repl: peer %s declared dead" peer.tr.Transport.label)
    end

  let depose m =
    if not m.deposed then begin
      m.deposed <- true;
      m.on_event
        (Printf.sprintf
           "repl: master (epoch %d) fenced by a newer epoch; shipping stopped"
           m.epoch)
    end

  let demote m peer =
    if peer.synchronous then begin
      peer.synchronous <- false;
      Stats.note_ack_demotion (stats m);
      m.on_event
        (Printf.sprintf "repl: peer %s demoted to async (ack deadline missed)"
           peer.tr.Transport.label)
    end

  let wal_bytes m = Int64.of_int (Wal.bytes_written m.wal)

  (* Ship frames (oldest first) followed by a [Commit] barrier.  Any
     transport failure marks the peer dead (and counts it): a master must
     survive a replica that vanishes mid-commit.  A deposed master ships
     nothing — fencing means its history is no longer authoritative. *)
  let ship_frames m peer frames =
    if peer.alive && not m.deposed then
      try
        (match frames with
        | [] -> ()
        | frames ->
            peer.tr.Transport.send
              (Proto.encode ~epoch:m.epoch
                 (Proto.Frames (List.map snd frames)));
            List.iter
              (fun (lsn, _) ->
                Stats.note_frame_shipped (stats m);
                if Int64.compare lsn peer.shipped_lsn > 0 then
                  peer.shipped_lsn <- lsn)
              frames);
        peer.tr.Transport.send
          (Proto.encode ~epoch:m.epoch
             (Proto.Commit { lsn = Wal.last_lsn m.wal; bytes = wal_bytes m }))
      with Transport.Disconnected -> kill_peer m peer

  (* Bootstrap (or re-bootstrap) a peer from a checkpoint image.  [Db.save]
     syncs the log first, so the image's state and the stamped LSN agree,
     and everything after the stamp will arrive as frames. *)
  let send_snapshot m peer =
    let tmp = Filename.temp_file "fieldrep_repl" ".img" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
      (fun () ->
        Db.save m.db tmp;
        let ic = open_in_bin tmp in
        let image =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let lsn = Wal.last_lsn m.wal in
        try
          peer.tr.Transport.send
            (Proto.encode ~epoch:m.epoch
               (Proto.Snapshot { lsn; bytes = wal_bytes m; image }));
          peer.shipped_lsn <- lsn;
          peer.acked_lsn <- lsn
        with Transport.Disconnected -> kill_peer m peer)

  let handle_peer_msg m peer payload =
    match Proto.decode payload with
    | exception Wire.Corrupt _ -> ()  (* garbage from the peer; drop *)
    | ep, msg ->
        if ep > m.epoch then
          (* Any payload from a newer epoch — typically a replica's
             [Fenced] reply — deposes this master. *)
          depose m
        else if ep < m.epoch then begin
          (* A stale peer: its acks must not release barriers and its
             requests must not be served.  Tell it so. *)
          try
            peer.tr.Transport.send (Proto.encode ~epoch:m.epoch Proto.Fenced)
          with Transport.Disconnected -> kill_peer m peer
        end
        else begin
          peer.last_heard <- Clock.now m.clock;
          if peer.alive then peer.pstate <- Live;
          match msg with
          | Proto.Ack { lsn } | Proto.Pong { lsn } ->
              if Int64.compare lsn peer.acked_lsn > 0 then peer.acked_lsn <- lsn
          | Proto.Resend { after } ->
              if Int64.compare after m.fork < 0 then
                (* The file cannot serve history below the fork point (a
                   promoted master's log starts there): re-bootstrap. *)
                (if Db.active_txn_count m.db = 0 then send_snapshot m peer)
              else
                (* Anything the tap ever shipped is already flushed (the
                   tap fires after the physical flush), so the file can
                   always serve it. *)
                ship_frames m peer (Wal.read_frames (Wal.path m.wal) ~after)
          | Proto.Hello { last_lsn } ->
              (* A mid-stream Hello is a re-bootstrap request — the peer
                 lost its snapshot (damaged in flight) or restarted: serve
                 it anew. *)
              if
                Int64.equal last_lsn 0L || Int64.compare last_lsn m.fork < 0
              then (if Db.active_txn_count m.db = 0 then send_snapshot m peer)
              else begin
                Wal.sync m.wal;
                ship_frames m peer
                  (Wal.read_frames (Wal.path m.wal) ~after:last_lsn)
              end
          | Proto.Snapshot _ | Proto.Frames _ | Proto.Commit _ | Proto.Ping _
          | Proto.Reset _ | Proto.Fenced ->
              ()  (* not a replica-to-master message at this epoch; ignore *)
        end

  let recv_peer m peer =
    try peer.tr.Transport.recv ~block:false
    with Transport.Disconnected ->
      kill_peer m peer;
      None

  (* Rounds with no message before an ack wait gives up even without clock
     progress — a backstop for callers that never advance an injected
     manual clock. *)
  let ack_stall_limit = 10_000

  (* Wait for the peer to acknowledge [lsn] — but never forever: when the
     ack deadline (in clock ticks) or the stall backstop expires, the peer
     is demoted to async and the commit proceeds without it.  Graceful
     degradation: a hung replica costs bounded latency, not availability. *)
  let await_ack m peer lsn =
    let deadline = Clock.now m.clock + m.ack_deadline in
    let stalls = ref 0 in
    while
      peer.alive && peer.synchronous && (not m.deposed)
      && Int64.compare peer.acked_lsn lsn < 0
    do
      match recv_peer m peer with
      | Some payload ->
          handle_peer_msg m peer payload;
          stalls := 0
      | None ->
          peer.pump ();
          incr stalls;
          if Clock.now m.clock >= deadline || !stalls > ack_stall_limit then
            demote m peer
          else if peer.tr.Transport.blocking then
            (* a socket peer delivers asynchronously: yield briefly instead
               of spinning on select(0) *)
            ignore (Unix.select [] [] [] 0.001)
    done

  let flush_peer m peer =
    let frames = List.rev peer.buf in
    peer.buf <- [];
    peer.buf_bytes <- 0;
    ship_frames m peer frames

  (* The tap: called inside [Wal.sync], after the physical flush, with the
     batch that flush made durable. *)
  let on_sync m batch =
    if not m.deposed then
      match m.mode with
      | Async { buffer_bytes } ->
          List.iter
            (fun peer ->
              if peer.alive then begin
                List.iter
                  (fun (lsn, frame) ->
                    peer.buf <- (lsn, frame) :: peer.buf;
                    peer.buf_bytes <- peer.buf_bytes + Bytes.length frame)
                  batch;
                if peer.buf_bytes > buffer_bytes then flush_peer m peer
              end)
            m.peers;
          update_lag m
      | Ack ->
          let lsn = Wal.last_lsn m.wal in
          List.iter (fun peer -> ship_frames m peer batch) m.peers;
          if List.exists (fun p -> p.alive && p.synchronous) m.peers then
            Stats.note_ack_waited (stats m);
          List.iter
            (fun peer ->
              if peer.alive && peer.synchronous then await_ack m peer lsn)
            m.peers

  let create ?(mode = default_mode) ?clock ?(liveness = default_liveness)
      ?(ack_deadline = 200) ?(on_event = fun _ -> ()) ?(fork = 0L) db =
    let wal =
      match Db.wal db with
      | Some w -> w
      | None -> invalid_arg "Repl.Master.create: master must be durable"
    in
    let clock = match clock with Some c -> c | None -> Clock.wall () in
    let m =
      { db; wal; mode; clock; liveness; ack_deadline; fork;
        epoch = Db.epoch db; deposed = false; peers = [];
        last_ping = Clock.now clock; on_event }
    in
    Wal.set_tap wal (Some (on_sync m));
    m

  let wait_hello peer_tr pump =
    let stalls = ref 0 in
    let rec loop () =
      match peer_tr.Transport.recv ~block:peer_tr.Transport.blocking with
      | Some payload -> payload
      | None ->
          pump ();
          incr stalls;
          if !stalls > ack_stall_limit then
            failwith "Repl: no Hello from the connecting replica";
          loop ()
    in
    loop ()

  (* Wait out the Hello/Reset negotiation: a peer whose log runs past our
     fork point in an older epoch diverged (it was a master once) — it must
     truncate back to the fork and re-Hello before we can serve it. *)
  let rec negotiate m tr pump =
    match Proto.decode (wait_hello tr pump) with
    | exception Wire.Corrupt _ -> negotiate m tr pump
    | ep, Proto.Hello { last_lsn } ->
        if ep > m.epoch then begin
          depose m;
          invalid_arg "Repl.Master.attach: fenced by a peer from a newer epoch"
        end
        else if ep < m.epoch && Int64.compare last_lsn m.fork > 0 then begin
          tr.Transport.send
            (Proto.encode ~epoch:m.epoch (Proto.Reset { fork = m.fork }));
          negotiate m tr pump
        end
        else last_lsn
    | _, msg ->
        invalid_arg
          (Format.asprintf "Repl.Master.attach: expected Hello, got %a"
             Proto.pp msg)

  let attach ?(pump = fun () -> ()) m tr =
    if Db.active_txn_count m.db > 0 then
      invalid_arg "Repl.Master.attach: not allowed while transactions are active";
    let last_lsn = negotiate m tr pump in
    let peer =
      { tr; pump; buf = []; buf_bytes = 0; shipped_lsn = 0L; acked_lsn = 0L;
        alive = true; pstate = Live; synchronous = true;
        last_heard = Clock.now m.clock }
    in
    if Int64.equal last_lsn 0L || Int64.compare last_lsn m.fork < 0 then
      (* Fresh replica — or one whose history predates our fork point, which
         the file cannot serve: bootstrap from a checkpoint image. *)
      send_snapshot m peer
    else begin
      (* Rejoin: the replica stopped at [last_lsn]; ship the tail from
         the file.  Sync first so the file holds everything appended. *)
      Wal.sync m.wal;
      peer.shipped_lsn <- last_lsn;
      peer.acked_lsn <- last_lsn;
      ship_frames m peer (Wal.read_frames (Wal.path m.wal) ~after:last_lsn)
    end;
    m.peers <- m.peers @ [ peer ];
    peer

  (* Drive progress outside a sync: flush async buffers, re-issue the
     durability barrier to lagging peers (the anti-entropy retry: a
     behind replica answers a bare [Commit] with an [Ack] or a [Resend],
     even if its earlier [Resend] was lost), drain replica-to-master
     traffic (acks, resend requests), and re-promote caught-up demoted
     peers back to synchronous. *)
  let pump m =
    if not m.deposed then begin
      List.iter
        (fun peer ->
          if peer.alive then begin
            if peer.buf <> [] then flush_peer m peer
            else if Int64.compare peer.acked_lsn (Wal.last_lsn m.wal) < 0 then
              ship_frames m peer [];
            (* Poll, never wait: pump drains what has already arrived.  Only
               an ack-mode barrier ([await_ack]) may block on a peer. *)
            let continue = ref true in
            while !continue do
              match recv_peer m peer with
              | Some payload -> handle_peer_msg m peer payload
              | None -> continue := false
            done;
            match m.mode with
            | Ack
              when (not peer.synchronous) && peer.alive
                   && Int64.compare peer.acked_lsn (Wal.last_lsn m.wal) >= 0
              ->
                (* The demoted peer caught all the way up: re-promote. *)
                peer.synchronous <- true;
                m.on_event
                  (Printf.sprintf "repl: peer %s re-promoted to synchronous"
                     peer.tr.Transport.label)
            | _ -> ()
          end)
        m.peers;
      update_lag m
    end

  (* The liveness beat: drain traffic, advance per-peer Live -> Suspect ->
     Dead state from heartbeat deadlines, and send [Ping]s.  Call this on
     every scheduler tick; a master that is never ticked behaves exactly
     like the pre-liveness engine (no false suspicions). *)
  let tick m =
    if not m.deposed then begin
      pump m;
      let now = Clock.now m.clock in
      List.iter
        (fun p ->
          if p.alive then begin
            let silent = now - p.last_heard in
            if silent >= m.liveness.dead_after then begin
              if p.pstate = Live then Stats.note_heartbeat_missed (stats m);
              kill_peer m p
            end
            else if silent >= m.liveness.suspect_after then begin
              if p.pstate = Live then begin
                p.pstate <- Suspect;
                Stats.note_heartbeat_missed (stats m);
                m.on_event
                  (Printf.sprintf "repl: peer %s suspected (silent %d ticks)"
                     p.tr.Transport.label silent)
              end
            end
            else if p.pstate = Suspect then p.pstate <- Live
          end)
        m.peers;
      if now - m.last_ping >= m.liveness.heartbeat_every then begin
        m.last_ping <- now;
        let ping =
          Proto.encode ~epoch:m.epoch
            (Proto.Ping { lsn = Wal.last_lsn m.wal; bytes = wal_bytes m })
        in
        List.iter
          (fun p ->
            if p.alive then
              try p.tr.Transport.send ping
              with Transport.Disconnected -> kill_peer m p)
          m.peers
      end
    end

  let acked_lsn peer = peer.acked_lsn
  let peer_alive peer = peer.alive
  let peer_state peer = peer.pstate
  let peer_synchronous peer = peer.synchronous
end

(* ------------------------------------------------------------------ *)
(* Replica: bootstrap from a snapshot, then apply shipped frames       *)

module Replica = struct
  exception Stale of string

  type t = {
    mutable tr : Transport.t;
    mutable db : Db.t option;
    mutable last_applied : int64;
    mutable commit_lsn : int64;
    mutable gap_pending : bool;
        (* a resend is already in flight: do not re-request per frame *)
    frames : int option;  (* buffer-pool size for the bootstrapped Db *)
    clock : Clock.t;
    liveness : liveness;
    mutable epoch : int;
    mutable last_heard : int;
    mutable mstate : state;  (* the master, as this replica sees it *)
    mutable master_bytes : int64;
        (* the master's cumulative WAL bytes, from Ping/Commit/Snapshot *)
    mutable applied_bytes : int64;
        (* WAL bytes applied locally, on the same scale *)
    mutable max_lag_bytes : int option;
    mutable on_reset : (fork:int64 -> Db.t) option;
  }

  let connect ?frames ?clock ?(liveness = default_liveness) ?on_reset tr =
    let clock = match clock with Some c -> c | None -> Clock.wall () in
    tr.Transport.send (Proto.encode ~epoch:0 (Proto.Hello { last_lsn = 0L }));
    { tr; db = None; last_applied = 0L; commit_lsn = 0L; gap_pending = false;
      frames; clock; liveness; epoch = 0; last_heard = Clock.now clock;
      mstate = Live; master_bytes = 0L; applied_bytes = 0L;
      max_lag_bytes = None; on_reset }

  (* Wrap an existing replica-mode db — a restarted replica, or an old
     master recovered for rejoin — and [Hello] with its position.  The
     master serves the tail, or orders a [Reset] first if the log diverged
     (the db here was a master in an older epoch). *)
  let rejoin ?frames ?clock ?(liveness = default_liveness) ?on_reset ~db
      ~last_applied tr =
    let clock = match clock with Some c -> c | None -> Clock.wall () in
    let epoch = Db.epoch db in
    tr.Transport.send
      (Proto.encode ~epoch (Proto.Hello { last_lsn = last_applied }));
    { tr; db = Some db; last_applied; commit_lsn = last_applied;
      gap_pending = false; frames; clock; liveness; epoch;
      last_heard = Clock.now clock; mstate = Live; master_bytes = 0L;
      applied_bytes = 0L; max_lag_bytes = None; on_reset }

  let db r =
    match r.db with
    | Some db -> db
    | None -> invalid_arg "Repl.Replica.db: not bootstrapped yet"

  let note f r = match r.db with Some db -> f (Db.stats db) | None -> ()

  let reconnect r tr =
    r.tr <- tr;
    r.gap_pending <- false;
    r.mstate <- Live;
    r.last_heard <- Clock.now r.clock;
    note Stats.note_reconnect r;
    tr.Transport.send
      (Proto.encode ~epoch:r.epoch (Proto.Hello { last_lsn = r.last_applied }))

  let last_applied r = r.last_applied
  let commit_lsn r = r.commit_lsn
  let epoch r = r.epoch
  let master_state r = r.mstate
  let set_on_reset r f = r.on_reset <- f

  (* --- bounded-staleness read gate ------------------------------------ *)

  let lag_bytes r =
    let lag = Int64.sub r.master_bytes r.applied_bytes in
    if Int64.compare lag 0L > 0 then lag else 0L

  let set_max_lag r limit = r.max_lag_bytes <- limit

  let check_staleness r =
    match r.max_lag_bytes with
    | Some max_lag when Int64.compare (lag_bytes r) (Int64.of_int max_lag) > 0
      ->
        raise
          (Stale
             (Printf.sprintf
                "Repl.Replica: %Ld bytes behind the master (max %d)"
                (lag_bytes r) max_lag))
    | _ -> ()

  let read r f =
    check_staleness r;
    f (db r)

  (* --- the apply stream ----------------------------------------------- *)

  let request_resend r =
    if not r.gap_pending then begin
      r.gap_pending <- true;
      match r.db with
      | None ->
          (* nothing to resend onto yet — the snapshot itself was lost or
             damaged; ask for the bootstrap again *)
          r.tr.Transport.send
            (Proto.encode ~epoch:r.epoch (Proto.Hello { last_lsn = 0L }))
      | Some _ ->
          r.tr.Transport.send
            (Proto.encode ~epoch:r.epoch
               (Proto.Resend { after = r.last_applied }))
    end

  let apply_frame r raw =
    match r.db with
    | None -> request_resend r  (* frames before a snapshot: re-bootstrap *)
    | Some _ -> (
    match Wal.decode_frame raw with
    | exception Wire.Corrupt _ ->
        (* Damaged in flight (the frame carries its own checksum): ask for
           the tail again rather than trusting anything further. *)
        request_resend r
    | lsn, record ->
        if Int64.compare lsn r.last_applied <= 0 then ()  (* duplicate *)
        else if Int64.compare lsn (Int64.add r.last_applied 1L) > 0 then
          (* A gap: something was lost ahead of this frame.  Drop it and
             request the tail; the resent stream restores contiguity. *)
          request_resend r
        else begin
          Db.replica_apply (db r) lsn record;
          r.last_applied <- lsn;
          r.applied_bytes <-
            Int64.add r.applied_bytes (Int64.of_int (Bytes.length raw));
          r.gap_pending <- false
        end)

  let note_master_bytes r bytes =
    if Int64.compare bytes r.master_bytes > 0 then r.master_bytes <- bytes

  (* A new epoch resets the staleness scale: the new master's log (and its
     byte counter) starts at the fork point, so both sides of the lag
     subtraction restart from zero. *)
  let adopt_epoch r ep =
    if ep > r.epoch then begin
      r.epoch <- ep;
      r.master_bytes <- 0L;
      r.applied_bytes <- 0L
    end

  (* The master declared our log diverged above [fork] (we were a master in
     an older epoch): truncate back to the fork point and re-Hello.  The
     [on_reset] callback owns the local truncate+recover; a replica with no
     local log (never was a master) falls back to a full re-bootstrap. *)
  let do_reset r fork =
    (match r.on_reset with
    | Some f ->
        r.db <- Some (f ~fork);
        r.last_applied <- fork;
        r.commit_lsn <- fork
    | None ->
        r.db <- None;
        r.last_applied <- 0L;
        r.commit_lsn <- 0L);
    r.gap_pending <- false;
    r.applied_bytes <- 0L;
    r.master_bytes <- 0L;
    r.tr.Transport.send
      (Proto.encode ~epoch:r.epoch (Proto.Hello { last_lsn = r.last_applied }))

  let handle_msg r msg =
    match msg with
    | Proto.Snapshot { lsn; bytes; image } ->
        let tmp = Filename.temp_file "fieldrep_repl" ".img" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
          (fun () ->
            let oc = open_out_bin tmp in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc image);
            r.db <- Some (Db.open_replica ?frames:r.frames tmp));
        r.last_applied <- lsn;
        r.commit_lsn <- lsn;
        r.gap_pending <- false;
        r.applied_bytes <- bytes;
        note_master_bytes r bytes
    | Proto.Frames frames -> List.iter (apply_frame r) frames
    | Proto.Commit { lsn; bytes } ->
        note_master_bytes r bytes;
        if Int64.compare lsn r.last_applied > 0 then begin
          (* The barrier names an LSN we never saw: frames were lost.
             Force a fresh request even if one is already in flight — the
             request itself may have been lost on the way to the master.
             Duplicated re-ships are harmless (frames at or below
             [last_applied] are skipped). *)
          r.gap_pending <- false;
          request_resend r
        end
        else r.commit_lsn <- lsn;
        (* Always acknowledge with where we actually are — an async master
           drains these to track lag, an ack master blocks on them. *)
        r.tr.Transport.send
          (Proto.encode ~epoch:r.epoch (Proto.Ack { lsn = r.last_applied }))
    | Proto.Ping { lsn = _; bytes } ->
        note_master_bytes r bytes;
        r.tr.Transport.send
          (Proto.encode ~epoch:r.epoch (Proto.Pong { lsn = r.last_applied }))
    | Proto.Reset { fork } -> do_reset r fork
    | Proto.Fenced ->
        (* Same-epoch [Fenced] — the sender fenced traffic we no longer
           emit; nothing to do (a newer-epoch one was adopted already). *)
        ()
    | Proto.Hello _ | Proto.Ack _ | Proto.Resend _ | Proto.Pong _ ->
        ()  (* not a master-to-replica message; ignore *)

  let dispatch r ep msg =
    if ep < r.epoch then begin
      (* Traffic from a fenced-off epoch — a zombie master that has not yet
         learned it was deposed.  Never apply it; answer [Fenced] so the
         zombie stops shipping. *)
      try r.tr.Transport.send (Proto.encode ~epoch:r.epoch Proto.Fenced)
      with Transport.Disconnected -> ()
    end
    else begin
      adopt_epoch r ep;
      r.last_heard <- Clock.now r.clock;
      r.mstate <- Live;
      handle_msg r msg
    end

  (* Drain a link this replica no longer follows (e.g. the old master's
     transport after a failover): every payload from a lower epoch is
     answered with [Fenced] — the zombie-fencing path — and nothing is
     applied.  Returns how many payloads were fenced. *)
  let fence_link r tr =
    let fenced = ref 0 in
    (try
       let continue = ref true in
       while !continue do
         match tr.Transport.recv ~block:false with
         | None -> continue := false
         | Some payload -> (
             match Proto.decode payload with
             | exception Wire.Corrupt _ -> ()
             | ep, _ when ep < r.epoch -> (
                 incr fenced;
                 try
                   tr.Transport.send
                     (Proto.encode ~epoch:r.epoch Proto.Fenced)
                 with Transport.Disconnected -> continue := false)
             | _, _ -> ())
       done
     with Transport.Disconnected -> ());
    !fenced

  (* Process at most one pending message; [false] when none was pending. *)
  let step r =
    match r.tr.Transport.recv ~block:false with
    | None -> false
    | Some payload ->
        (match Proto.decode payload with
        | ep, msg -> dispatch r ep msg
        | exception Wire.Corrupt _ ->
            (* The envelope failed its checksum, so the message kind itself
               is unknowable — it may have been frames.  Re-request. *)
            request_resend r);
        true

  (* Drain everything pending; the count of messages processed.  A dead
     link stops the drain quietly — [reconnect] resumes from
     [last_applied]. *)
  let drain r =
    let n = ref 0 in
    (try
       while step r do
         incr n
       done
     with Transport.Disconnected -> ());
    !n

  (* The liveness beat: advance the master's Live -> Suspect -> Dead state
     from its heartbeat deadline.  Any received message resets it to Live
     (see [dispatch]); promotion decisions key off [master_state]. *)
  let tick r =
    let now = Clock.now r.clock in
    let silent = now - r.last_heard in
    if silent >= r.liveness.dead_after then begin
      if r.mstate <> Dead then begin
        if r.mstate = Live then note Stats.note_heartbeat_missed r;
        r.mstate <- Dead;
        note Stats.note_peer_death r
      end
    end
    else if silent >= r.liveness.suspect_after then
      if r.mstate = Live then begin
        r.mstate <- Suspect;
        note Stats.note_heartbeat_missed r
      end

  (* Failover: this replica becomes the master of the next epoch.  Its
     applied prefix is the fork point; the returned master serves rejoins
     above the fork from its fresh log and re-bootstraps older peers. *)
  let promote ?mode ?clock ?liveness ?ack_deadline ?on_event r ~wal_path =
    let d = db r in
    let _new_epoch : int =
      Db.promote_replica d ~wal_path ~last_lsn:r.last_applied
    in
    Stats.note_failover (Db.stats d);
    r.epoch <- Db.epoch d;
    Master.create ?mode ?clock ?liveness ?ack_deadline ?on_event
      ~fork:r.last_applied d

  (* Blocking-ish service loop for the CLI: apply messages until the link
     dies, ticking the failure detector while idle. *)
  let run r =
    let live = ref true in
    while !live do
      match step r with
      | true -> ()
      | false ->
          tick r;
          if r.mstate = Dead then live := false
          else if r.tr.Transport.blocking then
            ignore (Unix.select [] [] [] 0.01)
          else
            (* a transport that cannot block (loopback) has nothing to wait
               on: the caller should use [drain] instead *)
            live := false
      | exception Transport.Disconnected -> live := false
    done
end
