module Splitmix = Fieldrep_util.Splitmix

exception Disconnected

type t = {
  send : string -> unit;
  recv : block:bool -> string option;
  close : unit -> unit;
  blocking : bool;
  label : string;
}

(* ------------------------------------------------------------------ *)
(* In-process loopback with deterministic fault injection              *)

type faults = {
  mutable drop : int;
  mutable duplicate : int;
  mutable corrupt : int;
  mutable truncate : int;
  mutable hang : int;
  mutable disconnect_after : int;
  mutable p_drop : float;
  mutable p_duplicate : float;
  mutable p_corrupt : float;
  mutable p_hang : float;
  mutable hang_for : int;
  mutable rng : Splitmix.t option;
  mutable held : (int * string) list;
}

let no_faults () =
  {
    drop = 0;
    duplicate = 0;
    corrupt = 0;
    truncate = 0;
    hang = 0;
    disconnect_after = -1;
    p_drop = 0.;
    p_duplicate = 0.;
    p_corrupt = 0.;
    p_hang = 0.;
    hang_for = 3;
    rng = None;
    held = [];
  }

let seed_schedule ?(p_drop = 0.) ?(p_duplicate = 0.) ?(p_corrupt = 0.)
    ?(p_hang = 0.) ?(hang_for = 3) faults ~seed =
  faults.p_drop <- p_drop;
  faults.p_duplicate <- p_duplicate;
  faults.p_corrupt <- p_corrupt;
  faults.p_hang <- p_hang;
  faults.hang_for <- max 1 hang_for;
  faults.rng <- Some (Splitmix.create seed)

let chance faults p =
  match faults.rng with
  | Some rng when p > 0. -> Splitmix.float rng 1.0 < p
  | _ -> false

let flip_middle_byte s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  if n > 0 then begin
    let i = n / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a))
  end;
  Bytes.unsafe_to_string b

let loopback () =
  let connected = ref true in
  let to_a : string Queue.t = Queue.create () in
  let to_b : string Queue.t = Queue.create () in
  let send faults peer_q payload =
    if not !connected then raise Disconnected;
    if faults.disconnect_after = 0 then begin
      (* the link dies mid-send: the payload is lost *)
      faults.disconnect_after <- -1;
      connected := false;
      raise Disconnected
    end;
    if faults.disconnect_after > 0 then
      faults.disconnect_after <- faults.disconnect_after - 1;
    (* Each send ages the held ("hung") payloads; expired ones deliver
       first, so a hang is a bounded delay-and-reorder, not a loss. *)
    let aged = List.map (fun (k, p) -> (k - 1, p)) faults.held in
    let due, still = List.partition (fun (k, _) -> k <= 0) aged in
    faults.held <- still;
    List.iter (fun (_, p) -> Queue.push p peer_q) due;
    if faults.drop > 0 then faults.drop <- faults.drop - 1
    else if chance faults faults.p_drop then ()
    else begin
      let payload =
        if faults.corrupt > 0 then begin
          faults.corrupt <- faults.corrupt - 1;
          flip_middle_byte payload
        end
        else if chance faults faults.p_corrupt then flip_middle_byte payload
        else payload
      in
      let payload =
        if faults.truncate > 0 then begin
          faults.truncate <- faults.truncate - 1;
          String.sub payload 0 (String.length payload / 2)
        end
        else payload
      in
      if faults.hang > 0 || chance faults faults.p_hang then begin
        if faults.hang > 0 then faults.hang <- faults.hang - 1;
        faults.held <- faults.held @ [ (faults.hang_for, payload) ]
      end
      else begin
        Queue.push payload peer_q;
        if faults.duplicate > 0 then begin
          faults.duplicate <- faults.duplicate - 1;
          Queue.push payload peer_q
        end
        else if chance faults faults.p_duplicate then Queue.push payload peer_q
      end
    end
  in
  (* Already-delivered messages survive a disconnect (they are in the
     peer's queue, like bytes in a socket buffer); recv drains them first
     and only then reports the dead link. *)
  let recv own_q ~block:_ =
    match Queue.take_opt own_q with
    | Some payload -> Some payload
    | None -> if !connected then None else raise Disconnected
  in
  let close () = connected := false in
  let fa = no_faults () in
  let fb = no_faults () in
  let a =
    { send = send fa to_b; recv = recv to_a; close; blocking = false;
      label = "loopback:a" }
  in
  let b =
    { send = send fb to_a; recv = recv to_b; close; blocking = false;
      label = "loopback:b" }
  in
  (a, b, fa, fb)

(* ------------------------------------------------------------------ *)
(* Unix sockets: u32-le length prefix, then the payload                *)

let max_payload = 1 lsl 30

let rec write_exact fd buf off len =
  if len > 0 then begin
    match Unix.write fd buf off len with
    | n -> write_exact fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        write_exact fd buf off len
  end

(* One read(2), retried through EINTR.  0 means EOF. *)
let rec read_once fd buf off len =
  try Unix.read fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read_once fd buf off len

let rec wait_readable fd timeout =
  try
    match Unix.select [ fd ] [] [] timeout with
    | [], _, _ -> false
    | _ :: _, _, _ -> true
  with Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd timeout

let of_socket ?(label = "socket") fd =
  let send payload =
    let n = String.length payload in
    if n > max_payload then invalid_arg "Transport.send: payload too large";
    let buf = Bytes.create (4 + n) in
    Bytes.set_int32_le buf 0 (Int32.of_int n);
    Bytes.blit_string payload 0 buf 4 n;
    try write_exact fd buf 0 (4 + n)
    with Unix.Unix_error (_, _, _) -> raise Disconnected
  in
  (* Incremental reassembly: bytes accumulate in [inbuf] across recv
     calls, and a payload is surfaced only once its length prefix *and*
     body are complete.  A peer (or a slow network) may deliver a frame
     one byte at a time — a non-blocking recv must never stall on a
     partial length prefix, it returns None and keeps what it has. *)
  let inbuf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let take_message () =
    let len = Buffer.length inbuf in
    if len < 4 then None
    else begin
      let n = Int32.to_int (String.get_int32_le (Buffer.sub inbuf 0 4) 0) in
      if n < 0 || n > max_payload then raise Disconnected;
      if len < 4 + n then None
      else begin
        let payload = Buffer.sub inbuf 4 n in
        let rest = Buffer.sub inbuf (4 + n) (len - 4 - n) in
        Buffer.clear inbuf;
        Buffer.add_string inbuf rest;
        Some payload
      end
    end
  in
  let fill () =
    match read_once fd chunk 0 (Bytes.length chunk) with
    | 0 -> raise Disconnected
    | n -> Buffer.add_subbytes inbuf chunk 0 n
  in
  let recv ~block =
    try
      match take_message () with
      | Some _ as m -> m
      | None ->
          if block then begin
            let rec loop () =
              fill ();
              match take_message () with Some _ as m -> m | None -> loop ()
            in
            loop ()
          end
          else begin
            if wait_readable fd 0.0 then fill ();
            take_message ()
          end
    with Unix.Unix_error (_, _, _) -> raise Disconnected
  in
  let close () = try Unix.close fd with Unix.Unix_error (_, _, _) -> () in
  { send; recv; close; blocking = true; label }
