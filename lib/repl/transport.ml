exception Disconnected

type t = {
  send : string -> unit;
  recv : block:bool -> string option;
  close : unit -> unit;
  blocking : bool;
  label : string;
}

(* ------------------------------------------------------------------ *)
(* In-process loopback with deterministic fault injection              *)

type faults = {
  mutable drop : int;
  mutable duplicate : int;
  mutable corrupt : int;
  mutable truncate : int;
  mutable disconnect_after : int;
}

let no_faults () =
  { drop = 0; duplicate = 0; corrupt = 0; truncate = 0; disconnect_after = -1 }

let flip_middle_byte s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  if n > 0 then begin
    let i = n / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a))
  end;
  Bytes.unsafe_to_string b

let loopback () =
  let connected = ref true in
  let to_a : string Queue.t = Queue.create () in
  let to_b : string Queue.t = Queue.create () in
  let send faults peer_q payload =
    if not !connected then raise Disconnected;
    if faults.disconnect_after = 0 then begin
      (* the link dies mid-send: the payload is lost *)
      faults.disconnect_after <- -1;
      connected := false;
      raise Disconnected
    end;
    if faults.disconnect_after > 0 then
      faults.disconnect_after <- faults.disconnect_after - 1;
    if faults.drop > 0 then faults.drop <- faults.drop - 1
    else begin
      let payload =
        if faults.corrupt > 0 then begin
          faults.corrupt <- faults.corrupt - 1;
          flip_middle_byte payload
        end
        else payload
      in
      let payload =
        if faults.truncate > 0 then begin
          faults.truncate <- faults.truncate - 1;
          String.sub payload 0 (String.length payload / 2)
        end
        else payload
      in
      Queue.push payload peer_q;
      if faults.duplicate > 0 then begin
        faults.duplicate <- faults.duplicate - 1;
        Queue.push payload peer_q
      end
    end
  in
  (* Already-delivered messages survive a disconnect (they are in the
     peer's queue, like bytes in a socket buffer); recv drains them first
     and only then reports the dead link. *)
  let recv own_q ~block:_ =
    match Queue.take_opt own_q with
    | Some payload -> Some payload
    | None -> if !connected then None else raise Disconnected
  in
  let close () = connected := false in
  let fa = no_faults () in
  let fb = no_faults () in
  let a =
    { send = send fa to_b; recv = recv to_a; close; blocking = false;
      label = "loopback:a" }
  in
  let b =
    { send = send fb to_a; recv = recv to_b; close; blocking = false;
      label = "loopback:b" }
  in
  (a, b, fa, fb)

(* ------------------------------------------------------------------ *)
(* Unix sockets: u32-le length prefix, then the payload                *)

let max_payload = 1 lsl 30

let rec write_exact fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_exact fd buf (off + n) (len - n)
  end

let rec read_exact fd buf off len =
  if len > 0 then begin
    let n = Unix.read fd buf off len in
    if n = 0 then raise Disconnected;
    read_exact fd buf (off + n) (len - n)
  end

let of_socket ?(label = "socket") fd =
  let send payload =
    let n = String.length payload in
    if n > max_payload then invalid_arg "Transport.send: payload too large";
    let buf = Bytes.create (4 + n) in
    Bytes.set_int32_le buf 0 (Int32.of_int n);
    Bytes.blit_string payload 0 buf 4 n;
    try write_exact fd buf 0 (4 + n)
    with Unix.Unix_error (_, _, _) -> raise Disconnected
  in
  let read_message () =
    let hdr = Bytes.create 4 in
    read_exact fd hdr 0 4;
    let n = Int32.to_int (Bytes.get_int32_le hdr 0) in
    if n < 0 || n > max_payload then raise Disconnected;
    let buf = Bytes.create n in
    read_exact fd buf 0 n;
    Bytes.unsafe_to_string buf
  in
  let recv ~block =
    try
      if block then Some (read_message ())
      else
        (* Peek at readability; once the header is on its way the rest of
           the message follows promptly, so the short blocking reads after
           a positive select are acceptable for a test/CLI transport. *)
        match Unix.select [ fd ] [] [] 0.0 with
        | [], _, _ -> None
        | _ :: _, _, _ -> Some (read_message ())
    with Unix.Unix_error (_, _, _) -> raise Disconnected
  in
  let close () = try Unix.close fd with Unix.Unix_error (_, _, _) -> () in
  { send; recv; close; blocking = true; label }
