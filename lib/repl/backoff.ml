(* Exponential backoff with full seeded jitter, for reconnect loops.

   The delay for attempt n is drawn uniformly from [0, min (base * 2^n)
   cap] ("full jitter", the AWS-recommended variant: it decorrelates a
   thundering herd of reconnecting replicas better than equal or
   decorrelated jitter).  Delays are in clock ticks, so deterministic
   tests drive the same schedule the CLI does. *)

type t = {
  rng : Fieldrep_util.Splitmix.t;
  base : int;
  cap : int;
  mutable attempt : int;
}

let create ?(base = 10) ?(cap = 5_000) ~seed () =
  let base = max 1 base in
  { rng = Fieldrep_util.Splitmix.create seed; base; cap = max base cap; attempt = 0 }

let next_delay t =
  (* 2^attempt without overflow: cap the shift, then the product. *)
  let shift = min t.attempt 20 in
  let ceiling = min t.cap (t.base * (1 lsl shift)) in
  t.attempt <- t.attempt + 1;
  Fieldrep_util.Splitmix.int t.rng (ceiling + 1)

let reset t = t.attempt <- 0
let attempts t = t.attempt
