module Wire = Fieldrep_util.Wire

type t = {
  pager : Pager.t;
  file : int;
  reserve : int;  (* bytes kept free per page during inserts (PCTFREE) *)
  mutable count : int;
  mutable tail_page : int;  (* page that receives the next append, -1 if none *)
}

let kind_head = 0
let kind_segment = 1

(* A tombstone is a deleted object whose home slot stays allocated, so the
   OID cannot be recycled while a transaction that deleted the object is
   still undecided.  [free_tombstone] releases the slot at commit;
   [insert_at] revives the object in place on abort. *)
let kind_tombstone = 2
let header_size = 1 + Oid.encoded_size

let encode_segment ~kind ~next payload_sub =
  let src, src_off, len = payload_sub in
  let buf = Bytes.create (header_size + len) in
  let off = Wire.put_u8 buf 0 kind in
  let off = Oid.encode buf off next in
  Bytes.blit src src_off buf off len;
  buf

let decode_header record =
  let kind, off = Wire.get_u8 record 0 in
  let next, off = Oid.decode record off in
  (kind, next, off)

let create ?(reserve = 0) pager =
  if reserve < 0 then invalid_arg "Heap_file.create: negative reserve";
  { pager; file = Pager.create_file pager; reserve; count = 0; tail_page = -1 }

let file_id t = t.file
let pager t = t.pager
let reserve t = t.reserve
let object_count t = t.count
let page_count t = Pager.page_count t.pager t.file

(* The largest record a fresh page can host. *)
let max_record t =
  Pager.page_size t.pager - Page.header_size - Page.dir_entry_size

let insert_record t record =
  (* Inserts honour the per-page reserve so objects have in-page room to
     grow (hidden replicated fields, link pairs); a record that could never
     fit alongside the reserve still goes into a fresh page alone. *)
  let try_page page =
    Pager.with_page_write t.pager ~file:t.file ~page (fun buf ->
        let fits_with_reserve =
          Page.free_space buf >= Bytes.length record + t.reserve
          || (Page.live_count buf = 0 && Page.fits buf (Bytes.length record))
        in
        if fits_with_reserve then Page.insert buf record else None)
  in
  let slot, page =
    match if t.tail_page >= 0 then try_page t.tail_page else None with
    | Some slot -> (slot, t.tail_page)
    | None ->
        let page = Pager.new_page t.pager ~file:t.file in
        Pager.with_page_write t.pager ~file:t.file ~page (fun buf ->
            Page.init buf);
        t.tail_page <- page;
        let slot =
          match try_page page with
          | Some slot -> slot
          | None -> invalid_arg "Heap_file: record larger than a page"
        in
        (slot, page)
  in
  { Oid.file = t.file; page; slot }

(* Append the payload from [pos] onwards as a chain of continuation
   segments, returning the OID of the first one (or nil when done). *)
let rec spill t payload pos =
  let remaining = Bytes.length payload - pos in
  if remaining = 0 then Oid.nil
  else begin
    let room = max_record t - header_size in
    let chunk = min remaining room in
    let next = spill t payload (pos + chunk) in
    let record = encode_segment ~kind:kind_segment ~next (payload, pos, chunk) in
    insert_record t record
  end

let insert t payload =
  (* Head goes first so home slots appear in insertion order; oversize
     payloads spill their tail into segments allocated just after. *)
  let head_room = max_record t - header_size in
  let head_chunk = min (Bytes.length payload) head_room in
  let head_oid =
    insert_record t (encode_segment ~kind:kind_head ~next:Oid.nil (payload, 0, head_chunk))
  in
  let next = spill t payload head_chunk in
  if not (Oid.is_nil next) then begin
    let record = encode_segment ~kind:kind_head ~next (payload, 0, head_chunk) in
    Pager.with_page_write t.pager ~file:t.file ~page:head_oid.Oid.page (fun buf ->
        let ok = Page.write buf head_oid.Oid.slot record in
        assert ok)
  end;
  t.count <- t.count + 1;
  Stats.bump (Pager.stats t.pager) Stats.Objects_written;
  head_oid

let read_segment t (oid : Oid.t) =
  if oid.Oid.file <> t.file then invalid_arg "Heap_file: OID from another file";
  Pager.with_page_read t.pager ~file:t.file ~page:oid.Oid.page (fun buf ->
      if not (Page.is_live buf oid.Oid.slot) then
        invalid_arg (Printf.sprintf "Heap_file: dead OID %s" (Oid.to_string oid));
      Page.read buf oid.Oid.slot)

let read_chain t oid expected_kind =
  let head = read_segment t oid in
  let kind, next, off = decode_header head in
  if kind <> expected_kind then
    invalid_arg
      (Printf.sprintf "Heap_file: OID %s is not an object head" (Oid.to_string oid));
  let first = Bytes.sub head off (Bytes.length head - off) in
  if Oid.is_nil next then first
  else begin
    let parts = ref [ first ] in
    let cursor = ref next in
    while not (Oid.is_nil !cursor) do
      let seg = read_segment t !cursor in
      let kind, next, off = decode_header seg in
      if kind <> kind_segment then
        raise (Wire.Corrupt "Heap_file: bad segment kind in chain");
      parts := Bytes.sub seg off (Bytes.length seg - off) :: !parts;
      cursor := next
    done;
    Bytes.concat Bytes.empty (List.rev !parts)
  end

let read t oid =
  let payload = read_chain t oid kind_head in
  Stats.bump (Pager.stats t.pager) Stats.Objects_read;
  payload

let exists t (oid : Oid.t) =
  oid.Oid.file = t.file
  && oid.Oid.page >= 0
  && oid.Oid.page < page_count t
  && Pager.with_page_read t.pager ~file:t.file ~page:oid.Oid.page (fun buf ->
         Page.is_live buf oid.Oid.slot
         && fst (Wire.get_u8 (Page.read buf oid.Oid.slot) 0) = kind_head)

let free_chain t first =
  let cursor = ref first in
  while not (Oid.is_nil !cursor) do
    let oid = !cursor in
    let seg = read_segment t oid in
    let kind, next, _ = decode_header seg in
    if kind <> kind_segment then raise (Wire.Corrupt "Heap_file: bad chain");
    Pager.with_page_write t.pager ~file:t.file ~page:oid.Oid.page (fun buf ->
        Page.delete buf oid.Oid.slot);
    cursor := next
  done

let update t (oid : Oid.t) payload =
  let head = read_segment t oid in
  let kind, old_next, _ = decode_header head in
  if kind <> kind_head then
    invalid_arg "Heap_file.update: OID is not an object head";
  let write_head record =
    Pager.with_page_write t.pager ~file:t.file ~page:oid.Oid.page (fun buf ->
        Page.write buf oid.Oid.slot record)
  in
  let full = encode_segment ~kind:kind_head ~next:Oid.nil (payload, 0, Bytes.length payload) in
  let placed =
    Bytes.length full <= max_record t && write_head full
  in
  if not placed then begin
    (* Keep the head at its old size (an equal-size write always succeeds)
       and spill the remainder. *)
    let head_chunk = min (Bytes.length payload) (Bytes.length head - header_size) in
    let next = spill t payload head_chunk in
    let record = encode_segment ~kind:kind_head ~next (payload, 0, head_chunk) in
    let ok = write_head record in
    assert ok
  end;
  if not (Oid.is_nil old_next) then free_chain t old_next;
  Stats.bump (Pager.stats t.pager) Stats.Objects_written

let delete t (oid : Oid.t) =
  let head = read_segment t oid in
  let kind, next, _ = decode_header head in
  if kind <> kind_head then
    invalid_arg "Heap_file.delete: OID is not an object head";
  Pager.with_page_write t.pager ~file:t.file ~page:oid.Oid.page (fun buf ->
      Page.delete buf oid.Oid.slot);
  if not (Oid.is_nil next) then free_chain t next;
  t.count <- t.count - 1

(* Best-effort removal for scrub: drop whatever survives of an object whose
   chain may pass through a blanked (repaired-empty) page.  Deletes the
   slot if it is still live and follows the continuation chain while the
   segments remain readable, stopping silently at the first dead or
   malformed one — [delete] would raise there, but during repair the
   missing tail is exactly the damage being cleaned up. *)
let purge t (oid : Oid.t) =
  if oid.Oid.file <> t.file then invalid_arg "Heap_file.purge: OID from another file";
  let drop_slot (o : Oid.t) =
    Pager.with_page_write t.pager ~file:t.file ~page:o.Oid.page (fun buf ->
        Page.delete buf o.Oid.slot)
  in
  let segment_of (o : Oid.t) =
    if o.Oid.page < 0 || o.Oid.page >= page_count t then None
    else
      Pager.with_page_read t.pager ~file:t.file ~page:o.Oid.page (fun buf ->
          if Page.is_live buf o.Oid.slot then Some (Page.read buf o.Oid.slot)
          else None)
  in
  match segment_of oid with
  | None -> ()
  | Some head ->
      let kind, next, _ = decode_header head in
      drop_slot oid;
      if kind = kind_head then t.count <- t.count - 1;
      let cursor = ref next in
      let continue = ref true in
      while !continue && not (Oid.is_nil !cursor) do
        match segment_of !cursor with
        | None -> continue := false
        | Some seg ->
            let kind, next, _ = decode_header seg in
            if kind <> kind_segment then continue := false
            else begin
              drop_slot !cursor;
              cursor := next
            end
      done

let tombstone_record () =
  encode_segment ~kind:kind_tombstone ~next:Oid.nil (Bytes.empty, 0, 0)

let delete_pinned t (oid : Oid.t) =
  let head = read_segment t oid in
  let kind, next, _ = decode_header head in
  if kind <> kind_head then
    invalid_arg "Heap_file.delete_pinned: OID is not an object head";
  (* A head record is at least [header_size] bytes, so an equal-or-smaller
     in-place write always succeeds. *)
  Pager.with_page_write t.pager ~file:t.file ~page:oid.Oid.page (fun buf ->
      let ok = Page.write buf oid.Oid.slot (tombstone_record ()) in
      assert ok);
  if not (Oid.is_nil next) then free_chain t next;
  t.count <- t.count - 1

let is_tombstone t (oid : Oid.t) =
  oid.Oid.file = t.file
  && oid.Oid.page >= 0
  && oid.Oid.page < page_count t
  && Pager.with_page_read t.pager ~file:t.file ~page:oid.Oid.page (fun buf ->
         Page.is_live buf oid.Oid.slot
         && fst (Wire.get_u8 (Page.read buf oid.Oid.slot) 0) = kind_tombstone)

let free_tombstone t (oid : Oid.t) =
  let head = read_segment t oid in
  let kind, _, _ = decode_header head in
  if kind <> kind_tombstone then
    invalid_arg "Heap_file.free_tombstone: OID is not a tombstone";
  Pager.with_page_write t.pager ~file:t.file ~page:oid.Oid.page (fun buf ->
      Page.delete buf oid.Oid.slot)

let insert_at t (oid : Oid.t) payload =
  let head = read_segment t oid in
  let kind, _, _ = decode_header head in
  if kind <> kind_tombstone then
    invalid_arg "Heap_file.insert_at: slot is not a tombstone";
  let write_head record =
    Pager.with_page_write t.pager ~file:t.file ~page:oid.Oid.page (fun buf ->
        Page.write buf oid.Oid.slot record)
  in
  let full =
    encode_segment ~kind:kind_head ~next:Oid.nil (payload, 0, Bytes.length payload)
  in
  let placed = Bytes.length full <= max_record t && write_head full in
  if not placed then begin
    (* Keep the head at the tombstone's size (an equal-size write always
       succeeds) and spill the whole payload into segments. *)
    let next = spill t payload 0 in
    let record = encode_segment ~kind:kind_head ~next (payload, 0, 0) in
    let ok = write_head record in
    assert ok
  end;
  t.count <- t.count + 1;
  Stats.bump (Pager.stats t.pager) Stats.Objects_written

(* Batched page access: the replication engine groups a propagation fan-out
   by page and touches every slot under a single pin, instead of one
   pin/lookup per object.  Only unchained heads are served — an object whose
   payload spills into continuation segments needs other pages anyway, so
   the caller falls back to {!read} / {!update} for it. *)

(* Shared per-slot plumbing for the batch entry points: the page buffer is
   already pinned by the caller. *)

let batch_head t ~op buf ~page slot =
  if not (Page.is_live buf slot) then
    invalid_arg
      (Printf.sprintf "Heap_file: dead OID %s"
         (Oid.to_string { Oid.file = t.file; page; slot }));
  let head = Page.read buf slot in
  let kind, next, off = decode_header head in
  if kind <> kind_head then
    invalid_arg (Printf.sprintf "Heap_file.%s: OID is not an object head" op);
  (head, next, off)

let batch_payload t ~op buf ~page slot =
  let head, next, off = batch_head t ~op buf ~page slot in
  if Oid.is_nil next then begin
    Stats.bump (Pager.stats t.pager) Stats.Objects_read;
    Some (Bytes.sub head off (Bytes.length head - off))
  end
  else None

(* Rewrite one slot in place if the payload still fits an unchained head;
   [true] means the caller must fall back to the general [update] (which may
   spill) after the pin is released. *)
let batch_write_deferred t ~op buf ~page (slot, payload) =
  let _, old_next, _ = batch_head t ~op buf ~page slot in
  if not (Oid.is_nil old_next) then true
  else begin
    let record =
      encode_segment ~kind:kind_head ~next:Oid.nil (payload, 0, Bytes.length payload)
    in
    if Bytes.length record <= max_record t && Page.write buf slot record then begin
      let stats = Pager.stats t.pager in
      Stats.bump stats Stats.Objects_written;
      false
    end
    else true
  end

let read_batch t ~page slots =
  Pager.with_page_read t.pager ~file:t.file ~page (fun buf ->
      List.map (batch_payload t ~op:"read_batch" buf ~page) slots)

let update_batch t ~page entries =
  (* In-place rewrites happen under one pin; entries that are chained or no
     longer fit fall through to the general [update] (which may spill). *)
  let deferred =
    Pager.with_page_write t.pager ~file:t.file ~page (fun buf ->
        List.filter (batch_write_deferred t ~op:"update_batch" buf ~page) entries)
  in
  List.iter
    (fun (slot, payload) -> update t { Oid.file = t.file; page; slot } payload)
    deferred

let modify_batch t ~page slots ~f =
  (* Read-modify-write under a single pin: the page is pinned once for both
     the head reads and the in-place rewrites, instead of once per phase.
     [f] runs with the page pinned, so it may read other objects (a
     re-entrant pin on this page just increments the count) but must not
     write through this heap file. *)
  let deferred =
    Pager.with_pin t.pager ~file:t.file ~page ~dirty:true (fun buf ->
        let payloads =
          List.map (batch_payload t ~op:"modify_batch" buf ~page) slots
        in
        List.filter (batch_write_deferred t ~op:"modify_batch" buf ~page) (f payloads))
  in
  List.iter
    (fun (slot, payload) -> update t { Oid.file = t.file; page; slot } payload)
    deferred

let iter_heads t f =
  let pages = page_count t in
  for page = 0 to pages - 1 do
    (* Collect head slots while the page is pinned, then call back unpinned
       so the callback may itself touch storage. *)
    let heads =
      Pager.with_page_read t.pager ~file:t.file ~page (fun buf ->
          Page.fold
            (fun acc slot record ->
              if fst (Wire.get_u8 record 0) = kind_head then slot :: acc
              else acc)
            [] buf)
    in
    List.iter (fun slot -> f { Oid.file = t.file; page; slot }) (List.rev heads)
  done

let iter t f = iter_heads t (fun oid -> f oid (read t oid))

(* One page's worth of [iter_heads] — the unit of work of an incremental
   (resumable-cursor) walk.  Out-of-range pages yield []. *)
let oids_on_page t ~page =
  if page < 0 || page >= page_count t then []
  else
    let heads =
      Pager.with_page_read t.pager ~file:t.file ~page (fun buf ->
          Page.fold
            (fun acc slot record ->
              if fst (Wire.get_u8 record 0) = kind_head then slot :: acc
              else acc)
            [] buf)
    in
    List.rev_map (fun slot -> { Oid.file = t.file; page; slot }) heads

let chained_count t =
  let count = ref 0 in
  iter_heads t (fun oid ->
      let head = read_segment t oid in
      let _, next, _ = decode_header head in
      if not (Oid.is_nil next) then incr count);
  !count
let iter_oids t f = iter_heads t f

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun oid payload -> acc := f !acc oid payload);
  !acc

let recount t =
  t.count <- 0;
  iter_oids t (fun _ -> t.count <- t.count + 1)

let attach ?(reserve = 0) pager ~file =
  let t =
    { pager; file; reserve; count = 0; tail_page = Pager.page_count pager file - 1 }
  in
  iter_oids t (fun _ -> t.count <- t.count + 1);
  t
