exception Exhausted

type frame = {
  mutable file : int;
  mutable page : int;
  mutable pins : int;
  mutable dirty : bool;
  mutable referenced : bool;
  mutable occupied : bool;
  data : Bytes.t;
}

type t = {
  disk : Disk.t;
  frames : frame array;
  table : (int * int, int) Hashtbl.t;  (* (file, page) -> frame index *)
  mutable hand : int;
}

let create disk ~frames =
  if frames <= 0 then invalid_arg "Buffer_pool.create: frames must be positive";
  let make_frame _ =
    {
      file = -1;
      page = -1;
      pins = 0;
      dirty = false;
      referenced = false;
      occupied = false;
      data = Bytes.make (Disk.page_size disk) '\000';
    }
  in
  { disk; frames = Array.init frames make_frame; table = Hashtbl.create (2 * frames); hand = 0 }

let capacity t = Array.length t.frames
let resident t = Hashtbl.length t.table

let write_back t f =
  if f.dirty then begin
    Disk.write_page t.disk ~file:f.file ~page:f.page f.data;
    f.dirty <- false
  end

let evict_frame t idx =
  let f = t.frames.(idx) in
  assert (f.occupied && f.pins = 0);
  write_back t f;
  Hashtbl.remove t.table (f.file, f.page);
  f.occupied <- false;
  f.referenced <- false

(* Clock sweep: skip pinned frames, give referenced frames a second chance.
   Two full sweeps with no victim means everything is pinned. *)
let find_victim t =
  let n = Array.length t.frames in
  let rec loop steps =
    if steps > 2 * n then raise Exhausted
    else begin
      let idx = t.hand in
      t.hand <- (t.hand + 1) mod n;
      let f = t.frames.(idx) in
      if not f.occupied then idx
      else if f.pins > 0 then loop (steps + 1)
      else if f.referenced then begin
        f.referenced <- false;
        loop (steps + 1)
      end
      else idx
    end
  in
  loop 0

(* Transient faults ({!Disk.Read_error}) are retried a bounded number of
   times; the disk is simulated, so the backoff between attempts is a
   counted retry rather than a wall-clock sleep.  Permanent faults
   ({!Disk.Corrupt_page}) are never retried — rereading cannot fix a bad
   checksum. *)
let max_read_attempts = 3

let read_with_retry t ~file ~page buf =
  let stats = Disk.stats t.disk in
  let rec attempt n =
    try Disk.read_page t.disk ~file ~page buf
    with Disk.Read_error _ when n < max_read_attempts ->
      Stats.note_read_retry stats;
      attempt (n + 1)
  in
  attempt 1

let install t ~file ~page ~read =
  let idx = find_victim t in
  let f = t.frames.(idx) in
  if f.occupied then evict_frame t idx;
  f.file <- file;
  f.page <- page;
  f.pins <- 0;
  f.dirty <- false;
  f.referenced <- true;
  f.occupied <- true;
  (try
     if read then read_with_retry t ~file ~page f.data
     else Bytes.fill f.data 0 (Bytes.length f.data) '\000'
   with e ->
     f.occupied <- false;
     raise e);
  Hashtbl.replace t.table (file, page) idx;
  idx

let lookup t ~file ~page ~for_new =
  match Hashtbl.find_opt t.table (file, page) with
  | Some idx ->
      let stats = Disk.stats t.disk in
      stats.buffer_hits <- stats.buffer_hits + 1;
      t.frames.(idx).referenced <- true;
      idx
  | None -> install t ~file ~page ~read:(not for_new)

let with_pinned t ~file ~page ~dirty ~for_new fn =
  let idx = lookup t ~file ~page ~for_new in
  let f = t.frames.(idx) in
  f.pins <- f.pins + 1;
  if dirty then f.dirty <- true;
  Fun.protect ~finally:(fun () -> f.pins <- f.pins - 1) (fun () -> fn f.data)

let with_page_read t ~file ~page fn =
  with_pinned t ~file ~page ~dirty:false ~for_new:false fn

let with_page_write t ~file ~page fn =
  with_pinned t ~file ~page ~dirty:true ~for_new:false fn

let new_page t ~file =
  let page = Disk.allocate_page t.disk file in
  let idx = install t ~file ~page ~read:false in
  t.frames.(idx).dirty <- true;
  page

let flush t = Array.iter (fun f -> if f.occupied then write_back t f) t.frames

let invalidate t ~file ~page =
  match Hashtbl.find_opt t.table (file, page) with
  | None -> ()
  | Some idx ->
      let f = t.frames.(idx) in
      if f.pins > 0 then invalid_arg "Buffer_pool.invalidate: pinned frame";
      Hashtbl.remove t.table (file, page);
      f.occupied <- false;
      f.referenced <- false;
      f.dirty <- false

let drop_file t ~file =
  Array.iter
    (fun f ->
      if f.occupied && f.file = file then begin
        if f.pins > 0 then invalid_arg "Buffer_pool.drop_file: pinned frame";
        Hashtbl.remove t.table (f.file, f.page);
        f.occupied <- false;
        f.referenced <- false;
        f.dirty <- false
      end)
    t.frames

let clear t =
  flush t;
  Array.iter
    (fun f ->
      if f.occupied then begin
        if f.pins > 0 then invalid_arg "Buffer_pool.clear: pinned frame";
        f.occupied <- false;
        f.referenced <- false
      end)
    t.frames;
  Hashtbl.reset t.table
