module Lockdep = Fieldrep_util.Lockdep

exception Exhausted

type frame = {
  mutable file : int;
  mutable page : int;
  mutable pins : int;
  mutable dirty : bool;
  mutable referenced : bool;
  mutable occupied : bool;
  mutable prefetched : bool;
  data : Bytes.t;
}

type t = {
  disk : Disk.t;
  frames : frame array;
  table : (int * int, int) Hashtbl.t;  (* (file, page) -> frame index *)
  mutable hand : int;
  scratch : Bytes.t;
      (* staging buffer for installs: the physical read lands here before
         the victim frame is touched *)
  mutable prefetch_depth : int;  (* 0 disables read-ahead *)
  mutable seq_file : int;
  mutable seq_next : int;
      (* last demand miss was (seq_file, seq_next - 1): a miss landing on
         (seq_file, seq_next) means a sequential run *)
}

let create ?(prefetch = 0) disk ~frames =
  if frames <= 0 then invalid_arg "Buffer_pool.create: frames must be positive";
  let make_frame _ =
    {
      file = -1;
      page = -1;
      pins = 0;
      dirty = false;
      referenced = false;
      occupied = false;
      prefetched = false;
      data = Bytes.make (Disk.page_size disk) '\000';
    }
  in
  {
    disk;
    frames = Array.init frames make_frame;
    table = Hashtbl.create (2 * frames);
    hand = 0;
    scratch = Bytes.make (Disk.page_size disk) '\000';
    prefetch_depth = max 0 prefetch;
    seq_file = -1;
    seq_next = -1;
  }

let capacity t = Array.length t.frames
let resident t = Hashtbl.length t.table
let set_prefetch t depth = t.prefetch_depth <- max 0 depth
let prefetch_depth t = t.prefetch_depth

let write_back t f =
  if f.dirty then begin
    Disk.write_page t.disk ~file:f.file ~page:f.page f.data;
    f.dirty <- false
  end

let evict_frame t idx =
  let f = t.frames.(idx) in
  assert (f.occupied && f.pins = 0);
  write_back t f;
  Hashtbl.remove t.table (f.file, f.page);
  f.occupied <- false;
  f.referenced <- false;
  f.prefetched <- false

(* Clock sweep: skip pinned frames, give referenced frames a second chance.
   Two full sweeps with no victim means everything is pinned. *)
let find_victim t =
  let n = Array.length t.frames in
  let rec loop steps =
    if steps > 2 * n then raise Exhausted
    else begin
      let idx = t.hand in
      t.hand <- (t.hand + 1) mod n;
      let f = t.frames.(idx) in
      if not f.occupied then idx
      else if f.pins > 0 then loop (steps + 1)
      else if f.referenced then begin
        f.referenced <- false;
        loop (steps + 1)
      end
      else idx
    end
  in
  loop 0

(* Transient faults ({!Disk.Read_error}) are retried a bounded number of
   times; the disk is simulated, so the backoff between attempts is a
   counted retry rather than a wall-clock sleep.  Permanent faults
   ({!Disk.Corrupt_page}) are never retried — rereading cannot fix a bad
   checksum. *)
let max_read_attempts = 3

let read_with_retry t ~file ~page buf =
  let stats = Disk.stats t.disk in
  let rec attempt n =
    try Disk.read_page t.disk ~file ~page buf
    with Disk.Read_error _ when n < max_read_attempts ->
      Stats.note_read_retry stats;
      attempt (n + 1)
  in
  attempt 1

(* Retarget an unpinned (or just-vacated) frame at (file, page).  The page
   image is already in hand — [src] — or the frame is zeroed for a fresh
   page, so nothing here can fail between evicting the old resident and
   mapping the new one. *)
let install_at t idx ~file ~page src =
  let f = t.frames.(idx) in
  if f.occupied then evict_frame t idx;
  f.file <- file;
  f.page <- page;
  f.pins <- 0;
  f.dirty <- false;
  f.referenced <- true;
  f.occupied <- true;
  f.prefetched <- false;
  (match src with
  | Some bytes -> Bytes.blit bytes 0 f.data 0 (Bytes.length f.data)
  | None -> Bytes.fill f.data 0 (Bytes.length f.data) '\000');
  Hashtbl.replace t.table (file, page) idx;
  idx

(* The physical read goes through [t.scratch] *before* the victim is
   evicted: a read that still fails after retries must not cost a clean
   cached page.  Failed installs leave the pool exactly as it was and are
   counted ([failed_reads]), so every lookup lands in exactly one of
   [buffer_hits], [page_reads] or [failed_reads]. *)
let install t ~file ~page ~read =
  let idx = find_victim t in
  if read then begin
    (try read_with_retry t ~file ~page t.scratch
     with e ->
       Stats.note_failed_read (Disk.stats t.disk);
       raise e);
    install_at t idx ~file ~page (Some t.scratch)
  end
  else install_at t idx ~file ~page None

(* Read pages (page+1 .. page+depth) of [file] into the pool ahead of
   demand.  Called with the frame for [page] pinned, so the demand page
   cannot be chosen as a victim.  Best-effort: an exhausted pool or a
   failing read simply ends the run — the demand path will face the fault
   itself if the page is ever actually needed. *)
let prefetch_run t ~file ~page =
  let stats = Disk.stats t.disk in
  let last = min (page + t.prefetch_depth) (Disk.page_count t.disk file - 1) in
  (try
     for p = page + 1 to last do
       if not (Hashtbl.mem t.table (file, p)) then begin
         let idx = install t ~file ~page:p ~read:true in
         t.frames.(idx).prefetched <- true;
         Stats.note_prefetch_issued stats
       end
     done
   with Exhausted | Disk.Read_error _ | Disk.Corrupt_page _ -> ());
  if last > page then begin
    t.seq_file <- file;
    t.seq_next <- last + 1
  end

let lookup t ~file ~page ~for_new =
  match Hashtbl.find_opt t.table (file, page) with
  | Some idx ->
      let stats = Disk.stats t.disk in
      Stats.bump stats Stats.Buffer_hits;
      let f = t.frames.(idx) in
      if f.prefetched then begin
        f.prefetched <- false;
        Stats.note_prefetch_hit stats
      end;
      f.referenced <- true;
      idx
  | None ->
      let idx = install t ~file ~page ~read:(not for_new) in
      if t.prefetch_depth > 0 && not for_new then begin
        let sequential = file = t.seq_file && page = t.seq_next in
        t.seq_file <- file;
        t.seq_next <- page + 1;
        if sequential then begin
          (* Pin the demand frame across the run so the prefetcher's own
             installs cannot evict it. *)
          let f = t.frames.(idx) in
          f.pins <- f.pins + 1;
          Fun.protect
            ~finally:(fun () -> f.pins <- f.pins - 1)
            (fun () -> prefetch_run t ~file ~page)
        end
      end;
      idx

let pin t ~file ~page ~dirty =
  let idx = lookup t ~file ~page ~for_new:false in
  let f = t.frames.(idx) in
  Lockdep.acquire Lockdep.Pool_pin;
  f.pins <- f.pins + 1;
  if dirty then f.dirty <- true;
  f.data

let unpin t ~file ~page =
  match Hashtbl.find_opt t.table (file, page) with
  | None -> invalid_arg "Buffer_pool.unpin: page not resident"
  | Some idx ->
      let f = t.frames.(idx) in
      if f.pins <= 0 then invalid_arg "Buffer_pool.unpin: frame is not pinned";
      Lockdep.release Lockdep.Pool_pin;
      f.pins <- f.pins - 1

let with_pin t ~file ~page ~dirty fn =
  let buf = pin t ~file ~page ~dirty in
  Fun.protect ~finally:(fun () -> unpin t ~file ~page) (fun () -> fn buf)

let with_page_read t ~file ~page fn = with_pin t ~file ~page ~dirty:false fn
let with_page_write t ~file ~page fn = with_pin t ~file ~page ~dirty:true fn

let new_page t ~file =
  (* Claim the victim frame *before* allocating: there is no
     [Disk.free_page], so allocating first would leak the disk page when an
     all-pinned pool raises [Exhausted]. *)
  let idx = find_victim t in
  let page = Disk.allocate_page t.disk file in
  let idx = install_at t idx ~file ~page None in
  t.frames.(idx).dirty <- true;
  page

let flush t = Array.iter (fun f -> if f.occupied then write_back t f) t.frames

let invalidate t ~file ~page =
  match Hashtbl.find_opt t.table (file, page) with
  | None -> ()
  | Some idx ->
      let f = t.frames.(idx) in
      if f.pins > 0 then invalid_arg "Buffer_pool.invalidate: pinned frame";
      Hashtbl.remove t.table (file, page);
      f.occupied <- false;
      f.referenced <- false;
      f.prefetched <- false;
      f.dirty <- false

(* Both bulk-discard operations refuse *before* touching anything: a pinned
   frame found mid-sweep must not leave some pages unmapped and others not. *)
let check_unpinned t ~op ~file =
  Array.iter
    (fun f ->
      if f.occupied && f.pins > 0 && (file = -1 || f.file = file) then
        invalid_arg (Printf.sprintf "Buffer_pool.%s: pinned frame" op))
    t.frames

let drop_file t ~file =
  check_unpinned t ~op:"drop_file" ~file;
  Array.iter
    (fun f ->
      if f.occupied && f.file = file then begin
        Hashtbl.remove t.table (f.file, f.page);
        f.occupied <- false;
        f.referenced <- false;
        f.prefetched <- false;
        f.dirty <- false
      end)
    t.frames

let clear t =
  check_unpinned t ~op:"clear" ~file:(-1);
  flush t;
  Array.iter
    (fun f ->
      if f.occupied then begin
        f.occupied <- false;
        f.referenced <- false;
        f.prefetched <- false
      end)
    t.frames;
  Hashtbl.reset t.table;
  t.seq_file <- -1;
  t.seq_next <- -1
