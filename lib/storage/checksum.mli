(** Shared FNV-1a 32-bit checksum.

    Used by the WAL for frame CRCs and by {!Disk} for per-page checksums, so
    both layers detect corruption with the same function. *)

val fnv1a32 : Bytes.t -> int -> int -> int
(** [fnv1a32 bytes off len] hashes [len] bytes starting at [off]. *)
