(** Heap files of variable-length objects with stable physical OIDs.

    Every object owns a *home slot*; its OID names that slot and never
    changes.  Stored records are chains of segments:

    {v segment = [ kind:u8 | next:oid(8) | payload chunk ] v}

    with [kind] 0 for the head (the home slot) and 1 for continuation
    segments.  An object that outgrows its page keeps its head in place —
    shrunk to a 9-byte chain header if necessary — and spills the rest into
    continuation segments on other pages, so objects larger than a page and
    in-place growth (e.g. adding hidden replicated fields) both work without
    forwarding.

    Objects are laid down in strictly increasing physical order by
    [insert], which is how the replication engine builds link files and
    separate-replication files "in the same order as S" (paper §4.1, §5). *)

type t

val create : ?reserve:int -> Pager.t -> t
(** Create a new file on the pager's disk.  [reserve] bytes are kept free
    on each page during inserts (a PCTFREE-style fill factor) so objects
    can later grow in place — e.g. when a [replicate] declaration adds
    hidden fields — without spilling into continuation segments. *)

val attach : ?reserve:int -> Pager.t -> file:int -> t
(** Open an existing heap file (scans once to recover the object count). *)

val file_id : t -> int
val pager : t -> Pager.t

val reserve : t -> int
(** The per-page insert reserve this handle was opened with. *)

val object_count : t -> int
(** Live objects (heads only). *)

val page_count : t -> int

val insert : t -> Bytes.t -> Oid.t
(** Append an object; its home slot lands at or after every previously
    inserted object's home slot. *)

val read : t -> Oid.t -> Bytes.t
(** Raises [Invalid_argument] if the OID does not name a live object head. *)

val exists : t -> Oid.t -> bool

val update : t -> Oid.t -> Bytes.t -> unit
(** Replace the object's payload in place; the OID remains valid even when
    the object grows or shrinks across the page boundary. *)

val delete : t -> Oid.t -> unit
(** Frees the home slot and any continuation segments. *)

val purge : t -> Oid.t -> unit
(** Best-effort {!delete} for repair: frees the slot if still live and
    follows the continuation chain only while segments remain readable,
    stopping silently at the first dead or malformed one.  Scrub uses this
    to clear the surviving fragments of objects whose chains passed through
    a corrupt page; {!delete} would raise on the severed chain. *)

val delete_pinned : t -> Oid.t -> unit
(** Delete the object but keep its home slot allocated as a *tombstone* (a
    9-byte chain header with kind 2), so the OID cannot be recycled while
    the deleting transaction is undecided.  Continuation segments are freed
    immediately.  Resolve with {!free_tombstone} (commit) or {!insert_at}
    (abort). *)

val free_tombstone : t -> Oid.t -> unit
(** Release a tombstoned home slot for reuse. *)

val insert_at : t -> Oid.t -> Bytes.t -> unit
(** Revive a tombstoned home slot with the given payload — the rollback of
    {!delete_pinned}.  The OID is unchanged; an oversize payload spills into
    continuation segments as usual. *)

val is_tombstone : t -> Oid.t -> bool

val read_batch : t -> page:int -> int list -> Bytes.t option list
(** [read_batch t ~page slots] reads the head record of every slot under a
    {e single} page pin, in the given order.  An object whose payload spills
    into continuation segments yields [None] — fetch it with {!read} — so a
    [Some] payload cost exactly this one page access.  Raises
    [Invalid_argument] on a dead slot or a non-head record. *)

val update_batch : t -> page:int -> (int * Bytes.t) list -> unit
(** [update_batch t ~page entries] rewrites [(slot, payload)] pairs under a
    {e single} page pin.  Entries that are chained, or that no longer fit in
    place, fall back to {!update} (which may spill) after the pin is
    released.  Raises like {!read_batch}. *)

val modify_batch :
  t -> page:int -> int list -> f:(Bytes.t option list -> (int * Bytes.t) list) -> unit
(** [modify_batch t ~page slots ~f] is a {!read_batch} and an
    {!update_batch} fused under a {e single} page pin: [f] receives the head
    payloads of [slots] ([None] for chained objects, as in {!read_batch})
    and returns the [(slot, payload)] rewrites to apply, which land in place
    where they still fit and fall back to {!update} after the pin is
    released otherwise.  [f] runs with the page pinned — it may read other
    objects but must not write through this file.  Raises like
    {!read_batch}. *)

val iter : t -> (Oid.t -> Bytes.t -> unit) -> unit
(** Physical order (page then slot), heads only.  The callback receives the
    payload with chain plumbing stripped. *)

val fold : t -> init:'a -> f:('a -> Oid.t -> Bytes.t -> 'a) -> 'a

val iter_oids : t -> (Oid.t -> unit) -> unit
(** Like {!iter} without materialising payloads (still reads each page). *)

val oids_on_page : t -> page:int -> Oid.t list
(** Head OIDs of one page, in slot order — the work unit of an incremental
    walk driven by a resumable page cursor (lib/maint).  [] when the page
    is out of range. *)

val recount : t -> unit
(** Rescan the file and reset {!object_count}.  Needed after scrub blanks a
    corrupt page: the heads it held vanish without going through
    {!delete}. *)

val chained_count : t -> int
(** Objects whose payload spans more than one segment — fragmentation
    introduced by growth beyond the page's free space. *)
