(* Raw page storage behind [Disk]: where a file's pages and checksum
   trailers physically live.  [Disk] owns every policy — bounds checks,
   stats, quarantine, fault injection — and calls down here only to move
   bytes, so a backend is deliberately dumb: no verification, no counters.

   Two implementations:

   - [Mem]: the original growable [Bytes.t array] per file.  Free, exact,
     and deterministic — the right substrate for unit tests and for
     benchmarks that measure I/O *counts*.

   - [File]: one real file per fieldrep file id, written through
     [Unix] seek/read/write.  Each on-disk page slot is [page_size + 8]
     bytes: the page image followed by an 8-byte checksum trailer (the
     "spare bytes of a 520-byte sector" the mem backend models with its
     [sums] array).  A torn write is a partial [write] of the first half
     of the slot that never touches the trailer — exactly the failure a
     checksummed store detects on the next read. *)

module type S = sig
  type t

  val label : string
  val create_file : t -> id:int -> unit
  (** Make [id] exist with zero pages, truncating any previous content. *)

  val delete_file : t -> id:int -> unit
  val file_exists : t -> id:int -> bool
  val file_ids : t -> int list
  val page_count : t -> id:int -> int

  val grow : t -> id:int -> unit
  (** Append one zeroed page.  The caller seals it with {!write_sum}. *)

  val read : t -> file:int -> page:int -> Bytes.t -> unit
  (** Fill the caller's page-sized buffer from the stored page. *)

  val write : t -> file:int -> page:int -> len:int -> Bytes.t -> unit
  (** Land the first [len] bytes of the buffer on the stored page,
      leaving bytes past [len] — and the checksum trailer — untouched.
      [len = page_size] is a full write; anything less is torn. *)

  val read_sum : t -> file:int -> page:int -> int
  val write_sum : t -> file:int -> page:int -> sum:int -> unit

  val close : t -> unit
  (** Release OS resources (idempotent).  [Mem] is a no-op; [File]
      closes descriptors and removes an auto-created directory. *)
end

(* ------------------------------------------------------------------ *)

module Mem = struct
  type file = {
    mutable pages : Bytes.t array;
    mutable count : int;
    mutable sums : int array;
  }

  type t = { page_size : int; files : (int, file) Hashtbl.t }

  let label = "mem"
  let create ~page_size = { page_size; files = Hashtbl.create 16 }

  let find t id =
    match Hashtbl.find_opt t.files id with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Disk: unknown file %d" id)

  let create_file t ~id =
    Hashtbl.replace t.files id { pages = [||]; count = 0; sums = [||] }

  let delete_file t ~id = Hashtbl.remove t.files id
  let file_exists t ~id = Hashtbl.mem t.files id

  let file_ids t =
    Hashtbl.fold (fun id _ acc -> id :: acc) t.files [] |> List.sort Int.compare

  let page_count t ~id = (find t id).count

  let grow t ~id =
    let f = find t id in
    if f.count = Array.length f.pages then begin
      let cap = max 8 (2 * Array.length f.pages) in
      let pages = Array.make cap Bytes.empty in
      Array.blit f.pages 0 pages 0 f.count;
      f.pages <- pages;
      let sums = Array.make cap 0 in
      Array.blit f.sums 0 sums 0 f.count;
      f.sums <- sums
    end;
    f.pages.(f.count) <- Bytes.make t.page_size '\000';
    f.count <- f.count + 1

  let read t ~file ~page buf = Bytes.blit (find t file).pages.(page) 0 buf 0 t.page_size
  let write t ~file ~page ~len buf = Bytes.blit buf 0 (find t file).pages.(page) 0 len
  let read_sum t ~file ~page = (find t file).sums.(page)
  let write_sum t ~file ~page ~sum = (find t file).sums.(page) <- sum
  let close _ = ()
end

(* ------------------------------------------------------------------ *)

module File = struct
  (* A process-wide LRU cache of open descriptors, keyed by (backend id,
     file id).  Crash-matrix tests build hundreds of short-lived databases
     per run; without a global cap they would exhaust the fd limit long
     before the GC reclaims the corresponding backends.  Eviction just
     closes the descriptor — the path is re-opened on the next access. *)
  module Fd_cache = struct
    let cap = 64
    let tbl : (int * int, Unix.file_descr * int ref) Hashtbl.t = Hashtbl.create 97
    let clock = ref 0

    let evict_oldest () =
      let oldest =
        Hashtbl.fold
          (fun k (_, last) acc ->
            match acc with
            | Some (_, best) when best <= !last -> acc
            | Some _ | None -> Some (k, !last))
          tbl None
      in
      match oldest with
      | Some (k, _) ->
          (match Hashtbl.find_opt tbl k with
          | Some (fd, _) -> Unix.close fd
          | None -> ());
          Hashtbl.remove tbl k
      | None -> ()

    let get ~bid ~file path =
      incr clock;
      match Hashtbl.find_opt tbl (bid, file) with
      | Some (fd, last) ->
          last := !clock;
          fd
      | None ->
          if Hashtbl.length tbl >= cap then evict_oldest ();
          let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
          Hashtbl.replace tbl (bid, file) (fd, ref !clock);
          fd

    let drop ~bid ~file =
      match Hashtbl.find_opt tbl (bid, file) with
      | Some (fd, _) ->
          Unix.close fd;
          Hashtbl.remove tbl (bid, file)
      | None -> ()
  end

  (* Auto-created backing directories, removed at process exit so a test
     run does not strew temp dirs.  [close] removes a directory early and
     unregisters it. *)
  let auto_dirs : (string, unit) Hashtbl.t = Hashtbl.create 8
  let exit_hook = ref false

  let remove_dir dir =
    (match Sys.readdir dir with
    | entries ->
        Array.iter
          (fun e ->
            try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
          entries
    | exception Sys_error _ -> ());
    try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()

  let register_auto_dir dir =
    Hashtbl.replace auto_dirs dir ();
    if not !exit_hook then begin
      exit_hook := true;
      at_exit (fun () -> Hashtbl.iter (fun d () -> remove_dir d) auto_dirs)
    end

  let dir_counter = ref 0

  let fresh_dir () =
    let base = Filename.get_temp_dir_name () in
    let pid = Unix.getpid () in
    let rec go n =
      let d = Filename.concat base (Printf.sprintf "fieldrep-disk-%d-%d" pid n) in
      match Unix.mkdir d 0o700 with
      | () ->
          dir_counter := n + 1;
          d
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (n + 1)
    in
    go !dir_counter

  (* Cached page counts and checksum trailers.  The trailers are written
     through to the slot on disk (the file format is self-contained) but
     served from memory, so verification does not double the syscalls of
     every read. *)
  type meta = { mutable count : int; mutable sums : int array }

  type t = {
    dir : string;
    owns_dir : bool;
    bid : int;  (* key into the process-wide fd cache *)
    page_size : int;
    slot : int;  (* page_size + 8-byte checksum trailer *)
    files : (int, meta) Hashtbl.t;
    trailer : Bytes.t;  (* 8-byte staging buffer for trailer writes *)
    mutable closed : bool;
  }

  let label = "file"
  let next_bid = ref 0

  let create ~page_size ?dir () =
    let dir, owns_dir =
      match dir with
      | Some d ->
          (match Unix.mkdir d 0o700 with
          | () -> ()
          | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          (d, false)
      | None ->
          let d = fresh_dir () in
          register_auto_dir d;
          (d, true)
    in
    let bid = !next_bid in
    incr next_bid;
    {
      dir;
      owns_dir;
      bid;
      page_size;
      slot = page_size + 8;
      files = Hashtbl.create 16;
      trailer = Bytes.create 8;
      closed = false;
    }

  let path t id = Filename.concat t.dir (Printf.sprintf "%06d.fdb" id)
  let fd t id = Fd_cache.get ~bid:t.bid ~file:id (path t id)

  let find t id =
    match Hashtbl.find_opt t.files id with
    | Some m -> m
    | None -> invalid_arg (Printf.sprintf "Disk: unknown file %d" id)

  let rec really_write fd buf off len =
    if len > 0 then begin
      let n = Unix.write fd buf off len in
      really_write fd buf (off + n) (len - n)
    end

  (* Short reads past EOF zero-fill: a grown-but-never-written slot is a
     sparse hole and must read as a zero page. *)
  let rec really_read fd buf off len =
    if len > 0 then begin
      let n = Unix.read fd buf off len in
      if n = 0 then Bytes.fill buf off len '\000'
      else really_read fd buf (off + n) (len - n)
    end

  let seek fd off = ignore (Unix.lseek fd off Unix.SEEK_SET)

  let create_file t ~id =
    Fd_cache.drop ~bid:t.bid ~file:id;
    let fd = Unix.openfile (path t id) [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Unix.close fd;
    Hashtbl.replace t.files id { count = 0; sums = [||] }

  let delete_file t ~id =
    Fd_cache.drop ~bid:t.bid ~file:id;
    (try Sys.remove (path t id) with Sys_error _ -> ());
    Hashtbl.remove t.files id

  let file_exists t ~id = Hashtbl.mem t.files id

  let file_ids t =
    Hashtbl.fold (fun id _ acc -> id :: acc) t.files [] |> List.sort Int.compare

  let page_count t ~id = (find t id).count

  let grow t ~id =
    let m = find t id in
    if m.count = Array.length m.sums then begin
      let cap = max 8 (2 * Array.length m.sums) in
      let sums = Array.make cap 0 in
      Array.blit m.sums 0 sums 0 m.count;
      m.sums <- sums
    end;
    (* No syscall: the new slot is a sparse hole that reads as zeros. *)
    m.count <- m.count + 1

  let read t ~file ~page buf =
    ignore (find t file);
    let fd = fd t file in
    seek fd (page * t.slot);
    really_read fd buf 0 t.page_size

  let write t ~file ~page ~len buf =
    ignore (find t file);
    let fd = fd t file in
    seek fd (page * t.slot);
    really_write fd buf 0 len

  let read_sum t ~file ~page = (find t file).sums.(page)

  let write_sum t ~file ~page ~sum =
    let m = find t file in
    m.sums.(page) <- sum;
    Bytes.set_int64_le t.trailer 0 (Int64.of_int sum);
    let fd = fd t file in
    seek fd ((page * t.slot) + t.page_size);
    really_write fd t.trailer 0 8

  let close t =
    if not t.closed then begin
      t.closed <- true;
      Hashtbl.iter (fun id _ -> Fd_cache.drop ~bid:t.bid ~file:id) t.files;
      if t.owns_dir then begin
        remove_dir t.dir;
        Hashtbl.remove auto_dirs t.dir
      end
    end
end
