type backend = Disk.backend_kind = Mem | File of string option

type t = { disk : Disk.t; pool : Buffer_pool.t; stats : Stats.t }

let create ?(page_size = 4096) ?(frames = 256) ?(prefetch = 0) ?backend () =
  let stats = Stats.create () in
  let disk = Disk.create ~page_size ?backend stats in
  { disk; pool = Buffer_pool.create ~prefetch disk ~frames; stats }

let page_size t = Disk.page_size t.disk
let backend_name t = Disk.backend_name t.disk

let close t =
  Buffer_pool.flush t.pool;
  Disk.close t.disk

(* Clamp here as well as in the pool: a negative depth must read as
   "disabled" at every layer of the facade. *)
let set_prefetch t depth = Buffer_pool.set_prefetch t.pool (max 0 depth)
let prefetch_depth t = Buffer_pool.prefetch_depth t.pool
let stats t = t.stats
let disk t = t.disk
let create_file t = Disk.create_file t.disk

let delete_file t id =
  (* Frames of the deleted file must not be written back later; frames of
     every other file stay resident (dropping them all skewed the I/O
     counts of whatever ran next). *)
  Buffer_pool.drop_file t.pool ~file:id;
  Disk.delete_file t.disk id

let page_count t id = Disk.page_count t.disk id
let with_page_read t = Buffer_pool.with_page_read t.pool
let with_page_write t = Buffer_pool.with_page_write t.pool
let with_pin t = Buffer_pool.with_pin t.pool
let new_page t ~file = Buffer_pool.new_page t.pool ~file
let flush t = Buffer_pool.flush t.pool
let invalidate t ~file ~page = Buffer_pool.invalidate t.pool ~file ~page

let reset_stats t = Stats.reset t.stats

let run_cold t f =
  Buffer_pool.clear t.pool;
  Stats.reset t.stats;
  let result = f () in
  Buffer_pool.flush t.pool;
  result

let total_pages t = Disk.total_pages t.disk
